#!/bin/sh
# Full local verification: vet, build, tests, the race detector over the
# packages with concurrent internals (the split monitor, the pipelined WAL,
# the intent queue applier, and the lock-free disk stats), and the fault
# sweeps (crash points, torn log writes, scrub/salvage under decay).
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: gofmt must have nothing to say.
test -z "$(gofmt -l . | tee /dev/stderr)"

# Deprecated-name lint: the per-family Volume accessors and the WAL's
# historical recovery name were removed in favour of Stats() and Replay;
# new uses must not creep back in. (disk.FaultStats, receiver d, is a
# different, live API.)
! grep -rnE --include='*.go' '\.RecoverDry\(|(v|vol)\.(Ops|CacheStats|FaultStats)\(' . \
	|| { echo "verify: deprecated accessor resurfaced (use Stats() / Replay)"; exit 1; }

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/wal ./internal/disk ./internal/bufcache ./internal/intentq ./internal/crashtest ./internal/server ./internal/wire ./client
go test ./internal/core -count=1 -run 'TestCrashPointSweep|TestTornLogForceSweep|TestScrubRepairsLatentDecay|TestSalvageAfterDoubleNameTableLoss'
go test -race ./internal/core -count=1 -run 'TestScrubConcurrentWithReaders'
# Seeded write-fault sweep (PR 7): retries/remaps/hung-I/O absorption and
# the health FSM's graceful-degradation contract, plus the concurrent
# health-transition hammer under the race detector.
go test ./internal/core -count=1 -run 'TestWriteFaultsGracefulDegradation|TestSpareExhaustionTransitionsReadOnly|TestHungIOClassifiedAgainstDeadline|TestIntentFatalFailsOverReadOnly'
go test -race ./internal/core -count=1 -run 'TestHealthTransitionHammer'
# Bounded deterministic crash-state sweep: fixed seed, strided sample of
# the full enumeration (the complete 1000+-state sweep runs in the bench
# suite); well under a minute.
go run ./cmd/fsdctl crashcheck -seed 1 -states 200
# The same oracle with every mutation riding the asynchronous intent queue:
# acked ops must stay durable, unacked ops atomic.
go run ./cmd/fsdctl crashcheck -seed 1 -states 100 -async
# Crash images composed with read decay AND write faults: the recovery
# mount must absorb or demote, never corrupt.
go run ./cmd/fsdctl crashcheck -seed 13 -states 60 -decay 0.001 -writedecay 0.01
# Bounded nested (depth-2) sweep: crash each state's recovery at its own
# barrier epochs and recover again; the full 300-outer-state acceptance run
# is the benchtab -nestedcrash-json path.
go run ./cmd/fsdctl crashcheck -nested -depth 2 -seed 1 -states 30 -inner 4
# Re-entrant recovery under the race detector: mount-scheduled scrub
# racing a workload, and the composed-fault recovery tests.
go test -race ./internal/core -count=1 -run 'TestMountWhileScrubHammer|TestMountUnderComposedFaults|TestSalvageCrashResume'
# Live-counter table reproduction (Tables 2/3/4/5 from Volume.Stats()):
# one shared volume, a few seconds; asserts nothing here — the shape
# checks live in go test ./cmd/benchtab — but must run to completion.
go run ./cmd/benchtab -table tables
# Data-path cache ablation smoke (cache on/off x read-ahead on/off over
# sequential/random/re-read workloads); a few seconds on small windows.
go run ./cmd/benchtab -table datapath
# Write-fault-path sweep smoke (retry/remap/hung absorption cost grid).
go run ./cmd/benchtab -table faultpath
# Loopback server smoke: an in-process listener, the real client, and the
# shared FS conformance suite through actual sockets (both commit modes).
go test ./internal/server -count=1 -run 'TestRemoteConformance'
# Mini-soak: 2000 concurrent simulated clients for 5 seconds against an
# in-process server; exits nonzero on any protocol error or if the volume
# leaves the healthy state.
go run ./cmd/soak -clients 2000 -conns 16 -duration 5s -rate 5 -json /dev/null
# Parallel check & repair (pFSCK pool) under the race detector: the
# parscan pool itself plus the determinism goldens — byte-identical
# Verify problems at widths 1/2/8, salvage crash/resume across widths,
# and a wide Verify racing concurrent readers.
go test -race ./internal/parscan -count=1
go test -race ./internal/core -count=1 -run 'TestVerifyProblemsDeterministic|TestVerifyDuplicateOwnerDeterministic|TestVerifyUnderDecay|TestVerifyParallelWithReaders|TestParallelSalvageMatchesSequential'
# Bounded pfsck smoke (small volume, widths 1 and 4): runs both passes
# through the pool and asserts identical output at both widths; the full
# 1/2/4/8/16 curve is the benchtab -pfsck-json path.
go run ./cmd/benchtab -table pfsck
