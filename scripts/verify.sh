#!/bin/sh
# Full local verification: vet, build, tests, the race detector over the
# packages with concurrent internals (the split monitor, the pipelined WAL,
# the intent queue applier, and the lock-free disk stats), and the fault
# sweeps (crash points, torn log writes, scrub/salvage under decay).
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: gofmt must have nothing to say.
test -z "$(gofmt -l . | tee /dev/stderr)"

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/wal ./internal/disk ./internal/bufcache ./internal/intentq
go test ./internal/core -count=1 -run 'TestCrashPointSweep|TestTornLogForceSweep|TestScrubRepairsLatentDecay|TestSalvageAfterDoubleNameTableLoss'
go test -race ./internal/core -count=1 -run 'TestScrubConcurrentWithReaders'
# Bounded deterministic crash-state sweep: fixed seed, strided sample of
# the full enumeration (the complete 1000+-state sweep runs in the bench
# suite); well under a minute.
go run ./cmd/fsdctl crashcheck -seed 1 -states 200
# The same oracle with every mutation riding the asynchronous intent queue:
# acked ops must stay durable, unacked ops atomic.
go run ./cmd/fsdctl crashcheck -seed 1 -states 100 -async
# Live-counter table reproduction (Tables 2/3/4/5 from Volume.Stats()):
# one shared volume, a few seconds; asserts nothing here — the shape
# checks live in go test ./cmd/benchtab — but must run to completion.
go run ./cmd/benchtab -table tables
# Data-path cache ablation smoke (cache on/off x read-ahead on/off over
# sequential/random/re-read workloads); a few seconds on small windows.
go run ./cmd/benchtab -table datapath
