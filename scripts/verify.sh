#!/bin/sh
# Full local verification: vet, build, tests, and the race detector over the
# packages with concurrent internals (the split monitor, the pipelined WAL,
# and the lock-free disk stats).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core ./internal/wal ./internal/disk
