package cedarfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// Compile-time references for every re-exported type that the behavioral
// test below does not bind to a value.
var (
	_ File
	_ Entry
	_ MountStats
	_ MountOption
	_ MountReport
	_ Stats
	_ OpStats
	_ CacheStats
	_ CommitStats
	_ IntentStats
	_ SpanStats
	_ DiskStats
	_ ScrubStats
	_ SalvageStats
	_ VolumeFaultStats
	_ FaultConfig
	_ DiskFaultStats
	_ TraceEvent
	_ HistSnapshot
	_ Geometry
	_ DiskParams
)

// TestAPISurface exercises every exported name in cedarfs.go: the
// constructors, the redesigned Mount/Stats APIs, the trace hooks, the
// deprecated wrappers, and the error and class constants.
func TestAPISurface(t *testing.T) {
	// NewVolume: the one-call constructor.
	vol, err := NewVolume()
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("api surface probe")
	f, err := vol.Create("probe.txt", data)
	if err != nil {
		t.Fatal(err)
	}
	if e := f.Entry(); e.Class != Local {
		t.Fatalf("class = %v, want Local (%v, %v also exported)", e.Class, SymLink, Cached)
	}
	f2, err := vol.Open("probe.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := f2.ReadAll(); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("readback = %q, %v", got, err)
	}
	// Read again: the first pass filled the data cache, this one hits it.
	if _, err := f2.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Open("missing.txt", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open missing = %v, want ErrNotFound", err)
	}
	for _, e := range []error{ErrNotFound, ErrClosed, ErrIsSymlink, ErrReadOnly, ErrOffline} {
		if e == nil {
			t.Fatal("exported error is nil")
		}
	}

	// Stats: the one-call counter snapshot, with its nested sections.
	var st Stats = vol.Stats()
	var ops OpStats = st.Ops
	var cs CacheStats = st.Cache
	var dcs DataCacheStats = st.Cache.Data
	var cm CommitStats = st.Commit
	var ds DiskStats = st.Disk
	var fs VolumeFaultStats = st.Faults
	// The health state machine: a fresh volume is healthy and the states
	// are ordered by severity.
	var hl Health = st.Health
	if hl != HealthHealthy || hl.String() != "healthy" {
		t.Fatalf("fresh volume health = %v, want healthy", hl)
	}
	if !(HealthHealthy < HealthDegraded && HealthDegraded < HealthReadOnly &&
		HealthReadOnly < HealthOffline) {
		t.Fatal("health states not ordered by severity")
	}
	if ops.Creates != 1 || ops.Opens != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	if cs.Hits+cs.Misses == 0 {
		t.Fatalf("cache counters empty: %+v", cs)
	}
	// The data cache is on by default; the ReadAll above was served
	// through it (write-through Update at create, or a miss fill).
	if dcs.Capacity == 0 {
		t.Fatalf("data cache off by default: %+v", dcs)
	}
	if dcs.Hits+dcs.Misses == 0 {
		t.Fatalf("data cache saw no traffic: %+v", dcs)
	}
	// Config knobs for the data cache and the async pipeline are part of
	// the surface.
	_ = Config{DataCachePages: -1, ReadAhead: -1}
	_ = Config{AsyncApply: true, AdaptiveCommit: true, CommitFloor: 1, IntentQueueDepth: 1}
	if ds.Ops == 0 {
		t.Fatalf("disk counters empty: %+v", ds)
	}
	_ = cm
	_ = fs
	// A default volume runs the staged path: no intent queue.
	var iq IntentStats = st.Intent
	if iq.Enabled || cm.Adaptive {
		t.Fatalf("default volume reports async pipeline: %+v", iq)
	}
	var sp SpanStats = st.Spans["create"]
	if sp.Count != 1 {
		t.Fatalf("create span = %+v", sp)
	}
	var h HistSnapshot = sp.Latency
	if h.Count != 1 || h.Mean() <= 0 {
		t.Fatalf("create latency snapshot = %+v", h)
	}

	// TraceTo / TraceEvent / TraceSink: streaming plus the ring.
	var got []TraceEvent
	var sink TraceSink = func(ev TraceEvent) { got = append(got, ev) }
	vol.TraceTo(sink)
	if _, err := vol.Create("traced.txt", data); err != nil {
		t.Fatal(err)
	}
	if err := vol.Force(); err != nil {
		t.Fatal(err)
	}
	vol.TraceTo(nil)
	if len(got) == 0 || len(vol.TraceEvents()) == 0 {
		t.Fatalf("tracing produced no events (sink %d, ring %d)", len(got), len(vol.TraceEvents()))
	}

	// Stats is the one snapshot covering every counter family; the old
	// per-family accessors (Ops, CacheStats, FaultStats) are gone.
	if o := vol.Stats().Ops; o.Creates != 2 {
		t.Fatalf("Stats().Ops = %+v", o)
	}
	if err := vol.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Explicit disk construction: NewDisk, Format, and the Mount ladder.
	var _ = DefaultDiskParams
	d, clk, err := NewDisk(DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	var _ Clock = clk
	var _ *VirtualClock = clk
	var _ *Disk = d
	v2, err := Format(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Create("persist.txt", data); err != nil {
		t.Fatal(err)
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}

	v3, rep, err := Mount(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var _ MountReport = rep
	if !rep.CleanShutdown || rep.Salvage != nil {
		t.Fatalf("default mount report = %+v", rep)
	}
	if err := v3.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// ReadOnly option: mutations refused, platters untouched.
	v4, rep4, err := Mount(d, Config{}, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !rep4.ReadOnly {
		t.Fatalf("read-only mount report = %+v", rep4)
	}
	if _, err := v4.Create("nope.txt", data); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create on read-only mount = %v, want ErrReadOnly", err)
	}
	if f, err := v4.Open("persist.txt", 0); err != nil {
		t.Fatal(err)
	} else if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read-only readback = %q, %v", got, err)
	}

	// AllowSalvage on a healthy volume: the normal rung wins, no salvage.
	v5, rep5, err := Mount(d, Config{}, AllowSalvage())
	if err != nil {
		t.Fatal(err)
	}
	if rep5.Salvage != nil {
		t.Fatalf("healthy mount ran salvage: %+v", rep5.Salvage)
	}
	if err := v5.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Deprecated wrappers route to the same ladder.
	if _, ms, err := MountReadOnly(d, Config{}); err != nil || !ms.ReadOnly {
		t.Fatalf("MountReadOnly = %+v, %v", ms, err)
	}
	v6, ms6, ss, err := MountOrSalvage(d, Config{})
	if err != nil || ss != nil || ms6.ReadOnly {
		t.Fatalf("MountOrSalvage = %+v, %v, %v", ms6, ss, err)
	}
	if err := v6.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// The async pipeline through the public surface: mutations ride the
	// intent queue, Stats reports it, and the adaptive deadline is live.
	v8, rep8, err := Mount(d, Config{AsyncApply: true, AdaptiveCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep8
	if _, err := v8.Create("async.txt", data); err != nil {
		t.Fatal(err)
	}
	if err := v8.WaitCommitted(v8.CommitSeq()); err != nil {
		t.Fatal(err)
	}
	st8 := v8.Stats()
	if !st8.Intent.Enabled || st8.Intent.Enqueued == 0 {
		t.Fatalf("async mount intent stats = %+v", st8.Intent)
	}
	if !st8.Commit.Adaptive || st8.Commit.ForceDeadline <= 0 {
		t.Fatalf("async mount commit stats = %+v", st8.Commit)
	}
	if f, err := v8.Open("async.txt", 0); err != nil {
		t.Fatal(err)
	} else if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("async readback = %q, %v", got, err)
	}
	if err := v8.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Salvage: the direct destructive entry still recovers the file.
	v7, sst, err := Salvage(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sst.FilesRecovered < 1 {
		t.Fatalf("salvage stats = %+v", sst)
	}
	if f, err := v7.Open("persist.txt", 0); err != nil {
		t.Fatal(err)
	} else if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-salvage readback = %q, %v", got, err)
	}
	if err := v7.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// Compile-time references for the transport-agnostic FS surface.
var (
	_ FS
	_ Handle
	_ FileInfo
	_ FSStats
	_ ErrCode
	_ = Info
	_ = NewLocalFS
)

// TestErrorCodeRegistry freezes the numeric error registry. The numbers are
// wire protocol: a released code never changes meaning and is never reused,
// so this table is append-only — a failure here means a protocol break, not
// a test to update.
func TestErrorCodeRegistry(t *testing.T) {
	golden := map[ErrCode]string{
		0:   "ok",
		1:   "not-found",
		2:   "exists",
		3:   "closed",
		4:   "is-symlink",
		5:   "read-only",
		6:   "offline",
		7:   "salvage-in-progress",
		8:   "no-spares",
		9:   "root-lost",
		10:  "bad-name",
		11:  "halted",
		12:  "busy",
		13:  "bad-request",
		14:  "inconsistent",
		15:  "usage",
		255: "internal",
	}
	for code, name := range golden {
		if got := code.String(); got != name {
			t.Errorf("ErrCode(%d).String() = %q, want %q", uint16(code), got, name)
		}
	}
	// code -> error -> code round-trips for every registered code (the
	// property the wire protocol relies on to carry errors.Is across the
	// network).
	for code := range golden {
		if code == CodeOK || code == CodeInternal {
			continue
		}
		err := CodeError(code)
		if err == nil {
			t.Fatalf("CodeError(%v) = nil", code)
		}
		if back := Code(err); back != code {
			t.Errorf("Code(CodeError(%v)) = %v", code, back)
		}
	}
	// Canonical errors map to their codes, including wrapped.
	cases := []struct {
		err  error
		want ErrCode
	}{
		{nil, CodeOK},
		{ErrNotFound, CodeNotFound},
		{fmt.Errorf("open probe.txt: %w", ErrNotFound), CodeNotFound},
		{ErrExists, CodeExists},
		{ErrClosed, CodeClosed},
		{ErrIsSymlink, CodeIsSymlink},
		{ErrReadOnly, CodeReadOnly},
		{ErrOffline, CodeOffline},
		{ErrSalvageInProgress, CodeSalvageInProgress},
		{ErrNoSpares, CodeNoSpares},
		{ErrRootLost, CodeRootLost},
		{ErrBadName, CodeBadName},
		{ErrHalted, CodeHalted},
		{ErrBusy, CodeBusy},
		{ErrBadRequest, CodeBadRequest},
		{ErrInconsistent, CodeInconsistent},
		{ErrUsage, CodeUsage},
		{errors.New("unmapped"), CodeInternal},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// RemoteError wraps the canonical error for its code, so errors.Is
	// holds across the network boundary.
	re := &RemoteError{Code: CodeNotFound, Msg: "remote: not found"}
	if !errors.Is(re, ErrNotFound) {
		t.Error("RemoteError{CodeNotFound} does not wrap ErrNotFound")
	}
}

// TestExitCodes freezes the tooling exit-code contract derived from the
// registry: 0 success, 2 usage, 3 inconsistencies, 4 spare-pool
// exhaustion, 1 anything else.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{ErrUsage, 2},
		{fmt.Errorf("put needs a file name: %w", ErrUsage), 2},
		{ErrInconsistent, 3},
		{ErrNoSpares, 4},
		{ErrNotFound, 1},
		{ErrReadOnly, 1},
		{errors.New("anything else"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
