package cedarfs_test

import (
	"fmt"
	"log"

	cedarfs "repro"
)

// The basic life of a file: one synchronous I/O to create, zero to open.
func Example() {
	vol, err := cedarfs.NewVolume()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vol.Create("hello.txt", []byte("hello, Cedar")); err != nil {
		log.Fatal(err)
	}
	f, err := vol.Open("hello.txt", 0)
	if err != nil {
		log.Fatal(err)
	}
	data, err := f.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	// Output: hello, Cedar
}

// Versions: each create of an existing name makes a new immutable version.
func ExampleVolume_Create_versions() {
	vol, _ := cedarfs.NewVolume()
	vol.Create("doc", []byte("first"))
	vol.Create("doc", []byte("second"))
	newest, _ := vol.Open("doc", 0)
	old, _ := vol.Open("doc", 1)
	a, _ := newest.ReadAll()
	b, _ := old.ReadAll()
	fmt.Printf("v%d=%s v%d=%s\n", newest.Entry().Version, a, old.Entry().Version, b)
	// Output: v2=second v1=first
}

// Crash recovery: committed metadata survives; the log replays in seconds.
func ExampleMount() {
	d, _, err := cedarfs.NewDisk(cedarfs.DefaultGeometry)
	if err != nil {
		log.Fatal(err)
	}
	vol, _ := cedarfs.Format(d, cedarfs.Config{})
	vol.Create("survivor", []byte("durable"))
	vol.Force() // make the half-second window explicit
	vol.Crash() // power failure
	d.Revive()

	vol2, stats, err := cedarfs.Mount(d, cedarfs.Config{})
	if err != nil {
		log.Fatal(err)
	}
	f, _ := vol2.Open("survivor", 0)
	data, _ := f.ReadAll()
	fmt.Printf("recovered=%v content=%s\n", !stats.CleanShutdown, data)
	// Output: recovered=true content=durable
}

// Listing: properties come straight from the name table — no per-file I/O.
func ExampleVolume_List() {
	vol, _ := cedarfs.NewVolume()
	vol.Create("dir/a", []byte("x"))
	vol.Create("dir/b", []byte("yy"))
	vol.List("dir/", func(e cedarfs.Entry) bool {
		fmt.Printf("%s!%d %d bytes\n", e.Name, e.Version, e.ByteSize)
		return true
	})
	// Output:
	// dir/a!1 1 bytes
	// dir/b!1 2 bytes
}
