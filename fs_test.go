package cedarfs_test

import (
	"testing"

	cedarfs "repro"
	"repro/internal/disk"
	"repro/internal/fstest"
	"repro/internal/sim"
)

// TestLocalFSConformance runs the shared FS conformance suite against the
// in-process adapter. internal/server runs the identical suite against the
// remote client over a loopback socket — one contract, two transports.
func TestLocalFSConformance(t *testing.T) {
	fstest.Run(t, newLocalFS(cedarfs.Config{}))
}

// TestLocalFSConformanceAsync repeats the suite over the asynchronous
// metadata pipeline, where acked commit sequences and WaitCommitted do real
// work instead of being trivially satisfied.
func TestLocalFSConformanceAsync(t *testing.T) {
	fstest.Run(t, newLocalFS(cedarfs.Config{AsyncApply: true, AdaptiveCommit: true}))
}

func newLocalFS(cfg cedarfs.Config) fstest.Factory {
	return func(t *testing.T) cedarfs.FS {
		d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, sim.NewVirtualClock())
		if err != nil {
			t.Fatal(err)
		}
		vol, err := cedarfs.Format(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs := cedarfs.NewLocalFS(vol)
		t.Cleanup(func() {
			fs.Close()
			if err := vol.Shutdown(); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		})
		return fs
	}
}
