// Logdump prints the contents of an FSD volume's metadata log from a disk
// image, read-only — records, their batch boundaries, and per-image
// targets. Run it against a crashed image (fsdctl crash) to see exactly
// what recovery will replay.
//
// Usage:
//
//	logdump -img vol.img [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/wal"
)

func main() {
	img := flag.String("img", "cedar.img", "disk image file")
	verbose := flag.Bool("v", false, "print every image target")
	flag.Parse()
	if err := run(*img, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "logdump: %v\n", err)
		os.Exit(1)
	}
}

func kindName(k uint8) string {
	switch k {
	case wal.KindNameTable:
		return "nametable"
	case wal.KindLeader:
		return "leader"
	case wal.KindVAM:
		return "vam"
	default:
		return fmt.Sprintf("kind%d", k)
	}
}

func run(img string, verbose bool) error {
	d, err := disk.LoadImage(img, disk.DefaultParams, sim.NewVirtualClock())
	if err != nil {
		return err
	}
	base, size, err := core.LogRegionOf(d)
	if err != nil {
		return err
	}
	info, err := wal.Inspect(d, base, size, wal.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("log region: sectors [%d, %d), %d divisions of %d sectors\n",
		base, base+size, info.Thirds, info.ThirdLen)
	fmt.Printf("anchor: boot %d, oldest record %d at offset %d\n",
		info.BootCount, info.AnchorRecord, info.AnchorOffset)
	fmt.Printf("%d valid records:\n", len(info.Records))
	totalImages := 0
	for _, r := range info.Records {
		mark := " "
		if r.EndOfBatch {
			mark = "*"
		}
		fmt.Printf("  rec %4d @%5d  %2d images, %2d sectors %s\n",
			r.RecordNum, r.Offset, r.Images, r.Sectors, mark)
		totalImages += r.Images
		if verbose {
			for _, t := range r.Targets {
				fmt.Printf("        %s %d\n", kindName(t.Kind), t.Target)
			}
		}
	}
	fmt.Printf("total: %d images; * marks batch (force) boundaries\n", totalImages)
	if info.PartialTail > 0 {
		fmt.Printf("WARNING: %d trailing records belong to an unterminated batch and will be discarded by recovery\n", info.PartialTail)
	}
	return nil
}
