package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// withStdin feeds data to os.Stdin for one run() call.
func withStdin(t *testing.T, data []byte, fn func()) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	done := make(chan struct{})
	go func() {
		w.Write(data)
		w.Close()
		close(done)
	}()
	fn()
	<-done
	os.Stdin = old
}

// captureStdout collects what fn prints.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	return out
}

func TestCLIRoundTripWithCrash(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")

	if err := run(img, []string{"format"}); err != nil {
		t.Fatalf("format: %v", err)
	}

	content := []byte("persisted through the image file")
	withStdin(t, content, func() {
		if err := run(img, []string{"put", "notes.txt"}); err != nil {
			t.Fatalf("put: %v", err)
		}
	})

	out := captureStdout(t, func() {
		if err := run(img, []string{"get", "notes.txt"}); err != nil {
			t.Fatalf("get: %v", err)
		}
	})
	if !bytes.Equal(out, content) {
		t.Fatalf("get = %q", out)
	}

	// ls sees the file.
	out = captureStdout(t, func() {
		if err := run(img, []string{"ls"}); err != nil {
			t.Fatalf("ls: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("notes.txt")) {
		t.Fatalf("ls output: %q", out)
	}

	// stat works.
	out = captureStdout(t, func() {
		if err := run(img, []string{"stat", "notes.txt"}); err != nil {
			t.Fatalf("stat: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("notes.txt!1")) {
		t.Fatalf("stat output: %q", out)
	}

	// Crash the volume; the next command must recover and still see the
	// file (it was committed by the clean finish of `put`).
	if err := run(img, []string{"crash"}); err != nil {
		t.Fatalf("crash: %v", err)
	}
	out = captureStdout(t, func() {
		if err := run(img, []string{"get", "notes.txt"}); err != nil {
			t.Fatalf("get after crash: %v", err)
		}
	})
	if !bytes.Equal(out, content) {
		t.Fatalf("get after crash = %q", out)
	}

	// rm removes it.
	if err := run(img, []string{"rm", "notes.txt"}); err != nil {
		t.Fatalf("rm: %v", err)
	}
	if err := run(img, []string{"get", "notes.txt"}); err == nil {
		t.Fatal("get after rm succeeded")
	}

	// info and fsck run clean.
	if err := run(img, []string{"info"}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run(img, []string{"fsck"}); err != nil {
		t.Fatalf("fsck: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, []string{"get", "x"}); err == nil {
		t.Fatal("get on missing image succeeded")
	}
	if err := run(img, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	if err := run(img, []string{"bogus-command"}); err == nil {
		t.Fatal("bogus command accepted")
	}
	if err := run(img, []string{"put"}); err == nil {
		t.Fatal("put without name accepted")
	}
}

func TestCLIBurstRecovers(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := run(img, []string{"burst", "30"}); err != nil {
			t.Fatalf("burst: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("crashed")) {
		t.Fatalf("burst output: %q", out)
	}
	// The next command recovers; committed burst files are listed.
	out = captureStdout(t, func() {
		if err := run(img, []string{"ls", "burst/"}); err != nil {
			t.Fatalf("ls after burst: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("burst/f0000")) {
		t.Fatalf("no burst files after recovery: %q", out)
	}
	// Files committed by the periodic forces must be present.
	if !bytes.Contains(out, []byte("burst/f0020")) {
		t.Fatalf("committed burst file missing: %q", out)
	}
}

func TestCLIScrubAndSalvage(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	content := []byte("survives a name-table rebuild")
	withStdin(t, content, func() {
		if err := run(img, []string{"put", "notes.txt"}); err != nil {
			t.Fatalf("put: %v", err)
		}
	})

	// A healthy volume scrubs clean.
	out := captureStdout(t, func() {
		if err := run(img, []string{"scrub"}); err != nil {
			t.Fatalf("scrub: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("repaired 0 copies")) {
		t.Fatalf("scrub output: %q", out)
	}

	// Salvage rebuilds the name table from leader pages; the file survives.
	out = captureStdout(t, func() {
		if err := run(img, []string{"salvage"}); err != nil {
			t.Fatalf("salvage: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("recovered 1 files")) {
		t.Fatalf("salvage output: %q", out)
	}
	out = captureStdout(t, func() {
		if err := run(img, []string{"get", "notes.txt"}); err != nil {
			t.Fatalf("get after salvage: %v", err)
		}
	})
	if !bytes.Equal(out, content) {
		t.Fatalf("get after salvage = %q", out)
	}
}
