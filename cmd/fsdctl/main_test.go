package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	cedarfs "repro"
)

// withStdin feeds data to os.Stdin for one run() call.
func withStdin(t *testing.T, data []byte, fn func()) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	done := make(chan struct{})
	go func() {
		w.Write(data)
		w.Close()
		close(done)
	}()
	fn()
	<-done
	os.Stdin = old
}

// captureStdout collects what fn prints.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	return out
}

func TestCLIRoundTripWithCrash(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")

	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatalf("format: %v", err)
	}

	content := []byte("persisted through the image file")
	withStdin(t, content, func() {
		if err := run(img, false, []string{"put", "notes.txt"}); err != nil {
			t.Fatalf("put: %v", err)
		}
	})

	out := captureStdout(t, func() {
		if err := run(img, false, []string{"get", "notes.txt"}); err != nil {
			t.Fatalf("get: %v", err)
		}
	})
	if !bytes.Equal(out, content) {
		t.Fatalf("get = %q", out)
	}

	// ls sees the file.
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"ls"}); err != nil {
			t.Fatalf("ls: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("notes.txt")) {
		t.Fatalf("ls output: %q", out)
	}

	// stat works.
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"stat", "notes.txt"}); err != nil {
			t.Fatalf("stat: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("notes.txt!1")) {
		t.Fatalf("stat output: %q", out)
	}

	// Crash the volume; the next command must recover and still see the
	// file (it was committed by the clean finish of `put`).
	if err := run(img, false, []string{"crash"}); err != nil {
		t.Fatalf("crash: %v", err)
	}
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"get", "notes.txt"}); err != nil {
			t.Fatalf("get after crash: %v", err)
		}
	})
	if !bytes.Equal(out, content) {
		t.Fatalf("get after crash = %q", out)
	}

	// rm removes it.
	if err := run(img, false, []string{"rm", "notes.txt"}); err != nil {
		t.Fatalf("rm: %v", err)
	}
	if err := run(img, false, []string{"get", "notes.txt"}); err == nil {
		t.Fatal("get after rm succeeded")
	}

	// info and fsck run clean.
	if err := run(img, false, []string{"info"}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run(img, false, []string{"fsck"}); err != nil {
		t.Fatalf("fsck: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, false, []string{"get", "x"}); err == nil {
		t.Fatal("get on missing image succeeded")
	}
	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	if err := run(img, false, []string{"bogus-command"}); err == nil {
		t.Fatal("bogus command accepted")
	}
	if err := run(img, false, []string{"put"}); err == nil {
		t.Fatal("put without name accepted")
	}
}

func TestCLIBurstRecovers(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := run(img, false, []string{"burst", "30"}); err != nil {
			t.Fatalf("burst: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("crashed")) {
		t.Fatalf("burst output: %q", out)
	}
	// The next command recovers; committed burst files are listed.
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"ls", "burst/"}); err != nil {
			t.Fatalf("ls after burst: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("burst/f0000")) {
		t.Fatalf("no burst files after recovery: %q", out)
	}
	// Files committed by the periodic forces must be present.
	if !bytes.Contains(out, []byte("burst/f0020")) {
		t.Fatalf("committed burst file missing: %q", out)
	}
}

func TestCLIScrubAndSalvage(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	content := []byte("survives a name-table rebuild")
	withStdin(t, content, func() {
		if err := run(img, false, []string{"put", "notes.txt"}); err != nil {
			t.Fatalf("put: %v", err)
		}
	})

	// A healthy volume scrubs clean.
	out := captureStdout(t, func() {
		if err := run(img, false, []string{"scrub"}); err != nil {
			t.Fatalf("scrub: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("repaired 0 copies")) {
		t.Fatalf("scrub output: %q", out)
	}

	// Salvage rebuilds the name table from leader pages; the file survives.
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"salvage"}); err != nil {
			t.Fatalf("salvage: %v", err)
		}
	})
	if !bytes.Contains(out, []byte("recovered 1 files")) {
		t.Fatalf("salvage output: %q", out)
	}
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"get", "notes.txt"}); err != nil {
			t.Fatalf("get after salvage: %v", err)
		}
	})
	if !bytes.Equal(out, content) {
		t.Fatalf("get after salvage = %q", out)
	}
}

func TestCLIJSONAndExitCodes(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	withStdin(t, []byte("json check"), func() {
		if err := run(img, false, []string{"put", "j.txt"}); err != nil {
			t.Fatal(err)
		}
	})

	// verify (the fsck alias) with -json emits a parseable, consistent report.
	out := captureStdout(t, func() {
		if err := run(img, true, []string{"verify"}); err != nil {
			t.Fatalf("verify -json: %v", err)
		}
	})
	var vr struct {
		Entries    int      `json:"entries"`
		Consistent bool     `json:"consistent"`
		Problems   []string `json:"problems"`
	}
	if err := json.Unmarshal(out, &vr); err != nil {
		t.Fatalf("verify JSON: %v\n%s", err, out)
	}
	if !vr.Consistent || vr.Entries == 0 || len(vr.Problems) != 0 {
		t.Fatalf("unexpected verify report: %+v", vr)
	}

	// scrub -json on a healthy volume.
	out = captureStdout(t, func() {
		if err := run(img, true, []string{"scrub"}); err != nil {
			t.Fatalf("scrub -json: %v", err)
		}
	})
	var sr struct {
		NTPagesChecked int `json:"nt_pages_checked"`
		NTLost         int `json:"nt_lost"`
	}
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatalf("scrub JSON: %v\n%s", err, out)
	}
	if sr.NTPagesChecked == 0 || sr.NTLost != 0 {
		t.Fatalf("unexpected scrub report: %+v", sr)
	}

	// salvage -json; a healthy image salvages without problems.
	out = captureStdout(t, func() {
		if err := run(img, true, []string{"salvage"}); err != nil {
			t.Fatalf("salvage -json: %v", err)
		}
	})
	var sv struct {
		FilesRecovered int      `json:"files_recovered"`
		Problems       []string `json:"problems"`
	}
	if err := json.Unmarshal(out, &sv); err != nil {
		t.Fatalf("salvage JSON: %v\n%s", err, out)
	}
	if sv.FilesRecovered == 0 || len(sv.Problems) != 0 {
		t.Fatalf("unexpected salvage report: %+v", sv)
	}

	// Usage errors carry the errUsage sentinel (exit 2).
	if err := run(img, false, []string{"nonsense"}); !errors.Is(err, errUsage) {
		t.Fatalf("unknown command: %v", err)
	}
	if err := run(img, false, []string{"put"}); !errors.Is(err, errUsage) {
		t.Fatalf("missing operand: %v", err)
	}
	if err := run(img, false, []string{"crashcheck", "-bogus"}); !errors.Is(err, errUsage) {
		t.Fatalf("bad crashcheck flag: %v", err)
	}
}

func TestCLICrashcheckSingleState(t *testing.T) {
	// Re-executing one state by id is the repro path printed on violations;
	// it must run clean end to end and report exactly one state.
	out := captureStdout(t, func() {
		if err := run("unused.img", true, []string{"crashcheck", "-seed", "3", "-ops", "40", "-state", "5"}); err != nil {
			t.Fatalf("crashcheck: %v", err)
		}
	})
	var cr struct {
		States       int     `json:"states"`
		MountFails   int     `json:"mount_failures"`
		Violations   []any   `json:"violations"`
		StatesPerSec float64 `json:"states_per_sec"`
	}
	if err := json.Unmarshal(out, &cr); err != nil {
		t.Fatalf("crashcheck JSON: %v\n%s", err, out)
	}
	if cr.States != 1 || cr.MountFails != 0 || len(cr.Violations) != 0 {
		t.Fatalf("unexpected crashcheck report: %+v", cr)
	}
	if cr.StatesPerSec <= 0 {
		t.Fatalf("states/sec not reported: %+v", cr)
	}
}

func TestCLICrashcheckSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	out := captureStdout(t, func() {
		if err := run("unused.img", false, []string{"crashcheck", "-seed", "2", "-ops", "60", "-states", "40"}); err != nil {
			t.Fatalf("crashcheck sweep: %v", err)
		}
	})
	for _, want := range []string{"explored 40/", "states/sec", "simulated recovery time", "PASS"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICrashcheckNested(t *testing.T) {
	// Bounded depth-2 smoke: a handful of outer states, each with its
	// recovery crashed at sampled epochs and recovered again. Exit-code
	// contract unchanged: PASS is exit 0.
	out := captureStdout(t, func() {
		if err := run("unused.img", false, []string{"crashcheck", "-nested",
			"-depth", "2", "-seed", "4", "-ops", "40", "-states", "8", "-inner", "3"}); err != nil {
			t.Fatalf("nested crashcheck: %v", err)
		}
	})
	for _, want := range []string{"nested:", "inner (depth-2) states", "recovery-of-recovery time", "PASS"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("nested output missing %q:\n%s", want, out)
		}
	}
	// Unsupported depth and fault composition are usage-level errors.
	if err := run("unused.img", false, []string{"crashcheck", "-nested", "-depth", "3"}); err == nil {
		t.Fatal("depth 3 accepted")
	}
	if err := run("unused.img", false, []string{"crashcheck", "-nested", "-decay", "0.01"}); err == nil {
		t.Fatal("nested with decay accepted")
	}
}

// TestStatsCommand checks both renderings of the stats command: the text
// summary's section lines and the -json snapshot, which must decode back
// into the public Stats type.
func TestStatsCommand(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatalf("format: %v", err)
	}
	withStdin(t, []byte("stats probe"), func() {
		if err := run(img, false, []string{"put", "a.txt"}); err != nil {
			t.Fatalf("put: %v", err)
		}
	})

	out := captureStdout(t, func() {
		if err := run(img, false, []string{"stats"}); err != nil {
			t.Fatalf("stats: %v", err)
		}
	})
	for _, want := range []string{"ops:", "cache:", "commit:", "commit deadline:", "(fixed)", "disk:", "recovery: clean shutdown", "faults:"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	// A staged mount has no intent queue to report.
	if bytes.Contains(out, []byte("intent queue:")) {
		t.Fatalf("staged stats output reports an intent queue:\n%s", out)
	}

	out = captureStdout(t, func() {
		if err := run(img, true, []string{"stats"}); err != nil {
			t.Fatalf("stats -json: %v", err)
		}
	})
	var st cedarfs.Stats
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("stats -json does not decode into cedarfs.Stats: %v\n%s", err, out)
	}
	// A fresh mount has no logical operations yet, but opening the image
	// always costs device reads.
	if st.Disk.Ops == 0 || st.Disk.Reads == 0 {
		t.Fatalf("stats -json disk counters empty: %+v", st.Disk)
	}

	// -async mounts through the intent queue with the adaptive controller:
	// the text summary grows the queue lines and the JSON snapshot carries
	// IntentStats.
	mountAsync = true
	defer func() { mountAsync = false }()
	withStdin(t, []byte("stats probe async"), func() {
		if err := run(img, false, []string{"put", "b.txt"}); err != nil {
			t.Fatalf("async put: %v", err)
		}
	})
	out = captureStdout(t, func() {
		if err := run(img, false, []string{"stats"}); err != nil {
			t.Fatalf("async stats: %v", err)
		}
	})
	for _, want := range []string{"(adaptive)", "intent queue:", "applier busy"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("async stats output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() {
		if err := run(img, true, []string{"stats"}); err != nil {
			t.Fatalf("async stats -json: %v", err)
		}
	})
	st = cedarfs.Stats{}
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("async stats -json does not decode: %v\n%s", err, out)
	}
	if !st.Intent.Enabled || !st.Commit.Adaptive {
		t.Fatalf("async stats -json missing pipeline state: %+v", st.Intent)
	}
}

func TestCLIWorkersFlag(t *testing.T) {
	img := filepath.Join(t.TempDir(), "vol.img")
	if err := run(img, false, []string{"format"}); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"w/a.txt", "w/b.txt", "w/c.txt"} {
		withStdin(t, bytes.Repeat([]byte{'x'}, 600+i*300), func() {
			if err := run(img, false, []string{"put", name}); err != nil {
				t.Fatal(err)
			}
		})
	}

	// verify -json at two explicit widths: the reports must agree on
	// everything except the worker count and the elapsed phases.
	type report struct {
		Entries    int      `json:"entries"`
		Consistent bool     `json:"consistent"`
		Workers    int      `json:"workers"`
		Problems   []string `json:"problems"`
	}
	verifyAt := func(workers int) report {
		mountWorkers = workers
		defer func() { mountWorkers = 0 }()
		out := captureStdout(t, func() {
			if err := run(img, true, []string{"verify"}); err != nil {
				t.Fatalf("verify -workers %d: %v", workers, err)
			}
		})
		var r report
		if err := json.Unmarshal(out, &r); err != nil {
			t.Fatalf("verify JSON: %v\n%s", err, out)
		}
		return r
	}
	seq, wide := verifyAt(1), verifyAt(4)
	if seq.Workers != 1 || wide.Workers != 4 {
		t.Fatalf("reported workers %d and %d, want 1 and 4", seq.Workers, wide.Workers)
	}
	if seq.Entries != wide.Entries || !seq.Consistent || !wide.Consistent ||
		len(seq.Problems) != 0 || len(wide.Problems) != 0 {
		t.Fatalf("width changed the verify report: %+v vs %+v", seq, wide)
	}

	// salvage honors the width too and reports it with the phase split.
	mountWorkers = 4
	defer func() { mountWorkers = 0 }()
	var sv struct {
		FilesRecovered int `json:"files_recovered"`
		Workers        int `json:"workers"`
	}
	out := captureStdout(t, func() {
		if err := run(img, true, []string{"salvage"}); err != nil {
			t.Fatalf("salvage -workers 4: %v", err)
		}
	})
	if err := json.Unmarshal(out, &sv); err != nil {
		t.Fatalf("salvage JSON: %v\n%s", err, out)
	}
	if sv.Workers != 4 || sv.FilesRecovered != 3 {
		t.Fatalf("unexpected salvage report: %+v", sv)
	}
}
