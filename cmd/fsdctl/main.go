// Fsdctl is an interactive tool for FSD volumes backed by disk image files,
// so a volume survives across invocations — including deliberately crashed
// ones.
//
// Usage:
//
//	fsdctl -img vol.img format                     # make a 300 MB volume
//	fsdctl -img vol.img put notes.txt < notes.txt  # create a file (new version)
//	fsdctl -img vol.img get notes.txt > out.txt    # read the newest version
//	fsdctl -img vol.img ls [prefix]                # list files
//	fsdctl -img vol.img rm notes.txt               # delete the newest version
//	fsdctl -img vol.img stat notes.txt             # show an entry
//	fsdctl -img vol.img crash                      # exit WITHOUT clean shutdown
//	fsdctl -img vol.img burst 50                   # create 50 files, then crash
//	fsdctl -img vol.img fsck                       # mount, report recovery, shut down
//	fsdctl -img vol.img verify                     # same as fsck
//	fsdctl -img vol.img scrub                      # repair decayed duplicate copies
//	fsdctl -img vol.img salvage                    # rebuild the name table from leaders
//	fsdctl -img vol.img info                       # volume statistics
//	fsdctl -img vol.img stats                      # full observability snapshot
//	fsdctl crashcheck [-seed N] [-states N] ...    # crash-state exploration sweep
//	fsdctl crashcheck -nested [-depth 2] ...       # depth-2: crash the recovery too
//
// The -json flag switches verify/fsck, scrub, salvage, stats, and crashcheck
// to machine-readable JSON on stdout. The -workers flag sets the pool width
// of the parallel check-and-repair passes (fsck/verify, scrub, salvage);
// the default is GOMAXPROCS, and any width produces identical output —
// parallelism changes only elapsed time. Exit codes are 0 (success), 1
// (operational error), 2 (usage error), and 3 (the volume mounted but
// inconsistencies, losses, or oracle violations were found).
//
// Every command except "crash" shuts the volume down cleanly and saves the
// image; "crash" saves the image mid-flight, so the next command exercises
// log recovery exactly as a power failure would.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	cedarfs "repro"
	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/disk"
	"repro/internal/sim"
)

// Exit codes derive from the cedarfs error registry via cedarfs.ExitCode:
// 0 success, 2 usage, 3 inconsistencies, 4 spare-pool exhaustion, 1 other.
// The sentinels below alias the registry errors so run() wraps the same
// values the wire protocol and every other tool agree on. ErrNoSpares
// matters operationally: exit 4 means "replace the disk", not "run fsck
// again".
var (
	errUsage    = cedarfs.ErrUsage
	errProblems = cedarfs.ErrInconsistent
	errNoSpares = cedarfs.ErrNoSpares
)

// mountAsync switches the working mount to the asynchronous metadata
// pipeline (intent queue + adaptive group commit). Set by the global -async
// flag; a package variable so tests can flip it per run().
var mountAsync bool

// mountWorkers is the check-and-repair pool width for fsck/verify, scrub,
// and salvage (the -workers flag; 0 means GOMAXPROCS). Every scan's output
// is identical at any width — parallelism changes only elapsed time — so a
// machine-sized default is always safe.
var mountWorkers int

func cliWorkers() int {
	if mountWorkers > 0 {
		return mountWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// cliConfig is the volume configuration for the working mount.
func cliConfig() cedarfs.Config {
	return cedarfs.Config{
		AsyncApply:     mountAsync,
		AdaptiveCommit: mountAsync,
		CheckWorkers:   cliWorkers(),
		ScrubWorkers:   cliWorkers(),
	}
}

func main() {
	img := flag.String("img", "cedar.img", "disk image file")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (verify/fsck, scrub, salvage, stats, crashcheck)")
	flag.BoolVar(&mountAsync, "async", false, "mount with the asynchronous intent queue and adaptive group commit")
	flag.IntVar(&mountWorkers, "workers", 0, "check/repair pool width for fsck/verify, scrub, salvage (0 = GOMAXPROCS)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "fsdctl: need a command (format, put, get, ls, rm, stat, burst, crash, fsck, verify, scrub, salvage, info, stats, crashcheck)")
		os.Exit(2)
	}
	if err := run(*img, *jsonOut, args); err != nil {
		fmt.Fprintf(os.Stderr, "fsdctl: %v\n", err)
		os.Exit(cedarfs.ExitCode(err))
	}
}

// jsonProblems keeps an empty problem list as [] rather than null.
func jsonProblems(p []string) []string {
	if p == nil {
		return []string{}
	}
	return p
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(img string, jsonOut bool, args []string) error {
	cmd := args[0]
	clk := sim.NewVirtualClock()

	if cmd == "crashcheck" {
		// Self-contained: the sweep builds its own simulated volume, so it
		// neither needs nor touches the image file.
		return crashcheck(jsonOut, args[1:])
	}

	if cmd == "format" {
		d, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, clk)
		if err != nil {
			return err
		}
		v, err := cedarfs.Format(d, cliConfig())
		if err != nil {
			return err
		}
		if err := v.Shutdown(); err != nil {
			return err
		}
		if err := d.SaveImage(img); err != nil {
			return err
		}
		fmt.Printf("formatted %s: %d MB FSD volume\n", img, d.Geometry().Bytes()/(1<<20))
		return nil
	}

	d, err := disk.LoadImage(img, disk.DefaultParams, clk)
	if err != nil {
		return fmt.Errorf("open image (run 'format' first?): %w", err)
	}

	if cmd == "salvage" {
		// Do not even try a normal mount: salvage is for images a mount
		// rejects (both name-table copies gone), and it works — losing
		// only leader-unreachable files — on any image.
		v, st, err := cedarfs.Salvage(d, cedarfs.Config{CheckWorkers: cliWorkers()})
		if err != nil {
			return err
		}
		if jsonOut {
			if err := emitJSON(struct {
				SectorsScanned   int           `json:"sectors_scanned"`
				DamagedSectors   int           `json:"damaged_sectors"`
				FilesRecovered   int           `json:"files_recovered"`
				FilesPartial     int           `json:"files_partial"`
				ConflictsDropped int           `json:"conflicts_dropped"`
				Workers          int           `json:"workers"`
				Problems         []string      `json:"problems"`
				ElapsedSim       time.Duration `json:"elapsed_sim_ns"`
				SweepSim         time.Duration `json:"sweep_sim_ns"`
				RebuildSim       time.Duration `json:"rebuild_sim_ns"`
				FinalizeSim      time.Duration `json:"finalize_sim_ns"`
			}{st.SectorsScanned, st.DamagedSectors, st.FilesRecovered,
				st.FilesPartial, st.ConflictsDropped, st.Workers, jsonProblems(st.Problems),
				st.Elapsed, st.SweepElapsed, st.RebuildElapsed, st.FinalizeElapsed}); err != nil {
				return err
			}
		} else {
			fmt.Printf("salvage scanned %d sectors (%d damaged) in %v simulated (%d workers)\n",
				st.SectorsScanned, st.DamagedSectors, st.Elapsed.Round(1e6), st.Workers)
			fmt.Printf("phases: sweep %v, rebuild %v, finalize %v\n",
				st.SweepElapsed.Round(1e6), st.RebuildElapsed.Round(1e6), st.FinalizeElapsed.Round(1e6))
			fmt.Printf("recovered %d files (%d truncated, %d stale leaders dropped)\n",
				st.FilesRecovered, st.FilesPartial, st.ConflictsDropped)
			for _, p := range st.Problems {
				fmt.Printf("PROBLEM: %s\n", p)
			}
		}
		if err := v.Shutdown(); err != nil {
			return err
		}
		if err := d.SaveImage(img); err != nil {
			return err
		}
		if len(st.Problems) > 0 {
			return fmt.Errorf("salvage: %w", errProblems)
		}
		return nil
	}

	v, ms, err := cedarfs.Mount(d, cliConfig())
	if err != nil {
		return err
	}
	if !ms.CleanShutdown {
		fmt.Fprintf(os.Stderr, "recovered after crash: %d log records replayed, VAM rebuilt=%v, took %v simulated\n",
			ms.LogRecords, ms.VAMReconstructed, ms.Elapsed.Round(1e6))
	}

	finish := func() error {
		if err := v.Shutdown(); err != nil {
			return err
		}
		return d.SaveImage(img)
	}

	switch cmd {
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("put needs a file name: %w", errUsage)
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		f, err := v.Create(args[1], data)
		if err != nil {
			return err
		}
		e := f.Entry()
		fmt.Printf("created %s!%d (%d bytes, %d runs)\n", e.Name, e.Version, e.ByteSize, len(e.Runs))
		return finish()
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("get needs a file name: %w", errUsage)
		}
		f, err := v.Open(args[1], version(args))
		if err != nil {
			return err
		}
		data, err := f.ReadAll()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return finish()
	case "ls":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		err := v.List(prefix, func(e cedarfs.Entry) bool {
			fmt.Printf("%-40s !%-3d %8d bytes  %s\n", e.Name, e.Version, e.ByteSize, e.Class)
			return true
		})
		if err != nil {
			return err
		}
		return finish()
	case "rm":
		if len(args) < 2 {
			return fmt.Errorf("rm needs a file name: %w", errUsage)
		}
		if err := v.Delete(args[1], version(args)); err != nil {
			return err
		}
		return finish()
	case "stat":
		if len(args) < 2 {
			return fmt.Errorf("stat needs a file name: %w", errUsage)
		}
		e, err := v.Stat(args[1], version(args))
		if err != nil {
			return err
		}
		fmt.Printf("%s!%d\n  class %s  uid %d\n  %d bytes in %d runs\n  created %v  last used %v\n",
			e.Name, e.Version, e.Class, e.UID, e.ByteSize, len(e.Runs), e.CreateTime, e.LastUsed)
		return finish()
	case "burst":
		// Create n files with committed prefixes, then pull the plug:
		// the saved image carries a live log for the next command (or
		// logdump) to recover.
		n := 20
		if len(args) > 1 {
			fmt.Sscanf(args[1], "%d", &n)
		}
		for i := 0; i < n; i++ {
			data := []byte(fmt.Sprintf("burst file %d contents", i))
			if _, err := v.Create(fmt.Sprintf("burst/f%04d", i), data); err != nil {
				return err
			}
			if i%7 == 6 {
				if err := v.Force(); err != nil {
					return err
				}
			}
		}
		v.Crash()
		d.Revive()
		if err := d.SaveImage(img); err != nil {
			return err
		}
		fmt.Printf("created %d files and crashed; run 'ls' to recover or logdump to inspect\n", n)
		return nil
	case "crash":
		// Write some unforced activity, then pull the plug: the image is
		// saved with whatever reached the platters.
		v.Crash()
		d.Revive() // the image itself is intact; only volatile state died
		if err := d.SaveImage(img); err != nil {
			return err
		}
		fmt.Println("crashed; next command will run log recovery")
		return nil
	case "fsck", "verify":
		// Mount already recovered; run the advisory full-volume
		// verification (FSD never needs it — see Verify's doc comment).
		st, err := v.Verify()
		if err != nil {
			return err
		}
		if jsonOut {
			if err := emitJSON(struct {
				Entries        int           `json:"entries"`
				Leaders        int           `json:"leaders"`
				LeadersPending int           `json:"leaders_pending"`
				Symlinks       int           `json:"symlinks"`
				Consistent     bool          `json:"consistent"`
				Workers        int           `json:"workers"`
				Problems       []string      `json:"problems"`
				ElapsedSim     time.Duration `json:"elapsed_sim_ns"`
				WalkSim        time.Duration `json:"walk_sim_ns"`
				CheckSim       time.Duration `json:"check_sim_ns"`
				LeaderSim      time.Duration `json:"leader_sim_ns"`
			}{st.Entries, st.Leaders, st.LeadersPending, st.Symlinks,
				len(st.Problems) == 0, st.Workers, jsonProblems(st.Problems),
				st.Elapsed, st.WalkElapsed, st.CheckElapsed, st.LeaderElapsed}); err != nil {
				return err
			}
		} else {
			fmt.Printf("verified %d entries, %d leaders (%d pending) in %v simulated (%d workers)\n",
				st.Entries, st.Leaders, st.LeadersPending, st.Elapsed.Round(1e6), st.Workers)
			fmt.Printf("phases: walk %v, check %v, leaders %v\n",
				st.WalkElapsed.Round(1e6), st.CheckElapsed.Round(1e6), st.LeaderElapsed.Round(1e6))
			if len(st.Problems) == 0 {
				fmt.Println("volume consistent")
			} else {
				for _, p := range st.Problems {
					fmt.Printf("PROBLEM: %s\n", p)
				}
			}
		}
		if err := finish(); err != nil {
			return err
		}
		if len(st.Problems) > 0 {
			return fmt.Errorf("verify: %w", errProblems)
		}
		return nil
	case "scrub":
		st, err := v.Scrub()
		if err != nil {
			return err
		}
		if jsonOut {
			if err := emitJSON(struct {
				NTPagesChecked  int           `json:"nt_pages_checked"`
				LeadersChecked  int           `json:"leaders_checked"`
				LogRecords      int           `json:"log_records"`
				SectorsChecked  int           `json:"sectors_checked"`
				Repaired        int           `json:"repaired"`
				NTRepaired      int           `json:"nt_repaired"`
				LeadersRepaired int           `json:"leaders_repaired"`
				RootsRepaired   int           `json:"roots_repaired"`
				LogRepaired     int           `json:"log_repaired"`
				Retired         int           `json:"retired"`
				NTLost          int           `json:"nt_lost"`
				SpareExhausted  bool          `json:"spare_exhausted"`
				Problems        []string      `json:"problems"`
				ElapsedSim      time.Duration `json:"elapsed_sim_ns"`
			}{st.NTPagesChecked, st.LeadersChecked, st.LogRecords, st.SectorsChecked,
				st.Repaired(), st.NTRepaired, st.LeadersRepaired, st.RootsRepaired,
				st.LogRepaired, st.Retired, st.NTLost, st.SpareExhausted,
				jsonProblems(st.Problems), st.Elapsed}); err != nil {
				return err
			}
		} else {
			fmt.Printf("scrubbed %d name-table pages, %d leaders, %d log records (%d sectors) in %v simulated\n",
				st.NTPagesChecked, st.LeadersChecked, st.LogRecords, st.SectorsChecked, st.Elapsed.Round(1e6))
			fmt.Printf("repaired %d copies (%d NT, %d leaders, %d roots, %d log), retired %d sectors\n",
				st.Repaired(), st.NTRepaired, st.LeadersRepaired, st.RootsRepaired, st.LogRepaired, st.Retired)
			if st.NTLost > 0 {
				fmt.Printf("%d pages lost beyond repair — run 'salvage'\n", st.NTLost)
			}
			if st.SpareExhausted {
				fmt.Println("SPARE POOL EXHAUSTED: bad sectors can no longer be retired — volume is read-only, replace the disk")
			}
			for _, p := range st.Problems {
				fmt.Printf("PROBLEM: %s\n", p)
			}
		}
		if err := finish(); err != nil {
			return err
		}
		if st.SpareExhausted {
			return fmt.Errorf("scrub: %w", errNoSpares)
		}
		if st.NTLost > 0 || len(st.Problems) > 0 {
			return fmt.Errorf("scrub: %w", errProblems)
		}
		return nil
	case "info":
		free := v.VAM().FreeCount()
		total := d.Geometry().Sectors()
		fmt.Printf("geometry: %d sectors (%d MB)\n", total, d.Geometry().Bytes()/(1<<20))
		fmt.Printf("free: %d sectors (%.1f%%)\n", free, 100*float64(free)/float64(total))
		st := d.Stats()
		fmt.Printf("session I/O: %d ops (%d reads, %d writes)\n", st.Ops, st.Reads, st.Writes)
		return finish()
	case "stats":
		// The full observability snapshot for this session (everything since
		// the mount above, including the recovery work the mount itself did).
		st := v.Stats()
		if jsonOut {
			if err := emitJSON(st); err != nil {
				return err
			}
			return finish()
		}
		fmt.Printf("ops: %d creates, %d opens, %d deletes, %d reads, %d writes, %d lists, %d touches\n",
			st.Ops.Creates, st.Ops.Opens, st.Ops.Deletes, st.Ops.Reads,
			st.Ops.Writes, st.Ops.Lists, st.Ops.Touches)
		fmt.Printf("cache: %d hits, %d misses, %d home writes\n",
			st.Cache.Hits, st.Cache.Misses, st.Cache.HomeWrites)
		if dc := st.Cache.Data; dc.Capacity > 0 {
			fmt.Printf("data cache: %d/%d frames, %d hits, %d misses, %d read-ahead sectors, %d/%d coalesced reads/writes, %d invalidated, %d evicted\n",
				dc.Size, dc.Capacity, dc.Hits, dc.Misses, dc.ReadAheadSectors,
				dc.CoalescedReads, dc.CoalescedWrites, dc.Invalidated, dc.Evicted)
		}
		fmt.Printf("commit: %d forces, %d records, %d/%d images logged/staged (batching %.2fx), %d sectors\n",
			st.Commit.Forces, st.Commit.Records, st.Commit.ImagesLogged,
			st.Commit.ImagesStaged, st.Commit.BatchingFactor, st.Commit.SectorsWritten)
		mode := "fixed"
		if st.Commit.Adaptive {
			mode = "adaptive"
		}
		fmt.Printf("commit deadline: %v (%s)\n",
			st.Commit.ForceDeadline.Round(100*time.Microsecond), mode)
		if iq := st.Intent; iq.Enabled {
			fmt.Printf("intent queue: depth %d (max %d), %d enqueued, %d applied, %d reader waits, applier busy %v\n",
				iq.Depth, iq.MaxDepth, iq.Enqueued, iq.Applied, iq.ReaderWaits,
				iq.ApplierBusy.Round(time.Millisecond))
			if iq.ApplyLag.Count > 0 {
				fmt.Printf("apply lag: %d samples, mean %.1f ms, max %v\n",
					iq.ApplyLag.Count, iq.ApplyLag.Mean()/float64(time.Millisecond),
					time.Duration(iq.ApplyLag.Max).Round(time.Millisecond))
			}
		}
		fmt.Printf("disk: %d ops (%d reads, %d writes), %d/%d sectors read/written, busy %v simulated\n",
			st.Disk.Ops, st.Disk.Reads, st.Disk.Writes, st.Disk.SectorsRead,
			st.Disk.SectorsWritten, st.Disk.BusyTime().Round(time.Millisecond))
		if rc := st.Recovery; rc.Ran {
			how := "log replayed"
			if rc.CleanShutdown {
				how = "clean shutdown"
			}
			fmt.Printf("recovery: %s — %d records, %d images applied, %d repaired, %d torn, %d tail discarded, %d gap breaks, %d sectors read, %v simulated\n",
				how, rc.Records, rc.Images, rc.Repaired, rc.TornRecords,
				rc.TailDiscarded, rc.GapBreaks, rc.SectorsRead,
				rc.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("faults: %d read retries (%d recovered), %d scrub passes, %d copies repaired, %d sectors retired\n",
			st.Faults.ReadRetries, st.Faults.RetriedOK, st.Faults.Scrubs, st.Faults.Repaired, st.Faults.Retired)
		fmt.Printf("write path: %d retries, %d remaps, %d hung ops, error budget %d\n",
			st.Faults.WriteRetries, st.Faults.WriteRemaps, st.Faults.HungOps, st.Faults.ErrorBudget)
		if st.Health == core.HealthHealthy {
			fmt.Printf("health: %s\n", st.Health)
		} else {
			fmt.Printf("health: %s (%s)\n", st.Health, st.HealthReason)
		}
		for _, name := range core.SpanNames() {
			sp, ok := st.Spans[name]
			if !ok {
				continue
			}
			fmt.Printf("span %-12s %6d calls, %d errors, mean %.1f ms\n",
				name, sp.Count, sp.Errors, sp.Latency.Mean()/float64(time.Millisecond))
		}
		return finish()
	default:
		return fmt.Errorf("unknown command %q: %w", cmd, errUsage)
	}
}

// crashcheck runs the systematic crash-state exploration on an in-memory
// volume and reports the oracle verdict.
func crashcheck(jsonOut bool, args []string) error {
	fs := flag.NewFlagSet("crashcheck", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "workload + enumeration seed")
	states := fs.Int("states", 0, "cap on executed states (0 = all enumerated)")
	state := fs.Int("state", -1, "re-execute exactly this state id (repro mode)")
	ops := fs.Int("ops", 0, "workload length (0 = default)")
	decay := fs.Float64("decay", 0, "latent media decay probability composed on each crash image")
	writeDecay := fs.Float64("writedecay", 0, "write-fault probability (transient; bad-on-write at 1/4) composed on each crash image")
	workers := fs.Int("workers", 0, "parallel state executors (0 = GOMAXPROCS)")
	async := fs.Bool("async", false, "run the workload through the asynchronous intent queue")
	nested := fs.Bool("nested", false, "depth-2 exploration: crash each state's recovery at its barrier epochs and recover again")
	depth := fs.Int("depth", 0, "nested exploration depth (only 2 is supported; 0 = 2 with -nested)")
	inner := fs.Int("inner", 0, "with -nested, inner crash states sampled per outer state (0 = default 8)")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("crashcheck: %w", errUsage)
	}
	res, err := crashtest.Run(crashtest.Config{
		Seed:        *seed,
		Ops:         *ops,
		MaxStates:   *states,
		StateID:     *state,
		Workers:     *workers,
		Decay:       *decay,
		WriteDecay:  *writeDecay,
		Async:       *async,
		Nested:      *nested,
		Depth:       *depth,
		InnerStates: *inner,
	})
	if err != nil {
		return err
	}
	rmin, rmed, rmax := res.RecoverySummary()
	nmin, nmed, nmax := res.RecoveryOfRecoverySummary()
	if jsonOut {
		if err := emitJSON(struct {
			*crashtest.Result
			StatesPerSec float64       `json:"states_per_sec"`
			RecoveryMin  time.Duration `json:"recovery_min_ns"`
			RecoveryMed  time.Duration `json:"recovery_median_ns"`
			RecoveryMax  time.Duration `json:"recovery_max_ns"`
			RecRecMin    time.Duration `json:"recovery_of_recovery_min_ns,omitempty"`
			RecRecMed    time.Duration `json:"recovery_of_recovery_median_ns,omitempty"`
			RecRecMax    time.Duration `json:"recovery_of_recovery_max_ns,omitempty"`
		}{res, float64(res.States) / res.Elapsed.Seconds(), rmin, rmed, rmax, nmin, nmed, nmax}); err != nil {
			return err
		}
	} else {
		fmt.Printf("workload: seed %d, %d ops (%d acked, %d unacked), %d barrier epochs, %d journaled writes\n",
			res.Seed, res.Ops, res.AckedOps, res.UnackedOps, res.Epochs, res.TracedWrites)
		fmt.Printf("explored %d/%d crash states (%d prefix, %d reorder, %d torn) in %v (%.0f states/sec)\n",
			res.States, res.StatesTotal, res.PrefixStates, res.ReorderStates, res.TornStates,
			res.Elapsed.Round(time.Millisecond), float64(res.States)/res.Elapsed.Seconds())
		fmt.Printf("recovery: %d torn records, %d discarded tail records, %d gap breaks across the sweep\n",
			res.TornRecords, res.TailDiscarded, res.GapBreaks)
		fmt.Printf("simulated recovery time: min %v, median %v, max %v\n",
			rmin.Round(time.Millisecond), rmed.Round(time.Millisecond), rmax.Round(time.Millisecond))
		if *nested {
			fmt.Printf("nested: %d/%d inner (depth-2) states, %d inner mount failures, %d depth-2 violations\n",
				res.InnerStates, res.InnerStatesTotal, res.InnerMountFailures, res.InnerViolations)
			fmt.Printf("recovery-of-recovery time: min %v, median %v, max %v\n",
				nmin.Round(time.Millisecond), nmed.Round(time.Millisecond), nmax.Round(time.Millisecond))
		}
		if res.MediaLosses > 0 {
			fmt.Printf("media losses under decay: %d (single-copy data has no redundancy)\n", res.MediaLosses)
		}
		if res.MountFailures == 0 && res.InnerMountFailures == 0 && len(res.Violations) == 0 {
			fmt.Println("oracle: every acknowledged op durable, every state mountable — PASS")
		}
		for _, viol := range res.Violations {
			fmt.Printf("VIOLATION: %s\n  repro: fsdctl crashcheck -seed %d -state %d\n  %s\n",
				viol.Desc, viol.Seed, viol.StateID, viol.State)
		}
		if res.MountFailures > 0 || res.InnerMountFailures > 0 {
			fmt.Printf("MOUNT FAILURES: %d outer, %d inner\n", res.MountFailures, res.InnerMountFailures)
		}
	}
	if res.MountFailures > 0 || res.InnerMountFailures > 0 || len(res.Violations) > 0 {
		return fmt.Errorf("crashcheck: %w", errProblems)
	}
	return nil
}

// version parses an optional trailing "!N" version argument.
func version(args []string) uint32 {
	if len(args) >= 3 {
		var v uint32
		fmt.Sscanf(args[2], "%d", &v)
		return v
	}
	return 0
}

var _ = core.Config{}
