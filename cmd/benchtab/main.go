// Benchtab regenerates every table and measured claim of the paper's
// evaluation on full-size simulated volumes and prints a paper-vs-measured
// comparison.
//
// Usage:
//
//	benchtab                 # all tables
//	benchtab -table 2        # just Table 2
//	benchtab -table gc       # the group-commit statistics (5.4)
//	benchtab -table model    # the analytical-model validation (6)
//	benchtab -table recovery # recovery comparison (7)
//	benchtab -table tables   # Tables 2/3/4/5 from the live observability counters
//	benchtab -table ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: hw, 1-5, gc, model, recovery, concurrency, robustness, crashsweep, nestedcrash, pfsck, datapath, faultpath, tables, ablations, all")
	concJSON := flag.String("concurrency-json", "", "also write the concurrency report to this path (e.g. BENCH_concurrency.json)")
	dataJSON := flag.String("datapath-json", "", "also write the data-path cache report to this path (e.g. BENCH_datapath.json)")
	tablesJSON := flag.String("tables-json", "", "also write the live-counter tables report to this path (e.g. BENCH_tables.json)")
	robJSON := flag.String("robustness-json", "", "also write the robustness report to this path (e.g. BENCH_robustness.json)")
	sweepJSON := flag.String("crashsweep-json", "", "also write the crash-sweep report to this path (e.g. BENCH_crashsweep.json)")
	nestedJSON := flag.String("nestedcrash-json", "", "also write the depth-2 nested-crash report to this path (e.g. BENCH_nestedcrash.json)")
	asyncJSON := flag.String("async-json", "", "also write the async-pipeline report to this path (e.g. BENCH_async.json)")
	faultJSON := flag.String("faultpath-json", "", "also write the write-fault-path report to this path (e.g. BENCH_faultpath.json)")
	pfsckJSON := flag.String("pfsck-json", "", "also write the parallel check & repair report to this path (e.g. BENCH_pfsck.json)")
	flag.Parse()

	type gen struct {
		name string
		fn   func() (bench.Table, error)
	}
	all := []gen{
		{"hw", bench.Hardware},
		{"1", bench.Table1},
		{"2", bench.Table2},
		{"3", bench.Table3},
		{"4", bench.Table4},
		{"5", bench.Table5},
		{"gc", bench.GroupCommit},
		{"model", bench.ModelValidation},
		{"recovery", bench.Recovery},
		{"recovery", bench.RecoveryScaling},
		{"concurrency", bench.Concurrency},
		{"async", bench.Async},
		{"faultpath", bench.FaultPath},
		{"robustness", bench.Robustness},
		{"crashsweep", bench.CrashSweep},
		{"nestedcrash", bench.NestedCrash},
		{"pfsck", bench.PFsck},
		{"datapath", bench.DataPath},
		{"tables", bench.TablesIOs},
		{"tables", bench.TablesBatching},
		{"tables", bench.TablesTimings},
	}
	ablations := []gen{
		{"ablations", bench.AblationCommitInterval},
		{"ablations", bench.AblationThirds},
		{"ablations", bench.AblationDoubleWrite},
		{"ablations", bench.AblationPlacement},
		{"ablations", bench.AblationAllocator},
		{"ablations", bench.AblationVAMLogging},
		{"ablations", bench.AblationLogSize},
	}

	want := strings.ToLower(*table)
	ran := 0
	out := func(format string, args ...interface{}) { fmt.Printf(format, args...) }
	for _, g := range append(all, ablations...) {
		if want != "all" && want != g.name {
			continue
		}
		t, err := g.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", g.name, err)
			os.Exit(1)
		}
		t.Print(out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchtab: unknown table %q\n", *table)
		os.Exit(2)
	}
	if *concJSON != "" {
		rep, err := bench.WriteConcurrencyJSON(*concJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: concurrency json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (8-worker speedup %.2fx)\n", *concJSON, rep.Speedup8)
	}
	if *dataJSON != "" {
		rep, err := bench.WriteDataPathJSON(*dataJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: datapath json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (sequential read reduction %.1fx, re-read hit rate %.0f%%)\n",
			*dataJSON, rep.SeqReadReduction, rep.RereadHitRate*100)
	}
	if *robJSON != "" {
		rep, err := bench.WriteRobustnessJSON(*robJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: robustness json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (salvage %.1fx faster than scavenge)\n", *robJSON, rep.SalvageSpeedup)
	}
	if *tablesJSON != "" {
		rep, err := bench.WriteTablesJSON(*tablesJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: tables json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (bulk-delete batching factor %.2fx)\n", *tablesJSON, rep.Batching.BatchingFactor)
	}
	if *sweepJSON != "" {
		rep, err := bench.WriteCrashSweepJSON(*sweepJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: crashsweep json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d states, %.0f states/sec, max recovery %.2f s)\n",
			*sweepJSON, rep.States, rep.StatesPerSec, rep.RecoveryMaxS)
	}
	if *nestedJSON != "" {
		rep, err := bench.WriteNestedCrashJSON(*nestedJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: nestedcrash json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d outer / %d inner states, %d depth-2 violations, max recovery-of-recovery %.2f s)\n",
			*nestedJSON, rep.OuterStates, rep.InnerStates, rep.Violations, rep.RecRecMaxS)
	}
	if *asyncJSON != "" {
		rep, err := bench.WriteAsyncJSON(*asyncJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: async json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (async-adaptive vs staged-fixed at 8 workers %.2fx)\n",
			*asyncJSON, rep.Speedup8)
	}
	if *pfsckJSON != "" {
		rep, err := bench.WritePFsckJSON(*pfsckJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: pfsck json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (8-worker verify %.2fx, salvage sweep %.2fx)\n",
			*pfsckJSON, rep.VerifySpeedup8, rep.SalvageSpeedup8)
	}
	if *faultJSON != "" {
		rep, err := bench.WriteFaultPathJSON(*faultJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: faultpath json: %v\n", err)
			os.Exit(1)
		}
		worst := rep.Cells[len(rep.Cells)-1]
		fmt.Printf("\nwrote %s (worst cell %s: %.2fx slowdown, health %s)\n",
			*faultJSON, worst.Mode, worst.SlowdownX, worst.Health)
	}
}
