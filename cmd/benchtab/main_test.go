package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestTablesGolden renders the three live-counter tables exactly as
// `benchtab -table tables` prints them and checks the output structure plus
// the headline claims: zero-I/O warm opens, a bulk-delete batching factor of
// at least 2x (the paper reports 2.98x), and model predictions near the
// span-measured timings. The three generators share one memoized run, so
// this costs a single volume.
func TestTablesGolden(t *testing.T) {
	var buf bytes.Buffer
	out := func(format string, args ...interface{}) { fmt.Fprintf(&buf, format, args...) }
	for _, fn := range []func() (bench.Table, error){
		bench.TablesIOs, bench.TablesBatching, bench.TablesTimings,
	} {
		tb, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		tb.Print(out)
	}
	text := buf.String()
	for _, want := range []string{
		"=== T2: Disk I/Os per operation, from live counters (Table 2) ===",
		"Operation", "I/Os per op", "meta I/Os per op",
		"open (warm name table)",
		"small create (600 B)",
		"delete",
		"=== T3: Group-commit batching on a bulk delete, from live counters (Table 3) ===",
		"batching factor (staged / logged)", "2.98",
		"=== T4/5: Model vs span-measured operation timings (Tables 4 and 5) ===",
		"FSD open", "FSD small create", "FSD small delete", "Error %",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("tables output missing %q:\n%s", want, text)
		}
	}

	// The JSON report backs the same run; verify the recorded claims.
	path := filepath.Join(t.TempDir(), "tables.json")
	rep, err := bench.WriteTablesJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded bench.TablesReport
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("tables json does not round-trip: %v", err)
	}
	if decoded.Batching.BatchingFactor != rep.Batching.BatchingFactor {
		t.Fatalf("json batching %v != returned %v", decoded.Batching.BatchingFactor, rep.Batching.BatchingFactor)
	}
	if rep.Batching.BatchingFactor < 2 {
		t.Fatalf("bulk-delete batching factor %.2f < 2 (paper: 2.98)", rep.Batching.BatchingFactor)
	}
	for _, r := range rep.IOs {
		if r.Operation == "open (warm name table)" && r.IOsPerOp != 0 {
			t.Fatalf("warm open took %.2f I/Os per op, want 0", r.IOsPerOp)
		}
	}
	for _, r := range rep.Timings {
		e := r.ErrorPct
		if e < 0 {
			e = -e
		}
		if e > 15 {
			t.Fatalf("%s: model error %.1f%% (model %.1f ms vs measured %.1f ms)",
				r.Operation, r.ErrorPct, r.ModelMs, r.MeasuredMs)
		}
	}
}
