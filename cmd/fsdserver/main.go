// Command fsdserver serves an FSD volume over TCP: the network front-end
// of the reproduction, speaking the internal/wire protocol through
// internal/server to any client built on the cedarfs.FS interface
// (package client, cmd/soak).
//
// The volume lives on a fresh simulated disk formatted at startup; the
// simulation clock is virtual, so disk time advances with activity and the
// server runs as fast as the host allows. Stop it with SIGINT/SIGTERM for
// a clean shutdown (the volume stamps clean; a kill -9 is the crash case).
//
// Usage:
//
//	fsdserver [-addr :9353] [-geometry default|small] [-async] [-adaptive]
//	          [-sessions N] [-bp N] [-stats 10s]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	cedarfs "repro"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":9353", "listen address")
		geometry = flag.String("geometry", "default", "volume geometry: default (300 MB) or small (19 MB)")
		async    = flag.Bool("async", false, "run the asynchronous metadata pipeline")
		adaptive = flag.Bool("adaptive", false, "adaptive group-commit deadline (with -async)")
		sessions = flag.Int("sessions", 0, "max concurrent sessions (0 = unlimited)")
		bp       = flag.Int("bp", 0, "backpressure intent-queue depth (0 = auto, -1 = off)")
		statsEvc = flag.Duration("stats", 0, "print a stats line every interval (0 = off)")
	)
	flag.Parse()
	if err := run(*addr, *geometry, *async, *adaptive, *sessions, *bp, *statsEvc); err != nil {
		fmt.Fprintf(os.Stderr, "fsdserver: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, geometry string, async, adaptive bool, sessions, bp int, statsEvery time.Duration) error {
	g := disk.DefaultGeometry
	switch geometry {
	case "default":
	case "small":
		g = disk.SmallGeometry
	default:
		return fmt.Errorf("unknown geometry %q", geometry)
	}
	d, err := disk.New(g, disk.DefaultParams, sim.NewVirtualClock())
	if err != nil {
		return err
	}
	vol, err := cedarfs.Format(d, cedarfs.Config{AsyncApply: async, AdaptiveCommit: adaptive})
	if err != nil {
		return err
	}
	fs := cedarfs.NewLocalFS(vol)
	srv := server.New(fs, server.Config{MaxSessions: sessions, BackpressureDepth: bp})

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fsdserver: serving %s volume on %s (async=%v adaptive=%v)\n",
		geometry, l.Addr(), async, adaptive)

	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				st := srv.Stats()
				vst := vol.Stats()
				fmt.Fprintf(os.Stderr,
					"fsdserver: sessions=%d/%d reqs=%d errs=%d proto=%d stalls=%d handles=%d commit=%d depth=%d\n",
					st.Sessions, st.SessionsTotal, st.Requests, st.Errors, st.ProtocolErrors,
					st.Stalls, st.OpenHandles, vol.CommitSeq(), vst.Intent.Depth)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fsdserver: %v, shutting down\n", sig)
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fs.Close()
	return vol.Shutdown()
}
