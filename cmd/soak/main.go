// Command soak drives an FSD network server with tens of thousands of
// concurrent simulated clients and reports latency percentiles and
// throughput — the scale experiment for the network front-end, in the
// spirit of the paper's "a building of Dorados against one file server".
//
// Each simulated client is a goroutine with its own Poisson arrival
// process (exponential think time at -rate ops/sec) and a configurable
// operation mix; all clients multiplex over one pooled, pipelining
// client.Client, so the socket count stays at -conns while the in-flight
// concurrency is the client population. Latencies are recorded in a
// log-linear histogram (16 sub-buckets per octave) and reduced to
// p50/p99/p99.9.
//
// With no -addr, soak starts an in-process fsdserver on a loopback socket
// (still real TCP through the full wire protocol) so one command
// reproduces the benchmark:
//
//	go run ./cmd/soak -clients 10000 -duration 8s -json BENCH_server.json
//
// The run fails (exit 1) if any protocol error is observed on either side.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"math/rand"
	"net"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cedarfs "repro"
	"repro/client"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server address (empty = start an in-process server)")
		clients  = flag.Int("clients", 10000, "concurrent simulated clients")
		conns    = flag.Int("conns", 64, "TCP connections in the shared pool")
		duration = flag.Duration("duration", 8*time.Second, "measurement window")
		rate     = flag.Float64("rate", 5, "mean ops/sec per client (Poisson arrivals)")
		mix      = flag.String("mix", "read=40,write=20,create=15,stat=10,list=5,delete=5,force=3,wait=2", "op mix weights")
		seed     = flag.Int64("seed", 1, "rng seed")
		async    = flag.Bool("async", true, "in-process server: run the async metadata pipeline")
		jsonOut  = flag.String("json", "", "write the result as JSON to this file (default stdout)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	if err := run(*addr, *clients, *conns, *duration, *rate, *mix, *seed, *async, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}
}

// ---- op mix --------------------------------------------------------------

var opNames = []string{"read", "write", "create", "stat", "list", "delete", "force", "wait"}

const (
	opRead = iota
	opWrite
	opCreate
	opStat
	opList
	opDelete
	opForce
	opWait
	opCount
)

func parseMix(s string) ([opCount]int, error) {
	var w [opCount]int
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return w, fmt.Errorf("bad mix element %q", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		idx := -1
		for i, name := range opNames {
			if name == kv[0] {
				idx = i
			}
		}
		if idx < 0 {
			return w, fmt.Errorf("unknown op %q (have %s)", kv[0], strings.Join(opNames, ", "))
		}
		w[idx] = n
	}
	return w, nil
}

// ---- log-linear latency histogram ---------------------------------------

// hist is a concurrent log-linear histogram over nanoseconds: 16 linear
// sub-buckets per power-of-two octave, so percentiles are accurate to
// ~6% across the whole range. All mutation is a single atomic add.
type hist struct {
	buckets [64 * 16]atomic.Uint64
	count   atomic.Uint64
	max     atomic.Uint64
}

func (h *hist) record(d time.Duration) {
	ns := uint64(d)
	if ns == 0 {
		ns = 1
	}
	oct := bits.Len64(ns) - 1
	var sub uint64
	if oct >= 4 {
		sub = (ns - 1<<oct) >> (oct - 4)
	}
	h.buckets[oct*16+int(sub)].Add(1)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// quantile returns the representative latency at quantile q in [0,1].
func (h *hist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > target {
			oct, sub := i/16, uint64(i%16)
			lo := uint64(1) << oct
			width := lo / 16
			if width == 0 {
				width = 1
			}
			return time.Duration(lo + sub*width + width/2)
		}
	}
	return time.Duration(h.max.Load())
}

// ---- result --------------------------------------------------------------

type opResult struct {
	Ops    uint64  `json:"ops"`
	Errors uint64  `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	Maxus  float64 `json:"max_us"`
}

type result struct {
	Clients        int                 `json:"clients"`
	Conns          int                 `json:"conns"`
	DurationS      float64             `json:"duration_s"`
	RatePerClient  float64             `json:"rate_per_client"`
	Mix            string              `json:"mix"`
	Async          bool                `json:"async"`
	Ops            uint64              `json:"ops_total"`
	Throughput     float64             `json:"throughput_ops_s"`
	Errors         uint64              `json:"errors_total"`
	ProtocolErrors uint64              `json:"protocol_errors"`
	P50us          float64             `json:"p50_us"`
	P99us          float64             `json:"p99_us"`
	P999us         float64             `json:"p999_us"`
	Maxus          float64             `json:"max_us"`
	PerOp          map[string]opResult `json:"per_op"`
	ErrorSamples   []string            `json:"error_samples,omitempty"`
	ServerSessions uint64              `json:"server_sessions_total,omitempty"`
	ServerStalls   uint64              `json:"server_stalls,omitempty"`

	// In-process server mode only: final volume health, and the reason for
	// the last downward transition if any. A soak that ends anything but
	// "healthy" hit a fatal apply error worth investigating.
	VolumeHealth       string `json:"volume_health,omitempty"`
	VolumeHealthReason string `json:"volume_health_reason,omitempty"`
}

// errSampler keeps the first few distinct error strings so a nonzero
// errors_total in the report is diagnosable without a rerun.
type errSampler struct {
	mu      sync.Mutex
	samples []string
	seen    map[string]bool
}

func (s *errSampler) add(op string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen == nil {
		s.seen = make(map[string]bool)
	}
	msg := op + ": " + err.Error()
	if len(s.samples) >= 8 || s.seen[msg] {
		return
	}
	s.seen[msg] = true
	s.samples = append(s.samples, msg)
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// ---- the soak ------------------------------------------------------------

func run(addr string, clients, conns int, duration time.Duration, rate float64, mixSpec string, seed int64, async bool, jsonOut string) error {
	weights, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	wTotal := 0
	for _, w := range weights {
		wTotal += w
	}
	if wTotal == 0 {
		return fmt.Errorf("empty op mix")
	}

	var srv *server.Server
	var vol *cedarfs.Volume
	if addr == "" {
		d, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, sim.NewVirtualClock())
		if err != nil {
			return err
		}
		vol, err = cedarfs.Format(d, cedarfs.Config{AsyncApply: async, AdaptiveCommit: async})
		if err != nil {
			return err
		}
		srv = server.New(cedarfs.NewLocalFS(vol), server.Config{})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(l)
		addr = l.Addr().String()
		fmt.Fprintf(os.Stderr, "soak: in-process server on %s (async=%v)\n", addr, async)
	}

	cl, err := client.Dial(addr, client.Options{Conns: conns})
	if err != nil {
		return err
	}
	defer cl.Close()

	var (
		global   hist
		perOp    [opCount]hist
		opErrs   [opCount]atomic.Uint64
		sampler  errSampler
		started  = make(chan struct{})
		deadline = time.Now().Add(duration)
		wg       sync.WaitGroup
	)
	fmt.Fprintf(os.Stderr, "soak: launching %d clients over %d conns, %v at %.1f ops/s/client\n",
		clients, conns, duration, rate)

	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := soakClient{
				id:  id,
				rng: rand.New(rand.NewSource(seed + int64(id))),
				cl:  cl,
			}
			<-started
			for {
				// Poisson arrivals: exponential think time.
				think := time.Duration(c.rng.ExpFloat64() / rate * float64(time.Second))
				if left := time.Until(deadline); think >= left {
					return
				}
				time.Sleep(think)
				op := c.pickOp(weights, wTotal)
				t0 := time.Now()
				err := c.do(op)
				lat := time.Since(t0)
				global.record(lat)
				perOp[op].record(lat)
				if err != nil {
					opErrs[op].Add(1)
					sampler.add(opNames[op], err)
				}
			}
		}(id)
	}
	t0 := time.Now()
	close(started)
	wg.Wait()
	elapsed := time.Since(t0)

	res := result{
		Clients:       clients,
		Conns:         conns,
		DurationS:     elapsed.Seconds(),
		RatePerClient: rate,
		Mix:           mixSpec,
		Async:         async,
		Ops:           global.count.Load(),
		P50us:         us(global.quantile(0.50)),
		P99us:         us(global.quantile(0.99)),
		P999us:        us(global.quantile(0.999)),
		Maxus:         us(time.Duration(global.max.Load())),
		PerOp:         map[string]opResult{},
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	res.ProtocolErrors = cl.ProtocolErrors()
	res.ErrorSamples = sampler.samples
	for i := range perOp {
		if n := perOp[i].count.Load(); n > 0 {
			res.Errors += opErrs[i].Load()
			res.PerOp[opNames[i]] = opResult{
				Ops:    n,
				Errors: opErrs[i].Load(),
				P50us:  us(perOp[i].quantile(0.50)),
				P99us:  us(perOp[i].quantile(0.99)),
				P999us: us(perOp[i].quantile(0.999)),
				Maxus:  us(time.Duration(perOp[i].max.Load())),
			}
		}
	}
	if srv != nil {
		st := srv.Stats()
		res.ProtocolErrors += st.ProtocolErrors
		res.ServerSessions = st.SessionsTotal
		res.ServerStalls = st.Stalls
		res.VolumeHealth = vol.Health().String()
		res.VolumeHealthReason = vol.HealthReason()
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonOut != "" {
		if err := os.WriteFile(jsonOut, out, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(out)
	}
	fmt.Fprintf(os.Stderr, "soak: %d ops in %.1fs = %.0f ops/s; p50=%.0fµs p99=%.0fµs p99.9=%.0fµs; errors=%d proto=%d\n",
		res.Ops, res.DurationS, res.Throughput, res.P50us, res.P99us, res.P999us, res.Errors, res.ProtocolErrors)

	if srv != nil {
		srv.Close()
		if err := vol.Shutdown(); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	if res.ProtocolErrors > 0 {
		return fmt.Errorf("%d protocol errors", res.ProtocolErrors)
	}
	if res.VolumeHealth != "" && res.VolumeHealth != "healthy" {
		return fmt.Errorf("volume degraded to %s: %s", res.VolumeHealth, res.VolumeHealthReason)
	}
	return nil
}

// soakClient is one simulated client: a private namespace of files and a
// working set of the names it has created.
type soakClient struct {
	id    int
	rng   *rand.Rand
	cl    *client.Client
	files []string
	n     int
}

func (c *soakClient) pickOp(weights [opCount]int, total int) int {
	// Ops that need an existing file degrade to create while the working
	// set is empty.
	r := c.rng.Intn(total)
	for op, w := range weights {
		if r < w {
			if len(c.files) == 0 && (op == opRead || op == opWrite || op == opStat || op == opDelete) {
				return opCreate
			}
			return op
		}
		r -= w
	}
	return opCreate
}

func (c *soakClient) randFile() string { return c.files[c.rng.Intn(len(c.files))] }

func (c *soakClient) do(op int) error {
	ctx := ctxTODO
	switch op {
	case opCreate:
		name := fmt.Sprintf("soak/c%d/f%d", c.id, c.n)
		c.n++
		payload := make([]byte, 256+c.rng.Intn(1792))
		h, err := c.cl.Create(ctx, name, payload)
		if err != nil {
			return err
		}
		if len(c.files) < 8 {
			c.files = append(c.files, name)
		} else {
			c.files[c.rng.Intn(len(c.files))] = name
		}
		return h.Close()
	case opRead:
		h, err := c.cl.Open(ctx, c.randFile(), 0)
		if err != nil {
			return err
		}
		buf := make([]byte, h.Info().ByteSize)
		_, err = h.ReadAt(ctx, buf, 0)
		if cerr := h.Close(); err == nil {
			err = cerr
		}
		return err
	case opWrite:
		h, err := c.cl.Open(ctx, c.randFile(), 0)
		if err != nil {
			return err
		}
		chunk := make([]byte, 256+c.rng.Intn(1792))
		_, _, err = h.WriteAt(ctx, chunk, int64(h.Info().ByteSize))
		if cerr := h.Close(); err == nil {
			err = cerr
		}
		return err
	case opStat:
		_, err := c.cl.Stat(ctx, c.randFile(), 0)
		return err
	case opList:
		_, err := c.cl.List(ctx, fmt.Sprintf("soak/c%d/", c.id))
		return err
	case opDelete:
		i := c.rng.Intn(len(c.files))
		name := c.files[i]
		c.files = append(c.files[:i], c.files[i+1:]...)
		return c.cl.Delete(ctxTODO, name, 0)
	case opForce:
		_, err := c.cl.Force(ctx)
		return err
	case opWait:
		return c.cl.WaitCommitted(ctx, c.cl.LastCommitSeq())
	}
	return nil
}

var ctxTODO = context.Background()
