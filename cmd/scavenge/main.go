// Scavenge demonstrates the recovery-path difference at the heart of the
// paper on freshly built volumes: it populates an FSD volume and a CFS
// volume identically, crashes both, and recovers each with its own
// mechanism — FSD's log replay (seconds) versus CFS's full-disk scavenge
// (an hour of simulated time).
//
// Usage:
//
//	scavenge [-files n] [-mb m]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	mb := flag.Int("mb", 60, "megabytes of files to populate before the crash")
	flag.Parse()
	if err := run(int64(*mb) << 20); err != nil {
		fmt.Fprintf(os.Stderr, "scavenge: %v\n", err)
		os.Exit(1)
	}
}

func run(bytes int64) error {
	// FSD side.
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, clk)
	if err != nil {
		return err
	}
	fv, err := core.Format(d, core.Config{NTPages: 4096})
	if err != nil {
		return err
	}
	names, err := workload.PopulateVolume(workload.FSDTarget{V: fv}, rand.New(rand.NewSource(1)), bytes, 192*1024)
	if err != nil {
		return err
	}
	fv.Force()
	fmt.Printf("populated FSD volume with %d files (%d MB), crashing...\n", len(names), bytes>>20)
	fv.Crash()
	d.Revive()
	_, ms, err := core.Mount(d, core.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("FSD recovery: %.1f s simulated (%d log records replayed, VAM rebuilt in %.1f s)\n",
		ms.Elapsed.Seconds(), ms.LogRecords, ms.VAMElapsed.Seconds())

	// CFS side.
	clk2 := sim.NewVirtualClock()
	d2, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, clk2)
	if err != nil {
		return err
	}
	cv, err := cfs.Format(d2, cfs.Config{NTPages: 4096})
	if err != nil {
		return err
	}
	if _, err := workload.PopulateVolume(workload.CFSTarget{V: cv}, rand.New(rand.NewSource(1)), bytes, 192*1024); err != nil {
		return err
	}
	fmt.Println("populated CFS volume identically, crashing...")
	cv.Crash()
	d2.Revive()
	if _, err := cfs.Mount(d2, cfs.Config{}); err != cfs.ErrNeedScavenge {
		return fmt.Errorf("expected scavenge requirement, got %v", err)
	}
	_, st, err := cfs.Scavenge(d2, cfs.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("CFS scavenge: %.0f s simulated (%d sectors scanned, %d files recovered)\n",
		st.Elapsed.Seconds(), st.SectorsScanned, st.FilesRecovered)
	fmt.Printf("\nspeedup: %.0fx — \"users do not like their machines being unavailable for an hour or more\"\n",
		st.Elapsed.Seconds()/ms.Elapsed.Seconds())
	return nil
}
