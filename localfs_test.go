package cedarfs_test

import (
	"runtime"
	"sync"
	"testing"

	cedarfs "repro"
	"repro/internal/disk"
)

// TestConcurrentWriteGrowNoOverExtend: handles are safe for concurrent use,
// so two writes racing past the allocation must not both size their growth
// off the same stale page count. Extend allocates exactly what it is asked
// for, so any over-extension shows up as surplus pages on the entry. The
// stale read needs real interleaving inside the grow window to fire, so on
// a single-CPU machine this is an invariant check more than a reproducer.
func TestConcurrentWriteGrowNoOverExtend(t *testing.T) {
	// The stale-read window only opens when writers truly interleave;
	// ensure the scheduler has more than one P even on a small machine.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	fs := newLocalFS(cedarfs.Config{})(t)
	ctx := t.Context()
	const (
		workers = 16
		chunk   = 4 * disk.SectorSize
	)
	for round := 0; round < 4; round++ {
		name := "grow/f" + string(rune('a'+round)) + ".bin"
		h, err := fs.Create(ctx, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		start := make(chan struct{}) // barrier: maximize write overlap
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p := make([]byte, chunk)
				for j := range p {
					p[j] = byte(i)
				}
				<-start
				if _, _, err := h.WriteAt(ctx, p, int64(i*chunk)); err != nil {
					errs <- err
				}
			}(i)
		}
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		fi, err := fs.Stat(ctx, name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint32(workers * chunk / disk.SectorSize); fi.Pages != want {
			t.Fatalf("round %d: %d pages allocated for %d written, want %d (over-extended)",
				round, fi.Pages, workers*chunk, want)
		}
		h.Close()
	}
}
