package cedarfs_test

import (
	"bytes"
	"errors"
	"testing"

	cedarfs "repro"
)

func TestQuickstartFlow(t *testing.T) {
	vol, err := cedarfs.NewVolume()
	if err != nil {
		t.Fatalf("NewVolume: %v", err)
	}
	data := []byte("the quick brown fox")
	if _, err := vol.Create("notes.txt", data); err != nil {
		t.Fatalf("Create: %v", err)
	}
	f, err := vol.Open("notes.txt", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadAll: %q, %v", got, err)
	}
	if err := vol.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestCrashRecoveryThroughFacade(t *testing.T) {
	d, _, err := cedarfs.NewDisk(cedarfs.DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := cedarfs.Format(d, cedarfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Create("survivor", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := vol.Force(); err != nil {
		t.Fatal(err)
	}
	vol.Crash()
	d.Revive()
	vol2, ms, err := cedarfs.Mount(d, cedarfs.Config{})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if ms.CleanShutdown {
		t.Fatal("crash misreported as clean")
	}
	f, err := vol2.Open("survivor", 0)
	if err != nil {
		t.Fatalf("Open after recovery: %v", err)
	}
	got, _ := f.ReadAll()
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestFacadeErrors(t *testing.T) {
	vol, err := cedarfs.NewVolume()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Open("missing", 0); !errors.Is(err, cedarfs.ErrNotFound) {
		t.Fatalf("Open missing: %v", err)
	}
	if _, err := vol.CreateLink("lnk", "[srv]<d>f!1"); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Open("lnk", 0); !errors.Is(err, cedarfs.ErrIsSymlink) {
		t.Fatalf("Open symlink: %v", err)
	}
	vol.Shutdown()
	if _, err := vol.Create("late", nil); !errors.Is(err, cedarfs.ErrClosed) {
		t.Fatalf("Create after shutdown: %v", err)
	}
}
