package cedarfs

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/disk"
)

// NewLocalFS wraps a mounted Volume in the transport-agnostic FS
// interface: the in-process implementation the network server serves, and
// the reference the conformance suite (internal/fstest) holds the remote
// client against. Closing the FS invalidates it and its handles but does
// not shut the volume down.
func NewLocalFS(v *Volume) FS { return &localFS{v: v} }

type localFS struct {
	v      *Volume
	closed atomic.Bool
}

// ctxErr folds the two ways a call can be refused before touching the
// volume: the context is done, or the FS was closed.
func (l *localFS) ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.closed.Load() {
		return ErrClosed
	}
	return nil
}

func (l *localFS) Open(ctx context.Context, name string, version uint32) (Handle, error) {
	if err := l.ctxErr(ctx); err != nil {
		return nil, err
	}
	f, err := l.v.Open(name, version)
	if err != nil {
		return nil, err
	}
	return &localHandle{fs: l, f: f}, nil
}

func (l *localFS) Create(ctx context.Context, name string, data []byte) (Handle, error) {
	if err := l.ctxErr(ctx); err != nil {
		return nil, err
	}
	f, err := l.v.Create(name, data)
	if err != nil {
		return nil, err
	}
	return &localHandle{fs: l, f: f}, nil
}

func (l *localFS) Stat(ctx context.Context, name string, version uint32) (FileInfo, error) {
	if err := l.ctxErr(ctx); err != nil {
		return FileInfo{}, err
	}
	e, err := l.v.Stat(name, version)
	if err != nil {
		return FileInfo{}, err
	}
	return Info(e), nil
}

func (l *localFS) List(ctx context.Context, prefix string) ([]FileInfo, error) {
	if err := l.ctxErr(ctx); err != nil {
		return nil, err
	}
	var out []FileInfo
	err := l.v.List(prefix, func(e Entry) bool {
		out = append(out, Info(&e))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (l *localFS) Rename(ctx context.Context, oldName, newName string) error {
	if err := l.ctxErr(ctx); err != nil {
		return err
	}
	return l.v.Rename(oldName, newName)
}

func (l *localFS) Delete(ctx context.Context, name string, version uint32) error {
	if err := l.ctxErr(ctx); err != nil {
		return err
	}
	return l.v.Delete(name, version)
}

func (l *localFS) SetKeep(ctx context.Context, name string, keep uint16) error {
	if err := l.ctxErr(ctx); err != nil {
		return err
	}
	return l.v.SetKeep(name, keep)
}

func (l *localFS) Force(ctx context.Context) (uint64, error) {
	if err := l.ctxErr(ctx); err != nil {
		return 0, err
	}
	seq := l.v.CommitSeq()
	if err := l.v.Force(); err != nil {
		return 0, err
	}
	return seq, nil
}

func (l *localFS) WaitCommitted(ctx context.Context, seq uint64) error {
	if err := l.ctxErr(ctx); err != nil {
		return err
	}
	if ctx.Done() == nil {
		return l.v.WaitCommitted(seq)
	}
	// The volume's wait is not cancellable, so run it aside and let the
	// caller stop waiting — the server parks one goroutine per durability
	// wait and must be able to reclaim it when the session dies. The inner
	// goroutine is not leaked indefinitely: the server only parks waits for
	// already-issued sequences, which commit (or fail with the volume's
	// error) in bounded time, and WaitCommitted itself forces as needed.
	done := make(chan error, 1)
	go func() { done <- l.v.WaitCommitted(seq) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *localFS) Stats(ctx context.Context) (FSStats, error) {
	if err := l.ctxErr(ctx); err != nil {
		return FSStats{}, err
	}
	st := l.v.Stats()
	ops := st.Ops
	return FSStats{
		CommitSeq: l.v.CommitSeq(),
		Forces:    uint64(st.Commit.Forces),
		OpsTotal: uint64(ops.Creates + ops.Opens + ops.Deletes + ops.Lists +
			ops.Reads + ops.Writes + ops.Touches),
		IntentDepth: uint32(l.v.IntentDepth()),
		IntentLimit: uint32(l.v.IntentQueueLimit()),
		Health:      st.Health,
	}, nil
}

func (l *localFS) Close() error {
	l.closed.Store(true)
	return nil
}

// IntentDepth exposes the volume's intent-queue depth to the server's
// backpressure check without a full Stats snapshot per request; see
// server.Config.BackpressureDepth.
func (l *localFS) IntentDepth() int { return l.v.IntentDepth() }

// CommitSeq exposes the ack watermark cheaply (an atomic load, vs the full
// Stats snapshot): the server stamps it on every reply.
func (l *localFS) CommitSeq() uint64 { return l.v.CommitSeq() }

// localHandle adapts a *core.File. The mutex guards only the closed flag
// and the info snapshot; file I/O itself relies on File's own locking.
type localHandle struct {
	fs *localFS

	mu     sync.Mutex
	f      *File
	closed bool

	growMu sync.Mutex // serializes WriteAt's size-check-then-Extend
}

func (h *localHandle) file() (*File, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.fs.closed.Load() {
		return nil, ErrClosed
	}
	return h.f, nil
}

func (h *localHandle) Info() FileInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.f.Entry()
	return Info(&e)
}

func (h *localHandle) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return f.ReadAt(p, off)
}

func (h *localHandle) WriteAt(ctx context.Context, p []byte, off int64) (int, uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	f, err := h.file()
	if err != nil {
		return 0, 0, err
	}
	// The streaming contract: a write past the allocation grows it in
	// whole pages first (the wire protocol's write-stream op is a sequence
	// of these). Handles are safe for concurrent use, so the size check
	// and the extension must be one atomic step — two writes racing past
	// the allocation would otherwise both size their growth off the same
	// stale page count and over-extend the file.
	h.growMu.Lock()
	if end := off + int64(len(p)); end > int64(f.Pages())*disk.SectorSize {
		have := int64(f.Pages()) * disk.SectorSize
		needPages := int((end - have + disk.SectorSize - 1) / disk.SectorSize)
		if err := f.Extend(needPages); err != nil {
			h.growMu.Unlock()
			return 0, 0, err
		}
	}
	h.growMu.Unlock()
	n, err := f.WriteAt(p, off)
	return n, h.fs.v.CommitSeq(), err
}

func (h *localHandle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	return nil
}
