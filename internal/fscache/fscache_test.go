package fscache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
)

// server is a fake file server with per-name versioned content.
type server struct {
	files   map[string][]byte
	vers    map[string]uint32
	fetches int
	fail    bool
}

func newServer() *server {
	return &server{files: map[string][]byte{}, vers: map[string]uint32{}}
}

func (s *server) put(name string, data []byte) {
	s.files[name] = data
	s.vers[name]++
}

func (s *server) fetch(remote string) ([]byte, uint32, error) {
	if s.fail {
		return nil, 0, errors.New("server unreachable")
	}
	data, ok := s.files[remote]
	if !ok {
		return nil, 0, fmt.Errorf("no such remote file %q", remote)
	}
	s.fetches++
	return data, s.vers[remote], nil
}

func newTestCache(t *testing.T, budget int64) (*Cache, *server, *core.Volume, *sim.VirtualClock) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.Format(d, core.Config{LogSectors: 4 + 3*200, NTPages: 256, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer()
	return New(v, srv.fetch, Config{BudgetBytes: budget}), srv, v, clk
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestMissFetchesThenHits(t *testing.T) {
	c, srv, _, _ := newTestCache(t, 1<<20)
	srv.put("[ivy]<cedar>io.mesa", payload(900, 1))
	f, err := c.Open("[ivy]<cedar>io.mesa")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, payload(900, 1)) {
		t.Fatalf("content: %v", err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Fetches != 1 || st.Hits != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
	// Second open is a pure local hit: no server traffic.
	if _, err := c.Open("[ivy]<cedar>io.mesa"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Fetches != 1 {
		t.Fatalf("stats after hit: %+v", st)
	}
	if srv.fetches != 1 {
		t.Fatalf("server fetched %d times", srv.fetches)
	}
}

func TestOpenUpdatesLastUsed(t *testing.T) {
	c, srv, v, clk := newTestCache(t, 1<<20)
	srv.put("r", payload(100, 1))
	if _, err := c.Open("r"); err != nil {
		t.Fatal(err)
	}
	st0, err := v.Stat("cache/r", 0)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if _, err := c.Open("r"); err != nil {
		t.Fatal(err)
	}
	st1, _ := v.Stat("cache/r", 0)
	if st1.LastUsed <= st0.LastUsed {
		t.Fatal("cache hit did not refresh last-used time")
	}
}

func TestBudgetFlushesLRU(t *testing.T) {
	c, srv, _, clk := newTestCache(t, 3000)
	for i := 0; i < 5; i++ {
		srv.put(fmt.Sprintf("f%d", i), payload(1000, byte(i)))
	}
	// Touch f0..f4 in order; budget 3000 holds 3 files.
	for i := 0; i < 5; i++ {
		if _, err := c.Open(fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	usage, err := c.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if usage > 3000 {
		t.Fatalf("usage %d exceeds budget", usage)
	}
	if c.Stats().Flushes == 0 {
		t.Fatal("no flushes despite exceeding budget")
	}
	// The most recently used survive; the oldest were flushed.
	if _, err := c.Open("f4"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 5 { // f4 still resident
		t.Fatalf("f4 should be a hit: %+v", st)
	}
	before := srv.fetches
	if _, err := c.Open("f0"); err != nil { // flushed: refetch
		t.Fatal(err)
	}
	if srv.fetches != before+1 {
		t.Fatal("f0 should have been refetched after flush")
	}
}

func TestRefreshMakesNewVersion(t *testing.T) {
	c, srv, v, _ := newTestCache(t, 1<<20)
	srv.put("doc", payload(500, 1))
	if _, err := c.Open("doc"); err != nil {
		t.Fatal(err)
	}
	srv.put("doc", payload(600, 2)) // server content changed
	f, err := c.Refresh("doc")
	if err != nil {
		t.Fatal(err)
	}
	if f.Entry().Version != 2 {
		t.Fatalf("refresh made version %d", f.Entry().Version)
	}
	// Newest open sees the new content; the old version is still there
	// (immutable until flushed).
	g, _ := c.Open("doc")
	got, _ := g.ReadAll()
	if !bytes.Equal(got, payload(600, 2)) {
		t.Fatal("refresh content not visible")
	}
	if _, err := v.Open("cache/doc", 1); err != nil {
		t.Fatalf("old version flushed prematurely: %v", err)
	}
}

func TestOldVersionsFlushFirst(t *testing.T) {
	c, srv, v, clk := newTestCache(t, 2600)
	srv.put("a", payload(1000, 1))
	if _, err := c.Open("a"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	srv.put("a", payload(1000, 2))
	if _, err := c.Refresh("a"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	srv.put("b", payload(1000, 3))
	if _, err := c.Open("b"); err != nil { // pushes usage to 3000 > 2600
		t.Fatal(err)
	}
	// The superseded a!1 must be the flush victim, not the LRU newest.
	if _, err := v.Open("cache/a", 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("superseded version not flushed first: %v", err)
	}
	if _, err := v.Open("cache/a", 2); err != nil {
		t.Fatalf("newest version of a flushed while old versions existed: %v", err)
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	c, srv, _, _ := newTestCache(t, 1<<20)
	srv.fail = true
	if _, err := c.Open("anything"); err == nil {
		t.Fatal("fetch failure not propagated")
	}
}

func TestNoFetcher(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v, err := core.Format(d, core.Config{LogSectors: 4 + 3*200, NTPages: 256, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := New(v, nil, Config{})
	if _, err := c.Open("x"); !errors.Is(err, ErrNoFetcher) {
		t.Fatalf("want ErrNoFetcher, got %v", err)
	}
}

func TestCacheSurvivesCrash(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v, err := core.Format(d, core.Config{LogSectors: 4 + 3*200, NTPages: 256, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer()
	srv.put("keep", payload(700, 9))
	c := New(v, srv.fetch, Config{})
	if _, err := c.Open("keep"); err != nil {
		t.Fatal(err)
	}
	v.Force()
	v.Crash()
	d.Revive()
	v2, _, err := core.Mount(d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(v2, srv.fetch, Config{})
	before := srv.fetches
	f, err := c2.Open("keep")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadAll()
	if !bytes.Equal(got, payload(700, 9)) {
		t.Fatal("cached copy corrupted across crash")
	}
	if srv.fetches != before {
		t.Fatal("committed cached copy refetched after crash")
	}
}
