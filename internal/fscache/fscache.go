// Package fscache implements FS's remote-file cache on top of an FSD
// volume: the layer whose behaviour motivates several FSD design points.
//
// In Cedar, most local small files were cached copies of files on file
// servers ("most of the small files are cached copies of files stored on
// file servers. The size of these files are known when they are fetched and
// the sizes never change"). Every open of a cached copy updates its
// last-used time — the canonical group-commit hot spot ("an open of a
// cached file from a file server changes the last-used-time in the file
// properties") — and the cache manager uses those times to pick flush
// victims when the cache budget is exceeded ("new versions of files may be
// cached, but old versions are immutable (except that they may be
// flushed)").
package fscache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Fetcher retrieves a remote file's content by its remote name, modelling
// the file-server RPC. The returned version is the server's version number
// for the content.
type Fetcher func(remote string) (data []byte, version uint32, err error)

// ErrNoFetcher is returned when a miss occurs and no fetcher is configured.
var ErrNoFetcher = errors.New("fscache: cache miss and no fetcher configured")

// Config tunes the cache.
type Config struct {
	// BudgetBytes caps the total bytes of cached copies; exceeding it
	// flushes least-recently-used entries. Zero means 8 MB.
	BudgetBytes int64
	// Prefix is the local-name prefix under which cached copies live.
	// Empty means "cache/".
	Prefix string
}

func (c Config) budget() int64 {
	if c.BudgetBytes == 0 {
		return 8 << 20
	}
	return c.BudgetBytes
}

func (c Config) prefix() string {
	if c.Prefix == "" {
		return "cache/"
	}
	return c.Prefix
}

// Stats counts cache activity.
type Stats struct {
	Hits    int
	Misses  int
	Fetches int
	Flushes int
}

// Cache manages cached copies of remote files on a volume. It is not safe
// for concurrent use (the volume itself is; the cache keeps its own
// bookkeeping simple, as FS did under the Cedar monitor).
type Cache struct {
	v     *core.Volume
	fetch Fetcher
	cfg   Config
	stats Stats
}

// New attaches a cache manager to a volume. Existing cached copies under
// the prefix are adopted.
func New(v *core.Volume, fetch Fetcher, cfg Config) *Cache {
	return &Cache{v: v, fetch: fetch, cfg: cfg}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// localName maps a remote name to its cache-resident local name.
func (c *Cache) localName(remote string) string { return c.cfg.prefix() + remote }

// Open returns the cached copy of remote, fetching it on a miss. The open
// itself refreshes the copy's last-used time (that is what Cached-class
// opens do), which is the information Flush uses to pick victims.
func (c *Cache) Open(remote string) (*core.File, error) {
	local := c.localName(remote)
	f, err := c.v.Open(local, 0)
	if err == nil {
		c.stats.Hits++
		return f, nil
	}
	if !errors.Is(err, core.ErrNotFound) {
		return nil, err
	}
	c.stats.Misses++
	if c.fetch == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoFetcher, remote)
	}
	data, _, err := c.fetch(remote)
	if err != nil {
		return nil, fmt.Errorf("fscache: fetch %s: %w", remote, err)
	}
	c.stats.Fetches++
	if _, err := c.v.CreateCached(local, data); err != nil {
		return nil, err
	}
	if err := c.EnforceBudget(); err != nil {
		return nil, err
	}
	// Reopen through the normal path so the last-used update happens.
	return c.v.Open(local, 0)
}

// Refresh fetches the current server version unconditionally, making a new
// immutable cached version; the previous version remains until flushed.
func (c *Cache) Refresh(remote string) (*core.File, error) {
	if c.fetch == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoFetcher, remote)
	}
	data, _, err := c.fetch(remote)
	if err != nil {
		return nil, err
	}
	c.stats.Fetches++
	f, err := c.v.CreateCached(c.localName(remote), data)
	if err != nil {
		return nil, err
	}
	if err := c.EnforceBudget(); err != nil {
		return nil, err
	}
	return f, nil
}

// entry is one cached version on the volume.
type entry struct {
	name     string
	version  uint32
	bytes    int64
	lastUsed int64
	newest   bool
}

// scan enumerates cached copies under the prefix.
func (c *Cache) scan() ([]entry, int64, error) {
	var out []entry
	var total int64
	newestIdx := map[string]int{}
	err := c.v.List(c.cfg.prefix(), func(e core.Entry) bool {
		if e.Class != core.Cached {
			return true
		}
		out = append(out, entry{
			name:     e.Name,
			version:  e.Version,
			bytes:    int64(e.ByteSize),
			lastUsed: int64(e.LastUsed),
		})
		total += int64(e.ByteSize)
		newestIdx[e.Name] = len(out) - 1 // versions scan ascending
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	for _, i := range newestIdx {
		out[i].newest = true
	}
	return out, total, nil
}

// Usage returns the current cached-bytes total.
func (c *Cache) Usage() (int64, error) {
	_, total, err := c.scan()
	return total, err
}

// EnforceBudget flushes cached copies — old versions first, then the least
// recently used — until usage fits the budget.
func (c *Cache) EnforceBudget() error {
	entries, total, err := c.scan()
	if err != nil {
		return err
	}
	if total <= c.cfg.budget() {
		return nil
	}
	// Flush order: superseded versions (oldest lastUsed first), then
	// newest versions by lastUsed.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].newest != entries[j].newest {
			return !entries[i].newest
		}
		return entries[i].lastUsed < entries[j].lastUsed
	})
	for _, e := range entries {
		if total <= c.cfg.budget() {
			break
		}
		if err := c.v.Delete(e.name, e.version); err != nil {
			return err
		}
		c.stats.Flushes++
		total -= e.bytes
	}
	return nil
}
