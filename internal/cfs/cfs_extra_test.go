package cfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/vam"
)

func TestKeepPurgesOldVersions(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("k", payload(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Set keep=2 by writing it into the name-table entry via the public
	// surface: CFS inherits keep from the previous newest version at
	// create, so plant it directly.
	e := f.Entry()
	e.Keep = 2
	v.mu.Lock()
	if err := v.nt.Put(entryKey("k", 1), encodeNTEntry(&e)); err != nil {
		v.mu.Unlock()
		t.Fatal(err)
	}
	v.mu.Unlock()
	for i := 2; i <= 5; i++ {
		if _, err := v.Create("k", payload(10, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Open("k", 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("version 3 should be purged: %v", err)
	}
	for _, ver := range []uint32{4, 5} {
		if _, err := v.Open("k", ver); err != nil {
			t.Fatalf("version %d missing: %v", ver, err)
		}
	}
}

func TestStatReturnsHeaderFields(t *testing.T) {
	v, _, _ := newTestVolume(t)
	if _, err := v.Create("s", payload(777, 1)); err != nil {
		t.Fatal(err)
	}
	e, err := v.Stat("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.ByteSize != 777 || len(e.Runs) == 0 {
		t.Fatalf("Stat: %+v", e)
	}
	f, _ := v.Open("s", 0)
	if f.Size() != 777 {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestMountRebuildsVAMFromHeadersWhenUnsaved(t *testing.T) {
	v, d, _ := newTestVolume(t)
	want := map[string][]byte{}
	for i := 0; i < 15; i++ {
		name := fmt.Sprintf("rb/f%02d", i)
		data := payload(300+i*7, byte(i))
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	freeBefore := v.VAM().FreeCount()
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Destroy the saved VAM stamp; the volume is still clean, so mount
	// succeeds but must rebuild the hint map from the headers.
	if err := vam.Invalidate(d, v.lay.vamBase); err != nil {
		t.Fatal(err)
	}
	v2, err := Mount(d, testConfig())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if got := v2.VAM().FreeCount(); got != freeBefore {
		t.Fatalf("rebuilt FreeCount %d != %d", got, freeBefore)
	}
	for name, data := range want {
		f, err := v2.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s corrupted: %v", name, err)
		}
	}
	// Allocation after the rebuild doesn't collide with existing files.
	if _, err := v2.Create("rb/after", payload(100, 9)); err != nil {
		t.Fatal(err)
	}
	for name, data := range want {
		f, _ := v2.Open(name, 0)
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s overwritten after rebuild: %v", name, err)
		}
	}
}

func TestMetaIOCounter(t *testing.T) {
	v, _, _ := newTestVolume(t)
	v.ResetMetaIOs()
	if _, err := v.Create("m", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	// Verify-free + header labels + data labels + header write + nt write
	// + header rewrite: at least 6 metadata-purpose I/Os.
	if n := v.MetaIOs(); n < 6 {
		t.Fatalf("MetaIOs = %d after create, want >= 6", n)
	}
	v.ResetMetaIOs()
	f, _ := v.Open("m", 0)
	if n := v.MetaIOs(); n != 1 {
		t.Fatalf("MetaIOs = %d after open, want 1 (the header)", n)
	}
	v.ResetMetaIOs()
	if _, err := f.ReadPages(0, 1); err != nil {
		t.Fatal(err)
	}
	if n := v.MetaIOs(); n != 0 {
		t.Fatalf("MetaIOs = %d after data read, want 0", n)
	}
}

func TestDropCachesForcesNTReads(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("dc", payload(50, 1)); err != nil {
		t.Fatal(err)
	}
	v.DropCaches()
	before := d.Stats()
	if _, err := v.Open("dc", 0); err != nil {
		t.Fatal(err)
	}
	if delta := d.Stats().Sub(before); delta.Reads < 2 {
		t.Fatalf("cold open did %d reads, want >= 2 (nt page + header)", delta.Reads)
	}
}

func TestModelInfo(t *testing.T) {
	v, _, _ := newTestVolume(t)
	if n := v.ModelInfo(); n < 0 {
		t.Fatalf("ModelInfo = %d", n)
	}
	if v.CPU() == nil || v.Disk() == nil {
		t.Fatal("accessors nil")
	}
}

func TestNTCacheEviction(t *testing.T) {
	// A tiny cache forces evictions while keeping correctness: all files
	// stay reachable even when their name-table pages cycle in and out.
	v, _, _ := newTestVolume(t)
	v.pager.cap = 2
	for i := 0; i < 120; i++ {
		if _, err := v.Create(fmt.Sprintf("ev/x%03d", i), payload(30, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(v.pager.cache) > 3 {
		t.Fatalf("cache grew to %d entries with cap 2", len(v.pager.cache))
	}
	for i := 0; i < 120; i++ {
		if _, err := v.Open(fmt.Sprintf("ev/x%03d", i), 0); err != nil {
			t.Fatalf("x%03d lost under eviction: %v", i, err)
		}
	}
}

// TestScavengeCrashPointSweep crashes CFS at many points during a mixed
// workload and verifies the scavenger's contract at each: every file whose
// header and labels reached the disk is recovered, and the rebuilt volume
// is structurally sound and usable. (Unlike FSD there is no durability
// line — CFS creates are synchronous, so a file is expected back once its
// final header rewrite completed.)
func TestScavengeCrashPointSweep(t *testing.T) {
	totalWrites := func() int {
		v, d, _ := newTestVolume(t)
		runCFSWorkload(t, v)
		return d.Stats().Writes
	}()
	step := totalWrites / 12
	if step == 0 {
		step = 1
	}
	for cut := 3; cut < totalWrites; cut += step {
		cut := cut
		t.Run(fmt.Sprintf("afterWrite%03d", cut), func(t *testing.T) {
			v, d, _ := newTestVolume(t)
			d.SetWriteFault(disk.FailAfterWrites(cut, 0))
			completed := runCFSWorkload(t, v)
			d.Revive()
			v2, st, err := Scavenge(d, testConfig())
			if err != nil {
				t.Fatalf("scavenge after crash at %d: %v", cut, err)
			}
			for name, data := range completed {
				f, err := v2.Open(name, 0)
				if err != nil {
					t.Fatalf("crash at %d: completed %s lost: %v", cut, name, err)
				}
				got, err := f.ReadAll()
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("crash at %d: %s corrupted: %v", cut, name, err)
				}
			}
			if _, err := v2.Create("post/crash", payload(99, 1)); err != nil {
				t.Fatalf("crash at %d: create after scavenge: %v", cut, err)
			}
			_ = st
		})
	}
}

// runCFSWorkload creates and deletes files, returning the contents of every
// create that fully completed (CFS creates are synchronous). It stops at
// the first halt.
func runCFSWorkload(t *testing.T, v *Volume) map[string][]byte {
	t.Helper()
	completed := map[string][]byte{}
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("mix/f%03d", i)
		data := payload(120+i*23, byte(i))
		if _, err := v.Create(name, data); err != nil {
			if errors.Is(err, disk.ErrHalted) {
				return completed
			}
			t.Fatal(err)
		}
		completed[name] = data
		if i%6 == 5 {
			victim := fmt.Sprintf("mix/f%03d", i-2)
			if err := v.Delete(victim, 0); err != nil {
				if errors.Is(err, disk.ErrHalted) {
					// The delete may be half-done (some labels freed);
					// the scavenger may or may not resurrect it, so
					// drop it from the expectations either way.
					delete(completed, victim)
					return completed
				}
				t.Fatal(err)
			}
			delete(completed, victim)
		}
	}
	return completed
}
