package cfs

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/alloc"
	"repro/internal/disk"
)

func sampleHeaderEntry() *Entry {
	return &Entry{
		Name:       "lib/runtime.bcd",
		Version:    4,
		Keep:       2,
		UID:        987654,
		HeaderAddr: 4242,
		ByteSize:   55555,
		CreateTime: 17 * time.Second,
		Runs:       []alloc.Run{{Start: 4244, Len: 100}, {Start: 9000, Len: 9}},
	}
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	e := sampleHeaderEntry()
	buf := encodeHeader(e)
	if len(buf) != 2*disk.SectorSize {
		t.Fatalf("header is %d bytes", len(buf))
	}
	got := &Entry{Name: e.Name, Version: e.Version, UID: e.UID, HeaderAddr: e.HeaderAddr, Keep: e.Keep}
	if err := decodeHeader(got, buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ByteSize != e.ByteSize || got.CreateTime != e.CreateTime || !reflect.DeepEqual(got.Runs, e.Runs) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestHeaderDecodeCrossChecks(t *testing.T) {
	e := sampleHeaderEntry()
	buf := encodeHeader(e)
	// Wrong uid in the expecting entry.
	wrong := *e
	wrong.UID++
	if err := decodeHeader(&wrong, buf); err == nil {
		t.Fatal("uid mismatch accepted")
	}
	// Wrong name.
	wrong = *e
	wrong.Name = "other"
	if err := decodeHeader(&wrong, buf); err == nil {
		t.Fatal("name mismatch accepted")
	}
	// Corrupted properties sector.
	bad := append([]byte(nil), buf...)
	bad[20] ^= 0xFF
	if err := decodeHeader(e, bad); err == nil {
		t.Fatal("corrupt properties accepted")
	}
	// Corrupted run table sector.
	bad = append([]byte(nil), buf...)
	bad[disk.SectorSize+20] ^= 0xFF
	if err := decodeHeader(e, bad); err == nil {
		t.Fatal("corrupt run table accepted")
	}
}

func TestHeaderStandaloneDecode(t *testing.T) {
	e := sampleHeaderEntry()
	got, err := decodeHeaderStandalone(encodeHeader(e))
	if err != nil {
		t.Fatalf("standalone decode: %v", err)
	}
	if got.Name != e.Name || got.Version != e.Version || got.UID != e.UID ||
		got.ByteSize != e.ByteSize || !reflect.DeepEqual(got.Runs, e.Runs) {
		t.Fatalf("standalone mismatch: %+v", got)
	}
	if _, err := decodeHeaderStandalone(make([]byte, 2*disk.SectorSize)); err == nil {
		t.Fatal("zero sector accepted as header")
	}
}

// Property: headers round-trip for arbitrary well-formed entries.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(name string, ver uint32, keep uint16, uid uint64, size uint64, runs []struct{ S, L uint32 }) bool {
		name = strings.Map(func(r rune) rune {
			if r == 0 {
				return 'x'
			}
			return r
		}, name)
		if name == "" || len(name) > 200 {
			return true
		}
		if len(runs) > 40 {
			return true
		}
		e := &Entry{Name: name, Version: ver, Keep: keep, UID: uid, ByteSize: size, CreateTime: time.Second}
		for _, r := range runs {
			e.Runs = append(e.Runs, alloc.Run{Start: r.S, Len: r.L})
		}
		got, err := decodeHeaderStandalone(encodeHeader(e))
		if err != nil {
			return false
		}
		if len(e.Runs) == 0 && len(got.Runs) == 0 {
			return got.Name == e.Name && got.UID == e.UID
		}
		return got.Name == e.Name && got.UID == e.UID && reflect.DeepEqual(got.Runs, e.Runs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelHelpers(t *testing.T) {
	labs := headerLabels(9)
	if len(labs) != 2 || labs[0].Type != disk.PageHeader || labs[1].Page != 1 {
		t.Fatalf("headerLabels: %v", labs)
	}
	dl := dataLabels(9, 5, 3)
	if len(dl) != 3 || dl[0].Page != 5 || dl[2].Page != 7 || dl[0].Type != disk.PageData {
		t.Fatalf("dataLabels: %v", dl)
	}
	fl := freeLabels(2)
	if fl[0] != disk.FreeLabel || fl[1] != disk.FreeLabel {
		t.Fatalf("freeLabels: %v", fl)
	}
}
