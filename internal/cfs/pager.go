package cfs

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/disk"
)

// ntPager is CFS's synchronous, write-through name-table pager. Every
// B-tree page write is an immediate disk write with label verification —
// and, critically, multi-page B-tree updates are NOT atomic: a crash
// between the page writes of a split leaves the tree inconsistent, which is
// exactly the failure mode the paper's log fixes ("multi-page B-tree
// updates were not atomic").
type ntPager struct {
	v     *Volume
	cache map[uint32]*ntPage
	cap   int
	seq   uint64

	Hits, Misses, Writes int
}

type ntPage struct {
	data []byte
	seq  uint64
}

var _ btree.Pager = (*ntPager)(nil)

// PageSize implements btree.Pager.
func (p *ntPager) PageSize() int { return NTPageSectors * disk.SectorSize }

// NumPages implements btree.Pager.
func (p *ntPager) NumPages() int { return p.v.lay.ntPages }

func (p *ntPager) labels(id uint32) []disk.Label {
	labs := make([]disk.Label, NTPageSectors)
	for j := range labs {
		labs[j] = disk.Label{FileID: 0, Page: int32(int(id)*NTPageSectors + j), Type: disk.PageNameTable}
	}
	return labs
}

// Read implements btree.Pager with label-verified reads and a small
// read cache (write-through, so cached pages always match disk).
func (p *ntPager) Read(id uint32) ([]byte, error) {
	if pg, ok := p.cache[id]; ok {
		p.Hits++
		p.seq++
		pg.seq = p.seq
		return pg.data, nil
	}
	p.Misses++
	p.v.metaIOs++
	buf, err := p.v.d.VerifyRead(p.v.lay.ntBase+int(id)*NTPageSectors, p.labels(id))
	if err != nil {
		return nil, fmt.Errorf("cfs: name-table page %d: %w", id, err)
	}
	p.insert(id, buf)
	return buf, nil
}

// Write implements btree.Pager: synchronous, in-place, label-verified.
func (p *ntPager) Write(id uint32, data []byte) error {
	if len(data) != p.PageSize() {
		return fmt.Errorf("cfs: name-table write of %d bytes", len(data))
	}
	p.Writes++
	p.v.metaIOs++
	if err := p.v.d.VerifyWrite(p.v.lay.ntBase+int(id)*NTPageSectors, p.labels(id), data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p.insert(id, cp)
	return nil
}

func (p *ntPager) insert(id uint32, data []byte) {
	p.seq++
	p.cache[id] = &ntPage{data: data, seq: p.seq}
	if len(p.cache) <= p.cap {
		return
	}
	var victimID uint32
	var victim *ntPage
	for vid, pg := range p.cache {
		if victim == nil || pg.seq < victim.seq {
			victim, victimID = pg, vid
		}
	}
	delete(p.cache, victimID)
}
