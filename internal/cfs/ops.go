package cfs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vam"
)

// maxTransferSectors bounds a single disk request, matching FSD's
// controller limit so I/O counts are comparable.
const maxTransferSectors = 64

// File is an open CFS file: the entry with its header loaded.
type File struct {
	v *Volume
	e Entry
}

// Entry returns the file's metadata.
func (f *File) Entry() Entry { return f.e }

// Size returns the byte size recorded in the header.
func (f *File) Size() int64 { return int64(f.e.ByteSize) }

// Pages returns the number of data pages.
func (f *File) Pages() int { return alloc.Pages(f.e.Runs) }

func (v *Volume) highestVersionLocked(name string) (uint32, error) {
	var highest uint32
	err := v.nt.Scan(append([]byte(name), 0), func(k, _ []byte) bool {
		n, ver, ok := splitKey(k)
		if !ok || n != name {
			return false
		}
		highest = ver
		return true
	})
	v.cpu.Charge(sim.CostBTreeOp)
	return highest, err
}

func (v *Volume) lookupLocked(name string, version uint32) (*Entry, error) {
	if version == 0 {
		var err error
		version, err = v.highestVersionLocked(name)
		if err != nil {
			return nil, err
		}
		if version == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	}
	val, err := v.nt.Get(entryKey(name, version))
	if errors.Is(err, btree.ErrNotFound) {
		return nil, fmt.Errorf("%w: %q!%d", ErrNotFound, name, version)
	}
	if err != nil {
		return nil, err
	}
	v.cpu.Charge(sim.CostBTreeOp)
	return decodeNTEntry(name, version, val)
}

// readHeaderLocked reads and verifies the file's two header sectors,
// filling the header-resident fields. Labels are checked in microcode.
func (v *Volume) readHeaderLocked(e *Entry) error {
	v.metaIOs++
	buf, err := v.d.VerifyRead(e.HeaderAddr, headerLabels(e.UID))
	if err != nil {
		return err
	}
	v.cpu.Charge(2 * sim.CostPerSectorCopy)
	return decodeHeader(e, buf)
}

// verifyFreeLocked checks that a run's labels really are free, fixing the
// VAM hint when they are not. It reports whether the run was free.
func (v *Volume) verifyFreeLocked(r alloc.Run) (bool, error) {
	v.metaIOs++
	labs, err := v.d.ReadLabels(int(r.Start), int(r.Len))
	if err != nil {
		return false, err
	}
	for i, lab := range labs {
		if lab != disk.FreeLabel {
			// Stale hint: someone owns this page. Repair the VAM.
			v.vm.MarkAllocated(int(r.Start)+i, 1)
			return false, nil
		}
	}
	return true, nil
}

// Create makes a new version of name with the given contents, following the
// paper's Section 6 script: verify the free-page labels, write the header
// labels, write the data labels, write the header, update the name table,
// write the data, and rewrite the header — at least six I/Os for a one-byte
// file, versus FSD's one.
func (v *Volume) Create(name string, data []byte) (*File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return nil, err
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	highest, err := v.highestVersionLocked(name)
	if err != nil {
		return nil, err
	}
	var keep uint16
	if highest > 0 {
		if prev, err := v.lookupLocked(name, highest); err == nil {
			keep = prev.Keep
		}
	}
	v.cpu.Charge(sim.CostFileCreate)
	dataPages := (len(data) + disk.SectorSize - 1) / disk.SectorSize
	runs, err := v.allocVerifiedLocked(2 + dataPages)
	if err != nil {
		return nil, err
	}
	if runs[0].Len < 2 {
		v.al.FreeNow(runs)
		return nil, fmt.Errorf("cfs: volume too fragmented for a contiguous header")
	}
	uid := v.uidNext
	v.uidNext++
	e := &Entry{
		Name:       name,
		Version:    highest + 1,
		Keep:       keep,
		UID:        uid,
		HeaderAddr: int(runs[0].Start),
		ByteSize:   uint64(len(data)),
		CreateTime: v.clk.Now(),
		Runs:       splitDataRuns(runs),
	}

	// (2) Claim the header pages by writing their labels.
	v.metaIOs++
	if err := v.d.WriteLabels(e.HeaderAddr, headerLabels(uid)); err != nil {
		return nil, err
	}
	// (3) Claim the data pages.
	pageNo := 0
	for _, r := range e.Runs {
		v.metaIOs++
		if err := v.d.WriteLabels(int(r.Start), dataLabels(uid, pageNo, int(r.Len))); err != nil {
			return nil, err
		}
		pageNo += int(r.Len)
	}
	// (4) Write the header (initial: length not yet final).
	initial := *e
	initial.ByteSize = 0
	v.metaIOs++
	if err := v.d.VerifyWrite(e.HeaderAddr, headerLabels(uid), encodeHeader(&initial)); err != nil {
		return nil, err
	}
	// (5) Update the name table — synchronous in CFS.
	v.cpu.Charge(sim.CostBTreeOp)
	if err := v.nt.Put(entryKey(name, e.Version), encodeNTEntry(e)); err != nil {
		return nil, err
	}
	// (6) Write the data, in controller-sized chunks.
	if dataPages > 0 {
		padded := make([]byte, dataPages*disk.SectorSize)
		copy(padded, data)
		v.cpu.Charge(time.Duration(dataPages) * sim.CostPerSectorCopy)
		off, pageNo := 0, 0
		for _, r := range e.Runs {
			for done := 0; done < int(r.Len); done += maxTransferSectors {
				n := int(r.Len) - done
				if n > maxTransferSectors {
					n = maxTransferSectors
				}
				if err := v.d.VerifyWrite(int(r.Start)+done, dataLabels(uid, pageNo, n), padded[off:off+n*disk.SectorSize]); err != nil {
					return nil, err
				}
				off += n * disk.SectorSize
				pageNo += n
			}
		}
	}
	// (7) Rewrite the header with the final properties.
	v.metaIOs++
	if err := v.d.VerifyWrite(e.HeaderAddr, headerLabels(uid), encodeHeader(e)); err != nil {
		return nil, err
	}
	if keep > 0 {
		if err := v.applyKeepLocked(name, e.Version, keep); err != nil {
			return nil, err
		}
	}
	return &File{v: v, e: *e}, nil
}

// allocVerifiedLocked allocates pages and verifies their labels are free,
// retrying when the VAM hint was stale ("the pages have to be verified as
// free").
func (v *Volume) allocVerifiedLocked(pages int) ([]alloc.Run, error) {
	for attempt := 0; attempt < 32; attempt++ {
		runs, err := v.al.Alloc(pages)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, r := range runs {
			free, err := v.verifyFreeLocked(r)
			if err != nil {
				return nil, err
			}
			if !free {
				ok = false
				break
			}
		}
		if ok {
			return runs, nil
		}
		// The allocation overlapped pages that are really in use; the
		// verify loop already corrected the VAM, so just retry. The
		// other pages of this allocation go back to the pool.
		v.al.FreeNow(runs)
	}
	return nil, vam.ErrNoSpace
}

// splitDataRuns strips the two header sectors off the front of an
// allocation, leaving the data runs.
func splitDataRuns(runs []alloc.Run) []alloc.Run {
	out := make([]alloc.Run, 0, len(runs))
	first := runs[0]
	if first.Len > 2 {
		out = append(out, alloc.Run{Start: first.Start + 2, Len: first.Len - 2})
	}
	out = append(out, runs[1:]...)
	return out
}

func (v *Volume) applyKeepLocked(name string, newest uint32, keep uint16) error {
	if uint32(keep) >= newest {
		return nil
	}
	cutoff := newest - uint32(keep)
	var doomed []uint32
	err := v.nt.Scan(append([]byte(name), 0), func(k, _ []byte) bool {
		n, ver, ok := splitKey(k)
		if !ok || n != name {
			return false
		}
		if ver <= cutoff {
			doomed = append(doomed, ver)
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, ver := range doomed {
		if err := v.deleteLocked(name, ver); err != nil {
			return err
		}
	}
	return nil
}

// Open looks the file up in the name table and reads its header — CFS
// always pays a disk read at open to fetch the run table and properties.
func (v *Volume) Open(name string, version uint32) (*File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return nil, err
	}
	e, err := v.lookupLocked(name, version)
	if err != nil {
		return nil, err
	}
	if err := v.readHeaderLocked(e); err != nil {
		return nil, err
	}
	return &File{v: v, e: *e}, nil
}

// Stat returns the full entry (requiring the header read, as in Open).
func (v *Volume) Stat(name string, version uint32) (*Entry, error) {
	f, err := v.Open(name, version)
	if err != nil {
		return nil, err
	}
	return &f.e, nil
}

// Touch updates the last-used/property area of the header: a header read
// plus a header rewrite — two I/Os for what FSD does with a buffered
// name-table update.
func (v *Volume) Touch(name string, version uint32) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return err
	}
	e, err := v.lookupLocked(name, version)
	if err != nil {
		return err
	}
	if err := v.readHeaderLocked(e); err != nil {
		return err
	}
	// The whole properties sector is rewritten to change one field.
	v.metaIOs++
	return v.d.VerifyWrite(e.HeaderAddr, headerLabels(e.UID), encodeHeader(e))
}

// Delete removes a file version: read the header for the run table, write
// free labels over every page (an I/O per run — this is why CFS large
// deletes take seconds), remove the name-table entry, and free the pages.
func (v *Volume) Delete(name string, version uint32) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return err
	}
	if version == 0 {
		var err error
		version, err = v.highestVersionLocked(name)
		if err != nil {
			return err
		}
		if version == 0 {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	}
	return v.deleteLocked(name, version)
}

func (v *Volume) deleteLocked(name string, version uint32) error {
	e, err := v.lookupLocked(name, version)
	if err != nil {
		return err
	}
	if err := v.readHeaderLocked(e); err != nil {
		return err
	}
	// Free the labels: header first, then every data run (label-only
	// writes stream a whole run; only data transfers are chunked).
	v.metaIOs++
	if err := v.d.WriteLabels(e.HeaderAddr, freeLabels(2)); err != nil {
		return err
	}
	for _, r := range e.Runs {
		v.metaIOs++
		if err := v.d.WriteLabels(int(r.Start), freeLabels(int(r.Len))); err != nil {
			return err
		}
	}
	v.cpu.Charge(sim.CostBTreeOp)
	if err := v.nt.Delete(entryKey(name, version)); err != nil {
		return err
	}
	v.vm.MarkFree(e.HeaderAddr, 2)
	for _, r := range e.Runs {
		v.vm.MarkFree(int(r.Start), int(r.Len))
	}
	return nil
}

// List enumerates files with the given name prefix. Properties live in the
// headers, so CFS pays a header read per file ("keeping the name and
// property information together is desirable for operations over many
// files" — the FSD change this motivates).
func (v *Volume) List(prefix string, fn func(Entry) bool) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return err
	}
	type nameVer struct {
		name string
		ver  uint32
	}
	var hits []nameVer
	err := v.nt.Scan([]byte(prefix), func(k, _ []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			return false
		}
		hits = append(hits, nameVer{name, ver})
		return true
	})
	if err != nil {
		return err
	}
	for _, h := range hits {
		e, err := v.lookupLocked(h.name, h.ver)
		if err != nil {
			return err
		}
		if err := v.readHeaderLocked(e); err != nil {
			return err
		}
		v.cpu.Charge(sim.CostBTreeOp / 8)
		if !fn(*e) {
			return nil
		}
	}
	return nil
}

// ReadPages reads n data pages starting at logical page `page`, with
// microcode label verification on every sector.
func (f *File) ReadPages(page, n int) ([]byte, error) {
	v := f.v
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return nil, err
	}
	if page < 0 || n <= 0 || page+n > f.Pages() {
		return nil, fmt.Errorf("cfs: read [%d,%d) outside %q!%d", page, page+n, f.e.Name, f.e.Version)
	}
	out := make([]byte, 0, n*disk.SectorSize)
	cur := page
	remaining := n
	for remaining > 0 {
		addr, cnt := f.mapContiguous(cur, remaining)
		if cnt > maxTransferSectors {
			cnt = maxTransferSectors
		}
		buf, err := v.d.VerifyRead(addr, dataLabels(f.e.UID, cur, cnt))
		if err != nil {
			return nil, err
		}
		out = append(out, buf...)
		v.cpu.Charge(time.Duration(cnt) * sim.CostPerSectorCopy)
		cur += cnt
		remaining -= cnt
	}
	return out, nil
}

// ReadAll reads the whole file, trimmed to its byte size.
func (f *File) ReadAll() ([]byte, error) {
	if f.Pages() == 0 {
		return nil, nil
	}
	buf, err := f.ReadPages(0, f.Pages())
	if err != nil {
		return nil, err
	}
	return buf[:f.e.ByteSize], nil
}

// WritePages overwrites data pages with label verification.
func (f *File) WritePages(page int, data []byte) error {
	v := f.v
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.begin(); err != nil {
		return err
	}
	if len(data)%disk.SectorSize != 0 {
		return fmt.Errorf("cfs: unaligned write")
	}
	n := len(data) / disk.SectorSize
	if page < 0 || n <= 0 || page+n > f.Pages() {
		return fmt.Errorf("cfs: write [%d,%d) outside %q!%d", page, page+n, f.e.Name, f.e.Version)
	}
	written := 0
	cur := page
	for written < n {
		addr, cnt := f.mapContiguous(cur, n-written)
		if cnt > maxTransferSectors {
			cnt = maxTransferSectors
		}
		chunk := data[written*disk.SectorSize : (written+cnt)*disk.SectorSize]
		if err := v.d.VerifyWrite(addr, dataLabels(f.e.UID, cur, cnt), chunk); err != nil {
			return err
		}
		v.cpu.Charge(time.Duration(cnt) * sim.CostPerSectorCopy)
		cur += cnt
		written += cnt
	}
	return nil
}

// mapContiguous maps a logical data page to (disk address, contiguous count
// capped at want).
func (f *File) mapContiguous(page, want int) (int, int) {
	off := page
	for _, r := range f.e.Runs {
		if off < int(r.Len) {
			n := int(r.Len) - off
			if n > want {
				n = want
			}
			return int(r.Start) + off, n
		}
		off -= int(r.Len)
	}
	return 0, 0
}
