package cfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/alloc"
	"repro/internal/disk"
)

// File headers: two labelled sectors preceding the file's data. Sector 0
// holds the properties (replicating the text name, as the paper notes);
// sector 1 holds the run table.

const (
	hdrMagicProps = 0xCF5EADE0
	hdrMagicRuns  = 0xCF5EADE1
)

func headerLabels(uid uint64) []disk.Label {
	return []disk.Label{
		{FileID: uid, Page: 0, Type: disk.PageHeader},
		{FileID: uid, Page: 1, Type: disk.PageHeader},
	}
}

func dataLabels(uid uint64, first, n int) []disk.Label {
	labs := make([]disk.Label, n)
	for i := range labs {
		labs[i] = disk.Label{FileID: uid, Page: int32(first + i), Type: disk.PageData}
	}
	return labs
}

func freeLabels(n int) []disk.Label {
	return make([]disk.Label, n) // zero value is the free label
}

// encodeHeader produces both header sectors.
func encodeHeader(e *Entry) []byte {
	buf := make([]byte, 2*disk.SectorSize)
	be := binary.BigEndian

	// Sector 0: properties.
	be.PutUint32(buf[0:], hdrMagicProps)
	be.PutUint64(buf[4:], e.UID)
	be.PutUint32(buf[12:], e.Version)
	be.PutUint16(buf[16:], e.Keep)
	be.PutUint64(buf[18:], e.ByteSize)
	be.PutUint64(buf[26:], uint64(e.CreateTime))
	be.PutUint16(buf[34:], uint16(len(e.Name)))
	copy(buf[36:], e.Name)
	off := 36 + len(e.Name)
	be.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))

	// Sector 1: run table.
	s1 := buf[disk.SectorSize:]
	be.PutUint32(s1[0:], hdrMagicRuns)
	be.PutUint64(s1[4:], e.UID)
	be.PutUint16(s1[12:], uint16(len(e.Runs)))
	o := 14
	for _, r := range e.Runs {
		be.PutUint32(s1[o:], r.Start)
		be.PutUint32(s1[o+4:], r.Len)
		o += 8
	}
	be.PutUint32(s1[o:], crc32.ChecksumIEEE(s1[:o]))
	return buf
}

// decodeHeader fills the header-resident fields of e from both sectors,
// cross-checking the uid.
func decodeHeader(e *Entry, buf []byte) error {
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != hdrMagicProps {
		return fmt.Errorf("cfs: %q!%d: bad header properties sector", e.Name, e.Version)
	}
	nameLen := int(be.Uint16(buf[34:]))
	off := 36 + nameLen
	if off+4 > disk.SectorSize || be.Uint32(buf[off:]) != crc32.ChecksumIEEE(buf[:off]) {
		return fmt.Errorf("cfs: %q!%d: header properties checksum", e.Name, e.Version)
	}
	if uid := be.Uint64(buf[4:]); uid != e.UID {
		return fmt.Errorf("cfs: %q!%d: header uid %d != %d", e.Name, e.Version, uid, e.UID)
	}
	if name := string(buf[36 : 36+nameLen]); name != e.Name {
		return fmt.Errorf("cfs: header name %q != %q", name, e.Name)
	}
	e.ByteSize = be.Uint64(buf[18:])
	e.CreateTime = time.Duration(be.Uint64(buf[26:]))

	s1 := buf[disk.SectorSize:]
	if be.Uint32(s1[0:]) != hdrMagicRuns || be.Uint64(s1[4:]) != e.UID {
		return fmt.Errorf("cfs: %q!%d: bad run-table sector", e.Name, e.Version)
	}
	n := int(be.Uint16(s1[12:]))
	o := 14 + 8*n
	if o+4 > disk.SectorSize || be.Uint32(s1[o:]) != crc32.ChecksumIEEE(s1[:o]) {
		return fmt.Errorf("cfs: %q!%d: run-table checksum", e.Name, e.Version)
	}
	e.Runs = e.Runs[:0]
	for i := 0; i < n; i++ {
		e.Runs = append(e.Runs, alloc.Run{
			Start: be.Uint32(s1[14+8*i:]),
			Len:   be.Uint32(s1[18+8*i:]),
		})
	}
	return nil
}

// decodeHeaderStandalone parses a header read by the scavenger, where no
// name-table entry exists to check against.
func decodeHeaderStandalone(buf []byte) (*Entry, error) {
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != hdrMagicProps {
		return nil, fmt.Errorf("cfs: not a header sector")
	}
	e := &Entry{UID: be.Uint64(buf[4:])}
	e.Version = be.Uint32(buf[12:])
	e.Keep = be.Uint16(buf[16:])
	nameLen := int(be.Uint16(buf[34:]))
	off := 36 + nameLen
	if off+4 > disk.SectorSize || be.Uint32(buf[off:]) != crc32.ChecksumIEEE(buf[:off]) {
		return nil, fmt.Errorf("cfs: header checksum")
	}
	e.Name = string(buf[36 : 36+nameLen])
	e.ByteSize = be.Uint64(buf[18:])
	e.CreateTime = time.Duration(be.Uint64(buf[26:]))
	if err := decodeHeader(e, buf); err != nil {
		return nil, err
	}
	return e, nil
}
