package cfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func testConfig() Config {
	return Config{NTPages: 256, CacheSize: 64}
}

func newTestVolume(t *testing.T) (*Volume, *disk.Disk, *sim.VirtualClock) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return v, d, clk
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestCreateOpenReadRoundTrip(t *testing.T) {
	v, _, _ := newTestVolume(t)
	data := payload(1500, 3)
	if _, err := v.Create("doc.mesa", data); err != nil {
		t.Fatalf("Create: %v", err)
	}
	f, err := v.Open("doc.mesa", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents mismatch")
	}
	if f.Entry().ByteSize != 1500 {
		t.Fatalf("ByteSize = %d", f.Entry().ByteSize)
	}
}

func TestCreateUsesAtLeastSixIOs(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("warm", payload(10, 0)); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if _, err := v.Create("one-byte", []byte{1}); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(before)
	// Paper: "Note that this is (at least) six I/Os."
	if delta.Ops < 6 {
		t.Fatalf("CFS small create did %d I/Os, paper says at least 6", delta.Ops)
	}
}

func TestOpenAlwaysReadsHeader(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("f", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	// Even with a warm name table, open costs a header read.
	if _, err := v.Open("f", 0); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if _, err := v.Open("f", 0); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(before)
	if delta.Reads != 1 {
		t.Fatalf("warm CFS open did %d reads, want exactly 1 (the header)", delta.Reads)
	}
}

func TestVersionsAndDelete(t *testing.T) {
	v, _, _ := newTestVolume(t)
	for i := 1; i <= 3; i++ {
		if _, err := v.Create("v", payload(10*i, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	f, err := v.Open("v", 0)
	if err != nil || f.Entry().Version != 3 {
		t.Fatalf("newest open: %v", err)
	}
	if err := v.Delete("v", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Open("v", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted version open: %v", err)
	}
	if _, err := v.Open("v", 1); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFreesLabelsAndPages(t *testing.T) {
	v, d, _ := newTestVolume(t)
	f, err := v.Create("temp", payload(3000, 1))
	if err != nil {
		t.Fatal(err)
	}
	hdr := f.Entry().HeaderAddr
	free0 := v.VAM().FreeCount()
	if err := v.Delete("temp", 0); err != nil {
		t.Fatal(err)
	}
	if v.VAM().FreeCount() <= free0 {
		t.Fatal("delete did not free pages")
	}
	if lab := d.PeekLabel(hdr); lab != disk.FreeLabel {
		t.Fatalf("header label not freed: %v", lab)
	}
}

func TestLabelsCatchWildWrite(t *testing.T) {
	v, d, _ := newTestVolume(t)
	f, err := v.Create("guarded", payload(600, 1))
	if err != nil {
		t.Fatal(err)
	}
	// A wild write from buggy software smashes a data sector AND its
	// label (the failure labels were designed to catch).
	e := f.Entry()
	addr := int(e.Runs[0].Start)
	d.SmashSector(addr, payload(512, 0xBB), &disk.Label{FileID: 999, Page: 0, Type: disk.PageData})
	if _, err := f.ReadPages(0, 1); err == nil {
		t.Fatal("label verification missed a wild write")
	}
}

func TestStaleVAMHintRepaired(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("a", payload(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the hint: mark the file's pages free in the VAM. The next
	// create must detect via labels that they are taken and go elsewhere.
	e := f.Entry()
	v.VAM().MarkFree(e.HeaderAddr, 2)
	g, err := v.Create("b", payload(100, 2))
	if err != nil {
		t.Fatalf("create with stale VAM: %v", err)
	}
	if g.Entry().HeaderAddr == e.HeaderAddr {
		t.Fatal("allocator reused live pages")
	}
	// Both files intact.
	for _, name := range []string{"a", "b"} {
		h, err := v.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.ReadAll(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestListReadsHeaders(t *testing.T) {
	v, d, _ := newTestVolume(t)
	for i := 0; i < 10; i++ {
		if _, err := v.Create(fmt.Sprintf("dir/f%02d", i), payload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats()
	count := 0
	if err := v.List("dir/", func(e Entry) bool {
		if e.ByteSize != 100 {
			t.Fatalf("entry %s missing header properties", e.Name)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("listed %d files", count)
	}
	delta := d.Stats().Sub(before)
	if delta.Reads < 10 {
		t.Fatalf("CFS list of 10 files did %d reads; must read each header", delta.Reads)
	}
}

func TestMountRequiresScavengeAfterCrash(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("x", payload(10, 1)); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	if _, err := Mount(d, testConfig()); !errors.Is(err, ErrNeedScavenge) {
		t.Fatalf("mount after crash: %v, want ErrNeedScavenge", err)
	}
}

func TestCleanShutdownMount(t *testing.T) {
	v, d, _ := newTestVolume(t)
	for i := 0; i < 10; i++ {
		if _, err := v.Create(fmt.Sprintf("s%d", i), payload(200, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v2, err := Mount(d, testConfig())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	for i := 0; i < 10; i++ {
		f, err := v2.Open(fmt.Sprintf("s%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, payload(200, byte(i))) {
			t.Fatalf("s%d corrupted: %v", i, err)
		}
	}
}

func TestScavengeRecoversFiles(t *testing.T) {
	v, d, _ := newTestVolume(t)
	want := map[string][]byte{}
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("sc%02d", i)
		data := payload(100+37*i, byte(i))
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	v.Crash()
	d.Revive()
	v2, st, err := Scavenge(d, testConfig())
	if err != nil {
		t.Fatalf("Scavenge: %v", err)
	}
	if st.FilesRecovered != 25 {
		t.Fatalf("recovered %d files, want 25", st.FilesRecovered)
	}
	if st.SectorsScanned == 0 || st.Elapsed == 0 {
		t.Fatalf("implausible scavenge stats: %+v", st)
	}
	for name, data := range want {
		f, err := v2.Open(name, 0)
		if err != nil {
			t.Fatalf("open %s after scavenge: %v", name, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s corrupted after scavenge: %v", name, err)
		}
	}
	// New creates work after scavenge.
	if _, err := v2.Create("post", payload(10, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestScavengeAfterTornNameTableSplit(t *testing.T) {
	// The paper's motivating failure: a crash during a multi-page B-tree
	// update leaves the name table inconsistent; only a scavenge — built
	// from labels and headers, not the name table — recovers.
	v, d, _ := newTestVolume(t)
	// Fill until close to the first leaf split, then make writes fail
	// partway to tear the name table.
	for i := 0; i < 20; i++ {
		if _, err := v.Create(fmt.Sprintf("pre%02d", i), payload(50, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	d.SetWriteFault(disk.FailAfterWrites(3, 1))
	for i := 0; i < 30; i++ {
		if _, err := v.Create(fmt.Sprintf("torn%02d", i), payload(50, byte(i))); err != nil {
			break // the crash
		}
	}
	d.Revive()
	v2, st, err := Scavenge(d, testConfig())
	if err != nil {
		t.Fatalf("Scavenge after torn update: %v", err)
	}
	if st.FilesRecovered < 20 {
		t.Fatalf("scavenge recovered only %d files", st.FilesRecovered)
	}
	// All pre-crash files are back.
	for i := 0; i < 20; i++ {
		if _, err := v2.Open(fmt.Sprintf("pre%02d", i), 0); err != nil {
			t.Fatalf("pre%02d lost: %v", i, err)
		}
	}
}

func TestTouchCostsHeaderReadAndWrite(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("t", payload(10, 1)); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if err := v.Touch("t", 0); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(before)
	if delta.Reads < 1 || delta.Writes < 1 {
		t.Fatalf("Touch did %d reads %d writes; want header read + rewrite", delta.Reads, delta.Writes)
	}
}

func TestWritePages(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("w", payload(4*512, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WritePages(1, payload(512, 0x77)); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadPages(1, 1)
	if err != nil || got[0] != 0x77 {
		t.Fatalf("WritePages round trip: %v", err)
	}
}

func TestLargeFile(t *testing.T) {
	v, _, _ := newTestVolume(t)
	data := payload(300*512, 5)
	if _, err := v.Create("big", data); err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("big", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("large file round trip failed")
	}
}

func TestUIDsMonotonic(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f1, _ := v.Create("a", payload(10, 1))
	f2, _ := v.Create("b", payload(10, 2))
	if f2.Entry().UID <= f1.Entry().UID {
		t.Fatal("uids not monotonic")
	}
}
