// Package cfs implements the old Cedar File System — the baseline the paper
// measures FSD against (Tables 2 and 3).
//
// CFS splits file information across three disk structures (Table 1): the
// file name table (name, version, keep, uid, header address), two header
// sectors per file (properties and the run table), and a label on every
// disk sector. Labels are verified in microcode before each transfer, so
// wild writes and stale-address bugs surface as label mismatches.
//
// Its weaknesses, per the paper, are exactly what FSD fixes: the name table
// is written synchronously and non-atomically (a crash during a B-tree
// split corrupts it), creates cost at least six I/Os, deletes rewrite the
// label of every page, and recovery means scavenging the whole disk — an
// hour or more on a 300 MB volume.
package cfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vam"
)

// Errors.
var (
	ErrNotFound     = errors.New("cfs: file not found")
	ErrClosed       = errors.New("cfs: volume is shut down")
	ErrNeedScavenge = errors.New("cfs: volume not cleanly shut down; scavenge required")
)

// Config parameterizes a CFS volume.
type Config struct {
	// NTPages is the name-table capacity in 2 KB pages. Zero means 2048.
	NTPages int
	// CacheSize is the name-table page cache capacity. Zero means 512.
	CacheSize int
}

func (c Config) ntPages() int {
	if c.NTPages == 0 {
		return 2048
	}
	return c.NTPages
}

func (c Config) cacheSize() int {
	if c.CacheSize == 0 {
		return 512
	}
	return c.CacheSize
}

// NTPageSectors is the sectors per name-table page, as in FSD.
const NTPageSectors = 4

// layout: root page at sector 0, the name table right after (CFS predates
// FSD's centre-cylinder placement), then the VAM save area, then data.
type layout struct {
	ntBase     int
	ntPages    int
	vamBase    int
	vamSectors int
	dataLo     int
	total      int
}

const rootMagic = 0x0CF50CF5

// Entry is a CFS name-table record plus, once the header has been read, the
// header-resident properties.
type Entry struct {
	Name       string
	Version    uint32
	Keep       uint16
	UID        uint64
	HeaderAddr int // disk address of header page 0

	// Header-resident fields (valid after Open/ReadHeader):
	ByteSize   uint64
	CreateTime time.Duration
	Runs       []alloc.Run // data pages only; the two header sectors precede them
}

// Volume is a mounted CFS volume.
type Volume struct {
	d   *disk.Disk
	clk sim.Clock
	cpu *sim.CPU
	cfg Config
	lay layout

	mu      sync.Mutex
	nt      *btree.Tree
	pager   *ntPager
	vm      *vam.VAM
	al      *alloc.Allocator
	uidNext uint64
	closed  bool

	// metaIOs counts disk operations issued for metadata purposes
	// (headers, labels, name table), which in CFS are scattered across
	// the data area and so cannot be counted by address.
	metaIOs int
}

// MetaIOs returns the number of metadata-purpose disk operations since
// format/mount.
func (v *Volume) MetaIOs() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.metaIOs
}

// ResetMetaIOs zeroes the metadata-purpose counter.
func (v *Volume) ResetMetaIOs() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.metaIOs = 0
}

// CPU returns the simulated CPU.
func (v *Volume) CPU() *sim.CPU { return v.cpu }

// Disk returns the device.
func (v *Volume) Disk() *disk.Disk { return v.d }

// VAM exposes the free-page hint map.
func (v *Volume) VAM() *vam.VAM { return v.vm }

func computeLayout(g disk.Geometry, cfg Config) layout {
	var l layout
	l.total = g.Sectors()
	l.ntBase = 2
	l.ntPages = cfg.ntPages()
	l.vamBase = l.ntBase + l.ntPages*NTPageSectors
	l.vamSectors = vam.SaveSectors(l.total)
	l.dataLo = l.vamBase + l.vamSectors
	return l
}

// Format initializes a CFS volume and returns it mounted.
func Format(d *disk.Disk, cfg Config) (*Volume, error) {
	lay := computeLayout(d.Geometry(), cfg)
	if lay.dataLo >= lay.total {
		return nil, fmt.Errorf("cfs: volume too small")
	}
	v := newVolume(d, cfg, lay)

	// Label the name-table region and build the empty tree.
	for p := 0; p < lay.ntPages; p++ {
		labs := make([]disk.Label, NTPageSectors)
		for j := range labs {
			labs[j] = disk.Label{FileID: 0, Page: int32(p*NTPageSectors + j), Type: disk.PageNameTable}
		}
		if err := d.WriteLabels(lay.ntBase+p*NTPageSectors, labs); err != nil {
			return nil, err
		}
	}
	var err error
	v.nt, err = btree.Create(v.pager)
	if err != nil {
		return nil, err
	}
	v.vm = vam.New(lay.total)
	v.vm.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo: lay.dataLo, Hi: lay.total,
		// CFS has a single first-fit area — the fragmentation-prone
		// design FSD's big/small split replaces.
		SmallThreshold: 1 << 30,
		SmallFraction:  50,
		MaxRuns:        64,
	})
	if err != nil {
		return nil, err
	}
	if err := v.writeRoot(false); err != nil {
		return nil, err
	}
	v.uidNext = 1
	d.ResetStats()
	return v, nil
}

func newVolume(d *disk.Disk, cfg Config, lay layout) *Volume {
	v := &Volume{d: d, clk: d.Clock(), cpu: sim.NewCPU(d.Clock()), cfg: cfg, lay: lay}
	v.pager = &ntPager{v: v, cache: make(map[uint32]*ntPage), cap: cfg.cacheSize()}
	d.SetClassifier(func(addr int) disk.Class {
		if addr < lay.dataLo {
			return disk.ClassMeta
		}
		return disk.ClassData
	})
	return v
}

func (v *Volume) writeRoot(clean bool) error {
	buf := make([]byte, disk.SectorSize)
	be := binary.BigEndian
	be.PutUint32(buf[0:], rootMagic)
	be.PutUint32(buf[4:], uint32(v.lay.ntPages))
	if clean {
		buf[8] = 1
	}
	be.PutUint64(buf[9:], v.uidNext)
	be.PutUint32(buf[17:], crc32.ChecksumIEEE(buf[:17]))
	return v.d.WriteSectors(0, buf)
}

func readRoot(d *disk.Disk) (ntPages int, clean bool, uidNext uint64, err error) {
	buf, err := d.ReadSectors(0, 1)
	if err != nil {
		return 0, false, 0, err
	}
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != rootMagic || be.Uint32(buf[17:]) != crc32.ChecksumIEEE(buf[:17]) {
		return 0, false, 0, fmt.Errorf("cfs: bad root page")
	}
	return int(be.Uint32(buf[4:])), buf[8] == 1, be.Uint64(buf[9:]), nil
}

// Mount attaches to a formatted CFS volume. After an unclean shutdown it
// fails with ErrNeedScavenge: unlike FSD there is no log, so consistency
// can only be re-established by scavenging (see Scavenge).
func Mount(d *disk.Disk, cfg Config) (*Volume, error) {
	ntPages, clean, uidNext, err := readRoot(d)
	if err != nil {
		return nil, err
	}
	cfg.NTPages = ntPages
	lay := computeLayout(d.Geometry(), cfg)
	v := newVolume(d, cfg, lay)
	if !clean {
		return nil, ErrNeedScavenge
	}
	v.uidNext = uidNext
	if err := v.writeRoot(false); err != nil {
		return nil, err
	}
	v.nt, err = btree.Open(v.pager)
	if err != nil {
		return nil, fmt.Errorf("cfs: name table corrupt: %w (scavenge required)", err)
	}
	v.vm, err = vam.Load(d, lay.vamBase, lay.total)
	if err != nil {
		// The VAM is only a hint; rebuild it from the name table by
		// reading every file's header (slow, but not a scavenge).
		if v.vm, err = v.rebuildVAMFromHeaders(); err != nil {
			return nil, err
		}
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo: lay.dataLo, Hi: lay.total,
		SmallThreshold: 1 << 30, SmallFraction: 50, MaxRuns: 64,
	})
	if err != nil {
		return nil, err
	}
	if err := vam.Invalidate(d, lay.vamBase); err != nil {
		return nil, err
	}
	return v, nil
}

// rebuildVAMFromHeaders reconstructs the free map by reading the header of
// every file named in the name table.
func (v *Volume) rebuildVAMFromHeaders() (*vam.VAM, error) {
	vm := vam.New(v.lay.total)
	vm.MarkFree(v.lay.dataLo, v.lay.total-v.lay.dataLo)
	var fail error
	err := v.nt.Scan(nil, func(k, val []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		e, err := decodeNTEntry(name, ver, val)
		if err != nil {
			return true
		}
		if err := v.readHeaderLocked(e); err != nil {
			fail = err
			return false
		}
		vm.MarkAllocated(e.HeaderAddr, 2)
		for _, r := range e.Runs {
			vm.MarkAllocated(int(r.Start), int(r.Len))
		}
		return true
	})
	if err == nil {
		err = fail
	}
	return vm, err
}

// Shutdown saves the VAM hint and stamps the volume clean.
func (v *Volume) Shutdown() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if err := v.vm.Save(v.d, v.lay.vamBase); err != nil {
		return err
	}
	if err := v.writeRoot(true); err != nil {
		return err
	}
	v.closed = true
	return nil
}

// Crash abandons the volume and halts the device.
func (v *Volume) Crash() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
	v.d.Halt()
}

func (v *Volume) begin() error {
	if v.closed {
		return ErrClosed
	}
	v.cpu.Charge(sim.CostSyscall)
	return nil
}

// DropCaches empties the name-table cache (write-through, so nothing is
// lost). For measurement harnesses only.
func (v *Volume) DropCaches() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pager.cache = make(map[uint32]*ntPage)
}

// ModelInfo reports the cylinder distance from the data area to the name
// table for the analytical model.
func (v *Volume) ModelInfo() (dataToNTCyl int) {
	g := v.d.Geometry()
	n := g.Cylinder(v.lay.dataLo) - g.Cylinder(v.lay.ntBase)
	if n < 0 {
		n = -n
	}
	return n
}

// Key encoding shared with FSD's scheme: name NUL version.
func entryKey(name string, version uint32) []byte {
	k := append([]byte(name), 0)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], version)
	return append(k, b[:]...)
}

func splitKey(k []byte) (string, uint32, bool) {
	if len(k) < 5 || k[len(k)-5] != 0 {
		return "", 0, false
	}
	return string(k[:len(k)-5]), binary.BigEndian.Uint32(k[len(k)-4:]), true
}

// Name-table value: keep u16 | uid u64 | headerAddr u32.
func encodeNTEntry(e *Entry) []byte {
	buf := make([]byte, 14)
	binary.BigEndian.PutUint16(buf[0:], e.Keep)
	binary.BigEndian.PutUint64(buf[2:], e.UID)
	binary.BigEndian.PutUint32(buf[10:], uint32(e.HeaderAddr))
	return buf
}

func decodeNTEntry(name string, version uint32, buf []byte) (*Entry, error) {
	if len(buf) != 14 {
		return nil, fmt.Errorf("cfs: corrupt name-table value for %q!%d", name, version)
	}
	return &Entry{
		Name:       name,
		Version:    version,
		Keep:       binary.BigEndian.Uint16(buf[0:]),
		UID:        binary.BigEndian.Uint64(buf[2:]),
		HeaderAddr: int(binary.BigEndian.Uint32(buf[10:])),
	}, nil
}

// ValidateName matches FSD's rules.
func ValidateName(name string) error {
	if name == "" || strings.ContainsRune(name, 0) || len(name) > 255 {
		return fmt.Errorf("cfs: invalid name %q", name)
	}
	return nil
}
