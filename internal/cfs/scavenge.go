package cfs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vam"
)

// ScavengeStats reports the cost of a scavenge — the paper's "3600+
// seconds" crash-recovery row for CFS.
type ScavengeStats struct {
	SectorsScanned int
	DamagedSectors int
	FilesRecovered int
	OrphanedPages  int // labelled pages whose owner had no header
	Elapsed        time.Duration
}

// Scavenge rebuilds a CFS volume's structural information from the labels:
// "by reading the labels and interpreting some of the disk sectors, file
// system structural information, such as the free page map and the file
// name table, can be reconstructed." It reads every label on the volume,
// reads the header of every file found, rebuilds the name table from
// scratch, and reconstructs the VAM. It returns the mounted volume.
func Scavenge(d *disk.Disk, cfg Config) (*Volume, ScavengeStats, error) {
	var st ScavengeStats
	clk := d.Clock()
	start := clk.Now()
	cpu := sim.NewCPU(clk)

	ntPages, _, _, err := readRoot(d)
	if err == nil && ntPages > 0 {
		cfg.NTPages = ntPages
	}
	lay := computeLayout(d.Geometry(), cfg)
	g := d.Geometry()
	spt := g.SectorsPerTrack

	// Pass 1: read every label, track by track.
	type fileInfo struct {
		headerAddr int
		pages      int
	}
	files := map[uint64]*fileInfo{} // uid -> info
	used := vam.New(lay.total)
	used.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	for base := lay.dataLo - (lay.dataLo % spt); base < lay.total; base += spt {
		n := spt
		if base+n > lay.total {
			n = lay.total - base
		}
		labs, err := d.ReadLabels(base, n)
		if err != nil {
			// Damage stops a label transfer; fall back to singles.
			// Unreadable sectors become bad blocks: marked allocated
			// so nothing is ever placed on them.
			labs = labs[:0]
			for i := 0; i < n; i++ {
				one, err := d.ReadLabels(base+i, 1)
				if err != nil {
					st.DamagedSectors++
					if base+i >= lay.dataLo {
						used.MarkAllocated(base+i, 1)
					}
					labs = append(labs, disk.Label{})
					continue
				}
				labs = append(labs, one[0])
			}
		}
		st.SectorsScanned += n
		for i, lab := range labs {
			addr := base + i
			if addr < lay.dataLo {
				continue
			}
			cpu.Charge(sim.CostLabelInterpret)
			if lab == disk.FreeLabel {
				continue
			}
			used.MarkAllocated(addr, 1)
			fi := files[lab.FileID]
			if fi == nil {
				fi = &fileInfo{headerAddr: -1}
				files[lab.FileID] = fi
			}
			if lab.Type == disk.PageHeader && lab.Page == 0 {
				fi.headerAddr = addr
			}
			fi.pages++
		}
	}

	// Pass 2: read the header of every file and collect entries.
	var entries []*Entry
	uids := make([]uint64, 0, len(files))
	for uid := range files {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	var maxUID uint64
	for _, uid := range uids {
		fi := files[uid]
		if fi.headerAddr < 0 {
			// No header: the file's pages are orphans; free them.
			st.OrphanedPages += fi.pages
			continue
		}
		buf, err := d.ReadSectors(fi.headerAddr, 2)
		if err != nil {
			st.OrphanedPages += fi.pages
			continue
		}
		e, err := decodeHeaderStandalone(buf)
		if err != nil || e.UID != uid {
			st.OrphanedPages += fi.pages
			continue
		}
		e.HeaderAddr = fi.headerAddr
		entries = append(entries, e)
		if uid > maxUID {
			maxUID = uid
		}
		st.FilesRecovered++
	}

	// Pass 3: rebuild the name table from scratch.
	v := newVolume(d, cfg, lay)
	for p := 0; p < lay.ntPages; p++ {
		labs := make([]disk.Label, NTPageSectors)
		for j := range labs {
			labs[j] = disk.Label{Page: int32(p*NTPageSectors + j), Type: disk.PageNameTable}
		}
		if err := d.WriteLabels(lay.ntBase+p*NTPageSectors, labs); err != nil {
			return nil, st, err
		}
	}
	v.nt, err = btree.Create(v.pager)
	if err != nil {
		return nil, st, err
	}
	// Insert in sorted key order for locality.
	sort.Slice(entries, func(i, j int) bool {
		return string(entryKey(entries[i].Name, entries[i].Version)) < string(entryKey(entries[j].Name, entries[j].Version))
	})
	for _, e := range entries {
		cpu.Charge(sim.CostBTreeOp)
		if err := v.nt.Put(entryKey(e.Name, e.Version), encodeNTEntry(e)); err != nil {
			return nil, st, fmt.Errorf("cfs: scavenge rebuild: %w", err)
		}
	}

	// The VAM from pass 1, with orphans freed.
	v.vm = used
	for uid, fi := range files {
		if fi.headerAddr >= 0 {
			continue
		}
		_ = uid
		// Orphan pages were marked allocated; a second label pass to
		// free them precisely would double the scan, so accept the
		// leak until the next scavenge (the VAM is only a hint).
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo: lay.dataLo, Hi: lay.total,
		SmallThreshold: 1 << 30, SmallFraction: 50, MaxRuns: 64,
	})
	if err != nil {
		return nil, st, err
	}
	v.uidNext = maxUID + 1
	if err := v.writeRoot(false); err != nil {
		return nil, st, err
	}
	st.Elapsed = clk.Now() - start
	return v, st, nil
}
