package btree

import "fmt"

// ForEachLeaf walks the leaf chain left to right, handing each leaf's page
// bytes to fn until fn returns false or the chain ends. The buffer is a
// private copy that fn may retain and decode from any goroutine — this is
// the fan-out point for parallel mount-time scans: one goroutine drives the
// chain (so pager reads happen in deterministic order) while workers decode
// the handed-off pages with LeafEntries.
func (t *Tree) ForEachLeaf(fn func(page []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, leaf, err := t.descend(nil)
	if err != nil {
		return err
	}
	for {
		if !fn(leaf.data) {
			return nil
		}
		next := leaf.link()
		if next == 0 {
			return nil
		}
		leaf, err = t.load(next)
		if err != nil {
			return err
		}
		if leaf.kind() != kindLeaf {
			return fmt.Errorf("%w: leaf chain reached non-leaf page %d", ErrCorrupt, leaf.id)
		}
	}
}

// LeafEntries decodes the cells of a leaf page buffer (as handed to a
// ForEachLeaf callback) in slot order. It touches only the buffer — no
// pager, no tree state — so any number of goroutines may decode different
// pages concurrently. The key and value slices alias the buffer.
func LeafEntries(page []byte, fn func(key, value []byte) bool) error {
	n := node{data: page}
	if n.kind() != kindLeaf {
		return fmt.Errorf("%w: LeafEntries on non-leaf page", ErrCorrupt)
	}
	for i := 0; i < n.nslots(); i++ {
		if !fn(n.key(i), n.value(i)) {
			return nil
		}
	}
	return nil
}
