package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

const testPageSize = 2048

func newTestTree(t *testing.T, pages int) *Tree {
	t.Helper()
	tr, err := Create(NewMemPager(testPageSize, pages))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tr
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 16)
	if _, err := tr.Get([]byte("nothing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty: %v, want ErrNotFound", err)
	}
	if n, err := tr.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := newTestTree(t, 16)
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestPutReplace(t *testing.T) {
	tr := newTestTree(t, 16)
	if err := tr.Put([]byte("a"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("a"), []byte("new-and-longer-value")); err != nil {
		t.Fatal(err)
	}
	v, _ := tr.Get([]byte("a"))
	if string(v) != "new-and-longer-value" {
		t.Fatalf("Get after replace = %q", v)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("Len after replace = %d", n)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := newTestTree(t, 16)
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestTooLargeRejected(t *testing.T) {
	tr := newTestTree(t, 16)
	big := make([]byte, testPageSize)
	if err := tr.Put([]byte("k"), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized put: %v, want ErrTooLarge", err)
	}
}

func TestManyInsertsAndSplits(t *testing.T) {
	tr := newTestTree(t, 4096)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d after %d inserts, expected splits", tr.Height(), n)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	for i := 0; i < n; i++ {
		v, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(v, value(i)) {
			t.Fatalf("Get %d = %q", i, v)
		}
	}
	if cnt, _ := tr.Len(); cnt != n {
		t.Fatalf("Len = %d, want %d", cnt, n)
	}
}

func TestRandomInsertOrder(t *testing.T) {
	tr := newTestTree(t, 4096)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(3000)
	for _, i := range perm {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Scan must return keys in sorted order.
	var prev []byte
	err := tr.Scan(nil, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan order violated: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, 1024)
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if err := tr.Delete(key(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	for i := 0; i < 500; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after deletes: %v", err)
	}
	if n, _ := tr.Len(); n != 250 {
		t.Fatalf("Len = %d, want 250", n)
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr := newTestTree(t, 1024)
	for i := 0; i < 300; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := tr.Len(); n != 0 {
		t.Fatalf("Len = %d after deleting all", n)
	}
	for i := 0; i < 300; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 300 {
		t.Fatalf("Len = %d after reinsert", n)
	}
}

func TestScanRange(t *testing.T) {
	tr := newTestTree(t, 1024)
	for i := 0; i < 100; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan(key(90), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(key(90)) {
		t.Fatalf("range scan = %v", got)
	}
	// Early termination.
	count := 0
	tr.Scan(nil, func(_, _ []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early-terminated scan visited %d", count)
	}
}

func TestOpenExisting(t *testing.T) {
	p := NewMemPager(testPageSize, 1024)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr2, err := Open(p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Height() != tr.Height() {
		t.Fatalf("height %d != %d", tr2.Height(), tr.Height())
	}
	v, err := tr2.Get(key(500))
	if err != nil || !bytes.Equal(v, value(500)) {
		t.Fatalf("Get on reopened tree: %q, %v", v, err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	p := NewMemPager(testPageSize, 4)
	buf, _ := p.Read(0)
	copy(buf, []byte("garbage meta page"))
	if _, err := Open(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on garbage: %v, want ErrCorrupt", err)
	}
}

func TestPageSpaceExhaustion(t *testing.T) {
	tr := newTestTree(t, 3) // meta + root + one spare
	var err error
	for i := 0; i < 100000; i++ {
		if err = tr.Put(key(i), bytes.Repeat([]byte("x"), 100)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v", err)
	}
}

func TestFreeListReuse(t *testing.T) {
	tr := newTestTree(t, 64)
	if _, err := tr.alloc(); err != nil {
		t.Fatal(err)
	}
	id2, _ := tr.alloc()
	if err := tr.freePage(id2); err != nil {
		t.Fatal(err)
	}
	id3, _ := tr.alloc()
	if id3 != id2 {
		t.Fatalf("alloc after free = %d, want reused %d", id3, id2)
	}
}

func TestCheckDetectsSmashedPage(t *testing.T) {
	p := NewMemPager(testPageSize, 1024)
	tr, _ := Create(p)
	for i := 0; i < 2000; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Smash a non-meta page with garbage that still parses as slots out
	// of order.
	for id := uint32(1); id < tr.nextFresh; id++ {
		buf, _ := p.Read(id)
		if buf[offKind] == kindLeaf {
			garbage := make([]byte, testPageSize)
			garbage[offKind] = 0x7F
			p.Write(id, garbage)
			break
		}
	}
	if err := tr.Check(); err == nil {
		t.Fatal("Check missed a smashed page")
	}
}

func TestMaxCellBoundary(t *testing.T) {
	tr := newTestTree(t, 256)
	max := MaxCell(testPageSize)
	k := []byte("boundary-key")
	v := bytes.Repeat([]byte("v"), max-4-len(k))
	if err := tr.Put(k, v); err != nil {
		t.Fatalf("exact-max cell rejected: %v", err)
	}
	if err := tr.Put(k, append(v, 'x')); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-max cell accepted: %v", err)
	}
}

func TestLargeCellsSplitCorrectly(t *testing.T) {
	tr := newTestTree(t, 4096)
	max := MaxCell(testPageSize)
	for i := 0; i < 200; i++ {
		k := key(i)
		v := bytes.Repeat([]byte{byte(i)}, max-4-len(k))
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put big %d: %v", i, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("Get big %d: %v", i, err)
		}
		if len(v) != max-4-len(key(i)) || (len(v) > 0 && v[0] != byte(i)) {
			t.Fatalf("big value %d corrupted", i)
		}
	}
}

// Property: the tree agrees with a reference map under a random operation
// sequence.
func TestQuickTreeMatchesMap(t *testing.T) {
	type op struct {
		Key    uint16
		Val    uint8
		Delete bool
	}
	f := func(ops []op) bool {
		tr, err := Create(NewMemPager(testPageSize, 4096))
		if err != nil {
			return false
		}
		ref := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%05d", o.Key%500)
			if o.Delete {
				delete(ref, k)
				if err := tr.Delete([]byte(k)); err != nil && !errors.Is(err, ErrNotFound) {
					return false
				}
			} else {
				v := fmt.Sprintf("v%d", o.Val)
				ref[k] = v
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
			}
		}
		if err := tr.Check(); err != nil {
			return false
		}
		n, err := tr.Len()
		if err != nil || n != len(ref) {
			return false
		}
		for k, v := range ref {
			got, err := tr.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scan visits exactly the keys >= start, in order.
func TestQuickScanIsSortedSuffix(t *testing.T) {
	f := func(keys []uint16, start uint16) bool {
		tr, err := Create(NewMemPager(testPageSize, 4096))
		if err != nil {
			return false
		}
		set := map[string]bool{}
		for _, k := range keys {
			s := fmt.Sprintf("k%05d", k)
			set[s] = true
			if err := tr.Put([]byte(s), []byte("v")); err != nil {
				return false
			}
		}
		startKey := fmt.Sprintf("k%05d", start)
		var want []string
		for s := range set {
			if s >= startKey {
				want = append(want, s)
			}
		}
		sort.Strings(want)
		var got []string
		err = tr.Scan([]byte(startKey), func(k, _ []byte) bool {
			got = append(got, string(k))
			return true
		})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCompaction(t *testing.T) {
	n := newNode(1, testPageSize, kindLeaf)
	// Fill, delete everything, and verify space is reclaimable.
	i := 0
	for n.ensureSpace(leafCellSize(key(i), value(i))) {
		n.insertLeafCell(n.nslots(), key(i), value(i))
		i++
	}
	filled := n.nslots()
	if filled == 0 {
		t.Fatal("no cells inserted")
	}
	for n.nslots() > 0 {
		n.deleteSlot(0)
	}
	if !n.ensureSpace(leafCellSize(key(0), value(0))) {
		t.Fatal("space not reclaimed after deleting all cells")
	}
	n.insertLeafCell(0, key(0), value(0))
	if err := n.validate(); err != nil {
		t.Fatal(err)
	}
}
