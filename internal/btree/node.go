package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Page layout. All integers are big-endian.
//
//	0      kind (1 = leaf, 2 = internal, 3 = meta, 0 = free)
//	1      unused
//	2..3   nslots
//	4..5   cellStart: lowest byte offset occupied by cell data
//	6..9   link: right sibling (leaf) or leftmost child (internal)
//	10..15 reserved
//	16..   slot array, one uint16 cell offset per slot, in key order
//
// Cells grow downward from the end of the page.
//
//	leaf cell:     klen u16 | vlen u16 | key | value
//	internal cell: klen u16 | child u32 | key
const (
	kindFree     = 0
	kindLeaf     = 1
	kindInternal = 2
	kindMeta     = 3

	hdrSize  = 16
	slotSize = 2

	offKind      = 0
	offNSlots    = 2
	offCellStart = 4
	offLink      = 6
)

// node wraps a page buffer with slotted-page accessors. The buffer is always
// a private copy when the node will be modified.
type node struct {
	id   uint32
	data []byte
}

func newNode(id uint32, size int, kind byte) node {
	d := make([]byte, size)
	d[offKind] = kind
	binary.BigEndian.PutUint16(d[offCellStart:], uint16(size))
	return node{id: id, data: d}
}

func (n node) kind() byte   { return n.data[offKind] }
func (n node) isLeaf() bool { return n.data[offKind] == kindLeaf }
func (n node) nslots() int  { return int(binary.BigEndian.Uint16(n.data[offNSlots:])) }
func (n node) cellStart() int {
	return int(binary.BigEndian.Uint16(n.data[offCellStart:]))
}
func (n node) link() uint32 { return binary.BigEndian.Uint32(n.data[offLink:]) }

func (n node) setNSlots(v int) { binary.BigEndian.PutUint16(n.data[offNSlots:], uint16(v)) }
func (n node) setCellStart(v int) {
	binary.BigEndian.PutUint16(n.data[offCellStart:], uint16(v))
}
func (n node) setLink(v uint32) { binary.BigEndian.PutUint32(n.data[offLink:], v) }

func (n node) slotOffset(i int) int {
	return int(binary.BigEndian.Uint16(n.data[hdrSize+i*slotSize:]))
}
func (n node) setSlotOffset(i, off int) {
	binary.BigEndian.PutUint16(n.data[hdrSize+i*slotSize:], uint16(off))
}

// key returns the key of slot i (aliasing the page buffer).
func (n node) key(i int) []byte {
	off := n.slotOffset(i)
	klen := int(binary.BigEndian.Uint16(n.data[off:]))
	if n.isLeaf() {
		return n.data[off+4 : off+4+klen]
	}
	return n.data[off+6 : off+6+klen]
}

// value returns the value of leaf slot i (aliasing the page buffer).
func (n node) value(i int) []byte {
	off := n.slotOffset(i)
	klen := int(binary.BigEndian.Uint16(n.data[off:]))
	vlen := int(binary.BigEndian.Uint16(n.data[off+2:]))
	return n.data[off+4+klen : off+4+klen+vlen]
}

// child returns the child page id of internal slot i.
func (n node) child(i int) uint32 {
	off := n.slotOffset(i)
	return binary.BigEndian.Uint32(n.data[off+2:])
}

// setChild rewrites the child pointer of internal slot i in place.
func (n node) setChild(i int, id uint32) {
	off := n.slotOffset(i)
	binary.BigEndian.PutUint32(n.data[off+2:], id)
}

// cellSize returns the total byte size of slot i's cell.
func (n node) cellSize(i int) int {
	off := n.slotOffset(i)
	klen := int(binary.BigEndian.Uint16(n.data[off:]))
	if n.isLeaf() {
		vlen := int(binary.BigEndian.Uint16(n.data[off+2:]))
		return 4 + klen + vlen
	}
	return 6 + klen
}

// leafCellSize returns the encoded size of a prospective leaf cell.
func leafCellSize(key, value []byte) int { return 4 + len(key) + len(value) }

// internalCellSize returns the encoded size of a prospective internal cell.
func internalCellSize(key []byte) int { return 6 + len(key) }

// freeContiguous returns the bytes available between the slot array and the
// cell area.
func (n node) freeContiguous() int {
	return n.cellStart() - hdrSize - n.nslots()*slotSize
}

// liveBytes returns the total size of live cells.
func (n node) liveBytes() int {
	total := 0
	for i := 0; i < n.nslots(); i++ {
		total += n.cellSize(i)
	}
	return total
}

// freeTotal returns the bytes reclaimable by compaction plus contiguous free
// space.
func (n node) freeTotal() int {
	return len(n.data) - hdrSize - n.nslots()*slotSize - n.liveBytes()
}

// search finds the slot index for key. For leaves it returns (index, true)
// on an exact match or (insertion point, false). For internal nodes it
// returns the slot whose child should be descended into, or -1 meaning the
// leftmost child.
func (n node) search(key []byte) (int, bool) {
	lo, hi := 0, n.nslots()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.key(mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first slot with key > target.
	if n.isLeaf() {
		if lo > 0 && bytes.Equal(n.key(lo-1), key) {
			return lo - 1, true
		}
		return lo, false
	}
	return lo - 1, false // -1 selects the leftmost child
}

// insertLeafCell inserts (key, value) at slot index i. The caller must have
// verified fit via ensureSpace.
func (n node) insertLeafCell(i int, key, value []byte) {
	size := leafCellSize(key, value)
	off := n.cellStart() - size
	binary.BigEndian.PutUint16(n.data[off:], uint16(len(key)))
	binary.BigEndian.PutUint16(n.data[off+2:], uint16(len(value)))
	copy(n.data[off+4:], key)
	copy(n.data[off+4+len(key):], value)
	n.setCellStart(off)
	n.openSlot(i, off)
}

// insertInternalCell inserts (key, child) at slot index i.
func (n node) insertInternalCell(i int, key []byte, child uint32) {
	size := internalCellSize(key)
	off := n.cellStart() - size
	binary.BigEndian.PutUint16(n.data[off:], uint16(len(key)))
	binary.BigEndian.PutUint32(n.data[off+2:], child)
	copy(n.data[off+6:], key)
	n.setCellStart(off)
	n.openSlot(i, off)
}

// openSlot shifts the slot array to make room at index i, pointing it at off.
func (n node) openSlot(i, off int) {
	ns := n.nslots()
	copy(n.data[hdrSize+(i+1)*slotSize:hdrSize+(ns+1)*slotSize],
		n.data[hdrSize+i*slotSize:hdrSize+ns*slotSize])
	n.setSlotOffset(i, off)
	n.setNSlots(ns + 1)
}

// deleteSlot removes slot i; the cell bytes become garbage reclaimed by the
// next compaction.
func (n node) deleteSlot(i int) {
	ns := n.nslots()
	copy(n.data[hdrSize+i*slotSize:hdrSize+(ns-1)*slotSize],
		n.data[hdrSize+(i+1)*slotSize:hdrSize+ns*slotSize])
	n.setNSlots(ns - 1)
}

// compact rewrites the page, squeezing out garbage between cells.
func (n node) compact() {
	fresh := newNode(n.id, len(n.data), n.kind())
	fresh.setLink(n.link())
	for i := 0; i < n.nslots(); i++ {
		if n.isLeaf() {
			fresh.insertLeafCell(i, n.key(i), n.value(i))
		} else {
			fresh.insertInternalCell(i, n.key(i), n.child(i))
		}
	}
	copy(n.data, fresh.data)
}

// ensureSpace makes room for a cell of size bytes, compacting if necessary.
// It reports whether the cell fits at all.
func (n node) ensureSpace(size int) bool {
	if n.freeContiguous() >= size+slotSize {
		return true
	}
	if n.freeTotal() >= size+slotSize {
		n.compact()
		return true
	}
	return false
}

// validate performs structural checks used by tests and the corruption
// detector: slot offsets in range, keys strictly ascending.
func (n node) validate() error {
	if n.kind() != kindLeaf && n.kind() != kindInternal {
		return fmt.Errorf("%w: page %d has kind %d", ErrCorrupt, n.id, n.kind())
	}
	if hdrSize+n.nslots()*slotSize > n.cellStart() {
		return fmt.Errorf("%w: page %d slot array overlaps cells", ErrCorrupt, n.id)
	}
	for i := 0; i < n.nslots(); i++ {
		off := n.slotOffset(i)
		if off < hdrSize || off >= len(n.data) {
			return fmt.Errorf("%w: page %d slot %d offset %d", ErrCorrupt, n.id, i, off)
		}
		if i > 0 && bytes.Compare(n.key(i-1), n.key(i)) >= 0 {
			return fmt.Errorf("%w: page %d keys out of order at slot %d", ErrCorrupt, n.id, i)
		}
	}
	return nil
}
