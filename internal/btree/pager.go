// Package btree implements the page-oriented B+tree used for the Cedar file
// name table.
//
// The tree operates on fixed-size pages supplied by a Pager, so the same
// tree code runs over three very different backing stores: an in-memory
// pager (tests), the CFS pager (synchronous in-place writes with no
// atomicity — the paper's "multi-page B-tree updates were not atomic"), and
// the FSD pager (a write-back cache whose page images are captured by the
// redo log and whose home writes are deferred; see internal/core).
//
// The tree serializes its own access with a readers-writer lock: lookups and
// scans run in parallel, mutations are exclusive. The file systems layer
// their own locking on top (Cedar used a single monitor; this reproduction's
// FSD splits it — see internal/core).
package btree

import (
	"errors"
	"fmt"
	"sync"
)

// Pager provides a flat space of fixed-size pages addressed by index. Page 0
// is reserved for the tree's meta page; the tree allocates the rest itself
// via a free list threaded through the meta page, so page allocation is
// captured by whatever mechanism the Pager uses to persist writes.
type Pager interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// NumPages returns the number of pages in the space.
	NumPages() int
	// Read returns the contents of page id. The returned slice is owned
	// by the caller only until the next call on the Pager; callers that
	// retain data must copy it.
	Read(id uint32) ([]byte, error)
	// Write replaces the contents of page id. The Pager may buffer, log,
	// or write through, but a subsequent Read must observe the data.
	Write(id uint32, data []byte) error
}

// Errors returned by tree operations.
var (
	ErrNotFound  = errors.New("btree: key not found")
	ErrTooLarge  = errors.New("btree: key/value too large for page")
	ErrCorrupt   = errors.New("btree: structural corruption detected")
	ErrCollision = errors.New("btree: key already present")
	ErrFull      = errors.New("btree: page space exhausted")
)

// MemPager is an in-memory Pager for tests and for staging structures before
// they are written to disk (the CFS scavenger rebuilds the name table in a
// MemPager first). It locks internally, so concurrent tree readers (which
// share the Tree's read lock) never race on the lazy page allocation in
// Read or the write counter.
type MemPager struct {
	pageSize int

	mu    sync.Mutex
	pages [][]byte
	// Writes counts Write calls, so tests can assert write amplification.
	// Read it only while no other goroutine is using the pager.
	Writes int
}

// NewMemPager returns a MemPager with n pages of the given size.
func NewMemPager(pageSize, n int) *MemPager {
	return &MemPager{pageSize: pageSize, pages: make([][]byte, n)}
}

// PageSize implements Pager.
func (p *MemPager) PageSize() int { return p.pageSize }

// NumPages implements Pager.
func (p *MemPager) NumPages() int { return len(p.pages) }

// Read implements Pager.
func (p *MemPager) Read(id uint32) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return nil, fmt.Errorf("btree: page %d out of range", id)
	}
	if p.pages[id] == nil {
		p.pages[id] = make([]byte, p.pageSize)
	}
	return p.pages[id], nil
}

// Write implements Pager.
func (p *MemPager) Write(id uint32, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("btree: page %d out of range", id)
	}
	if len(data) != p.pageSize {
		return fmt.Errorf("btree: write of %d bytes to %d-byte page", len(data), p.pageSize)
	}
	if p.pages[id] == nil {
		p.pages[id] = make([]byte, p.pageSize)
	}
	copy(p.pages[id], data)
	p.Writes++
	return nil
}
