package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// Meta page layout (page 0). Bytes 10..15 are reserved for the storage
// layer on every page kind (the FSD cache stamps a CRC there), so the meta
// fields sit past them:
//
//	0       kind = meta
//	16..19  magic
//	20..23  root page id
//	24..27  height (1 = root is a leaf)
//	28..31  nextFresh: first never-allocated page id
//	32..35  freeHead: head of the free-page list (0 = empty)
const (
	metaMagic = 0xCEDA12F5

	offMagic     = 16
	offRoot      = 20
	offHeight    = 24
	offNextFresh = 28
	offFreeHead  = 32

	// offFreeNext is where a free page stores the next free page id
	// (bytes 4..7, clear of the reserved window).
	offFreeNext = 4
)

// Tree is a B+tree over a Pager. Keys and values are arbitrary byte strings;
// keys are ordered lexicographically. The zero Tree is not usable; obtain
// one from Create or Open.
//
// Concurrency: readers (Get, Has, Scan, Len, Check, ForEachLeaf) take mu
// for reading and may run in parallel; mutators (Put, Delete) take it
// exclusively. The lock also covers the Pager calls the tree makes, so a
// Pager shared only through its Tree needs no locking of its own.
type Tree struct {
	p Pager

	mu        sync.RWMutex
	root      uint32
	height    uint32
	nextFresh uint32
	freeHead  uint32
}

// MaxCell returns the largest key+value payload a tree over pages of size ps
// accepts. Three maximal cells must fit in a page so splits always succeed.
func MaxCell(ps int) int { return (ps - hdrSize - 3*slotSize) / 3 }

// Create initializes an empty tree in the pager, overwriting pages 0 and 1.
func Create(p Pager) (*Tree, error) {
	if p.NumPages() < 2 {
		return nil, fmt.Errorf("btree: pager has %d pages, need at least 2", p.NumPages())
	}
	t := &Tree{p: p, root: 1, height: 1, nextFresh: 2}
	rootLeaf := newNode(1, p.PageSize(), kindLeaf)
	if err := p.Write(1, rootLeaf.data); err != nil {
		return nil, err
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree. It fails with ErrCorrupt if the meta
// page does not carry the expected magic — the cue for a scavenge.
func Open(p Pager) (*Tree, error) {
	buf, err := p.Read(0)
	if err != nil {
		return nil, err
	}
	if buf[offKind] != kindMeta || binary.BigEndian.Uint32(buf[offMagic:]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta page", ErrCorrupt)
	}
	t := &Tree{
		p:         p,
		root:      binary.BigEndian.Uint32(buf[offRoot:]),
		height:    binary.BigEndian.Uint32(buf[offHeight:]),
		nextFresh: binary.BigEndian.Uint32(buf[offNextFresh:]),
		freeHead:  binary.BigEndian.Uint32(buf[offFreeHead:]),
	}
	if t.root == 0 || t.height == 0 || int(t.nextFresh) > p.NumPages() {
		return nil, fmt.Errorf("%w: implausible meta page", ErrCorrupt)
	}
	return t, nil
}

// Height returns the tree height (1 = the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.height)
}

// Pager returns the underlying pager.
func (t *Tree) Pager() Pager { return t.p }

// AllocatedPages returns the number of pages ever allocated (a capacity
// metric; freed pages are not subtracted).
func (t *Tree) AllocatedPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.nextFresh)
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.p.PageSize())
	buf[offKind] = kindMeta
	binary.BigEndian.PutUint32(buf[offMagic:], metaMagic)
	binary.BigEndian.PutUint32(buf[offRoot:], t.root)
	binary.BigEndian.PutUint32(buf[offHeight:], t.height)
	binary.BigEndian.PutUint32(buf[offNextFresh:], t.nextFresh)
	binary.BigEndian.PutUint32(buf[offFreeHead:], t.freeHead)
	return t.p.Write(0, buf)
}

// load reads page id into a private copy wrapped as a node.
func (t *Tree) load(id uint32) (node, error) {
	buf, err := t.p.Read(id)
	if err != nil {
		return node{}, err
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	return node{id: id, data: cp}, nil
}

func (t *Tree) store(n node) error { return t.p.Write(n.id, n.data) }

// alloc returns a fresh page id, popping the free list first.
func (t *Tree) alloc() (uint32, error) {
	if t.freeHead != 0 {
		id := t.freeHead
		buf, err := t.p.Read(id)
		if err != nil {
			return 0, err
		}
		t.freeHead = binary.BigEndian.Uint32(buf[offFreeNext:])
		return id, nil
	}
	if int(t.nextFresh) >= t.p.NumPages() {
		return 0, ErrFull
	}
	id := t.nextFresh
	t.nextFresh++
	return id, nil
}

// freePage pushes id onto the free list.
func (t *Tree) freePage(id uint32) error {
	buf := make([]byte, t.p.PageSize())
	buf[offKind] = kindFree
	binary.BigEndian.PutUint32(buf[offFreeNext:], t.freeHead)
	if err := t.p.Write(id, buf); err != nil {
		return err
	}
	t.freeHead = id
	return nil
}

// pathEl records one step of a root-to-leaf descent: the page visited and
// the slot index taken (-1 means the leftmost child).
type pathEl struct {
	id  uint32
	idx int
}

// descend walks from the root to the leaf responsible for key, returning the
// internal-node path and the leaf.
func (t *Tree) descend(key []byte) ([]pathEl, node, error) {
	var path []pathEl
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.load(id)
		if err != nil {
			return nil, node{}, err
		}
		if n.kind() != kindInternal {
			return nil, node{}, fmt.Errorf("%w: page %d expected internal", ErrCorrupt, id)
		}
		idx, _ := n.search(key)
		path = append(path, pathEl{id: id, idx: idx})
		if idx < 0 {
			id = n.link()
		} else {
			id = n.child(idx)
		}
		if id == 0 {
			return nil, node{}, fmt.Errorf("%w: nil child under page %d", ErrCorrupt, n.id)
		}
	}
	leaf, err := t.load(id)
	if err != nil {
		return nil, node{}, err
	}
	if leaf.kind() != kindLeaf {
		return nil, node{}, fmt.Errorf("%w: page %d expected leaf", ErrCorrupt, id)
	}
	return path, leaf, nil
}

// Get returns the value stored under key, or ErrNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.get(key)
}

// get is Get's body; the caller holds mu (either mode).
func (t *Tree) get(key []byte) ([]byte, error) {
	_, leaf, err := t.descend(key)
	if err != nil {
		return nil, err
	}
	idx, found := leaf.search(key)
	if !found {
		return nil, ErrNotFound
	}
	// leaf.data is a private copy, so the value may be returned directly.
	return leaf.value(idx), nil
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.get(key)
	if err == nil {
		return true, nil
	}
	if err == ErrNotFound {
		return false, nil
	}
	return false, err
}

// Put inserts or replaces the value under key.
func (t *Tree) Put(key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if leafCellSize(key, value) > MaxCell(t.p.PageSize()) {
		return ErrTooLarge
	}
	path, leaf, err := t.descend(key)
	if err != nil {
		return err
	}
	idx, found := leaf.search(key)
	if found {
		leaf.deleteSlot(idx)
	}
	if leaf.ensureSpace(leafCellSize(key, value)) {
		leaf.insertLeafCell(idx, key, value)
		return t.store(leaf)
	}
	return t.splitLeafAndInsert(path, leaf, idx, key, value)
}

// kvPair is a materialized leaf cell used during splits.
type kvPair struct{ k, v []byte }

// splitLeafAndInsert repacks the leaf plus the new cell into two pages and
// propagates the new separator up the path.
func (t *Tree) splitLeafAndInsert(path []pathEl, leaf node, idx int, key, value []byte) error {
	cells := make([]kvPair, 0, leaf.nslots()+1)
	for i := 0; i < leaf.nslots(); i++ {
		if i == idx {
			cells = append(cells, kvPair{k: key, v: value})
		}
		cells = append(cells, kvPair{k: append([]byte(nil), leaf.key(i)...), v: append([]byte(nil), leaf.value(i)...)})
	}
	if idx == leaf.nslots() {
		cells = append(cells, kvPair{k: key, v: value})
	}
	total := 0
	for _, c := range cells {
		total += leafCellSize(c.k, c.v)
	}
	// Choose the split so the left page holds about half the bytes.
	splitAt, acc := 0, 0
	for i, c := range cells {
		acc += leafCellSize(c.k, c.v)
		if acc >= total/2 {
			splitAt = i + 1
			break
		}
	}
	if splitAt == 0 || splitAt >= len(cells) {
		splitAt = len(cells) / 2
		if splitAt == 0 {
			splitAt = 1
		}
	}
	rightID, err := t.alloc()
	if err != nil {
		return err
	}
	left := newNode(leaf.id, t.p.PageSize(), kindLeaf)
	right := newNode(rightID, t.p.PageSize(), kindLeaf)
	for i, c := range cells[:splitAt] {
		left.insertLeafCell(i, c.k, c.v)
	}
	for i, c := range cells[splitAt:] {
		right.insertLeafCell(i, c.k, c.v)
	}
	right.setLink(leaf.link())
	left.setLink(rightID)
	// Write the new right page before the left page that points at it;
	// under a non-atomic pager a crash between the two leaves garbage
	// rather than a dangling pointer. (Under the logged pager the batch
	// is atomic anyway.)
	if err := t.store(right); err != nil {
		return err
	}
	if err := t.store(left); err != nil {
		return err
	}
	sep := append([]byte(nil), right.key(0)...)
	if err := t.insertSeparator(path, sep, rightID); err != nil {
		return err
	}
	return t.writeMeta()
}

// icell is a materialized internal cell used during splits.
type icell struct {
	k     []byte
	child uint32
}

// insertSeparator inserts (sep -> right) into the deepest node of path,
// splitting upward as needed. It updates t.root/t.height when the root
// splits; the caller writes the meta page.
func (t *Tree) insertSeparator(path []pathEl, sep []byte, right uint32) error {
	for level := len(path) - 1; level >= 0; level-- {
		n, err := t.load(path[level].id)
		if err != nil {
			return err
		}
		idx, _ := n.search(sep)
		at := idx + 1 // first slot with key > sep
		if n.ensureSpace(internalCellSize(sep)) {
			n.insertInternalCell(at, sep, right)
			return t.store(n)
		}
		// Split the internal node: gather cells, insert, promote middle.
		cells := make([]icell, 0, n.nslots()+1)
		for i := 0; i < n.nslots(); i++ {
			if i == at {
				cells = append(cells, icell{k: sep, child: right})
			}
			cells = append(cells, icell{k: append([]byte(nil), n.key(i)...), child: n.child(i)})
		}
		if at == n.nslots() {
			cells = append(cells, icell{k: sep, child: right})
		}
		mid := len(cells) / 2
		rightID, err := t.alloc()
		if err != nil {
			return err
		}
		left := newNode(n.id, t.p.PageSize(), kindInternal)
		left.setLink(n.link())
		for i, c := range cells[:mid] {
			left.insertInternalCell(i, c.k, c.child)
		}
		rn := newNode(rightID, t.p.PageSize(), kindInternal)
		rn.setLink(cells[mid].child)
		for i, c := range cells[mid+1:] {
			rn.insertInternalCell(i, c.k, c.child)
		}
		if err := t.store(rn); err != nil {
			return err
		}
		if err := t.store(left); err != nil {
			return err
		}
		sep = append([]byte(nil), cells[mid].k...)
		right = rightID
	}
	// The root itself split: grow the tree.
	newRootID, err := t.alloc()
	if err != nil {
		return err
	}
	nr := newNode(newRootID, t.p.PageSize(), kindInternal)
	nr.setLink(t.root)
	nr.insertInternalCell(0, sep, right)
	if err := t.store(nr); err != nil {
		return err
	}
	t.root = newRootID
	t.height++
	return nil
}

// Delete removes key. Underfull pages are not rebalanced (deletion is lazy,
// as in many production trees); a leaf that empties completely is left in
// the chain and skipped by scans.
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, leaf, err := t.descend(key)
	if err != nil {
		return err
	}
	idx, found := leaf.search(key)
	if !found {
		return ErrNotFound
	}
	leaf.deleteSlot(idx)
	return t.store(leaf)
}

// Scan calls fn for every entry with key >= start in ascending order until
// fn returns false or the tree is exhausted. The key and value slices are
// only valid during the callback.
func (t *Tree) Scan(start []byte, fn func(key, value []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scan(start, fn)
}

// scan is Scan's body; the caller holds mu (either mode).
func (t *Tree) scan(start []byte, fn func(key, value []byte) bool) error {
	_, leaf, err := t.descend(start)
	if err != nil {
		return err
	}
	idx, _ := leaf.search(start)
	for {
		for ; idx < leaf.nslots(); idx++ {
			if !fn(leaf.key(idx), leaf.value(idx)) {
				return nil
			}
		}
		next := leaf.link()
		if next == 0 {
			return nil
		}
		leaf, err = t.load(next)
		if err != nil {
			return err
		}
		if leaf.kind() != kindLeaf {
			return fmt.Errorf("%w: leaf chain reached non-leaf page %d", ErrCorrupt, leaf.id)
		}
		idx = 0
	}
}

// Len counts the entries by scanning; it is O(n) and intended for tests and
// tools.
func (t *Tree) Len() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	err := t.scan(nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Check walks the entire tree verifying structural invariants: node kinds,
// key ordering within and across pages, uniform leaf depth, and leaf-chain
// consistency. It is the corruption detector used after crash tests.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var firstLeaf uint32
	var prevKey []byte
	var walk func(id uint32, depth uint32, lo, hi []byte) error
	walk = func(id uint32, depth uint32, lo, hi []byte) error {
		n, err := t.load(id)
		if err != nil {
			return err
		}
		if err := n.validate(); err != nil {
			return err
		}
		if depth == t.height {
			if !n.isLeaf() {
				return fmt.Errorf("%w: page %d at leaf depth is internal", ErrCorrupt, id)
			}
			if firstLeaf == 0 {
				firstLeaf = id
			}
			for i := 0; i < n.nslots(); i++ {
				k := n.key(i)
				if lo != nil && bytes.Compare(k, lo) < 0 {
					return fmt.Errorf("%w: page %d key below separator", ErrCorrupt, id)
				}
				if hi != nil && bytes.Compare(k, hi) >= 0 {
					return fmt.Errorf("%w: page %d key above separator", ErrCorrupt, id)
				}
				if prevKey != nil && bytes.Compare(prevKey, k) >= 0 {
					return fmt.Errorf("%w: global key order violated at page %d", ErrCorrupt, id)
				}
				prevKey = append(prevKey[:0], k...)
			}
			return nil
		}
		if n.isLeaf() {
			return fmt.Errorf("%w: page %d is a leaf above leaf depth", ErrCorrupt, id)
		}
		childLo := lo
		for i := -1; i < n.nslots(); i++ {
			var cid uint32
			var childHi []byte
			if i < 0 {
				cid = n.link()
			} else {
				cid = n.child(i)
				childLo = append([]byte(nil), n.key(i)...)
			}
			if i+1 < n.nslots() {
				childHi = append([]byte(nil), n.key(i+1)...)
			} else {
				childHi = hi
			}
			if i < 0 && n.nslots() > 0 {
				childHi = append([]byte(nil), n.key(0)...)
			}
			if err := walk(cid, depth+1, childLo, childHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	return nil
}
