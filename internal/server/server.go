// Package server is the FSD network front-end: a concurrent TCP file
// server speaking the internal/wire protocol over any cedarfs.FS — in
// practice the local adapter over a mounted volume. The paper's FSD served
// a building of Dorados from one machine; this server is that machine.
//
// Concurrency model (the per-session goroutine + shared-applier split):
// every accepted connection is one session with its own request-loop
// goroutine and its own handle table; all sessions share the one FS, whose
// own locking (the split monitor, the intent queue's single applier) is
// the serialization point. Within a session requests execute in arrival
// order and replies return in that order — except WaitCommitted, which
// parks in its own goroutine and replies out of order when the commit
// lands, so a durability wait never stalls the pipeline of requests
// behind it (that is the point of the pipelined group commit). A dedicated
// writer goroutine per session serializes reply frames.
//
// Backpressure: when the volume runs the asynchronous metadata pipeline,
// the session loop consults the intent-queue depth before executing a
// mutation and stalls (stops consuming from the socket, letting TCP flow
// control push back on the client) while the queue is above the
// configured threshold. The signal is the same queue depth that
// Stats().Intent reports; see Config.BackpressureDepth.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	cedarfs "repro"
	"repro/internal/wire"
)

// depthReporter is implemented by FS values that can report their intent
// queue depth cheaply (the local adapter); the server uses it for
// backpressure when present.
type depthReporter interface{ IntentDepth() int }

// seqReporter is implemented by FS values that can report the commit
// sequence cheaply (an atomic load); without it the server stamps replies
// with a full Stats call.
type seqReporter interface{ CommitSeq() uint64 }

// Config tunes the server. The zero value serves with the defaults.
type Config struct {
	// MaxFrame bounds accepted request frames (0 = wire.MaxFrame).
	MaxFrame int
	// MaxSessions caps concurrent sessions; further accepts are closed
	// immediately. 0 means unlimited.
	MaxSessions int
	// BackpressureDepth is the intent-queue depth above which the session
	// loop stalls mutations. 0 means 3/4 of the queue limit reported by
	// the FS (or no backpressure when the FS reports none); negative
	// disables backpressure.
	BackpressureDepth int
	// StallPoll is how often a stalled session re-checks the queue depth
	// (0 = 200µs).
	StallPoll time.Duration
}

// Stats is the server's own counter snapshot (the volume's counters live
// behind FS.Stats).
type Stats struct {
	Sessions       uint32 // currently connected
	SessionsTotal  uint64 // accepted since start
	SessionsDenied uint64 // closed at accept by MaxSessions
	Requests       uint64 // requests executed
	Errors         uint64 // requests answered with an error code
	ProtocolErrors uint64 // undecodable frames / oversized frames
	Stalls         uint64 // backpressure stalls
	OpenHandles    uint32 // handles currently in session tables
}

// Server serves one FS to many sessions.
type Server struct {
	fs  cedarfs.FS
	cfg Config

	depth   depthReporter // nil when the FS cannot report
	seq     seqReporter   // nil when the FS cannot report
	bpLimit int           // resolved backpressure threshold; -1 = off

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	sessions       atomic.Int32
	sessionsTotal  atomic.Uint64
	sessionsDenied atomic.Uint64
	requests       atomic.Uint64
	errorsN        atomic.Uint64
	protoErrors    atomic.Uint64
	stalls         atomic.Uint64
	openHandles    atomic.Int32

	wg sync.WaitGroup
}

// New builds a server over fs.
func New(fs cedarfs.FS, cfg Config) *Server {
	s := &Server{
		fs:        fs,
		cfg:       cfg,
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
	if d, ok := fs.(depthReporter); ok {
		s.depth = d
	}
	if q, ok := fs.(seqReporter); ok {
		s.seq = q
	}
	// Resolve the backpressure threshold once: the queue limit is fixed at
	// mount time.
	s.bpLimit = -1
	if s.depth != nil && cfg.BackpressureDepth >= 0 {
		if cfg.BackpressureDepth > 0 {
			s.bpLimit = cfg.BackpressureDepth
		} else if st, err := fs.Stats(context.Background()); err == nil && st.IntentLimit > 0 {
			s.bpLimit = int(st.IntentLimit) * 3 / 4
		}
	}
	return s
}

// Serve accepts sessions on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine to serve several listeners.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return cedarfs.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if s.cfg.MaxSessions > 0 && int(s.sessions.Load()) >= s.cfg.MaxSessions {
			s.sessionsDenied.Add(1)
			c.Close()
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.sessions.Add(1)
		s.sessionsTotal.Add(1)
		s.wg.Add(1)
		go s.serveSession(c)
	}
}

// Close stops accepting, closes every session, and waits for their
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:       uint32(s.sessions.Load()),
		SessionsTotal:  s.sessionsTotal.Load(),
		SessionsDenied: s.sessionsDenied.Load(),
		Requests:       s.requests.Load(),
		Errors:         s.errorsN.Load(),
		ProtocolErrors: s.protoErrors.Load(),
		Stalls:         s.stalls.Load(),
		OpenHandles:    uint32(s.openHandles.Load()),
	}
}

// session is one connection's state: the handle table and the reply
// channel feeding the writer goroutine.
type session struct {
	srv  *Server
	conn net.Conn
	ctx  context.Context // cancelled once the connection is done

	mu      sync.Mutex
	handles map[uint32]cedarfs.Handle
	nextH   uint32

	replies chan []byte // framed replies; closed by the request loop
	wg      sync.WaitGroup
}

func (s *Server) serveSession(c net.Conn) {
	defer s.wg.Done()
	defer s.sessions.Add(-1)
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{
		srv:     s,
		conn:    c,
		ctx:     ctx,
		handles: map[uint32]cedarfs.Handle{},
		replies: make(chan []byte, 64),
	}
	// Writer goroutine: the single owner of the connection's write side.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for frame := range sess.replies {
			if err := wire.WriteFrame(c, frame); err != nil {
				// Reply undeliverable: kill the read side too; the
				// request loop will exit and drain.
				c.Close()
			}
		}
	}()
	sess.loop()
	// The connection is done (client went away, or Close killed it):
	// cancel the session context so parked WaitCommitted goroutines stop
	// waiting — otherwise a wait for a commit that never lands would wedge
	// this wg.Wait, and through it Server.Close.
	cancel()
	// In-flight WaitCommitted goroutines still hold the channel.
	sess.wg.Wait()
	close(sess.replies)
	<-writerDone
	c.Close()
	// Release the session's handles.
	sess.mu.Lock()
	n := len(sess.handles)
	for _, h := range sess.handles {
		h.Close()
	}
	sess.handles = nil
	sess.mu.Unlock()
	s.openHandles.Add(int32(-n))
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// loop reads and executes requests until the connection dies or a frame is
// malformed (a session that cannot be parsed cannot be trusted to stay in
// sync, so it is dropped).
func (sess *session) loop() {
	s := sess.srv
	for {
		body, err := wire.ReadFrame(sess.conn, s.cfg.MaxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				s.protoErrors.Add(1)
			}
			return
		}
		q, err := wire.DecodeRequest(body)
		if err != nil {
			s.protoErrors.Add(1)
			return
		}
		s.requests.Add(1)
		if q.Op == wire.OpWaitCommitted {
			// A sequence above the ack watermark was never handed out by
			// this server and can never commit; parking on it would hold
			// the wait (and session teardown) forever. Reject it up front.
			if q.Seq > s.commitSeq() {
				sess.send(sess.reply(&q, fmt.Errorf("%w: wait for unissued commit seq %d", cedarfs.ErrBadRequest, q.Seq), nil))
				continue
			}
			// Park the durability wait off the pipeline: requests behind
			// it keep executing, the reply goes out when the commit
			// lands. The session context unparks it if the connection
			// dies first.
			sess.wg.Add(1)
			go func(q wire.Request) {
				defer sess.wg.Done()
				err := s.fs.WaitCommitted(sess.ctx, q.Seq)
				sess.send(sess.reply(&q, err, func(*wire.Reply) {}))
			}(q)
			continue
		}
		if mutates(q.Op) {
			sess.stallForBackpressure()
		}
		sess.send(sess.execute(&q))
	}
}

// mutates reports whether an op feeds the intent queue.
func mutates(op wire.Op) bool {
	switch op {
	case wire.OpCreate, wire.OpWrite, wire.OpRename, wire.OpDelete, wire.OpSetKeep:
		return true
	}
	return false
}

// stallForBackpressure blocks while the intent queue is above the
// threshold. TCP flow control propagates the stall to the client.
func (sess *session) stallForBackpressure() {
	s := sess.srv
	limit := s.bpLimit
	if limit < 0 || s.depth.IntentDepth() <= limit {
		return
	}
	s.stalls.Add(1)
	poll := s.cfg.StallPoll
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	for s.depth.IntentDepth() > limit {
		time.Sleep(poll)
	}
}

// send queues a framed reply for the writer goroutine.
func (sess *session) send(frame []byte) {
	// The replies channel is only closed after loop() returns and the
	// wait-group drains, and both senders hold either the loop or a
	// wait-group slot, so this send cannot race the close.
	sess.replies <- frame
}

// reply frames a success or error reply for q; fill populates the
// op-specific payload on success.
func (sess *session) reply(q *wire.Request, err error, fill func(*wire.Reply)) []byte {
	p := wire.Reply{ID: q.ID, Op: q.Op}
	if err != nil {
		sess.srv.errorsN.Add(1)
		p.Code = uint16(cedarfs.Code(err))
		p.Msg = err.Error()
	} else {
		p.CommitSeq = sess.srv.commitSeq()
		fill(&p)
	}
	return wire.AppendReply(nil, &p)
}

// commitSeq samples the ack watermark carried on every success reply.
func (s *Server) commitSeq() uint64 {
	if s.seq != nil {
		return s.seq.CommitSeq()
	}
	st, err := s.fs.Stats(context.Background())
	if err != nil {
		return 0
	}
	return st.CommitSeq
}

// execute runs one request against the FS and frames the reply.
func (sess *session) execute(q *wire.Request) []byte {
	s := sess.srv
	ctx := sess.ctx
	switch q.Op {
	case wire.OpOpen:
		h, err := s.fs.Open(ctx, q.Name, q.Version)
		return sess.reply(q, err, func(p *wire.Reply) {
			p.Handle = sess.addHandle(h)
			p.Info = h.Info()
		})
	case wire.OpCreate:
		h, err := s.fs.Create(ctx, q.Name, q.Data)
		return sess.reply(q, err, func(p *wire.Reply) {
			p.Handle = sess.addHandle(h)
			p.Info = h.Info()
		})
	case wire.OpRead:
		h, err := sess.handle(q.Handle)
		if err != nil {
			return sess.reply(q, err, nil)
		}
		if int(q.N) > s.maxFrame()-64 {
			return sess.reply(q, fmt.Errorf("%w: read of %d bytes exceeds frame limit", cedarfs.ErrBadRequest, q.N), nil)
		}
		buf := make([]byte, q.N)
		n, err := h.ReadAt(ctx, buf, int64(q.Off))
		if err == io.EOF && n > 0 {
			err = nil // partial read at end of file: success, short data
		}
		if err == io.EOF {
			// Read at/past EOF: success with empty data, the wire form of
			// io.EOF (the client reconstructs it).
			err = nil
			n = 0
		}
		return sess.reply(q, err, func(p *wire.Reply) { p.Data = buf[:n] })
	case wire.OpWrite:
		h, err := sess.handle(q.Handle)
		if err != nil {
			return sess.reply(q, err, nil)
		}
		n, seq, err := h.WriteAt(ctx, q.Data, int64(q.Off))
		return sess.reply(q, err, func(p *wire.Reply) {
			p.N = uint32(n)
			p.CommitSeq = seq // the ack rides the write's own sequence
		})
	case wire.OpCloseHandle:
		sess.mu.Lock()
		h, ok := sess.handles[q.Handle]
		delete(sess.handles, q.Handle)
		sess.mu.Unlock()
		if !ok {
			return sess.reply(q, fmt.Errorf("%w: unknown handle %d", cedarfs.ErrBadRequest, q.Handle), nil)
		}
		s.openHandles.Add(-1)
		return sess.reply(q, h.Close(), func(*wire.Reply) {})
	case wire.OpStat:
		fi, err := s.fs.Stat(ctx, q.Name, q.Version)
		return sess.reply(q, err, func(p *wire.Reply) { p.Info = fi })
	case wire.OpList:
		fis, err := s.fs.List(ctx, q.Name)
		return sess.reply(q, err, func(p *wire.Reply) { p.Infos = fis })
	case wire.OpRename:
		return sess.reply(q, s.fs.Rename(ctx, q.Name, q.Name2), func(*wire.Reply) {})
	case wire.OpDelete:
		return sess.reply(q, s.fs.Delete(ctx, q.Name, q.Version), func(*wire.Reply) {})
	case wire.OpSetKeep:
		return sess.reply(q, s.fs.SetKeep(ctx, q.Name, q.Keep), func(*wire.Reply) {})
	case wire.OpForce:
		seq, err := s.fs.Force(ctx)
		return sess.reply(q, err, func(p *wire.Reply) {
			p.Seq = seq
			p.CommitSeq = seq
		})
	case wire.OpStats:
		st, err := s.fs.Stats(ctx)
		return sess.reply(q, err, func(p *wire.Reply) {
			st.Sessions = uint32(s.sessions.Load())
			p.Stats = st
		})
	default:
		return sess.reply(q, fmt.Errorf("%w: op %d", cedarfs.ErrBadRequest, q.Op), nil)
	}
}

func (s *Server) maxFrame() int {
	if s.cfg.MaxFrame > 0 {
		return s.cfg.MaxFrame
	}
	return wire.MaxFrame
}

// addHandle registers h in the session table and returns its id.
func (sess *session) addHandle(h cedarfs.Handle) uint32 {
	sess.mu.Lock()
	sess.nextH++
	id := sess.nextH
	sess.handles[id] = h
	sess.mu.Unlock()
	sess.srv.openHandles.Add(1)
	return id
}

// handle looks a handle id up.
func (sess *session) handle(id uint32) (cedarfs.Handle, error) {
	sess.mu.Lock()
	h, ok := sess.handles[id]
	sess.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: unknown handle %d", cedarfs.ErrBadRequest, id)
	}
	return h, nil
}
