package server_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	cedarfs "repro"
	"repro/client"
	"repro/internal/disk"
	"repro/internal/fstest"
	"repro/internal/server"
	"repro/internal/sim"
)

// startServer mounts a fresh volume, serves it on a loopback TCP listener,
// and returns the address. Everything is torn down via t.Cleanup.
func startServer(t *testing.T, cfg cedarfs.Config, scfg server.Config) (string, *server.Server) {
	t.Helper()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, sim.NewVirtualClock())
	if err != nil {
		t.Fatal(err)
	}
	vol, err := cedarfs.Format(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := cedarfs.NewLocalFS(vol)
	srv := server.New(fs, scfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Close()
		fs.Close()
		if err := vol.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return l.Addr().String(), srv
}

// TestRemoteConformance runs the shared FS conformance suite against the
// remote client over a real loopback socket — the same suite the local
// adapter passes (TestLocalFSConformance in the root package), which is the
// tentpole contract: one interface, two transports, identical semantics.
func TestRemoteConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) cedarfs.FS {
		addr, _ := startServer(t, cedarfs.Config{}, server.Config{})
		cl, err := client.Dial(addr, client.Options{Conns: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cl.Close()
			if n := cl.ProtocolErrors(); n != 0 {
				t.Errorf("client saw %d protocol errors", n)
			}
		})
		return cl
	})
}

// TestRemoteConformanceAsync repeats the suite against a volume running the
// asynchronous metadata pipeline, where acked commit sequences lag the
// apply and WaitCommitted does real waiting.
func TestRemoteConformanceAsync(t *testing.T) {
	fstest.Run(t, func(t *testing.T) cedarfs.FS {
		addr, _ := startServer(t, cedarfs.Config{AsyncApply: true, AdaptiveCommit: true}, server.Config{})
		cl, err := client.Dial(addr, client.Options{Conns: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	})
}

// TestMaxSessions: connections over the cap are closed at accept.
func TestMaxSessions(t *testing.T) {
	addr, srv := startServer(t, cedarfs.Config{}, server.Config{MaxSessions: 1})
	c1, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Stats(t.Context()); err != nil {
		t.Fatal(err)
	}
	// The second session is denied: its connection dies immediately, which
	// the client observes as a failed call.
	c2, err := client.Dial(addr, client.Options{Conns: 1})
	if err == nil {
		defer c2.Close()
		if _, err := c2.Stats(t.Context()); err == nil {
			t.Fatal("second session over MaxSessions=1 served a request")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsDenied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("denied session not counted: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProtocolErrorDropsSession: a malformed frame kills the session (and
// is counted) without disturbing other sessions.
func TestProtocolErrorDropsSession(t *testing.T) {
	addr, srv := startServer(t, cedarfs.Config{}, server.Config{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A framed body too short to hold a request header.
	frame := make([]byte, 4+2)
	binary.BigEndian.PutUint32(frame, 2)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server must close the bad session.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a session alive after an undecodable frame")
	}
	if n := srv.Stats().ProtocolErrors; n == 0 {
		t.Fatalf("protocol error not counted: %+v", srv.Stats())
	}
	// The well-formed session still works.
	if _, err := cl.Stats(t.Context()); err != nil {
		t.Fatalf("good session disturbed: %v", err)
	}
}

// TestServerStatsCounters: request/error/handle accounting.
func TestServerStatsCounters(t *testing.T) {
	addr, srv := startServer(t, cedarfs.Config{}, server.Config{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := t.Context()
	h, err := cl.Create(ctx, "stats/probe", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.OpenHandles != 1 || st.Sessions != 1 {
		t.Fatalf("after create: %+v", st)
	}
	if _, err := cl.Open(ctx, "stats/missing", 0); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.OpenHandles != 0 || st.Requests < 3 || st.Errors == 0 {
		t.Fatalf("final stats: %+v", st)
	}
}
