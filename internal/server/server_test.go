package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	cedarfs "repro"
	"repro/client"
	"repro/internal/disk"
	"repro/internal/fstest"
	"repro/internal/server"
	"repro/internal/sim"
)

// startServer mounts a fresh volume, serves it on a loopback TCP listener,
// and returns the address. Everything is torn down via t.Cleanup.
func startServer(t *testing.T, cfg cedarfs.Config, scfg server.Config) (string, *server.Server) {
	t.Helper()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, sim.NewVirtualClock())
	if err != nil {
		t.Fatal(err)
	}
	vol, err := cedarfs.Format(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := cedarfs.NewLocalFS(vol)
	srv := server.New(fs, scfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Close()
		fs.Close()
		if err := vol.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return l.Addr().String(), srv
}

// TestRemoteConformance runs the shared FS conformance suite against the
// remote client over a real loopback socket — the same suite the local
// adapter passes (TestLocalFSConformance in the root package), which is the
// tentpole contract: one interface, two transports, identical semantics.
func TestRemoteConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) cedarfs.FS {
		addr, _ := startServer(t, cedarfs.Config{}, server.Config{})
		cl, err := client.Dial(addr, client.Options{Conns: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cl.Close()
			if n := cl.ProtocolErrors(); n != 0 {
				t.Errorf("client saw %d protocol errors", n)
			}
		})
		return cl
	})
}

// TestRemoteConformanceAsync repeats the suite against a volume running the
// asynchronous metadata pipeline, where acked commit sequences lag the
// apply and WaitCommitted does real waiting.
func TestRemoteConformanceAsync(t *testing.T) {
	fstest.Run(t, func(t *testing.T) cedarfs.FS {
		addr, _ := startServer(t, cedarfs.Config{AsyncApply: true, AdaptiveCommit: true}, server.Config{})
		cl, err := client.Dial(addr, client.Options{Conns: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	})
}

// TestMaxSessions: connections over the cap are closed at accept.
func TestMaxSessions(t *testing.T) {
	addr, srv := startServer(t, cedarfs.Config{}, server.Config{MaxSessions: 1})
	c1, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Stats(t.Context()); err != nil {
		t.Fatal(err)
	}
	// The second session is denied: its connection dies immediately, which
	// the client observes as a failed call.
	c2, err := client.Dial(addr, client.Options{Conns: 1})
	if err == nil {
		defer c2.Close()
		if _, err := c2.Stats(t.Context()); err == nil {
			t.Fatal("second session over MaxSessions=1 served a request")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsDenied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("denied session not counted: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProtocolErrorDropsSession: a malformed frame kills the session (and
// is counted) without disturbing other sessions.
func TestProtocolErrorDropsSession(t *testing.T) {
	addr, srv := startServer(t, cedarfs.Config{}, server.Config{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A framed body too short to hold a request header.
	frame := make([]byte, 4+2)
	binary.BigEndian.PutUint32(frame, 2)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server must close the bad session.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a session alive after an undecodable frame")
	}
	if n := srv.Stats().ProtocolErrors; n == 0 {
		t.Fatalf("protocol error not counted: %+v", srv.Stats())
	}
	// The well-formed session still works.
	if _, err := cl.Stats(t.Context()); err != nil {
		t.Fatalf("good session disturbed: %v", err)
	}
}

// blockingFS is a stub FS whose WaitCommitted blocks until its context is
// cancelled — the degenerate case of a durability wait that never lands.
// Only the methods the test exercises do anything.
type blockingFS struct{}

func (blockingFS) Open(context.Context, string, uint32) (cedarfs.Handle, error) {
	return nil, cedarfs.ErrNotFound
}
func (blockingFS) Create(context.Context, string, []byte) (cedarfs.Handle, error) {
	return nil, cedarfs.ErrReadOnly
}
func (blockingFS) Stat(context.Context, string, uint32) (cedarfs.FileInfo, error) {
	return cedarfs.FileInfo{}, cedarfs.ErrNotFound
}
func (blockingFS) List(context.Context, string) ([]cedarfs.FileInfo, error) { return nil, nil }
func (blockingFS) Rename(context.Context, string, string) error             { return cedarfs.ErrReadOnly }
func (blockingFS) Delete(context.Context, string, uint32) error             { return cedarfs.ErrReadOnly }
func (blockingFS) SetKeep(context.Context, string, uint16) error            { return cedarfs.ErrReadOnly }
func (blockingFS) Force(context.Context) (uint64, error)                    { return 0, nil }
func (blockingFS) WaitCommitted(ctx context.Context, seq uint64) error {
	<-ctx.Done()
	return ctx.Err()
}
func (blockingFS) Stats(context.Context) (cedarfs.FSStats, error) {
	return cedarfs.FSStats{CommitSeq: 1 << 40}, nil
}
func (blockingFS) Close() error { return nil }

// TestServerCloseUnblocksParkedWait: a parked durability wait whose commit
// never lands must not wedge Server.Close — the session context is
// cancelled when the connection dies and the parked goroutine is reclaimed.
func TestServerCloseUnblocksParkedWait(t *testing.T) {
	srv := server.New(blockingFS{}, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	cl, err := client.Dial(l.Addr().String(), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Park a wait on the server; the client gives up, the server does not.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := cl.WaitCommitted(ctx, 1); err == nil {
		t.Fatal("wait against blockingFS returned")
	}

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close wedged on a parked WaitCommitted")
	}
}

// TestWaitCommittedFutureSeqRejected: a sequence the server never handed
// out can never commit; the server must answer ErrBadRequest instead of
// parking the wait forever.
func TestWaitCommittedFutureSeqRejected(t *testing.T) {
	addr, _ := startServer(t, cedarfs.Config{}, server.Config{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := t.Context()
	if err := cl.WaitCommitted(ctx, 1<<62); !errors.Is(err, cedarfs.ErrBadRequest) {
		t.Fatalf("future-seq wait returned %v, want ErrBadRequest", err)
	}
	// Legitimately issued sequences still wait fine.
	h, err := cl.Create(ctx, "wait/f.txt", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	seq, err := cl.Force(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitCommitted(ctx, seq); err != nil {
		t.Fatalf("wait on issued seq %d: %v", seq, err)
	}
}

// TestLargeIOChunkedUnderFrameLimit: writes and reads bigger than the frame
// limit are chunked client-side, and an oversized create fails with
// ErrBadRequest — in no case does a single call cost the whole session.
func TestLargeIOChunkedUnderFrameLimit(t *testing.T) {
	const maxFrame = 4096
	addr, _ := startServer(t, cedarfs.Config{}, server.Config{MaxFrame: maxFrame})
	cl, err := client.Dial(addr, client.Options{Conns: 1, MaxFrame: maxFrame})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := t.Context()

	h, err := cl.Create(ctx, "big/stream.bin", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	data := make([]byte, 5*maxFrame+123)
	for i := range data {
		data[i] = byte(i * 31)
	}
	n, seq, err := h.WriteAt(ctx, data, 0)
	if err != nil || n != len(data) {
		t.Fatalf("chunked write: %d, %v", n, err)
	}
	if err := cl.WaitCommitted(ctx, seq); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := h.ReadAt(ctx, got, 0); err != nil || n != len(data) {
		t.Fatalf("chunked read: %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked round-trip corrupted data")
	}
	if size := h.Info().ByteSize; size != uint64(len(data)) {
		t.Fatalf("Info().ByteSize = %d, want %d", size, len(data))
	}

	// An oversized create cannot be chunked: it fails alone, client-side.
	if _, err := cl.Create(ctx, "big/too-much", make([]byte, 2*maxFrame)); !errors.Is(err, cedarfs.ErrBadRequest) {
		t.Fatalf("oversized create returned %v, want ErrBadRequest", err)
	}
	// ... and the session survived all of it.
	if _, err := cl.Stats(ctx); err != nil {
		t.Fatalf("session lost: %v", err)
	}
	if n := cl.ProtocolErrors(); n != 0 {
		t.Fatalf("%d protocol errors", n)
	}
}

// TestServerStatsCounters: request/error/handle accounting.
func TestServerStatsCounters(t *testing.T) {
	addr, srv := startServer(t, cedarfs.Config{}, server.Config{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := t.Context()
	h, err := cl.Create(ctx, "stats/probe", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.OpenHandles != 1 || st.Sessions != 1 {
		t.Fatalf("after create: %+v", st)
	}
	if _, err := cl.Open(ctx, "stats/missing", 0); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.OpenHandles != 0 || st.Requests < 3 || st.Errors == 0 {
		t.Fatalf("final stats: %+v", st)
	}
}
