package wal

import (
	"testing"
	"time"
)

// TestAdaptiveDeadlineTracksLoad drives the controller through its three
// regimes: cold (ceiling), busy (short deadline), idle again (decay back
// toward the ceiling).
func TestAdaptiveDeadlineTracksLoad(t *testing.T) {
	cfg := Config{Interval: 500 * time.Millisecond, Adaptive: true, Floor: 2 * time.Millisecond, TargetImages: 8}
	l, _, clk := newTestLog(t, cfg)

	// Cold log: no staging samples yet, deadline sits at the ceiling.
	if d := l.Deadline(); d != cfg.Interval {
		t.Fatalf("cold deadline = %v, want ceiling %v", d, cfg.Interval)
	}

	// Busy: one image per simulated millisecond. The deadline should fall
	// to ~ targetImages * gap = 8ms, far below the ceiling.
	for i := 0; i < 64; i++ {
		clk.Advance(time.Millisecond)
		if _, err := l.Append(img(KindNameTable, uint64(i%5), byte(i))); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			if err := l.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	busy := l.Deadline()
	if busy >= cfg.Interval/4 {
		t.Fatalf("busy deadline = %v, want well below ceiling %v", busy, cfg.Interval)
	}
	if busy < cfg.Floor {
		t.Fatalf("busy deadline = %v below floor %v", busy, cfg.Floor)
	}

	// Idle: images arrive a full second apart; the EWMA pulls the deadline
	// back up until the ceiling clamps it.
	for i := 0; i < 32; i++ {
		clk.Advance(time.Second)
		if _, err := l.Append(img(KindNameTable, 1, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if d := l.Deadline(); d != cfg.Interval {
		t.Fatalf("idle deadline = %v, want ceiling %v", d, cfg.Interval)
	}
}

// TestAdaptiveMaybeForceFiresEarly checks that in adaptive mode MaybeForce
// fires once the (short) adaptive deadline elapses, well before the fixed
// interval would have, and that a full record's worth of pending images
// forces immediately regardless of elapsed time.
func TestAdaptiveMaybeForceFiresEarly(t *testing.T) {
	cfg := Config{Interval: 500 * time.Millisecond, Adaptive: true, TargetImages: 4}
	l, _, clk := newTestLog(t, cfg)

	// Train the rate estimate: one image per ms → deadline ≈ 4 ms.
	for i := 0; i < 32; i++ {
		clk.Advance(time.Millisecond)
		if _, err := l.Append(img(KindNameTable, uint64(i%3), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	forces := l.Stats().Forces

	// Stage one image and advance just past the adaptive deadline (but
	// far under the 500 ms ceiling): MaybeForce must fire.
	if _, err := l.Append(img(KindNameTable, 9, 0xAA)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(l.Deadline() + time.Millisecond)
	if err := l.MaybeForce(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != forces+1 {
		t.Fatalf("MaybeForce after adaptive deadline: forces = %d, want %d", got, forces+1)
	}

	// Capacity trigger: a full record's worth pending forces with no time
	// elapsed at all.
	forces = l.Stats().Forces
	for i := 0; i < MaxImagesPerRecord; i++ {
		if _, err := l.Append(img(KindNameTable, uint64(100+i), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.MaybeForce(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != forces+1 {
		t.Fatalf("MaybeForce at record capacity: forces = %d, want %d", got, forces+1)
	}
}

// TestFixedModeDeadlineUnchanged pins the non-adaptive behaviour: Deadline
// reports the configured interval (or 0 in synchronous mode) and MaybeForce
// still waits for the full fixed interval.
func TestFixedModeDeadlineUnchanged(t *testing.T) {
	l, _, clk := newTestLog(t, Config{Interval: 500 * time.Millisecond})
	if d := l.Deadline(); d != 500*time.Millisecond {
		t.Fatalf("fixed Deadline = %v, want 500ms", d)
	}
	if _, err := l.Append(img(KindNameTable, 1, 1)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(400 * time.Millisecond)
	if err := l.MaybeForce(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 0 {
		t.Fatalf("fixed-mode MaybeForce fired early: forces = %d", got)
	}
	clk.Advance(200 * time.Millisecond)
	if err := l.MaybeForce(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Forces; got != 1 {
		t.Fatalf("fixed-mode MaybeForce at interval: forces = %d, want 1", got)
	}

	lSync, _, _ := newTestLog(t, Config{Interval: 0, Adaptive: true})
	if d := lSync.Deadline(); d != 0 {
		t.Fatalf("synchronous Deadline = %v, want 0 (Synchronous wins over Adaptive)", d)
	}
}
