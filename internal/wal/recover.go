package wal

import (
	"hash/crc32"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Open attaches to an existing log region for recovery and subsequent use.
// It reads the anchor (either copy) to learn the boot count; it does not
// replay anything — call Recover for that, which every mount should do
// (replaying a cleanly shut-down log is a no-op).
func Open(d *disk.Disk, base, size int, clk sim.Clock, cfg Config) (*Log, error) {
	l := &Log{d: d, base: base, size: size, clk: clk, cfg: cfg}
	a, err := l.readAnchor()
	if err != nil {
		return nil, err
	}
	l.bootCount = a.bootCount
	l.pendingIdx = make(map[imageKey]int)
	l.lastForce = clk.Now()
	l.openSeq = 1
	return l, nil
}

// RecoveryStats summarizes a replay.
type RecoveryStats struct {
	Records  int
	Images   int
	Repaired int // page images or headers recovered from their copy
	// TailDiscarded counts images of an incomplete final batch that were
	// found in the log but not applied (the force never finished).
	TailDiscarded int
	// TornRecords counts records with a valid header but no valid end-page
	// pair: the record write itself was torn by the crash. Replay stops at
	// the first one.
	TornRecords int
	// GapBreaks counts replay terminating at an invalid header after at
	// least one record had replayed — the ordinary crash tail, or a record
	// write lost entirely to drive-cache reordering.
	GapBreaks   int
	Elapsed     time.Duration
	SectorsRead int
}

// Applier receives each replayed page image in log order; applying the
// images in order reproduces the newest logged state of every page.
type Applier func(kind uint8, target uint64, data []byte) error

// Recover replays the log through apply, then resets the log to empty with
// an incremented boot count, exactly as the paper's ~1–25 second restart
// does: "log records are read and the copies of pages in the log are
// written to disk". A force that splits into several records is applied
// all-or-nothing: images are buffered until the record carrying the
// end-of-batch flag is validated, and an incomplete tail batch at the crash
// point is discarded.
//
// Recover is the single-step form for callers whose applier writes every
// image home before returning. A mount that buffers the replayed images and
// writes them home afterwards must use the re-entrant split instead —
// Replay, then the home writes, then a barrier, then CompleteRecovery — or a
// crash between the reset and the home writes silently loses committed
// updates (the next mount would replay an empty log over stale home copies).
func (l *Log) Recover(apply Applier) (RecoveryStats, error) {
	rs, err := l.Replay(apply)
	if err != nil {
		return rs, err
	}
	start := l.clk.Now()
	if err := l.CompleteRecovery(); err != nil {
		return rs, err
	}
	rs.Elapsed += l.clk.Now() - start
	return rs, nil
}

// Replay replays the log through apply without resetting it: no sector is
// written, and the log remains exactly as the crash left it, so replay can
// run again after a second crash and reproduce the same images. Writable
// mounts call it, write every replayed image home, issue a disk barrier,
// and only then call CompleteRecovery; MountReadOnly calls it alone.
func (l *Log) Replay(apply Applier) (RecoveryStats, error) {
	// Replay owns the write path (forceMu) — nothing may force while the
	// log is being read. Recovery runs before the volume admits
	// operations, so there are no concurrent stagers either.
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	start := l.clk.Now()
	var rs RecoveryStats
	boot, err := l.replay(apply, &rs)
	if err != nil {
		return rs, err
	}
	l.bootCount = boot
	rs.Elapsed = l.clk.Now() - start
	return rs, nil
}

// CompleteRecovery restarts the log empty under a new boot count, so stale
// records can never be confused with new ones. The caller must first have
// made every replayed image durable in its home location (and issued a disk
// barrier): the reset is the point of no return after which the old records
// are unreachable. The reset itself is crash-atomic — the anchor copies are
// written under a fresh boot count, so a torn reset leaves either the old
// anchor (the next mount replays the whole log again, idempotently) or the
// new one (under which no stale record validates, because every surviving
// record carries the previous boot count).
func (l *Log) CompleteRecovery() error {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	l.bootCount++
	l.recordNum = 1
	l.writeOff = 0
	l.curThird = 0
	l.thirdFirst = [8]uint64{}
	if err := l.writeAnchor(anchor{bootCount: l.bootCount, offset: 0, recordNum: 1}); err != nil {
		return err
	}
	if err := l.writeData(l.base+anchorSectors, make([]byte, disk.SectorSize)); err != nil {
		return err
	}
	l.mu.Lock()
	l.lastForce = l.clk.Now()
	l.mu.Unlock()
	return nil
}

// replay is the shared replay loop; it returns the boot count read from the
// anchor. Caller holds forceMu.
func (l *Log) replay(apply Applier, rs *RecoveryStats) (uint32, error) {
	a, err := l.readAnchor()
	if err != nil {
		return 0, err
	}
	off := int(a.offset)
	rec := a.recordNum
	boot := a.bootCount
	area := l.thirdLen() * l.thirds()
	maxSectors := area + l.thirdLen() // safety bound
	skipped := false
	// Images of the in-progress (not yet end-flagged) batch.
	type pendImg struct {
		kind   uint8
		target uint64
		data   []byte
	}
	var batch []pendImg

	for rs.SectorsRead < maxSectors {
		h, hdrOK, viaCopy := l.readHeader(off, rec, boot)
		rs.SectorsRead += 2
		if !hdrOK {
			// The writer may have skipped the tail of a third
			// because the next record did not fit; try exactly one
			// jump to the next third start.
			if skipped || off%l.thirdLen() == 0 {
				if rs.Records > 0 {
					rs.GapBreaks++
				}
				break
			}
			skipped = true
			off = ((off/l.thirdLen() + 1) % l.thirds()) * l.thirdLen()
			continue
		}
		if viaCopy {
			rs.Repaired++
		}
		recLen := 5 + 2*h.n
		if off+recLen > area {
			break // cannot be a complete record
		}
		// Read the record body (everything after the header pair) in
		// one transfer; individual damaged sectors fall back to the
		// per-sector path with copy repair.
		body, berr := l.readData(l.base+anchorSectors+off+3, recLen-3)
		if berr != nil {
			body = nil
		} else {
			rs.SectorsRead += recLen - 3
		}
		endAt := func(delta int) []byte {
			if body == nil {
				return nil
			}
			return body[(delta-3)*disk.SectorSize : (delta-2)*disk.SectorSize]
		}
		// Validate the end page (and its copy) before trusting the
		// data pages: a record without a valid end pair was torn by
		// the crash and is discarded, terminating replay.
		endOK := false
		if e := endAt(3 + h.n); e != nil && l.validEnd(e, rec, boot) {
			endOK = true
		} else if e := endAt(4 + 2*h.n); e != nil && l.validEnd(e, rec, boot) {
			endOK = true
			rs.Repaired++
		} else if body == nil && l.readEnd(off, h.n, rec, boot, rs) {
			endOK = true
		}
		if !endOK {
			// A header validated only through its copy can be a
			// mirage: when a record ends within two sectors of a
			// third boundary, the "copy" position lands on the next
			// third's first record. A genuine record would have a
			// valid end pair, so on failure retry at the third
			// start before concluding the log is torn.
			if viaCopy && !skipped && off%l.thirdLen() != 0 {
				skipped = true
				rs.Repaired--
				off = ((off/l.thirdLen() + 1) % l.thirds()) * l.thirdLen()
				continue
			}
			rs.TornRecords++
			break
		}
		skipped = false
		// Apply each data page, repairing from the second copy on
		// damage or checksum mismatch.
		abort := false
		for i := 0; i < h.n; i++ {
			var data []byte
			var rep, ok bool
			if body != nil {
				first := endAt(3 + i)
				if crc32.ChecksumIEEE(first) == h.crcs[i] {
					data, ok = first, true
				} else if second := endAt(4 + h.n + i); crc32.ChecksumIEEE(second) == h.crcs[i] {
					data, rep, ok = second, true, true
				}
			}
			if !ok {
				data, rep, ok = l.readImage(off, h.n, i, h.crcs[i])
				rs.SectorsRead++
			}
			if !ok {
				abort = true
				break
			}
			if rep {
				rs.Repaired++
			}
			cp := make([]byte, len(data))
			copy(cp, data)
			batch = append(batch, pendImg{h.descs[i].Kind, h.descs[i].Target, cp})
		}
		if abort {
			// Both copies of an image are gone: outside the failure
			// model; stop replay at the damage.
			break
		}
		if h.endOfBatch {
			for _, im := range batch {
				if err := apply(im.kind, im.target, im.data); err != nil {
					return 0, err
				}
				rs.Images++
			}
			batch = batch[:0]
		}
		rs.Records++
		rec++
		off += recLen
		if off >= area {
			off = 0
		}
	}

	if len(batch) > 0 {
		// The crash tore a multi-record force: discard the partial
		// batch so it is applied all-or-nothing.
		rs.TailDiscarded = len(batch)
	}
	return boot, nil
}

// readHeader reads the header of the record expected at off, falling back
// to the header copy. It reports (header, valid, repairedFromCopy).
func (l *Log) readHeader(off int, rec uint64, boot uint32) (header, bool, bool) {
	addr := l.base + anchorSectors + off
	try := func(a int) (header, bool) {
		buf, err := l.readData(a, 1)
		if err != nil {
			return header{}, false
		}
		h, ok := decodeHeader(buf)
		if !ok || h.recordNum != rec || h.bootCount != boot {
			return header{}, false
		}
		return h, true
	}
	if h, ok := try(addr); ok {
		return h, true, false
	}
	if h, ok := try(addr + 2); ok {
		return h, true, true
	}
	return header{}, false, false
}

// readEnd validates the end page pair of the record at off with n images.
func (l *Log) readEnd(off, n int, rec uint64, boot uint32, rs *RecoveryStats) bool {
	addr := l.base + anchorSectors + off
	for i, delta := range []int{3 + n, 4 + 2*n} {
		buf, err := l.readData(addr+delta, 1)
		rs.SectorsRead++
		if err == nil && l.validEnd(buf, rec, boot) {
			if i == 1 {
				rs.Repaired++
			}
			return true
		}
	}
	return false
}

// readImage reads data page i of the record at off, preferring the first
// copy and repairing from the second. It reports (data, repaired, ok).
func (l *Log) readImage(off, n, i int, wantCRC uint32) ([]byte, bool, bool) {
	addr := l.base + anchorSectors + off
	first, err := l.readData(addr+3+i, 1)
	if err == nil && crc32.ChecksumIEEE(first) == wantCRC {
		return first, false, true
	}
	second, err := l.readData(addr+4+n+i, 1)
	if err == nil && crc32.ChecksumIEEE(second) == wantCRC {
		return second, true, true
	}
	return nil, false, false
}
