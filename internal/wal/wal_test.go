package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

const (
	logBase = 1000
	logSize = 4 + 3*200 // anchors + three 200-sector thirds
)

func newTestLog(t *testing.T, cfg Config) (*Log, *disk.Disk, *sim.VirtualClock) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Format(d, logBase, logSize, clk, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return l, d, clk
}

func img(kind uint8, target uint64, fill byte) PageImage {
	data := make([]byte, disk.SectorSize)
	for i := range data {
		data[i] = fill
	}
	return PageImage{Kind: kind, Target: target, Data: data}
}

// collectApplier records replayed images, last-writer-wins per target.
type collectApplier struct {
	last  map[imageKey][]byte
	order []imageKey
}

func newCollect() *collectApplier { return &collectApplier{last: map[imageKey][]byte{}} }

func (c *collectApplier) apply(kind uint8, target uint64, data []byte) error {
	k := imageKey{kind, target}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.last[k] = cp
	c.order = append(c.order, k)
	return nil
}

func reopen(t *testing.T, d *disk.Disk, clk sim.Clock, cfg Config) (*Log, *collectApplier, RecoveryStats) {
	t.Helper()
	l, err := Open(d, logBase, logSize, clk, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c := newCollect()
	rs, err := l.Recover(c.apply)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l, c, rs
}

func TestFormatTooSmall(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if _, err := Format(d, 0, MinSize(3)-1, clk, Config{}); err == nil {
		t.Fatal("undersized log accepted")
	}
}

func TestEmptyLogRecoversNothing(t *testing.T) {
	_, d, clk := newTestLog(t, Config{Interval: time.Second})
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 0 || len(c.last) != 0 {
		t.Fatalf("empty log replayed %d records", rs.Records)
	}
}

func TestForceAndRecoverSingleImage(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	if _, err := l.Append(img(KindLeader, 42, 0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 1 || st.SectorsWritten != 7 {
		t.Fatalf("records=%d sectors=%d, want 1 record of 7 sectors", st.Records, st.SectorsWritten)
	}
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 1 || rs.Images != 1 {
		t.Fatalf("recovery: %+v", rs)
	}
	got := c.last[imageKey{KindLeader, 42}]
	if got == nil || got[0] != 0xAA {
		t.Fatal("image not recovered")
	}
}

func TestRecordSizeArithmetic(t *testing.T) {
	// The paper: a 1-page record is 7 sectors; a 14-page record is 33; the
	// largest observed is 83 (= 39 pages).
	for _, tc := range []struct{ n, sectors int }{{1, 7}, {14, 33}, {39, 83}} {
		l, _, _ := newTestLog(t, Config{Interval: time.Second})
		var ims []PageImage
		for i := 0; i < tc.n; i++ {
			ims = append(ims, img(KindNameTable, uint64(i), byte(i)))
		}
		if _, err := l.Append(ims...); err != nil {
			t.Fatal(err)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
		st := l.Stats()
		if st.Records != 1 || st.SectorsWritten != tc.sectors {
			t.Fatalf("n=%d: records=%d sectors=%d, want 1 record of %d",
				tc.n, st.Records, st.SectorsWritten, tc.sectors)
		}
	}
}

func TestOversizedBatchSplitsIntoRecords(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	var ims []PageImage
	for i := 0; i < MaxImagesPerRecord+5; i++ {
		ims = append(ims, img(KindNameTable, uint64(i), byte(i)))
	}
	if _, err := l.Append(ims...); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 2 {
		t.Fatalf("records = %d, want 2", st.Records)
	}
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 2 || len(c.last) != MaxImagesPerRecord+5 {
		t.Fatalf("recovery: %+v, images %d", rs, len(c.last))
	}
}

func TestGroupCommitElidesHotPages(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	// Update the same page 50 times within one interval: one image.
	for i := 0; i < 50; i++ {
		if _, err := l.Append(img(KindNameTable, 7, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.PendingImages(); n != 1 {
		t.Fatalf("pending images = %d, want 1", n)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.ImagesStaged != 50 || st.ImagesLogged != 1 || st.ImagesElided != 49 {
		t.Fatalf("staged=%d logged=%d elided=%d", st.ImagesStaged, st.ImagesLogged, st.ImagesElided)
	}
}

func TestMaybeForceHonorsInterval(t *testing.T) {
	l, _, clk := newTestLog(t, Config{Interval: 500 * time.Millisecond})
	if _, err := l.Append(img(KindLeader, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.MaybeForce(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Forces != 0 {
		t.Fatal("forced before interval elapsed")
	}
	clk.Advance(600 * time.Millisecond)
	if err := l.MaybeForce(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Forces != 1 {
		t.Fatal("did not force after interval elapsed")
	}
}

func TestZeroIntervalForcesEveryAppend(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: 0})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(img(KindLeader, uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Forces != 3 {
		t.Fatalf("forces = %d, want 3", st.Forces)
	}
}

func TestEmptyForceWritesNothing(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	committed := 0
	l.OnCommit = func(uint64) { committed++ }
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 0 {
		t.Fatal("empty force wrote a record")
	}
	if committed != 1 {
		t.Fatal("OnCommit not fired on empty force")
	}
}

func TestOnCommitFires(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	fired := 0
	l.OnCommit = func(uint64) { fired++ }
	l.Append(img(KindLeader, 1, 1))
	l.Force()
	if fired != 1 {
		t.Fatalf("OnCommit fired %d times", fired)
	}
}

func TestThirdCrossingCallsFlushHook(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	var flushedThirds []int
	l.FlushHook = func(third int) (int, error) {
		flushedThirds = append(flushedThirds, third)
		return 1, nil
	}
	// Each 10-image record is 25 sectors; a 200-sector third holds 8.
	for i := 0; i < 20; i++ {
		var ims []PageImage
		for j := 0; j < 10; j++ {
			ims = append(ims, img(KindNameTable, uint64(i*100+j), byte(i)))
		}
		l.Append(ims...)
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	if len(flushedThirds) == 0 {
		t.Fatal("flush hook never called despite filling thirds")
	}
	if st := l.Stats(); st.ThirdCrossings != len(flushedThirds) || st.HomeFlushes != len(flushedThirds) {
		t.Fatalf("crossings=%d flushes=%d hooks=%d", st.ThirdCrossings, st.HomeFlushes, len(flushedThirds))
	}
	// Crossings rotate 1, 2, 0, 1, 2, ...
	for i := 1; i < len(flushedThirds); i++ {
		if flushedThirds[i] != (flushedThirds[i-1]+1)%3 {
			t.Fatalf("third sequence %v not cyclic", flushedThirds)
		}
	}
}

func TestRecoveryAfterWrapSeesRecentRecords(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.FlushHook = func(int) (int, error) { return 0, nil }
	// Write far more than the log holds; every record updates target i.
	const total = 60
	for i := 0; i < 60; i++ {
		var ims []PageImage
		for j := 0; j < 10; j++ {
			ims = append(ims, img(KindNameTable, uint64(i*10+j), byte(i)))
		}
		l.Append(ims...)
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records == 0 {
		t.Fatal("no records recovered after wrap")
	}
	if rs.Records >= total {
		t.Fatalf("recovered %d records, but the log cannot hold all %d", rs.Records, total)
	}
	// The newest record's images must be present.
	k := imageKey{KindNameTable, uint64(59*10 + 9)}
	if got := c.last[k]; got == nil || got[0] != 59 {
		t.Fatal("newest record's images missing after wrapped recovery")
	}
}

func TestTornRecordDiscarded(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 1, 0x11))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Second force is torn: only 3 of 7 sectors make it.
	d.SetWriteFault(disk.FailAfterWrites(0, 3))
	l.Append(img(KindLeader, 2, 0x22))
	if err := l.Force(); !errors.Is(err, disk.ErrHalted) {
		t.Fatalf("torn force: %v, want ErrHalted", err)
	}
	d.Revive()
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 1 {
		t.Fatalf("recovered %d records, want 1 (torn one discarded)", rs.Records)
	}
	if c.last[imageKey{KindLeader, 1}] == nil {
		t.Fatal("intact record lost")
	}
	if c.last[imageKey{KindLeader, 2}] != nil {
		t.Fatal("torn record replayed")
	}
	if rs.TornRecords != 1 {
		t.Fatalf("TornRecords = %d, want 1 (header landed, end missing)", rs.TornRecords)
	}
	if rs.GapBreaks != 0 {
		t.Fatalf("GapBreaks = %d on a cleanly torn tail", rs.GapBreaks)
	}
}

func TestDamagedImageRepairedFromCopy(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 9, 0x77))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Damage the first data copy (record starts at offset 0: header,
	// blank, header copy, data at +3).
	d.CorruptSectors(logBase+4+3, 1)
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 1 || rs.Repaired == 0 {
		t.Fatalf("recovery: %+v, want repair from copy", rs)
	}
	got := c.last[imageKey{KindLeader, 9}]
	if got == nil || got[0] != 0x77 {
		t.Fatal("image not repaired from copy")
	}
}

func TestDamagedHeaderRepairedFromCopy(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 9, 0x77))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	d.CorruptSectors(logBase+4+0, 1) // header sector
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 1 {
		t.Fatalf("recovery after header damage: %+v", rs)
	}
	if c.last[imageKey{KindLeader, 9}] == nil {
		t.Fatal("record lost to single header damage")
	}
}

func TestAnchorCopyUsedWhenPrimaryDamaged(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 3, 0x33))
	l.Force()
	d.CorruptSectors(logBase+0, 1)
	_, c, _ := reopen(t, d, clk, Config{})
	if c.last[imageKey{KindLeader, 3}] == nil {
		t.Fatal("recovery failed with damaged primary anchor")
	}
}

func TestBothAnchorsLost(t *testing.T) {
	_, d, clk := newTestLog(t, Config{Interval: time.Second})
	d.CorruptSectors(logBase+0, 1)
	d.CorruptSectors(logBase+2, 1)
	if _, err := Open(d, logBase, logSize, clk, Config{}); !errors.Is(err, ErrAnchorLost) {
		t.Fatalf("Open with both anchors damaged: %v, want ErrAnchorLost", err)
	}
}

func TestLogResetAfterRecovery(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 1, 0x11))
	l.Force()
	l2, _, _ := reopen(t, d, clk, Config{Interval: time.Second})
	// After recovery the log is empty; new appends are recoverable and
	// old records are not replayed again.
	l2.Append(img(KindLeader, 2, 0x22))
	if err := l2.Force(); err != nil {
		t.Fatal(err)
	}
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 1 {
		t.Fatalf("recovered %d records, want only the post-reset one", rs.Records)
	}
	if c.last[imageKey{KindLeader, 1}] != nil {
		t.Fatal("pre-reset record replayed after reset")
	}
	if c.last[imageKey{KindLeader, 2}] == nil {
		t.Fatal("post-reset record missing")
	}
}

func TestUnforcedAppendLostAtCrash(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Hour})
	l.Append(img(KindLeader, 5, 0x55))
	// No force: crash now.
	d.Halt()
	d.Revive()
	_, c, _ := reopen(t, d, clk, Config{})
	if c.last[imageKey{KindLeader, 5}] != nil {
		t.Fatal("unforced append survived crash")
	}
}

func TestReplayOrderIsLogOrder(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	// Two forces updating the same target: recovery must apply in order
	// so the later value wins.
	l.Append(img(KindNameTable, 1, 0x01))
	l.Force()
	l.Append(img(KindNameTable, 1, 0x02))
	l.Force()
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 2 {
		t.Fatalf("records = %d", rs.Records)
	}
	if got := c.last[imageKey{KindNameTable, 1}]; got[0] != 0x02 {
		t.Fatalf("final value %x, want 02", got[0])
	}
}

func TestAppendRejectsWrongSize(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	if _, err := l.Append(PageImage{Kind: KindLeader, Target: 1, Data: []byte("short")}); err == nil {
		t.Fatal("short image accepted")
	}
}

// Property: running the full cache protocol — dirty pages tagged with the
// third they were last logged into, flushed home when that third is about to
// be overwritten — the state reconstructed after a crash (home store overlaid
// with replayed images) equals the last *committed* value of every target,
// for any sequence of updates and forces, including ones that wrap the log
// several times.
func TestQuickRecoveryMatchesLastCommitted(t *testing.T) {
	f := func(ops []struct {
		Target uint8
		Fill   byte
		Cut    bool // force after this op
	}) bool {
		clk := sim.NewVirtualClock()
		d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		if err != nil {
			return false
		}
		l, err := Format(d, logBase, logSize, clk, Config{Interval: time.Hour})
		if err != nil {
			return false
		}
		// Miniature page cache implementing the thirds protocol.
		cache := map[imageKey][]byte{} // current page contents
		third := map[imageKey]int{}    // division each page was last logged in
		home := map[imageKey][]byte{}  // simulated home locations on disk
		l.OnLogged = func(kind uint8, target uint64, th int, _ []byte) {
			third[imageKey{kind, target}] = th
		}
		l.FlushHook = func(th int) (int, error) {
			n := 0
			for k, t3 := range third {
				if t3 == th {
					cp := make([]byte, len(cache[k]))
					copy(cp, cache[k])
					home[k] = cp
					delete(third, k)
					n++
				}
			}
			return n, nil
		}
		committed := map[imageKey][]byte{}
		staged := map[imageKey][]byte{}
		for _, o := range ops {
			im := img(KindNameTable, uint64(o.Target%16), o.Fill)
			k := imageKey{KindNameTable, uint64(o.Target % 16)}
			cache[k] = im.Data
			staged[k] = im.Data
			if _, err := l.Append(im); err != nil {
				return false
			}
			if o.Cut {
				if err := l.Force(); err != nil {
					return false
				}
				for sk, sv := range staged {
					committed[sk] = sv
				}
				staged = map[imageKey][]byte{}
			}
		}
		// Crash: reconstruct from home + log replay.
		lr, err := Open(d, logBase, logSize, clk, Config{})
		if err != nil {
			return false
		}
		recon := map[imageKey][]byte{}
		for k, v := range home {
			recon[k] = v
		}
		if _, err := lr.Recover(func(kind uint8, target uint64, data []byte) error {
			cp := make([]byte, len(data))
			copy(cp, data)
			recon[imageKey{kind, target}] = cp
			return nil
		}); err != nil {
			return false
		}
		for k, v := range committed {
			if got := recon[k]; got == nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinSize(t *testing.T) {
	if MinSize(3) != 4+3*83 {
		t.Fatalf("MinSize(3) = %d", MinSize(3))
	}
	if MinSize(0) != MinSize(3) {
		t.Fatal("MinSize(0) should default to thirds")
	}
}

func TestStatsString(t *testing.T) {
	// Smoke test the stats fields referenced by benchmarks.
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 1, 1))
	l.Force()
	st := l.Stats()
	if st.MaxRecordSectors != 7 {
		t.Fatalf("MaxRecordSectors = %d", st.MaxRecordSectors)
	}
	l.ResetStats()
	if l.Stats().Forces != 0 {
		t.Fatal("ResetStats did not clear")
	}
	_ = fmt.Sprintf("%+v", st)
}
