package wal

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/disk"
)

// TestForceRetryAfterTransientWriteFault pins the force retry contract: a
// Force that fails on a transient write error must leave the staged records
// intact, so a subsequent Force succeeds and acks the same commit sequence.
func TestForceRetryAfterTransientWriteFault(t *testing.T) {
	// Retries disabled so the transient fault surfaces out of Force.
	l, d, _ := newTestLog(t, Config{Interval: time.Second, WriteRetries: -1})
	seq, err := l.Append(img(KindNameTable, 1, 0xAA), img(KindNameTable, 2, 0xBB))
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(disk.FaultConfig{Seed: 1, TransientWrite: 1})
	if err := l.Force(); err == nil {
		t.Fatal("force succeeded under a 100% transient write fault")
	}
	if got := l.Committed(); got >= seq {
		t.Fatalf("failed force advanced committed to %d (batch %d)", got, seq)
	}
	if got := l.PendingImages(); got != 2 {
		t.Fatalf("failed force kept %d staged images, want 2", got)
	}
	d.InjectFaults(disk.FaultConfig{})
	if err := l.WaitCommitted(seq); err != nil {
		t.Fatalf("retry force: %v", err)
	}
	if got := l.Committed(); got < seq {
		t.Fatalf("committed %d after retry, want >= %d", got, seq)
	}
	// The retried batch must replay on recovery.
	_, c, _ := reopen(t, d, d.Clock(), Config{})
	for target, fill := range map[uint64]byte{1: 0xAA, 2: 0xBB} {
		got := c.last[imageKey{KindNameTable, target}]
		if got == nil || !bytes.Equal(got, bytes.Repeat([]byte{fill}, disk.SectorSize)) {
			t.Fatalf("image %d not recovered after retried force", target)
		}
	}
}

// TestForceRetryAfterMidBatchFailure fails the second record of a
// multi-record batch: the already-written unflagged record must compose with
// the retry so that every image of the batch recovers exactly once.
func TestForceRetryAfterMidBatchFailure(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: time.Second})
	const n = MaxImagesPerRecord + 21
	var seq uint64
	for i := 0; i < n; i++ {
		var err error
		if seq, err = l.Append(img(KindNameTable, uint64(i+1), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let the first record's write through, then break the next write
	// operation before any of its sectors persist. The fault is ErrHalted
	// without an actual halt, so it is not retryable and surfaces directly.
	d.SetWriteFault(disk.FailAfterWrites(1, 0))
	if err := l.Force(); err == nil {
		t.Fatal("force succeeded with the second record broken")
	}
	if got := l.PendingImages(); got != n-MaxImagesPerRecord {
		t.Fatalf("restored %d images, want %d", got, n-MaxImagesPerRecord)
	}
	d.SetWriteFault(nil)
	d.Revive()
	if err := l.WaitCommitted(seq); err != nil {
		t.Fatalf("retry force: %v", err)
	}
	_, c, _ := reopen(t, d, d.Clock(), Config{})
	for i := 0; i < n; i++ {
		got := c.last[imageKey{KindNameTable, uint64(i + 1)}]
		if got == nil || got[0] != byte(i) {
			t.Fatalf("image %d lost or stale after mid-batch retry", i+1)
		}
	}
}

// TestForceAbsorbsWriteFaults runs a multi-force workload under moderate
// transient and bad-on-write probabilities: the bounded retry + remap policy
// must hide every fault from the caller, and the history must recover.
func TestForceAbsorbsWriteFaults(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: time.Second, WriteRetries: 16})
	var retriedTotal, remappedTotal int
	l.OnWriteFault = func(retried, remapped int, err error) {
		retriedTotal += retried
		remappedTotal += remapped
		if err != nil {
			t.Errorf("log write escalated: %v", err)
		}
	}
	d.InjectFaults(disk.FaultConfig{Seed: faultSeedWAL, TransientWrite: 0.05, BadOnWrite: 0.01})
	for pass := 0; pass < 30; pass++ {
		if _, err := l.Append(img(KindNameTable, uint64(pass%7+1), byte(pass))); err != nil {
			t.Fatal(err)
		}
		if err := l.Force(); err != nil {
			t.Fatalf("force %d under fault injection: %v", pass, err)
		}
	}
	if retriedTotal == 0 && remappedTotal == 0 {
		t.Fatal("fault path never exercised at these probabilities")
	}
	d.ClearFaults()
	_, c, _ := reopen(t, d, d.Clock(), Config{})
	if len(c.last) == 0 {
		t.Fatal("nothing recovered after faulted workload")
	}
}

// faultSeedWAL keeps the probabilistic WAL fault tests deterministic.
const faultSeedWAL = 42
