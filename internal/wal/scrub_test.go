package wal

import (
	"testing"
)

func TestScrubCopiesRepairsDecayedTwins(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: 1}) // manual forcing
	// Three records of two images each.
	for r := 0; r < 3; r++ {
		if _, err := l.Append(img(KindNameTable, uint64(2*r), byte(r)), img(KindNameTable, uint64(2*r+1), byte(r)+100)); err != nil {
			t.Fatal(err)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	// Decay one copy of each dual-copy structure of the first record
	// (7 sectors at logBase+4: hdr, blank, hdr copy, d0, d1, end, d0', d1',
	// end' — n=2 makes it 9 sectors) plus the anchor copy.
	first := logBase + 4
	d.CorruptSectors(first, 1)     // primary header
	d.CorruptSectors(first+3, 1)   // first copy of image 0
	d.CorruptSectors(first+8, 1)   // end-page copy
	d.CorruptSectors(logBase+2, 1) // anchor copy
	st, err := l.ScrubCopies(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 {
		t.Fatalf("audited %d records, want 3", st.Records)
	}
	if st.Repaired != 4 {
		t.Fatalf("repaired %d, want 4 (%v)", st.Repaired, st.Problems)
	}
	if len(st.Problems) != 0 {
		t.Fatalf("problems: %v", st.Problems)
	}
	// Everything is whole again: a second scrub repairs nothing, and
	// recovery replays all three records without copy fallbacks.
	st2, err := l.ScrubCopies(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Repaired != 0 {
		t.Fatalf("second scrub repaired %d", st2.Repaired)
	}
	_, c, rs := reopen(t, d, d.Clock(), Config{Interval: 1})
	if rs.Records != 3 || rs.Repaired != 0 {
		t.Fatalf("recovery after scrub: %+v", rs)
	}
	if len(c.last) != 6 {
		t.Fatalf("replayed %d images, want 6", len(c.last))
	}
}

func TestScrubCopiesReportsDoubleLoss(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: 1})
	if _, err := l.Append(img(KindNameTable, 1, 0xEE)); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// n=1 record at logBase+4: hdr, blank, hdr', d0, end, d0', end'.
	first := logBase + 4
	d.CorruptSectors(first+3, 1) // image
	d.CorruptSectors(first+5, 1) // image copy
	st, err := l.ScrubCopies(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Problems) == 0 {
		t.Fatal("double image loss not reported")
	}
}

func TestScrubCopiesUsesWriteOverride(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: 1})
	if _, err := l.Append(img(KindNameTable, 1, 0x11)); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	d.CorruptSectors(logBase+4+2, 1) // header copy
	var wrote []int
	st, err := l.ScrubCopies(func(addr int, data []byte) error {
		wrote = append(wrote, addr)
		return d.WriteSectors(addr, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 1 || len(wrote) != 1 || wrote[0] != logBase+4+2 {
		t.Fatalf("repaired=%d wrote=%v", st.Repaired, wrote)
	}
}
