package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppendersAcrossThirds hammers Append/WaitCommitted from many
// goroutines with a log small enough that the write path crosses thirds
// (and wraps) many times mid-run. It models a home store exactly the way
// internal/core does — OnLogged tracks the newest logged image and third
// per target, FlushHook "writes home" the targets of the overwritten third
// — and then checks the invariant the flush hook depends on: every target's
// newest logged bytes survive, either still replayable from the log or
// flushed home. All hook state is touched without extra locking, which is
// itself an assertion (under -race) that the WAL serializes its callbacks
// behind the force path.
func TestConcurrentAppendersAcrossThirds(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Millisecond})

	type loggedImage struct {
		data  []byte
		third int
	}
	logged := make(map[uint64]*loggedImage) // newest logged image per target
	home := make(map[uint64][]byte)         // images flushed home at crossings
	crossings := 0
	l.OnLogged = func(kind uint8, target uint64, third int, data []byte) {
		cp := make([]byte, len(data))
		copy(cp, data)
		logged[target] = &loggedImage{data: cp, third: third}
	}
	l.FlushHook = func(third int) (int, error) {
		crossings++
		n := 0
		for tgt, li := range logged {
			if li.third != third {
				continue
			}
			home[tgt] = li.data
			delete(logged, tgt)
			n++
		}
		return n, nil
	}

	const workers = 8
	const perWorker = 50
	const targetsPerWorker = 6
	var (
		mu   sync.Mutex
		want = make(map[uint64][]byte) // newest staged bytes per target
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				target := uint64(w*targetsPerWorker + i%targetsPerWorker)
				fill := byte(w*31 + i)
				// Staging and recording must agree on which bytes are
				// newest for the target; serialize the pair so a
				// concurrent writer to a (shared-nothing here, but keep
				// the pattern honest) target cannot interleave.
				mu.Lock()
				im := img(KindNameTable, target, fill)
				cp := make([]byte, len(im.Data))
				copy(cp, im.Data)
				want[target] = cp
				seq, err := l.Append(im)
				mu.Unlock()
				if err != nil {
					errs <- fmt.Errorf("w%d append: %w", w, err)
					return
				}
				if i%7 == 6 {
					if err := l.WaitCommitted(seq); err != nil {
						errs <- fmt.Errorf("w%d wait: %w", w, err)
						return
					}
					if got := l.Committed(); got < seq {
						errs <- fmt.Errorf("w%d: Committed()=%d after WaitCommitted(%d)", w, got, seq)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatalf("final force: %v", err)
	}
	if crossings == 0 {
		t.Fatal("log never crossed a third; shrink the log or write more")
	}

	// Every target's newest bytes must be recoverable: from the log replay
	// if its last record survives, else from the home store the flush hook
	// maintained.
	_, c, _ := reopen(t, d, clk, Config{Interval: time.Millisecond})
	for tgt, data := range want {
		got, ok := c.last[imageKey{KindNameTable, tgt}]
		where := "log"
		if !ok {
			got, ok = home[tgt]
			where = "home"
		}
		if !ok {
			t.Fatalf("target %d: newest image neither in log nor home", tgt)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("target %d: stale image recovered from %s", tgt, where)
		}
	}
}
