package wal

import (
	"fmt"
	"hash/crc32"

	"repro/internal/disk"
)

// LogScrubStats reports a dual-copy audit of the live log region.
type LogScrubStats struct {
	Records        int // valid records audited
	SectorsChecked int
	Repaired       int // headers, images, or end pages rewritten from their twin
	Problems       []string
}

// ScrubCopies audits every dual-copy structure in the live log — the anchor
// pair and, for each valid record, its header pair, page-image pairs, and
// end-page pair — rewriting a decayed or corrupt copy from its surviving
// twin. This is the active counterpart of recovery's passive copy fallback:
// a latent error that eats one copy between crashes is repaired here, before
// the second copy can decay too.
//
// write overrides the sector-write primitive (the file system passes its
// retry/remap repair path); nil means a plain device write. The force lock
// is held end-to-end, so the audited record set is frozen while staging
// continues in other goroutines.
func (l *Log) ScrubCopies(write func(addr int, data []byte) error) (LogScrubStats, error) {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	var st LogScrubStats
	if write == nil {
		write = l.writeData
	}
	if err := l.scrubAnchor(&st, write); err != nil {
		return st, err
	}
	a, err := l.readAnchor()
	if err != nil {
		return st, err
	}
	off := int(a.offset)
	rec := a.recordNum
	boot := l.bootCount
	area := l.thirdLen() * l.thirds()

	// readValid reads one sector and validates it with check; it returns
	// the raw bytes so a twin can be repaired from them.
	readValid := func(addr int, check func([]byte) bool) ([]byte, bool) {
		buf, err := l.d.ReadSectors(addr, 1)
		if err != nil || !check(buf) {
			return nil, false
		}
		return buf, true
	}
	// auditPair cross-checks a two-copy sector pair, repairing whichever
	// side is bad from the good one. Returns false if both copies are gone.
	auditPair := func(a1, a2 int, check func([]byte) bool, what string) bool {
		b1, ok1 := readValid(a1, check)
		b2, ok2 := readValid(a2, check)
		st.SectorsChecked += 2
		switch {
		case ok1 && !ok2:
			if err := write(a2, b1); err == nil {
				st.Repaired++
			}
		case !ok1 && ok2:
			if err := write(a1, b2); err == nil {
				st.Repaired++
			}
		case !ok1 && !ok2:
			st.Problems = append(st.Problems, fmt.Sprintf("%s: both copies lost", what))
			return false
		}
		return true
	}

	skipped := false
	for rec < l.recordNum {
		addr := l.base + anchorSectors + off
		checkHdr := func(buf []byte) bool {
			h, ok := decodeHeader(buf)
			return ok && h.recordNum == rec && h.bootCount == boot
		}
		hBuf, hOK := readValid(addr, checkHdr)
		cBuf, cOK := readValid(addr+2, checkHdr)
		st.SectorsChecked += 2
		if !hOK && !cOK {
			// The writer may have skipped the tail of a third because the
			// next record did not fit; try one jump, as recovery does.
			if skipped || off%l.thirdLen() == 0 {
				break
			}
			skipped = true
			off = ((off/l.thirdLen() + 1) % l.thirds()) * l.thirdLen()
			continue
		}
		good := hBuf
		if good == nil {
			good = cBuf
		}
		h, _ := decodeHeader(good)
		recLen := 5 + 2*h.n
		if off+recLen > area {
			break
		}
		// Validate the end pair before repairing a copy-only header: a
		// header found only at the copy position can be a mirage from the
		// next third's first record (see Recover).
		checkEnd := func(buf []byte) bool { return l.validEnd(buf, rec, boot) }
		e1, endP := readValid(addr+3+h.n, checkEnd)
		e2, endC := readValid(addr+4+2*h.n, checkEnd)
		st.SectorsChecked += 2
		if !endP && !endC {
			if !hOK && !skipped && off%l.thirdLen() != 0 {
				skipped = true
				off = ((off/l.thirdLen() + 1) % l.thirds()) * l.thirdLen()
				continue
			}
			st.Problems = append(st.Problems, fmt.Sprintf("record %d: both end pages lost", rec))
			break
		}
		skipped = false
		switch {
		case hOK && !cOK:
			if err := write(addr+2, hBuf); err == nil {
				st.Repaired++
			}
		case !hOK && cOK:
			if err := write(addr, cBuf); err == nil {
				st.Repaired++
			}
		}
		switch {
		case endP && !endC:
			if err := write(addr+4+2*h.n, e1); err == nil {
				st.Repaired++
			}
		case !endP && endC:
			if err := write(addr+3+h.n, e2); err == nil {
				st.Repaired++
			}
		}
		for i := 0; i < h.n; i++ {
			crc := h.crcs[i]
			checkImg := func(buf []byte) bool { return crc32.ChecksumIEEE(buf) == crc }
			auditPair(addr+3+i, addr+4+h.n+i, checkImg,
				fmt.Sprintf("record %d image %d", rec, i))
		}
		st.Records++
		rec++
		off += recLen
		if off >= area {
			off = 0
		}
	}
	return st, nil
}

// scrubAnchor cross-checks the replicated anchor pair.
func (l *Log) scrubAnchor(st *LogScrubStats, write func(addr int, data []byte) error) error {
	type side struct {
		addr int
		buf  []byte
		ok   bool
	}
	sides := [2]side{{addr: l.base + 0}, {addr: l.base + 2}}
	for i := range sides {
		buf, err := l.d.ReadSectors(sides[i].addr, 1)
		st.SectorsChecked++
		if err != nil {
			continue
		}
		if _, ok := decodeAnchor(buf); ok {
			sides[i].buf = buf
			sides[i].ok = true
		}
	}
	switch {
	case sides[0].ok && !sides[1].ok:
		if err := write(sides[1].addr, sides[0].buf); err != nil {
			return err
		}
		st.Repaired++
	case !sides[0].ok && sides[1].ok:
		if err := write(sides[0].addr, sides[1].buf); err != nil {
			return err
		}
		st.Repaired++
	case !sides[0].ok && !sides[1].ok:
		return ErrAnchorLost
	case !bytesEqualSector(sides[0].buf, sides[1].buf):
		// Diverged (a crash between the two anchor writes): the primary
		// is written first, so it is the newer image.
		if err := write(sides[1].addr, sides[0].buf); err != nil {
			return err
		}
		st.Repaired++
	}
	return nil
}

func bytesEqualSector(a, b []byte) bool {
	if len(a) != disk.SectorSize || len(b) != disk.SectorSize {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
