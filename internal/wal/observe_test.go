package wal

import (
	"testing"
	"time"
)

func TestOnAppendAndOnForce(t *testing.T) {
	l, _, clk := newTestLog(t, Config{Interval: time.Hour})

	var appends []int
	var forces []ForceEvent
	l.OnAppend = func(n int, seq uint64) {
		appends = append(appends, n)
		if seq == 0 {
			t.Fatal("append reported seq 0")
		}
	}
	l.OnForce = func(e ForceEvent) { forces = append(forces, e) }

	if _, err := l.Append(img(1, 10, 0xaa), img(1, 11, 0xbb)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(img(1, 10, 0xcc)); err != nil { // elides onto target 10
		t.Fatalf("Append: %v", err)
	}
	clk.Advance(50 * time.Millisecond)
	if err := l.Force(); err != nil {
		t.Fatalf("Force: %v", err)
	}

	if len(appends) != 2 || appends[0] != 2 || appends[1] != 1 {
		t.Fatalf("appends = %v, want [2 1]", appends)
	}
	if len(forces) != 1 {
		t.Fatalf("forces = %d events, want 1", len(forces))
	}
	e := forces[0]
	if e.Images != 2 || e.Records != 1 {
		t.Fatalf("force event %+v: want 2 images (one elided) in 1 record", e)
	}
	if e.Sectors != 5+2*e.Images {
		t.Fatalf("force event sectors = %d, want %d", e.Sectors, 5+2*e.Images)
	}
	if e.Interval <= 0 || e.Duration <= 0 {
		t.Fatalf("force event %+v: interval and duration must be positive", e)
	}
	st := l.Stats()
	if e.Images != st.ImagesLogged || e.Records != st.Records || e.Sectors != st.SectorsWritten {
		t.Fatalf("force event %+v disagrees with stats %+v", e, st)
	}

	// An empty force advances the sequence but fires no event.
	if err := l.Force(); err != nil {
		t.Fatalf("empty Force: %v", err)
	}
	if len(forces) != 1 {
		t.Fatalf("empty force fired an event: %v", forces)
	}
}
