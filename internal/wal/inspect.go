package wal

// Read-only log inspection for diagnostics (cmd/logdump). Unlike Recover it
// applies nothing and resets nothing, so it can be run against a live image
// without consuming the log.

import (
	"repro/internal/disk"
	"repro/internal/sim"
)

// RecordInfo describes one valid record found in the log.
type RecordInfo struct {
	Offset     int // sector offset within the record area
	RecordNum  uint64
	BootCount  uint32
	Images     int
	Sectors    int // 5 + 2*Images
	EndOfBatch bool
	Targets    []ImageRef
}

// ImageRef names one logged page image.
type ImageRef struct {
	Kind   uint8
	Target uint64
}

// LogInfo is the inspection result.
type LogInfo struct {
	BootCount    uint32
	AnchorOffset int
	AnchorRecord uint64
	Thirds       int
	ThirdLen     int
	Records      []RecordInfo
	// PartialTail counts records of an unterminated final batch.
	PartialTail int
}

// Inspect walks the log region read-only and reports every valid record
// reachable from the anchor.
func Inspect(d *disk.Disk, base, size int, cfg Config) (LogInfo, error) {
	clk := sim.NewVirtualClock()
	l := &Log{d: d, base: base, size: size, clk: clk, cfg: cfg}
	a, err := l.readAnchor()
	if err != nil {
		return LogInfo{}, err
	}
	info := LogInfo{
		BootCount:    a.bootCount,
		AnchorOffset: int(a.offset),
		AnchorRecord: a.recordNum,
		Thirds:       l.thirds(),
		ThirdLen:     l.thirdLen(),
	}
	off := int(a.offset)
	rec := a.recordNum
	area := l.thirdLen() * l.thirds()
	read := 0
	skipped := false
	batchLen := 0
	for read < area+l.thirdLen() {
		h, ok, viaCopy := l.readHeader(off, rec, a.bootCount)
		read += 2
		if !ok {
			if skipped || off%l.thirdLen() == 0 {
				break
			}
			skipped = true
			off = ((off/l.thirdLen() + 1) % l.thirds()) * l.thirdLen()
			continue
		}
		recLen := 5 + 2*h.n
		if off+recLen > area {
			break
		}
		if !l.readEnd(off, h.n, rec, a.bootCount, &RecoveryStats{}) {
			if viaCopy && !skipped && off%l.thirdLen() != 0 {
				skipped = true
				off = ((off/l.thirdLen() + 1) % l.thirds()) * l.thirdLen()
				continue
			}
			break
		}
		skipped = false
		ri := RecordInfo{
			Offset:     off,
			RecordNum:  h.recordNum,
			BootCount:  h.bootCount,
			Images:     h.n,
			Sectors:    recLen,
			EndOfBatch: h.endOfBatch,
		}
		for _, dsc := range h.descs {
			ri.Targets = append(ri.Targets, ImageRef{Kind: dsc.Kind, Target: dsc.Target})
		}
		info.Records = append(info.Records, ri)
		if h.endOfBatch {
			batchLen = 0
		} else {
			batchLen++
		}
		read += recLen - 2
		rec++
		off += recLen
		if off >= area {
			off = 0
		}
	}
	info.PartialTail = batchLen
	return info, nil
}
