package wal

import (
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

func TestPreStageJoinsEveryForce(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	calls := 0
	l.PreStage = func() []PageImage {
		calls++
		return []PageImage{img(KindVAM, uint64(calls), byte(calls))}
	}
	l.Append(img(KindNameTable, 1, 1))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("PreStage called %d times", calls)
	}
	// The record carried both images.
	if st := l.Stats(); st.ImagesLogged != 2 {
		t.Fatalf("images logged = %d, want 2", st.ImagesLogged)
	}
	// Recovery sees the pre-staged image.
	_, c, _ := reopen(t, d, clk, Config{})
	if c.last[imageKey{KindVAM, 1}] == nil {
		t.Fatal("pre-staged image not recovered")
	}
}

func TestPreStageEmptyForceStillSkipsRecord(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	l.PreStage = func() []PageImage { return nil }
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 0 {
		t.Fatal("empty force with PreStage wrote a record")
	}
}

func TestPreStageAloneProducesRecord(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	fired := false
	l.PreStage = func() []PageImage {
		if fired {
			return nil
		}
		fired = true
		return []PageImage{img(KindVAM, 9, 9)}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 1 || st.SectorsWritten != 7 {
		t.Fatalf("stats: %+v", l.Stats())
	}
}

func TestAlternativeDivisionCounts(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		clk := sim.NewVirtualClock()
		d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		size := 4 + k*200
		l, err := Format(d, logBase, size, clk, Config{Interval: time.Second, Thirds: k})
		if err != nil {
			t.Fatalf("thirds=%d: %v", k, err)
		}
		l.FlushHook = func(int) (int, error) { return 0, nil }
		// Enough records to wrap at least twice.
		for i := 0; i < 8*k; i++ {
			var ims []PageImage
			for j := 0; j < 20; j++ {
				ims = append(ims, img(KindNameTable, uint64(i*100+j), byte(i)))
			}
			l.Append(ims...)
			if err := l.Force(); err != nil {
				t.Fatalf("thirds=%d force %d: %v", k, i, err)
			}
		}
		// Recover: the newest record must be present.
		lr, err := Open(d, logBase, size, clk, Config{Thirds: k})
		if err != nil {
			t.Fatal(err)
		}
		c := newCollect()
		rs, err := lr.Recover(c.apply)
		if err != nil {
			t.Fatalf("thirds=%d recover: %v", k, err)
		}
		if rs.Records == 0 {
			t.Fatalf("thirds=%d: nothing recovered", k)
		}
		last := imageKey{KindNameTable, uint64((8*k-1)*100 + 19)}
		if c.last[last] == nil {
			t.Fatalf("thirds=%d: newest record lost", k)
		}
	}
}

func TestRecordExactlyFillsThird(t *testing.T) {
	// Third length 200; records of n images take 5+2n sectors. Use
	// n=39 -> 83, then n=39 -> 83, then n=15 -> 35: 83+83+35 = 201 > 200,
	// so the last must move to the next third; craft n=14 -> 33 to land
	// exactly at 199, then one more record must cross cleanly.
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.FlushHook = func(int) (int, error) { return 0, nil }
	sizes := []int{39, 39, 14, 5, 5} // 83+83+33 = 199, then new third
	id := 0
	for _, n := range sizes {
		var ims []PageImage
		for j := 0; j < n; j++ {
			id++
			ims = append(ims, img(KindLeader, uint64(id), byte(id)))
		}
		l.Append(ims...)
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != len(sizes) {
		t.Fatalf("recovered %d records, want %d", rs.Records, len(sizes))
	}
	if c.last[imageKey{KindLeader, uint64(id)}] == nil {
		t.Fatal("final image lost across the third boundary")
	}
}

func TestCrashBetweenFlushAndAnchor(t *testing.T) {
	// Crash inside enterThird after the flush hook ran but before (or
	// during) the anchor write: the old anchor still covers everything,
	// so nothing committed is lost.
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	flushed := map[imageKey][]byte{}
	cache := map[imageKey][]byte{}
	third := map[imageKey]int{}
	l.OnLogged = func(kind uint8, target uint64, th int, _ []byte) {
		third[imageKey{kind, target}] = th
	}
	armKill := false
	l.FlushHook = func(th int) (int, error) {
		n := 0
		for k, t3 := range third {
			if t3 == th {
				flushed[k] = cache[k]
				delete(third, k)
				n++
			}
		}
		if armKill {
			// Halt the device so the anchor write that follows fails.
			d.SetWriteFault(FailNextWrite())
		}
		return n, nil
	}
	// Fill two thirds.
	id := 0
	stage := func(n int) error {
		var ims []PageImage
		for j := 0; j < n; j++ {
			id++
			im := img(KindNameTable, uint64(id), byte(id))
			cache[imageKey{KindNameTable, uint64(id)}] = im.Data
			ims = append(ims, im)
		}
		l.Append(ims...)
		return l.Force()
	}
	for i := 0; i < 4; i++ { // 4 x 45-sector records fill most of 2 thirds
		if err := stage(20); err != nil {
			t.Fatal(err)
		}
	}
	armKill = true
	err := stage(20) // triggers the third transition, killed at the anchor
	if !errors.Is(err, disk.ErrHalted) {
		t.Fatalf("expected halt at anchor write, got %v", err)
	}
	d.Revive()
	// Recover: everything from the four completed forces must be
	// reconstructable from flushed-home pages plus the log.
	lr, err := Open(d, logBase, logSize, clk, Config{})
	if err != nil {
		t.Fatal(err)
	}
	recon := map[imageKey][]byte{}
	for k, v := range flushed {
		recon[k] = v
	}
	if _, err := lr.Recover(func(kind uint8, target uint64, data []byte) error {
		cp := make([]byte, len(data))
		copy(cp, data)
		recon[imageKey{kind, target}] = cp
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 80; i++ { // the four committed forces
		k := imageKey{KindNameTable, uint64(i)}
		if recon[k] == nil {
			t.Fatalf("committed image %d lost after anchor-window crash", i)
		}
	}
}

// FailNextWrite interrupts the very next write operation at its first
// sector and halts the device.
func FailNextWrite() disk.WriteFaultFunc {
	return disk.FailAfterWrites(0, 0)
}

func TestBatchBiggerThanThird(t *testing.T) {
	// A batch needing more sectors than one division splits into records
	// that hop divisions; nothing is rejected.
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.FlushHook = func(int) (int, error) { return 0, nil }
	var ims []PageImage
	for j := 0; j < 3*MaxImagesPerRecord; j++ {
		ims = append(ims, img(KindNameTable, uint64(j), byte(j)))
	}
	l.Append(ims...)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 3 {
		t.Fatalf("records = %d, want 3", st.Records)
	}
	_, c, _ := reopen(t, d, clk, Config{})
	if len(c.last) != 3*MaxImagesPerRecord {
		t.Fatalf("recovered %d images", len(c.last))
	}
}

// TestHeaderCopyMirageAtThirdBoundary is the regression test for a subtle
// recovery bug the model checker found: a record ending exactly two sectors
// before a third boundary creates a self-consistent mirage — a phantom
// record at boundary-2 whose header-copy and end-copy positions coincide
// with the next record's primary header and end page — which recovery would
// accept misaligned, derailing the rest of the replay. The writer now never
// ends a record at boundary-2 (it moves the record or sheds an image), and
// this test drives the layout that used to trigger it.
func TestHeaderCopyMirageAtThirdBoundary(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.FlushHook = func(int) (int, error) { return 0, nil }
	// Without the fix this fills the first third to exactly 198 of its
	// 200 sectors: 27 single-image records (7) + one two-image record
	// (9). The writer must refuse that final placement.
	id := 0
	write := func(n int) {
		var ims []PageImage
		for j := 0; j < n; j++ {
			id++
			ims = append(ims, img(KindLeader, uint64(id), byte(id)))
		}
		l.Append(ims...)
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 27; i++ {
		write(1)
	}
	write(2)
	write(3)
	write(1)
	// Recovery must see every record, whatever layout the writer chose.
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records < 30 {
		t.Fatalf("recovered %d records, want all >= 30 (mirage dropped the tail)", rs.Records)
	}
	if rs.Repaired != 0 {
		t.Fatalf("%d spurious copy repairs on an undamaged log (mirage accepted)", rs.Repaired)
	}
	if c.last[imageKey{KindLeader, uint64(id)}] == nil {
		t.Fatal("newest record lost to the boundary mirage")
	}
}

// TestNoRecordEndsAtBoundaryMinusTwo drives thousands of randomly sized
// forces and asserts the writer's invariant directly.
func TestNoRecordEndsAtBoundaryMinusTwo(t *testing.T) {
	l, _, _ := newTestLog(t, Config{Interval: time.Second})
	l.FlushHook = func(int) (int, error) { return 0, nil }
	id := 0
	seed := uint32(12345)
	for i := 0; i < 400; i++ {
		seed = seed*1664525 + 1013904223
		n := int(seed%7) + 1
		var ims []PageImage
		for j := 0; j < n; j++ {
			id++
			ims = append(ims, img(KindLeader, uint64(id), byte(id)))
		}
		l.Append(ims...)
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
		tl := l.thirdLen()
		if rem := tl - l.writeOff%tl; rem == 2 {
			t.Fatalf("force %d left writeOff at boundary-2 (%d)", i, l.writeOff)
		}
	}
}

// TestTornMultiRecordBatchDiscarded is the regression test for the other
// model-checker find: a force that splits into several records must be
// applied all-or-nothing. Here the second record of a two-record force is
// torn; recovery must not apply the first record's images either.
func TestTornMultiRecordBatchDiscarded(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	// A committed single-record force first.
	l.Append(img(KindNameTable, 1, 0x11))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Now a 45-image force: record A (39 images) + record B (6 images).
	var ims []PageImage
	for j := 0; j < 45; j++ {
		ims = append(ims, img(KindNameTable, uint64(100+j), byte(j)))
	}
	l.Append(ims...)
	// Let record A through; tear record B at its fourth sector.
	allow := 1
	d.SetWriteFault(func(addr, n int) *disk.WriteFault {
		if allow > 0 {
			allow--
			return nil
		}
		return &disk.WriteFault{Persist: 4, DamageAtBreak: true, Halt: true}
	})
	if err := l.Force(); !errors.Is(err, disk.ErrHalted) {
		t.Fatalf("torn force: %v", err)
	}
	d.Revive()
	_, c, rs := reopen(t, d, clk, Config{})
	if c.last[imageKey{KindNameTable, 1}] == nil {
		t.Fatal("committed record lost")
	}
	for j := 0; j < 45; j++ {
		if c.last[imageKey{KindNameTable, uint64(100 + j)}] != nil {
			t.Fatalf("image %d of the torn batch was applied (batch atomicity violated)", j)
		}
	}
	if rs.TailDiscarded == 0 {
		t.Fatal("TailDiscarded not reported for the torn batch")
	}
	if rs.TornRecords != 1 {
		t.Fatalf("TornRecords = %d, want 1 (record B torn mid-write)", rs.TornRecords)
	}
}

// TestGapBreakCounted: an unreadable record in the middle of the chain stops
// replay and is reported as a reordering gap, distinct from an ordinary torn
// tail — the records beyond it are intact but unreachable.
func TestGapBreakCounted(t *testing.T) {
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	for i := 0; i < 3; i++ {
		l.Append(img(KindNameTable, uint64(i), byte(i)))
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	// Single-image records are 7 sectors; record 2 starts at +7 from the
	// record area. Ruin both of its header copies (sectors +0 and +2).
	rec2 := logBase + 4 + 7
	d.CorruptSectors(rec2+0, 1)
	d.CorruptSectors(rec2+2, 1)
	_, c, rs := reopen(t, d, clk, Config{})
	if rs.Records != 1 {
		t.Fatalf("replayed %d records, want 1 (chain breaks at the gap)", rs.Records)
	}
	if rs.GapBreaks != 1 {
		t.Fatalf("GapBreaks = %d, want 1", rs.GapBreaks)
	}
	if c.last[imageKey{KindNameTable, 0}] == nil {
		t.Fatal("record before the gap lost")
	}
	if c.last[imageKey{KindNameTable, 2}] != nil {
		t.Fatal("record beyond the gap must not replay")
	}
}

// tornAnchorEpisode forces one record, then tears the anchor-copy write at
// target (logBase or logBase+2) during the recovery that rewrites the
// anchor, and checks that a second recovery still finds the record by
// falling back to the other copy. Run with both targets, it shows the
// duplexed anchor is update-atomic in either write order.
func tornAnchorEpisode(t *testing.T, target int) {
	t.Helper()
	l, d, clk := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindLeader, 5, 0x55))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}

	// First recovery: the anchor rewrite tears mid-way through the chosen
	// copy. A sector write has no atomicity at all here — nothing of it
	// lands and the sector is left scribbled.
	d.SetWriteFault(func(addr, n int) *disk.WriteFault {
		if addr == target {
			return &disk.WriteFault{Persist: 0, DamageAtBreak: true, Halt: true}
		}
		return nil
	})
	lr, err := Open(d, logBase, logSize, clk, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c1 := newCollect()
	if _, err := lr.Recover(c1.apply); !errors.Is(err, disk.ErrHalted) {
		t.Fatalf("recovery with torn anchor write: %v, want ErrHalted", err)
	}
	if c1.last[imageKey{KindLeader, 5}] == nil {
		t.Fatal("replay before the anchor tear lost the record")
	}
	d.Revive()
	d.SetWriteFault(nil)

	// Second recovery: one anchor copy is scribble, the other is intact,
	// so the pair is still update-atomic — recovery lands on exactly one
	// of the two legal states. Tearing the primary leaves the OLD pair in
	// the copy: the record replays again. Tearing the copy leaves the NEW
	// primary: the log reads as already reset (its images were delivered
	// before the tear, as c1 proved). Either way recovery must succeed and
	// never read a half-updated anchor.
	l2, c2, rs := reopen(t, d, clk, Config{})
	switch target {
	case logBase:
		if rs.Records != 1 {
			t.Fatalf("records after torn primary = %d, want 1 (old anchor pair)", rs.Records)
		}
		got := c2.last[imageKey{KindLeader, 5}]
		if got == nil || got[0] != 0x55 {
			t.Fatal("record lost after torn primary anchor write")
		}
	default:
		if rs.Records != 0 {
			t.Fatalf("records after torn copy = %d, want 0 (new anchor already durable)", rs.Records)
		}
	}

	// The healed log must be fully usable: the rewritten anchor pair is
	// intact again and carries new records across another recovery.
	l2.Append(img(KindLeader, 6, 0x66))
	if err := l2.Force(); err != nil {
		t.Fatalf("force after healed anchor: %v", err)
	}
	_, c3, rs3 := reopen(t, d, clk, Config{})
	if rs3.Records != 1 || c3.last[imageKey{KindLeader, 6}] == nil {
		t.Fatalf("log unusable after anchor tear: %+v", rs3)
	}
}

func TestAnchorTornPrimaryWrite(t *testing.T) { tornAnchorEpisode(t, logBase) }

func TestAnchorTornCopyWrite(t *testing.T) { tornAnchorEpisode(t, logBase+2) }

func TestInspectMatchesWrites(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: time.Second})
	l.Append(img(KindNameTable, 1, 1), img(KindLeader, 2, 2))
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	var big []PageImage
	for j := 0; j < MaxImagesPerRecord+3; j++ {
		big = append(big, img(KindNameTable, uint64(10+j), byte(j)))
	}
	l.Append(big...)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(d, logBase, logSize, Config{})
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Records) != 3 {
		t.Fatalf("inspect found %d records, want 3", len(info.Records))
	}
	// Record 1: 2 images, end-of-batch. Records 2+3: split force, only
	// the last flagged.
	if !info.Records[0].EndOfBatch || info.Records[0].Images != 2 {
		t.Fatalf("record 1: %+v", info.Records[0])
	}
	if info.Records[1].EndOfBatch || !info.Records[2].EndOfBatch {
		t.Fatal("batch flags wrong on the split force")
	}
	if info.Records[0].Targets[1].Kind != KindLeader || info.Records[0].Targets[1].Target != 2 {
		t.Fatalf("targets: %+v", info.Records[0].Targets)
	}
	if info.PartialTail != 0 {
		t.Fatalf("PartialTail = %d on a clean log", info.PartialTail)
	}
	// Inspect is read-only: a second inspection sees the same thing.
	info2, err := Inspect(d, logBase, logSize, Config{})
	if err != nil || len(info2.Records) != 3 {
		t.Fatal("Inspect consumed the log")
	}
}

func TestInspectReportsPartialTail(t *testing.T) {
	l, d, _ := newTestLog(t, Config{Interval: time.Second})
	var big []PageImage
	for j := 0; j < MaxImagesPerRecord+3; j++ {
		big = append(big, img(KindNameTable, uint64(j), byte(j)))
	}
	l.Append(big...)
	// Tear the second record of the split force.
	allow := 1
	d.SetWriteFault(func(addr, n int) *disk.WriteFault {
		if allow > 0 {
			allow--
			return nil
		}
		return &disk.WriteFault{Persist: 2, DamageAtBreak: true, Halt: true}
	})
	if err := l.Force(); !errors.Is(err, disk.ErrHalted) {
		t.Fatalf("force: %v", err)
	}
	d.Revive()
	info, err := Inspect(d, logBase, logSize, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if info.PartialTail == 0 {
		t.Fatal("partial tail not reported")
	}
}
