// Package wal implements FSD's physical redo log and group-commit engine,
// following Section 5.3 and 5.4 of the paper.
//
// The log is a circular region of sectors near the volume's centre
// cylinders, divided into thirds. Each record carries two copies of every
// logged 512-byte page image, laid out so that identical data never occupies
// adjacent sectors:
//
//	header | blank | header copy | data[0..n-1] | end | data copies | end copy
//
// which is 5 + 2n sectors — the paper's "five pages of overhead and write
// twice the data", making a one-page record 7 sectors and the largest
// permitted record (n = 39) 83 sectors, the maximum the paper observed.
//
// Updates are staged in a pending batch keyed by target page, so repeated
// updates to a hot page within one group-commit interval cost one logged
// image (the paper's "hot spot" effect). Force writes the batch as one or
// more records in a single synchronous disk operation each.
//
// When a write is about to enter a new third, any cached pages whose only
// durable copy lives in that third are first written to their home
// locations (via the FlushHook), the anchor in log pages 0 and 2 is advanced
// to the start of the new oldest third, and only then is the third
// overwritten. On average 5/6 of the log holds live history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Image kinds tag logged pages so recovery knows where home is. The WAL does
// not interpret them; the client's applier does.
const (
	KindNameTable = 1 // target = name-table page id (written to both copies)
	KindLeader    = 2 // target = absolute sector address of a leader page
	KindVAM       = 3 // target = bitmap sector index in the VAM save area
)

// MaxImagesPerRecord bounds a single record at 5+2*39 = 83 sectors.
const MaxImagesPerRecord = 39

const (
	anchorSectors = 4 // anchor at +0, copy at +2; +1 and +3 unused
	recMagic      = 0x10C0FFEE
	anchorMagic   = 0xA2C40855
	hdrFixed      = 24 // header bytes before descriptors
	descSize      = 9  // kind u8 | target u32 | crc u32
)

// Errors.
var (
	ErrAnchorLost   = errors.New("wal: both anchor copies unreadable")
	ErrBatchTooBig  = errors.New("wal: single update batch exceeds log capacity")
	ErrImageCorrupt = errors.New("wal: both copies of a logged page are damaged")
)

// PageImage is one 512-byte page staged for logging.
type PageImage struct {
	Kind   uint8
	Target uint64
	Data   []byte // exactly disk.SectorSize bytes
}

type imageKey struct {
	kind   uint8
	target uint64
}

// Stats describes log activity since Open.
type Stats struct {
	Forces           int // synchronous record writes triggered
	Records          int // records written
	ImagesStaged     int // images handed to Append
	ImagesLogged     int // images actually written (post-dedup)
	ImagesElided     int // images absorbed by a later update in the same batch
	SectorsWritten   int
	MinRecordSectors int
	MaxRecordSectors int
	ThirdCrossings   int
	HomeFlushes      int // pages pushed home at third crossings
}

// Config parameterizes the log.
type Config struct {
	// Interval is the group-commit period; 0 forces at every Append
	// (the synchronous ablation). When Adaptive is set it is the ceiling
	// of the adaptive controller instead of a fixed period.
	Interval time.Duration
	// Thirds overrides the number of log divisions; the paper uses 3.
	// Valid values are 2..8. Zero means 3.
	Thirds int
	// Adaptive enables the load-aware force deadline: instead of forcing
	// on a fixed Interval, the log tracks the per-image staging rate and
	// its own force latency (EWMAs over live signals) and sets the
	// deadline to the time needed to accumulate TargetImages — clamped
	// between Floor and Interval. An idle log drifts to the Interval
	// ceiling (the paper's batching behaviour); a busy one forces as soon
	// as a record's worth of images is ready, but never so often that
	// force I/O exceeds a quarter of the duty cycle (the deadline is held
	// above four times the smoothed force latency). Ignored when Interval
	// is 0.
	Adaptive bool
	// Floor is the shortest deadline the adaptive controller may choose.
	// Zero means 1ms. Ignored unless Adaptive.
	Floor time.Duration
	// TargetImages is the batch size the adaptive deadline aims to
	// accumulate per force. Zero means 16. Ignored unless Adaptive.
	TargetImages int
	// WriteRetries bounds the in-place retries of a failed log-sector
	// write before the error escalates; independently of the retry
	// budget, a sector that stays damaged after a failed write is remapped
	// to a spare and the write repeated. Zero means 2; negative disables
	// retries (remapping still happens).
	WriteRetries int
	// ReadRetries bounds the in-place retries of a failed log-sector read
	// (anchor reads, recovery replay) before the failure is taken at face
	// value; a transient fault that clears on a re-read then never costs a
	// repair-from-copy or a replay break. Zero means 2; negative disables
	// retries.
	ReadRetries int
}

// Log is the redo log over a contiguous sector region of a disk.
//
// Concurrency (the pipelined group commit): staging and forcing run under
// two different locks. l.mu guards only the pending batch and the sequence
// counters, so Append never blocks behind log I/O. forceMu serializes force
// execution end-to-end — a force captures the pending batch under l.mu
// (atomically swapping in an empty one), releases l.mu, and then writes its
// records while new appends stage freely into the next batch. Every client
// callback (FlushHook, OnLogged, OnCommit, PreStage) is invoked under
// forceMu but never under l.mu, so callbacks may call Append.
//
// Each captured batch carries a commit sequence number. Append returns the
// sequence of the batch it staged into; WaitCommitted(seq) blocks (forcing
// if necessary) until that batch is durable. Sequence numbers advance even
// for empty batches, so waiting is always finite.
type Log struct {
	d    *disk.Disk
	base int // first sector of the region
	size int // total sectors including anchors
	clk  sim.Clock
	cfg  Config

	// FlushHook is invoked with the third index about to be overwritten;
	// the client must write home every cached page whose newest logged
	// image lives in that third, and report how many pages it wrote.
	FlushHook func(third int) (int, error)
	// OnCommit is invoked after every successful force with the commit
	// sequence number that just became durable; FSD uses it to make the
	// pending deletions of batches <= seq final.
	OnCommit func(seq uint64)
	// OnLogged is invoked for every image written, with the division its
	// record landed in and the image bytes that went to disk. The page
	// cache uses it to tag dirty pages so the FlushHook can find "pages
	// most recently logged into this third", and snapshots exactly the
	// logged bytes — the cache contents may already be newer, because
	// staging continues while a force is writing.
	OnLogged func(kind uint8, target uint64, third int, data []byte)
	// PreStage, when set, is invoked at the start of every Force; the
	// images it returns join the batch. The VAM-logging extension uses
	// it to stage the allocation-map sectors dirtied since the last
	// force, so a commit's VAM deltas ride the same record set as its
	// name-table images.
	PreStage func() []PageImage
	// OnForce, when set, is invoked (under forceMu) after every force
	// that wrote records, with the batch's group-commit measurements.
	// The observability layer feeds its batching histograms from it.
	OnForce func(ForceEvent)
	// OnAppend, when set, is invoked after images are staged by Append,
	// with the image count and the commit sequence they joined. Not
	// invoked for PreStage images. Called without l.mu held.
	OnAppend func(images int, seq uint64)
	// OnWriteFault, when set, is invoked after any log write that needed
	// the fault path: retried in-place retries and remapped spare-sector
	// retirements were spent, and err is the final outcome (nil when the
	// write eventually succeeded). The volume charges its health error
	// budget from it. Called without l.mu held.
	OnWriteFault func(retried, remapped int, err error)
	// OnReadFault, when set, is invoked after any log read that needed the
	// fault path: retried in-place retries were spent, and err is the final
	// outcome (nil when the read eventually succeeded). Recovery wires it to
	// the volume's health error budget, so a replay that barely limps
	// through decayed media mounts Degraded instead of silently Healthy.
	// Called without l.mu held.
	OnReadFault func(retried int, err error)

	// mu guards the staging state only: pending, pendingIdx, openSeq,
	// lastForce, stats, and the adaptive-controller EWMAs. It is never
	// held across disk I/O or callbacks.
	mu         sync.Mutex
	pending    []PageImage
	pendingIdx map[imageKey]int
	openSeq    uint64 // sequence number of the batch currently staging
	lastForce  time.Duration
	stats      Stats

	// Adaptive-controller state (meaningful only when cfg.Adaptive).
	// ewmaGap is the smoothed interval between staged images — the
	// inverse of the offered load; ewmaForce is the smoothed duration of
	// a record-writing force. Both are zero until their first sample.
	ewmaGap   time.Duration
	ewmaForce time.Duration
	lastStage time.Duration

	// committedSeq is the newest durable batch sequence (0 = none yet).
	// Written under forceMu; read lock-free by Committed().
	committedSeq atomic.Uint64

	// forceMu serializes force execution and owns the write-path state
	// below (plus all callback invocations).
	forceMu    sync.Mutex
	recordNum  uint64
	bootCount  uint32
	writeOff   int       // sector offset within the record area
	curThird   int       // division currently being filled
	thirdFirst [8]uint64 // first record number written into each division
}

func (l *Log) thirds() int {
	if l.cfg.Thirds == 0 {
		return 3
	}
	return l.cfg.Thirds
}

// writeRetries returns the in-place retry budget for log writes.
func (l *Log) writeRetries() int {
	switch {
	case l.cfg.WriteRetries < 0:
		return 0
	case l.cfg.WriteRetries == 0:
		return 2
	default:
		return l.cfg.WriteRetries
	}
}

// readRetries returns the in-place retry budget for log reads.
func (l *Log) readRetries() int {
	switch {
	case l.cfg.ReadRetries < 0:
		return 0
	case l.cfg.ReadRetries == 0:
		return 2
	default:
		return l.cfg.ReadRetries
	}
}

// readData reads a run of log sectors with the bounded-retry policy,
// reporting any fault-path activity to OnReadFault. Every recovery read
// (anchors, headers, record bodies, image copies) goes through here, so a
// transient fault never breaks a replay that a re-read could save.
func (l *Log) readData(addr, n int) ([]byte, error) {
	buf, retried, err := disk.ReadSectorsRetry(l.d, addr, n, l.readRetries())
	if (retried > 0 || err != nil) && l.OnReadFault != nil {
		l.OnReadFault(retried, err)
	}
	return buf, err
}

// writeData writes a run of log sectors with the bounded-retry and
// automatic-remap policy, reporting any fault-path activity to OnWriteFault.
// Every log write (anchors, record area, format erase) goes through here, so
// a marginal sector never fails a commit that a retry or a spare could save.
func (l *Log) writeData(addr int, data []byte) error {
	retried, remapped, err := disk.WriteSectorsRetry(l.d, addr, data, l.writeRetries())
	if (retried > 0 || remapped > 0 || err != nil) && l.OnWriteFault != nil {
		l.OnWriteFault(retried, remapped, err)
	}
	return err
}

// recArea returns the sector count of the record area.
func (l *Log) recArea() int { return l.size - anchorSectors }

// thirdLen returns the sector length of one division.
func (l *Log) thirdLen() int { return l.recArea() / l.thirds() }

// MinSize returns the smallest legal log region for a given division count:
// each division must hold the largest record.
func MinSize(thirds int) int {
	if thirds == 0 {
		thirds = 3
	}
	return anchorSectors + thirds*(5+2*MaxImagesPerRecord)
}

// anchor is the replicated pointer in log pages 0 and 2.
type anchor struct {
	bootCount uint32
	offset    uint32 // record-area offset of the first valid record
	recordNum uint64 // its record number
}

func encodeAnchor(a anchor) []byte {
	buf := make([]byte, disk.SectorSize)
	binary.BigEndian.PutUint32(buf[0:], anchorMagic)
	binary.BigEndian.PutUint32(buf[4:], a.bootCount)
	binary.BigEndian.PutUint32(buf[8:], a.offset)
	binary.BigEndian.PutUint64(buf[12:], a.recordNum)
	binary.BigEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	return buf
}

func decodeAnchor(buf []byte) (anchor, bool) {
	if binary.BigEndian.Uint32(buf[0:]) != anchorMagic {
		return anchor{}, false
	}
	if binary.BigEndian.Uint32(buf[20:]) != crc32.ChecksumIEEE(buf[:20]) {
		return anchor{}, false
	}
	return anchor{
		bootCount: binary.BigEndian.Uint32(buf[4:]),
		offset:    binary.BigEndian.Uint32(buf[8:]),
		recordNum: binary.BigEndian.Uint64(buf[12:]),
	}, true
}

// writeAnchor writes both anchor copies (two operations: the copies must
// have independent failure modes, so they are never in one transfer). Both
// sides are fenced: whatever the new anchor supersedes (home flushes at a
// third crossing) must be durable before either copy can point past it, and
// the anchor itself must be durable before the third it releases is
// overwritten.
func (l *Log) writeAnchor(a anchor) error {
	buf := encodeAnchor(a)
	if err := l.d.Sync(); err != nil {
		return err
	}
	if err := l.writeData(l.base+0, buf); err != nil {
		return err
	}
	if err := l.writeData(l.base+2, buf); err != nil {
		return err
	}
	return l.d.Sync()
}

// readAnchor returns the first readable, valid anchor copy.
func (l *Log) readAnchor() (anchor, error) {
	for _, off := range []int{0, 2} {
		buf, err := l.readData(l.base+off, 1)
		if err != nil {
			continue
		}
		if a, ok := decodeAnchor(buf); ok {
			return a, nil
		}
	}
	return anchor{}, ErrAnchorLost
}

// Format initializes an empty log in [base, base+size) with boot count 1.
func Format(d *disk.Disk, base, size int, clk sim.Clock, cfg Config) (*Log, error) {
	l := &Log{d: d, base: base, size: size, clk: clk, cfg: cfg}
	if size < MinSize(l.thirds()) {
		return nil, fmt.Errorf("wal: log of %d sectors too small (min %d)", size, MinSize(l.thirds()))
	}
	l.bootCount = 1
	l.recordNum = 1
	if err := l.writeAnchor(anchor{bootCount: 1, offset: 0, recordNum: 1}); err != nil {
		return nil, err
	}
	// Erase the whole record area. A format over a previously used region
	// (the salvage path) restarts boot and record counters at 1, so any
	// stale record left beyond the new session's tail could splice onto it
	// during a later recovery; zeroing leaves nothing that checksums.
	const eraseChunk = 64
	zero := make([]byte, eraseChunk*disk.SectorSize)
	area := l.thirdLen() * l.thirds()
	for off := 0; off < area; off += eraseChunk {
		n := eraseChunk
		if off+n > area {
			n = area - off
		}
		if err := l.writeData(l.base+anchorSectors+off, zero[:n*disk.SectorSize]); err != nil {
			return nil, err
		}
	}
	l.lastForce = clk.Now()
	l.pendingIdx = make(map[imageKey]int)
	l.openSeq = 1
	return l, nil
}

// Stats returns a snapshot of the activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats zeroes the counters.
func (l *Log) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// PendingImages returns the number of staged, not yet forced images.
func (l *Log) PendingImages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Append stages page images for the next force and returns the commit
// sequence number of the batch they joined: once Committed() reaches that
// number the images are durable. Within a batch, a later image of the same
// (kind, target) replaces the earlier one — this is where group commit
// absorbs hot-spot writes. If the configured interval is zero the batch is
// forced before returning (the synchronous ablation); otherwise Append never
// blocks behind log I/O, even while a force is writing records.
func (l *Log) Append(images ...PageImage) (uint64, error) {
	seq, err := l.stage(images)
	if err != nil {
		return 0, err
	}
	if l.OnAppend != nil {
		l.OnAppend(len(images), seq)
	}
	if l.cfg.Interval == 0 {
		return seq, l.Force()
	}
	return seq, nil
}

// ewmaShift is the smoothing factor of the controller's moving averages:
// new = old + (sample-old)/2^ewmaShift.
const ewmaShift = 3

// stage adds images to the pending batch without triggering a force and
// returns the batch's sequence number.
func (l *Log) stage(images []PageImage) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Adaptive && len(images) > 0 {
		now := l.clk.Now()
		if l.lastStage > 0 && now >= l.lastStage {
			gap := (now - l.lastStage) / time.Duration(len(images))
			if l.ewmaGap == 0 {
				l.ewmaGap = gap
			} else {
				l.ewmaGap += (gap - l.ewmaGap) >> ewmaShift
			}
		}
		l.lastStage = now
	}
	for _, im := range images {
		if len(im.Data) != disk.SectorSize {
			return 0, fmt.Errorf("wal: image of %d bytes, want %d", len(im.Data), disk.SectorSize)
		}
		if im.Target > 0xFFFFFFFF {
			return 0, fmt.Errorf("wal: target %d exceeds 32 bits", im.Target)
		}
		l.stats.ImagesStaged++
		k := imageKey{im.Kind, im.Target}
		cp := make([]byte, disk.SectorSize)
		copy(cp, im.Data)
		im.Data = cp
		if i, ok := l.pendingIdx[k]; ok {
			l.pending[i] = im
			l.stats.ImagesElided++
		} else {
			l.pendingIdx[k] = len(l.pending)
			l.pending = append(l.pending, im)
		}
	}
	return l.openSeq, nil
}

// Seq returns the sequence number covering everything staged so far: once
// Committed() >= Seq()'s return value, every image staged before the call
// is durable. With nothing pending it names the last captured batch.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) > 0 {
		return l.openSeq
	}
	return l.openSeq - 1
}

// Committed returns the newest durable batch sequence number.
func (l *Log) Committed() uint64 { return l.committedSeq.Load() }

// WaitCommitted blocks until batch seq is durable, forcing the log as
// needed (the fsync of the pipelined commit: callers that staged updates
// and hold the returned sequence can make them durable on demand without
// serializing other appenders).
func (l *Log) WaitCommitted(seq uint64) error {
	for l.committedSeq.Load() < seq {
		// Force serializes behind any in-flight force (which may itself
		// commit seq) and then captures whatever is pending; every force
		// advances the committed sequence, so this loop terminates.
		if err := l.Force(); err != nil {
			return err
		}
	}
	return nil
}

// floor returns the adaptive deadline floor.
func (l *Log) floor() time.Duration {
	if l.cfg.Floor > 0 {
		return l.cfg.Floor
	}
	return time.Millisecond
}

// targetImages returns the batch size the adaptive deadline aims for.
func (l *Log) targetImages() int {
	if l.cfg.TargetImages > 0 {
		return l.cfg.TargetImages
	}
	return 16
}

// deadlineLocked returns the current force deadline: the fixed Interval, or
// — in adaptive mode — the estimated time to accumulate targetImages at the
// observed staging rate, held above both the floor and four times the
// smoothed force latency (so force I/O never exceeds a quarter of the duty
// cycle — under sustained load the controller backs off toward bigger
// batches instead of thrashing the disk with forces) and below the Interval
// ceiling. Before the first staging sample the deadline is the ceiling,
// preserving the paper's behaviour on an idle or cold log. Caller holds
// l.mu.
func (l *Log) deadlineLocked() time.Duration {
	if !l.cfg.Adaptive || l.cfg.Interval == 0 {
		return l.cfg.Interval
	}
	if l.ewmaGap == 0 {
		return l.cfg.Interval
	}
	d := l.ewmaGap * time.Duration(l.targetImages())
	if min := 4 * l.ewmaForce; d < min {
		d = min
	}
	if f := l.floor(); d < f {
		d = f
	}
	if d > l.cfg.Interval {
		d = l.cfg.Interval
	}
	return d
}

// Deadline returns the force deadline currently in effect: Interval in fixed
// mode, the adaptive controller's choice in adaptive mode, 0 in synchronous
// mode.
func (l *Log) Deadline() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deadlineLocked()
}

// MaybeForce forces the log if the force deadline has elapsed since the last
// force — or, in adaptive mode, as soon as a full record's worth of images
// is pending (forcing then costs no extra record overhead). The file system
// calls it at operation boundaries when running on a virtual clock; under a
// real clock a ticker goroutine calls it.
func (l *Log) MaybeForce() error {
	l.mu.Lock()
	due := len(l.pending) > 0 &&
		(l.clk.Now()-l.lastForce >= l.deadlineLocked() ||
			(l.cfg.Adaptive && len(l.pending) >= MaxImagesPerRecord))
	l.mu.Unlock()
	if !due {
		return nil
	}
	if !l.forceMu.TryLock() {
		// A force is already in flight: it captured everything staged
		// before it, and anything staged since is younger than one
		// interval. Do not queue the caller behind its I/O.
		return nil
	}
	defer l.forceMu.Unlock()
	return l.forceLocked()
}

// Force synchronously writes all staged images to the log, in one record
// per MaxImagesPerRecord images, then fires OnCommit. An empty batch writes
// nothing (an empty record would place its end page copies adjacently) but
// still advances the committed sequence.
func (l *Log) Force() error {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	return l.forceLocked()
}

// ForceEvent reports one group commit that wrote records: how many images
// the batch carried, how they packed into records and sectors, the
// simulated time since the previous force started (the group-commit
// interval actually achieved), and how long the force itself took.
type ForceEvent struct {
	Seq      uint64
	Images   int
	Records  int
	Sectors  int
	Interval time.Duration
	Duration time.Duration
}

// forceLocked is the force body; the caller holds forceMu.
func (l *Log) forceLocked() error {
	if l.PreStage != nil {
		if extra := l.PreStage(); len(extra) > 0 {
			if _, err := l.stage(extra); err != nil {
				return err
			}
		}
	}
	start := l.clk.Now()
	l.mu.Lock()
	batch := l.pending
	seq := l.openSeq
	l.openSeq++
	l.pending = nil
	l.pendingIdx = make(map[imageKey]int)
	prevForce := l.lastForce
	l.lastForce = l.clk.Now()
	if len(batch) > 0 {
		l.stats.Forces++
	}
	l.mu.Unlock()

	// Record writing happens outside l.mu: new appends stage into the
	// next batch while these records hit the disk.
	wrote := len(batch) > 0
	if wrote {
		// Barrier: file data and leader pages written for the operations
		// in this batch were issued before their images were staged, so
		// they must be durable before the record that commits them — a
		// reordering drive could otherwise land the record first and
		// replay would resurrect an entry whose pages never arrived.
		if err := l.d.Sync(); err != nil {
			l.restoreBatch(batch)
			return err
		}
	}
	var imgs, recs, secs int
	for len(batch) > 0 {
		consumed, err := l.writeRecord(batch)
		if err != nil {
			// A failed force must not lose staged updates: the unwritten
			// tail — including the record that just failed — goes back
			// into the pending batch, so a later Force retries it and
			// commits the same images under a newer sequence (which also
			// satisfies waiters of this one). committedSeq stays put, so
			// no waiter observes a phantom commit. Records already written
			// this force are harmless: they lack the end-of-batch flag, so
			// recovery either discards them or groups them with the
			// retry's flagged record, whose images are the same or newer.
			l.restoreBatch(batch)
			return err
		}
		imgs += consumed
		recs++
		secs += 5 + 2*consumed
		batch = batch[consumed:]
	}
	if wrote {
		// Barrier: the records themselves must be durable before the
		// commit is acknowledged to waiting clients.
		if err := l.d.Sync(); err != nil {
			return err
		}
	}
	l.committedSeq.Store(seq)
	dur := l.clk.Now() - start
	if wrote && l.cfg.Adaptive {
		l.mu.Lock()
		if l.ewmaForce == 0 {
			l.ewmaForce = dur
		} else {
			l.ewmaForce += (dur - l.ewmaForce) >> ewmaShift
		}
		l.mu.Unlock()
	}
	if l.OnCommit != nil {
		l.OnCommit(seq)
	}
	if wrote && l.OnForce != nil {
		l.OnForce(ForceEvent{
			Seq:      seq,
			Images:   imgs,
			Records:  recs,
			Sectors:  secs,
			Interval: start - prevForce,
			Duration: dur,
		})
	}
	return nil
}

// writeRecord lays out and writes one record at the current offset, taking
// up to MaxImagesPerRecord images from batch and returning how many it
// consumed. It handles third transitions, and it never lets a record end
// exactly two sectors before a third boundary: at that offset a phantom
// record's header-copy and end-copy positions coincide with the next
// record's primary header and end page, so recovery could lock onto a
// misaligned mirage. The record either moves to the next third or sheds
// one image to change its length. The final record of a force carries the
// end-of-batch flag; recovery applies a multi-record batch only when its
// flagged record survives, so a force can never be half-applied. Caller
// holds forceMu (never l.mu — staging continues while records are written).
func (l *Log) writeRecord(batch []PageImage) (int, error) {
	n := len(batch)
	if n > MaxImagesPerRecord {
		n = MaxImagesPerRecord
	}
	recLen := 5 + 2*n
	tl := l.thirdLen()
	if recLen > tl {
		return 0, ErrBatchTooBig
	}
	// Move to the next third if the record does not fit in the space
	// remaining in the current one, or if it would end at the dangerous
	// boundary-2 offset.
	end := l.writeOff + recLen
	boundary := (l.curThird + 1) * tl
	if end > boundary || boundary-end == 2 {
		if l.writeOff == l.curThird*tl {
			// Already at the third start (so moving thirds cannot
			// help): shrink the record by one image instead; the
			// dropped image rides the next record. n >= 2 here
			// because tl >= 5+2*MaxImagesPerRecord >> 9.
			n--
			recLen -= 2
		} else {
			next := (l.curThird + 1) % l.thirds()
			if err := l.enterThird(next); err != nil {
				return 0, err
			}
			l.curThird = next
			l.writeOff = next * tl
			// Re-check the boundary-2 hazard at the new position.
			if (l.curThird+1)*tl-(l.writeOff+recLen) == 2 {
				n--
				recLen -= 2
			}
		}
	}
	images := batch[:n]
	endOfBatch := n == len(batch)
	if l.thirdFirst[l.curThird] == 0 {
		l.thirdFirst[l.curThird] = l.recordNum
	}

	buf := make([]byte, recLen*disk.SectorSize)
	hdr := l.encodeHeader(images, endOfBatch)
	copy(buf[0*disk.SectorSize:], hdr) // header
	copy(buf[2*disk.SectorSize:], hdr) // header copy (sector 1 stays blank)
	for i, im := range images {        // first data copies
		copy(buf[(3+i)*disk.SectorSize:], im.Data)
	}
	endPg := l.encodeEnd()
	copy(buf[(3+n)*disk.SectorSize:], endPg) // end page
	for i, im := range images {              // second data copies
		copy(buf[(4+n+i)*disk.SectorSize:], im.Data)
	}
	copy(buf[(4+2*n)*disk.SectorSize:], endPg) // end copy

	addr := l.base + anchorSectors + l.writeOff
	if err := l.writeData(addr, buf); err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.stats.Records++
	l.stats.ImagesLogged += n
	l.stats.SectorsWritten += recLen
	if recLen > l.stats.MaxRecordSectors {
		l.stats.MaxRecordSectors = recLen
	}
	if l.stats.MinRecordSectors == 0 || recLen < l.stats.MinRecordSectors {
		l.stats.MinRecordSectors = recLen
	}
	l.mu.Unlock()
	l.writeOff += recLen
	l.recordNum++
	if l.OnLogged != nil {
		for _, im := range images {
			l.OnLogged(im.Kind, im.Target, l.curThird, im.Data)
		}
	}
	return n, nil
}

// restoreBatch returns the images a failed force could not write to the
// pending batch, so a write fault never drops a staged update. An image
// whose key has been re-staged since the batch was captured is discarded —
// the pending copy is newer.
func (l *Log) restoreBatch(batch []PageImage) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, im := range batch {
		k := imageKey{im.Kind, im.Target}
		if _, ok := l.pendingIdx[k]; ok {
			continue
		}
		l.pendingIdx[k] = len(l.pending)
		l.pending = append(l.pending, im)
	}
}

// enterThird prepares third t for overwriting: flush pages homed only
// there, then advance the anchor to the following third. Caller holds
// forceMu, so the hook sees a frozen "newest logged image per third" view
// even while other goroutines stage new updates.
func (l *Log) enterThird(t int) error {
	l.mu.Lock()
	l.stats.ThirdCrossings++
	l.mu.Unlock()
	if l.FlushHook != nil {
		// The hook calls back into the page cache, which may not
		// re-enter the log; release is unnecessary because the cache
		// writes home pages directly to disk.
		n, err := l.FlushHook(t)
		if err != nil {
			return err
		}
		l.mu.Lock()
		l.stats.HomeFlushes += n
		l.mu.Unlock()
	}
	// Third t's content has been flushed home, so its records are no
	// longer needed. The new oldest valid record is the earliest
	// (lowest-numbered) first record among the remaining thirds; if no
	// other third holds data, it is the record about to be written at
	// the start of t.
	l.thirdFirst[t] = 0
	best := -1
	for c := 0; c < l.thirds(); c++ {
		if c == t || l.thirdFirst[c] == 0 {
			continue
		}
		if best < 0 || l.thirdFirst[c] < l.thirdFirst[best] {
			best = c
		}
	}
	a := anchor{bootCount: l.bootCount}
	if best < 0 {
		a.offset = uint32(t * l.thirdLen())
		a.recordNum = l.recordNum
	} else {
		a.offset = uint32(best * l.thirdLen())
		a.recordNum = l.thirdFirst[best]
	}
	return l.writeAnchor(a)
}

func (l *Log) encodeHeader(images []PageImage, endOfBatch bool) []byte {
	buf := make([]byte, disk.SectorSize)
	binary.BigEndian.PutUint32(buf[0:], recMagic)
	binary.BigEndian.PutUint64(buf[4:], l.recordNum)
	binary.BigEndian.PutUint32(buf[12:], l.bootCount)
	binary.BigEndian.PutUint16(buf[16:], uint16(len(images)))
	if endOfBatch {
		buf[18] = 1
	}
	// buf[19] reserved; crc over the descriptor area fills 20:24.
	for i, im := range images {
		off := hdrFixed + i*descSize
		buf[off] = im.Kind
		binary.BigEndian.PutUint32(buf[off+1:], uint32(im.Target))
		binary.BigEndian.PutUint32(buf[off+5:], crc32.ChecksumIEEE(im.Data))
	}
	binary.BigEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[hdrFixed:]))
	return buf
}

func (l *Log) encodeEnd() []byte {
	buf := make([]byte, disk.SectorSize)
	binary.BigEndian.PutUint32(buf[0:], recMagic+1)
	binary.BigEndian.PutUint64(buf[4:], l.recordNum)
	binary.BigEndian.PutUint32(buf[12:], l.bootCount)
	return buf
}

type header struct {
	recordNum  uint64
	bootCount  uint32
	n          int
	endOfBatch bool
	descs      []PageImage // Data unset; Kind/Target filled, crc in crcs
	crcs       []uint32
}

func decodeHeader(buf []byte) (header, bool) {
	if binary.BigEndian.Uint32(buf[0:]) != recMagic {
		return header{}, false
	}
	h := header{
		recordNum:  binary.BigEndian.Uint64(buf[4:]),
		bootCount:  binary.BigEndian.Uint32(buf[12:]),
		n:          int(binary.BigEndian.Uint16(buf[16:])),
		endOfBatch: buf[18] == 1,
	}
	if h.n <= 0 || h.n > MaxImagesPerRecord {
		return header{}, false
	}
	if binary.BigEndian.Uint32(buf[20:]) != crc32.ChecksumIEEE(buf[hdrFixed:]) {
		return header{}, false
	}
	for i := 0; i < h.n; i++ {
		off := hdrFixed + i*descSize
		h.descs = append(h.descs, PageImage{
			Kind:   buf[off],
			Target: uint64(binary.BigEndian.Uint32(buf[off+1:])),
		})
		h.crcs = append(h.crcs, binary.BigEndian.Uint32(buf[off+5:]))
	}
	return h, true
}

func (l *Log) validEnd(buf []byte, rec uint64, boot uint32) bool {
	return binary.BigEndian.Uint32(buf[0:]) == recMagic+1 &&
		binary.BigEndian.Uint64(buf[4:]) == rec &&
		binary.BigEndian.Uint32(buf[12:]) == boot
}
