package unixfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func testConfig() Config {
	return Config{CylindersPerGroup: 13, InodesPerGroup: 128, CacheBlocks: 64}
}

func newTestFS(t *testing.T) (*FS, *disk.Disk) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(d, testConfig())
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return fs, d
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestCreateReadRoundTrip(t *testing.T) {
	fs, _ := newTestFS(t)
	data := payload(10000, 3)
	if err := fs.Create("/etc/passwd", nil); err == nil {
		t.Fatal("create under missing dir succeeded")
	}
	if err := fs.MkDir("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/etc/passwd", data); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := fs.ReadAll("/etc/passwd")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents mismatch")
	}
}

func TestCreateInRoot(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/hello", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat("/hello")
	if err != nil || st.Size != 100 {
		t.Fatalf("Stat: %+v %v", st, err)
	}
}

func TestCreateExisting(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/a", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestCreateDoesSynchronousMetadataWrites(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.MkDir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/dir/warm", payload(100, 0)); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if err := fs.Create("/dir/f", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(before)
	// inode write + data block + dir block + dir inode: ~3 metadata
	// writes per create, matching Table 4's 308 I/Os per 100 creates.
	if delta.Writes < 3 {
		t.Fatalf("create did %d writes, want >= 3 (sync metadata)", delta.Writes)
	}
}

func TestHundredCreatesMatchTable4Shape(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.MkDir("/dir"); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	for i := 0; i < 100; i++ {
		if err := fs.Create(fmt.Sprintf("/dir/f%03d", i), payload(512, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	ops := d.Stats().Ops
	// Paper Table 4: 308 I/Os for 100 small creates. Allow a band.
	if ops < 250 || ops > 450 {
		t.Fatalf("100 creates cost %d I/Os; expected ~300 (Table 4 shape)", ops)
	}
}

func TestInodesShareBlocks(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.MkDir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := fs.Create(fmt.Sprintf("/d/f%02d", i), payload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	fs.DropCaches()
	d.ResetStats()
	if _, err := fs.List("/d"); err != nil {
		t.Fatal(err)
	}
	reads := d.Stats().Reads
	// 50 inodes at 32 per block: a handful of reads, not 50 ("a disk
	// read fetches several inodes").
	if reads > 12 {
		t.Fatalf("ls -l of 50 files did %d reads; inodes should share blocks", reads)
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	fs, _ := newTestFS(t)
	// Materialize the root directory block first so the measurement only
	// sees the file's own blocks.
	if err := fs.Create("/anchor", nil); err != nil {
		t.Fatal(err)
	}
	free0 := fs.FreeBlocks()
	if err := fs.Create("/big", payload(20*BlockSize, 1)); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() >= free0 {
		t.Fatal("create did not consume blocks")
	}
	if err := fs.Unlink("/big"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free0 {
		t.Fatalf("unlink leaked: %d != %d", fs.FreeBlocks(), free0)
	}
	if _, err := fs.ReadAll("/big"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after unlink: %v", err)
	}
}

func TestIndirectBlocks(t *testing.T) {
	fs, _ := newTestFS(t)
	// > 12 blocks forces the indirect block.
	data := payload(20*BlockSize+123, 7)
	if err := fs.Create("/indirect", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/indirect")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("indirect round trip: %v", err)
	}
}

func TestNestedDirectories(t *testing.T) {
	fs, _ := newTestFS(t)
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := fs.MkDir(p); err != nil {
			t.Fatalf("MkDir %s: %v", p, err)
		}
	}
	if err := fs.Create("/a/b/c/leaf", payload(10, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/a/b/c/leaf")
	if err != nil || len(got) != 10 {
		t.Fatal(err)
	}
	entries, err := fs.List("/a/b")
	if err != nil || len(entries) != 1 || !entries[0].IsDir {
		t.Fatalf("List /a/b: %v %v", entries, err)
	}
}

func TestDirectoriesSpreadAcrossGroups(t *testing.T) {
	fs, _ := newTestFS(t)
	if fs.Groups() < 2 {
		t.Skip("volume too small for multiple groups")
	}
	if err := fs.MkDir("/d1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkDir("/d2"); err != nil {
		t.Fatal(err)
	}
	// Files land in their directory's group.
	if err := fs.Create("/d1/f", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/d2/f", payload(100, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestMountRequiresFsckAfterCrash(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.Create("/x", payload(10, 1)); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	d.Revive()
	if _, err := Mount(d, testConfig()); !errors.Is(err, ErrNotClean) {
		t.Fatalf("mount after crash: %v", err)
	}
}

func TestCleanUnmountRemount(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.Create("/keep", payload(777, 5)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(d, testConfig())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	got, err := fs2.ReadAll("/keep")
	if err != nil || len(got) != 777 {
		t.Fatalf("file lost across remount: %v", err)
	}
}

func TestFsckRecoversAfterCrash(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.MkDir("/work"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := fs.Create(fmt.Sprintf("/work/f%02d", i), payload(500, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	fs.Crash()
	d.Revive()
	fs2, st, err := Fsck(d, testConfig())
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if st.FilesFound != 20 || st.DirsFound != 2 {
		t.Fatalf("fsck found %d files %d dirs", st.FilesFound, st.DirsFound)
	}
	if st.Elapsed == 0 || st.InodesChecked == 0 {
		t.Fatalf("implausible fsck stats: %+v", st)
	}
	for i := 0; i < 20; i++ {
		got, err := fs2.ReadAll(fmt.Sprintf("/work/f%02d", i))
		if err != nil || !bytes.Equal(got, payload(500, byte(i))) {
			t.Fatalf("f%02d corrupted after fsck: %v", i, err)
		}
	}
}

func TestFsckClearsDanglingEntry(t *testing.T) {
	fs, d := newTestFS(t)
	if err := fs.Create("/dangling", payload(10, 1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash window: zero the inode behind the fs's back
	// (wild write), leaving the directory entry dangling.
	_, blk, off := fs.inodeLoc(func() int {
		inum, _, _, _, _, _ := fs.resolve("/dangling")
		return inum
	}())
	buf, _ := fs.cache.read(blk)
	smashed := make([]byte, BlockSize)
	copy(smashed, buf)
	for i := 0; i < InodeSize; i++ {
		smashed[off+i] = 0
	}
	d.SmashSector(blk*BlockSectors+off/disk.SectorSize, smashed[(off/disk.SectorSize)*disk.SectorSize:(off/disk.SectorSize+1)*disk.SectorSize], nil)
	fs.Crash()
	d.Revive()
	_, st, err := Fsck(d, testConfig())
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if st.BadEntries == 0 {
		t.Fatal("fsck missed the dangling directory entry")
	}
}

func TestRotationalGapCapsBandwidth(t *testing.T) {
	// With the 4.2 BSD rotational gap, sequential transfer uses at most
	// ~55% of raw bandwidth; contiguous allocation (FSD-style) exceeds it.
	measure := func(cfg Config) float64 {
		clk := sim.NewVirtualClock()
		d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		fs, err := Format(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.ResetStats()
		if err := fs.Create("/seq", payload(100*BlockSize, 1)); err != nil {
			t.Fatal(err)
		}
		fs.DropCaches()
		d.ResetStats()
		t0 := clk.Now()
		if _, err := fs.ReadAll("/seq"); err != nil {
			t.Fatal(err)
		}
		elapsed := clk.Now() - t0
		st := d.Stats()
		return float64(st.TransferTime) / float64(elapsed)
	}
	gapBW := measure(Config{CylindersPerGroup: 13, InodesPerGroup: 128, CacheBlocks: 64})
	contigBW := measure(Config{CylindersPerGroup: 13, InodesPerGroup: 128, CacheBlocks: 64, Contiguous: true})
	// The rotational gap hides the per-block CPU time: ~half bandwidth,
	// as in Table 5 (47%).
	if gapBW < 0.30 || gapBW > 0.60 {
		t.Fatalf("gapped bandwidth fraction %.2f, want ~0.47 (Table 5 shape)", gapBW)
	}
	// Contiguous allocation with block-at-a-time I/O is WORSE: the CPU
	// work makes the head miss the adjacent block every time — the
	// pathology rotational delay exists to fix.
	if contigBW >= gapBW {
		t.Fatalf("contiguous block-at-a-time (%.2f) should lose a revolution per block vs gapped (%.2f)", contigBW, gapBW)
	}
}

func TestPathValidation(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/a/../b", nil); err == nil {
		t.Fatal(".. accepted")
	}
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'x'
	}
	if err := fs.Create("/"+string(long), nil); err == nil {
		t.Fatal("overlong name accepted")
	}
}

func TestListRoot(t *testing.T) {
	fs, _ := newTestFS(t)
	fs.Create("/a", nil)
	fs.Create("/b", payload(100, 1))
	fs.MkDir("/c")
	entries, err := fs.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List / = %v", entries)
	}
	if entries[0].Name != "a" || entries[2].Name != "c" || !entries[2].IsDir {
		t.Fatalf("List / = %v", entries)
	}
}

func TestAccessors(t *testing.T) {
	fs, d := newTestFS(t)
	if fs.CPU() == nil || fs.Disk() != d {
		t.Fatal("accessors wrong")
	}
}
