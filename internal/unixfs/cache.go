package unixfs

// blockCache is the buffer cache: reads are cached; writes are synchronous
// write-through (metadata) — 4.3 BSD's consistency discipline, which is
// exactly the cost logging avoids in FSD.
type blockCache struct {
	fs    *FS
	cap   int
	seq   uint64
	cache map[int]*cachedBlock

	Hits, Misses, Writes int
}

type cachedBlock struct {
	data []byte
	seq  uint64
}

func newBlockCache(fs *FS, capacity int) *blockCache {
	return &blockCache{fs: fs, cap: capacity, cache: make(map[int]*cachedBlock)}
}

// read returns the cached block, loading it with one block I/O on a miss.
// The returned slice is the cache's buffer: callers may modify it only if
// they follow with writeThrough.
func (c *blockCache) read(blk int) ([]byte, error) {
	if b, ok := c.cache[blk]; ok {
		c.Hits++
		c.seq++
		b.seq = c.seq
		return b.data, nil
	}
	c.Misses++
	data, err := c.fs.d.ReadSectors(blk*BlockSectors, BlockSectors)
	if err != nil {
		return nil, err
	}
	c.insert(blk, data)
	return data, nil
}

// writeThrough writes the block synchronously and caches it.
func (c *blockCache) writeThrough(blk int, data []byte) error {
	c.Writes++
	if err := c.fs.d.WriteSectors(blk*BlockSectors, data); err != nil {
		return err
	}
	if b, ok := c.cache[blk]; ok {
		if &b.data[0] != &data[0] {
			copy(b.data, data)
		}
		return nil
	}
	cp := make([]byte, BlockSize)
	copy(cp, data)
	c.insert(blk, cp)
	return nil
}

func (c *blockCache) insert(blk int, data []byte) {
	c.seq++
	c.cache[blk] = &cachedBlock{data: data, seq: c.seq}
	if len(c.cache) <= c.cap {
		return
	}
	var victim int
	var oldest uint64 = ^uint64(0)
	for k, b := range c.cache {
		if b.seq < oldest {
			oldest, victim = b.seq, k
		}
	}
	delete(c.cache, victim)
}

// invalidate drops one block.
func (c *blockCache) invalidate(blk int) { delete(c.cache, blk) }

// drop empties the cache.
func (c *blockCache) drop() { c.cache = make(map[int]*cachedBlock) }
