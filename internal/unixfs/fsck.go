package unixfs

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Per-object fsck CPU costs on the VAX-11/785 class machine ("PARC's
// VAX-11/785 recovers in about seven minutes using fsck").
const (
	fsckInodeCPU = 8 * time.Millisecond
	fsckEntryCPU = 2 * time.Millisecond
)

// FsckStats reports the cost and findings of a consistency check.
type FsckStats struct {
	InodesChecked   int
	FilesFound      int
	DirsFound       int
	EntriesChecked  int
	BlocksReclaimed int
	BadEntries      int
	Elapsed         time.Duration
}

// Fsck checks and repairs the file system after an unclean shutdown,
// returning it mounted. Like the real tool it walks every inode (phase 1),
// every directory (phase 2), verifies connectivity and link counts, and
// rebuilds the free-block bitmaps — full-disk-proportional work, which is
// the point of the paper's comparison with FSD's log replay.
func Fsck(d *disk.Disk, cfg Config) (*FS, FsckStats, error) {
	var st FsckStats
	clk := d.Clock()
	start := clk.Now()

	// Read superblock parameters without requiring the clean flag.
	buf, err := d.ReadSectors(0, BlockSectors)
	if err != nil {
		return nil, st, err
	}
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != sbMagic {
		return nil, st, fmt.Errorf("unixfs: bad superblock")
	}
	cfg.InodesPerGroup = int(be.Uint32(buf[8:]))
	cfg.CylindersPerGroup = int(be.Uint32(buf[12:]))
	fs, err := rebuild(d, cfg)
	if err != nil {
		return nil, st, err
	}

	// Phase 1: walk every inode, collecting block usage.
	used := make(map[int]bool)
	inodeModes := make(map[int]uint16)
	linkCounts := make(map[int]int)
	for inum := 0; inum < fs.ninodes; inum++ {
		ino, err := fs.readInode(inum)
		if err != nil {
			return nil, st, err
		}
		st.InodesChecked++
		fs.cpu.Charge(fsckInodeCPU)
		if ino.Mode == modeFree {
			continue
		}
		inodeModes[inum] = ino.Mode
		if ino.Mode == modeDir {
			st.DirsFound++
		} else {
			st.FilesFound++
		}
		nblocks := int((ino.Size + BlockSize - 1) / BlockSize)
		for b := 0; b < nblocks; b++ {
			blk, err := fs.inodeBlockNo(&ino, b)
			if err == nil && blk != 0 {
				used[blk] = true
			}
		}
		if ino.Indirect != 0 {
			used[int(ino.Indirect)] = true
		}
	}

	// Phase 2: walk every directory, checking entries.
	for inum, mode := range inodeModes {
		if mode != modeDir {
			continue
		}
		ino, err := fs.readInode(inum)
		if err != nil {
			return nil, st, err
		}
		blocks := int((ino.Size + BlockSize - 1) / BlockSize)
		for b := 0; b < blocks; b++ {
			blk, err := fs.inodeBlockNo(&ino, b)
			if err != nil {
				continue
			}
			data, err := fs.cache.read(blk)
			if err != nil {
				// Damaged directory block: entries in it are lost.
				st.BadEntries++
				continue
			}
			for off := 0; off+dirEntSize <= BlockSize; off += dirEntSize {
				child := int(binary.BigEndian.Uint32(data[off:]))
				if child == 0 {
					continue
				}
				st.EntriesChecked++
				fs.cpu.Charge(fsckEntryCPU)
				if _, ok := inodeModes[child]; !ok && child != RootInum {
					// Dangling entry: clear it.
					st.BadEntries++
					binary.BigEndian.PutUint32(data[off:], 0)
					if err := fs.cache.writeThrough(blk, data); err != nil {
						return nil, st, err
					}
					continue
				}
				linkCounts[child]++
			}
		}
	}

	// Phase 3: rebuild the free bitmaps from the usage map.
	for gi := range fs.groups {
		grp := &fs.groups[gi]
		grp.freeBlocks = 0
		for i := range grp.freeBitmap {
			grp.freeBitmap[i] = 0
		}
		for b := grp.dataBlock - grp.firstBlock; b < grp.nblocks; b++ {
			blk := grp.firstBlock + b
			if !used[blk] {
				if !fs.isFreeInGroup(gi, b) {
					st.BlocksReclaimed++
				}
				grp.freeBitmap[b/64] |= 1 << (b % 64)
				grp.freeBlocks++
			}
		}
		if err := fs.writeBitmap(gi); err != nil {
			return nil, st, err
		}
	}
	if err := fs.writeSuper(false); err != nil {
		return nil, st, err
	}
	st.Elapsed = clk.Now() - start
	return fs, st, nil
}

// isFreeInGroup is a helper for the reclaim counter (pre-rebuild state is
// gone by phase 3, so this is approximate; the counter is informational).
func (fs *FS) isFreeInGroup(gi, b int) bool {
	grp := &fs.groups[gi]
	return grp.freeBitmap[b/64]&(1<<(b%64)) != 0
}

var _ = disk.SectorSize
var _ = sim.CostSyscall
