package unixfs

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Directory entries are fixed 64-byte slots: inum u32 | name (NUL-padded).
const dirEntSize = 64

// blockCPU is the per-block CPU cost of the read path (buffer management
// plus copyout) on the VAX-class machine of Table 5.
const blockCPU = BlockSectors*sim.CostPerSectorCopy + 2*time.Millisecond

// writeBlockCPU is the per-block CPU cost of the write path (block
// allocation, bitmap update, copyin) — the reason 4.2 BSD writes ran at
// 95% CPU.
const writeBlockCPU = BlockSectors*sim.CostPerSectorCopy + 5500*time.Microsecond

func (fs *FS) begin() error {
	if fs.closed {
		return fmt.Errorf("unixfs: unmounted")
	}
	fs.cpu.Charge(sim.CostSyscall)
	return nil
}

// lookup finds name in the directory inode dirIno.
func (fs *FS) lookup(dirInum int, dirIno *Inode, name string) (int, error) {
	if dirIno.Mode != modeDir {
		return 0, ErrNotDir
	}
	blocks := int((dirIno.Size + BlockSize - 1) / BlockSize)
	for b := 0; b < blocks; b++ {
		blk, err := fs.inodeBlockNo(dirIno, b)
		if err != nil {
			return 0, err
		}
		buf, err := fs.cache.read(blk)
		if err != nil {
			return 0, err
		}
		for off := 0; off+dirEntSize <= BlockSize; off += dirEntSize {
			inum := int(binary.BigEndian.Uint32(buf[off:]))
			if inum == 0 {
				continue
			}
			if entName(buf[off:]) == name {
				return inum, nil
			}
		}
	}
	return 0, ErrNotFound
}

func entName(ent []byte) string {
	n := ent[4 : 4+60]
	for i, c := range n {
		if c == 0 {
			return string(n[:i])
		}
	}
	return string(n)
}

// inodeBlockNo maps a file-relative block index to a disk block number.
func (fs *FS) inodeBlockNo(ino *Inode, i int) (int, error) {
	if i < NDirect {
		return int(ino.Direct[i]), nil
	}
	i -= NDirect
	if i >= PtrsPerBlock || ino.Indirect == 0 {
		return 0, fmt.Errorf("unixfs: block index out of range")
	}
	buf, err := fs.cache.read(int(ino.Indirect))
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint32(buf[4*i:])), nil
}

// resolve walks a path to (inum, inode). The parent return values support
// create/unlink.
func (fs *FS) resolve(path string) (inum int, ino Inode, parentInum int, parent Inode, last string, err error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, Inode{}, 0, Inode{}, "", err
	}
	inum = RootInum
	ino, err = fs.readInode(inum)
	if err != nil {
		return
	}
	parentInum, parent = inum, ino
	for i, p := range parts {
		last = p
		parentInum, parent = inum, ino
		child, lerr := fs.lookup(inum, &ino, p)
		if lerr != nil {
			if i == len(parts)-1 {
				// Parent resolved; leaf missing.
				return 0, Inode{}, parentInum, parent, p, lerr
			}
			// An intermediate component is missing: wrap so callers
			// that treat a bare ErrNotFound as "creatable leaf" do
			// not create the file under the wrong parent.
			err = fmt.Errorf("unixfs: %q: intermediate component %q: %w", path, p, lerr)
			return
		}
		inum = child
		ino, err = fs.readInode(inum)
		if err != nil {
			return
		}
		fs.cpu.Charge(sim.CostBTreeOp / 4) // name comparison and walk
	}
	if len(parts) == 0 {
		last = ""
	}
	return
}

// MkDir creates a directory. New directories go to the emptiest cylinder
// group, spreading the tree across the disk as FFS does.
func (fs *FS) MkDir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.begin(); err != nil {
		return err
	}
	_, _, parentInum, parent, name, err := fs.resolve(path)
	if err == nil {
		return ErrExists
	}
	if err != ErrNotFound {
		return err
	}
	best := 0
	for gi := range fs.groups {
		if fs.groups[gi].freeInodes > fs.groups[best].freeInodes {
			best = gi
		}
	}
	inum, err := fs.allocInode(best, modeDir)
	if err != nil {
		return err
	}
	ino := Inode{Mode: modeDir, Nlink: 2, Mtime: fs.clk.Now()}
	if err := fs.writeInode(inum, &ino); err != nil {
		return err
	}
	return fs.addEntry(parentInum, &parent, name, inum)
}

// addEntry inserts (name, inum) into a directory, growing it if needed,
// with synchronous writes of the directory block and the directory inode.
func (fs *FS) addEntry(dirInum int, dirIno *Inode, name string, inum int) error {
	blocks := int((dirIno.Size + BlockSize - 1) / BlockSize)
	for b := 0; b < blocks; b++ {
		blk, err := fs.inodeBlockNo(dirIno, b)
		if err != nil {
			return err
		}
		buf, err := fs.cache.read(blk)
		if err != nil {
			return err
		}
		for off := 0; off+dirEntSize <= BlockSize; off += dirEntSize {
			if binary.BigEndian.Uint32(buf[off:]) != 0 {
				continue
			}
			writeEnt(buf[off:], inum, name)
			if err := fs.cache.writeThrough(blk, buf); err != nil {
				return err
			}
			dirIno.Mtime = fs.clk.Now()
			return fs.writeInode(dirInum, dirIno)
		}
	}
	// Grow the directory by one block.
	if blocks >= NDirect {
		return fmt.Errorf("unixfs: directory too large")
	}
	nb, err := fs.allocBlock(fs.groupOf(dirInum))
	if err != nil {
		return err
	}
	buf := make([]byte, BlockSize)
	writeEnt(buf, inum, name)
	if err := fs.cache.writeThrough(nb, buf); err != nil {
		return err
	}
	dirIno.Direct[blocks] = uint32(nb)
	dirIno.Size = uint64(blocks+1) * BlockSize
	dirIno.Mtime = fs.clk.Now()
	return fs.writeInode(dirInum, dirIno)
}

func writeEnt(ent []byte, inum int, name string) {
	binary.BigEndian.PutUint32(ent, uint32(inum))
	for i := 0; i < 60; i++ {
		ent[4+i] = 0
	}
	copy(ent[4:], name)
}

// removeEntry deletes name from a directory.
func (fs *FS) removeEntry(dirInum int, dirIno *Inode, name string) error {
	blocks := int((dirIno.Size + BlockSize - 1) / BlockSize)
	for b := 0; b < blocks; b++ {
		blk, err := fs.inodeBlockNo(dirIno, b)
		if err != nil {
			return err
		}
		buf, err := fs.cache.read(blk)
		if err != nil {
			return err
		}
		for off := 0; off+dirEntSize <= BlockSize; off += dirEntSize {
			if binary.BigEndian.Uint32(buf[off:]) == 0 || entName(buf[off:]) != name {
				continue
			}
			binary.BigEndian.PutUint32(buf[off:], 0)
			if err := fs.cache.writeThrough(blk, buf); err != nil {
				return err
			}
			dirIno.Mtime = fs.clk.Now()
			return fs.writeInode(dirInum, dirIno)
		}
	}
	return ErrNotFound
}

// Create writes a new file. 4.3 BSD ordering: allocate and write the inode
// synchronously, write the data blocks one block per I/O, then write the
// directory entry and directory inode synchronously.
func (fs *FS) Create(path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.begin(); err != nil {
		return err
	}
	_, _, parentInum, parent, name, err := fs.resolve(path)
	if err == nil {
		return ErrExists
	}
	if err != ErrNotFound {
		return err
	}
	if name == "" {
		return fmt.Errorf("unixfs: empty file name")
	}
	// Inode in the directory's cylinder group.
	inum, err := fs.allocInode(fs.groupOf(parentInum), modeFile)
	if err != nil {
		return err
	}
	ino := Inode{Mode: modeFile, Nlink: 1, Size: uint64(len(data)), Mtime: fs.clk.Now()}
	nblocks := (len(data) + BlockSize - 1) / BlockSize
	var indirect []byte
	for b := 0; b < nblocks; b++ {
		blk, err := fs.allocBlock(fs.groupOf(inum))
		if err != nil {
			return err
		}
		chunk := make([]byte, BlockSize)
		copy(chunk, data[b*BlockSize:min(len(data), (b+1)*BlockSize)])
		fs.cpu.Charge(writeBlockCPU)
		if err := fs.cache.writeThrough(blk, chunk); err != nil {
			return err
		}
		if b < NDirect {
			ino.Direct[b] = uint32(blk)
		} else {
			if indirect == nil {
				ib, err := fs.allocBlock(fs.groupOf(inum))
				if err != nil {
					return err
				}
				ino.Indirect = uint32(ib)
				indirect = make([]byte, BlockSize)
			}
			binary.BigEndian.PutUint32(indirect[4*(b-NDirect):], uint32(blk))
		}
	}
	if indirect != nil {
		if err := fs.cache.writeThrough(int(ino.Indirect), indirect); err != nil {
			return err
		}
	}
	// Synchronous inode write before the create returns.
	if err := fs.writeInode(inum, &ino); err != nil {
		return err
	}
	return fs.addEntry(parentInum, &parent, name, inum)
}

// Stat returns the inode for a path.
func (fs *FS) Stat(path string) (Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.begin(); err != nil {
		return Inode{}, err
	}
	_, ino, _, _, _, err := fs.resolve(path)
	return ino, err
}

// ReadAll returns a file's contents, one block per I/O through the buffer
// cache.
func (fs *FS) ReadAll(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.begin(); err != nil {
		return nil, err
	}
	_, ino, _, _, _, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if ino.Mode != modeFile {
		return nil, ErrIsDir
	}
	out := make([]byte, 0, ino.Size)
	nblocks := int((ino.Size + BlockSize - 1) / BlockSize)
	for b := 0; b < nblocks; b++ {
		blk, err := fs.inodeBlockNo(&ino, b)
		if err != nil {
			return nil, err
		}
		buf, err := fs.cache.read(blk)
		if err != nil {
			return nil, err
		}
		fs.cpu.Charge(blockCPU)
		out = append(out, buf...)
	}
	return out[:ino.Size], nil
}

// Unlink removes a file, freeing its blocks and inode.
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.begin(); err != nil {
		return err
	}
	inum, ino, parentInum, parent, name, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if ino.Mode == modeDir {
		return ErrIsDir
	}
	nblocks := int((ino.Size + BlockSize - 1) / BlockSize)
	for b := 0; b < nblocks; b++ {
		blk, err := fs.inodeBlockNo(&ino, b)
		if err == nil && blk != 0 {
			fs.freeBlock(blk)
		}
	}
	if ino.Indirect != 0 {
		fs.freeBlock(int(ino.Indirect))
		fs.cache.invalidate(int(ino.Indirect))
	}
	gi := fs.groupOf(inum)
	// Free the inode (synchronous write of its block) and the bitmap.
	dead := Inode{}
	if err := fs.writeInode(inum, &dead); err != nil {
		return err
	}
	fs.groups[gi].freeInodes++
	if err := fs.writeBitmap(gi); err != nil {
		return err
	}
	return fs.removeEntry(parentInum, &parent, name)
}

// DirEntry is one List result.
type DirEntry struct {
	Name  string
	Size  uint64
	IsDir bool
}

// List enumerates a directory "ls -l"-style: the directory blocks plus the
// inode of every entry (inode blocks amortize across entries in the same
// group).
func (fs *FS) List(path string) ([]DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.begin(); err != nil {
		return nil, err
	}
	_, ino, _, _, _, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if ino.Mode != modeDir {
		return nil, ErrNotDir
	}
	found := map[string]int{}
	blocks := int((ino.Size + BlockSize - 1) / BlockSize)
	for b := 0; b < blocks; b++ {
		blk, err := fs.inodeBlockNo(&ino, b)
		if err != nil {
			return nil, err
		}
		buf, err := fs.cache.read(blk)
		if err != nil {
			return nil, err
		}
		for off := 0; off+dirEntSize <= BlockSize; off += dirEntSize {
			if inum := int(binary.BigEndian.Uint32(buf[off:])); inum != 0 {
				found[entName(buf[off:])] = inum
			}
		}
	}
	var out []DirEntry
	for _, name := range sortedDirNames(found) {
		child, err := fs.readInode(found[name])
		if err != nil {
			return nil, err
		}
		fs.cpu.Charge(sim.CostBTreeOp / 8)
		out = append(out, DirEntry{Name: name, Size: child.Size, IsDir: child.Mode == modeDir})
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = disk.SectorSize // keep the import for the shared constant
