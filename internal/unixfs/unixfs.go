// Package unixfs implements a 4.2/4.3 BSD FFS-like file system, the
// comparison system of Tables 4 and 5 of the paper.
//
// It has the structural features the comparison depends on: cylinder
// groups, inodes colocated with their directory's group, 4 KB blocks
// transferred one block per I/O, rotational-gap block allocation (the 4.2
// BSD behaviour that caps sequential bandwidth near 50%), synchronous
// writes of inodes and directories on create ("a file create in UNIX writes
// the inode to disk before returning"), and an fsck that walks every inode
// and directory. It does not double-write anything — the paper notes 4.3
// BSD "is doing less work for a create than FSD".
package unixfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Geometry of the file system.
const (
	BlockSectors   = 8 // 4 KB blocks
	BlockSize      = BlockSectors * disk.SectorSize
	InodeSize      = 128
	InodesPerBlock = BlockSize / InodeSize
	NDirect        = 12
	PtrsPerBlock   = BlockSize / 4

	RootInum = 2
)

// Errors.
var (
	ErrNotFound = errors.New("unixfs: no such file or directory")
	ErrExists   = errors.New("unixfs: file exists")
	ErrNotDir   = errors.New("unixfs: not a directory")
	ErrIsDir    = errors.New("unixfs: is a directory")
	ErrNoSpace  = errors.New("unixfs: out of space")
	ErrNotClean = errors.New("unixfs: file system not cleanly unmounted; run fsck")
)

// Config parameterizes the file system.
type Config struct {
	// CylindersPerGroup sets cylinder-group size. Zero means 52.
	CylindersPerGroup int
	// InodesPerGroup sets inode-table size per group. Zero means 512.
	InodesPerGroup int
	// RotGap is the sector gap the allocator leaves between consecutive
	// blocks of a file, modelling 4.2 BSD's rotational delay. The gap
	// lets the CPU finish per-block work before the next block arrives
	// under the head — at the price of capping bandwidth near 50%.
	// Zero means 8 (one block). Set Contiguous for gap 0.
	RotGap int
	// Contiguous allocates blocks back-to-back (no rotational gap).
	Contiguous bool
	// CacheBlocks is the buffer-cache capacity. Zero means 256 (1 MB).
	CacheBlocks int
}

func (c Config) cpg() int {
	if c.CylindersPerGroup == 0 {
		return 52
	}
	return c.CylindersPerGroup
}

func (c Config) ipg() int {
	if c.InodesPerGroup == 0 {
		return 512
	}
	return c.InodesPerGroup
}

func (c Config) rotGap() int {
	if c.Contiguous {
		return 0
	}
	if c.RotGap == 0 {
		return 8
	}
	return c.RotGap
}

func (c Config) cacheBlocks() int {
	if c.CacheBlocks == 0 {
		return 256
	}
	return c.CacheBlocks
}

// Mode values.
const (
	modeFree uint16 = 0
	modeFile uint16 = 1
	modeDir  uint16 = 2
)

// Inode is the in-memory form of an on-disk inode.
type Inode struct {
	Mode     uint16
	Nlink    uint16
	Size     uint64
	Mtime    time.Duration
	Direct   [NDirect]uint32
	Indirect uint32
}

func (ino *Inode) encode(buf []byte) {
	be := binary.BigEndian
	be.PutUint16(buf[0:], ino.Mode)
	be.PutUint16(buf[2:], ino.Nlink)
	be.PutUint64(buf[4:], ino.Size)
	be.PutUint64(buf[12:], uint64(ino.Mtime))
	for i, b := range ino.Direct {
		be.PutUint32(buf[20+4*i:], b)
	}
	be.PutUint32(buf[20+4*NDirect:], ino.Indirect)
}

func decodeInode(buf []byte) Inode {
	be := binary.BigEndian
	var ino Inode
	ino.Mode = be.Uint16(buf[0:])
	ino.Nlink = be.Uint16(buf[2:])
	ino.Size = be.Uint64(buf[4:])
	ino.Mtime = time.Duration(be.Uint64(buf[12:]))
	for i := range ino.Direct {
		ino.Direct[i] = be.Uint32(buf[20+4*i:])
	}
	ino.Indirect = be.Uint32(buf[20+4*NDirect:])
	return ino
}

// group describes one cylinder group's layout (all in block numbers).
type group struct {
	firstBlock  int // first block of the group
	inodeBlock  int // first inode-table block
	bitmapBlock int
	dataBlock   int // first data block
	nblocks     int // total blocks in group

	freeBitmap []uint64 // in-memory mirror; bit set = block free
	lastAlloc  int      // rotational allocation cursor (block index in group)
	freeBlocks int
	freeInodes int
}

// FS is a mounted unixfs volume.
type FS struct {
	d   *disk.Disk
	clk sim.Clock
	cpu *sim.CPU
	cfg Config

	mu      sync.Mutex
	groups  []group
	ninodes int
	cache   *blockCache
	closed  bool
	clean   bool
}

// CPU returns the simulated CPU.
func (fs *FS) CPU() *sim.CPU { return fs.cpu }

// Disk returns the device.
func (fs *FS) Disk() *disk.Disk { return fs.d }

const sbMagic = 0x42534446 // "BSDF"

// Format initializes the file system and returns it mounted.
func Format(d *disk.Disk, cfg Config) (*FS, error) {
	fs := &FS{d: d, clk: d.Clock(), cpu: sim.NewCPU(d.Clock()), cfg: cfg}
	fs.cache = newBlockCache(fs, cfg.cacheBlocks())
	g := d.Geometry()
	blocksTotal := g.Sectors() / BlockSectors
	blocksPerGroup := g.SectorsPerTrack * g.TracksPerCylinder * cfg.cpg() / BlockSectors
	if blocksPerGroup < 8 {
		return nil, fmt.Errorf("unixfs: cylinder group too small")
	}
	ngroups := (blocksTotal - 1) / blocksPerGroup
	if ngroups < 1 {
		return nil, fmt.Errorf("unixfs: volume too small")
	}
	inodeBlocks := (cfg.ipg() + InodesPerBlock - 1) / InodesPerBlock
	for gi := 0; gi < ngroups; gi++ {
		first := 1 + gi*blocksPerGroup // block 0 is the superblock
		grp := group{
			firstBlock:  first,
			inodeBlock:  first,
			bitmapBlock: first + inodeBlocks,
			dataBlock:   first + inodeBlocks + 1,
			nblocks:     blocksPerGroup,
		}
		grp.freeBitmap = make([]uint64, (blocksPerGroup+63)/64)
		for b := grp.dataBlock; b < first+blocksPerGroup; b++ {
			i := b - first
			grp.freeBitmap[i/64] |= 1 << (i % 64)
			grp.freeBlocks++
		}
		grp.freeInodes = cfg.ipg()
		fs.groups = append(fs.groups, grp)
	}
	fs.ninodes = ngroups * cfg.ipg()

	// Zero the inode tables (one write per table) and write bitmaps.
	for gi := range fs.groups {
		grp := &fs.groups[gi]
		zero := make([]byte, inodeBlocks*BlockSize)
		if err := d.WriteSectors(grp.inodeBlock*BlockSectors, zero); err != nil {
			return nil, err
		}
		if err := fs.writeBitmap(gi); err != nil {
			return nil, err
		}
	}
	// Root directory.
	rootGroup := 0
	fs.groups[rootGroup].freeInodes--
	root := Inode{Mode: modeDir, Nlink: 2, Mtime: fs.clk.Now()}
	if err := fs.writeInode(RootInum, &root); err != nil {
		return nil, err
	}
	if err := fs.writeSuper(false); err != nil {
		return nil, err
	}
	d.ResetStats()
	return fs, nil
}

func (fs *FS) writeSuper(clean bool) error {
	buf := make([]byte, BlockSize)
	be := binary.BigEndian
	be.PutUint32(buf[0:], sbMagic)
	be.PutUint32(buf[4:], uint32(len(fs.groups)))
	be.PutUint32(buf[8:], uint32(fs.cfg.ipg()))
	be.PutUint32(buf[12:], uint32(fs.cfg.cpg()))
	if clean {
		buf[16] = 1
	}
	return fs.d.WriteSectors(0, buf)
}

// Mount attaches to a formatted volume. An unclean volume needs Fsck first.
func Mount(d *disk.Disk, cfg Config) (*FS, error) {
	buf, err := d.ReadSectors(0, BlockSectors)
	if err != nil {
		return nil, err
	}
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != sbMagic {
		return nil, fmt.Errorf("unixfs: bad superblock")
	}
	cfg.InodesPerGroup = int(be.Uint32(buf[8:]))
	cfg.CylindersPerGroup = int(be.Uint32(buf[12:]))
	if buf[16] != 1 {
		return nil, ErrNotClean
	}
	fs, err := rebuild(d, cfg)
	if err != nil {
		return nil, err
	}
	return fs, fs.writeSuper(false)
}

// rebuild constructs the in-memory state by reading bitmaps and scanning
// inode allocation (cheap compared to fsck, which also validates).
func rebuild(d *disk.Disk, cfg Config) (*FS, error) {
	fs := &FS{d: d, clk: d.Clock(), cpu: sim.NewCPU(d.Clock()), cfg: cfg}
	fs.cache = newBlockCache(fs, cfg.cacheBlocks())
	g := d.Geometry()
	blocksTotal := g.Sectors() / BlockSectors
	blocksPerGroup := g.SectorsPerTrack * g.TracksPerCylinder * cfg.cpg() / BlockSectors
	ngroups := (blocksTotal - 1) / blocksPerGroup
	inodeBlocks := (cfg.ipg() + InodesPerBlock - 1) / InodesPerBlock
	for gi := 0; gi < ngroups; gi++ {
		first := 1 + gi*blocksPerGroup
		grp := group{
			firstBlock:  first,
			inodeBlock:  first,
			bitmapBlock: first + inodeBlocks,
			dataBlock:   first + inodeBlocks + 1,
			nblocks:     blocksPerGroup,
		}
		bm, err := d.ReadSectors(grp.bitmapBlock*BlockSectors, BlockSectors)
		if err != nil {
			return nil, err
		}
		grp.freeBitmap = make([]uint64, (blocksPerGroup+63)/64)
		for i := range grp.freeBitmap {
			grp.freeBitmap[i] = binary.BigEndian.Uint64(bm[i*8:])
		}
		for b := 0; b < blocksPerGroup; b++ {
			if grp.freeBitmap[b/64]&(1<<(b%64)) != 0 {
				grp.freeBlocks++
			}
		}
		fs.groups = append(fs.groups, grp)
	}
	fs.ninodes = ngroups * cfg.ipg()
	// Count free inodes by scanning the tables.
	for gi := range fs.groups {
		grp := &fs.groups[gi]
		for b := 0; b < inodeBlocks; b++ {
			blk, err := fs.cache.read(grp.inodeBlock + b)
			if err != nil {
				return nil, err
			}
			for k := 0; k < InodesPerBlock; k++ {
				ino := decodeInode(blk[k*InodeSize:])
				if ino.Mode == modeFree {
					grp.freeInodes++
				}
			}
		}
	}
	return fs, nil
}

// Unmount flushes and marks the volume clean.
func (fs *FS) Unmount() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return errors.New("unixfs: already unmounted")
	}
	for gi := range fs.groups {
		if err := fs.writeBitmap(gi); err != nil {
			return err
		}
	}
	if err := fs.writeSuper(true); err != nil {
		return err
	}
	fs.closed = true
	return nil
}

// Crash abandons the volume and halts the device.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.closed = true
	fs.d.Halt()
}

// DropCaches empties the buffer cache (for cold-cache measurements).
func (fs *FS) DropCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cache.drop()
}

func (fs *FS) writeBitmap(gi int) error {
	grp := &fs.groups[gi]
	buf := make([]byte, BlockSize)
	for i, w := range grp.freeBitmap {
		if (i+1)*8 <= len(buf) {
			binary.BigEndian.PutUint64(buf[i*8:], w)
		}
	}
	return fs.d.WriteSectors(grp.bitmapBlock*BlockSectors, buf)
}

// inodeLoc maps an inode number to (group, block, offset-in-block).
func (fs *FS) inodeLoc(inum int) (gi, blk, off int) {
	ipg := fs.cfg.ipg()
	gi = inum / ipg
	idx := inum % ipg
	inodeBlocks := (ipg + InodesPerBlock - 1) / InodesPerBlock
	_ = inodeBlocks
	blk = fs.groups[gi].inodeBlock + idx/InodesPerBlock
	off = (idx % InodesPerBlock) * InodeSize
	return gi, blk, off
}

// readInode fetches an inode through the block cache — "a disk read fetches
// several inodes", which is why reading 100 same-directory files costs only
// ~4 inode-block reads.
func (fs *FS) readInode(inum int) (Inode, error) {
	_, blk, off := fs.inodeLoc(inum)
	buf, err := fs.cache.read(blk)
	if err != nil {
		return Inode{}, err
	}
	return decodeInode(buf[off:]), nil
}

// writeInode synchronously writes the inode's block, 4.3 BSD style.
func (fs *FS) writeInode(inum int, ino *Inode) error {
	_, blk, off := fs.inodeLoc(inum)
	buf, err := fs.cache.read(blk)
	if err != nil {
		return err
	}
	ino.encode(buf[off:])
	return fs.cache.writeThrough(blk, buf)
}

// allocInode finds a free inode, preferring the given group (the directory's
// group for files; a fresh group for directories).
func (fs *FS) allocInode(prefGroup int, mode uint16) (int, error) {
	order := make([]int, 0, len(fs.groups))
	order = append(order, prefGroup)
	for gi := range fs.groups {
		if gi != prefGroup {
			order = append(order, gi)
		}
	}
	for _, gi := range order {
		if fs.groups[gi].freeInodes == 0 {
			continue
		}
		ipg := fs.cfg.ipg()
		for idx := 0; idx < ipg; idx++ {
			inum := gi*ipg + idx
			if inum == 0 || inum == 1 || inum == RootInum {
				continue
			}
			ino, err := fs.readInode(inum)
			if err != nil {
				return 0, err
			}
			if ino.Mode == modeFree {
				fs.groups[gi].freeInodes--
				return inum, nil
			}
		}
	}
	return 0, ErrNoSpace
}

// allocBlock allocates one block in the given group, leaving the configured
// rotational gap after the group's previous allocation.
func (fs *FS) allocBlock(gi int) (int, error) {
	order := make([]int, 0, len(fs.groups))
	order = append(order, gi)
	for g := range fs.groups {
		if g != gi {
			order = append(order, g)
		}
	}
	gapBlocks := (fs.cfg.rotGap() + BlockSectors - 1) / BlockSectors
	if fs.cfg.rotGap() == 0 {
		gapBlocks = 0
	}
	for _, g := range order {
		grp := &fs.groups[g]
		if grp.freeBlocks == 0 {
			continue
		}
		// Leave gapBlocks between the previous allocation and this one
		// so the block arrives under the head just as the per-block
		// CPU work finishes (4.2 BSD rotational delay).
		start := grp.lastAlloc + 1 + gapBlocks
		n := grp.nblocks
		for i := 0; i < n; i++ {
			b := (start + i) % n
			if grp.firstBlock+b < grp.dataBlock {
				continue
			}
			if grp.freeBitmap[b/64]&(1<<(b%64)) != 0 {
				grp.freeBitmap[b/64] &^= 1 << (b % 64)
				grp.freeBlocks--
				grp.lastAlloc = b
				return grp.firstBlock + b, nil
			}
		}
	}
	return 0, ErrNoSpace
}

// freeBlock returns a block to its group.
func (fs *FS) freeBlock(blk int) {
	for gi := range fs.groups {
		grp := &fs.groups[gi]
		if blk >= grp.firstBlock && blk < grp.firstBlock+grp.nblocks {
			b := blk - grp.firstBlock
			if grp.freeBitmap[b/64]&(1<<(b%64)) == 0 {
				grp.freeBitmap[b/64] |= 1 << (b % 64)
				grp.freeBlocks++
			}
			return
		}
	}
}

// groupOf returns the cylinder group containing an inode.
func (fs *FS) groupOf(inum int) int { return inum / fs.cfg.ipg() }

// splitPath cleans and splits a path.
func splitPath(path string) ([]string, error) {
	parts := []string{}
	for _, p := range strings.Split(path, "/") {
		if p == "" || p == "." {
			continue
		}
		if p == ".." {
			return nil, fmt.Errorf("unixfs: .. not supported in %q", path)
		}
		if len(p) > 60 {
			return nil, fmt.Errorf("unixfs: name component %q too long", p)
		}
		parts = append(parts, p)
	}
	return parts, nil
}

// FreeBlocks returns the total free block count (for tests).
func (fs *FS) FreeBlocks() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	total := 0
	for gi := range fs.groups {
		total += fs.groups[gi].freeBlocks
	}
	return total
}

// Groups returns the number of cylinder groups.
func (fs *FS) Groups() int { return len(fs.groups) }

// sortedDirNames is a helper for List.
func sortedDirNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
