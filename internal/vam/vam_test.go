package vam

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/sim"
)

func TestNewAllAllocated(t *testing.T) {
	v := New(1000)
	if v.FreeCount() != 0 {
		t.Fatalf("FreeCount = %d, want 0", v.FreeCount())
	}
	if v.IsFree(0) || v.IsFree(999) {
		t.Fatal("pages free in new map")
	}
}

func TestMarkFreeAllocated(t *testing.T) {
	v := New(1000)
	v.MarkFree(100, 50)
	if v.FreeCount() != 50 {
		t.Fatalf("FreeCount = %d", v.FreeCount())
	}
	if !v.IsFree(100) || !v.IsFree(149) || v.IsFree(150) || v.IsFree(99) {
		t.Fatal("wrong pages freed")
	}
	// Double-free is idempotent.
	v.MarkFree(100, 50)
	if v.FreeCount() != 50 {
		t.Fatal("double MarkFree changed count")
	}
	v.MarkAllocated(120, 10)
	if v.FreeCount() != 40 || v.IsFree(125) {
		t.Fatal("MarkAllocated wrong")
	}
	v.MarkAllocated(120, 10)
	if v.FreeCount() != 40 {
		t.Fatal("double MarkAllocated changed count")
	}
}

func TestRangePanics(t *testing.T) {
	v := New(100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range MarkFree did not panic")
		}
	}()
	v.MarkFree(90, 20)
}

func TestShadowNotAllocatable(t *testing.T) {
	v := New(1000)
	v.MarkFree(0, 100)
	v.MarkAllocated(10, 20) // a file's pages
	v.ShadowFree(10, 20)    // delete the file, uncommitted
	if v.IsFree(15) {
		t.Fatal("shadowed page allocatable before commit")
	}
	if v.ShadowCount() != 20 {
		t.Fatalf("ShadowCount = %d", v.ShadowCount())
	}
	if s, l := v.FindRun(100, 0, 1000, 1); l != 0 || s != 0 {
		if l >= 100 {
			t.Fatal("FindRun satisfied through shadowed pages")
		}
	}
	v.Commit()
	if !v.IsFree(15) {
		t.Fatal("shadowed page not freed by commit")
	}
	if v.ShadowCount() != 0 {
		t.Fatal("shadow not cleared by commit")
	}
	if v.FreeCount() != 100 {
		t.Fatalf("FreeCount after commit = %d", v.FreeCount())
	}
}

func TestCommitIdempotent(t *testing.T) {
	v := New(100)
	v.ShadowFree(0, 10)
	v.Commit()
	v.Commit()
	if v.FreeCount() != 10 {
		t.Fatalf("FreeCount = %d", v.FreeCount())
	}
}

func TestFindRunUpward(t *testing.T) {
	v := New(1000)
	v.MarkFree(10, 5)
	v.MarkFree(100, 20)
	s, l := v.FindRun(10, 0, 1000, 1)
	if s != 100 || l != 10 {
		t.Fatalf("FindRun(10) = (%d,%d), want (100,10)", s, l)
	}
	// Smaller request takes the first adequate run.
	s, l = v.FindRun(3, 0, 1000, 1)
	if s != 10 || l != 3 {
		t.Fatalf("FindRun(3) = (%d,%d), want (10,3)", s, l)
	}
	// Impossible request returns the largest run.
	s, l = v.FindRun(50, 0, 1000, 1)
	if s != 100 || l != 20 {
		t.Fatalf("FindRun(50) = (%d,%d), want largest (100,20)", s, l)
	}
}

func TestFindRunDownward(t *testing.T) {
	v := New(1000)
	v.MarkFree(100, 20)
	v.MarkFree(500, 50)
	s, l := v.FindRun(10, 0, 1000, -1)
	if s != 540 || l != 10 {
		t.Fatalf("FindRun down = (%d,%d), want top pages (540,10)", s, l)
	}
}

func TestFindRunRespectsWindow(t *testing.T) {
	v := New(1000)
	v.MarkFree(0, 1000)
	s, l := v.FindRun(10, 200, 300, 1)
	if s != 200 || l != 10 {
		t.Fatalf("windowed FindRun = (%d,%d)", s, l)
	}
	s, l = v.FindRun(10, 200, 300, -1)
	if s != 290 || l != 10 {
		t.Fatalf("windowed downward FindRun = (%d,%d)", s, l)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	const n = 10000
	v := New(n)
	v.MarkFree(5, 100)
	v.MarkFree(9000, 500)
	base := 100
	if err := v.Save(d, base); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(d, base, n)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.FreeCount() != v.FreeCount() {
		t.Fatalf("FreeCount %d != %d", got.FreeCount(), v.FreeCount())
	}
	for _, p := range []int{4, 5, 104, 105, 8999, 9000, 9499, 9500} {
		if got.IsFree(p) != v.IsFree(p) {
			t.Fatalf("page %d differs after reload", p)
		}
	}
}

func TestSaveRefusesPendingShadow(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v := New(100)
	v.ShadowFree(0, 1)
	if err := v.Save(d, 0); err == nil {
		t.Fatal("Save with pending shadow succeeded")
	}
}

func TestLoadRejectsUnsaved(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if _, err := Load(d, 100, 1000); !errors.Is(err, ErrNotSaved) {
		t.Fatalf("Load of unsaved area: %v", err)
	}
}

func TestInvalidateForcesReconstruction(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	const n = 1000
	v := New(n)
	v.MarkFree(0, n)
	if err := v.Save(d, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d, 50, n); err != nil {
		t.Fatal(err)
	}
	if err := Invalidate(d, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d, 50, n); !errors.Is(err, ErrNotSaved) {
		t.Fatalf("Load after Invalidate: %v", err)
	}
}

func TestLoadRejectsCorruptBitmap(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	const n = 100000 // several bitmap sectors
	v := New(n)
	v.MarkFree(0, n)
	if err := v.Save(d, 50); err != nil {
		t.Fatal(err)
	}
	// Smash one bitmap sector silently; the checksum must catch it.
	d.SmashSector(52, make([]byte, disk.SectorSize), nil)
	if _, err := Load(d, 50, n); !errors.Is(err, ErrNotSaved) {
		t.Fatalf("Load of corrupt bitmap: %v", err)
	}
}

func TestLoadRejectsWrongSize(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v := New(1000)
	if err := v.Save(d, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d, 0, 2000); !errors.Is(err, ErrNotSaved) {
		t.Fatalf("Load with wrong size: %v", err)
	}
}

// Property: FreeCount always equals the number of set bits, under any mix of
// operations.
func TestQuickCountsConsistent(t *testing.T) {
	f := func(ops []struct {
		P, C   uint16
		Action uint8
	}) bool {
		const n = 4096
		v := New(n)
		for _, o := range ops {
			p := int(o.P) % n
			c := int(o.C) % (n - p)
			switch o.Action % 4 {
			case 0:
				v.MarkFree(p, c)
			case 1:
				v.MarkAllocated(p, c)
			case 2:
				v.ShadowFree(p, c)
			case 3:
				v.Commit()
			}
		}
		count := 0
		for i := 0; i < n; i++ {
			if v.IsFree(i) {
				count++
			}
		}
		return count == v.FreeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FindRun results are always actually free and within the window.
func TestQuickFindRunSound(t *testing.T) {
	f := func(frees []uint16, want, lo, hi uint16, down bool) bool {
		const n = 4096
		v := New(n)
		for _, p := range frees {
			v.MarkFree(int(p)%n, 1)
		}
		w := int(want)%64 + 1
		l, h := int(lo)%n, int(hi)%n
		if l > h {
			l, h = h, l
		}
		dir := 1
		if down {
			dir = -1
		}
		s, length := v.FindRun(w, l, h, dir)
		if length == 0 {
			return true
		}
		if length > w {
			return false
		}
		if s < l || s+length > h {
			return false
		}
		for i := s; i < s+length; i++ {
			if !v.IsFree(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapSectorHelpers(t *testing.T) {
	if BitmapSectorOfPage(0) != 0 || BitmapSectorOfPage(4095) != 0 || BitmapSectorOfPage(4096) != 1 {
		t.Fatal("BitmapSectorOfPage wrong")
	}
	v := New(10000)
	v.MarkFree(0, 10)
	v.MarkFree(5000, 3)
	buf := make([]byte, 512)
	v.EncodeBitmapSector(0, buf)
	// Page 0..9 free: low 10 bits of word 0 set.
	if buf[7] != 0xFF || buf[6]&0x03 != 0x03 {
		t.Fatalf("sector 0 encoding: % x", buf[:8])
	}
	v.EncodeBitmapSector(1, buf)
	// Pages 5000..5002 live in sector 1, word (5000-4096)/64 = 14.
	w := buf[14*8 : 15*8]
	if w[0] == 0 && w[1] == 0 && w[2] == 0 && w[3] == 0 && w[4] == 0 && w[5] == 0 && w[6] == 0 && w[7] == 0 {
		t.Fatal("sector 1 missed the 5000..5002 bits")
	}
}

func TestLoadLooseRoundTrip(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	const n = 20000
	v := New(n)
	v.MarkFree(100, 5000)
	if err := v.Save(d, 10); err != nil {
		t.Fatal(err)
	}
	// Invalidate the stamp: strict Load fails, loose load succeeds.
	if err := Invalidate(d, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d, 10, n); err == nil {
		t.Fatal("strict load succeeded without stamp")
	}
	got, err := LoadLoose(d, 10, n)
	if err != nil {
		t.Fatalf("LoadLoose: %v", err)
	}
	if got.FreeCount() != v.FreeCount() || got.Pages() != n {
		t.Fatalf("LoadLoose FreeCount %d != %d", got.FreeCount(), v.FreeCount())
	}
	// Damage makes it fail rather than return garbage.
	d.CorruptSectors(12, 1)
	if _, err := LoadLoose(d, 10, n); err == nil {
		t.Fatal("LoadLoose read through damage")
	}
}

func TestTrackerFires(t *testing.T) {
	v := New(10000)
	var ranges [][2]int
	v.Tracker = func(p, n int) { ranges = append(ranges, [2]int{p, n}) }
	v.MarkFree(10, 5)
	v.MarkAllocated(10, 2)
	v.ShadowFree(10, 2) // shadow does not change free bits: no tracking
	before := len(ranges)
	if before != 2 {
		t.Fatalf("tracker fired %d times, want 2", before)
	}
	v.Commit() // merges the shadowed pages: tracked
	if len(ranges) <= before {
		t.Fatal("Commit did not fire the tracker")
	}
}

// findRunReference is the original bit-at-a-time FindRun, kept as the
// executable specification for the word-accelerated scan.
func findRunReference(v *VAM, want, lo, hi, dir int) (start, length int) {
	if lo < 0 {
		lo = 0
	}
	if hi > v.Pages() {
		hi = v.Pages()
	}
	bestStart, bestLen := 0, 0
	runStart, runLen := -1, 0
	consider := func(s, l int) bool {
		if l >= want {
			if dir < 0 {
				bestStart, bestLen = s+l-want, want
			} else {
				bestStart, bestLen = s, want
			}
			return true
		}
		if l > bestLen {
			bestStart, bestLen = s, l
		}
		return false
	}
	if dir >= 0 {
		for i := lo; i < hi; i++ {
			if v.IsFree(i) {
				if runStart < 0 {
					runStart, runLen = i, 0
				}
				runLen++
			} else if runStart >= 0 {
				if consider(runStart, runLen) {
					return bestStart, bestLen
				}
				runStart, runLen = -1, 0
			}
		}
		if runStart >= 0 {
			consider(runStart, runLen)
		}
		return bestStart, bestLen
	}
	for i := hi - 1; i >= lo; i-- {
		if v.IsFree(i) {
			if runStart < 0 {
				runStart, runLen = i, 0
			}
			runStart = i
			runLen++
		} else if runLen > 0 {
			if consider(runStart, runLen) {
				return bestStart, bestLen
			}
			runStart, runLen = -1, 0
		}
	}
	if runLen > 0 {
		consider(runStart, runLen)
	}
	return bestStart, bestLen
}

// TestFindRunMatchesReference drives the word-accelerated FindRun against
// the bit-at-a-time reference over randomized bitmaps, windows, and
// directions, including word-boundary-straddling runs and edge windows.
func TestFindRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 65 + rng.Intn(1000)
		v := New(n)
		// Random free regions with a bias toward runs near word edges.
		for k := 0; k < 1+rng.Intn(20); k++ {
			p := rng.Intn(n)
			l := 1 + rng.Intn(100)
			if p+l > n {
				l = n - p
			}
			v.MarkFree(p, l)
		}
		for q := 0; q < 30; q++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo) + 1
			want := 1 + rng.Intn(80)
			dir := 1
			if rng.Intn(2) == 0 {
				dir = -1
			}
			gs, gl := v.FindRun(want, lo, hi, dir)
			ws, wl := findRunReference(v, want, lo, hi, dir)
			if gs != ws || gl != wl {
				t.Fatalf("trial %d: FindRun(%d, %d, %d, %d) = (%d,%d), reference (%d,%d)",
					trial, want, lo, hi, dir, gs, gl, ws, wl)
			}
		}
	}
}

func BenchmarkFindRunSparse(b *testing.B) {
	// The soak shape: a mostly-allocated 600k-page volume with scattered
	// free fragments and the free tail at the end.
	n := 600_000
	v := New(n)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 2000; k++ {
		v.MarkFree(rng.Intn(n/2), 1+rng.Intn(3))
	}
	v.MarkFree(n-5000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.FindRun(8, 0, n, 1)
	}
}
