// Package vam implements the Volume Allocation Map: the bitmap of free disk
// pages that FSD keeps entirely in volatile memory (Section 5.5 of the
// paper).
//
// No disk writes happen during normal operation. On a controlled shutdown
// the map is written to a save area with a validity stamp; at boot it is
// loaded if properly saved and otherwise reconstructed from the file name
// table. Pages of deleted-but-uncommitted files live in a shadow bitmap and
// only become allocatable when the next group commit makes the deletion
// durable.
package vam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"

	"repro/internal/disk"
)

// ErrNoSpace is returned when an allocation cannot be satisfied at all.
var ErrNoSpace = errors.New("vam: no free pages")

// ErrNotSaved is returned by Load when the save area does not hold a validly
// stamped map, signalling the mount path to reconstruct instead.
var ErrNotSaved = errors.New("vam: allocation map was not properly saved")

// VAM is the in-memory free-page bitmap plus the shadow bitmap of pending
// frees. It is not safe for concurrent use; the file system serializes
// access.
type VAM struct {
	n       int
	free    []uint64 // bit set = page free
	shadow  []uint64 // bit set = freed by an uncommitted delete
	nfree   int
	nshadow int

	// Tracker, when set, is invoked with every page range whose free
	// bits change. The VAM-logging extension uses it to find the dirty
	// sectors of the save-area image.
	Tracker func(p, count int)
}

// New returns a VAM of n pages with every page marked allocated; callers
// free the regions that are actually available.
func New(n int) *VAM {
	words := (n + 63) / 64
	return &VAM{n: n, free: make([]uint64, words), shadow: make([]uint64, words)}
}

// Pages returns the total number of pages tracked.
func (v *VAM) Pages() int { return v.n }

// FreeCount returns the number of allocatable pages (excluding shadowed).
func (v *VAM) FreeCount() int { return v.nfree }

// ShadowCount returns the number of pages awaiting commit before they free.
func (v *VAM) ShadowCount() int { return v.nshadow }

// IsFree reports whether page p is allocatable.
func (v *VAM) IsFree(p int) bool {
	return v.free[p/64]&(1<<(p%64)) != 0
}

func (v *VAM) checkRange(p, count int) {
	if p < 0 || count < 0 || p+count > v.n {
		panic(fmt.Sprintf("vam: range [%d,%d) out of [0,%d)", p, p+count, v.n))
	}
}

// MarkFree marks count pages starting at p as allocatable immediately.
func (v *VAM) MarkFree(p, count int) {
	v.checkRange(p, count)
	if v.Tracker != nil {
		v.Tracker(p, count)
	}
	for i := p; i < p+count; i++ {
		w, b := i/64, uint64(1)<<(i%64)
		if v.free[w]&b == 0 {
			v.free[w] |= b
			v.nfree++
		}
	}
}

// MarkAllocated marks count pages starting at p as in use.
func (v *VAM) MarkAllocated(p, count int) {
	v.checkRange(p, count)
	if v.Tracker != nil {
		v.Tracker(p, count)
	}
	for i := p; i < p+count; i++ {
		w, b := i/64, uint64(1)<<(i%64)
		if v.free[w]&b != 0 {
			v.free[w] &^= b
			v.nfree--
		}
	}
}

// ShadowFree records count pages starting at p as freed by a delete that has
// not yet committed. They cannot be allocated — a new file written there
// would be destroyed if the delete never commits.
func (v *VAM) ShadowFree(p, count int) {
	v.checkRange(p, count)
	for i := p; i < p+count; i++ {
		w, b := i/64, uint64(1)<<(i%64)
		if v.shadow[w]&b == 0 {
			v.shadow[w] |= b
			v.nshadow++
		}
	}
}

// Commit merges the shadow bitmap into the free bitmap: all pending deletes
// are now durable, so their pages become allocatable.
func (v *VAM) Commit() {
	for w := range v.shadow {
		s := v.shadow[w]
		if s == 0 {
			continue
		}
		if v.Tracker != nil {
			v.Tracker(w*64, 64)
		}
		newlyFree := s &^ v.free[w]
		v.free[w] |= s
		v.nfree += bits.OnesCount64(newlyFree)
		v.shadow[w] = 0
	}
	v.nshadow = 0
}

// FindRun returns the first run of exactly want contiguous free pages within
// [lo, hi), searching upward from lo when dir > 0 and downward from hi when
// dir < 0. If no run of want pages exists it returns the largest available
// run in the region (possibly length 0).
//
// The scan walks the bitmap a word at a time — skipping fully allocated
// words and swallowing fully free ones in one step — because this runs
// under the allocator lock on every create and extend; a bit-at-a-time
// scan of the default 600k-page volume was the file server's throughput
// ceiling under the 10k-client soak.
func (v *VAM) FindRun(want, lo, hi, dir int) (start, length int) {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return 0, 0
	}
	if want < 1 {
		want = 1
	}
	// One ascending scan serves both directions. Upward (dir >= 0) wants
	// the lowest run of length >= want and can return the moment a run
	// grows that long. Downward (dir < 0) wants the top `want` pages of
	// the highest qualifying run, so every qualifying run it passes
	// replaces the candidate (later = higher); ties in the largest-run
	// fallback also keep the later (higher) run, matching the old
	// top-down scan's first-from-the-top behavior.
	bestStart, bestLen := 0, 0 // largest-run fallback
	candStart := -1            // dir < 0: top-want window of the highest qualifying run
	runStart, runLen := -1, 0
	closeRun := func() {
		if runStart < 0 {
			return
		}
		if runLen >= want {
			candStart = runStart + runLen - want
		} else if runLen > bestLen || (dir < 0 && runLen == bestLen) {
			bestStart, bestLen = runStart, runLen
		}
		runStart, runLen = -1, 0
	}
	w0, w1 := lo/64, (hi-1)/64
	for wi := w0; wi <= w1; wi++ {
		word := v.free[wi]
		if wi == w0 {
			word &^= 1<<(lo%64) - 1
		}
		if wi == w1 {
			if rem := hi % 64; rem != 0 {
				word &= 1<<rem - 1
			}
		}
		base := wi * 64
		if word == 0 {
			closeRun()
			continue
		}
		if word == ^uint64(0) {
			if runStart >= 0 && runStart+runLen == base {
				runLen += 64
			} else {
				closeRun()
				runStart, runLen = base, 64
			}
			if dir >= 0 && runLen >= want {
				return runStart, want
			}
			continue
		}
		// Mixed word: walk its free segments low to high.
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			ones := bits.TrailingZeros64(^(word >> uint(tz)))
			segStart := base + tz
			if runStart >= 0 && segStart == runStart+runLen {
				runLen += ones
			} else {
				closeRun()
				runStart, runLen = segStart, ones
			}
			if dir >= 0 && runLen >= want {
				return runStart, want
			}
			if tz+ones >= 64 {
				word = 0
			} else {
				word &^= (1<<uint(ones) - 1) << uint(tz)
			}
		}
	}
	closeRun()
	if candStart >= 0 {
		return candStart, want
	}
	return bestStart, bestLen
}

// Save layout: one header sector then ceil(n/4096) bitmap sectors.
const (
	saveMagic = 0x5A4D4156 // "VAMZ"
)

// SaveSectors returns the size of the save area needed for n pages.
func SaveSectors(n int) int {
	return 1 + (n+disk.SectorSize*8-1)/(disk.SectorSize*8)
}

// SectorWriter is the sector-write primitive Save and Invalidate go
// through. The file system passes its bounded-retry/remap repair path so a
// marginal save-area sector is retried or retired instead of failing the
// save; plain *disk.Disk callers get the same policy via defaultWriter.
type SectorWriter func(addr int, data []byte) error

// defaultWriter wraps a raw device in the bounded-retry/remap policy.
func defaultWriter(d *disk.Disk) SectorWriter {
	return func(addr int, data []byte) error {
		_, _, err := disk.WriteSectorsRetry(d, addr, data, 2)
		return err
	}
}

// Save writes the map and a validity stamp to the save area at base. Only
// the free bitmap is saved; shadow pages must have been committed first.
func (v *VAM) Save(d *disk.Disk, base int) error {
	return v.SaveWith(defaultWriter(d), base)
}

// SaveWith is Save with an explicit sector-write primitive.
func (v *VAM) SaveWith(w SectorWriter, base int) error {
	if v.nshadow != 0 {
		return fmt.Errorf("vam: %d shadow pages pending at save", v.nshadow)
	}
	bitmapSectors := SaveSectors(v.n) - 1
	buf := make([]byte, bitmapSectors*disk.SectorSize)
	for i, word := range v.free {
		binary.BigEndian.PutUint64(buf[i*8:], word)
	}
	hdr := make([]byte, disk.SectorSize)
	binary.BigEndian.PutUint32(hdr[0:], saveMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(v.n))
	binary.BigEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(buf))
	// Write the bitmap first, the validity header last: a crash between
	// the two leaves an unstamped save that Load rejects.
	if err := w(base+1, buf); err != nil {
		return err
	}
	return w(base, hdr)
}

// Invalidate destroys the validity stamp. Mount calls it right after a
// successful Load: from that moment the on-disk copy is stale, and a crash
// must trigger reconstruction.
func Invalidate(d *disk.Disk, base int) error {
	return InvalidateWith(defaultWriter(d), base)
}

// InvalidateWith is Invalidate with an explicit sector-write primitive.
func InvalidateWith(w SectorWriter, base int) error {
	return w(base, make([]byte, disk.SectorSize))
}

// BitmapSectorOfPage returns the index (within the save area's bitmap
// sectors) of the sector holding page p's bit.
func BitmapSectorOfPage(p int) int { return p / (disk.SectorSize * 8) }

// EncodeBitmapSector writes the 512-byte save-area image of bitmap sector
// idx into buf.
func (v *VAM) EncodeBitmapSector(idx int, buf []byte) {
	wordsPerSector := disk.SectorSize / 8
	for i := 0; i < wordsPerSector; i++ {
		w := idx*wordsPerSector + i
		var val uint64
		if w < len(v.free) {
			val = v.free[w]
		}
		binary.BigEndian.PutUint64(buf[i*8:], val)
	}
}

// LoadLoose reads a save area WITHOUT verifying the stamp or checksum. It
// is used only by the VAM-logging extension, where the save area is kept
// current by logged sector images and correctness comes from the log; any
// unreadable sector fails the load so the caller can fall back to
// reconstruction.
func LoadLoose(d *disk.Disk, base, n int) (*VAM, error) {
	bitmapSectors := SaveSectors(n) - 1
	buf, err := d.ReadSectors(base+1, bitmapSectors)
	if err != nil {
		return nil, err
	}
	v := New(n)
	for i := range v.free {
		v.free[i] = binary.BigEndian.Uint64(buf[i*8:])
	}
	if rem := n % 64; rem != 0 {
		v.free[len(v.free)-1] &= 1<<rem - 1
	}
	for _, w := range v.free {
		v.nfree += bits.OnesCount64(w)
	}
	return v, nil
}

// Load reads a saved map of n pages from base. It returns ErrNotSaved when
// the stamp is missing or the checksum fails.
func Load(d *disk.Disk, base, n int) (*VAM, error) {
	hdr, err := d.ReadSectors(base, 1)
	if err != nil {
		return nil, ErrNotSaved
	}
	if binary.BigEndian.Uint32(hdr[0:]) != saveMagic || binary.BigEndian.Uint32(hdr[4:]) != uint32(n) {
		return nil, ErrNotSaved
	}
	bitmapSectors := SaveSectors(n) - 1
	buf, err := d.ReadSectors(base+1, bitmapSectors)
	if err != nil {
		return nil, ErrNotSaved
	}
	if crc32.ChecksumIEEE(buf) != binary.BigEndian.Uint32(hdr[8:]) {
		return nil, ErrNotSaved
	}
	v := New(n)
	for i := range v.free {
		v.free[i] = binary.BigEndian.Uint64(buf[i*8:])
	}
	for w, bitsW := range v.free {
		_ = w
		v.nfree += bits.OnesCount64(bitsW)
	}
	// Clear any bits beyond n (defensive; Save never sets them).
	if rem := n % 64; rem != 0 {
		last := len(v.free) - 1
		extra := v.free[last] &^ (1<<rem - 1)
		v.nfree -= bits.OnesCount64(extra)
		v.free[last] &= 1<<rem - 1
	}
	return v, nil
}
