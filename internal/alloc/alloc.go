// Package alloc implements FSD's run (extent) allocator with separate small-
// and big-file areas (Section 5.6 of the paper).
//
// The data region of the volume is split by a boundary: files at or below
// the size threshold are allocated from the low end growing upward, big
// files from the high end growing downward — "similar to many memory
// allocators: dynamic storage is grown starting from small addresses, while
// the stack is grown from the end of memory towards small addresses". The
// areas are only hints; when the preferred area has no space the other area
// is used, so allocation never fails while free pages exist.
package alloc

import (
	"fmt"

	"repro/internal/vam"
)

// Run is a contiguous extent of disk pages.
type Run struct {
	Start uint32
	Len   uint32
}

// Config describes the data region served by an allocator.
type Config struct {
	Lo int // first data page (inclusive)
	Hi int // last data page (exclusive)
	// SmallThreshold is the largest allocation (in pages) treated as a
	// small file. The paper: 50% of files are under 4,000 bytes (8
	// pages) but use only 8% of the sectors.
	SmallThreshold int
	// SmallFraction is the fraction (percent) of the region reserved as
	// the small-file area hint. Zero means 25%.
	SmallFraction int
	// MaxRuns bounds the number of extents per allocation so run tables
	// stay small enough for a name-table entry. Zero means 16.
	MaxRuns int
}

func (c Config) smallFraction() int {
	if c.SmallFraction == 0 {
		return 25
	}
	return c.SmallFraction
}

func (c Config) maxRuns() int {
	if c.MaxRuns == 0 {
		return 16
	}
	return c.MaxRuns
}

// boundary returns the page index separating the small and big areas.
func (c Config) boundary() int {
	return c.Lo + (c.Hi-c.Lo)*c.smallFraction()/100
}

// Allocator hands out runs of pages against a VAM. It is not safe for
// concurrent use.
type Allocator struct {
	v   *vam.VAM
	cfg Config
}

// New returns an allocator over the data region described by cfg.
func New(v *vam.VAM, cfg Config) (*Allocator, error) {
	if cfg.Lo < 0 || cfg.Hi > v.Pages() || cfg.Lo >= cfg.Hi {
		return nil, fmt.Errorf("alloc: bad region [%d,%d)", cfg.Lo, cfg.Hi)
	}
	return &Allocator{v: v, cfg: cfg}, nil
}

// Config returns the allocator's region description.
func (a *Allocator) Config() Config { return a.cfg }

// Alloc returns runs covering exactly pages disk pages, preferring a single
// contiguous run in the area suited to the allocation's size. The pages are
// marked allocated in the VAM. On failure nothing is allocated.
func (a *Allocator) Alloc(pages int) ([]Run, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("alloc: request for %d pages", pages)
	}
	small := pages <= a.cfg.SmallThreshold
	b := a.cfg.boundary()
	// Preference order of (lo, hi, dir) windows.
	type window struct{ lo, hi, dir int }
	var order []window
	if small {
		order = []window{{a.cfg.Lo, b, 1}, {b, a.cfg.Hi, 1}}
	} else {
		order = []window{{b, a.cfg.Hi, -1}, {a.cfg.Lo, b, -1}}
	}
	var runs []Run
	remaining := pages
	for remaining > 0 {
		if len(runs) >= a.cfg.maxRuns() {
			a.release(runs)
			return nil, fmt.Errorf("alloc: allocation of %d pages needs more than %d runs (fragmentation)", pages, a.cfg.maxRuns())
		}
		got := false
		for _, w := range order {
			s, l := a.v.FindRun(remaining, w.lo, w.hi, w.dir)
			if l == remaining {
				a.v.MarkAllocated(s, l)
				runs = append(runs, Run{Start: uint32(s), Len: uint32(l)})
				remaining = 0
				got = true
				break
			}
		}
		if remaining == 0 {
			break
		}
		if !got {
			// No single run satisfies the remainder anywhere: take
			// the largest run available across both windows.
			bestS, bestL := 0, 0
			for _, w := range order {
				s, l := a.v.FindRun(remaining, w.lo, w.hi, w.dir)
				if l > bestL {
					bestS, bestL = s, l
				}
			}
			if bestL == 0 {
				a.release(runs)
				return nil, vam.ErrNoSpace
			}
			a.v.MarkAllocated(bestS, bestL)
			runs = append(runs, Run{Start: uint32(bestS), Len: uint32(bestL)})
			remaining -= bestL
		}
	}
	return runs, nil
}

// release undoes a partial allocation.
func (a *Allocator) release(runs []Run) {
	for _, r := range runs {
		a.v.MarkFree(int(r.Start), int(r.Len))
	}
}

// FreeNow returns runs to the VAM immediately (used when an allocation is
// abandoned before anything was made durable).
func (a *Allocator) FreeNow(runs []Run) {
	a.release(runs)
}

// FreeOnCommit moves runs to the shadow bitmap; they become allocatable at
// the next commit.
func (a *Allocator) FreeOnCommit(runs []Run) {
	for _, r := range runs {
		a.v.ShadowFree(int(r.Start), int(r.Len))
	}
}

// Pages sums the lengths of runs.
func Pages(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += int(r.Len)
	}
	return n
}

// Fragmentation statistics for the ablation benchmarks.

// LargestFreeRun returns the size of the largest contiguous free run in the
// allocator's region.
func (a *Allocator) LargestFreeRun() int {
	_, l := a.v.FindRun(a.cfg.Hi-a.cfg.Lo+1, a.cfg.Lo, a.cfg.Hi, 1)
	return l
}

// FreeRunHistogram buckets the free runs in the region by size; bucket i
// counts runs of length >= 1<<i and < 1<<(i+1).
func (a *Allocator) FreeRunHistogram() []int {
	hist := make([]int, 24)
	runLen := 0
	flush := func() {
		if runLen == 0 {
			return
		}
		b := 0
		for 1<<(b+1) <= runLen {
			b++
		}
		hist[b]++
		runLen = 0
	}
	for i := a.cfg.Lo; i < a.cfg.Hi; i++ {
		if a.v.IsFree(i) {
			runLen++
		} else {
			flush()
		}
	}
	flush()
	return hist
}
