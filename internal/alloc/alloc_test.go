package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vam"
)

func newTestAllocator(t *testing.T, pages int) (*Allocator, *vam.VAM) {
	t.Helper()
	v := vam.New(pages)
	v.MarkFree(0, pages)
	a, err := New(v, Config{Lo: 0, Hi: pages, SmallThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	return a, v
}

func TestSmallAllocGoesLow(t *testing.T) {
	a, _ := newTestAllocator(t, 10000)
	runs, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Len != 4 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0].Start >= uint32(a.Config().boundary()) {
		t.Fatalf("small file allocated at %d, above boundary %d", runs[0].Start, a.Config().boundary())
	}
}

func TestBigAllocGoesHigh(t *testing.T) {
	a, _ := newTestAllocator(t, 10000)
	runs, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("big alloc fragmented: %v", runs)
	}
	if int(runs[0].Start) < a.Config().boundary() {
		t.Fatalf("big file allocated at %d, below boundary %d", runs[0].Start, a.Config().boundary())
	}
	// Big files grow downward: the run should end at the region top.
	if int(runs[0].Start+runs[0].Len) != 10000 {
		t.Fatalf("big file not at region top: %v", runs)
	}
}

func TestAllocMarksVAM(t *testing.T) {
	a, v := newTestAllocator(t, 1000)
	before := v.FreeCount()
	runs, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if v.FreeCount() != before-10 {
		t.Fatalf("FreeCount %d, want %d", v.FreeCount(), before-10)
	}
	for _, r := range runs {
		for i := r.Start; i < r.Start+r.Len; i++ {
			if v.IsFree(int(i)) {
				t.Fatal("allocated page still free")
			}
		}
	}
}

func TestAllocSpillsToOtherArea(t *testing.T) {
	// Fill the small area completely; a small alloc must spill into the
	// big area rather than fail.
	a, v := newTestAllocator(t, 1000)
	b := a.Config().boundary()
	v.MarkAllocated(0, b)
	runs, err := a.Alloc(2)
	if err != nil {
		t.Fatalf("small alloc with full small area: %v", err)
	}
	if int(runs[0].Start) < b {
		t.Fatal("allocated inside the full area")
	}
}

func TestAllocFragmented(t *testing.T) {
	a, v := newTestAllocator(t, 1000)
	// Punch allocated holes so no run of 100 exists anywhere.
	for p := 0; p < 1000; p += 50 {
		v.MarkAllocated(p, 10)
	}
	runs, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("fragmented alloc: %v", err)
	}
	if len(runs) < 2 {
		t.Fatalf("expected multiple runs, got %v", runs)
	}
	if Pages(runs) != 100 {
		t.Fatalf("allocated %d pages, want 100", Pages(runs))
	}
}

func TestAllocNoSpace(t *testing.T) {
	a, v := newTestAllocator(t, 100)
	v.MarkAllocated(0, 100)
	if _, err := a.Alloc(1); !errors.Is(err, vam.ErrNoSpace) {
		t.Fatalf("alloc on full volume: %v", err)
	}
}

func TestAllocTooFragmentedForMaxRuns(t *testing.T) {
	v := vam.New(1000)
	// One free page every other page: 500 free, max run 1.
	for p := 0; p < 1000; p += 2 {
		v.MarkFree(p, 1)
	}
	a, err := New(v, Config{Lo: 0, Hi: 1000, SmallThreshold: 8, MaxRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := v.FreeCount()
	if _, err := a.Alloc(100); err == nil {
		t.Fatal("alloc needing 100 runs succeeded with MaxRuns=4")
	}
	if v.FreeCount() != before {
		t.Fatal("failed alloc leaked pages")
	}
}

func TestFreeOnCommitLifecycle(t *testing.T) {
	a, v := newTestAllocator(t, 1000)
	runs, err := a.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	free0 := v.FreeCount()
	a.FreeOnCommit(runs)
	if v.FreeCount() != free0 {
		t.Fatal("FreeOnCommit freed immediately")
	}
	v.Commit()
	if v.FreeCount() != free0+20 {
		t.Fatalf("FreeCount after commit = %d, want %d", v.FreeCount(), free0+20)
	}
}

func TestFreeNow(t *testing.T) {
	a, v := newTestAllocator(t, 1000)
	runs, _ := a.Alloc(20)
	free0 := v.FreeCount()
	a.FreeNow(runs)
	if v.FreeCount() != free0+20 {
		t.Fatal("FreeNow did not free")
	}
}

func TestBadConfigRejected(t *testing.T) {
	v := vam.New(100)
	if _, err := New(v, Config{Lo: 50, Hi: 20}); err == nil {
		t.Fatal("inverted region accepted")
	}
	if _, err := New(v, Config{Lo: 0, Hi: 200}); err == nil {
		t.Fatal("oversized region accepted")
	}
}

func TestSmallBigSeparationReducesFragmentation(t *testing.T) {
	// The paper's motivation: interleaving small files among big ones
	// breaks up large free blocks. With areas on, deleting big files
	// should leave large contiguous holes.
	const pages = 20000
	a, v := newTestAllocator(t, pages)
	rng := rand.New(rand.NewSource(1))
	type file struct{ runs []Run }
	var smalls, bigs []file
	for i := 0; i < 200; i++ {
		if s, err := a.Alloc(1 + rng.Intn(4)); err == nil {
			smalls = append(smalls, file{s})
		}
		if i%4 == 0 {
			if bg, err := a.Alloc(100 + rng.Intn(100)); err == nil {
				bigs = append(bigs, file{bg})
			}
		}
	}
	// Delete all big files.
	for _, f := range bigs {
		a.FreeOnCommit(f.runs)
	}
	v.Commit()
	// The largest free run should be big-file sized, not shredded by
	// small files.
	if lr := a.LargestFreeRun(); lr < 100 {
		t.Fatalf("largest free run %d after freeing big files; areas failed to prevent fragmentation", lr)
	}
}

func TestFreeRunHistogram(t *testing.T) {
	a, v := newTestAllocator(t, 1000)
	v.MarkAllocated(0, 1000)
	v.MarkFree(0, 1)   // bucket 0 (len 1)
	v.MarkFree(10, 3)  // bucket 1 (len 2-3)
	v.MarkFree(100, 9) // bucket 3 (len 8-15)
	h := a.FreeRunHistogram()
	if h[0] != 1 || h[1] != 1 || h[3] != 1 {
		t.Fatalf("histogram = %v", h[:5])
	}
}

// Property: Alloc never double-allocates and Pages(runs) always equals the
// request; freeing everything restores the free count.
func TestQuickAllocFreeConsistent(t *testing.T) {
	f := func(sizes []uint8) bool {
		const pages = 8192
		v := vam.New(pages)
		v.MarkFree(0, pages)
		a, err := New(v, Config{Lo: 0, Hi: pages, SmallThreshold: 8})
		if err != nil {
			return false
		}
		used := map[uint32]bool{}
		var all [][]Run
		for _, s := range sizes {
			n := int(s)%64 + 1
			runs, err := a.Alloc(n)
			if err != nil {
				continue
			}
			if Pages(runs) != n {
				return false
			}
			for _, r := range runs {
				for p := r.Start; p < r.Start+r.Len; p++ {
					if used[p] {
						return false // double allocation
					}
					used[p] = true
				}
			}
			all = append(all, runs)
		}
		for _, runs := range all {
			a.FreeNow(runs)
		}
		return v.FreeCount() == pages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnSoak runs thousands of allocate/free cycles with the paper's
// size distribution on a small region and checks the allocator neither
// leaks nor deadlocks on fragmentation: at steady state every allocation
// that fits in the free count succeeds (possibly fragmented), and freeing
// everything restores the initial state exactly.
func TestChurnSoak(t *testing.T) {
	const pages = 30000
	v := vam.New(pages)
	v.MarkFree(0, pages)
	a, err := New(v, Config{Lo: 0, Hi: pages, SmallThreshold: 8, MaxRuns: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	type alloced struct{ runs []Run }
	var live []alloced
	liveBytes := 0
	for i := 0; i < 6000; i++ {
		if len(live) > 0 && (rng.Intn(3) == 0 || liveBytes > pages*3/4) {
			k := rng.Intn(len(live))
			a.FreeOnCommit(live[k].runs)
			liveBytes -= Pages(live[k].runs)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if i%7 == 0 {
				v.Commit()
			}
			continue
		}
		n := 1 + rng.Intn(60)
		if n > v.FreeCount() {
			continue
		}
		runs, err := a.Alloc(n)
		if err != nil {
			// Acceptable only if fragmentation exceeds MaxRuns; the
			// request must genuinely not fit in 64 pieces.
			if _, l := v.FindRun(n, 0, pages, 1); l >= n {
				t.Fatalf("iter %d: alloc(%d) failed with a contiguous run available: %v", i, n, err)
			}
			continue
		}
		if Pages(runs) != n {
			t.Fatalf("iter %d: got %d pages, want %d", i, Pages(runs), n)
		}
		live = append(live, alloced{runs})
		liveBytes += n
	}
	// Tear down completely.
	for _, l := range live {
		a.FreeNow(l.runs)
	}
	v.Commit()
	if v.FreeCount() != pages {
		t.Fatalf("leak: %d free of %d after full teardown", v.FreeCount(), pages)
	}
}
