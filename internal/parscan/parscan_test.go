package parscan

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEveryChunkOnce checks the core contract: every chunk index
// executes exactly once, at any worker count, including counts that don't
// divide the chunk count and counts above it.
func TestPoolRunsEveryChunkOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, chunks := range []int{0, 1, 7, 64, 1000} {
			hits := make([]int32, chunks)
			st, err := Run(workers, chunks, func(w *Worker, c int) error {
				atomic.AddInt32(&hits[c], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d chunks=%d: %v", workers, chunks, err)
			}
			for c, n := range hits {
				if n != 1 {
					t.Fatalf("workers=%d chunks=%d: chunk %d ran %d times", workers, chunks, c, n)
				}
			}
			total := 0
			for _, w := range st.PerWorker {
				total += w.Chunks
			}
			if total != chunks {
				t.Fatalf("workers=%d chunks=%d: stats count %d chunks", workers, chunks, total)
			}
		}
	}
}

// TestPoolStealing forces an imbalanced load — one worker's interval is
// slow — and checks that other workers steal from it rather than idling.
func TestPoolStealing(t *testing.T) {
	const workers, chunks = 4, 64
	var slow sync.Mutex
	slow.Lock()
	var firstDone int32
	st, err := Run(workers, chunks, func(w *Worker, c int) error {
		if c == 0 {
			// Chunk 0 stalls whichever worker runs it until every other
			// chunk has completed. Without stealing the stalled worker's
			// remaining interval would never run, the gate would never
			// release, and the pool would hang — so mere completion
			// proves the other workers stole the stalled interval.
			slow.Lock() //nolint:staticcheck // released below, used as a gate
			return nil
		}
		if atomic.AddInt32(&firstDone, 1) == chunks-1 {
			slow.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steals() == 0 {
		t.Fatal("no steals despite a stalled worker interval")
	}
	ran := 0
	for _, w := range st.PerWorker {
		ran += w.Chunks
	}
	if ran != chunks {
		t.Fatalf("workers ran %d chunks, want %d", ran, chunks)
	}
}

// TestPoolErrorDeterministic checks that when several chunks fail, Wait
// reports the lowest-numbered failing chunk's error regardless of
// completion order.
func TestPoolErrorDeterministic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		st, err := Run(8, 100, func(w *Worker, c int) error {
			if c%13 == 5 { // chunks 5, 18, 31, ...
				return fmt.Errorf("chunk %d failed", c)
			}
			return nil
		})
		if err == nil || err.Error() != "chunk 5 failed" {
			t.Fatalf("trial %d: got error %v, want the lowest failing chunk", trial, err)
		}
		_ = st
	}
}

// TestPoolErrorStopsWork checks that a failure prevents later chunks from
// being handed out: with one worker the failure is at chunk 0, so no
// other chunk may run.
func TestPoolErrorStopsWork(t *testing.T) {
	var ran int32
	boom := errors.New("boom")
	_, err := Run(1, 50, func(w *Worker, c int) error {
		atomic.AddInt32(&ran, 1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 1 {
		t.Fatalf("%d chunks ran after a chunk-0 failure on one worker", ran)
	}
}

// TestPoolCancel checks that Cancel stops the pool from the outside (the
// merger's escape hatch) and Wait still returns.
func TestPoolCancel(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p := Start(2, 1000, func(w *Worker, c int) error {
		once.Do(func() { close(started) })
		<-release // hold in-flight chunks until Cancel has landed
		return nil
	})
	<-started
	p.Cancel()
	close(release)
	st, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range st.PerWorker {
		total += w.Chunks
	}
	if total >= 1000 {
		t.Fatal("cancel did not stop the pool early")
	}
}

// TestPoolAccounting checks Charge/Fault accumulate per worker and the
// stats helpers fold them correctly; at one worker MaxCPU == TotalCPU.
func TestPoolAccounting(t *testing.T) {
	st, err := Run(1, 10, func(w *Worker, c int) error {
		w.Charge(3 * time.Millisecond)
		if c%2 == 0 {
			w.Fault()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.TotalCPU(), 30*time.Millisecond; got != want {
		t.Fatalf("TotalCPU = %v, want %v", got, want)
	}
	if st.MaxCPU() != st.TotalCPU() {
		t.Fatalf("one worker: MaxCPU %v != TotalCPU %v", st.MaxCPU(), st.TotalCPU())
	}
	if got := st.Faults(); got != 5 {
		t.Fatalf("Faults = %d, want 5", got)
	}
}

// TestOwnerTableLowestWins checks the CAS-min tie-break: whatever order
// claims arrive in, the surviving owner is the lowest index, and losers
// learn the winner.
func TestOwnerTableLowestWins(t *testing.T) {
	tab := NewOwnerTable(1 << 16)
	if prev := tab.Claim(100, 7); prev != OwnerNone {
		t.Fatalf("first claim returned %d", prev)
	}
	if prev := tab.Claim(100, 3); prev != 7 {
		t.Fatalf("lower claim saw prev %d, want 7", prev)
	}
	if got := tab.Owner(100); got != 3 {
		t.Fatalf("owner = %d, want the lowest claimant 3", got)
	}
	if prev := tab.Claim(100, 9); prev != 3 {
		t.Fatalf("higher claim saw prev %d, want surviving 3", prev)
	}
	if got := tab.Owner(100); got != 3 {
		t.Fatalf("owner = %d after higher claim, want 3", got)
	}
	if got := tab.Owner(101); got != OwnerNone {
		t.Fatalf("unclaimed page owner = %d", got)
	}
	// Pages in a never-touched stripe read unclaimed without allocating.
	if got := tab.Owner(3 << ownerStripeShift); got != OwnerNone {
		t.Fatalf("untouched stripe owner = %d", got)
	}
}

// TestOwnerTableConcurrent hammers one table from many goroutines (run
// under -race by verify.sh): every page's final owner must be the lowest
// index that claimed it, independent of scheduling.
func TestOwnerTableConcurrent(t *testing.T) {
	const pages = 1 << 15
	const claimants = 8
	tab := NewOwnerTable(pages)
	var wg sync.WaitGroup
	for g := 0; g < claimants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each claimant claims every page g touches: page p is claimed
			// by owners p%claimants .. claimants-1, so the winner is p%claimants.
			for p := 0; p < pages; p++ {
				if g >= p%claimants {
					tab.Claim(p, int32(g))
				}
			}
		}(g)
	}
	wg.Wait()
	for p := 0; p < pages; p++ {
		if got, want := tab.Owner(p), int32(p%claimants); got != want {
			t.Fatalf("page %d owner = %d, want %d", p, got, want)
		}
	}
}
