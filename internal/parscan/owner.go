package parscan

import "sync/atomic"

// OwnerNone marks an unclaimed page in an OwnerTable.
const OwnerNone int32 = -1

// ownerStripeShift sizes the lazily-allocated stripes: 1<<14 pages per
// stripe is 64 KiB of owner words, small enough that a sparse claim
// pattern allocates little and large enough that a dense one touches few
// stripes.
const ownerStripeShift = 14

// OwnerTable maps page numbers in [0, n) to the index of the first
// claimant — the replacement for Verify's old map[uint32]string, which
// allocated an entry per owned page and serialized every claim behind the
// map. The table is striped: each stripe is a slab of atomic owner words
// allocated on first touch, so a million-page volume with a sparse data
// region costs only the stripes its files actually live in, and claims
// from concurrent workers are lock-free CAS races.
//
// Claim is deterministic across worker counts because ties are resolved
// by value, not by arrival: the lowest owner index wins, so whichever
// worker gets there first, the surviving owner is the same.
type OwnerTable struct {
	stripes []atomic.Pointer[ownerStripe]
}

type ownerStripe struct {
	words [1 << ownerStripeShift]int32
}

// NewOwnerTable makes a table covering pages [0, n).
func NewOwnerTable(n int) *OwnerTable {
	stripes := (n + (1 << ownerStripeShift) - 1) >> ownerStripeShift
	return &OwnerTable{stripes: make([]atomic.Pointer[ownerStripe], stripes)}
}

func (t *OwnerTable) stripe(page int, alloc bool) *ownerStripe {
	slot := &t.stripes[page>>ownerStripeShift]
	s := slot.Load()
	if s == nil && alloc {
		fresh := &ownerStripe{}
		for i := range fresh.words {
			fresh.words[i] = OwnerNone
		}
		if slot.CompareAndSwap(nil, fresh) {
			return fresh
		}
		s = slot.Load()
	}
	return s
}

// Claim records owner as the claimant of page and returns the previous
// owner: OwnerNone if the page was unclaimed (the claim stuck), or the
// surviving owner index on a collision. When two claimants race, the
// lower index wins regardless of arrival order, and the loser is told the
// winner — so duplicate-ownership detection reports the same pair no
// matter how chunks were scheduled. owner must be >= 0.
func (t *OwnerTable) Claim(page int, owner int32) int32 {
	s := t.stripe(page, true)
	w := &s.words[page&(1<<ownerStripeShift-1)]
	for {
		cur := atomic.LoadInt32(w)
		if cur != OwnerNone && cur <= owner {
			return cur
		}
		if atomic.CompareAndSwapInt32(w, cur, owner) {
			return cur
		}
	}
}

// Owner returns the page's recorded claimant, or OwnerNone.
func (t *OwnerTable) Owner(page int) int32 {
	s := t.stripe(page, false)
	if s == nil {
		return OwnerNone
	}
	return atomic.LoadInt32(&s.words[page&(1<<ownerStripeShift-1)])
}
