// Package parscan is the shared parallel-scan infrastructure for the
// volume's check-and-repair paths (Verify, the salvage sweep, Scrub) —
// the pFSCK idea applied to FSD: a whole-structure scan splits into
// chunks, a bounded worker pool pulls chunks from per-worker interval
// queues with work stealing, and the results merge back in chunk order,
// so the output is identical at every worker count.
//
// The pool deliberately knows nothing about disks or volumes. A chunk is
// just an index; the chunk function does whatever reading and checking
// the caller needs and records its findings into caller-owned per-chunk
// slots. Determinism then falls out of two rules the callers follow:
//
//   - results are merged in chunk order, never in completion order;
//   - anything order-dependent (dedup against earlier finds, checkpoint
//     cursors, problem lists) is done by the single merging goroutine
//     over that ordered stream, not by the workers.
//
// CPU cost is accumulated per worker through Worker.Charge rather than
// charged to the simulated CPU directly: charging would advance the
// virtual clock once per worker for the same wall-clock instant. The
// caller charges the pool's critical path (BalancedCPU) in one lump,
// which degenerates to the exact sequential total at one worker.
package parscan

import (
	"sync"
	"time"
)

// WorkerStats is one worker's accounting for a pool run.
type WorkerStats struct {
	Chunks int           // chunks this worker executed
	Steals int           // chunks it took from another worker's interval
	Faults int           // media faults it observed (caller-defined)
	CPU    time.Duration // processor cost accumulated via Charge
}

// Stats reports a completed pool run.
type Stats struct {
	Workers   int
	PerWorker []WorkerStats
}

// TotalCPU sums the processor cost across all workers — the work the scan
// performed, independent of how it was spread.
func (s Stats) TotalCPU() time.Duration {
	var t time.Duration
	for _, w := range s.PerWorker {
		t += w.CPU
	}
	return t
}

// MaxCPU is the busiest worker's processor cost as observed — a load
// balance diagnostic. It is NOT the virtual-time critical path: simulated
// CPU charges consume no real time, so the real scheduler is free to let
// one goroutine drain most of the queue, and the observed maximum is both
// pessimistic and nondeterministic. Use BalancedCPU for clock charges.
func (s Stats) MaxCPU() time.Duration {
	var m time.Duration
	for _, w := range s.PerWorker {
		if w.CPU > m {
			m = w.CPU
		}
	}
	return m
}

// BalancedCPU is the pool's modeled CPU critical path in virtual time:
// the total work divided across the width, rounded up. Stealing keeps the
// real pool within one chunk of balanced, and virtual time must not
// inherit the real scheduler's whims — a deterministic simulation charges
// the deterministic critical path. At one worker it equals TotalCPU.
func (s Stats) BalancedCPU() time.Duration {
	n := time.Duration(s.Workers)
	if n <= 0 {
		return 0
	}
	return (s.TotalCPU() + n - 1) / n
}

// Steals sums the stolen-chunk count across workers.
func (s Stats) Steals() int {
	n := 0
	for _, w := range s.PerWorker {
		n += w.Steals
	}
	return n
}

// Faults sums the observed-fault count across workers.
func (s Stats) Faults() int {
	n := 0
	for _, w := range s.PerWorker {
		n += w.Faults
	}
	return n
}

// merge folds a finished worker's accounting into the run stats.
func (s *Stats) merge(id int, w WorkerStats) {
	s.PerWorker[id] = w
}

// Worker is the per-goroutine context handed to the chunk function.
type Worker struct {
	id    int
	stats WorkerStats
}

// ID is the worker's index in [0, workers).
func (w *Worker) ID() int { return w.id }

// Charge accumulates processor cost privately; the pool owner charges the
// simulated CPU once, from the merged stats.
func (w *Worker) Charge(d time.Duration) {
	if d > 0 {
		w.stats.CPU += d
	}
}

// Fault counts one observed media fault against this worker.
func (w *Worker) Fault() { w.stats.Faults++ }

// interval is one worker's remaining contiguous chunk range [lo, hi).
type interval struct {
	lo, hi int
}

// Pool is a running parallel scan. Start launches it; Wait collects it.
type Pool struct {
	workers int
	fn      func(w *Worker, chunk int) error

	mu        sync.Mutex
	intervals []interval
	stopped   bool

	errMu    sync.Mutex
	errChunk int
	err      error

	wg    sync.WaitGroup
	stats Stats
}

// Start launches workers goroutines executing fn once for every chunk in
// [0, chunks). Chunks are dealt as contiguous per-worker intervals; a
// worker that drains its own interval steals the tail half of the largest
// remaining one, so a slow region (decayed sectors paying retries, say)
// does not leave the rest of the pool idle. fn may be called from any
// worker concurrently with any other chunk; an error stops the pool and
// Wait returns the error of the lowest-numbered failing chunk, so the
// error surface is deterministic too.
func Start(workers, chunks int, fn func(w *Worker, chunk int) error) *Pool {
	if workers < 1 {
		workers = 1
	}
	if workers > chunks && chunks > 0 {
		workers = chunks
	}
	p := &Pool{
		workers:   workers,
		fn:        fn,
		intervals: make([]interval, workers),
		errChunk:  -1,
	}
	p.stats = Stats{Workers: workers, PerWorker: make([]WorkerStats, workers)}
	// Deal [0, chunks) as equal contiguous intervals.
	per := 0
	if workers > 0 {
		per = (chunks + workers - 1) / workers
	}
	for i := range p.intervals {
		lo := i * per
		hi := lo + per
		if lo > chunks {
			lo = chunks
		}
		if hi > chunks {
			hi = chunks
		}
		p.intervals[i] = interval{lo, hi}
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.run(i)
	}
	return p
}

// Run executes the scan and waits for it: Start + Wait.
func Run(workers, chunks int, fn func(w *Worker, chunk int) error) (Stats, error) {
	return Start(workers, chunks, fn).Wait()
}

// next hands worker id its next chunk: the head of its own interval, or a
// stolen tail half of the largest remaining interval. ok=false means the
// scan is over (drained or stopped).
func (p *Pool) next(id int) (chunk int, stolen, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return 0, false, false
	}
	own := &p.intervals[id]
	if own.lo < own.hi {
		chunk = own.lo
		own.lo++
		return chunk, false, true
	}
	// Steal from the victim with the most chunks left.
	victim, best := -1, 0
	for i := range p.intervals {
		if n := p.intervals[i].hi - p.intervals[i].lo; n > best {
			victim, best = i, n
		}
	}
	if victim < 0 {
		return 0, false, false
	}
	v := &p.intervals[victim]
	// Take the tail half (at least one chunk) as the thief's new interval,
	// and return its first chunk.
	take := (v.hi - v.lo + 1) / 2
	own.lo, own.hi = v.hi-take, v.hi
	v.hi -= take
	chunk = own.lo
	own.lo++
	return chunk, true, true
}

// fail records a chunk's error; the lowest chunk index wins. Chunks above
// the failing one are retracted, but chunks below it keep running: any of
// them could fail with a lower index, so the pool converges on the true
// lowest failing chunk no matter which worker hit an error first — the
// error surface is deterministic, not a scheduling accident.
func (p *Pool) fail(chunk int, err error) {
	p.errMu.Lock()
	if p.errChunk < 0 || chunk < p.errChunk {
		p.errChunk, p.err = chunk, err
	}
	p.errMu.Unlock()
	p.mu.Lock()
	for i := range p.intervals {
		if p.intervals[i].hi > chunk {
			p.intervals[i].hi = chunk
		}
		if p.intervals[i].lo > p.intervals[i].hi {
			p.intervals[i].lo = p.intervals[i].hi
		}
	}
	p.mu.Unlock()
}

func (p *Pool) run(id int) {
	defer p.wg.Done()
	w := &Worker{id: id}
	for {
		chunk, stolen, ok := p.next(id)
		if !ok {
			break
		}
		w.stats.Chunks++
		if stolen {
			w.stats.Steals++
		}
		if err := p.fn(w, chunk); err != nil {
			p.fail(chunk, err)
			break
		}
	}
	p.mu.Lock()
	p.stats.merge(id, w.stats)
	p.mu.Unlock()
}

// Cancel stops handing out new chunks; in-flight chunk functions finish.
// The merging goroutine uses it when its own (ordered) work fails.
func (p *Pool) Cancel() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

// Wait blocks until every worker has stopped and returns the merged stats
// and the deterministic first error (by chunk order, not completion order).
func (p *Pool) Wait() (Stats, error) {
	p.wg.Wait()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.stats, p.err
}
