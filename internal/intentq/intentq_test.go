package intentq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestOrderedApply(t *testing.T) {
	clk := sim.NewVirtualClock()
	var mu sync.Mutex
	var got []int
	q := New(clk, Config{Apply: func(op any) error {
		mu.Lock()
		got = append(got, op.(int))
		mu.Unlock()
		return nil
	}})
	defer q.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if seq := q.Enqueue(i, fmt.Sprintf("f%03d", i%7)); seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := q.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("applied %d intents, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("apply order broken at %d: got %d", i, v)
		}
	}
	if q.Applied() != n || q.Enqueued() != n {
		t.Fatalf("Applied=%d Enqueued=%d, want %d", q.Applied(), q.Enqueued(), n)
	}
	if q.Depth() != 0 {
		t.Fatalf("Depth = %d after drain", q.Depth())
	}
}

func TestWaitNameBlocksOnPendingIntent(t *testing.T) {
	clk := sim.NewVirtualClock()
	release := make(chan struct{})
	q := New(clk, Config{Apply: func(op any) error {
		<-release
		return nil
	}})
	defer q.Close()

	q.Enqueue("op", "dir/a")
	q.Enqueue("op", "dir/b")

	done := make(chan struct{})
	go func() {
		if err := q.WaitName("dir/a"); err != nil {
			t.Errorf("WaitName: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitName returned while the intent was still pending")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-done

	// An unrelated name never blocks.
	if err := q.WaitName("unrelated"); err != nil {
		t.Fatalf("WaitName(unrelated): %v", err)
	}
	if q.ReaderWaits() == 0 {
		t.Fatal("blocked WaitName not counted in ReaderWaits")
	}
}

func TestWaitPrefixCoversDirectoryAncestors(t *testing.T) {
	clk := sim.NewVirtualClock()
	release := make(chan struct{})
	q := New(clk, Config{Apply: func(op any) error {
		<-release
		return nil
	}})
	defer q.Close()

	q.Enqueue("op", "proj/src/main.go")

	// A scan of "proj/src/ma" must see the pending create: its
	// directory-aligned ancestor is "proj/src", which the intent counts
	// under.
	done := make(chan struct{})
	go func() {
		q.WaitPrefix("proj/src/ma")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitPrefix returned while a matching intent was pending")
	case <-time.After(20 * time.Millisecond):
	}

	// A root-level scan must also wait (every intent counts under "").
	rootDone := make(chan struct{})
	go func() {
		q.WaitPrefix("")
		close(rootDone)
	}()
	select {
	case <-rootDone:
		t.Fatal("root WaitPrefix returned while an intent was pending")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	<-done
	<-rootDone
}

func TestStickyError(t *testing.T) {
	clk := sim.NewVirtualClock()
	boom := errors.New("boom")
	var applied atomic.Int64
	q := New(clk, Config{Apply: func(op any) error {
		if op.(int) == 1 {
			return boom
		}
		applied.Add(1)
		return nil
	}})
	defer q.Close()

	q.Enqueue(0, "a")
	q.Enqueue(1, "b")
	q.Enqueue(2, "c")
	if err := q.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want sticky %v", err, boom)
	}
	if err := q.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
	// Intent 2 must have been skipped, not executed, after the failure.
	if got := applied.Load(); got != 1 {
		t.Fatalf("applied %d intents after failure, want 1 (the pre-failure one)", got)
	}
	// The queue still marks everything applied so waiters are released.
	if q.Applied() != 3 {
		t.Fatalf("Applied = %d, want 3", q.Applied())
	}
}

func TestSuspendFreezesQueue(t *testing.T) {
	clk := sim.NewVirtualClock()
	var applied atomic.Int64
	q := New(clk, Config{Apply: func(op any) error {
		applied.Add(1)
		return nil
	}})
	defer q.Close()

	q.Enqueue(0, "a")
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	q.Suspend()
	for i := 0; i < 10; i++ {
		q.Enqueue(i, "b")
	}
	time.Sleep(20 * time.Millisecond)
	if got := applied.Load(); got != 1 {
		t.Fatalf("applier ran %d intents while suspended, want 1", got)
	}
	if d := q.Depth(); d != 10 {
		t.Fatalf("Depth = %d while suspended, want 10", d)
	}
	q.Resume()
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := applied.Load(); got != 11 {
		t.Fatalf("applied = %d after resume, want 11", got)
	}
}

func TestCloseReleasesWaiters(t *testing.T) {
	clk := sim.NewVirtualClock()
	block := make(chan struct{})
	q := New(clk, Config{Apply: func(op any) error {
		<-block
		return nil
	}})
	q.Enqueue(0, "a")
	q.Enqueue(1, "a")

	errs := make(chan error, 2)
	go func() { errs <- q.WaitApplied(2) }()
	go func() { errs <- q.WaitName("a") }()
	time.Sleep(10 * time.Millisecond)
	close(block) // let the in-flight apply finish so Close can join
	q.Close()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrClosed) && err != nil {
			t.Fatalf("waiter error = %v, want ErrClosed or nil", err)
		}
	}
	// Enqueue after close is rejected.
	if seq := q.Enqueue(9, "z"); seq != 0 {
		t.Fatalf("Enqueue after Close = %d, want 0", seq)
	}
}

func TestBackpressureAtMaxDepth(t *testing.T) {
	clk := sim.NewVirtualClock()
	release := make(chan struct{})
	q := New(clk, Config{MaxDepth: 4, Apply: func(op any) error {
		<-release
		return nil
	}})
	defer q.Close()

	for i := 0; i < 4; i++ {
		q.Enqueue(i, "a")
	}
	blocked := make(chan struct{})
	go func() {
		q.Enqueue(4, "a")
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Enqueue did not block at MaxDepth")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-blocked
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if q.MaxDepthSeen() < 4 {
		t.Fatalf("MaxDepthSeen = %d, want >= 4", q.MaxDepthSeen())
	}
}

func TestLockNamesStripesExclude(t *testing.T) {
	clk := sim.NewVirtualClock()
	q := New(clk, Config{Apply: func(op any) error { return nil }})
	defer q.Close()

	unlock := q.LockNames("x", "y", "x") // duplicate stripe must not deadlock
	acquired := make(chan struct{})
	go func() {
		u := q.LockNames("x")
		u()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second LockNames(x) succeeded while stripe was held")
	case <-time.After(20 * time.Millisecond):
	}
	unlock()
	<-acquired
}

// TestWaitNoSpuriousCloseDuringOnWait pins the notifyWait window: OnWait
// drops q.mu, and Wait* callers (Open/Stat) do not hold the name stripe, so
// a concurrent Enqueue on the same key can make its pending count nonzero
// again before the waiter returns. That must never be reported as ErrClosed
// on a live queue.
func TestWaitNoSpuriousCloseDuringOnWait(t *testing.T) {
	clk := sim.NewVirtualClock()
	q := New(clk, Config{
		Apply: func(op any) error { return nil },
		// Widen the unlocked window so a racing Enqueue lands inside it.
		OnWait: func(kind, key string) { time.Sleep(50 * time.Microsecond) },
	})
	defer q.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					q.Enqueue("op", "hot")
				}
			}
		}()
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				if err := q.WaitName("hot"); err != nil {
					t.Errorf("WaitName on a live queue: %v", err)
					return
				}
				if err := q.WaitPrefix("hot"); err != nil {
					t.Errorf("WaitPrefix on a live queue: %v", err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if err := q.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestConcurrentEnqueueDrainRace(t *testing.T) {
	clk := sim.NewVirtualClock()
	var applied atomic.Int64
	q := New(clk, Config{MaxDepth: 32, Apply: func(op any) error {
		applied.Add(1)
		return nil
	}})
	defer q.Close()

	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("w%d/f%d", w, i%5)
				unlock := q.LockNames(name)
				q.Enqueue(i, name)
				unlock()
				if i%7 == 0 {
					if err := q.WaitName(name); err != nil {
						t.Errorf("WaitName: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := applied.Load(); got != workers*per {
		t.Fatalf("applied = %d, want %d", got, workers*per)
	}
}

// TestFatalDrainReleasesParkedWaiters: a WaitName/WaitPrefix caller already
// parked when a fatal apply error drains the queue must wake and return nil
// (readers serve the pre-intent state). The fatal drain replaces the count
// maps, so a waiter looping on a stale map reference would sleep forever —
// the exact hang a 10k-client soak produced.
func TestFatalDrainReleasesParkedWaiters(t *testing.T) {
	clk := sim.NewVirtualClock()
	boom := errors.New("boom")
	inApply := make(chan struct{})
	release := make(chan struct{})
	q := New(clk, Config{Apply: func(op any) error {
		close(inApply)
		<-release
		return boom
	}})
	defer q.Close()

	q.Enqueue("op", "dir/f")
	<-inApply // the applier is inside the intent that will go fatal

	type res struct{ err error }
	name := make(chan res, 1)
	prefix := make(chan res, 1)
	go func() { name <- res{q.WaitName("dir/f")} }()
	go func() { prefix <- res{q.WaitPrefix("dir/")} }()
	// Give both waiters time to park before the fatal drain swaps the maps
	// (ReaderWaits counts only completed waits, so it cannot be polled here).
	time.Sleep(50 * time.Millisecond)
	close(release)

	for i, ch := range []chan res{name, prefix} {
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("waiter %d woke with %v, want nil (pre-intent state)", i, r.err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d still parked after the fatal drain", i)
		}
	}
	if err := q.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
}
