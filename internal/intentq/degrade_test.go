package intentq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

var errFlaky = errors.New("flaky")

// TestRetryableErrorAbsorbed pins the in-place retry path: a transient
// apply error is retried (with backoff) until it clears, no waiter sees it,
// and the queue stays healthy.
func TestRetryableErrorAbsorbed(t *testing.T) {
	clk := sim.NewVirtualClock()
	var fails atomic.Int64
	fails.Store(2)
	var backoffs atomic.Int64
	q := New(clk, Config{
		Apply: func(op any) error {
			if fails.Add(-1) >= 0 {
				return errFlaky
			}
			return nil
		},
		Retryable: func(err error) bool { return errors.Is(err, errFlaky) },
		Backoff:   func(attempt int) { backoffs.Add(1) },
		OnFatal:   func(error) { t.Error("OnFatal fired for an absorbed error") },
	})
	defer q.Close()

	seq := q.Enqueue(0, "a")
	if err := q.WaitApplied(seq); err != nil {
		t.Fatalf("WaitApplied = %v after absorbed retries", err)
	}
	if err := q.Err(); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
	if got := q.ApplyRetries(); got != 2 {
		t.Fatalf("ApplyRetries = %d, want 2", got)
	}
	if got := backoffs.Load(); got != 2 {
		t.Fatalf("backoff ran %d times, want 2", got)
	}
}

// TestFatalErrorDrainsWithoutPoisoning pins the graceful-degradation
// contract: a fatal apply error fails the in-flight waiters for the dropped
// sequences, drains the queue deterministically, refuses further Enqueue —
// and leaves WaitName/WaitPrefix (the read path) returning nil.
func TestFatalErrorDrainsWithoutPoisoning(t *testing.T) {
	clk := sim.NewVirtualClock()
	boom := errors.New("boom")
	var fatal atomic.Int64
	var fatalErr error
	q := New(clk, Config{
		Apply: func(op any) error {
			if op.(int) == 1 {
				return boom
			}
			return nil
		},
		Retryable: func(error) bool { return false },
		OnFatal: func(err error) {
			fatal.Add(1)
			fatalErr = err
		},
	})
	defer q.Close()

	q.Suspend()
	s0 := q.Enqueue(0, "ok")
	s1 := q.Enqueue(1, "bad")
	s2 := q.Enqueue(2, "dropped")
	q.Resume()

	if err := q.WaitApplied(s0); err != nil {
		t.Fatalf("WaitApplied(pre-failure) = %v, want nil", err)
	}
	if err := q.WaitApplied(s1); !errors.Is(err, boom) {
		t.Fatalf("WaitApplied(failed) = %v, want %v", err, boom)
	}
	if err := q.WaitApplied(s2); !errors.Is(err, boom) {
		t.Fatalf("WaitApplied(dropped) = %v, want %v", err, boom)
	}
	if got := q.FailedFrom(); got != s1 {
		t.Fatalf("FailedFrom = %d, want %d", got, s1)
	}
	if got := fatal.Load(); got != 1 {
		t.Fatalf("OnFatal fired %d times, want 1", got)
	}
	if !errors.Is(fatalErr, boom) {
		t.Fatalf("OnFatal error = %v, want %v", fatalErr, boom)
	}
	// The read path must not be poisoned: counts are drained, waits pass.
	if err := q.WaitName("dropped"); err != nil {
		t.Fatalf("WaitName after fatal drain = %v, want nil", err)
	}
	if err := q.WaitPrefix(""); err != nil {
		t.Fatalf("WaitPrefix after fatal drain = %v, want nil", err)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth = %d after fatal drain, want 0", d)
	}
	// New work is refused, not silently dropped into a dead queue.
	if seq := q.Enqueue(3, "late"); seq != 0 {
		t.Fatalf("Enqueue after fatal = %d, want 0", seq)
	}
}

// TestRetryBudgetExhaustedIsFatal: an error that stays retryable but never
// clears must escalate after the budget, not loop forever.
func TestRetryBudgetExhaustedIsFatal(t *testing.T) {
	clk := sim.NewVirtualClock()
	var fatal atomic.Int64
	q := New(clk, Config{
		Apply:       func(op any) error { return errFlaky },
		Retryable:   func(err error) bool { return errors.Is(err, errFlaky) },
		RetryBudget: 5,
		OnFatal:     func(error) { fatal.Add(1) },
	})
	defer q.Close()

	seq := q.Enqueue(0, "a")
	if err := q.WaitApplied(seq); !errors.Is(err, errFlaky) {
		t.Fatalf("WaitApplied = %v, want %v", err, errFlaky)
	}
	if got := q.ApplyRetries(); got != 5 {
		t.Fatalf("ApplyRetries = %d, want the budget of 5", got)
	}
	if got := fatal.Load(); got != 1 {
		t.Fatalf("OnFatal fired %d times, want 1", got)
	}
}

// TestFatalReleasesBackpressuredEnqueue: a writer blocked at MaxDepth must
// wake (and be refused) when a fatal drain empties the queue, instead of
// deadlocking on a parked applier.
func TestFatalReleasesBackpressuredEnqueue(t *testing.T) {
	clk := sim.NewVirtualClock()
	gate := make(chan struct{})
	q := New(clk, Config{
		MaxDepth: 2,
		Apply: func(op any) error {
			<-gate
			return errors.New("boom")
		},
		Retryable: func(error) bool { return false },
	})
	defer q.Close()

	q.Enqueue(0, "a")
	q.Enqueue(1, "b")
	got := make(chan uint64, 1)
	go func() {
		got <- q.Enqueue(2, "c") // blocks at the cap
	}()
	select {
	case seq := <-got:
		t.Fatalf("Enqueue returned %d while the queue was full", seq)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate) // first apply fails → fatal drain
	select {
	case seq := <-got:
		// Either verdict is sound: refused after the drain (0), or it won
		// the race and was enqueued just before the failure — in which
		// case the drain dropped it and WaitApplied reports that.
		if seq != 0 {
			if err := q.WaitApplied(seq); err == nil {
				t.Fatalf("Enqueue=%d succeeded and applied after fatal", seq)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue still blocked after the fatal drain")
	}
}

// TestCloseRacesSuspendResume hammers Close against Suspend/Resume cycles
// and parked waiters: no deadlock, and every released waiter observes
// ErrClosed (or success), never a hang. Run with -race.
func TestCloseRacesSuspendResume(t *testing.T) {
	for round := 0; round < 50; round++ {
		clk := sim.NewVirtualClock()
		q := New(clk, Config{Apply: func(op any) error { return nil }})

		var wg sync.WaitGroup
		// Churn: suspend/resume cycles racing the applier and Close.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q.Suspend()
				q.Resume()
			}
		}()
		// Writers keep the queue non-empty.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q.Enqueue(i, "f")
			}
		}()
		// Waiters park on names and sequences; after Close they must all
		// return — ErrClosed when the condition was never met, nil when
		// the applier got there first.
		waiters := make(chan error, 8)
		for w := 0; w < 4; w++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				waiters <- q.WaitName("f")
			}()
			go func() {
				defer wg.Done()
				waiters <- q.WaitApplied(20)
			}()
		}
		q.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: deadlock between Close and Suspend/Resume/waiters", round)
		}
		for i := 0; i < 8; i++ {
			if err := <-waiters; err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("round %d: waiter returned %v, want nil or ErrClosed", round, err)
			}
		}
	}
}
