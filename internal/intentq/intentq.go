// Package intentq is the ordered intent queue behind the asynchronous
// metadata pipeline (AsyncFS/SwitchFS-style; see DESIGN.md §13).
//
// A mutation validates under a short read-mostly critical section, enqueues
// a typed intent record, and returns immediately with the intent's sequence
// number; a single background applier drains the queue in order and performs
// the deferred work (B-tree updates, WAL staging). Because there is exactly
// one applier and it consumes strictly in enqueue order, the applied state
// is always a prefix of the enqueued history — the consistency the readers'
// dependency waits build on.
//
// Dependency tracking is by key hashing: every intent is tagged with the
// file names it touches. The queue keeps a pending-intent count per file
// key (an FNV hash of the full name) and per directory key (a hash of every
// "/"-separated ancestor prefix, including the root), so a reader can wait
// for exactly the pending intents that could affect a name (WaitName) or a
// prefix scan (WaitPrefix) instead of draining the whole queue. Hash
// collisions only ever cause a spurious wait, never a missed one.
package intentq

import (
	"errors"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// ErrClosed is returned by Wait* calls released by Close before their
// condition was met (the queue died under them, e.g. on Crash).
var ErrClosed = errors.New("intentq: queue closed")

// Config parameterizes a Queue.
type Config struct {
	// MaxDepth bounds the unapplied intents; Enqueue blocks (backpressure)
	// at the cap so a stalled applier cannot grow the queue without bound.
	// Zero means 512.
	MaxDepth int
	// Apply executes one intent. It runs on the applier goroutine, in
	// strict enqueue order, with no queue lock held. A retryable error
	// (see Retryable) is retried in place; a fatal one drains the queue
	// deterministically (see OnFatal) and is reported by Err and by
	// WaitApplied for every dropped sequence.
	//
	// Apply may be invoked again with the same intent after returning a
	// retryable error, so it must be resume-safe: completed side effects
	// must not re-run (track per-intent progress in the op value — the
	// applier is the only goroutine touching it).
	Apply func(op any) error
	// Retryable classifies an apply error as transient: the applier backs
	// off (Backoff) and retries the same intent in place, up to
	// RetryBudget times, before treating the error as fatal. Nil means no
	// error is retryable.
	Retryable func(error) bool
	// RetryBudget bounds the in-place retries of one intent. Zero means
	// 3; negative disables retries.
	RetryBudget int
	// Backoff, when set, runs between retry attempts (attempt starts at
	// 1), on the applier goroutine without the queue lock — typically it
	// advances a simulated clock or sleeps.
	Backoff func(attempt int)
	// OnFatal, when set, is invoked exactly once, on the applier
	// goroutine without the queue lock, when an apply error is fatal
	// (non-retryable, or still failing past the retry budget). By the
	// time it fires the queue has been drained: every unapplied intent
	// was dropped, blocked waiters were released, and further Enqueue
	// calls are refused. The host uses it to fail the volume over to
	// read-only instead of letting the error poison every future wait.
	OnFatal func(error)
	// OnApplied, when set, is invoked after each intent is applied (or
	// skipped on a sticky error) with the intent value, its sequence, the
	// enqueue-to-apply lag, and the depth remaining. It runs on the applier
	// goroutine without the queue lock; the observability layer feeds its
	// gauge, histogram, and trace events from it.
	OnApplied func(op any, seq uint64, lag time.Duration, depth int)
	// OnWait, when set, is invoked once per Wait* call that actually
	// blocked, after the wait resolves. Used for the reader-wait counter
	// and trace events.
	OnWait func(kind string, key string)
}

// stripeCount is the size of the per-name lock array used by LockNames.
const stripeCount = 64

// item is one queued intent.
type item struct {
	op    any
	names []string
	at    time.Duration // enqueue time (sim clock)
}

// Queue is the per-volume ordered intent queue. All methods are safe for
// concurrent use.
type Queue struct {
	clk sim.Clock
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	items   []item
	head    int            // items[:head] are applied
	enqSeq  uint64         // sequence of the newest enqueued intent (first is 1)
	appSeq  uint64         // sequence of the newest applied intent
	nameCnt map[uint64]int // pending intents per file key
	dirCnt  map[uint64]int // pending intents per ancestor-directory key
	err     error          // sticky fatal apply error
	// failedFrom is the first sequence the fatal drain dropped (0 while
	// healthy): WaitApplied(seq) reports err only for seq >= failedFrom.
	failedFrom uint64
	closed     bool
	suspend    bool
	inApply    bool // applier is executing an intent right now

	readerWaits  atomic.Int64
	applyRetries atomic.Int64
	maxDepth     int // high-water mark, under mu

	// stripes are the validation locks handed out by LockNames. They are
	// per-queue so independent volumes never contend with each other.
	stripes [stripeCount]sync.Mutex

	done chan struct{} // closed when the applier goroutine exits
}

// New returns a queue whose applier goroutine is already running.
func New(clk sim.Clock, cfg Config) *Queue {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 512
	}
	q := &Queue{
		clk:     clk,
		cfg:     cfg,
		nameCnt: make(map[uint64]int),
		dirCnt:  make(map[uint64]int),
		done:    make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	go q.applier()
	return q
}

// nameKey hashes a full file name to its dependency key.
func nameKey(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// dirKeys returns the dependency keys of every ancestor directory of name:
// the root "" plus each "/"-separated prefix. "a/b/c" → keys of "", "a",
// "a/b".
func dirKeys(name string) []uint64 {
	keys := []uint64{nameKey("")}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			keys = append(keys, nameKey(name[:i]))
		}
	}
	return keys
}

// dirAligned returns the longest directory-aligned prefix of a scan prefix:
// the part up to the last "/", or "" when there is none. A pending name
// matching the scan prefix always counts under this directory key (it may
// also count under deeper ones), so waiting on it is conservative-correct.
func dirAligned(prefix string) string {
	if i := strings.LastIndexByte(prefix, '/'); i >= 0 {
		return prefix[:i]
	}
	return ""
}

// LockNames acquires the validation stripe locks for the given names (in a
// deadlock-free global order) and returns the matching unlock. Writers hold
// the stripe across validate-and-enqueue so two mutations of the same name
// cannot interleave their validations.
func (q *Queue) LockNames(names ...string) func() {
	idx := make([]int, 0, len(names))
	for _, n := range names {
		idx = append(idx, int(nameKey(n)%stripeCount))
	}
	sort.Ints(idx)
	locked := idx[:0]
	for i, s := range idx {
		if i > 0 && s == idx[i-1] {
			continue // same stripe: lock once
		}
		q.stripes[s].Lock()
		locked = append(locked, s)
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			q.stripes[locked[i]].Unlock()
		}
	}
}

// Enqueue appends one intent touching the given names and returns its
// sequence number. It blocks while the queue is at MaxDepth. After Close —
// or after a fatal apply error drained the queue — it returns 0 (the
// intent is dropped; callers check Err/closed state first).
func (q *Queue) Enqueue(op any, names ...string) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items)-q.head >= q.cfg.MaxDepth && !q.closed && q.err == nil {
		q.cond.Wait()
	}
	if q.closed || q.err != nil {
		return 0
	}
	q.enqSeq++
	q.items = append(q.items, item{op: op, names: names, at: q.clk.Now()})
	for _, n := range names {
		q.nameCnt[nameKey(n)]++
		for _, k := range dirKeys(n) {
			q.dirCnt[k]++
		}
	}
	if d := len(q.items) - q.head; d > q.maxDepth {
		q.maxDepth = d
	}
	q.cond.Broadcast()
	return q.enqSeq
}

// applier is the single background goroutine draining the queue in order.
func (q *Queue) applier() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for !q.closed && (q.suspend || q.head == len(q.items)) {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		it := q.items[q.head]
		q.inApply = true
		q.mu.Unlock()

		err := q.applyWithRetry(it.op)
		lag := q.clk.Now() - it.at

		q.mu.Lock()
		if err != nil {
			// Fatal: drain deterministically instead of poisoning every
			// future wait. After the drain the applier parks (head ==
			// len(items) and Enqueue refuses new work).
			q.failLocked(err)
			q.inApply = false
			q.cond.Broadcast()
			q.mu.Unlock()
			if q.cfg.OnFatal != nil {
				q.cfg.OnFatal(err)
			}
			continue
		}
		q.head++
		q.appSeq++
		seq := q.appSeq
		for _, n := range it.names {
			q.dec(q.nameCnt, nameKey(n))
			for _, k := range dirKeys(n) {
				q.dec(q.dirCnt, k)
			}
		}
		// Compact the applied prefix so the slice does not grow forever.
		if q.head > 256 && q.head*2 >= len(q.items) {
			q.items = append([]item(nil), q.items[q.head:]...)
			q.head = 0
		}
		depth := len(q.items) - q.head
		q.inApply = false
		q.cond.Broadcast()
		q.mu.Unlock()

		if q.cfg.OnApplied != nil {
			q.cfg.OnApplied(it.op, seq, lag, depth)
		}
	}
}

// retryBudget resolves Config.RetryBudget (zero means 3, negative disables).
func (q *Queue) retryBudget() int {
	switch {
	case q.cfg.RetryBudget < 0:
		return 0
	case q.cfg.RetryBudget == 0:
		return 3
	default:
		return q.cfg.RetryBudget
	}
}

// applyWithRetry runs one intent through Apply, absorbing retryable errors
// with bounded in-place retries. No queue lock is held; a Close during the
// backoff ends the attempt early (the error is then fatal, but the closed
// queue has already released its waiters).
func (q *Queue) applyWithRetry(op any) error {
	err := q.cfg.Apply(op)
	if err == nil || q.cfg.Retryable == nil {
		return err
	}
	for attempt := 1; attempt <= q.retryBudget() && q.cfg.Retryable(err); attempt++ {
		if q.cfg.Backoff != nil {
			q.cfg.Backoff(attempt)
		}
		q.mu.Lock()
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return err
		}
		q.applyRetries.Add(1)
		if err = q.cfg.Apply(op); err == nil {
			return nil
		}
	}
	return err
}

// failLocked records the fatal apply error and drains the queue
// deterministically: every unapplied intent (the failed one included) is
// dropped, the range [failedFrom, enqSeq] is marked failed, and the
// dependency counts are cleared so blocked readers wake. The caller holds
// q.mu. The post-fatal wait contract:
//
//   - WaitApplied(seq) for a dropped sequence returns the error — that
//     mutation was never applied and never will be;
//   - WaitApplied for a sequence applied before the failure returns nil;
//   - WaitName/WaitPrefix return nil: readers serve the pre-intent state.
//     The dropped mutations were never durably acknowledged (acks come
//     only from WaitCommitted), so this is exactly the state a crash at
//     the same moment would have recovered to.
func (q *Queue) failLocked(err error) {
	if q.err == nil {
		q.err = err
		q.failedFrom = q.appSeq + 1
	}
	q.head = len(q.items)
	q.appSeq = q.enqSeq
	q.nameCnt = make(map[uint64]int)
	q.dirCnt = make(map[uint64]int)
}

func (q *Queue) dec(m map[uint64]int, k uint64) {
	if m[k] <= 1 {
		delete(m, k)
	} else {
		m[k]--
	}
}

// WaitApplied blocks until intent seq has been applied, then returns the
// sticky error state.
func (q *Queue) WaitApplied(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	waited := false
	for q.appSeq < seq && !q.closed {
		waited = true
		q.cond.Wait()
	}
	// Decide the verdict before notifyWait drops q.mu: the queue can make
	// progress (or fail) during the unlocked callback, and the result must
	// reflect the state that satisfied the wait loop. The fatal error is
	// reported only for sequences the drain dropped; earlier intents
	// really were applied.
	err := q.err
	if err != nil && seq < q.failedFrom {
		err = nil
	}
	if err == nil && q.appSeq < seq {
		err = ErrClosed
	}
	if waited {
		q.readerWaits.Add(1)
		q.notifyWait("applied", "")
	}
	return err
}

// WaitName blocks until no pending intent touches name. Callers that went
// through LockNames(name) hold the stripe, so no new intent for the name can
// be enqueued while they wait.
func (q *Queue) WaitName(name string) error {
	return q.waitKey(&q.nameCnt, nameKey(name), "name", name)
}

// WaitPrefix blocks until no pending intent could affect a scan of prefix:
// it waits on the longest directory-aligned ancestor of the prefix, which
// conservatively covers every matching name.
func (q *Queue) WaitPrefix(prefix string) error {
	return q.waitKey(&q.dirCnt, nameKey(dirAligned(prefix)), "prefix", prefix)
}

// waitKey takes a pointer to the count map field, not the map itself: a
// fatal drain (failLocked) swaps in fresh maps, and a waiter parked across
// that swap must re-read the field or it would loop on a stale count
// forever.
func (q *Queue) waitKey(m *map[uint64]int, k uint64, kind, label string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	waited := false
	for (*m)[k] > 0 && !q.closed {
		waited = true
		q.cond.Wait()
	}
	// Decide the verdict before notifyWait drops q.mu: Wait* callers need
	// not hold the name stripe (Open/Stat never do), so a concurrent
	// Enqueue on the same key during the unlocked callback can make
	// m[k] > 0 again on a live queue — checking only afterwards would
	// misreport that as ErrClosed. A sticky fatal error is deliberately
	// NOT returned here: the fatal drain cleared the counts, and readers
	// keep serving the pre-intent state (see failLocked).
	var err error
	if (*m)[k] > 0 {
		err = ErrClosed
	}
	if waited {
		q.readerWaits.Add(1)
		q.notifyWait(kind, label)
	}
	return err
}

// notifyWait fires OnWait without the lock (it re-acquires around the call).
// Caller holds q.mu.
func (q *Queue) notifyWait(kind, label string) {
	if q.cfg.OnWait == nil {
		return
	}
	q.mu.Unlock()
	q.cfg.OnWait(kind, label)
	q.mu.Lock()
}

// Drain blocks until everything enqueued so far is applied.
func (q *Queue) Drain() error {
	q.mu.Lock()
	seq := q.enqSeq
	q.mu.Unlock()
	return q.WaitApplied(seq)
}

// Suspend parks the applier after the in-flight intent (if any) finishes;
// enqueued intents stay frozen in the queue until Resume. Test harnesses use
// it to build a deterministic deep-unapplied-queue state.
func (q *Queue) Suspend() {
	q.mu.Lock()
	q.suspend = true
	for q.inApply {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// Resume restarts a suspended applier.
func (q *Queue) Resume() {
	q.mu.Lock()
	q.suspend = false
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Close stops the applier without draining (a crash abandons the queue;
// orderly shutdown calls Drain first) and waits for the goroutine to exit,
// so no apply is in flight when Close returns. Blocked waiters are released.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}

// Err returns the sticky fatal apply error, if any.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// FailedFrom returns the first sequence dropped by a fatal drain (0 while
// the queue is healthy).
func (q *Queue) FailedFrom() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failedFrom
}

// ApplyRetries returns how many in-place retries the applier has performed.
func (q *Queue) ApplyRetries() int64 { return q.applyRetries.Load() }

// Depth returns the number of enqueued-but-unapplied intents (including the
// one being applied right now).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// MaxDepthSeen returns the queue-depth high-water mark.
func (q *Queue) MaxDepthSeen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.maxDepth
}

// Enqueued returns the sequence number of the newest enqueued intent
// (0 = none yet). This is the async pipeline's commit sequence.
func (q *Queue) Enqueued() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.enqSeq
}

// Applied returns the sequence number of the newest applied intent.
func (q *Queue) Applied() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.appSeq
}

// ReaderWaits returns how many Wait* calls actually blocked.
func (q *Queue) ReaderWaits() int64 { return q.readerWaits.Load() }
