package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/crashtest"
)

// The crash-state exploration experiment. internal/crashtest enumerates
// every barrier-consistent crash image of a scripted workload — prefix
// cuts, legal write reorderings within the open barrier epoch, and torn
// variants of multi-sector writes — then mounts each one and checks the
// durability oracle: acknowledged operations survive, unacknowledged ones
// are atomically present-or-absent, and no image fails to mount. This
// benchmark reports the sweep throughput (crash states verified per
// second) and the distribution of simulated recovery times across all
// those images, the systematic version of the paper's observed 1–25 s
// post-crash recovery window.

// CrashSweepReport is what BENCH_crashsweep.json holds. Recovery times are
// simulated (virtual-clock) values; StatesPerSec is wall clock.
type CrashSweepReport struct {
	Seed          int64   `json:"seed"`
	Ops           int     `json:"ops"`
	AckedOps      int     `json:"acked_ops"`
	Epochs        int     `json:"epochs"`
	StatesTotal   int     `json:"states_total"`
	States        int     `json:"states_executed"`
	PrefixStates  int     `json:"prefix_states"`
	ReorderStates int     `json:"reorder_states"`
	TornStates    int     `json:"torn_states"`
	MountFailures int     `json:"mount_failures"`
	Violations    int     `json:"violations"`
	TornRecords   int     `json:"torn_records"`
	TailDiscarded int     `json:"tail_discarded"`
	GapBreaks     int     `json:"gap_breaks"`
	StatesPerSec  float64 `json:"states_per_sec"`
	RecoveryMinS  float64 `json:"recovery_min_s"`
	RecoveryMedS  float64 `json:"recovery_median_s"`
	RecoveryMaxS  float64 `json:"recovery_max_s"`
	ElapsedS      float64 `json:"elapsed_wall_s"`
}

// CrashSweepReportRun runs the full enumeration for the default workload.
func CrashSweepReportRun() (CrashSweepReport, error) {
	var rep CrashSweepReport
	res, err := crashtest.Run(crashtest.Config{Seed: 1, StateID: -1})
	if err != nil {
		return rep, err
	}
	if res.MountFailures > 0 || len(res.Violations) > 0 {
		return rep, fmt.Errorf("crash sweep found real failures: %d mount failures, %d violations (seed %d)",
			res.MountFailures, len(res.Violations), res.Seed)
	}
	rmin, rmed, rmax := res.RecoverySummary()
	rep = CrashSweepReport{
		Seed:          res.Seed,
		Ops:           res.Ops,
		AckedOps:      res.AckedOps,
		Epochs:        res.Epochs,
		StatesTotal:   res.StatesTotal,
		States:        res.States,
		PrefixStates:  res.PrefixStates,
		ReorderStates: res.ReorderStates,
		TornStates:    res.TornStates,
		MountFailures: res.MountFailures,
		Violations:    len(res.Violations),
		TornRecords:   res.TornRecords,
		TailDiscarded: res.TailDiscarded,
		GapBreaks:     res.GapBreaks,
		RecoveryMinS:  rmin.Seconds(),
		RecoveryMedS:  rmed.Seconds(),
		RecoveryMaxS:  rmax.Seconds(),
		ElapsedS:      res.Elapsed.Seconds(),
	}
	if res.Elapsed > 0 {
		rep.StatesPerSec = float64(res.States) / res.Elapsed.Seconds()
	}
	return rep, nil
}

// CrashSweep renders the exploration as a table.
func CrashSweep() (Table, error) {
	rep, err := CrashSweepReportRun()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Crash sweep",
		Title:  "Systematic crash-state exploration with the durability oracle",
		Header: []string{"Metric", "Value"},
		Rows: [][]string{
			{"workload", fmt.Sprintf("seed %d, %d ops (%d acked), %d barrier epochs", rep.Seed, rep.Ops, rep.AckedOps, rep.Epochs)},
			{"crash states verified", fmt.Sprintf("%d (%d prefix, %d reorder, %d torn)", rep.States, rep.PrefixStates, rep.ReorderStates, rep.TornStates)},
			{"oracle verdict", fmt.Sprintf("%d mount failures, %d violations", rep.MountFailures, rep.Violations)},
			{"recovery damage absorbed", fmt.Sprintf("%d torn records, %d tail records discarded, %d gap breaks", rep.TornRecords, rep.TailDiscarded, rep.GapBreaks)},
			{"sweep throughput", fmt.Sprintf("%.0f states/sec wall clock", rep.StatesPerSec)},
			{"simulated recovery time", fmt.Sprintf("min %.2f s, median %.2f s, max %.2f s", rep.RecoveryMinS, rep.RecoveryMedS, rep.RecoveryMaxS)},
		},
		Notes: []string{
			"every crash image mounts and satisfies the durability oracle",
			fmt.Sprintf("recovery stays inside the paper's observed 1-25 s window (max %.2f s)", rep.RecoveryMaxS),
		},
	}
	return t, nil
}

// WriteCrashSweepJSON runs the sweep and records it at path
// (BENCH_crashsweep.json at the repo root).
func WriteCrashSweepJSON(path string) (CrashSweepReport, error) {
	rep, err := CrashSweepReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}
