package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/disk"
	"repro/internal/workload"
)

// The write-fault-path sweep. PR 7's robustness work puts bounded retries,
// automatic spare-sector remapping, and a hung-I/O deadline on every write
// site; this benchmark measures what that tolerance costs. A fixed
// create-heavy workload runs against seeded write faults at increasing
// rates — transient errors at the headline rate, bad-on-write sectors at a
// tenth of it — with and without a composed hung-I/O probability, and the
// report records throughput next to the retry/remap/hung counters and the
// final health verdict. The zero-rate cell is the control: its throughput
// is the no-fault baseline the overhead column is computed against.

// FaultPathResult is one cell of the sweep.
type FaultPathResult struct {
	Mode         string  `json:"mode"`
	TransientPct float64 `json:"transient_pct"` // headline write-fault rate, percent
	HungIO       bool    `json:"hung_io"`
	Ops          int     `json:"ops"`
	ElapsedMS    float64 `json:"elapsed_ms"` // virtual disk time
	Throughput   float64 `json:"throughput_ops_per_sec"`
	WriteRetries int     `json:"write_retries"`
	WriteRemaps  int     `json:"write_remaps"`
	HungOps      int     `json:"hung_ops"`
	ErrorBudget  int     `json:"error_budget"`
	Health       string  `json:"health"`
	SlowdownX    float64 `json:"slowdown_x"` // elapsed vs the zero-rate control
}

// FaultPathReport is what BENCH_faultpath.json holds.
type FaultPathReport struct {
	Model string            `json:"model"`
	Cells []FaultPathResult `json:"cells"`
}

// faultPathOps is creates per cell; every file is committed by the periodic
// forces so each op exercises log, leader, and data writes.
const faultPathOps = 240

func faultPathRun(mode string, rate float64, hung bool) (FaultPathResult, error) {
	cfg := fsdBenchConfig()
	// Generous budget: the sweep measures absorption cost, not the FSM
	// thresholds (those are pinned by the core tests), so the volume
	// should stay writable through the 1% cell.
	cfg.ErrorBudget = 1 << 20
	fe, err := newFSD(cfg)
	if err != nil {
		return FaultPathResult{}, err
	}
	fc := disk.FaultConfig{
		Seed:           42,
		TransientWrite: rate,
		BadOnWrite:     rate / 10,
	}
	if hung {
		// Rare but expensive: each hit stalls past the 1 s op deadline.
		fc.HungIO = 0.003
		fc.HungIODelay = 1500 * time.Millisecond
	}
	if rate > 0 || hung {
		fe.d.InjectFaults(fc)
	}
	fe.d.ResetStats()
	start := fe.clk.Now()
	data := workload.Payload(2048, 11)
	for i := 0; i < faultPathOps; i++ {
		if _, err := fe.v.Create(fmt.Sprintf("fp/f%04d", i), data); err != nil {
			return FaultPathResult{}, fmt.Errorf("create %d (health %v): %w",
				i, fe.v.Health(), err)
		}
		if i%20 == 19 {
			if err := fe.v.Force(); err != nil {
				return FaultPathResult{}, fmt.Errorf("force at %d: %w", i, err)
			}
		}
	}
	if err := fe.v.Force(); err != nil {
		return FaultPathResult{}, err
	}
	elapsed := fe.clk.Now() - start
	st := fe.v.Stats()
	fe.d.ClearFaults()
	if err := fe.v.Shutdown(); err != nil {
		return FaultPathResult{}, err
	}
	return FaultPathResult{
		Mode:         mode,
		TransientPct: rate * 100,
		HungIO:       hung,
		Ops:          faultPathOps,
		ElapsedMS:    float64(elapsed) / float64(time.Millisecond),
		Throughput:   float64(faultPathOps) / elapsed.Seconds(),
		WriteRetries: st.Faults.WriteRetries,
		WriteRemaps:  st.Faults.WriteRemaps,
		HungOps:      st.Faults.HungOps,
		ErrorBudget:  st.Faults.ErrorBudget,
		Health:       st.Health.String(),
	}, nil
}

// FaultPathReportRun runs the rate x hung-I/O grid.
func FaultPathReportRun() (FaultPathReport, error) {
	rep := FaultPathReport{
		Model: "seeded injector: transient write errors at the headline rate, " +
			"bad-on-write at rate/10, hung ops stall 1.5s against the 1s deadline; " +
			"virtual disk time only (detached CPU)",
	}
	cells := []struct {
		mode string
		rate float64
		hung bool
	}{
		{"clean", 0, false},
		{"0.1%", 0.001, false},
		{"1%", 0.01, false},
		{"clean+hung", 0, true},
		{"0.1%+hung", 0.001, true},
		{"1%+hung", 0.01, true},
	}
	var control float64
	for _, c := range cells {
		r, err := faultPathRun(c.mode, c.rate, c.hung)
		if err != nil {
			return FaultPathReport{}, fmt.Errorf("%s: %w", c.mode, err)
		}
		if c.mode == "clean" {
			control = r.ElapsedMS
		}
		if control > 0 {
			r.SlowdownX = r.ElapsedMS / control
		}
		rep.Cells = append(rep.Cells, r)
	}
	return rep, nil
}

// WriteFaultPathJSON runs the sweep and records it at path
// (BENCH_faultpath.json at the repo root).
func WriteFaultPathJSON(path string) (FaultPathReport, error) {
	rep, err := FaultPathReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// FaultPath renders the sweep as a benchtab table.
func FaultPath() (Table, error) {
	rep, err := FaultPathReportRun()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "FaultPath",
		Title: "Write-fault absorption cost (bounded retries + spare remap + hung-I/O deadline)",
		Header: []string{"Faults", "Ops", "Elapsed (ms)", "Ops/s", "Retries",
			"Remaps", "Hung", "Budget", "Health", "Slowdown"},
	}
	for _, r := range rep.Cells {
		t.Rows = append(t.Rows, []string{
			r.Mode, fmt.Sprint(r.Ops), fmt.Sprintf("%.0f", r.ElapsedMS),
			fmt.Sprintf("%.0f", r.Throughput), fmt.Sprint(r.WriteRetries),
			fmt.Sprint(r.WriteRemaps), fmt.Sprint(r.HungOps),
			fmt.Sprint(r.ErrorBudget), r.Health, fmt.Sprintf("%.2fx", r.SlowdownX),
		})
	}
	t.Notes = append(t.Notes,
		"workload: 240 committed 2 KB creates; error budget raised so the FSM never demotes mid-sweep",
		rep.Model,
	)
	return t, nil
}
