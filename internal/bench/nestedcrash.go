package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/crashtest"
)

// The nested-crash (depth-2) exploration experiment. For a bounded, seeded
// sample of outer crash images, the recovery mount itself runs under a
// write-back window and is crashed again at sampled barrier epochs; every
// resulting image is recovered once more. The durability oracle must hold
// across the double crash — acknowledged operations survive, unacknowledged
// ones stay atomic, every state mounts — and the second recovery must
// reproduce the first one's decisions exactly (replay idempotence made
// observable). The report carries the recovery-of-recovery latency
// distribution alongside the state counts.

// NestedCrashReport is what BENCH_nestedcrash.json holds. Recovery times are
// simulated (virtual-clock) values; StatesPerSec is wall clock and counts
// inner mounts.
type NestedCrashReport struct {
	Seed             int64   `json:"seed"`
	Depth            int     `json:"depth"`
	Ops              int     `json:"ops"`
	AckedOps         int     `json:"acked_ops"`
	Epochs           int     `json:"epochs"`
	OuterStatesTotal int     `json:"outer_states_total"`
	OuterStates      int     `json:"outer_states_explored"`
	InnerStatesTotal int     `json:"inner_states_total"`
	InnerStates      int     `json:"inner_states_explored"`
	MountFailures    int     `json:"outer_mount_failures"`
	InnerMountFails  int     `json:"inner_mount_failures"`
	Violations       int     `json:"depth2_violations"`
	TornRecords      int     `json:"torn_records"`
	TailDiscarded    int     `json:"tail_discarded"`
	GapBreaks        int     `json:"gap_breaks"`
	StatesPerSec     float64 `json:"inner_states_per_sec"`
	RecoveryMinS     float64 `json:"recovery_min_s"`
	RecoveryMedS     float64 `json:"recovery_median_s"`
	RecoveryMaxS     float64 `json:"recovery_max_s"`
	RecRecMinS       float64 `json:"recovery_of_recovery_min_s"`
	RecRecMedS       float64 `json:"recovery_of_recovery_median_s"`
	RecRecMaxS       float64 `json:"recovery_of_recovery_max_s"`
	ElapsedS         float64 `json:"elapsed_wall_s"`
}

// NestedCrashReportRun runs the depth-2 exploration over a bounded outer
// sample. outerStates bounds the outer images explored (0 means the
// acceptance default of 300); every outer image gets the default inner
// sample per barrier epoch of its recovery.
func NestedCrashReportRun(outerStates int) (NestedCrashReport, error) {
	var rep NestedCrashReport
	if outerStates == 0 {
		outerStates = 300
	}
	res, err := crashtest.Run(crashtest.Config{
		Seed:      1,
		StateID:   -1,
		MaxStates: outerStates,
		Nested:    true,
	})
	if err != nil {
		return rep, err
	}
	if res.MountFailures > 0 || res.InnerMountFailures > 0 || len(res.Violations) > 0 {
		return rep, fmt.Errorf("nested crash sweep found real failures: %d/%d mount failures, %d violations (seed %d)",
			res.MountFailures, res.InnerMountFailures, len(res.Violations), res.Seed)
	}
	rmin, rmed, rmax := res.RecoverySummary()
	nmin, nmed, nmax := res.RecoveryOfRecoverySummary()
	rep = NestedCrashReport{
		Seed:             res.Seed,
		Depth:            2,
		Ops:              res.Ops,
		AckedOps:         res.AckedOps,
		Epochs:           res.Epochs,
		OuterStatesTotal: res.StatesTotal,
		OuterStates:      res.States,
		InnerStatesTotal: res.InnerStatesTotal,
		InnerStates:      res.InnerStates,
		MountFailures:    res.MountFailures,
		InnerMountFails:  res.InnerMountFailures,
		Violations:       len(res.Violations),
		TornRecords:      res.TornRecords,
		TailDiscarded:    res.TailDiscarded,
		GapBreaks:        res.GapBreaks,
		RecoveryMinS:     rmin.Seconds(),
		RecoveryMedS:     rmed.Seconds(),
		RecoveryMaxS:     rmax.Seconds(),
		RecRecMinS:       nmin.Seconds(),
		RecRecMedS:       nmed.Seconds(),
		RecRecMaxS:       nmax.Seconds(),
		ElapsedS:         res.Elapsed.Seconds(),
	}
	if res.Elapsed > 0 {
		rep.StatesPerSec = float64(res.InnerStates) / res.Elapsed.Seconds()
	}
	return rep, nil
}

// NestedCrash renders the depth-2 exploration as a table.
func NestedCrash() (Table, error) {
	rep, err := NestedCrashReportRun(0)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Nested crash",
		Title:  "Depth-2 crash exploration: recovery crashed and recovered again",
		Header: []string{"Metric", "Value"},
		Rows: [][]string{
			{"workload", fmt.Sprintf("seed %d, %d ops (%d acked), %d barrier epochs", rep.Seed, rep.Ops, rep.AckedOps, rep.Epochs)},
			{"outer crash states", fmt.Sprintf("%d explored of %d enumerated", rep.OuterStates, rep.OuterStatesTotal)},
			{"inner (depth-2) states", fmt.Sprintf("%d explored of %d enumerated", rep.InnerStates, rep.InnerStatesTotal)},
			{"oracle verdict", fmt.Sprintf("%d outer + %d inner mount failures, %d depth-2 violations", rep.MountFailures, rep.InnerMountFails, rep.Violations)},
			{"recovery damage absorbed", fmt.Sprintf("%d torn records, %d tail records discarded, %d gap breaks", rep.TornRecords, rep.TailDiscarded, rep.GapBreaks)},
			{"sweep throughput", fmt.Sprintf("%.0f inner states/sec wall clock", rep.StatesPerSec)},
			{"first recovery time", fmt.Sprintf("min %.2f s, median %.2f s, max %.2f s", rep.RecoveryMinS, rep.RecoveryMedS, rep.RecoveryMaxS)},
			{"recovery-of-recovery time", fmt.Sprintf("min %.2f s, median %.2f s, max %.2f s", rep.RecRecMinS, rep.RecRecMedS, rep.RecRecMaxS)},
		},
		Notes: []string{
			"every depth-2 image mounts; acked ops survive the double crash; the second recovery reproduces the first one's decisions",
			fmt.Sprintf("recovery-of-recovery stays inside the paper's observed 1-25 s window (max %.2f s)", rep.RecRecMaxS),
		},
	}
	return t, nil
}

// WriteNestedCrashJSON runs the depth-2 sweep and records it at path
// (BENCH_nestedcrash.json at the repo root).
func WriteNestedCrashJSON(path string) (NestedCrashReport, error) {
	rep, err := NestedCrashReportRun(0)
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}
