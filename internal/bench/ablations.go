package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/workload"
)

// AblationCommitInterval sweeps the group-commit period over the bulk-update
// workload: the paper notes the reduction factors "may be improved somewhat
// by using a bigger log and lengthening the time between commits", at the
// price of a longer window of uncertainty.
func AblationCommitInterval() (Table, error) {
	t := Table{
		ID:     "Ablation/interval",
		Title:  "Group-commit interval vs bulk-update I/O",
		Header: []string{"Interval", "Metadata I/Os", "Total I/Os", "Log forces", "Images elided"},
	}
	for _, iv := range []time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		cfg := fsdBenchConfig()
		if iv == 0 {
			cfg.Synchronous = true
		} else {
			cfg.GroupCommitInterval = iv
		}
		fe, err := newFSD(cfg)
		if err != nil {
			return Table{}, err
		}
		if err := workload.BulkUpdatePrepare(fe.t, workload.DefaultBulkUpdate); err != nil {
			return Table{}, err
		}
		fe.v.Force()
		fe.d.ResetStats()
		fe.v.Log().ResetStats()
		if err := workload.BulkUpdateRun(fe.t, workload.DefaultBulkUpdate); err != nil {
			return Table{}, err
		}
		fe.v.Force()
		ds := fe.d.Stats()
		ls := fe.v.Log().Stats()
		label := iv.String()
		if iv == 0 {
			label = "sync"
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(ds.OpsByClass[disk.ClassMeta]), fmt.Sprint(ds.Ops),
			fmt.Sprint(ls.Forces), fmt.Sprint(ls.ImagesElided),
		})
	}
	t.Notes = append(t.Notes, "paper design point: 500ms")
	return t, nil
}

// AblationThirds varies the number of log divisions: more divisions use the
// log more fully (fraction (2k-1)/2k) but flush home pages more often.
func AblationThirds() (Table, error) {
	t := Table{
		ID:     "Ablation/thirds",
		Title:  "Log divisions vs home-page flush traffic",
		Header: []string{"Divisions", "Crossings", "Home flushes", "Records", "Avg usable fraction"},
	}
	for _, k := range []int{2, 3, 4, 6} {
		cfg := fsdBenchConfig()
		cfg.Thirds = k
		cfg.LogSectors = 4 + k*400 // keep total log size comparable
		fe, err := newFSD(cfg)
		if err != nil {
			return Table{}, err
		}
		// Enough churn to wrap the log several times.
		for i := 0; i < 1200; i++ {
			if _, err := fe.v.Create(fmt.Sprintf("churn/f%05d", i), workload.Payload(600, byte(i))); err != nil {
				return Table{}, err
			}
			if i%25 == 24 {
				fe.v.Force()
			}
		}
		fe.v.Force()
		ls := fe.v.Log().Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(ls.ThirdCrossings), fmt.Sprint(ls.HomeFlushes),
			fmt.Sprint(ls.Records), fmt.Sprintf("%.2f", float64(2*k-1)/float64(2*k)),
		})
	}
	t.Notes = append(t.Notes, "paper uses thirds: 5/6 of the log in use on average")
	return t, nil
}

// AblationDoubleWrite compares the doubled name table against a single copy:
// the write cost of the paper's robustness choice.
func AblationDoubleWrite() (Table, error) {
	t := Table{
		ID:     "Ablation/doublewrite",
		Title:  "Name-table double write: robustness cost",
		Header: []string{"Mode", "100-create I/Os", "list-100 I/Os (cold)", "Survives one damaged copy"},
	}
	for _, single := range []bool{false, true} {
		cfg := fsdBenchConfig()
		cfg.SingleCopyNT = single
		fe, err := newFSD(cfg)
		if err != nil {
			return Table{}, err
		}
		fe.d.ResetStats()
		if err := workload.SmallCreates(fe.t, "dw", 100, 500); err != nil {
			return Table{}, err
		}
		fe.v.Force()
		creates := fe.d.Stats().Ops
		fe.v.DropCaches()
		fe.d.ResetStats()
		if _, err := workload.ListDir(fe.t, "dw"); err != nil {
			return Table{}, err
		}
		lists := fe.d.Stats().Ops
		mode, survives := "double (paper)", "yes"
		if single {
			mode, survives = "single", "no"
		}
		t.Rows = append(t.Rows, []string{mode, fmt.Sprint(creates), fmt.Sprint(lists), survives})
	}
	return t, nil
}

// AblationPlacement compares centre-cylinder metadata placement against
// edge placement, measuring seek time during MakeDo.
func AblationPlacement() (Table, error) {
	t := Table{
		ID:     "Ablation/placement",
		Title:  "Metadata placement: centre vs edge cylinders",
		Header: []string{"Placement", "MakeDo seek time (ms)", "MakeDo elapsed (ms)", "Seeks"},
	}
	for _, edge := range []bool{false, true} {
		cfg := fsdBenchConfig()
		cfg.EdgePlacement = edge
		fe, err := newFSD(cfg)
		if err != nil {
			return Table{}, err
		}
		if err := workload.MakeDoPrepare(fe.t, workload.DefaultMakeDo); err != nil {
			return Table{}, err
		}
		fe.v.Force()
		fe.d.ResetStats()
		start := fe.clk.Now()
		if err := workload.MakeDoRun(fe.t, workload.DefaultMakeDo, newRng(5)); err != nil {
			return Table{}, err
		}
		fe.v.Force()
		elapsed := fe.clk.Now() - start
		ds := fe.d.Stats()
		mode := "centre (paper)"
		if edge {
			mode = "edge"
		}
		t.Rows = append(t.Rows, []string{
			mode, ms(ds.SeekTime), ms(elapsed), fmt.Sprint(ds.Seeks + ds.ShortSeeks),
		})
	}
	return t, nil
}

// AblationAllocator compares the big/small split allocator against a
// CFS-style single first-fit area under create/delete churn with the
// paper's file-size distribution, reporting the largest free run left.
func AblationAllocator() (Table, error) {
	t := Table{
		ID:     "Ablation/allocator",
		Title:  "Big/small file areas vs single area: fragmentation after churn",
		Header: []string{"Allocator", "Largest free run (pages)", "Files", "Free pages"},
	}
	run := func(split bool) ([]string, error) {
		cfg := fsdBenchConfig()
		if !split {
			// A huge threshold makes everything "small": one first-fit
			// area, like CFS.
			cfg.SmallThreshold = 1 << 30
		}
		fe, err := newFSD(cfg)
		if err != nil {
			return nil, err
		}
		rng := newRng(7)
		var live []string
		// Interleave small and big files, then delete every other one.
		for i := 0; i < 400; i++ {
			size := workload.FileSize(rng)
			if size > 512*1024 {
				size = 512 * 1024
			}
			name := fmt.Sprintf("frag/f%05d", i)
			if _, err := fe.v.Create(name, workload.Payload(size, byte(i))); err != nil {
				return nil, err
			}
			live = append(live, name)
		}
		for i := 0; i < len(live); i += 2 {
			if err := fe.v.Delete(live[i], 0); err != nil {
				return nil, err
			}
		}
		fe.v.Force()
		// Probe the largest contiguous run by bisection on Alloc size.
		lo, hi := 0, fe.v.VAM().FreeCount()
		probe := func(n int) bool {
			f, err := fe.v.Create("frag/probe", make([]byte, (n-1)*disk.SectorSize))
			if err != nil {
				return false
			}
			single := len(f.Entry().Runs) == 1
			fe.v.Delete("frag/probe", 0)
			fe.v.Force()
			return single
		}
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if probe(mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		label := "single area (CFS-style)"
		if split {
			label = "big/small areas (paper)"
		}
		return []string{label, fmt.Sprint(lo), "400 created / 200 deleted", fmt.Sprint(fe.v.VAM().FreeCount())}, nil
	}
	for _, split := range []bool{true, false} {
		row, err := run(split)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationVAMLogging reproduces the claim behind the paper's rejected
// extension: "VAM logging would greatly decrease worst case crash recovery
// time from about twenty five seconds to about two seconds. VAM logging was
// not done since it was a complicated modification, worst case recovery is
// rare, and recovery was fast enough anyway." This repository implements it
// (Config.LogVAM) and measures both paths on identically populated volumes.
func AblationVAMLogging() (Table, error) {
	t := Table{
		ID:     "Ablation/vamlog",
		Title:  "VAM logging (the paper's rejected extension): crash recovery time",
		Header: []string{"Mode", "Recovery (s)", "VAM scan (s)", "Log records", "Reconstructed"},
	}
	for _, logVAM := range []bool{false, true} {
		cfg := fsdBenchConfig()
		cfg.LogVAM = logVAM
		fe, err := newFSD(cfg)
		if err != nil {
			return Table{}, err
		}
		if _, err := populate(fe.t, 11); err != nil {
			return Table{}, err
		}
		if err := fe.v.Force(); err != nil {
			return Table{}, err
		}
		if err := fe.v.Force(); err != nil { // carry the shadow-merge deltas
			return Table{}, err
		}
		fe.v.Crash()
		fe.d.Revive()
		_, ms2, err := core.Mount(fe.d, cfg)
		if err != nil {
			return Table{}, err
		}
		mode := "scan on recovery (paper's choice)"
		if logVAM {
			mode = "VAM logging (rejected extension)"
		}
		t.Rows = append(t.Rows, []string{
			mode,
			fmt.Sprintf("%.1f", ms2.Elapsed.Seconds()),
			fmt.Sprintf("%.1f", ms2.VAMElapsed.Seconds()),
			fmt.Sprint(ms2.LogRecords),
			fmt.Sprint(ms2.VAMReconstructed),
		})
	}
	t.Notes = append(t.Notes, "paper's estimate: 25 s worst case -> about 2 s with VAM logging")
	return t, nil
}

// AblationLogSize varies the log region: the paper notes the group-commit
// reduction factors "may be improved somewhat by using a bigger log", which
// shows up as fewer third crossings (less home-flush traffic) per unit of
// work.
func AblationLogSize() (Table, error) {
	t := Table{
		ID:     "Ablation/logsize",
		Title:  "Log size vs flush traffic under churn",
		Header: []string{"Log (sectors)", "Crossings", "Home flushes", "Records", "Total I/Os"},
	}
	for _, size := range []int{4 + 3*256, 4 + 3*800, 4 + 3*2400} {
		cfg := fsdBenchConfig()
		cfg.LogSectors = size
		fe, err := newFSD(cfg)
		if err != nil {
			return Table{}, err
		}
		fe.d.ResetStats()
		for i := 0; i < 1200; i++ {
			if _, err := fe.v.Create(fmt.Sprintf("ls/f%05d", i), workload.Payload(600, byte(i))); err != nil {
				return Table{}, err
			}
			if i%25 == 24 {
				fe.v.Force()
			}
		}
		fe.v.Force()
		ls := fe.v.Log().Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size), fmt.Sprint(ls.ThirdCrossings), fmt.Sprint(ls.HomeFlushes),
			fmt.Sprint(ls.Records), fmt.Sprint(fe.d.Stats().Ops),
		})
	}
	t.Notes = append(t.Notes, "paper default: 2404 sectors (~1.2 MB)")
	return t, nil
}

// Hardware prints the simulated drive characterization every experiment
// runs on, with the figures the timing model derives from it.
func Hardware() (Table, error) {
	g, p := disk.DefaultGeometry, disk.DefaultParams
	rawBW := float64(g.SectorsPerTrack*disk.SectorSize) / p.Revolution().Seconds()
	t := Table{
		ID:     "Hardware",
		Title:  "Simulated Trident-class drive",
		Header: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"capacity", fmt.Sprintf("%d MB (%d sectors of %d B)", g.Bytes()/(1<<20), g.Sectors(), disk.SectorSize)},
			{"geometry", fmt.Sprintf("%d cylinders x %d tracks x %d sectors", g.Cylinders, g.TracksPerCylinder, g.SectorsPerTrack)},
			{"spindle", fmt.Sprintf("%.0f RPM (%.2f ms/revolution)", p.RPM, p.Revolution().Seconds()*1000)},
			{"average seek (1/3 stroke)", fmt.Sprintf("%.1f ms", p.SeekTime(g.Cylinders/3).Seconds()*1000)},
			{"average rotational latency", fmt.Sprintf("%.2f ms", p.Revolution().Seconds()*500)},
			{"raw transfer rate", fmt.Sprintf("%.0f KB/s", rawBW/1024)},
			{"single-sector random read", fmt.Sprintf("~%.0f ms", (p.SeekTime(g.Cylinders/3)+p.Revolution()/2+p.SectorTime(g)).Seconds()*1000)},
		},
		Notes: []string{"all experiments and the analytical model share these parameters"},
	}
	return t, nil
}
