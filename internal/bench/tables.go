package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/unixfs"
	"repro/internal/workload"
)

// Table1 renders the disk data-structure comparison (paper Table 1). It is
// structural: the rows are generated from the live systems' own layouts so
// the documentation cannot drift from the code.
func Table1() (Table, error) {
	t := Table{
		ID:     "Table 1",
		Title:  "Disk data structures for local files in CFS and FSD",
		Header: []string{"Structure", "CFS", "FSD"},
		Rows: [][]string{
			{"File name table", "text name, version, keep, uid, header page 0 disk address", "text name, version, keep, uid, run table, byte size, create time"},
			{"Headers", "run table, byte size, keep, create time, version, text name (2 sectors per file)", "— (folded into the name table)"},
			{"Leaders", "—", "uid, preamble of run table, checksum of run table (1 sector per file)"},
			{"Labels", "uid, page number, page type on every sector (hardware-checked)", "— (no labels; software checks instead)"},
			{"Redundancy", "different structures cross-check (header vs label vs name table)", "name table stored twice; log carries two copies of every image"},
		},
		Notes: []string{
			"structural comparison; generated from internal/cfs and internal/core",
		},
	}
	return t, nil
}

// Table2 measures the wall-clock operation comparison (paper Table 2).
func Table2() (Table, error) {
	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return Table{}, err
	}
	ce, err := newCFS()
	if err != nil {
		return Table{}, err
	}

	type pair struct{ fsd, cfs float64 } // milliseconds
	res := map[string]pair{}

	// Warm both volumes with a working set.
	for _, w := range []workload.Target{fe.t, ce.t} {
		if err := workload.SmallCreates(w, "warm", 50, 600); err != nil {
			return Table{}, err
		}
	}

	const n = 100
	oneByte := []byte{42}
	large := workload.Payload(1_000_000, 9)

	// Small create.
	fd, err := meanOp(fe.clk, n, func(i int) error {
		_, err := fe.v.Create(fmt.Sprintf("t2/sc%03d", i), oneByte)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	cd, err := meanOp(ce.clk, n, func(i int) error {
		_, err := ce.v.Create(fmt.Sprintf("t2/sc%03d", i), oneByte)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	res["Small create"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Large create (1 MB).
	fd, err = meanOp(fe.clk, 3, func(i int) error {
		_, err := fe.v.Create(fmt.Sprintf("t2/lc%d", i), large)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	cd, err = meanOp(ce.clk, 3, func(i int) error {
		_, err := ce.v.Create(fmt.Sprintf("t2/lc%d", i), large)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	res["Large create"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Open (no data I/O).
	fd, err = meanOp(fe.clk, n, func(i int) error {
		_, err := fe.v.Open(fmt.Sprintf("t2/sc%03d", i), 0)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	cd, err = meanOp(ce.clk, n, func(i int) error {
		_, err := ce.v.Open(fmt.Sprintf("t2/sc%03d", i), 0)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	res["Open"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Open + read first page.
	fd, err = meanOp(fe.clk, n, func(i int) error {
		f, err := fe.v.Open(fmt.Sprintf("warm/f%04d", i%50), 0)
		if err != nil {
			return err
		}
		_, err = f.ReadPages(0, 1)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	cd, err = meanOp(ce.clk, n, func(i int) error {
		f, err := ce.v.Open(fmt.Sprintf("warm/f%04d", i%50), 0)
		if err != nil {
			return err
		}
		_, err = f.ReadPages(0, 1)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	res["Open + Read"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Read page on an already open file: random single-page reads from
	// two alternating 1 MB files; the disk hardware is the same in both
	// systems, so the paper's row ties at 41 ms.
	ff1, _ := fe.v.Open("t2/lc0", 0)
	ff2, _ := fe.v.Open("t2/lc1", 0)
	fd, err = meanOp(fe.clk, n, func(i int) error {
		f := ff1
		if i%2 == 1 {
			f = ff2
		}
		_, err := f.ReadPages((i*37)%1900, 1)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	cf1, _ := ce.v.Open("t2/lc0", 0)
	cf2, _ := ce.v.Open("t2/lc1", 0)
	cd, err = meanOp(ce.clk, n, func(i int) error {
		f := cf1
		if i%2 == 1 {
			f = cf2
		}
		_, err := f.ReadPages((i*37)%1900, 1)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	res["Read page"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Small delete.
	fd, err = meanOp(fe.clk, n, func(i int) error {
		return fe.v.Delete(fmt.Sprintf("t2/sc%03d", i), 0)
	})
	if err != nil {
		return Table{}, err
	}
	cd, err = meanOp(ce.clk, n, func(i int) error {
		return ce.v.Delete(fmt.Sprintf("t2/sc%03d", i), 0)
	})
	if err != nil {
		return Table{}, err
	}
	res["Small delete"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Large delete.
	fd, err = meanOp(fe.clk, 3, func(i int) error {
		return fe.v.Delete(fmt.Sprintf("t2/lc%d", i), 0)
	})
	if err != nil {
		return Table{}, err
	}
	cd, err = meanOp(ce.clk, 3, func(i int) error {
		return ce.v.Delete(fmt.Sprintf("t2/lc%d", i), 0)
	})
	if err != nil {
		return Table{}, err
	}
	res["Large delete"] = pair{fd.Seconds() * 1000, cd.Seconds() * 1000}

	// Crash recovery on moderately full volumes.
	fsdRec, cfsRec, _, err := recoveryTimes()
	if err != nil {
		return Table{}, err
	}
	res["Crash recovery"] = pair{fsdRec.Seconds() * 1000, cfsRec.Seconds() * 1000}

	paper := map[string][2]string{
		"Small create":   {"264", "70"},
		"Large create":   {"7674", "2730"},
		"Open":           {"51.2", "11.7"},
		"Open + Read":    {"68.5", "35.4"},
		"Small delete":   {"214", "15"},
		"Large delete":   {"2692", "118"},
		"Read page":      {"41", "41"},
		"Crash recovery": {"3600000+", "25000"},
	}
	order := []string{"Small create", "Large create", "Open", "Open + Read", "Small delete", "Large delete", "Read page", "Crash recovery"}
	t := Table{
		ID:     "Table 2",
		Title:  "CFS to FSD performance, wall clock (ms)",
		Header: []string{"Operation", "CFS paper", "CFS ours", "FSD paper", "FSD ours", "Speedup paper", "Speedup ours"},
	}
	paperSpeed := map[string]string{
		"Small create": "3.77", "Large create": "2.81", "Open": "4.38", "Open + Read": "1.94",
		"Small delete": "14.5", "Large delete": "22.8", "Read page": "1.0", "Crash recovery": "100+",
	}
	for _, k := range order {
		p := res[k]
		t.Rows = append(t.Rows, []string{
			k, paper[k][0], fmt.Sprintf("%.1f", p.cfs), paper[k][1], fmt.Sprintf("%.1f", p.fsd),
			paperSpeed[k], ratio(p.cfs, p.fsd),
		})
	}
	t.Notes = append(t.Notes,
		"crash recovery row in ms; FSD = log replay + VAM reconstruction, CFS = full scavenge",
	)
	return t, nil
}

// recoveryTimes builds moderately full FSD and CFS volumes, crashes them,
// and measures FSD mount-with-recovery, CFS scavenge, and the FSD VAM
// reconstruction portion.
func recoveryTimes() (fsdRec, cfsScav, fsdVAM timeDuration, err error) {
	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := populate(fe.t, 11); err != nil {
		return 0, 0, 0, err
	}
	if err := fe.v.Force(); err != nil {
		return 0, 0, 0, err
	}
	fe.v.Crash()
	fe.d.Revive()
	_, ms2, err := core.Mount(fe.d, fsdBenchConfig())
	if err != nil {
		return 0, 0, 0, err
	}

	ce, err := newCFS()
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := populate(ce.t, 11); err != nil {
		return 0, 0, 0, err
	}
	ce.v.Crash()
	ce.d.Revive()
	_, sst, err := cfsScavenge(ce.d)
	if err != nil {
		return 0, 0, 0, err
	}
	return ms2.Elapsed, sst, ms2.VAMElapsed, nil
}

type timeDuration = timeDur

// Table3 measures the disk I/O comparison (paper Table 3).
func Table3() (Table, error) {
	type counts struct{ fsd, cfs int }
	res := map[string]counts{}

	run := func(isFSD bool) (map[string]int, error) {
		out := map[string]int{}
		var t workload.Target
		var d *disk.Disk
		var drop func()
		var force func()
		if isFSD {
			fe, err := newFSD(fsdBenchConfig())
			if err != nil {
				return nil, err
			}
			t, d = fe.t, fe.d
			drop = func() { fe.v.DropCaches() }
			force = func() { fe.v.Force() }
		} else {
			ce, err := newCFS()
			if err != nil {
				return nil, err
			}
			t, d = ce.t, ce.d
			drop = func() { ce.v.DropCaches() }
			force = func() {}
		}
		// 100 small creates in one directory (includes the final force
		// so buffered metadata is charged to the benchmark).
		d.ResetStats()
		if err := workload.SmallCreates(t, "dir", 100, 500); err != nil {
			return nil, err
		}
		force()
		out["100 small creates"] = d.Stats().Ops

		// list 100 files, cold metadata cache.
		drop()
		d.ResetStats()
		if _, err := workload.ListDir(t, "dir"); err != nil {
			return nil, err
		}
		out["list 100 files"] = d.Stats().Ops

		// read 100 small files (metadata cache warm from the list; data
		// is never cached in these systems).
		d.ResetStats()
		if err := workload.ReadFiles(t, "dir", 100); err != nil {
			return nil, err
		}
		out["read 100 small files"] = d.Stats().Ops

		// MakeDo.
		if err := workload.MakeDoPrepare(t, workload.DefaultMakeDo); err != nil {
			return nil, err
		}
		force()
		d.ResetStats()
		if err := workload.MakeDoRun(t, workload.DefaultMakeDo, newRng(21)); err != nil {
			return nil, err
		}
		force()
		out["MakeDo"] = d.Stats().Ops
		return out, nil
	}

	f, err := run(true)
	if err != nil {
		return Table{}, err
	}
	c, err := run(false)
	if err != nil {
		return Table{}, err
	}
	for k := range f {
		res[k] = counts{fsd: f[k], cfs: c[k]}
	}
	paper := map[string][2]string{
		"100 small creates":    {"874", "149"},
		"list 100 files":       {"146", "3"},
		"read 100 small files": {"262", "101"},
		"MakeDo":               {"1975", "1299"},
	}
	t := Table{
		ID:     "Table 3",
		Title:  "CFS to FSD performance, disk I/Os",
		Header: []string{"Benchmark", "CFS paper", "CFS ours", "FSD paper", "FSD ours", "Ratio paper", "Ratio ours"},
	}
	paperRatio := map[string]string{
		"100 small creates": "5.87", "list 100 files": "48.7",
		"read 100 small files": "2.69", "MakeDo": "1.52",
	}
	for _, k := range []string{"100 small creates", "list 100 files", "read 100 small files", "MakeDo"} {
		p := res[k]
		t.Rows = append(t.Rows, []string{
			k, paper[k][0], fmt.Sprint(p.cfs), paper[k][1], fmt.Sprint(p.fsd),
			paperRatio[k], ratio(float64(p.cfs), float64(p.fsd)),
		})
	}
	t.Notes = append(t.Notes,
		"FSD list reads both name-table copies per page (the paper's robustness choice); see the single-copy ablation",
	)
	return t, nil
}

// Table4 measures FSD against the 4.3 BSD baseline (paper Table 4).
func Table4() (Table, error) {
	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return Table{}, err
	}
	ue, err := newUnix(unixfs.Config{})
	if err != nil {
		return Table{}, err
	}
	runs := map[string][2]int{}

	measure := func(t workload.Target, d *disk.Disk, drop func(), force func()) (map[string]int, error) {
		out := map[string]int{}
		d.ResetStats()
		if err := workload.SmallCreates(t, "dir4", 100, 500); err != nil {
			return nil, err
		}
		force()
		out["100 small creates"] = d.Stats().Ops
		drop()
		d.ResetStats()
		if _, err := workload.ListDir(t, "dir4"); err != nil {
			return nil, err
		}
		out["list 100 files"] = d.Stats().Ops
		d.ResetStats()
		if err := workload.ReadFiles(t, "dir4", 100); err != nil {
			return nil, err
		}
		out["read 100 small files"] = d.Stats().Ops
		return out, nil
	}
	f, err := measure(fe.t, fe.d, func() { fe.v.DropCaches() }, func() { fe.v.Force() })
	if err != nil {
		return Table{}, err
	}
	u, err := measure(ue.t, ue.d, func() { ue.fs.DropCaches() }, func() {})
	if err != nil {
		return Table{}, err
	}
	for k := range f {
		runs[k] = [2]int{f[k], u[k]}
	}
	paper := map[string][3]string{
		"100 small creates":    {"149", "308", "2.07"},
		"list 100 files":       {"3", "9", "3"},
		"read 100 small files": {"101", "106", "1.05"},
	}
	t := Table{
		ID:     "Table 4",
		Title:  "FSD and 4.3 BSD performance, disk I/Os",
		Header: []string{"Benchmark", "FSD paper", "FSD ours", "4.3 BSD paper", "4.3 BSD ours", "Ratio paper", "Ratio ours"},
	}
	for _, k := range []string{"100 small creates", "list 100 files", "read 100 small files"} {
		r := runs[k]
		t.Rows = append(t.Rows, []string{
			k, paper[k][0], fmt.Sprint(r[0]), paper[k][1], fmt.Sprint(r[1]),
			paper[k][2], ratio(float64(r[1]), float64(r[0])),
		})
	}
	t.Notes = append(t.Notes,
		"4.3 BSD does not double write directories or inodes, so it does less work per create than FSD (paper's caveat)",
	)
	return t, nil
}

// Table5 measures the CPU and bandwidth comparison against 4.2 BSD (paper
// Table 5). Reads are synchronous in both systems, so elapsed time is
// measured directly; 4.2 BSD writes were asynchronous (delayed write), so
// the overlapped rate is computed from the measured component times, as
// noted in EXPERIMENTS.md.
func Table5() (Table, error) {
	type rates struct{ cpu, bw float64 }

	// FSD: one big file written then read in capped chunks.
	fsdRun := func() (rates, rates, error) {
		fe, err := newFSD(fsdBenchConfig())
		if err != nil {
			return rates{}, rates{}, err
		}
		data := workload.Payload(4_000_000, 3)
		fe.d.ResetStats()
		fe.v.CPU().ResetBusy()
		start := fe.clk.Now()
		if _, err := fe.v.Create("big", data); err != nil {
			return rates{}, rates{}, err
		}
		elapsed := fe.clk.Now() - start
		st := fe.d.Stats()
		w := rates{
			cpu: float64(fe.v.CPU().Busy()) / float64(elapsed),
			bw:  float64(st.TransferTime) / float64(elapsed),
		}
		f, err := fe.v.Open("big", 0)
		if err != nil {
			return rates{}, rates{}, err
		}
		fe.d.ResetStats()
		fe.v.CPU().ResetBusy()
		start = fe.clk.Now()
		if _, err := f.ReadAll(); err != nil {
			return rates{}, rates{}, err
		}
		elapsed = fe.clk.Now() - start
		st = fe.d.Stats()
		r := rates{
			cpu: float64(fe.v.CPU().Busy()) / float64(elapsed),
			bw:  float64(st.TransferTime) / float64(elapsed),
		}
		return r, w, nil
	}

	bsdRun := func() (rates, rates, error) {
		ue, err := newUnix(unixfs.Config{})
		if err != nil {
			return rates{}, rates{}, err
		}
		data := workload.Payload(4_000_000, 3)
		// Writes are asynchronous in 4.2 BSD (delayed write): the CPU
		// stage overlaps the device stage, so run with the CPU detached
		// — charges accumulate without serializing against the disk —
		// and report both stages against the pipeline's elapsed time.
		ue.fs.CPU().SetDetached(true)
		ue.d.ResetStats()
		ue.fs.CPU().ResetBusy()
		start := ue.clk.Now()
		if err := ue.fs.Create("/big", data); err != nil {
			return rates{}, rates{}, err
		}
		elapsed := ue.clk.Now() - start
		ue.fs.CPU().SetDetached(false)
		st := ue.d.Stats()
		cpuT := ue.fs.CPU().Busy()
		over := elapsed
		if cpuT > over {
			over = cpuT
		}
		w := rates{cpu: float64(cpuT) / float64(over), bw: float64(st.TransferTime) / float64(over)}
		ue.fs.DropCaches()
		ue.d.ResetStats()
		ue.fs.CPU().ResetBusy()
		start = ue.clk.Now()
		if _, err := ue.fs.ReadAll("/big"); err != nil {
			return rates{}, rates{}, err
		}
		elapsed = ue.clk.Now() - start
		st = ue.d.Stats()
		r := rates{
			cpu: float64(ue.fs.CPU().Busy()) / float64(elapsed),
			bw:  float64(st.TransferTime) / float64(elapsed),
		}
		return r, w, nil
	}

	fr, fw, err := fsdRun()
	if err != nil {
		return Table{}, err
	}
	br, bw, err := bsdRun()
	if err != nil {
		return Table{}, err
	}
	pct := func(f float64) string { return fmt.Sprintf("%.0f", f*100) }
	t := Table{
		ID:     "Table 5",
		Title:  "FSD and 4.2 BSD, percent of CPU and disk bandwidth",
		Header: []string{"Op", "FSD %CPU paper", "ours", "FSD %BW paper", "ours", "4.2 %CPU paper", "ours", "4.2 %BW paper", "ours"},
		Rows: [][]string{
			{"read", "27", pct(fr.cpu), "79", pct(fr.bw), "54", pct(br.cpu), "47", pct(br.bw)},
			{"write", "28", pct(fw.cpu), "80", pct(fw.bw), "95", pct(bw.cpu), "47", pct(bw.bw)},
		},
		Notes: []string{
			"4.2 BSD write row uses the overlapped (async delayed-write) rate: max(CPU, device) stages",
		},
	}
	return t, nil
}
