package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The parallel check & repair experiment (pFSCK). Verify and the salvage
// sweep run on a shared worker pool (internal/parscan); this benchmark
// sweeps the pool width over the same seeded image and reports the
// speedup-vs-workers curve for both passes, committed as BENCH_pfsck.json.
//
// Timing model. The simulated disk serializes under its mutex, so a run at
// width k cannot overlap device time with itself; what parallelism buys is
// overlapping check CPU with the single ordered device sweep. The
// sequential run exposes both components exactly — at one worker the pool's
// critical-path charge equals its total CPU, so
//
//	elapsed(1) = disk + cpu
//
// and the pipelined bound for k workers is
//
//	elapsed(k) = max(disk, cpu/k)
//
// with disk and cpu measured, not assumed: disk = elapsed(1) - cpu(1), and
// cpu(1) is the pool's own accounting (CheckCPU / SweepCPU), which the
// benchmark asserts is identical at every width. measured_s is the raw
// simulated elapsed of each run as executed (the coordinator lump-charges
// the pool's critical path, so it equals disk + cpu/k up to imbalance).
//
// Correctness is asserted, not sampled: every width must produce
// byte-identical Problems / VerifyStats counts and byte-identical
// normalized SalvageStats, or the benchmark fails.

// PFsckRun is one worker-count point on a curve.
type PFsckRun struct {
	Workers   int     `json:"workers"`
	ElapsedS  float64 `json:"elapsed_s"`  // modeled: max(disk, cpu/k)
	MeasuredS float64 `json:"measured_s"` // raw simulated elapsed of the run
	Speedup   float64 `json:"speedup"`    // modeled, vs the 1-worker run
	Steals    int     `json:"steals"`
}

// PFsckReport is what BENCH_pfsck.json holds.
type PFsckReport struct {
	Model   string `json:"model"`
	Files   int    `json:"files"`
	Entries int    `json:"entries"`

	VerifyDiskS    float64    `json:"verify_disk_s"`
	VerifyCPUS     float64    `json:"verify_cpu_s"`
	Verify         []PFsckRun `json:"verify"`
	VerifySpeedup8 float64    `json:"verify_speedup_8"`

	SweepSectors    int        `json:"sweep_sectors"`
	SweepDiskS      float64    `json:"sweep_disk_s"`
	SweepCPUS       float64    `json:"sweep_cpu_s"`
	Salvage         []PFsckRun `json:"salvage_sweep"`
	SalvageSpeedup8 float64    `json:"salvage_sweep_speedup_8"`
}

const pfsckModel = "elapsed(1)=disk+cpu measured on the sequential run; " +
	"elapsed(k)=max(disk, cpu/k): width overlaps check CPU with one ordered device sweep; " +
	"identical Problems/stats asserted at every width"

// pfsckNormalize zeroes the SalvageStats fields legitimately dependent on
// width or scheduling, leaving everything the determinism contract covers.
func pfsckNormalize(st core.SalvageStats) core.SalvageStats {
	st.Elapsed = 0
	st.SweepElapsed = 0
	st.SweepCPU = 0
	st.RebuildElapsed = 0
	st.FinalizeElapsed = 0
	st.Steals = 0
	st.Workers = 0
	return st
}

func pfsckModelElapsed(diskS, cpuS float64, k int) float64 {
	if k <= 1 {
		return diskS + cpuS
	}
	if p := cpuS / float64(k); p > diskS {
		return p
	}
	return diskS
}

// pfsckRun populates one image and sweeps both passes over widths. The
// first width must be 1: it is the baseline the model and the determinism
// oracle are anchored to.
func pfsckRun(totalBytes int64, maxFile int, widths []int) (PFsckReport, error) {
	rep := PFsckReport{Model: pfsckModel}
	if len(widths) == 0 || widths[0] != 1 {
		return rep, fmt.Errorf("pfsck: widths must start with the 1-worker baseline")
	}

	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return rep, err
	}
	names, err := workload.PopulateVolume(fe.t, newRng(23), totalBytes, maxFile)
	if err != nil {
		return rep, err
	}
	rep.Files = len(names)
	if err := fe.v.Shutdown(); err != nil {
		return rep, err
	}

	// Verify curve: each width mounts its own clone of the clean image.
	var verifySig string
	var baseModel float64
	for i, k := range widths {
		cfg := fsdBenchConfig()
		cfg.CheckWorkers = k
		dc := fe.d.Clone(sim.NewVirtualClock())
		v, _, err := core.Mount(dc, cfg)
		if err != nil {
			return rep, fmt.Errorf("pfsck: mount (workers=%d): %w", k, err)
		}
		st, err := v.Verify()
		if err != nil {
			return rep, fmt.Errorf("pfsck: verify (workers=%d): %w", k, err)
		}
		v.Crash()
		sig := fmt.Sprintf("%d/%d/%d/%d cpu=%s %v",
			st.Entries, st.Leaders, st.LeadersPending, st.Symlinks, st.CheckCPU, st.Problems)
		if i == 0 {
			verifySig = sig
			rep.Entries = st.Entries
			rep.VerifyCPUS = st.CheckCPU.Seconds()
			rep.VerifyDiskS = st.Elapsed.Seconds() - rep.VerifyCPUS
			baseModel = pfsckModelElapsed(rep.VerifyDiskS, rep.VerifyCPUS, 1)
		} else if sig != verifySig {
			return rep, fmt.Errorf("pfsck: verify output diverges at workers=%d:\n got %s\nwant %s", k, sig, verifySig)
		}
		model := pfsckModelElapsed(rep.VerifyDiskS, rep.VerifyCPUS, k)
		rep.Verify = append(rep.Verify, PFsckRun{
			Workers: k, ElapsedS: model, MeasuredS: st.Elapsed.Seconds(),
			Speedup: baseModel / model, Steals: st.Steals,
		})
		if k == 8 {
			rep.VerifySpeedup8 = baseModel / model
		}
	}

	// Salvage curve: destroy both name-table copies once, then each width
	// salvages its own clone of the destroyed image.
	fe.v.DestroyNameTable()
	var salvageSig string
	for i, k := range widths {
		cfg := fsdBenchConfig()
		cfg.CheckWorkers = k
		dc := fe.d.Clone(sim.NewVirtualClock())
		v, st, err := core.Salvage(dc, cfg)
		if err != nil {
			return rep, fmt.Errorf("pfsck: salvage (workers=%d): %w", k, err)
		}
		v.Crash()
		if st.FilesRecovered < rep.Files {
			return rep, fmt.Errorf("pfsck: salvage (workers=%d) recovered %d of %d files", k, st.FilesRecovered, rep.Files)
		}
		sig := fmt.Sprintf("%+v", pfsckNormalize(st))
		if i == 0 {
			salvageSig = sig
			rep.SweepSectors = st.SectorsScanned
			rep.SweepCPUS = st.SweepCPU.Seconds()
			rep.SweepDiskS = st.SweepElapsed.Seconds() - rep.SweepCPUS
			baseModel = pfsckModelElapsed(rep.SweepDiskS, rep.SweepCPUS, 1)
		} else if sig != salvageSig {
			return rep, fmt.Errorf("pfsck: salvage output diverges at workers=%d:\n got %s\nwant %s", k, sig, salvageSig)
		}
		model := pfsckModelElapsed(rep.SweepDiskS, rep.SweepCPUS, k)
		rep.Salvage = append(rep.Salvage, PFsckRun{
			Workers: k, ElapsedS: model, MeasuredS: st.SweepElapsed.Seconds(),
			Speedup: baseModel / model, Steals: st.Steals,
		})
		if k == 8 {
			rep.SalvageSpeedup8 = baseModel / model
		}
	}
	return rep, nil
}

// PFsckReportRun is the full experiment: a large seeded image (a few
// thousand files in the workload's mixed size distribution, where the
// per-page cross-check CPU dominates the ordered device sweeps) swept at
// widths 1..16.
func PFsckReportRun() (PFsckReport, error) {
	return pfsckRun(60_000_000, 64*1024, []int{1, 2, 4, 8, 16})
}

// WritePFsckJSON runs the experiment and records it at path
// (BENCH_pfsck.json at the repo root).
func WritePFsckJSON(path string) (PFsckReport, error) {
	rep, err := PFsckReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// PFsck renders a bounded smoke of the experiment as a benchtab table: a
// small population and two widths, enough to exercise the parallel paths
// and the determinism assertions in CI without the full curve's cost.
func PFsck() (Table, error) {
	rep, err := pfsckRun(6_000_000, 64*1024, []int{1, 4})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "PFsck",
		Title:  "Parallel check & repair: Verify and salvage sweep vs pool width (smoke)",
		Header: []string{"Workers", "Verify (s)", "Speedup", "Sweep (s)", "Speedup"},
		Notes: []string{
			fmt.Sprintf("%d files, %d entries; full curve in BENCH_pfsck.json", rep.Files, rep.Entries),
			rep.Model,
		},
	}
	for i := range rep.Verify {
		vr, sr := rep.Verify[i], rep.Salvage[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(vr.Workers),
			fmt.Sprintf("%.1f", vr.ElapsedS),
			fmt.Sprintf("%.2fx", vr.Speedup),
			fmt.Sprintf("%.1f", sr.ElapsedS),
			fmt.Sprintf("%.2fx", sr.Speedup),
		})
	}
	return t, nil
}
