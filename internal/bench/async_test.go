package bench

import "testing"

// TestAsyncPipelineSpeedup is the ablation's acceptance check: at 8 workers
// the full pipeline (intent queue + adaptive commit) must at least double
// metadata-mutation throughput over the staged path at the paper's fixed
// interval, and each half of the mechanism must not regress the cell it
// extends.
func TestAsyncPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	rep, err := AsyncReportRun()
	if err != nil {
		t.Fatalf("AsyncReportRun: %v", err)
	}
	if rep.Speedup8 < 2 {
		t.Errorf("async-adaptive at %.2fx of staged-fixed, want >= 2x", rep.Speedup8)
	}
	cells := make(map[string]AsyncResult, len(rep.Cells))
	for _, c := range rep.Cells {
		cells[c.Mode] = c
	}
	for _, mode := range []string{"synchronous", "staged-fixed", "staged-adaptive", "async-fixed", "async-adaptive"} {
		if _, ok := cells[mode]; !ok {
			t.Fatalf("missing cell %q", mode)
		}
	}
	// Group commit is the paper's headline: every batched cell beats
	// forcing per mutation.
	for mode, c := range cells {
		if mode == "synchronous" {
			continue
		}
		if c.Throughput <= cells["synchronous"].Throughput {
			t.Errorf("%s (%.0f ops/s) not faster than synchronous (%.0f ops/s)",
				mode, c.Throughput, cells["synchronous"].Throughput)
		}
	}
	// The intent queue is what moves B-tree work off the caller: the async
	// cells must report applier CPU and a non-trivial queue, the staged
	// cells neither.
	for _, mode := range []string{"async-fixed", "async-adaptive"} {
		if c := cells[mode]; c.ApplierCPUMS == 0 || c.MaxQueueDepth == 0 {
			t.Errorf("%s: applier cpu %.0fms, max depth %d — pipeline did not engage",
				mode, c.ApplierCPUMS, c.MaxQueueDepth)
		}
	}
	for _, mode := range []string{"synchronous", "staged-fixed", "staged-adaptive"} {
		if c := cells[mode]; c.ApplierCPUMS != 0 || c.MaxQueueDepth != 0 {
			t.Errorf("%s: applier cpu %.0fms, max depth %d — staged cell rode the queue",
				mode, c.ApplierCPUMS, c.MaxQueueDepth)
		}
	}
	// The adaptive controller must actually move the deadline off the
	// 500 ms ceiling under this load, and stay above the floor.
	for _, mode := range []string{"staged-adaptive", "async-adaptive"} {
		if d := cells[mode].ForceDeadlineMS; d <= 0 || d >= 500 {
			t.Errorf("%s: force deadline %.1fms, want inside (0, 500)", mode, d)
		}
	}
}
