package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/workload"
)

// The media-fault experiment. The paper's redundancy (doubled name table,
// dual-copy log records, replicated roots) is passive: a decayed copy is
// only repaired if a read happens to hit it. This benchmark measures the
// active half added on top — the online scrubber — and the last-ditch
// floor under it, the salvage mount, against the baseline the paper
// retired: the CFS scavenger, which rebuilt structure from per-sector
// labels and "takes over an hour" on a full drive.
//
// Stage 1 populates a full-size volume, decays one home copy of every
// allocated name-table page (hard latent errors, silent bit rot, and a few
// stuck physical defects) plus the root replica and a log anchor copy, and
// times one scrub pass. Stage 2 then destroys BOTH name-table copies and
// times the salvage sweep that rebuilds the volume from leader pages. A
// CFS volume with the same file population is crashed and scavenged for
// the comparison row.

// RobustnessReport is what BENCH_robustness.json holds. Elapsed times are
// simulated (virtual-clock) values, like every other table.
type RobustnessReport struct {
	Files           int     `json:"files"`
	DecayedSectors  int     `json:"decayed_sectors"`
	StuckSectors    int     `json:"stuck_sectors"`
	ScrubSectors    int     `json:"scrub_sectors_checked"`
	ScrubRepaired   int     `json:"scrub_copies_repaired"`
	ScrubRetired    int     `json:"scrub_sectors_retired"`
	ScrubElapsedS   float64 `json:"scrub_elapsed_s"`
	ScrubMBPerS     float64 `json:"scrub_mb_per_s"`
	SalvageSectors  int     `json:"salvage_sectors_scanned"`
	SalvageFiles    int     `json:"salvage_files_recovered"`
	SalvageElapsedS float64 `json:"salvage_elapsed_s"`
	ScavengeFiles   int     `json:"cfs_scavenge_files"`
	ScavengeS       float64 `json:"cfs_scavenge_elapsed_s"`
	SalvageSpeedup  float64 `json:"scavenge_over_salvage"`
}

// robustnessPopulate fills a volume with the shared file population: about
// 40 MB across a few hundred files, the same mix for FSD and CFS.
func robustnessPopulate(t workload.Target) (int, error) {
	names, err := workload.PopulateVolume(t, newRng(11), 40_000_000, 96*1024)
	return len(names), err
}

// RobustnessReportRun runs both stages and the CFS baseline.
func RobustnessReportRun() (RobustnessReport, error) {
	var rep RobustnessReport

	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return rep, err
	}
	if rep.Files, err = robustnessPopulate(fe.t); err != nil {
		return rep, err
	}
	if err := fe.v.Force(); err != nil {
		return rep, err
	}

	// Stage 1: concentrated latent decay, one scrub pass heals it all.
	rep.DecayedSectors, rep.StuckSectors = fe.v.InjectLatentDecay(newRng(1987))
	st, err := fe.v.Scrub()
	if err != nil {
		return rep, err
	}
	if st.NTLost > 0 || len(st.Problems) > 0 {
		return rep, fmt.Errorf("scrub did not fully repair: NTLost=%d problems=%v", st.NTLost, st.Problems)
	}
	rep.ScrubSectors = st.SectorsChecked
	rep.ScrubRepaired = st.Repaired()
	rep.ScrubRetired = st.Retired
	rep.ScrubElapsedS = st.Elapsed.Seconds()
	if st.Elapsed > 0 {
		rep.ScrubMBPerS = float64(st.SectorsChecked) * disk.SectorSize / 1e6 / st.Elapsed.Seconds()
	}

	// Stage 2: both name-table copies gone; salvage sweeps the data region
	// for leader pages and rebuilds the volume.
	if err := fe.v.Shutdown(); err != nil {
		return rep, err
	}
	fe.v.DestroyNameTable()
	v2, sst, err := core.Salvage(fe.d, fsdBenchConfig())
	if err != nil {
		return rep, err
	}
	if sst.FilesRecovered < rep.Files {
		return rep, fmt.Errorf("salvage recovered %d of %d files", sst.FilesRecovered, rep.Files)
	}
	rep.SalvageSectors = sst.SectorsScanned
	rep.SalvageFiles = sst.FilesRecovered
	rep.SalvageElapsedS = sst.Elapsed.Seconds()
	if err := v2.Shutdown(); err != nil {
		return rep, err
	}

	// Baseline: the CFS scavenger rebuilds the same population from labels.
	ce, err := newCFS()
	if err != nil {
		return rep, err
	}
	if _, err := robustnessPopulate(ce.t); err != nil {
		return rep, err
	}
	ce.v.Crash()
	ce.d.Revive()
	_, cst, err := cfs.Scavenge(ce.d, cfs.Config{})
	if err != nil {
		return rep, err
	}
	rep.ScavengeFiles = cst.FilesRecovered
	rep.ScavengeS = cst.Elapsed.Seconds()
	if rep.SalvageElapsedS > 0 {
		rep.SalvageSpeedup = rep.ScavengeS / rep.SalvageElapsedS
	}
	return rep, nil
}

// WriteRobustnessJSON runs the experiment and records it at path
// (BENCH_robustness.json at the repo root).
func WriteRobustnessJSON(path string) (RobustnessReport, error) {
	rep, err := RobustnessReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Robustness renders the experiment as a benchtab table.
func Robustness() (Table, error) {
	rep, err := RobustnessReportRun()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Robustness",
		Title:  "Online scrub and salvage mount vs the CFS scavenger (full 300 MB volume)",
		Header: []string{"Stage", "Sectors", "Repaired/recovered", "Elapsed (s)", "Rate"},
		Rows: [][]string{
			{
				"scrub (1 copy of every dup page decayed)",
				fmt.Sprint(rep.ScrubSectors),
				fmt.Sprintf("%d copies + %d retired", rep.ScrubRepaired, rep.ScrubRetired),
				fmt.Sprintf("%.1f", rep.ScrubElapsedS),
				fmt.Sprintf("%.1f MB/s", rep.ScrubMBPerS),
			},
			{
				"salvage (both NT copies lost)",
				fmt.Sprint(rep.SalvageSectors),
				fmt.Sprintf("%d files", rep.SalvageFiles),
				fmt.Sprintf("%.1f", rep.SalvageElapsedS),
				"-",
			},
			{
				"CFS scavenge (same population)",
				"-",
				fmt.Sprintf("%d files", rep.ScavengeFiles),
				fmt.Sprintf("%.1f", rep.ScavengeS),
				"-",
			},
		},
		Notes: []string{
			fmt.Sprintf("%d files (~40 MB); %d sectors decayed (%d stuck defects remapped to spares)",
				rep.Files, rep.DecayedSectors, rep.StuckSectors),
			fmt.Sprintf("salvage is %.1fx faster than the label scavenge it replaces (paper: scavenge \"takes over an hour\")",
				rep.SalvageSpeedup),
		},
	}
	return t, nil
}
