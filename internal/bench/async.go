package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// The asynchronous-metadata-pipeline ablation. The paper's FSD performs a
// mutation's B-tree update inside the monitor before returning; the intent
// queue moves that work to a single background applier, so the caller only
// validates, enqueues, and returns. This benchmark drives a mutation-heavy
// workload (touches, creates, renames, deletes — the operations that are
// pure name-table traffic) through five configurations:
//
//	synchronous      every mutation forces the log before returning
//	staged-fixed     group commit at the paper's fixed 500 ms interval
//	staged-adaptive  group commit with the adaptive force deadline
//	async-fixed      intent queue + fixed 500 ms interval
//	async-adaptive   intent queue + adaptive deadline (the full pipeline)
//
// Timing model: both CPUs (caller and applier) run detached, so the virtual
// clock advances only for device time. On the staged paths a mutation owns
// the volume monitor exclusively for its whole B-tree update, so caller CPU
// cannot overlap and
//
//	elapsed = disk time + caller busy
//
// On the async paths validation runs under the read lock plus per-name
// stripes — caller CPU overlaps across workers — while the single applier
// serializes only the B-tree work, and the two overlap with each other:
//
//	elapsed = disk time + max(caller busy / workers, applier busy)
//
// The disk is fully serialized in every cell, as in the concurrency bench.

// AsyncResult is one cell of the ablation.
type AsyncResult struct {
	Mode            string  `json:"mode"`
	Workers         int     `json:"workers"`
	Ops             int     `json:"ops"` // metadata mutations completed
	DiskTimeMS      float64 `json:"disk_time_ms"`
	CallerCPUMS     float64 `json:"caller_cpu_ms"`
	ApplierCPUMS    float64 `json:"applier_cpu_ms"` // 0 on the staged paths
	ElapsedMS       float64 `json:"elapsed_ms"`
	Throughput      float64 `json:"throughput_ops_per_sec"`
	ForceDeadlineMS float64 `json:"force_deadline_ms"` // post-run controller deadline
	MaxQueueDepth   int     `json:"max_queue_depth"`   // 0 on the staged paths
}

// AsyncReport is what BENCH_async.json holds.
type AsyncReport struct {
	Model    string        `json:"model"`
	Cells    []AsyncResult `json:"cells"`
	Speedup8 float64       `json:"speedup_8_workers"` // async-adaptive vs staged-fixed
}

// asyncMixIters is mutations per worker; the mix below is 40% touch, 30%
// small create, 10% set-keep, 10% rename, 10% delete — all name-table
// mutations, the traffic the intent queue pipelines.
const asyncMixIters = 240

func asyncRun(mode string, cfg core.Config, workers int) (AsyncResult, error) {
	fe, err := newFSD(cfg)
	if err != nil {
		return AsyncResult{}, err
	}
	// Working set: small shared files whose entries the mutations rewrite.
	const shared = 120
	sharedData := workload.Payload(2048, 7)
	for i := 0; i < shared; i++ {
		if _, err := fe.v.Create(fmt.Sprintf("shared/f%04d", i), sharedData); err != nil {
			return AsyncResult{}, err
		}
	}
	if err := fe.v.Force(); err != nil {
		return AsyncResult{}, err
	}
	fe.d.ResetStats()
	fe.v.CPU().SetDetached(true)
	fe.v.CPU().ResetBusy()
	applierBusy0 := fe.v.Stats().Intent.ApplierBusy // population also rode the queue
	diskStart := fe.clk.Now()

	priv := workload.Payload(1024, 9)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < asyncMixIters; i++ {
				k := (w*31 + i*7) % shared
				var err error
				switch i % 10 {
				case 0, 1, 2, 3: // touch a shared file's entry
					err = fe.v.Touch(fmt.Sprintf("shared/f%04d", k), 0)
				case 4, 5, 6: // small create
					_, err = fe.v.Create(fmt.Sprintf("priv/w%d-%04d", w, i), priv)
				case 7: // retention change on a shared file
					err = fe.v.SetKeep(fmt.Sprintf("shared/f%04d", k), 2)
				case 8: // rename the file this worker created at i-4
					err = fe.v.Rename(fmt.Sprintf("priv/w%d-%04d", w, i-4),
						fmt.Sprintf("ren/w%d-%04d", w, i-4))
				case 9: // delete the file this worker created at i-4
					err = fe.v.Delete(fmt.Sprintf("priv/w%d-%04d", w, i-4), 0)
				}
				if err != nil {
					errCh <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return AsyncResult{}, err
		}
	}
	// Force drains the intent queue and flushes the log: the applier's CPU
	// time is complete once it returns.
	if err := fe.v.Force(); err != nil {
		return AsyncResult{}, err
	}

	st := fe.v.Stats()
	diskTime := fe.clk.Now() - diskStart
	callerBusy := fe.v.CPU().Busy()
	applierBusy := st.Intent.ApplierBusy - applierBusy0
	var elapsed time.Duration
	if cfg.AsyncApply {
		serialized := applierBusy
		if overlapped := callerBusy / time.Duration(workers); overlapped > serialized {
			serialized = overlapped
		}
		elapsed = diskTime + serialized
	} else {
		elapsed = diskTime + callerBusy
	}
	ops := workers * asyncMixIters
	if err := fe.v.Shutdown(); err != nil {
		return AsyncResult{}, err
	}
	return AsyncResult{
		Mode:            mode,
		Workers:         workers,
		Ops:             ops,
		DiskTimeMS:      float64(diskTime) / float64(time.Millisecond),
		CallerCPUMS:     float64(callerBusy) / float64(time.Millisecond),
		ApplierCPUMS:    float64(applierBusy) / float64(time.Millisecond),
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		Throughput:      float64(ops) / elapsed.Seconds(),
		ForceDeadlineMS: float64(st.Commit.ForceDeadline) / float64(time.Millisecond),
		MaxQueueDepth:   st.Intent.MaxDepth,
	}, nil
}

// asyncCells is the ablation grid: pipeline {off, on} x commit {sync,
// fixed, adaptive}, minus the synchronous+async cell (a queue in front of a
// force-per-mutation log measures nothing new).
func asyncCells() []struct {
	mode string
	cfg  core.Config
} {
	base := fsdBenchConfig()
	cell := func(mode string, mut func(*core.Config)) struct {
		mode string
		cfg  core.Config
	} {
		cfg := base
		mut(&cfg)
		return struct {
			mode string
			cfg  core.Config
		}{mode, cfg}
	}
	return []struct {
		mode string
		cfg  core.Config
	}{
		cell("synchronous", func(c *core.Config) { c.Synchronous = true }),
		cell("staged-fixed", func(c *core.Config) {}),
		cell("staged-adaptive", func(c *core.Config) { c.AdaptiveCommit = true }),
		cell("async-fixed", func(c *core.Config) { c.AsyncApply = true }),
		cell("async-adaptive", func(c *core.Config) {
			c.AsyncApply = true
			c.AdaptiveCommit = true
		}),
	}
}

// AsyncReportRun runs every cell at 8 workers.
func AsyncReportRun() (AsyncReport, error) {
	const workers = 8
	rep := AsyncReport{
		Model: "elapsed = disk time + caller busy (staged: mutations own the " +
			"monitor) or + max(caller busy / workers, applier busy) (async: " +
			"validation overlaps, one applier serializes); disk fully serialized",
	}
	var baseline, pipeline float64
	for _, c := range asyncCells() {
		r, err := asyncRun(c.mode, c.cfg, workers)
		if err != nil {
			return AsyncReport{}, fmt.Errorf("%s: %w", c.mode, err)
		}
		rep.Cells = append(rep.Cells, r)
		switch c.mode {
		case "staged-fixed":
			baseline = r.Throughput
		case "async-adaptive":
			pipeline = r.Throughput
		}
	}
	if baseline > 0 {
		rep.Speedup8 = pipeline / baseline
	}
	return rep, nil
}

// WriteAsyncJSON runs the ablation and records it at path (BENCH_async.json
// at the repo root), so successive PRs can track the trajectory.
func WriteAsyncJSON(path string) (AsyncReport, error) {
	rep, err := AsyncReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Async renders the ablation as a benchtab table.
func Async() (Table, error) {
	rep, err := AsyncReportRun()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Async",
		Title: "Asynchronous metadata pipeline + adaptive group commit (mutation-heavy workload)",
		Header: []string{"System", "Workers", "Ops", "Disk (ms)", "Caller CPU (ms)",
			"Applier CPU (ms)", "Elapsed (ms)", "Ops/s", "Deadline (ms)", "Max depth"},
	}
	for _, r := range rep.Cells {
		t.Rows = append(t.Rows, []string{
			r.Mode, fmt.Sprint(r.Workers), fmt.Sprint(r.Ops),
			fmt.Sprintf("%.0f", r.DiskTimeMS), fmt.Sprintf("%.0f", r.CallerCPUMS),
			fmt.Sprintf("%.0f", r.ApplierCPUMS), fmt.Sprintf("%.0f", r.ElapsedMS),
			fmt.Sprintf("%.0f", r.Throughput), fmt.Sprintf("%.1f", r.ForceDeadlineMS),
			fmt.Sprint(r.MaxQueueDepth),
		})
	}
	t.Notes = append(t.Notes,
		"mix: 40% touch, 30% small create, 10% set-keep, 10% rename, 10% delete (all name-table mutations)",
		fmt.Sprintf("async-adaptive vs staged-fixed at 8 workers: %.2fx", rep.Speedup8),
		rep.Model,
	)
	return t, nil
}
