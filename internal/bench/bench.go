// Package bench regenerates every table and measured claim of the paper's
// evaluation. Each exported function runs the relevant experiment on
// full-size (300 MB) simulated volumes and returns a Table carrying both
// the paper's reported numbers and ours, so cmd/benchtab can print a
// side-by-side comparison and EXPERIMENTS.md can record it.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/unixfs"
	"repro/internal/workload"
)

// Table is one reproduced table or measured claim.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print writes the table in aligned plain text.
func (t Table) Print(out func(string, ...interface{})) {
	out("\n=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		out("%s\n", s)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		out("note: %s\n", n)
	}
}

// ms formats a duration in milliseconds with one decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// secs formats a duration in whole seconds.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.0f", d.Seconds())
}

// ratio formats a/b.
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}

// fsdEnv is a fresh full-size FSD volume.
type fsdEnv struct {
	v   *core.Volume
	d   *disk.Disk
	clk *sim.VirtualClock
	t   workload.FSDTarget
}

// fsdBenchConfig is the paper design point with a name table sized for the
// populated recovery experiments.
func fsdBenchConfig() core.Config {
	// The data cache is disabled: the paper's FSD had no file-data buffer
	// cache, and the reproduced tables measure the raw per-run data path.
	// The DataPath bench enables it explicitly for the ablation.
	return core.Config{NTPages: 4096, DataCachePages: -1}
}

func newFSD(cfg core.Config) (fsdEnv, error) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, clk)
	if err != nil {
		return fsdEnv{}, err
	}
	v, err := core.Format(d, cfg)
	if err != nil {
		return fsdEnv{}, err
	}
	return fsdEnv{v: v, d: d, clk: clk, t: workload.FSDTarget{V: v}}, nil
}

// cfsEnv is a fresh full-size CFS volume.
type cfsEnv struct {
	v   *cfs.Volume
	d   *disk.Disk
	clk *sim.VirtualClock
	t   workload.CFSTarget
}

func newCFS() (cfsEnv, error) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, clk)
	if err != nil {
		return cfsEnv{}, err
	}
	v, err := cfs.Format(d, cfs.Config{NTPages: 4096})
	if err != nil {
		return cfsEnv{}, err
	}
	return cfsEnv{v: v, d: d, clk: clk, t: workload.CFSTarget{V: v}}, nil
}

// unixEnv is a fresh full-size BSD volume.
type unixEnv struct {
	fs  *unixfs.FS
	d   *disk.Disk
	clk *sim.VirtualClock
	t   workload.UnixTarget
}

func newUnix(cfg unixfs.Config) (unixEnv, error) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.DefaultGeometry, disk.DefaultParams, clk)
	if err != nil {
		return unixEnv{}, err
	}
	fs, err := unixfs.Format(d, cfg)
	if err != nil {
		return unixEnv{}, err
	}
	return unixEnv{fs: fs, d: d, clk: clk, t: workload.UnixTarget{FS: fs}}, nil
}

// timeOp measures the virtual-clock duration of fn.
func timeOp(clk *sim.VirtualClock, fn func() error) (time.Duration, error) {
	start := clk.Now()
	err := fn()
	return clk.Now() - start, err
}

// avigate runs fn n times and returns the mean duration.
func meanOp(clk *sim.VirtualClock, n int, fn func(i int) error) (time.Duration, error) {
	start := clk.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	return (clk.Now() - start) / time.Duration(n), nil
}

// populate fills a target to "moderately full" (~60% of a 300 MB volume),
// capping file size so the population holds a realistic file count.
func populate(t workload.Target, seed int64) (int, error) {
	names, err := workload.PopulateVolume(t, rand.New(rand.NewSource(seed)), 170_000_000, 192*1024)
	return len(names), err
}
