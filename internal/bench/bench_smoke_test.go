package bench

import (
	"fmt"
	"strconv"
	"testing"
)

// get parses a numeric cell.
func get(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTable1Static(t *testing.T) {
	tab, err := Table1()
	if err != nil || len(tab.Rows) < 4 {
		t.Fatalf("Table1: %v", err)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	// Shape assertions from the paper: FSD wins everywhere except read
	// page, which ties (same hardware).
	for _, op := range []string{"Small create", "Large create", "Open", "Open + Read", "Small delete", "Large delete"} {
		r := byName[op]
		cfsMs, fsdMs := get(t, r[2]), get(t, r[4])
		if fsdMs >= cfsMs {
			t.Errorf("%s: FSD %.1fms not faster than CFS %.1fms", op, fsdMs, cfsMs)
		}
	}
	r := byName["Read page"]
	cfsMs, fsdMs := get(t, r[2]), get(t, r[4])
	if ratio := cfsMs / fsdMs; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("Read page: CFS %.1f vs FSD %.1f should be ~equal", cfsMs, fsdMs)
	}
	// Crash recovery: two orders of magnitude, as in the paper.
	rr := byName["Crash recovery"]
	cfsRec, fsdRec := get(t, rr[2]), get(t, rr[4])
	if cfsRec/fsdRec < 20 {
		t.Errorf("crash recovery speedup %.1f, want >> 20 (paper: 100+)", cfsRec/fsdRec)
	}
	// Deletes should show the paper's dramatic gap (14.5x / 22.8x).
	sd := byName["Small delete"]
	if get(t, sd[2])/get(t, sd[4]) < 5 {
		t.Errorf("small delete speedup %.1f, want > 5", get(t, sd[2])/get(t, sd[4]))
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	for _, k := range []string{"100 small creates", "list 100 files", "read 100 small files", "MakeDo"} {
		r := byName[k]
		cfsOps, fsdOps := get(t, r[2]), get(t, r[4])
		if fsdOps >= cfsOps {
			t.Errorf("%s: FSD %v I/Os not fewer than CFS %v", k, fsdOps, cfsOps)
		}
	}
	// Creates: paper factor 5.87; ours should be at least 3.
	r := byName["100 small creates"]
	if get(t, r[2])/get(t, r[4]) < 3 {
		t.Errorf("create I/O factor %.2f, want >= 3", get(t, r[2])/get(t, r[4]))
	}
	// List: the dominant win (paper 48.7x). Ours is smaller because FSD
	// reads both name-table copies and our entries are larger, but the
	// factor must still be large.
	r = byName["list 100 files"]
	if get(t, r[2])/get(t, r[4]) < 6 {
		t.Errorf("list I/O factor %.2f, want >= 6", get(t, r[2])/get(t, r[4]))
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	// Creates: FSD about half the I/Os of BSD (paper 2.07).
	r := byName["100 small creates"]
	fsdOps, bsdOps := get(t, r[2]), get(t, r[4])
	if f := bsdOps / fsdOps; f < 1.4 {
		t.Errorf("create ratio %.2f, want >= 1.4 (paper 2.07)", f)
	}
	// Reads: near parity (paper 1.05).
	r = byName["read 100 small files"]
	fsdOps, bsdOps = get(t, r[2]), get(t, r[4])
	if f := bsdOps / fsdOps; f < 0.7 || f > 2.0 {
		t.Errorf("read ratio %.2f, want ~1 (paper 1.05)", f)
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := Table5()
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	read, write := tab.Rows[0], tab.Rows[1]
	// FSD delivers much more bandwidth than 4.2 BSD (79-80 vs 47).
	if get(t, read[4]) <= get(t, read[8]) {
		t.Errorf("read: FSD BW %s%% not above BSD %s%%", read[4], read[8])
	}
	if get(t, write[4]) <= get(t, write[8]) {
		t.Errorf("write: FSD BW %s%% not above BSD %s%%", write[4], write[8])
	}
	// BSD bandwidth capped near half by the rotational gap.
	if bw := get(t, read[8]); bw < 30 || bw > 65 {
		t.Errorf("BSD read bandwidth %v%%, want ~47", bw)
	}
	// BSD write path is CPU-saturated (paper 95%).
	if cpu := get(t, write[6]); cpu < 70 {
		t.Errorf("BSD write CPU %v%%, want high (paper 95)", cpu)
	}
}

func TestGroupCommitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := GroupCommit()
	if err != nil {
		t.Fatalf("GroupCommit: %v", err)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if f := get(t, byName["metadata I/O reduction factor (vs CFS)"][2]); f < 2 {
		t.Errorf("metadata reduction %.2f, want >= 2 (paper 2.98)", f)
	}
	if f := get(t, byName["total I/O reduction factor (vs CFS)"][2]); f < 1.5 {
		t.Errorf("total reduction %.2f, want >= 1.5 (paper 2.34)", f)
	}
	if v := get(t, byName["smallest possible record (1 image, sectors)"][2]); v != 7 {
		t.Errorf("smallest record %v sectors, want 7", v)
	}
}

func TestModelValidationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := ModelValidation()
	if err != nil {
		t.Fatalf("ModelValidation: %v", err)
	}
	if worst := MaxErrorPct(tab); worst > 25 {
		t.Errorf("worst model error %.1f%%, want <= 25%% (paper claims 5%%)", worst)
	}
}

func TestRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := Recovery()
	if err != nil {
		t.Fatalf("Recovery: %v", err)
	}
	// Row order: FSD, VAM, fsck, scavenge.
	var fsd, fsck, scav float64
	for _, r := range tab.Rows {
		var v float64
		if _, perr := fmt.Sscanf(r[2], "%f", &v); perr != nil {
			t.Fatalf("parse %q: %v", r[2], perr)
		}
		switch r[0] {
		case "FSD (log replay + VAM rebuild)":
			fsd = v
		case "4.3 BSD fsck (VAX-11/785)":
			fsck = v
		case "CFS scavenge":
			scav = v
		}
	}
	if !(fsd < fsck && fsck < scav) {
		t.Errorf("recovery ordering violated: fsd=%.1f fsck=%.1f scavenge=%.1f", fsd, fsck, scav)
	}
	if fsd > 60 {
		t.Errorf("FSD recovery %.1fs, want tens of seconds at most (paper 1-25s)", fsd)
	}
	if scav < 300 {
		t.Errorf("scavenge %.0fs, want hour-scale (paper 3600+)", scav)
	}
}

func TestVAMLoggingAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := AblationVAMLogging()
	if err != nil {
		t.Fatalf("AblationVAMLogging: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	scan, logged := get(t, tab.Rows[0][1]), get(t, tab.Rows[1][1])
	if logged >= scan {
		t.Errorf("VAM logging (%.1fs) not faster than scan recovery (%.1fs)", logged, scan)
	}
	if vamScan := get(t, tab.Rows[1][2]); vamScan != 0 {
		t.Errorf("VAM logging still scanned for %.1fs", vamScan)
	}
}

func TestRecoveryScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	tab, err := RecoveryScaling()
	if err != nil {
		t.Fatalf("RecoveryScaling: %v", err)
	}
	var prev float64
	for i, r := range tab.Rows {
		rec := get(t, r[2])
		if i > 0 && rec < prev {
			t.Errorf("recovery time not monotone in occupancy: %v", tab.Rows)
		}
		prev = rec
	}
	lo, hi := get(t, tab.Rows[0][2]), get(t, tab.Rows[len(tab.Rows)-1][2])
	if lo > 5 {
		t.Errorf("near-empty recovery %.1fs, want a few seconds (paper: 1s low end)", lo)
	}
	if hi < 10 || hi > 40 {
		t.Errorf("full recovery %.1fs, want ~20-25s (paper: 25s high end)", hi)
	}
}

func TestConcurrencySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	rep, err := ConcurrencyReportRun()
	if err != nil {
		t.Fatalf("ConcurrencyReportRun: %v", err)
	}
	if rep.Speedup8 < 2 {
		t.Errorf("8-worker speedup %.2fx, want >= 2x over the single monitor", rep.Speedup8)
	}
	// One worker should be no slower than the serialized baseline (same
	// work, no overlap to exploit).
	if len(rep.Runs) == 0 || rep.Runs[0].Workers != 1 {
		t.Fatalf("runs: %+v", rep.Runs)
	}
	if r := rep.Runs[0].Throughput / rep.Baseline.Throughput; r < 0.85 {
		t.Errorf("1-worker split monitor at %.2fx of baseline, want ~1x", r)
	}
	// Throughput must rise with workers.
	for i := 1; i < len(rep.Runs); i++ {
		if rep.Runs[i].Throughput <= rep.Runs[i-1].Throughput {
			t.Errorf("throughput not monotone: %d workers %.0f <= %d workers %.0f",
				rep.Runs[i].Workers, rep.Runs[i].Throughput,
				rep.Runs[i-1].Workers, rep.Runs[i-1].Throughput)
		}
	}
}

func TestRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-volume experiment")
	}
	rep, err := RobustnessReportRun()
	if err != nil {
		t.Fatalf("RobustnessReportRun: %v", err)
	}
	// Every decayed duplicate must be healed (the run itself errors on
	// NTLost/problems) and every stuck defect retired to a spare.
	if rep.ScrubRepaired < rep.DecayedSectors/2 {
		t.Errorf("scrub repaired %d copies for %d decayed sectors", rep.ScrubRepaired, rep.DecayedSectors)
	}
	if rep.ScrubRetired != rep.StuckSectors {
		t.Errorf("retired %d sectors, want the %d stuck defects", rep.ScrubRetired, rep.StuckSectors)
	}
	// Salvage must get every file back, and beat the label scavenge it
	// replaces on the same population.
	if rep.SalvageFiles != rep.Files {
		t.Errorf("salvage recovered %d of %d files", rep.SalvageFiles, rep.Files)
	}
	if rep.ScavengeFiles != rep.Files {
		t.Errorf("scavenge recovered %d of %d files", rep.ScavengeFiles, rep.Files)
	}
	if rep.SalvageSpeedup < 1 {
		t.Errorf("salvage slower than scavenge: %.2fx", rep.SalvageSpeedup)
	}
}

func TestCrashSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash-state enumeration")
	}
	rep, err := CrashSweepReportRun()
	if err != nil {
		t.Fatalf("CrashSweepReportRun: %v", err)
	}
	// The run itself errors on mount failures or oracle violations, so
	// here we only check the sweep's shape and the recovery-time claim.
	if rep.States < 1000 {
		t.Errorf("explored %d crash states, want >= 1000", rep.States)
	}
	if rep.PrefixStates == 0 || rep.ReorderStates == 0 || rep.TornStates == 0 {
		t.Errorf("a state family is missing: prefix=%d reorder=%d torn=%d",
			rep.PrefixStates, rep.ReorderStates, rep.TornStates)
	}
	if rep.TornRecords == 0 || rep.TailDiscarded == 0 {
		t.Errorf("recovery never absorbed damage: torn=%d tail=%d", rep.TornRecords, rep.TailDiscarded)
	}
	if rep.StatesPerSec <= 0 {
		t.Errorf("states/sec not measured: %f", rep.StatesPerSec)
	}
	// Simulated recovery stays inside the paper's observed 1-25 s window
	// (the small sweep geometry sits near the bottom of it).
	if rep.RecoveryMaxS <= 0 || rep.RecoveryMaxS > 25 {
		t.Errorf("max simulated recovery %.2f s outside the paper's window", rep.RecoveryMaxS)
	}
	if rep.RecoveryMedS > rep.RecoveryMaxS || rep.RecoveryMinS > rep.RecoveryMedS {
		t.Errorf("recovery summary not ordered: %f %f %f", rep.RecoveryMinS, rep.RecoveryMedS, rep.RecoveryMaxS)
	}
}

func TestNestedCrashShape(t *testing.T) {
	if testing.Short() {
		t.Skip("depth-2 exploration")
	}
	// A reduced outer sample keeps the smoke fast; the acceptance run
	// (300 outer states) is the benchtab -nestedcrash-json path.
	rep, err := NestedCrashReportRun(40)
	if err != nil {
		t.Fatalf("NestedCrashReportRun: %v", err)
	}
	if rep.OuterStates != 40 {
		t.Errorf("explored %d outer states, want 40", rep.OuterStates)
	}
	if rep.InnerStates == 0 || rep.InnerStatesTotal < rep.InnerStates {
		t.Errorf("inner states wrong: %d of %d", rep.InnerStates, rep.InnerStatesTotal)
	}
	if rep.Violations != 0 || rep.MountFailures != 0 || rep.InnerMountFails != 0 {
		t.Errorf("depth-2 failures: %d violations, %d/%d mount failures",
			rep.Violations, rep.MountFailures, rep.InnerMountFails)
	}
	// Recovery-of-recovery must be measured and stay inside the paper's
	// observed 1-25 s window, like the first recovery.
	if rep.RecRecMaxS <= 0 || rep.RecRecMaxS > 25 {
		t.Errorf("max recovery-of-recovery %.2f s outside the paper's window", rep.RecRecMaxS)
	}
	if rep.RecRecMedS > rep.RecRecMaxS || rep.RecRecMinS > rep.RecRecMedS {
		t.Errorf("recovery-of-recovery summary not ordered: %f %f %f",
			rep.RecRecMinS, rep.RecRecMedS, rep.RecRecMaxS)
	}
}
