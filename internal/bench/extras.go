package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/diskmodel"
	"repro/internal/unixfs"
	"repro/internal/workload"
)

// timeDur aliases time.Duration for brevity in multi-return signatures.
type timeDur = time.Duration

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// cfsScavenge runs the scavenger and returns its elapsed simulated time.
func cfsScavenge(d *disk.Disk) (*cfs.Volume, timeDur, error) {
	v, st, err := cfs.Scavenge(d, cfs.Config{})
	return v, st.Elapsed, err
}

// GroupCommit measures Section 5.4's claims: the I/O reduction from logging
// plus group commit during bulk operations (paper: 2.98x for metadata,
// 2.34x overall), and the log record size statistics (7-sector minimum,
// ~33-sector typical under load, 83 maximum).
func GroupCommit() (Table, error) {
	run := func(cfg core.Config) (meta, total int, st walStats, err error) {
		fe, err := newFSD(cfg)
		if err != nil {
			return 0, 0, walStats{}, err
		}
		if err := workload.BulkUpdatePrepare(fe.t, workload.DefaultBulkUpdate); err != nil {
			return 0, 0, walStats{}, err
		}
		fe.v.Force()
		fe.d.ResetStats()
		fe.v.Log().ResetStats()
		if err := workload.BulkUpdateRun(fe.t, workload.DefaultBulkUpdate); err != nil {
			return 0, 0, walStats{}, err
		}
		fe.v.Force()
		ds := fe.d.Stats()
		ls := fe.v.Log().Stats()
		return ds.OpsByClass[disk.ClassMeta], ds.Ops, walStats{
			records: ls.Records, min: ls.MinRecordSectors, max: ls.MaxRecordSectors,
			sectors: ls.SectorsWritten, staged: ls.ImagesStaged, logged: ls.ImagesLogged,
		}, nil
	}
	gcfg := fsdBenchConfig()
	scfg := fsdBenchConfig()
	scfg.Synchronous = true
	gMeta, gTotal, gws, err := run(gcfg)
	if err != nil {
		return Table{}, err
	}
	sMeta, sTotal, _, err := run(scfg)
	if err != nil {
		return Table{}, err
	}

	// The paper's 2.98x / 2.34x factors compare the old system against
	// FSD on bulk operations. Those operations (bringovers) were paced
	// by network fetches, arriving roughly a commit window apart — run
	// the paced variant on both systems, counting CFS's metadata-purpose
	// I/Os (headers, labels, name table) explicitly.
	pacedFSD, err := newFSD(fsdBenchConfig())
	if err != nil {
		return Table{}, err
	}
	if err := workload.BulkUpdatePrepare(pacedFSD.t, workload.DefaultBulkUpdate); err != nil {
		return Table{}, err
	}
	pacedFSD.v.Force()
	pacedFSD.d.ResetStats()
	err = workload.BulkUpdateRunPaced(pacedFSD.t, workload.DefaultBulkUpdate, func() {
		pacedFSD.clk.Advance(600 * time.Millisecond)
		pacedFSD.v.Tick()
	})
	if err != nil {
		return Table{}, err
	}
	pacedFSD.v.Force()
	pfMeta := pacedFSD.d.Stats().OpsByClass[disk.ClassMeta]
	pfTotal := pacedFSD.d.Stats().Ops

	ce, err := newCFS()
	if err != nil {
		return Table{}, err
	}
	if err := workload.BulkUpdatePrepare(ce.t, workload.DefaultBulkUpdate); err != nil {
		return Table{}, err
	}
	ce.d.ResetStats()
	ce.v.ResetMetaIOs()
	err = workload.BulkUpdateRunPaced(ce.t, workload.DefaultBulkUpdate, func() {
		ce.clk.Advance(600 * time.Millisecond)
	})
	if err != nil {
		return Table{}, err
	}
	cfsMeta := ce.v.MetaIOs()
	cfsTotal := ce.d.Stats().Ops

	avg := 0
	if gws.records > 0 {
		avg = gws.sectors / gws.records
	}
	t := Table{
		ID:     "GC",
		Title:  "Group commit: bulk-update I/O reduction and log record sizes (5.4)",
		Header: []string{"Metric", "Paper", "Ours"},
		Rows: [][]string{
			{"metadata I/O reduction factor (vs CFS)", "2.98", ratio(float64(cfsMeta), float64(pfMeta))},
			{"total I/O reduction factor (vs CFS)", "2.34", ratio(float64(cfsTotal), float64(pfTotal))},
			{"metadata I/O reduction factor (vs sync FSD)", "-", ratio(float64(sMeta), float64(gMeta))},
			{"total I/O reduction factor (vs sync FSD)", "-", ratio(float64(sTotal), float64(gTotal))},
			{"smallest possible record (1 image, sectors)", "7", fmt.Sprint(5 + 2*1)},
			{"smallest observed record (sectors)", "-", fmt.Sprint(gws.min)},
			{"typical log record under load (sectors)", "33", fmt.Sprint(avg)},
			{"largest permitted record (sectors)", "83", fmt.Sprint(5 + 2*39)},
			{"images staged / images logged", "-", fmt.Sprintf("%d / %d", gws.staged, gws.logged)},
		},
		Notes: []string{
			fmt.Sprintf("paced (bringover) runs — CFS: %d metadata / %d total I/Os, FSD: %d / %d", cfsMeta, cfsTotal, pfMeta, pfTotal),
			fmt.Sprintf("back-to-back runs — grouped FSD: %d / %d, sync FSD: %d / %d", gMeta, gTotal, sMeta, sTotal),
		},
	}
	return t, nil
}

type walStats struct{ records, min, max, sectors, staged, logged int }

// Recovery measures the full recovery comparison of Section 7: FSD log
// replay (+ VAM reconstruction), CFS scavenge, and BSD fsck on comparably
// full 300 MB volumes.
func Recovery() (Table, error) {
	fsdRec, cfsScav, fsdVAM, err := recoveryTimes()
	if err != nil {
		return Table{}, err
	}
	// BSD fsck on a comparably populated volume.
	ue, err := newUnix(unixfs.Config{})
	if err != nil {
		return Table{}, err
	}
	if _, err := populate(ue.t, 11); err != nil {
		return Table{}, err
	}
	ue.fs.Crash()
	ue.d.Revive()
	_, fst, err := unixfs.Fsck(ue.d, unixfs.Config{})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Recovery",
		Title:  "Crash recovery on a moderately full 300 MB volume (7)",
		Header: []string{"System", "Paper", "Ours"},
		Rows: [][]string{
			{"FSD (log replay + VAM rebuild)", "1 - 25 s", fmt.Sprintf("%.1f s", fsdRec.Seconds())},
			{"  of which VAM reconstruction", "~20 s", fmt.Sprintf("%.1f s", fsdVAM.Seconds())},
			{"4.3 BSD fsck (VAX-11/785)", "~420 s", fmt.Sprintf("%.0f s (%d inodes)", fst.Elapsed.Seconds(), fst.InodesChecked)},
			{"CFS scavenge", "3600+ s", fmt.Sprintf("%.0f s", cfsScav.Seconds())},
		},
	}
	return t, nil
}

// ModelValidation reproduces Section 6: the analytical model's predictions
// against the simulator's measurements for the simple operations ("the
// model almost always predicted performance to within five percent").
func ModelValidation() (Table, error) {
	g, p := disk.DefaultGeometry, disk.DefaultParams

	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return Table{}, err
	}
	ce, err := newCFS()
	if err != nil {
		return Table{}, err
	}
	for _, w := range []workload.Target{fe.t, ce.t} {
		if err := workload.SmallCreates(w, "warm", 50, 600); err != nil {
			return Table{}, err
		}
	}
	fNT, fLog := fe.v.ModelInfo()
	cNT := ce.v.ModelInfo()

	const n = 200
	// Measured values.
	mFSDCreate, err := meanOp(fe.clk, n, func(i int) error {
		_, err := fe.v.Create(fmt.Sprintf("mv/c%04d", i), []byte{1})
		return err
	})
	if err != nil {
		return Table{}, err
	}
	// Derive the group-commit amortization inputs from the measured run,
	// as the paper derived its locality facts from the running system.
	ls := fe.v.Log().Stats()
	forceEvery := n
	forceSectors := 7
	if ls.Forces > 0 {
		forceEvery = n / ls.Forces
		if ls.Records > 0 {
			forceSectors = ls.SectorsWritten / ls.Records
		}
	}
	env := diskmodel.Env{G: g, P: p, DataToNTCyl: fNT, DataToLogCyl: fLog,
		ForceEvery: forceEvery, ForceSectors: forceSectors}
	cenv := diskmodel.Env{G: g, P: p, DataToNTCyl: cNT}

	mFSDOpen, err := meanOp(fe.clk, n, func(i int) error {
		_, err := fe.v.Open(fmt.Sprintf("mv/c%04d", i%n), 0)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	mFSDDelete, err := meanOp(fe.clk, n, func(i int) error {
		return fe.v.Delete(fmt.Sprintf("mv/c%04d", i), 0)
	})
	if err != nil {
		return Table{}, err
	}
	mCFSCreate, err := meanOp(ce.clk, n, func(i int) error {
		_, err := ce.v.Create(fmt.Sprintf("mv/c%04d", i), []byte{1})
		return err
	})
	if err != nil {
		return Table{}, err
	}
	mCFSOpen, err := meanOp(ce.clk, n, func(i int) error {
		_, err := ce.v.Open(fmt.Sprintf("mv/c%04d", i%n), 0)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	mCFSDelete, err := meanOp(ce.clk, n, func(i int) error {
		return ce.v.Delete(fmt.Sprintf("mv/c%04d", i), 0)
	})
	if err != nil {
		return Table{}, err
	}
	// Large creates (1 MB = 2048 data pages), transfer-bound.
	largeData := workload.Payload(1_000_000, 5)
	largePages := (len(largeData) + 511) / 512
	mFSDLarge, err := meanOp(fe.clk, 3, func(i int) error {
		_, err := fe.v.Create(fmt.Sprintf("mv/L%d", i), largeData)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	mCFSLarge, err := meanOp(ce.clk, 3, func(i int) error {
		_, err := ce.v.Create(fmt.Sprintf("mv/L%d", i), largeData)
		return err
	})
	if err != nil {
		return Table{}, err
	}

	rows := []struct {
		name      string
		predicted time.Duration
		measured  time.Duration
	}{
		{"FSD open", diskmodel.FSDOpen(env).Expected(g, p), mFSDOpen},
		{"FSD small create", diskmodel.FSDSmallCreate(env).Expected(g, p), mFSDCreate},
		{"FSD small delete", diskmodel.FSDDelete(env).Expected(g, p), mFSDDelete},
		{"CFS open", diskmodel.CFSOpen(cenv).Expected(g, p), mCFSOpen},
		{"CFS small create", diskmodel.CFSSmallCreate(cenv).Expected(g, p), mCFSCreate},
		{"CFS small delete", diskmodel.CFSSmallDelete(cenv).Expected(g, p), mCFSDelete},
		{"FSD large create", diskmodel.FSDLargeCreate(env, largePages, 64).Expected(g, p), mFSDLarge},
		{"CFS large create", diskmodel.CFSLargeCreate(cenv, largePages, 64).Expected(g, p), mCFSLarge},
	}
	t := Table{
		ID:     "Model",
		Title:  "Analytical model vs measurement (6)",
		Header: []string{"Operation", "Model (ms)", "Measured (ms)", "Error %"},
	}
	for _, r := range rows {
		errPct := 100 * (float64(r.predicted) - float64(r.measured)) / float64(r.measured)
		t.Rows = append(t.Rows, []string{r.name, ms(r.predicted), ms(r.measured), fmt.Sprintf("%+.1f", errPct)})
	}
	t.Notes = append(t.Notes, "paper: 'the model almost always predicted performance to within five percent'")
	return t, nil
}

// MaxErrorPct returns the largest absolute model error in a ModelValidation
// table; tests use it.
func MaxErrorPct(t Table) float64 {
	var worst float64
	for _, r := range t.Rows {
		var v float64
		fmt.Sscanf(r[3], "%f", &v)
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}

// RecoveryScaling measures FSD crash recovery as a function of how full the
// volume is — the paper reports a range, "1 to 25 seconds", because the
// dominant cost (the VAM reconstruction scan) is proportional to the name
// table's size.
func RecoveryScaling() (Table, error) {
	t := Table{
		ID:     "RecoveryScaling",
		Title:  "FSD recovery time vs volume occupancy (the paper's 1-25 s range)",
		Header: []string{"Occupancy", "Files", "Recovery (s)", "VAM scan (s)", "Log records"},
	}
	for _, mb := range []int{5, 40, 110, 170} {
		fe, err := newFSD(fsdBenchConfig())
		if err != nil {
			return Table{}, err
		}
		names, err := workload.PopulateVolume(fe.t, newRng(31), int64(mb)<<20, 192*1024)
		if err != nil {
			return Table{}, err
		}
		if err := fe.v.Force(); err != nil {
			return Table{}, err
		}
		fe.v.Crash()
		fe.d.Revive()
		_, ms2, err := core.Mount(fe.d, fsdBenchConfig())
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d MB", mb),
			fmt.Sprint(len(names)),
			fmt.Sprintf("%.1f", ms2.Elapsed.Seconds()),
			fmt.Sprintf("%.1f", ms2.VAMElapsed.Seconds()),
			fmt.Sprint(ms2.LogRecords),
		})
	}
	t.Notes = append(t.Notes, "paper: 'Recovery rarely takes more than two seconds' for the log alone; the 25 s worst case is the VAM scan on a full volume")
	return t, nil
}
