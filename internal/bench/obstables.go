package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/diskmodel"
)

// This file reproduces the paper's evaluation tables from the live
// observability counters — Volume.Stats() windows, span latency histograms,
// and the commit distributions — instead of stopwatching around calls. The
// three tables mirror the paper's Table 2 (disk I/Os per operation), Table 3
// (group commit batching the metadata writes of a bulk operation), and
// Tables 4/5 (analytical model vs measured operation timings). One shared
// run feeds all three, so `benchtab -table tables` costs a single volume.

// TablesReport is the JSON form of the live-counter table reproduction
// (recorded as BENCH_tables.json at the repo root).
type TablesReport struct {
	IOs      []IORow        `json:"ios_per_operation"`
	Batching BatchingReport `json:"group_commit_batching"`
	Timings  []TimingRow    `json:"operation_timings"`
}

// IORow is one operation class of the Table-2 reproduction: disk I/Os per
// logical operation, split total vs metadata, plus the span-measured mean
// latency, all from windowed Stats() deltas.
type IORow struct {
	Operation    string  `json:"operation"`
	Count        int     `json:"count"`
	IOsPerOp     float64 `json:"ios_per_op"`
	MetaIOsPerOp float64 `json:"meta_ios_per_op"`
	MeanMs       float64 `json:"mean_ms"`
	Paper        string  `json:"paper,omitempty"`
}

// BatchingReport is the Table-3 reproduction: how many staged metadata page
// images each logged image absorbed during a back-to-back bulk delete.
type BatchingReport struct {
	Files               int     `json:"files"`
	ImagesStaged        int     `json:"images_staged"`
	ImagesLogged        int     `json:"images_logged"`
	BatchingFactor      float64 `json:"batching_factor"`
	Forces              int     `json:"forces"`
	MeanImagesPerForce  float64 `json:"mean_images_per_force"`
	MeanRecordsPerForce float64 `json:"mean_records_per_force"`
	MeanForceIntervalMs float64 `json:"mean_force_interval_ms"`
}

// TimingRow is one operation of the Tables-4/5 reproduction: the analytical
// model's prediction against the span-measured mean.
type TimingRow struct {
	Operation  string  `json:"operation"`
	ModelMs    float64 `json:"model_ms"`
	MeasuredMs float64 `json:"measured_ms"`
	ErrorPct   float64 `json:"error_pct"`
}

// tablesCache memoizes the shared run so the three table generators (and the
// JSON writer) reuse one volume instead of re-running the workload.
var tablesCache struct {
	sync.Mutex
	rep *TablesReport
	err error
}

func tablesReport() (TablesReport, error) {
	tablesCache.Lock()
	defer tablesCache.Unlock()
	if tablesCache.rep == nil && tablesCache.err == nil {
		rep, err := computeTables()
		tablesCache.rep, tablesCache.err = &rep, err
	}
	if tablesCache.err != nil {
		return TablesReport{}, tablesCache.err
	}
	return *tablesCache.rep, nil
}

// spanWindow returns the invocation count and mean latency (ms) of one span
// between two Stats snapshots. Missing spans read as zero-valued, so a
// window opened before the first invocation still differences cleanly.
func spanWindow(before, after core.Stats, name string) (int, float64) {
	a, b := after.Spans[name], before.Spans[name]
	n := a.Count - b.Count
	if n <= 0 {
		return 0, 0
	}
	sum := a.Latency.Sum - b.Latency.Sum
	return int(n), float64(sum) / float64(n) / float64(time.Millisecond)
}

func computeTables() (TablesReport, error) {
	var rep TablesReport
	fe, err := newFSD(fsdBenchConfig())
	if err != nil {
		return rep, err
	}

	// --- Table 2: disk I/Os per operation, from windowed live counters ---
	const nOps = 100
	warm := make([]string, nOps)
	for i := range warm {
		warm[i] = fmt.Sprintf("t2/w%03d", i)
		if _, err := fe.v.Create(warm[i], payloadBytes(600, byte(i))); err != nil {
			return rep, err
		}
	}
	if err := fe.v.Force(); err != nil {
		return rep, err
	}

	measure := func(name, span, paper string, n int, fn func(i int) error) error {
		before := fe.v.Stats()
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		after := fe.v.Stats()
		dd := after.Disk.Sub(before.Disk)
		_, mean := spanWindow(before, after, span)
		rep.IOs = append(rep.IOs, IORow{
			Operation:    name,
			Count:        n,
			IOsPerOp:     float64(dd.Ops) / float64(n),
			MetaIOsPerOp: float64(dd.OpsByClass[disk.ClassMeta]) / float64(n),
			MeanMs:       mean,
			Paper:        paper,
		})
		return nil
	}
	if err := measure("open (warm name table)", "open", "0", nOps, func(i int) error {
		_, err := fe.v.Open(warm[i], 0)
		return err
	}); err != nil {
		return rep, err
	}
	if err := measure("open + read 600 B", "read", "1", nOps, func(i int) error {
		f, err := fe.v.Open(warm[i], 0)
		if err != nil {
			return err
		}
		_, err = f.ReadPages(0, 1)
		return err
	}); err != nil {
		return rep, err
	}
	if err := measure("small create (600 B)", "create", "1", nOps, func(i int) error {
		_, err := fe.v.Create(fmt.Sprintf("t2/c%03d", i), payloadBytes(600, byte(i)))
		return err
	}); err != nil {
		return rep, err
	}
	if err := measure("touch (set mtime)", "touch", "0", nOps, func(i int) error {
		return fe.v.Touch(warm[i], 0)
	}); err != nil {
		return rep, err
	}
	if err := measure("delete", "delete", "0", nOps, func(i int) error {
		return fe.v.Delete(fmt.Sprintf("t2/c%03d", i), 0)
	}); err != nil {
		return rep, err
	}
	if err := measure("list (100-file prefix scan)", "list", "", 10, func(i int) error {
		return fe.v.List("t2/", func(core.Entry) bool { return true })
	}); err != nil {
		return rep, err
	}
	if err := fe.v.Force(); err != nil {
		return rep, err
	}

	// --- Table 3: group-commit batching on a back-to-back bulk delete ---
	const nBulk = 400
	for i := 0; i < nBulk; i++ {
		if _, err := fe.v.Create(fmt.Sprintf("t3/f%04d", i), payloadBytes(600, byte(i))); err != nil {
			return rep, err
		}
	}
	if err := fe.v.Force(); err != nil {
		return rep, err
	}
	before := fe.v.Stats()
	for i := 0; i < nBulk; i++ {
		if err := fe.v.Delete(fmt.Sprintf("t3/f%04d", i), 0); err != nil {
			return rep, err
		}
	}
	if err := fe.v.Force(); err != nil {
		return rep, err
	}
	after := fe.v.Stats()
	staged := after.Commit.ImagesStaged - before.Commit.ImagesStaged
	logged := after.Commit.ImagesLogged - before.Commit.ImagesLogged
	batch := after.Commit.BatchImages.Sub(before.Commit.BatchImages)
	recs := after.Commit.RecordsPerForce.Sub(before.Commit.RecordsPerForce)
	ivl := after.Commit.ForceInterval.Sub(before.Commit.ForceInterval)
	rep.Batching = BatchingReport{
		Files:               nBulk,
		ImagesStaged:        staged,
		ImagesLogged:        logged,
		Forces:              after.Commit.Forces - before.Commit.Forces,
		MeanImagesPerForce:  batch.Mean(),
		MeanRecordsPerForce: recs.Mean(),
		MeanForceIntervalMs: ivl.Mean() / float64(time.Millisecond),
	}
	if logged > 0 {
		rep.Batching.BatchingFactor = float64(staged) / float64(logged)
	}

	// --- Tables 4/5: analytical model vs span-measured timings ---
	g, p := disk.DefaultGeometry, disk.DefaultParams
	fNT, fLog := fe.v.ModelInfo()
	const nTim = 200
	b0 := fe.v.Stats()
	for i := 0; i < nTim; i++ {
		if _, err := fe.v.Create(fmt.Sprintf("t45/c%04d", i), []byte{1}); err != nil {
			return rep, err
		}
	}
	a0 := fe.v.Stats()
	_, mCreate := spanWindow(b0, a0, "create")
	// Derive the group-commit amortization inputs from this window, as the
	// paper derived its locality facts from the running system.
	forceEvery, forceSectors := nTim, 7
	if df := a0.Commit.Forces - b0.Commit.Forces; df > 0 {
		forceEvery = nTim / df
		if dr := a0.Commit.Records - b0.Commit.Records; dr > 0 {
			forceSectors = (a0.Commit.SectorsWritten - b0.Commit.SectorsWritten) / dr
		}
	}
	env := diskmodel.Env{G: g, P: p, DataToNTCyl: fNT, DataToLogCyl: fLog,
		ForceEvery: forceEvery, ForceSectors: forceSectors}

	b1 := fe.v.Stats()
	for i := 0; i < nTim; i++ {
		if _, err := fe.v.Open(fmt.Sprintf("t45/c%04d", i), 0); err != nil {
			return rep, err
		}
	}
	a1 := fe.v.Stats()
	_, mOpen := spanWindow(b1, a1, "open")

	b2 := fe.v.Stats()
	for i := 0; i < nTim; i++ {
		if err := fe.v.Delete(fmt.Sprintf("t45/c%04d", i), 0); err != nil {
			return rep, err
		}
	}
	a2 := fe.v.Stats()
	_, mDelete := spanWindow(b2, a2, "delete")

	timing := func(name string, model time.Duration, measured float64) TimingRow {
		mm := float64(model) / float64(time.Millisecond)
		r := TimingRow{Operation: name, ModelMs: mm, MeasuredMs: measured}
		if measured > 0 {
			r.ErrorPct = 100 * (mm - measured) / measured
		}
		return r
	}
	rep.Timings = []TimingRow{
		timing("FSD open", diskmodel.FSDOpen(env).Expected(g, p), mOpen),
		timing("FSD small create", diskmodel.FSDSmallCreate(env).Expected(g, p), mCreate),
		timing("FSD small delete", diskmodel.FSDDelete(env).Expected(g, p), mDelete),
	}
	return rep, nil
}

// payloadBytes builds a deterministic n-byte payload.
func payloadBytes(n int, tag byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag + byte(i)
	}
	return b
}

// TablesIOs renders the Table-2 reproduction: disk I/Os per operation from
// the live Stats() windows.
func TablesIOs() (Table, error) {
	rep, err := tablesReport()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "T2",
		Title:  "Disk I/Os per operation, from live counters (Table 2)",
		Header: []string{"Operation", "N", "I/Os per op", "meta I/Os per op", "Mean (ms)", "Paper I/Os"},
	}
	for _, r := range rep.IOs {
		paper := r.Paper
		if paper == "" {
			paper = "-"
		}
		t.Rows = append(t.Rows, []string{
			r.Operation, fmt.Sprint(r.Count),
			fmt.Sprintf("%.2f", r.IOsPerOp), fmt.Sprintf("%.2f", r.MetaIOsPerOp),
			fmt.Sprintf("%.1f", r.MeanMs), paper,
		})
	}
	t.Notes = append(t.Notes,
		"counters windowed via Stats().Disk.Sub; latency is the span histogram mean",
		"paper column: synchronous I/Os Table 2 charges to the operation itself")
	return t, nil
}

// TablesBatching renders the Table-3 reproduction: the group-commit batching
// factor on a back-to-back bulk delete.
func TablesBatching() (Table, error) {
	rep, err := tablesReport()
	if err != nil {
		return Table{}, err
	}
	b := rep.Batching
	t := Table{
		ID:     "T3",
		Title:  "Group-commit batching on a bulk delete, from live counters (Table 3)",
		Header: []string{"Metric", "Paper", "Ours"},
		Rows: [][]string{
			{"files deleted back-to-back", "-", fmt.Sprint(b.Files)},
			{"metadata images staged", "-", fmt.Sprint(b.ImagesStaged)},
			{"metadata images logged", "-", fmt.Sprint(b.ImagesLogged)},
			{"batching factor (staged / logged)", "2.98", fmt.Sprintf("%.2f", b.BatchingFactor)},
			{"forces in the window", "-", fmt.Sprint(b.Forces)},
			{"mean images per force", "-", fmt.Sprintf("%.1f", b.MeanImagesPerForce)},
			{"mean records per force", "-", fmt.Sprintf("%.1f", b.MeanRecordsPerForce)},
			{"mean force interval (ms)", "~500", fmt.Sprintf("%.0f", b.MeanForceIntervalMs)},
		},
		Notes: []string{
			"staged/logged and the force distributions come from Stats().Commit (WAL counters + observability histograms)",
		},
	}
	return t, nil
}

// TablesTimings renders the Tables-4/5 reproduction: the analytical model's
// predictions against span-measured means.
func TablesTimings() (Table, error) {
	rep, err := tablesReport()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "T4/5",
		Title:  "Model vs span-measured operation timings (Tables 4 and 5)",
		Header: []string{"Operation", "Model (ms)", "Measured (ms)", "Error %"},
	}
	for _, r := range rep.Timings {
		t.Rows = append(t.Rows, []string{
			r.Operation, fmt.Sprintf("%.1f", r.ModelMs),
			fmt.Sprintf("%.1f", r.MeasuredMs), fmt.Sprintf("%+.1f", r.ErrorPct),
		})
	}
	t.Notes = append(t.Notes,
		"measured values are span-histogram means from Stats().Spans, not stopwatch timings")
	return t, nil
}

// WriteTablesJSON runs the experiment and records it at path
// (BENCH_tables.json at the repo root), so successive PRs can track the
// trajectory.
func WriteTablesJSON(path string) (TablesReport, error) {
	rep, err := tablesReport()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}
