package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/workload"
)

// The data-path experiment: the file-data buffer cache with sequential
// read-ahead and clustered transfers (internal/bufcache), ablated against
// the paper's raw per-run path. Three configurations —
//
//	no-cache   the paper's FSD: every read goes to disk, one request per run
//	cache      buffer cache on, read-ahead off (demand clustering only)
//	cache+ra   buffer cache with sequential read-ahead (the full design)
//
// — each run three workloads on an identical volume: a sequential scan of a
// large Extend-grown file (many short physically adjacent runs, the paper's
// observation that files are "usually extended a little at a time"), random
// single-page reads over the same file, and a repeated whole-file re-read of
// a small hot file. The headline numbers are disk read requests per
// sequential scan (clustering merges adjacent runs into full transfers) and
// the re-read hit rate (write-through caching makes the second read free).

// DataPathResult is one (config, workload) cell.
type DataPathResult struct {
	Config           string  `json:"config"`   // no-cache | cache | cache+ra
	Workload         string  `json:"workload"` // sequential | random | re-read
	Reads            int     `json:"disk_read_ops"`
	SectorsRead      int     `json:"sectors_read"`
	MergeableOps     int     `json:"mergeable_ops"`
	DiskTimeMS       float64 `json:"disk_time_ms"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	HitRate          float64 `json:"hit_rate"`
	ReadAheadSectors int     `json:"read_ahead_sectors"`
	CoalescedReads   int     `json:"coalesced_reads"`
}

// DataPathReport is what BENCH_datapath.json holds.
type DataPathReport struct {
	Model   string           `json:"model"`
	Results []DataPathResult `json:"results"`
	// SeqReadReduction is the sequential-scan disk-request ratio of the
	// no-cache baseline to the full design (the ISSUE's >= 4x criterion).
	SeqReadReduction float64 `json:"seq_read_reduction"`
	// RereadHitRate is the full design's hit rate on the re-read workload
	// (the ISSUE's >= 90% criterion).
	RereadHitRate float64 `json:"reread_hit_rate"`
}

const (
	dpBigPages  = 400 // sequential/random target: Extend-grown, many runs
	dpHotPages  = 96  // re-read target: small hot file
	dpSeqChunk  = 8   // pages per sequential ReadPages call
	dpRereads   = 16  // whole-file re-reads of the hot file
	dpRandReads = 400 // random single-page reads
)

// dpConfig returns the volume config for one ablation arm.
func dpConfig(name string) (core.Config, error) {
	cfg := fsdBenchConfig()
	switch name {
	case "no-cache":
		cfg.DataCachePages = -1
	case "cache":
		cfg.DataCachePages = 4096
		cfg.ReadAhead = -1
	case "cache+ra":
		cfg.DataCachePages = 4096
	default:
		return cfg, fmt.Errorf("bench: unknown datapath config %q", name)
	}
	return cfg, nil
}

// dpEnv builds the two target files: "big" grown 8 pages at a time so its
// run table holds ~50 short physically adjacent runs, and "hot" created in
// one piece.
func dpEnv(cfgName string) (fsdEnv, *core.File, *core.File, error) {
	cfg, err := dpConfig(cfgName)
	if err != nil {
		return fsdEnv{}, nil, nil, err
	}
	fe, err := newFSD(cfg)
	if err != nil {
		return fsdEnv{}, nil, nil, err
	}
	big, err := fe.v.Create("bench/big", workload.Payload(disk.SectorSize, 3))
	if err != nil {
		return fsdEnv{}, nil, nil, err
	}
	for big.Pages() < dpBigPages {
		if err := big.Extend(dpSeqChunk); err != nil {
			return fsdEnv{}, nil, nil, err
		}
	}
	if err := big.WritePages(0, workload.Payload(big.Pages()*disk.SectorSize, 5)); err != nil {
		return fsdEnv{}, nil, nil, err
	}
	hot, err := fe.v.Create("bench/hot", workload.Payload(dpHotPages*disk.SectorSize, 11))
	if err != nil {
		return fsdEnv{}, nil, nil, err
	}
	if err := fe.v.Force(); err != nil {
		return fsdEnv{}, nil, nil, err
	}
	// Verify leaders and drop state so the measurement windows start from
	// cold caches and see no leader-piggyback read.
	if _, err := big.ReadPages(0, 1); err != nil {
		return fsdEnv{}, nil, nil, err
	}
	if _, err := hot.ReadPages(0, 1); err != nil {
		return fsdEnv{}, nil, nil, err
	}
	fe.v.DropCaches()
	return fe, big, hot, nil
}

// dpMeasure runs one workload in a stats window and fills the result cell.
func dpMeasure(fe fsdEnv, cfgName, wl string, run func() error) (DataPathResult, error) {
	ds0 := fe.v.Stats()
	if err := run(); err != nil {
		return DataPathResult{}, err
	}
	ds1 := fe.v.Stats()
	dw := ds1.Disk.Sub(ds0.Disk)
	hits := ds1.Cache.Data.Hits - ds0.Cache.Data.Hits
	misses := ds1.Cache.Data.Misses - ds0.Cache.Data.Misses
	r := DataPathResult{
		Config:           cfgName,
		Workload:         wl,
		Reads:            dw.Reads,
		SectorsRead:      dw.SectorsRead,
		MergeableOps:     dw.MergeableOps,
		DiskTimeMS:       float64(dw.BusyTime()) / float64(time.Millisecond),
		CacheHits:        hits,
		CacheMisses:      misses,
		ReadAheadSectors: ds1.Cache.Data.ReadAheadSectors - ds0.Cache.Data.ReadAheadSectors,
		CoalescedReads:   ds1.Cache.Data.CoalescedReads - ds0.Cache.Data.CoalescedReads,
	}
	if hits+misses > 0 {
		r.HitRate = float64(hits) / float64(hits+misses)
	}
	return r, nil
}

// dataPathRun measures the three workloads under one configuration.
func dataPathRun(cfgName string) ([]DataPathResult, error) {
	var out []DataPathResult

	// Sequential: one cold pass over the big file in small chunks.
	fe, big, hot, err := dpEnv(cfgName)
	if err != nil {
		return nil, err
	}
	seq, err := dpMeasure(fe, cfgName, "sequential", func() error {
		for p := 0; p < dpBigPages; p += dpSeqChunk {
			if _, err := big.ReadPages(p, dpSeqChunk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, seq)

	// Random: single-page reads at a fixed pseudo-random sequence, on a
	// fresh cold volume so sequential state cannot leak in.
	fe, big, hot, err = dpEnv(cfgName)
	if err != nil {
		return nil, err
	}
	rnd, err := dpMeasure(fe, cfgName, "random", func() error {
		for i := 0; i < dpRandReads; i++ {
			if _, err := big.ReadPages((i*137)%dpBigPages, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, rnd)

	// Re-read: repeated whole-file reads of the hot file. The first pass
	// warms the cache inside the window, so the steady-state hit rate is
	// (dpRereads-1)/dpRereads at best.
	reread, err := dpMeasure(fe, cfgName, "re-read", func() error {
		for i := 0; i < dpRereads; i++ {
			if _, err := hot.ReadAll(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, reread)
	return out, nil
}

// DataPathReportRun runs the full ablation grid.
func DataPathReportRun() (DataPathReport, error) {
	rep := DataPathReport{
		Model: "sequential scan of an Extend-grown file: no-cache issues one read per " +
			"run; clustering merges physically adjacent runs into full transfers; " +
			"read-ahead fills the cache ahead of the 8-page demand reads. " +
			"re-read: write-through cache serves repeat reads without I/O.",
	}
	var seqBase, seqFull DataPathResult
	for _, cfgName := range []string{"no-cache", "cache", "cache+ra"} {
		res, err := dataPathRun(cfgName)
		if err != nil {
			return DataPathReport{}, err
		}
		rep.Results = append(rep.Results, res...)
		for _, r := range res {
			if r.Workload == "sequential" && cfgName == "no-cache" {
				seqBase = r
			}
			if r.Workload == "sequential" && cfgName == "cache+ra" {
				seqFull = r
			}
			if r.Workload == "re-read" && cfgName == "cache+ra" {
				rep.RereadHitRate = r.HitRate
			}
		}
	}
	if seqFull.Reads > 0 {
		rep.SeqReadReduction = float64(seqBase.Reads) / float64(seqFull.Reads)
	}
	return rep, nil
}

// WriteDataPathJSON runs the experiment and records it at path
// (BENCH_datapath.json at the repo root).
func WriteDataPathJSON(path string) (DataPathReport, error) {
	rep, err := DataPathReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// DataPath renders the experiment as a benchtab table.
func DataPath() (Table, error) {
	rep, err := DataPathReportRun()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "DataPath",
		Title:  "File-data buffer cache: clustered transfers + sequential read-ahead vs the raw per-run path",
		Header: []string{"Config", "Workload", "Disk reads", "Sectors", "Mergeable", "Disk (ms)", "Hit rate", "Read-ahead", "Coalesced"},
	}
	for _, r := range rep.Results {
		t.Rows = append(t.Rows, []string{
			r.Config, r.Workload, fmt.Sprint(r.Reads), fmt.Sprint(r.SectorsRead),
			fmt.Sprint(r.MergeableOps), fmt.Sprintf("%.1f", r.DiskTimeMS),
			fmt.Sprintf("%.0f%%", r.HitRate*100),
			fmt.Sprint(r.ReadAheadSectors), fmt.Sprint(r.CoalescedReads),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("sequential disk-read reduction (no-cache / cache+ra): %.1fx", rep.SeqReadReduction),
		fmt.Sprintf("re-read hit rate (cache+ra, first pass warms in-window): %.0f%%", rep.RereadHitRate*100),
		rep.Model,
	)
	return t, nil
}
