package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// The concurrent-volume experiment. Cedar serialized every file operation
// behind one monitor; the split monitor lets lookups share the volume lock
// and the pipelined group commit keeps a force from blocking staging. This
// benchmark drives the same mixed workload (weighted like the paper's
// traffic analysis: opens and whole-small-file reads dominate) from N
// goroutines against both monitor disciplines and compares throughput in
// simulated time.
//
// Timing model: the CPU runs detached in both runs, so the virtual clock
// advances only for device time — identical disk timing in both systems, as
// the comparison requires. Elapsed is then
//
//	disk time + CPU busy / overlap
//
// where overlap is 1 under the single monitor (one operation owns the
// volume at a time, so processor work cannot overlap) and the worker count
// under the split monitor (read-path CPU — name lookups, list scans, buffer
// copies — overlaps fully; this is the model's optimistic bound, while the
// single shared device remains fully serialized). The simulated disk has no
// command queuing, so all of the speedup is CPU overlap — which matches the
// paper's observation that FSD "was very stingy with disk I/Os, but the CPU
// was sometimes a slight bottleneck".

// ConcurrencyResult is one run of the mixed workload.
type ConcurrencyResult struct {
	Mode       string  `json:"mode"`    // "serial-monitor" or "split-monitor"
	Workers    int     `json:"workers"` // driving goroutines
	Ops        int     `json:"ops"`     // logical file operations completed
	DiskTimeMS float64 `json:"disk_time_ms"`
	CPUBusyMS  float64 `json:"cpu_busy_ms"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"throughput_ops_per_sec"`
}

// ConcurrencyReport is what BENCH_concurrency.json holds.
type ConcurrencyReport struct {
	Model    string              `json:"model"`
	Baseline ConcurrencyResult   `json:"baseline"`
	Runs     []ConcurrencyResult `json:"runs"`
	Speedup8 float64             `json:"speedup_8_workers"`
}

// concurrencyMixIters is ops per worker; the mix below is 60% open, 20%
// list, 10% whole-file read, 10% create.
const concurrencyMixIters = 240

func concurrencyRun(serial bool, workers int) (ConcurrencyResult, error) {
	cfg := fsdBenchConfig()
	cfg.SerialMonitor = serial
	fe, err := newFSD(cfg)
	if err != nil {
		return ConcurrencyResult{}, err
	}
	// Working set: small shared files, the paper's common case.
	const shared = 120
	sharedData := workload.Payload(2048, 7)
	for i := 0; i < shared; i++ {
		if _, err := fe.v.Create(fmt.Sprintf("shared/f%04d", i), sharedData); err != nil {
			return ConcurrencyResult{}, err
		}
	}
	if err := fe.v.Force(); err != nil {
		return ConcurrencyResult{}, err
	}
	fe.d.ResetStats()
	fe.v.CPU().SetDetached(true)
	fe.v.CPU().ResetBusy()
	diskStart := fe.clk.Now()

	priv := workload.Payload(1024, 9)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < concurrencyMixIters; i++ {
				k := (w*31 + i*7) % shared
				var err error
				switch i % 10 {
				case 0, 1, 2, 3, 4, 5: // open
					_, err = fe.v.Open(fmt.Sprintf("shared/f%04d", k), 0)
				case 6, 7: // list a directory's worth of entries
					n := 0
					err = fe.v.List("shared/", func(core.Entry) bool {
						n++
						return n < 100
					})
				case 8: // whole-small-file read
					var f *core.File
					if f, err = fe.v.Open(fmt.Sprintf("shared/f%04d", k), 0); err == nil {
						_, err = f.ReadAll()
					}
				case 9: // small create
					_, err = fe.v.Create(fmt.Sprintf("priv/w%d-%04d", w, i), priv)
				}
				if err != nil {
					errCh <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return ConcurrencyResult{}, err
		}
	}
	if err := fe.v.Force(); err != nil {
		return ConcurrencyResult{}, err
	}

	diskTime := fe.clk.Now() - diskStart
	busy := fe.v.CPU().Busy()
	overlap := workers
	mode := "split-monitor"
	if serial {
		overlap = 1
		mode = "serial-monitor"
	}
	elapsed := diskTime + busy/time.Duration(overlap)
	ops := workers * concurrencyMixIters
	return ConcurrencyResult{
		Mode:       mode,
		Workers:    workers,
		Ops:        ops,
		DiskTimeMS: float64(diskTime) / float64(time.Millisecond),
		CPUBusyMS:  float64(busy) / float64(time.Millisecond),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Throughput: float64(ops) / elapsed.Seconds(),
	}, nil
}

// ConcurrencyReportRun runs the serialized baseline and the split-monitor
// workload at several worker counts.
func ConcurrencyReportRun() (ConcurrencyReport, error) {
	base, err := concurrencyRun(true, 8)
	if err != nil {
		return ConcurrencyReport{}, err
	}
	rep := ConcurrencyReport{
		Model: "elapsed = disk time + cpu busy / overlap; overlap = 1 under the " +
			"single monitor, = workers under the split monitor; disk fully " +
			"serialized in both",
		Baseline: base,
	}
	for _, w := range []int{1, 2, 4, 8} {
		r, err := concurrencyRun(false, w)
		if err != nil {
			return ConcurrencyReport{}, err
		}
		rep.Runs = append(rep.Runs, r)
		if w == 8 {
			rep.Speedup8 = r.Throughput / base.Throughput
		}
	}
	return rep, nil
}

// WriteConcurrencyJSON runs the experiment and records it at path
// (BENCH_concurrency.json at the repo root), so successive PRs can track
// the trajectory.
func WriteConcurrencyJSON(path string) (ConcurrencyReport, error) {
	rep, err := ConcurrencyReportRun()
	if err != nil {
		return rep, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Concurrency renders the experiment as a benchtab table.
func Concurrency() (Table, error) {
	rep, err := ConcurrencyReportRun()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Concurrency",
		Title:  "Split monitor + pipelined commit vs the paper's single monitor (mixed workload)",
		Header: []string{"System", "Workers", "Ops", "Disk (ms)", "CPU busy (ms)", "Elapsed (ms)", "Ops/s", "Speedup"},
	}
	row := func(r ConcurrencyResult) []string {
		return []string{
			r.Mode, fmt.Sprint(r.Workers), fmt.Sprint(r.Ops),
			fmt.Sprintf("%.0f", r.DiskTimeMS), fmt.Sprintf("%.0f", r.CPUBusyMS),
			fmt.Sprintf("%.0f", r.ElapsedMS), fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", r.Throughput/rep.Baseline.Throughput),
		}
	}
	t.Rows = append(t.Rows, row(rep.Baseline))
	for _, r := range rep.Runs {
		t.Rows = append(t.Rows, row(r))
	}
	t.Notes = append(t.Notes,
		"mix: 60% open, 20% list, 10% whole-file read, 10% small create (the paper's open-dominated traffic)",
		rep.Model,
	)
	return t, nil
}
