package bufcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func sector(b byte) []byte {
	buf := make([]byte, SectorSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func fill(c *Cache, addr int, sectors ...byte) {
	data := make([]byte, 0, len(sectors)*SectorSize)
	for _, b := range sectors {
		data = append(data, sector(b)...)
	}
	if !c.PutRange(addr, data, c.Gen()) {
		panic("fill aborted")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(64)
	fill(c, 100, 1, 2, 3)
	got, ok := c.GetRange(100, 3)
	if !ok {
		t.Fatal("expected full hit")
	}
	want := append(append(sector(1), sector(2)...), sector(3)...)
	if !bytes.Equal(got, want) {
		t.Fatal("cached data mismatch")
	}
	if _, ok := c.GetRange(99, 2); ok {
		t.Fatal("partial range must miss")
	}
	st := c.Stats()
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
	if st.Size != 3 {
		t.Fatalf("size = %d, want 3", st.Size)
	}
}

func TestUpdateWriteThrough(t *testing.T) {
	c := New(64)
	fill(c, 10, 1, 1)
	c.Update(10, append(sector(7), sector(7)...))
	got, ok := c.GetRange(10, 2)
	if !ok {
		t.Fatal("expected hit after update")
	}
	if got[0] != 7 || got[SectorSize] != 7 {
		t.Fatal("update did not reach resident frames")
	}
	// Update of an absent sector must not allocate a frame.
	c.Update(500, sector(9))
	if _, ok := c.GetRange(500, 1); ok {
		t.Fatal("update write-allocated an absent sector")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(64)
	fill(c, 20, 1, 2, 3, 4)
	c.Invalidate(21, 2)
	if _, ok := c.GetRange(21, 1); ok {
		t.Fatal("invalidated sector still resident")
	}
	if _, ok := c.GetRange(20, 1); !ok {
		t.Fatal("neighbouring sector dropped")
	}
	if st := c.Stats(); st.Invalidated != 2 {
		t.Fatalf("invalidated = %d, want 2", st.Invalidated)
	}
}

func TestStaleFillAborted(t *testing.T) {
	c := New(64)
	gen := c.Gen()
	// A mutation lands while the fill's disk read is in flight.
	c.Update(999, sector(0))
	if c.PutRange(30, sector(5), gen) {
		t.Fatal("fill with stale generation installed frames")
	}
	if _, ok := c.GetRange(30, 1); ok {
		t.Fatal("stale fill left a frame behind")
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity numShards means one frame per shard: a second fill of the
	// same shard must evict the older one.
	c := New(numShards)
	fill(c, 0, 1)         // shard 0
	fill(c, numShards, 2) // shard 0 again
	if _, ok := c.GetRange(0, 1); ok {
		t.Fatal("LRU frame survived eviction")
	}
	if _, ok := c.GetRange(numShards, 1); !ok {
		t.Fatal("newest frame evicted")
	}
	if st := c.Stats(); st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.Evicted)
	}
}

func TestSequentialDetection(t *testing.T) {
	c := New(256)
	if c.Sequential(40) {
		t.Fatal("cold table claims sequential")
	}
	c.NoteFill(40, 8)
	if !c.Sequential(48) {
		t.Fatal("miss at fill end not detected as sequential")
	}
	if c.Sequential(49) {
		t.Fatal("non-adjacent miss detected as sequential")
	}
	c.NoteFill(48, 8) // stream advances
	if !c.Sequential(56) {
		t.Fatal("advanced stream lost")
	}
}

func TestDropAll(t *testing.T) {
	c := New(64)
	fill(c, 0, 1, 2, 3)
	c.NoteFill(0, 3)
	c.DropAll()
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("size = %d after DropAll", st.Size)
	}
	if c.Sequential(3) {
		t.Fatal("stream table survived DropAll")
	}
}

// TestConcurrentFillUpdateInvalidate hammers the cache from readers,
// write-through updaters, and invalidators; run under -race. The invariant
// checked is that a reader never observes a torn sector: every sector is
// filled and updated with uniform bytes, so any mixed-byte read is a tear.
func TestConcurrentFillUpdateInvalidate(t *testing.T) {
	c := New(128)
	const addrs = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				addr := (w*13 + i*7) % addrs
				switch i % 4 {
				case 0:
					c.PutRange(addr, sector(byte(i)), c.Gen())
				case 1:
					c.Update(addr, sector(byte(i)))
				case 2:
					c.Invalidate(addr, 1)
				default:
					if buf, ok := c.GetRange(addr, 1); ok {
						for _, b := range buf {
							if b != buf[0] {
								panic(fmt.Sprintf("torn sector at %d", addr))
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
