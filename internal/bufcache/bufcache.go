// Package bufcache is the sector-addressed buffer cache for file data.
//
// The paper's FSD had no file-data cache: every ReadPages went to the
// platter, one request per allocation run, and the disk model (§6) shows
// short back-to-back requests losing most of their time to re-seeks and
// missed revolutions. This cache sits between core's file data path and the
// simulated disk and recovers that time three ways:
//
//   - caching: recently read (and written-through) sectors are served from
//     memory with no disk request at all;
//   - read-ahead: a miss that continues a detected sequential stream
//     fetches the rest of the physically contiguous stretch — up to the
//     controller's transfer cap — in one request;
//   - clustering: callers use the cache's presence as the signal to merge
//     physically adjacent allocation runs into single transfers (the
//     cross-run coalescing in core/file.go).
//
// Durability is untouched: the cache is strictly write-through. Every write
// reaches the disk before (and regardless of) any cache state, so the
// on-platter image — what the crash-state explorer's oracle inspects — is
// byte-identical with the cache on or off.
//
// Concurrency: lookups run under the volume's shared read monitor, so the
// hit path takes no cache-global mutex — only a shard read-lock for the map
// lookup and the frame's own lock for the copy. Mutations (write-through
// updates, invalidations) take the affected shard locks plus a global
// generation bump that aborts concurrent fills racing the mutation (a fill
// holds no locks across its disk read, so without the generation check a
// slow fill could install pre-write data over a newer write).
package bufcache

import (
	"sync"
	"sync/atomic"
)

// SectorSize is the cached unit; it mirrors disk.SectorSize without
// importing the package (the cache is address-space agnostic).
const SectorSize = 512

// numShards spreads the frame maps so concurrent readers rarely contend on
// a shard lock. Must be a power of two.
const numShards = 16

// numStreams is the size of the sequential-access detection table; one
// entry tracks one concurrent sequential reader.
const numStreams = 8

// Stats is a snapshot of the cache counters. Hits and Misses count sectors
// requested through GetRange (a partially cached range counts entirely as a
// miss: the whole range is refetched in one request). The coalesce counters
// are fed by the caller via NoteCoalescedRead/Write, since run merging
// happens in the file layer; they count disk requests that spanned at least
// one run boundary.
type Stats struct {
	Hits             int64 // sectors served from memory
	Misses           int64 // sectors that went to the disk
	ReadAheadSectors int64 // sectors fetched beyond the request by read-ahead
	CoalescedReads   int64 // read requests that merged adjacent runs
	CoalescedWrites  int64 // write requests that merged adjacent runs
	Invalidated      int64 // frames dropped by invalidation (frees, damage)
	Evicted          int64 // frames dropped by LRU replacement
	Size             int   // frames resident now
	Capacity         int   // frame capacity
}

// frame is one cached sector. Its lock guards only the payload bytes; the
// LRU tick is atomic so the hit path can touch it lock-free.
type frame struct {
	mu   sync.RWMutex
	data [SectorSize]byte
	tick atomic.Int64
}

// shard is one slice of the address space. The shard lock guards the map
// only, never the frame payloads.
type shard struct {
	mu     sync.RWMutex
	frames map[int]*frame
}

// stream is one entry of the sequential-access table: the address the next
// miss of this stream is expected at, if the accesses are sequential.
type stream struct {
	next int
	tick int64
}

// Cache is a sector-addressed write-through LRU cache. The zero value is
// not usable; call New.
type Cache struct {
	shards      [numShards]shard
	capacity    int
	perShardCap int

	// tick is the global LRU clock: every touch stamps the frame with a
	// unique, monotonically increasing value, so the per-shard LRU victim
	// (minimum tick) is deterministic regardless of map iteration order.
	tick atomic.Int64
	// gen is bumped by every mutation (write-through update, invalidation,
	// drop) before the mutation touches any shard. A fill captures gen
	// before its disk read and installs frames only while gen is unchanged,
	// so a fill racing a write can never install stale data.
	gen  atomic.Uint64
	size atomic.Int64

	smu     sync.Mutex
	streams [numStreams]stream

	hits        atomic.Int64
	misses      atomic.Int64
	readAhead   atomic.Int64
	coalescedR  atomic.Int64
	coalescedW  atomic.Int64
	invalidated atomic.Int64
	evicted     atomic.Int64
}

// New returns a cache holding up to capacity sectors. Capacity must be at
// least numShards; smaller values are rounded up so every shard can hold a
// frame.
func New(capacity int) *Cache {
	if capacity < numShards {
		capacity = numShards
	}
	c := &Cache{
		capacity:    capacity,
		perShardCap: (capacity + numShards - 1) / numShards,
	}
	for i := range c.shards {
		c.shards[i].frames = make(map[int]*frame)
	}
	for i := range c.streams {
		c.streams[i].next = -1
	}
	return c
}

// Capacity returns the frame capacity.
func (c *Cache) Capacity() int { return c.capacity }

// shardFor maps a sector address to its shard. Consecutive addresses land
// in different shards, so a contiguous fill spreads its lock traffic.
func (c *Cache) shardFor(addr int) *shard {
	return &c.shards[addr&(numShards-1)]
}

// GetRange returns the cached contents of [addr, addr+n) if every sector is
// resident, in one freshly allocated buffer. A partial hit returns false
// and counts as a full miss — the caller refetches the whole range in one
// disk request, which is cheaper than stitching a short cached prefix to a
// second short disk read.
func (c *Cache) GetRange(addr, n int) ([]byte, bool) {
	buf := make([]byte, n*SectorSize)
	for i := 0; i < n; i++ {
		s := c.shardFor(addr + i)
		s.mu.RLock()
		f := s.frames[addr+i]
		s.mu.RUnlock()
		if f == nil {
			c.misses.Add(int64(n))
			return nil, false
		}
		f.mu.RLock()
		copy(buf[i*SectorSize:], f.data[:])
		f.mu.RUnlock()
		f.tick.Store(c.tick.Add(1))
	}
	c.hits.Add(int64(n))
	return buf, true
}

// Gen returns the mutation generation. Capture it before the disk read of a
// fill and pass it to PutRange: the fill installs nothing if any mutation
// landed in between.
func (c *Cache) Gen() uint64 { return c.gen.Load() }

// PutRange installs len(data)/SectorSize sectors read from the disk at
// addr, evicting LRU frames as needed. The install is abandoned (returning
// false) as soon as the cache's generation differs from gen, so a fill
// whose disk read raced a write-through update or an invalidation cannot
// resurrect stale bytes.
func (c *Cache) PutRange(addr int, data []byte, gen uint64) bool {
	n := len(data) / SectorSize
	for i := 0; i < n; i++ {
		s := c.shardFor(addr + i)
		s.mu.Lock()
		if c.gen.Load() != gen {
			s.mu.Unlock()
			return false
		}
		f := s.frames[addr+i]
		if f == nil {
			f = &frame{}
			if len(s.frames) >= c.perShardCap {
				c.evictLocked(s)
			}
			s.frames[addr+i] = f
			c.size.Add(1)
		}
		f.mu.Lock()
		copy(f.data[:], data[i*SectorSize:(i+1)*SectorSize])
		f.mu.Unlock()
		f.tick.Store(c.tick.Add(1))
		s.mu.Unlock()
	}
	return true
}

// evictLocked removes the shard's least-recently-used frame. The caller
// holds the shard lock. Ticks are globally unique, so the minimum is a
// deterministic victim regardless of map iteration order.
func (c *Cache) evictLocked(s *shard) {
	victim := -1
	var oldest int64
	for a, f := range s.frames {
		if t := f.tick.Load(); victim < 0 || t < oldest {
			victim, oldest = a, t
		}
	}
	if victim >= 0 {
		delete(s.frames, victim)
		c.size.Add(-1)
		c.evicted.Add(1)
	}
}

// Update is the write-through hook: the caller has already written data to
// the disk at addr, and any resident frames must reflect it. Frames not
// resident are left absent (no write-allocate: a pure writer should not
// evict a reader's working set). The generation bump precedes the shard
// sweep, so a concurrent fill that read pre-write bytes aborts.
func (c *Cache) Update(addr int, data []byte) {
	c.gen.Add(1)
	n := len(data) / SectorSize
	for i := 0; i < n; i++ {
		s := c.shardFor(addr + i)
		s.mu.Lock()
		if f := s.frames[addr+i]; f != nil {
			f.mu.Lock()
			copy(f.data[:], data[i*SectorSize:(i+1)*SectorSize])
			f.mu.Unlock()
			f.tick.Store(c.tick.Add(1))
		}
		s.mu.Unlock()
	}
}

// Invalidate drops any frames covering [addr, addr+n): the sectors were
// freed, damaged, or rewritten outside the data path, and the next read
// must see the disk.
func (c *Cache) Invalidate(addr, n int) {
	c.gen.Add(1)
	for i := 0; i < n; i++ {
		s := c.shardFor(addr + i)
		s.mu.Lock()
		if _, ok := s.frames[addr+i]; ok {
			delete(s.frames, addr+i)
			c.size.Add(-1)
			c.invalidated.Add(1)
		}
		s.mu.Unlock()
	}
}

// DropAll empties the cache (DropCaches, measurement harnesses).
func (c *Cache) DropAll() {
	c.gen.Add(1)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := len(s.frames)
		s.frames = make(map[int]*frame)
		s.mu.Unlock()
		c.size.Add(int64(-n))
		c.invalidated.Add(int64(n))
	}
	c.smu.Lock()
	for i := range c.streams {
		c.streams[i].next = -1
	}
	c.smu.Unlock()
}

// Sequential reports whether a miss at addr continues a detected sequential
// stream — i.e. some earlier fill ended exactly where this one begins. It
// is consulted on the miss path only, so the small table mutex never sits
// on the hit path.
func (c *Cache) Sequential(addr int) bool {
	c.smu.Lock()
	defer c.smu.Unlock()
	for i := range c.streams {
		if c.streams[i].next == addr {
			return true
		}
	}
	return false
}

// NoteFill teaches the stream table that a fill covered [addr, addr+n): a
// follow-up miss at addr+n is sequential. An existing stream expecting addr
// advances; otherwise the least-recently-advanced entry is repurposed.
func (c *Cache) NoteFill(addr, n int) {
	tick := c.tick.Add(1)
	c.smu.Lock()
	defer c.smu.Unlock()
	victim := 0
	for i := range c.streams {
		if c.streams[i].next == addr {
			c.streams[i].next = addr + n
			c.streams[i].tick = tick
			return
		}
		if c.streams[i].tick < c.streams[victim].tick {
			victim = i
		}
	}
	c.streams[victim] = stream{next: addr + n, tick: tick}
}

// NoteReadAhead records n sectors fetched beyond the request.
func (c *Cache) NoteReadAhead(n int) { c.readAhead.Add(int64(n)) }

// NoteCoalescedRead records a read request that merged adjacent runs.
func (c *Cache) NoteCoalescedRead() { c.coalescedR.Add(1) }

// NoteCoalescedWrite records a write request that merged adjacent runs.
func (c *Cache) NoteCoalescedWrite() { c.coalescedW.Add(1) }

// Stats returns a snapshot of the counters. All sources are atomics, so it
// never blocks a reader or writer.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		ReadAheadSectors: c.readAhead.Load(),
		CoalescedReads:   c.coalescedR.Load(),
		CoalescedWrites:  c.coalescedW.Load(),
		Invalidated:      c.invalidated.Load(),
		Evicted:          c.evicted.Load(),
		Size:             int(c.size.Load()),
		Capacity:         c.capacity,
	}
}
