package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/disk"
)

// destroyNameTable damages every sector of both name-table home copies.
func destroyNameTable(_ *disk.Disk, v *Volume) {
	v.DestroyNameTable()
}

// findFreeRun locates n contiguous free data pages (outside metadata) on a
// volume that is about to shut down; tests use it to hand-plant leaders.
func findFreeRun(t *testing.T, v *Volume, n int) int {
	t.Helper()
	v.vmMu.Lock()
	defer v.vmMu.Unlock()
	run := 0
	for p := v.lay.dataLo; p < v.lay.total; p++ {
		if v.lay.metaRange(p) || !v.vm.IsFree(p) {
			run = 0
			continue
		}
		run++
		if run == n {
			return p - n + 1
		}
	}
	t.Fatalf("no free run of %d pages", n)
	return 0
}

// TestSalvageAfterDoubleNameTableLoss is the issue's acceptance scenario:
// with both name-table copies destroyed, Mount fails and Salvage rebuilds
// the volume with every leader-reachable committed file readable.
func TestSalvageAfterDoubleNameTableLoss(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	files := map[string][]byte{}
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("sv/f%03d", i)
		data := payload(100+i*211, byte(i)) // spans 1..13 data pages
		if i%9 == 8 {
			data = nil // empty file: leader only
		}
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}
	for i := 0; i < 30; i += 6 {
		name := fmt.Sprintf("sv/f%03d", i)
		if err := v.Delete(name, 0); err != nil {
			t.Fatal(err)
		}
		delete(files, name)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	destroyNameTable(d, v)
	if _, _, err := Mount(d, testConfig()); err == nil {
		t.Fatal("mount succeeded with both name-table copies destroyed")
	}

	v2, st, err := Salvage(d, testConfig())
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if st.FilesRecovered < len(files) {
		t.Fatalf("FilesRecovered = %d, want >= %d (stats %+v)", st.FilesRecovered, len(files), st)
	}
	if st.FilesPartial != 0 {
		t.Fatalf("unexpected partial recoveries: %+v", st)
	}
	for name, want := range files {
		f, err := v2.Open(name, 0)
		if err != nil {
			t.Fatalf("committed %s lost in salvage: %v", name, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s content wrong after salvage: %v", name, err)
		}
	}
	if vs, err := v2.Verify(); err != nil || len(vs.Problems) != 0 {
		t.Fatalf("Verify after salvage: %v %v", err, vs.Problems)
	}

	// The salvaged volume is a normal volume: it shuts down cleanly and
	// mounts again, files intact, and supports new work.
	if _, err := v2.Create("sv/after", payload(300, 99)); err != nil {
		t.Fatal(err)
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v3, ms, err := Mount(d, testConfig())
	if err != nil || !ms.CleanShutdown {
		t.Fatalf("remount after salvage: %v (clean=%v)", err, ms.CleanShutdown)
	}
	for name, want := range files {
		f, err := v3.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s lost across remount: %v", name, err)
		}
	}
	if _, err := v3.Open("sv/after", 0); err != nil {
		t.Fatalf("post-salvage create lost: %v", err)
	}
}

// TestSalvagePartialPreamble plants a file whose run table exceeds the
// leader preamble: salvage recovers the preamble runs, clamps the byte
// size, and rewrites the leader to describe the truncated file exactly.
func TestSalvagePartialPreamble(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	if _, err := v.Create("anchor", payload(600, 1)); err != nil {
		t.Fatal(err)
	}
	base := findFreeRun(t, v, 12)
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// 10 runs: {base,3} then nine singles — more than the 8-run preamble.
	runs := []alloc.Run{{Start: uint32(base), Len: 3}}
	for i := 0; i < 9; i++ {
		runs = append(runs, alloc.Run{Start: uint32(base + 3 + i), Len: 1})
	}
	e := &Entry{Name: "partial", Version: 1, UID: 5<<32 + 7, ByteSize: 11 * disk.SectorSize, Runs: runs}
	want := payload(11*disk.SectorSize, 42)
	for p := 0; p < 11; p++ {
		addr, err := e.DataAddr(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteSectors(addr, want[p*disk.SectorSize:(p+1)*disk.SectorSize]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WriteSectors(base, encodeLeader(e)); err != nil {
		t.Fatal(err)
	}
	destroyNameTable(d, v)

	v2, st, err := Salvage(d, testConfig())
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if st.FilesPartial != 1 {
		t.Fatalf("FilesPartial = %d, want 1 (stats %+v)", st.FilesPartial, st)
	}
	f, err := v2.Open("partial", 0)
	if err != nil {
		t.Fatalf("partial file not recovered: %v", err)
	}
	ent := f.Entry()
	if len(ent.Runs) != leaderPreamble {
		t.Fatalf("recovered %d runs, want the %d-run preamble", len(ent.Runs), leaderPreamble)
	}
	// Preamble: {base,3} + 7 singles = 10 pages, 9 of them data.
	if f.Size() != 9*disk.SectorSize {
		t.Fatalf("Size = %d, want %d (clamped)", f.Size(), 9*disk.SectorSize)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, want[:9*disk.SectorSize]) {
		t.Fatalf("partial content wrong: %v", err)
	}
	if vs, err := v2.Verify(); err != nil || len(vs.Problems) != 0 {
		t.Fatalf("Verify (leader must match the truncated table): %v %v", err, vs.Problems)
	}
}

// TestSalvageConflictNewerWins plants a stale leader — a deleted file's
// ghost with a lower UID — claiming pages a live file owns. The newest
// incarnation keeps the pages; the ghost is dropped.
func TestSalvageConflictNewerWins(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	want := payload(1024, 3)
	if _, err := v.Create("real", want); err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("real", 0)
	if err != nil {
		t.Fatal(err)
	}
	ent := f.Entry()
	base := findFreeRun(t, v, 1)
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	ghost := &Entry{Name: "ghost", Version: 1, UID: 7, ByteSize: 1024, Runs: []alloc.Run{
		{Start: uint32(base), Len: 1},
		{Start: ent.Runs[0].Start + 1, Len: 2}, // the live file's data pages
	}}
	if ghost.UID >= ent.UID {
		t.Fatalf("test setup: ghost uid %d not older than real uid %d", ghost.UID, ent.UID)
	}
	if err := d.WriteSectors(base, encodeLeader(ghost)); err != nil {
		t.Fatal(err)
	}
	destroyNameTable(d, v)

	v2, st, err := Salvage(d, testConfig())
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if st.ConflictsDropped < 1 {
		t.Fatalf("ConflictsDropped = %d, want >= 1 (stats %+v)", st.ConflictsDropped, st)
	}
	if _, err := v2.Open("ghost", 0); err == nil {
		t.Fatal("stale ghost leader resurrected over the live file")
	}
	rf, err := v2.Open("real", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rf.ReadAll(); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("live file damaged by conflict resolution: %v", err)
	}
	if vs, err := v2.Verify(); err != nil || len(vs.Problems) != 0 {
		t.Fatalf("Verify: %v %v", err, vs.Problems)
	}
}

// TestMountOrSalvage checks the combined entry point takes the normal path
// on a healthy volume and degrades to salvage on a destroyed name table.
func TestMountOrSalvage(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	files := populate(t, v, 10)
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v2, _, ss, err := MountOrSalvage(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ss != nil {
		t.Fatal("healthy volume took the salvage path")
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}

	destroyNameTable(d, v)
	v3, _, ss3, err := MountOrSalvage(d, testConfig())
	if err != nil {
		t.Fatalf("MountOrSalvage on destroyed name table: %v", err)
	}
	if ss3 == nil || ss3.FilesRecovered < len(files) {
		t.Fatalf("salvage stats %+v, want >= %d files", ss3, len(files))
	}
	for name, want := range files {
		f, err := v3.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s wrong after salvage: %v", name, err)
		}
	}
}
