package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// verifyAt runs Verify with the given pool width. The config knob is read
// at the top of each Verify call, so tests can sweep widths on one volume.
func verifyAt(t *testing.T, v *Volume, workers int) VerifyStats {
	t.Helper()
	v.cfg.CheckWorkers = workers
	st, err := v.Verify()
	if err != nil {
		t.Fatalf("Verify(workers=%d): %v", workers, err)
	}
	if st.Workers != workers && !(workers <= 1 && st.Workers == 1) {
		t.Fatalf("Verify reported Workers=%d, want %d", st.Workers, workers)
	}
	return st
}

// TestVerifyProblemsDeterministic is the golden test for the canonical
// problem order: several different problems planted on one volume must
// report grouped by entry in key order, with byte-identical output at
// every worker count.
func TestVerifyProblemsDeterministic(t *testing.T) {
	v, d, _ := newTestVolume(t)
	mk := func(name string) Entry {
		f, err := v.Create(name, payload(900, byte(len(name))))
		if err != nil {
			t.Fatal(err)
		}
		return f.Entry()
	}
	ea := mk("g/a") // VAM drift
	eb := mk("g/b") // smashed leader (silent corruption)
	ec := mk("g/c") // unreadable leader (damaged sector)
	mk("g/clean")   // no problem: must not appear

	v.VAM().MarkFree(int(ea.Runs[0].Start), 1)
	addrB, _ := eb.LeaderAddr()
	d.SmashSector(addrB, payload(512, 0x5A), nil)
	addrC, _ := ec.LeaderAddr()
	d.CorruptSectors(addrC, 1)

	// The canonical report: one problem per planted fault, grouped by
	// entry in key order (g/a, g/b, g/c).
	wantPrefix := []string{
		fmt.Sprintf("g/a!1: page %d owned but marked free", ea.Runs[0].Start),
		`core: "g/b"!1: leader page is not a leader`,
		"g/c!1: leader unreadable: ",
	}

	base := verifyAt(t, v, 1)
	if len(base.Problems) != len(wantPrefix) {
		t.Fatalf("problems = %v, want %d entries", base.Problems, len(wantPrefix))
	}
	for i, want := range wantPrefix {
		if !strings.HasPrefix(base.Problems[i], want) {
			t.Fatalf("problem[%d] = %q, want prefix %q", i, base.Problems[i], want)
		}
	}
	for _, workers := range []int{2, 8} {
		st := verifyAt(t, v, workers)
		if len(st.Problems) != len(base.Problems) {
			t.Fatalf("workers=%d: %d problems, want %d: %v", workers, len(st.Problems), len(base.Problems), st.Problems)
		}
		for i := range base.Problems {
			if st.Problems[i] != base.Problems[i] {
				t.Fatalf("workers=%d: problem[%d] = %q, sequential run said %q",
					workers, i, st.Problems[i], base.Problems[i])
			}
		}
		if st.Entries != base.Entries || st.Leaders != base.Leaders ||
			st.Symlinks != base.Symlinks || st.LeadersPending != base.LeadersPending {
			t.Fatalf("workers=%d: counts %+v != sequential %+v", workers, st, base)
		}
	}
}

// TestVerifyDuplicateOwnerDeterministic plants a page-ownership conflict
// (two entries claiming one page) and checks the same winner and the same
// report at every worker count: the owner table resolves ties by lowest
// entry index, which is key order, not scheduling order.
func TestVerifyDuplicateOwnerDeterministic(t *testing.T) {
	v, _, _ := newTestVolume(t)
	fa, err := v.Create("dup/a", payload(600, 1))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := v.Create("dup/b", payload(600, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite dup/b's entry so its first data page aliases dup/a's: the
	// direct name-table poke models a metadata bug, exactly what Verify
	// exists to catch.
	ea, eb := fa.Entry(), fb.Entry()
	eb.Runs[0].Start = ea.Runs[0].Start
	if err := v.nt.Put(entryKey(eb.Name, eb.Version), encodeEntry(&eb)); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}

	base := verifyAt(t, v, 1)
	found := false
	for _, p := range base.Problems {
		if strings.Contains(p, "also owned by dup/a!1") && strings.HasPrefix(p, "dup/b!1:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate ownership not pinned on the later entry: %v", base.Problems)
	}
	for _, workers := range []int{2, 8} {
		st := verifyAt(t, v, workers)
		if fmt.Sprint(st.Problems) != fmt.Sprint(base.Problems) {
			t.Fatalf("workers=%d: %v != sequential %v", workers, st.Problems, base.Problems)
		}
	}
}

// TestVerifyUnderDecay plants unreadable leaders and name-table decay and
// checks that a wide Verify reports the damage without panicking, and that
// the health budget is charged once per fault — not once per worker. The
// leader sweep is driven by a single reader in address order, so the
// charge is scheduling-independent by construction.
func TestVerifyUnderDecay(t *testing.T) {
	run := func(workers int) (VerifyStats, int) {
		v, d, _ := newTestVolume(t)
		var leaders []int
		for i := 0; i < 30; i++ {
			f, err := v.Create(fmt.Sprintf("dk/f%02d", i), payload(400+i*13, byte(i)))
			if err != nil {
				t.Fatal(err)
			}
			e := f.Entry()
			if addr, ok := e.LeaderAddr(); ok {
				leaders = append(leaders, addr)
			}
		}
		// Pre-planted damage only: live fault probabilities would consume
		// PRNG draws in scheduling order and break determinism.
		for i := 0; i < len(leaders); i += 5 {
			d.CorruptSectors(leaders[i], 1)
		}
		budget0 := v.Stats().Faults.ErrorBudget
		st := verifyAt(t, v, workers)
		return st, v.Stats().Faults.ErrorBudget - budget0
	}

	base, baseBudget := run(1)
	if len(base.Problems) != 6 {
		t.Fatalf("problems = %v, want one per corrupted leader", base.Problems)
	}
	for _, p := range base.Problems {
		if !strings.Contains(p, "leader unreadable") {
			t.Fatalf("unexpected problem %q", p)
		}
	}
	if baseBudget == 0 {
		t.Fatal("unreadable leaders charged nothing to the health budget")
	}
	for _, workers := range []int{2, 8} {
		st, budget := run(workers)
		if fmt.Sprint(st.Problems) != fmt.Sprint(base.Problems) {
			t.Fatalf("workers=%d: %v != sequential %v", workers, st.Problems, base.Problems)
		}
		if budget != baseBudget {
			t.Fatalf("workers=%d: health budget charged %d, sequential run charged %d", workers, budget, baseBudget)
		}
	}
}

// TestVerifyParallelWithReaders is the -race hammer: a wide Verify runs
// repeatedly while reader goroutines hammer the same files. Verify holds
// the monitor exclusively, so the interesting surface is its own worker
// pool racing over the owner table, the VAM lock, and the pending-leader
// map while readers pile onto the monitor boundary.
func TestVerifyParallelWithReaders(t *testing.T) {
	v, _, _ := newTestVolume(t)
	const files = 48
	for i := 0; i < files; i++ {
		if _, err := v.Create(fmt.Sprintf("rh/f%02d", i), payload(300+i*7, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Set the pool width before any reader starts: cfg is read-only once
	// the volume is live.
	v.cfg.CheckWorkers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f, err := v.Open(fmt.Sprintf("rh/f%02d", (g*13+i)%files), 0)
				if err != nil {
					continue
				}
				_, _ = f.ReadAll()
			}
		}(g)
	}
	for round := 0; round < 5; round++ {
		st, err := v.Verify()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(st.Problems) != 0 {
			t.Fatalf("round %d: problems on a healthy volume: %v", round, st.Problems)
		}
		if st.Entries != files {
			t.Fatalf("round %d: entries = %d, want %d", round, st.Entries, files)
		}
	}
	close(stop)
	wg.Wait()
}
