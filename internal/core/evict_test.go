package core

import (
	"errors"
	"fmt"
	"testing"
)

// TestWriteAfterEvictionKeepsHomeConsistent reproduces the 10k-client-soak
// name-table corruption at unit scale. With a tiny cache, a page can be
// evicted between the B-tree's read of it and the write of its new image.
// The cache's write path used to diff the new image against an all-zero
// base in that case, so a sector that became all-zero (entries deleted)
// but was nonzero at home was never staged — the home copies kept the
// stale sector under a CRC stamped for the new image, and the next cache
// miss found both copies "unreadable".
func TestWriteAfterEvictionKeepsHomeConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.CacheSize = 2 // evictions on nearly every B-tree navigation
	v, _, _ := newTestVolumeWith(t, cfg)

	// Phase 1: fill leaves in a narrow range and wrap the log so the full
	// page images reach their home copies (nonzero tail sectors at home).
	const n = 240
	for i := 0; i < n; i++ {
		if _, err := v.Create(fmt.Sprintf("ev/f%04d", i), payload(60, byte(i))); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if i%8 == 7 {
			if err := v.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 2: delete most of the range while inserting long-named files
	// into the same leaves. The inserts force page compaction, which
	// rewrites each page onto a zeroed buffer — so emptied regions become
	// all-zero sectors. Every rewrite navigates through the 2-page cache,
	// so read→evict→write happens constantly.
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			continue // survivors
		}
		if err := v.Delete(fmt.Sprintf("ev/f%04d", i), 0); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if i%4 == 1 {
			long := fmt.Sprintf("ev/f%04d-replacement-with-a-much-longer-name-%04d", i, i)
			if _, err := v.Create(long, payload(30, byte(i))); err != nil {
				t.Fatalf("refill %d: %v", i, err)
			}
			if err := v.Delete(long, 0); err != nil {
				t.Fatalf("refill delete %d: %v", i, err)
			}
		}
		if i%16 == 15 {
			if err := v.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 3: churn a distant range until the log wraps, pushing the
	// shrunken images home sector-by-sector at third crossings.
	for i := 0; i < 200; i++ {
		if _, err := v.Create(fmt.Sprintf("zz/hot%04d", i), payload(50, byte(i))); err != nil {
			t.Fatalf("hot create %d: %v", i, err)
		}
		if i%8 == 7 {
			if err := v.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	// Phase 4: cold reads. The tiny cache guarantees misses, so every
	// surviving entry's leaf is reloaded from the home copies.
	for i := 0; i < n; i += 8 {
		name := fmt.Sprintf("ev/f%04d", i)
		if _, err := v.Stat(name, 0); err != nil {
			t.Fatalf("cold stat %s: %v", name, err)
		}
	}
	if err := v.List("ev/", func(Entry) bool { return true }); err != nil {
		t.Fatalf("cold scan: %v", err)
	}
	// The home copies themselves must be self-consistent (modulo pages
	// with still-logged sectors, which scrub skips while pinned).
	if st, err := v.Scrub(); err != nil {
		t.Fatalf("scrub: %v", err)
	} else if st.NTLost > 0 {
		t.Fatalf("scrub found %d lost name-table pages: %+v", st.NTLost, st)
	}
	if err := v.Shutdown(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("shutdown: %v", err)
	}
}
