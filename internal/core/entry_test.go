package core

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/alloc"
	"repro/internal/disk"
)

func sampleEntry() *Entry {
	return &Entry{
		Name:       "subdir/compiler.bcd",
		Version:    7,
		Class:      Cached,
		Keep:       3,
		UID:        0x123456789A,
		ByteSize:   123456,
		CreateTime: 42 * time.Second,
		LastUsed:   43 * time.Second,
		Runs:       []alloc.Run{{Start: 1000, Len: 10}, {Start: 5000, Len: 233}},
		LinkTarget: "",
	}
}

func TestEntryEncodeDecodeRoundTrip(t *testing.T) {
	e := sampleEntry()
	got, err := decodeEntry(e.Name, e.Version, encodeEntry(e))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", e, got)
	}
}

func TestEntryDecodeRejectsTruncation(t *testing.T) {
	e := sampleEntry()
	buf := encodeEntry(e)
	for _, cut := range []int{0, 1, 10, 36, len(buf) - 1} {
		if _, err := decodeEntry(e.Name, e.Version, buf[:cut]); err == nil {
			t.Fatalf("truncated value of %d bytes accepted", cut)
		}
	}
}

func TestEntryKeyOrdering(t *testing.T) {
	// Versions of one name sort adjacently and ascending; different names
	// sort by name.
	k1 := entryKey("aaa", 2)
	k2 := entryKey("aaa", 10)
	k3 := entryKey("aab", 1)
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("key ordering broken")
	}
	// A name that is a prefix of another must not interleave versions.
	ka := entryKey("doc", 99999)
	kb := entryKey("doc2", 1)
	if bytes.Compare(ka, kb) >= 0 {
		t.Fatal("prefix name ordering broken")
	}
}

func TestSplitKeyInverse(t *testing.T) {
	f := func(nameBytes []byte, ver uint32) bool {
		name := ""
		for _, b := range nameBytes {
			if b == 0 {
				b = 1
			}
			name += string(rune(b%94 + 33))
		}
		if name == "" {
			name = "x"
		}
		if len(name) > 200 {
			name = name[:200]
		}
		n, v, ok := splitKey(entryKey(name, ver))
		return ok && n == name && v == ver
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDataAddrAndContiguity(t *testing.T) {
	e := &Entry{
		Name: "m", Version: 1,
		Runs: []alloc.Run{{Start: 100, Len: 4}, {Start: 500, Len: 3}},
	}
	// Leader at 100; data pages: 101,102,103 then 500,501,502.
	if e.Pages() != 6 {
		t.Fatalf("Pages = %d", e.Pages())
	}
	wantAddrs := []int{101, 102, 103, 500, 501, 502}
	for p, want := range wantAddrs {
		got, err := e.DataAddr(p)
		if err != nil || got != want {
			t.Fatalf("DataAddr(%d) = %d, %v; want %d", p, got, err, want)
		}
	}
	if _, err := e.DataAddr(6); err == nil {
		t.Fatal("DataAddr past end accepted")
	}
	addr, n, err := e.ContiguousFrom(1, 10)
	if err != nil || addr != 102 || n != 2 {
		t.Fatalf("ContiguousFrom(1,10) = %d,%d,%v", addr, n, err)
	}
	addr, n, err = e.ContiguousFrom(3, 2)
	if err != nil || addr != 500 || n != 2 {
		t.Fatalf("ContiguousFrom(3,2) = %d,%d,%v", addr, n, err)
	}
}

func TestPhysContiguousFrom(t *testing.T) {
	// Leader at 100; runs 1 and 2 are physically adjacent (103+5 = 108),
	// run 3 is not.
	e := &Entry{
		Name: "m", Version: 1,
		Runs: []alloc.Run{{Start: 100, Len: 3}, {Start: 103, Len: 5}, {Start: 108, Len: 2}, {Start: 500, Len: 4}},
	}
	check := func(page, want, wAddr, wN, wMerged int) {
		t.Helper()
		addr, n, merged, err := e.PhysContiguousFrom(page, want)
		if err != nil || addr != wAddr || n != wN || merged != wMerged {
			t.Fatalf("PhysContiguousFrom(%d,%d) = %d,%d,%d,%v; want %d,%d,%d",
				page, want, addr, n, merged, err, wAddr, wN, wMerged)
		}
	}
	// Page 0 is sector 101: the adjacent stretch 101..109 covers runs
	// 0-2 (9 sectors, 2 boundaries crossed).
	check(0, 64, 101, 9, 2)
	// Capped below the second boundary: only one boundary inside.
	check(0, 5, 101, 5, 1)
	// Capped within the first run: no boundary crossed.
	check(0, 2, 101, 2, 0)
	// Page 8 is sector 109, last of the adjacent stretch.
	check(8, 64, 109, 1, 0)
	// Page 9 starts the detached run.
	check(9, 64, 500, 4, 0)
	if _, _, _, err := e.PhysContiguousFrom(13, 1); err == nil {
		t.Fatal("PhysContiguousFrom past end accepted")
	}
	// Agreement with ContiguousFrom when nothing is adjacent.
	e2 := &Entry{Name: "x", Version: 1, Runs: []alloc.Run{{Start: 100, Len: 4}, {Start: 500, Len: 3}}}
	addr, n, merged, err := e2.PhysContiguousFrom(1, 10)
	if err != nil || addr != 102 || n != 2 || merged != 0 {
		t.Fatalf("PhysContiguousFrom(1,10) = %d,%d,%d,%v", addr, n, merged, err)
	}
}

// Property: encode/decode round-trips for arbitrary entries.
func TestQuickEntryRoundTrip(t *testing.T) {
	f := func(name string, ver uint32, class uint8, keep uint16, uid, size uint64, runs []struct{ S, L uint32 }, link string) bool {
		if name == "" || len(name) > 200 || bytes.ContainsRune([]byte(name), 0) {
			return true // skip invalid names
		}
		if len(link) > 255 || len(runs) > 16 {
			return true
		}
		e := &Entry{
			Name: name, Version: ver, Class: Class(class % 3), Keep: keep,
			UID: uid, ByteSize: size, CreateTime: time.Second, LastUsed: 2 * time.Second,
			LinkTarget: link,
		}
		for _, r := range runs {
			e.Runs = append(e.Runs, alloc.Run{Start: r.S, Len: r.L})
		}
		got, err := decodeEntry(e.Name, e.Version, encodeEntry(e))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderRoundTripAndVerify(t *testing.T) {
	e := sampleEntry()
	e.Runs = []alloc.Run{{Start: 777, Len: 20}}
	buf := encodeLeader(e)
	if len(buf) != disk.SectorSize {
		t.Fatalf("leader size %d", len(buf))
	}
	uid, ok := leaderUID(buf)
	if !ok || uid != e.UID {
		t.Fatalf("leaderUID = %d, %v", uid, ok)
	}
	if err := verifyLeader(buf, e); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong uid.
	other := *e
	other.UID++
	if err := verifyLeader(buf, &other); err == nil {
		t.Fatal("verify accepted wrong uid")
	}
	// Changed run table.
	other = *e
	other.Runs = []alloc.Run{{Start: 778, Len: 20}}
	if err := verifyLeader(buf, &other); err == nil {
		t.Fatal("verify accepted changed run table")
	}
	// Smashed page.
	buf[5] ^= 0xFF
	if _, ok := leaderUID(buf); ok {
		t.Fatal("leaderUID accepted smashed page")
	}
}

func TestLeaderManyRunsPreamble(t *testing.T) {
	// More runs than the preamble holds: the checksum still covers all.
	e := sampleEntry()
	e.Runs = nil
	for i := 0; i < leaderPreamble+5; i++ {
		e.Runs = append(e.Runs, alloc.Run{Start: uint32(1000 + 10*i), Len: 5})
	}
	buf := encodeLeader(e)
	if err := verifyLeader(buf, e); err != nil {
		t.Fatalf("verify with long run table: %v", err)
	}
	e.Runs[leaderPreamble+2].Len++ // change a run beyond the preamble
	if err := verifyLeader(buf, e); err == nil {
		t.Fatal("run-table checksum missed a change beyond the preamble")
	}
}

func TestValidateName(t *testing.T) {
	for _, bad := range []string{"", "a\x00b", string(make([]byte, 300))} {
		if err := ValidateName(bad); err == nil {
			t.Fatalf("ValidateName(%q) accepted", bad)
		}
	}
	for _, good := range []string{"a", "dir/sub/file.ext!weird", "ALLCAPS"} {
		if err := ValidateName(good); err != nil {
			t.Fatalf("ValidateName(%q) rejected: %v", good, err)
		}
	}
}
