package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestStatsRaceDuringLoad hammers Stats() and TraceEvents() from reader
// goroutines while 8 workers create and delete files. The snapshot path is
// atomics-only (plus the WAL stat lock, which is never held across I/O), so
// it must neither race with nor block behind the mutating workers. Tracing
// is flipped on mid-run to cover the enabled emit path. Run under -race for
// full value.
func TestStatsRaceDuringLoad(t *testing.T) {
	v, _, _ := newTestVolume(t)
	const workers = 8
	const perWorker = 30

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := v.Stats()
				if st.Ops.Creates < 0 || st.Commit.ImagesStaged < st.Commit.ImagesLogged {
					panic("inconsistent snapshot")
				}
				_ = v.TraceEvents()
			}
		}()
	}
	v.EnableTrace()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("race/w%d-f%03d", w, i)
				if _, err := v.Create(name, payload(150+i, byte(w))); err != nil {
					errs <- fmt.Errorf("w%d create: %w", w, err)
					return
				}
				if i%3 == 2 {
					if err := v.Delete(name, 0); err != nil {
						errs <- fmt.Errorf("w%d delete: %w", w, err)
						return
					}
				}
				if i%9 == 8 {
					if err := v.Force(); err != nil {
						errs <- fmt.Errorf("w%d force: %w", w, err)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := v.Stats()
	if got := st.Ops.Creates; got != workers*perWorker {
		t.Fatalf("Ops.Creates = %d, want %d", got, workers*perWorker)
	}
	sp := st.Spans["create"]
	if sp.Count != workers*perWorker {
		t.Fatalf("create span count = %d, want %d", sp.Count, workers*perWorker)
	}
	if sp.Errors != 0 {
		t.Fatalf("create span errors = %d", sp.Errors)
	}
	if sp.Latency.Count != sp.Count || sp.Latency.Sum <= 0 {
		t.Fatalf("create latency histogram inconsistent: %+v", sp.Latency)
	}
	if st.Spans["delete"].Count == 0 || st.Spans["force"].Count == 0 {
		t.Fatalf("delete/force spans missing: %v", st.Spans)
	}
	if len(v.TraceEvents()) == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
