package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// salvageImage builds a volume with known files plus pre-planted data-region
// damage, destroys both name-table copies, and returns the crashable image
// and the expected surviving file contents. Damage is pre-planted — never a
// live fault probability — so every salvage of a clone sees the identical
// disk regardless of how its workers are scheduled.
func salvageImage(t *testing.T) (*disk.Disk, map[string][]byte) {
	t.Helper()
	v, d, _ := newTestVolumeWith(t, testConfig())
	files := map[string][]byte{}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("ps/f%03d", i)
		data := payload(150+i*271, byte(i))
		if i%9 == 8 {
			data = nil
		}
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// A few unreadable data sectors away from any leader: the sweep's
	// fallback path must classify them identically at every width.
	lay := v.lay
	for off := 200; off < 260; off += 17 {
		addr := lay.dataLo + off
		if !isLeaderOf(d, addr, files) {
			d.CorruptSectors(addr, 1)
		}
	}
	destroyNameTable(d, v)
	return d, files
}

// isLeaderOf reports whether addr currently decodes as a candidate leader —
// the image builder avoids corrupting real leaders so the expected file set
// stays exact.
func isLeaderOf(d *disk.Disk, addr int, files map[string][]byte) bool {
	buf, _, err := disk.ReadSectorsRetry(d, addr, 1, 0)
	if err != nil {
		return false
	}
	e, _, ok := decodeLeaderEntry(buf)
	if !ok || len(e.Runs) == 0 || int(e.Runs[0].Start) != addr {
		return false
	}
	_, known := files[e.Name]
	return known
}

// volumeListing reads back every entry (name, version, content) for the
// determinism oracle: two salvages rebuilt the same volume iff their
// listings are identical.
func volumeListing(t *testing.T, v *Volume) []string {
	t.Helper()
	var keys []string
	err := v.nt.Scan(nil, func(k, _ []byte) bool {
		name, ver, ok := splitKey(k)
		if ok {
			keys = append(keys, fmt.Sprintf("%s!%d", name, ver))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	return keys
}

// normalizeSalvageStats zeroes the fields legitimately dependent on
// scheduling or timing — elapsed times, CPU, steal counts — leaving
// everything the determinism contract covers: counts, checkpoints,
// problems, recovery results.
func normalizeSalvageStats(st SalvageStats) SalvageStats {
	st.Elapsed = 0
	st.SweepElapsed = 0
	st.SweepCPU = 0
	st.RebuildElapsed = 0
	st.FinalizeElapsed = 0
	st.Steals = 0
	st.Workers = 0
	return st
}

// TestParallelSalvageMatchesSequential is the direct determinism oracle:
// the same damaged image salvaged at widths 1, 2, and 8 must produce
// byte-identical SalvageStats (normalized) and an identical rebuilt
// volume.
func TestParallelSalvageMatchesSequential(t *testing.T) {
	d, files := salvageImage(t)

	type outcome struct {
		st      SalvageStats
		listing []string
	}
	run := func(workers int) outcome {
		cfg := testConfig()
		cfg.CheckWorkers = workers
		dc := d.Clone(sim.NewVirtualClock())
		v, st, err := Salvage(dc, cfg)
		if err != nil {
			t.Fatalf("Salvage(workers=%d): %v", workers, err)
		}
		for name, want := range files {
			f, err := v.Open(name, 0)
			if err != nil {
				t.Fatalf("workers=%d: %s lost: %v", workers, name, err)
			}
			if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
				t.Fatalf("workers=%d: %s content wrong: %v", workers, name, err)
			}
		}
		listing := volumeListing(t, v)
		v.Crash()
		return outcome{normalizeSalvageStats(st), listing}
	}

	base := run(1)
	if base.st.SectorsScanned == 0 || base.st.CandidateLeaders < len(files) {
		t.Fatalf("sequential salvage implausible: %+v", base.st)
	}
	if base.st.DamagedSectors == 0 {
		t.Fatal("pre-planted damage not seen by the sweep")
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if fmt.Sprintf("%+v", got.st) != fmt.Sprintf("%+v", base.st) {
			t.Fatalf("workers=%d: stats diverge\n got: %+v\nwant: %+v", workers, got.st, base.st)
		}
		if fmt.Sprint(got.listing) != fmt.Sprint(base.listing) {
			t.Fatalf("workers=%d: rebuilt listing diverges\n got: %v\nwant: %v", workers, got.listing, base.listing)
		}
	}
}

// TestParallelSalvageCrashResumeDeterminism composes the crashtest
// machinery with the parallel sweep: a wide salvage is crashed at sampled
// barrier epochs, resumed with a *different* worker count, and the rebuilt
// volume must match the no-crash reference exactly. This is the checkpoint
// prefix rule under fire: whatever chunks in-flight workers had finished
// beyond the cursor at the crash, the resumed sweep re-derives them.
func TestParallelSalvageCrashResumeDeterminism(t *testing.T) {
	d, files := salvageImage(t)

	// Reference: no-crash sequential salvage of a clone.
	refCfg := testConfig()
	refCfg.CheckWorkers = 1
	refDisk := d.Clone(sim.NewVirtualClock())
	refVol, refSt, err := Salvage(refDisk, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refListing := volumeListing(t, refVol)
	refVol.Crash()

	// Crash run: wide sweep under a write-back window.
	wideCfg := testConfig()
	wideCfg.CheckWorkers = 4
	wideDisk := d.Clone(sim.NewVirtualClock())
	wideDisk.EnableWriteBack()
	wideVol, wideSt, err := Salvage(wideDisk, wideCfg)
	if err != nil {
		t.Fatalf("Salvage under write-back: %v", err)
	}
	if got, want := fmt.Sprintf("%+v", normalizeSalvageStats(wideSt)), fmt.Sprintf("%+v", normalizeSalvageStats(refSt)); got != want {
		t.Fatalf("wide no-crash stats diverge from reference\n got: %s\nwant: %s", got, want)
	}
	trace := wideDisk.Trace()
	wideVol.Crash()
	maxEpoch := 0
	for _, w := range trace {
		if w.Epoch > maxEpoch {
			maxEpoch = w.Epoch
		}
	}
	if maxEpoch < 8 {
		t.Fatalf("wide salvage produced only %d barrier epochs", maxEpoch)
	}

	resumed, violations := 0, 0
	for e := 1; e <= maxEpoch+1; e += 2 { // sampled epochs
		dc := wideDisk.Clone(sim.NewVirtualClock())
		for _, w := range trace {
			if w.Epoch < e {
				dc.ApplyJournaled(w)
			}
		}
		// Resume with a different width than the run that crashed.
		resCfg := testConfig()
		resCfg.CheckWorkers = 1 + (e % 8)
		v, st, err := Salvage(dc, resCfg)
		if err != nil {
			t.Fatalf("epoch %d: resume salvage (workers=%d): %v", e, resCfg.CheckWorkers, err)
		}
		if st.Resumed {
			resumed++
		}
		for name, want := range files {
			f, err := v.Open(name, 0)
			if err != nil {
				violations++
				t.Errorf("epoch %d: %s lost across crash (resumed=%v, workers=%d): %v",
					e, name, st.Resumed, resCfg.CheckWorkers, err)
				continue
			}
			if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
				violations++
				t.Errorf("epoch %d: %s content wrong after resume: %v", e, name, err)
			}
		}
		if listing := volumeListing(t, v); fmt.Sprint(listing) != fmt.Sprint(refListing) {
			violations++
			t.Errorf("epoch %d: rebuilt listing diverges from reference\n got: %v\nwant: %v", e, listing, refListing)
		}
		if vrep, err := v.Verify(); err != nil || len(vrep.Problems) != 0 {
			violations++
			t.Errorf("epoch %d: Verify after resumed salvage: %v %v", e, err, vrep.Problems)
		}
		v.Crash()
	}
	t.Logf("epochs=%d (sampled every 2) resumed=%d violations=%d", maxEpoch, resumed, violations)
	if resumed == 0 {
		t.Error("no sampled crash image resumed from a checkpoint")
	}
	if violations != 0 {
		t.Fatalf("%d durability/determinism violations", violations)
	}
}
