package core

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestRealClockTickerCommits exercises the goroutine-based group-commit
// daemon: on a RealClock the volume starts a background ticker that forces
// the log every (scaled) half second, with no help from the caller.
func TestRealClockTickerCommits(t *testing.T) {
	clk := sim.NewRealClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("ticker/file", payload(200, 1)); err != nil {
		t.Fatal(err)
	}
	// The simulated 500 ms window is 0.5 ms of wall time under
	// RealTimeScale; wait for the ticker goroutine to fire.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v.Log().Stats().Forces > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if v.Log().Stats().Forces == 0 {
		t.Fatal("background ticker never forced the log")
	}
	// A crash now must preserve the create, committed by the daemon.
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Open("ticker/file", 0); err != nil {
		t.Fatalf("file committed by the daemon lost: %v", err)
	}
}

// TestRealClockShutdownStopsTicker verifies the daemon goroutine exits on
// shutdown (no force on a closed volume).
func TestRealClockShutdownStopsTicker(t *testing.T) {
	clk := sim.NewRealClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Give a straggling ticker a chance to misbehave; a panic or a write
	// to the halted state would fail the test run.
	time.Sleep(10 * time.Millisecond)
}
