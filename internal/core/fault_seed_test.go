package core

import (
	"flag"
	"math/rand"
	"testing"
	"time"
)

// seedFlag pins the fault-injection seed so any failure is replayable:
//
//	go test ./internal/core -run TestName -seed N
var seedFlag = flag.Int64("seed", 0, "fault-injection seed (0 = derive from time)")

// faultSeed returns the seed for this test's fault injection, deriving a
// fresh one per run unless -seed pins it, and prints it on failure.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	seed := *seedFlag
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with: go test ./internal/core -run '%s' -seed %d", t.Name(), seed)
		}
	})
	return seed
}

// faultRNG is a convenience wrapper when the test itself needs randomness
// tied to the same reproducible seed.
func faultRNG(t *testing.T) *rand.Rand {
	return rand.New(rand.NewSource(faultSeed(t)))
}
