package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
)

// waitHealth polls (real time; the transitions happen on other goroutines)
// until the volume reaches at least h.
func waitHealth(t *testing.T, v *Volume, h Health) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for v.Health() < h {
		if time.Now().After(deadline) {
			t.Fatalf("health stuck at %v, want >= %v (reason %q)",
				v.Health(), h, v.HealthReason())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWriteFaultsGracefulDegradation runs a mutation workload under seeded
// transient and bad-on-write faults: every operation either succeeds (the
// retry/remap policy absorbed the faults) or the volume has transitioned to
// read-only — no op may fail while the volume still claims to be writable,
// and reads must keep serving afterwards.
func TestWriteFaultsGracefulDegradation(t *testing.T) {
	seed := faultSeed(t)
	v, d, _ := newTestVolume(t)
	d.InjectFaults(disk.FaultConfig{Seed: seed, TransientWrite: 0.02, BadOnWrite: 0.005})

	var created []string
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("f%03d", i)
		_, err := v.Create(name, payload(900, byte(i)))
		if err != nil {
			if v.Health() < HealthReadOnly {
				t.Fatalf("create %d failed (%v) while health is %v", i, err, v.Health())
			}
			break
		}
		created = append(created, name)
	}
	st := v.Stats()
	if st.Faults.WriteRetries == 0 && st.Faults.WriteRemaps == 0 {
		t.Fatalf("fault path never exercised: %+v", st.Faults)
	}
	if st.Health >= HealthReadOnly {
		if _, err := v.Create("after", nil); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("mutation on read-only volume = %v, want ErrReadOnly", err)
		}
	}
	// Reads keep serving regardless of the health state (the created
	// files' data writes all succeeded before their create returned).
	d.ClearFaults()
	for _, name := range created {
		f, err := v.Open(name, 0)
		if err != nil {
			t.Fatalf("open %q after fault workload: %v", name, err)
		}
		if _, err := f.ReadAll(); err != nil {
			t.Fatalf("read %q after fault workload: %v", name, err)
		}
	}
}

// TestSpareExhaustionTransitionsReadOnly: when the spare pool runs dry the
// write path cannot retire bad sectors any more, so the volume must stop
// promising durability — mutations refused, reads still served.
func TestSpareExhaustionTransitionsReadOnly(t *testing.T) {
	v, d, _ := newTestVolume(t)
	data := payload(700, 3)
	if _, err := v.Create("keep", data); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	d.SetSpares(2)
	d.InjectFaults(disk.FaultConfig{Seed: faultSeed(t), BadOnWrite: 1})
	if _, err := v.Create("doomed", payload(700, 4)); err == nil {
		t.Fatal("create succeeded with every written sector going bad")
	}
	if got := v.Health(); got != HealthReadOnly {
		t.Fatalf("health = %v after spare exhaustion, want read-only (reason %q)",
			got, v.HealthReason())
	}
	d.ClearFaults()
	if _, err := v.Create("late", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Create = %v on read-only volume, want ErrReadOnly", err)
	}
	if err := v.Touch("keep", 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Touch = %v on read-only volume, want ErrReadOnly", err)
	}
	if err := v.Force(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Force = %v on read-only volume, want ErrReadOnly", err)
	}
	f, err := v.Open("keep", 0)
	if err != nil {
		t.Fatalf("read-only volume refused a read: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil || len(got) != len(data) {
		t.Fatalf("read on read-only volume: %v (%d bytes)", err, len(got))
	}
	// Shutdown must leave the volume stamped unclean: durability of the
	// recent history is exactly what is in doubt.
	if err := v.Shutdown(); err != nil {
		t.Fatalf("Shutdown of read-only volume: %v", err)
	}
	root, err := readRoot(d)
	if err != nil {
		t.Fatal(err)
	}
	if root.clean {
		t.Fatal("read-only health shutdown stamped the volume clean")
	}
}

// TestScrubSpareExhaustionFlagged: a scrub pass that cannot retire a stuck
// sector because the spare pool is dry must say so in its stats (fsdctl maps
// the flag to its own exit code) and demote the volume to read-only.
func TestScrubSpareExhaustionFlagged(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("a", payload(500, 5)); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	d.SetSpares(0)
	d.MarkStuck(v.lay.ntA, 1) // unrepairable in place, unretirable
	st, err := v.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !st.SpareExhausted {
		t.Fatalf("scrub did not flag spare exhaustion: %+v", st)
	}
	if got := v.Health(); got != HealthReadOnly {
		t.Fatalf("health = %v after spare exhaustion during scrub, want read-only", got)
	}
}

// TestHungIOClassifiedAgainstDeadline: operations stalled past
// Config.OpTimeout count as faults and burn the error budget; the volume
// degrades instead of silently absorbing multi-second commits. Reads are
// never stalled by the injector, so they keep serving.
func TestHungIOClassifiedAgainstDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.ErrorBudget = 8 // one hung op reaches Degraded, four reach ReadOnly
	v, d, _ := newTestVolumeWith(t, cfg)
	if _, err := v.Create("pre", payload(500, 9)); err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(disk.FaultConfig{Seed: faultSeed(t), HungIO: 1})
	// Every write op now stalls 2 s against the default 1 s deadline.
	// A create issues several write ops, so the budget (8 per hung op)
	// blows through 4x8=32 and the volume lands in ReadOnly.
	for i := 0; i < 8 && v.Health() < HealthReadOnly; i++ {
		_, _ = v.Create(fmt.Sprintf("h%d", i), payload(500, byte(i)))
	}
	st := v.Stats()
	if st.Faults.HungOps == 0 {
		t.Fatal("no hung ops classified under 100% hung-I/O injection")
	}
	if st.Health < HealthDegraded {
		t.Fatalf("health = %v after %d hung ops (budget %d), want >= degraded",
			st.Health, st.Faults.HungOps, st.Faults.ErrorBudget)
	}
	// Reads are not stalled and not refused below Offline.
	f, err := v.Open("pre", 0)
	if err != nil {
		t.Fatalf("read under hung-I/O injection: %v", err)
	}
	if _, err := f.ReadAll(); err != nil {
		t.Fatalf("ReadAll under hung-I/O injection: %v", err)
	}
}

// TestDegradedSchedulesScrub: crossing the error budget must kick off an
// immediate scrub pass (the background cadence is too slow for a decaying
// device), while the volume keeps serving.
func TestDegradedSchedulesScrub(t *testing.T) {
	cfg := testConfig()
	cfg.ErrorBudget = 8
	cfg.WriteRetries = 8
	v, d, _ := newTestVolumeWith(t, cfg)
	d.InjectFaults(disk.FaultConfig{Seed: faultSeed(t), TransientWrite: 0.3})
	for i := 0; i < 40 && v.Health() < HealthDegraded; i++ {
		if _, err := v.Create(fmt.Sprintf("d%d", i), payload(600, byte(i))); err != nil {
			t.Fatalf("create %d failed under absorbable faults: %v", i, err)
		}
	}
	waitHealth(t, v, HealthDegraded)
	d.ClearFaults() // let the scheduled scrub run clean
	deadline := time.Now().Add(5 * time.Second)
	for v.Stats().Faults.Scrubs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no scrub pass ran after the Degraded transition")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHaltedDeviceGoesOffline: ErrHalted is not a media fault — the whole
// device is gone, and even reads must be refused with ErrOffline.
func TestHaltedDeviceGoesOffline(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("a", payload(300, 1)); err != nil {
		t.Fatal(err)
	}
	d.Halt()
	if _, err := v.Create("b", payload(300, 2)); err == nil {
		t.Fatal("create succeeded on a halted device")
	}
	if got := v.Health(); got != HealthOffline {
		t.Fatalf("health = %v after device halt, want offline", got)
	}
	if _, err := v.Open("a", 0); !errors.Is(err, ErrOffline) {
		t.Fatalf("Open on offline volume = %v, want ErrOffline", err)
	}
	if _, err := v.Create("c", nil); !errors.Is(err, ErrOffline) {
		t.Fatalf("Create on offline volume = %v, want ErrOffline", err)
	}
}

// TestIntentFatalFailsOverReadOnly: a fatal error on the async applier must
// drain the queue, release the waiters with the error, and flip the volume
// to read-only — instead of poisoning every future wait.
func TestIntentFatalFailsOverReadOnly(t *testing.T) {
	cfg := testConfig()
	cfg.AsyncApply = true
	v, d, _ := newTestVolumeWith(t, cfg)
	if _, err := v.Create("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := v.DrainIntents(); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	// Park the applier, enqueue a touch (validation succeeds from the warm
	// cache), then yank the name table out from under the applier: empty
	// cache plus both home copies stuck means its page fill cannot succeed.
	v.q.Suspend()
	if err := v.Touch("a", 0); err != nil {
		t.Fatalf("touch enqueue: %v", err)
	}
	if err := v.log.Force(); err != nil { // cached pages now clean to drop
		t.Fatal(err)
	}
	v.cache.mu.Lock()
	v.cache.pages = make(map[uint32]*ntPage)
	v.cache.mu.Unlock()
	ntSectors := v.lay.ntPages * NTPageSectors
	d.MarkStuck(v.lay.ntA, ntSectors)
	d.MarkStuck(v.lay.ntB, ntSectors)
	v.q.Resume()

	if err := v.DrainIntents(); err == nil {
		t.Fatal("Drain succeeded with the name table unreadable")
	}
	waitHealth(t, v, HealthReadOnly)
	if err := v.Touch("a", 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Touch after applier failure = %v, want ErrReadOnly", err)
	}
	if seq := v.q.FailedFrom(); seq == 0 {
		t.Fatal("queue reports no failed range after a fatal apply error")
	}
}

// TestHealthTransitionHammer runs concurrent mutators, readers, stats
// snapshots, and scrubs under a hostile fault mix. Run with -race: the
// assertions are secondary to the absence of data races, deadlocks, and
// panics; the one hard invariant is that health only moves forward.
func TestHealthTransitionHammer(t *testing.T) {
	seed := faultSeed(t)
	v, d, _ := newTestVolume(t)
	d.SetSpares(16)
	d.InjectFaults(disk.FaultConfig{
		Seed:           seed,
		TransientWrite: 0.05,
		BadOnWrite:     0.01,
		HungIO:         0.02,
		HungIODelay:    1500 * time.Millisecond,
	})
	var wg sync.WaitGroup
	var healthWentBack atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := HealthHealthy
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				switch i % 5 {
				case 0, 1:
					_, _ = v.Create(name, payload(400, byte(i)))
				case 2:
					if f, err := v.Open(fmt.Sprintf("w%d-%d", w, i-2), 0); err == nil {
						_, _ = f.ReadAll()
					}
				case 3:
					_ = v.Force()
				case 4:
					_ = v.Stats()
				}
				if h := v.Health(); h < last {
					healthWentBack.Add(1)
				} else {
					last = h
				}
			}
		}(w)
	}
	wg.Wait()
	if healthWentBack.Load() != 0 {
		t.Fatal("health state moved backwards under concurrency")
	}
	st := v.Stats()
	if st.Health >= HealthReadOnly {
		if _, err := v.Create("post", nil); !errors.Is(err, ErrReadOnly) && !errors.Is(err, ErrOffline) {
			t.Fatalf("mutation on %v volume = %v, want refusal", st.Health, err)
		}
	}
}
