package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/parscan"
	"repro/internal/sim"
	"repro/internal/vam"
	"repro/internal/wal"
)

// Salvage mount: the last-ditch recovery path. Normal FSD recovery never
// needs it — the log plus the doubly-stored name table survive any crash and
// any single media fault. Salvage exists for the double fault the paper's
// design accepts as "very unlikely": both copies of a name-table page decay
// (or the log is damaged beyond the anchors' reach) and Mount fails. Because
// FSD leaders carry the file's name, version, size, and a run-table preamble
// (leader.go), the volume can still be rebuilt by scanning the data region
// for leader pages — the moral equivalent of the CFS scavenger, but driven
// by one sequential sweep instead of a label pass plus per-file header reads.
//
// Salvage is itself re-entrant. It runs in three checkpointed phases —
// sweep, rebuild, finalize — and records its progress (phase plus sweep
// cursor) in a self-identifying checkpoint pair on the two reserved sectors
// inside the log's anchor block (logBase+1 and logBase+3; the anchors own
// +0 and +2, and wal.Format never touches the odd pair). While a checkpoint
// is present, plain mounts refuse the volume with ErrSalvageInProgress and
// a new Salvage call resumes from the recorded phase instead of restarting
// the full leader sweep. Sweep state (the candidate-leader and damaged
// sector addresses) is persisted as a manifest in the name-table copy-B
// region, which salvage is about to overwrite anyway; the checkpoint
// carries a CRC over the manifest so a torn manifest degrades to a full
// re-sweep, never to a wrong rebuild.

// ErrSalvageInProgress reports a volume carrying a salvage progress
// checkpoint: a previous salvage crashed partway. Plain mounts (writable and
// read-only) refuse such a volume — its name table may be half-destroyed —
// and Salvage (or Mount with AllowSalvage) resumes from the checkpoint.
var ErrSalvageInProgress = errors.New("salvage in progress")

// SalvageStats reports what a salvage mount scanned and saved.
type SalvageStats struct {
	SectorsScanned   int
	DamagedSectors   int    // unreadable sectors (retired from allocation)
	CandidateLeaders int    // structurally valid leader pages found
	FilesRecovered   int    // entries rebuilt into the fresh name table
	FilesPartial     int    // recovered with a truncated run table (tail lost)
	ConflictsDropped int    // stale leaders losing a page-ownership conflict
	Resumed          bool   // a progress checkpoint from a crashed salvage was found
	ResumedPhase     string // phase recorded in that checkpoint
	Checkpoints      int    // progress checkpoints written during this run
	Problems         []string
	Elapsed          time.Duration

	// Parallel-sweep accounting (ISSUE 10). Workers is the pool width of
	// the sweep; Steals counts work-stealing migrations (load-balance
	// diagnostics — nondeterministic, excluded from output equality). The
	// phase splits let fsdctl and the pfsck bench separate the sweep from
	// the single-applier rebuild.
	Workers         int
	Steals          int
	SweepElapsed    time.Duration
	SweepCPU        time.Duration // total worker CPU spent decoding the sweep
	RebuildElapsed  time.Duration // resolve + rebuild (single applier)
	FinalizeElapsed time.Duration
}

func (st *SalvageStats) addProblem(format string, args ...interface{}) {
	st.Problems = append(st.Problems, fmt.Sprintf(format, args...))
}

// The salvage checkpoint pair lives on the reserved odd sectors of the log
// anchor block: the anchor and its copy occupy logBase+0 and logBase+2, and
// every log path (Format included) leaves +1 and +3 alone.
const (
	salvageMagic = 0x5A17C4E0
	salvageCkA   = 1 // sectors past logBase
	salvageCkB   = 3
)

// salvagePhase orders the three checkpointed phases of a salvage run.
type salvagePhase uint32

const (
	// salvageSweep: the sequential leader scan of the data region. Only the
	// manifest (name-table copy B) and clamped leaders are written; the data
	// region itself is never destroyed, so a lost manifest just restarts
	// the sweep.
	salvageSweep salvagePhase = iota + 1
	// salvageRebuild: the destructive phase — fresh log, zeroed name-table
	// copy A, new B-tree of the recovered entries. Resume replays the phase
	// from the manifest.
	salvageRebuild
	// salvageFinalize: the rebuilt tree is complete and home in copy A;
	// what remains (root page, VAM save, mirroring A over B, clearing the
	// checkpoint) is re-derivable from the tree alone.
	salvageFinalize
)

func (p salvagePhase) String() string {
	switch p {
	case salvageSweep:
		return "sweep"
	case salvageRebuild:
		return "rebuild"
	case salvageFinalize:
		return "finalize"
	default:
		return fmt.Sprintf("phase(%d)", uint32(p))
	}
}

// salvageCheckpoint is the persistent progress record.
type salvageCheckpoint struct {
	phase       salvagePhase
	cursor      int // next unswept data-region sector (sweep phase)
	cands       int // candidate-leader entries in the manifest
	damaged     int // damaged-sector entries in the manifest
	manifestCRC uint32
}

const salvageCkCRCOff = 24

func encodeSalvageCheckpoint(ck salvageCheckpoint) []byte {
	buf := make([]byte, disk.SectorSize)
	be := binary.BigEndian
	be.PutUint32(buf[0:], salvageMagic)
	be.PutUint32(buf[4:], uint32(ck.phase))
	be.PutUint32(buf[8:], uint32(ck.cursor))
	be.PutUint32(buf[12:], uint32(ck.cands))
	be.PutUint32(buf[16:], uint32(ck.damaged))
	be.PutUint32(buf[20:], ck.manifestCRC)
	be.PutUint32(buf[salvageCkCRCOff:], crc32.ChecksumIEEE(buf[:salvageCkCRCOff]))
	return buf
}

func decodeSalvageCheckpoint(buf []byte) (salvageCheckpoint, bool) {
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != salvageMagic {
		return salvageCheckpoint{}, false
	}
	if be.Uint32(buf[salvageCkCRCOff:]) != crc32.ChecksumIEEE(buf[:salvageCkCRCOff]) {
		return salvageCheckpoint{}, false
	}
	ck := salvageCheckpoint{
		phase:       salvagePhase(be.Uint32(buf[4:])),
		cursor:      int(be.Uint32(buf[8:])),
		cands:       int(be.Uint32(buf[12:])),
		damaged:     int(be.Uint32(buf[16:])),
		manifestCRC: be.Uint32(buf[20:]),
	}
	if ck.phase < salvageSweep || ck.phase > salvageFinalize {
		return salvageCheckpoint{}, false
	}
	return ck, true
}

// readSalvageCheckpoint looks for a valid checkpoint in either copy. Mounts
// call it right after reading the root page, before touching anything.
func readSalvageCheckpoint(d *disk.Disk, lay layout) (salvageCheckpoint, bool) {
	for _, addr := range []int{lay.logBase + salvageCkA, lay.logBase + salvageCkB} {
		buf, _, err := disk.ReadSectorsRetry(d, addr, 1, 2)
		if err != nil {
			continue
		}
		if ck, ok := decodeSalvageCheckpoint(buf); ok {
			return ck, true
		}
	}
	return salvageCheckpoint{}, false
}

// clearSalvageCheckpoint erases both checkpoint copies. Format calls it so a
// re-formatted volume never resurrects an old salvage; finalize calls it as
// the very last durable act of a salvage run.
func clearSalvageCheckpoint(write func(addr int, data []byte) error, lay layout) error {
	zero := make([]byte, disk.SectorSize)
	if err := write(lay.logBase+salvageCkA, zero); err != nil {
		return err
	}
	return write(lay.logBase+salvageCkB, zero)
}

// The manifest is a flat array of big-endian u32 sector addresses in
// discovery order — candidate leaders as-is, damaged sectors tagged with the
// high bit — so it is strictly append-only across sweep flushes: an older
// checkpoint always describes a CRC-matching prefix of a newer manifest.
const salvageDamagedBit = 1 << 31

func encodeSalvageManifest(entries []uint32) []byte {
	buf := make([]byte, 4*len(entries))
	for i, e := range entries {
		binary.BigEndian.PutUint32(buf[4*i:], e)
	}
	return buf
}

// salvageCand is one structurally valid leader found by the sweep.
type salvageCand struct {
	e     *Entry
	total int // full run count per the leader (may exceed preamble)
}

// salvageRun carries one salvage invocation's state across its phases.
type salvageRun struct {
	v   *Volume
	d   *disk.Disk
	lay layout
	cfg Config
	st  *SalvageStats

	cands    []salvageCand
	damaged  []int
	seen     map[int]bool // leader addresses already in cands
	manifest []uint32
	hasMan   bool // a distinct copy-B region exists to hold the manifest

	entries []salvageCand // claiming winners
	maxUID  uint64

	uidChunk  uint64
	formatted time.Duration
}

// read is the salvage read path: bounded retries, transient faults charged
// to the health budget (a salvage that limps through decay lands Degraded,
// like a mount whose replay did). Reads that stay failed are salvage's
// normal input — damaged sectors become bad blocks — and are not charged;
// only a halted device escalates.
func (r *salvageRun) read(addr, n int) ([]byte, error) {
	buf, retried, err := disk.ReadSectorsRetry(r.d, addr, n, r.cfg.readRetries())
	if err != nil {
		if errors.Is(err, disk.ErrHalted) {
			r.v.degradeTo(HealthOffline, "device halted")
		}
		return buf, err
	}
	if retried > 0 {
		r.v.noteReadFault(retried, nil)
	}
	return buf, nil
}

func (r *salvageRun) manifestCapacity() int {
	return r.lay.ntPages * NTPageSectors * disk.SectorSize / 4
}

// flush makes progress durable: manifest first, then the checkpoint copies,
// each behind its own barrier, so a crash between them leaves the previous
// checkpoint describing a valid prefix of the (append-only) manifest. The
// two checkpoint copies are separated by a barrier too — otherwise one torn
// epoch could destroy both and un-mark the volume mid-destruction.
func (r *salvageRun) flush(phase salvagePhase, cursor int) error {
	ck := salvageCheckpoint{phase: phase, cursor: cursor}
	if r.hasMan && len(r.manifest) <= r.manifestCapacity() {
		data := encodeSalvageManifest(r.manifest)
		crc := crc32.ChecksumIEEE(data)
		if pad := len(data) % disk.SectorSize; pad != 0 {
			data = append(data, make([]byte, disk.SectorSize-pad)...)
		}
		for off := 0; off < len(data)/disk.SectorSize; off += MaxTransferSectors {
			n := MaxTransferSectors
			if rem := len(data)/disk.SectorSize - off; n > rem {
				n = rem
			}
			if err := r.v.writeSectors(r.lay.ntB+off, data[off*disk.SectorSize:(off+n)*disk.SectorSize]); err != nil {
				return err
			}
		}
		if err := r.d.Sync(); err != nil {
			return err
		}
		ck.cands, ck.damaged, ck.manifestCRC = len(r.cands), len(r.damaged), crc
	}
	buf := encodeSalvageCheckpoint(ck)
	if err := r.v.writeSectors(r.lay.logBase+salvageCkA, buf); err != nil {
		return err
	}
	if err := r.d.Sync(); err != nil {
		return err
	}
	if err := r.v.writeSectors(r.lay.logBase+salvageCkB, buf); err != nil {
		return err
	}
	r.st.Checkpoints++
	return r.d.Sync()
}

// loadManifest rebuilds the sweep's in-memory state from the manifest a
// checkpoint describes: damaged addresses verbatim, candidate leaders by
// re-reading and re-decoding their sectors (idempotent — a leader clamped by
// an earlier claiming pass decodes to its clamped form). It reports false
// when the manifest is missing or fails its CRC; the caller then restarts
// the sweep, which is always possible because the data region is never
// destroyed.
func (r *salvageRun) loadManifest(ck salvageCheckpoint) bool {
	if !r.hasMan {
		return false
	}
	total := ck.cands + ck.damaged
	if total > r.manifestCapacity() {
		return false
	}
	var data []byte
	if nsec := (4*total + disk.SectorSize - 1) / disk.SectorSize; nsec > 0 {
		buf, err := r.read(r.lay.ntB, nsec)
		if err != nil {
			return false
		}
		data = buf[:4*total]
	}
	if crc32.ChecksumIEEE(data) != ck.manifestCRC {
		return false
	}
	for i := 0; i < total; i++ {
		raw := binary.BigEndian.Uint32(data[4*i:])
		if raw&salvageDamagedBit != 0 {
			r.damaged = append(r.damaged, int(raw&^uint32(salvageDamagedBit)))
			r.manifest = append(r.manifest, raw)
			continue
		}
		addr := int(raw)
		r.seen[addr] = true
		sec, err := r.read(addr, 1)
		if err != nil {
			// Decayed since it was swept: it is a damaged sector now.
			r.st.addProblem("sector %d: manifested leader unreadable on resume", addr)
			r.damaged = append(r.damaged, addr)
			r.manifest = append(r.manifest, raw|salvageDamagedBit)
			continue
		}
		if binary.BigEndian.Uint32(sec) != leaderMagic {
			r.st.addProblem("sector %d: manifested leader no longer decodes", addr)
			continue
		}
		e, tot, ok := decodeLeaderEntry(sec)
		if !ok || len(e.Runs) == 0 || int(e.Runs[0].Start) != addr {
			r.st.addProblem("sector %d: manifested leader no longer decodes", addr)
			continue
		}
		r.cands = append(r.cands, salvageCand{e, tot})
		r.manifest = append(r.manifest, raw)
	}
	r.st.CandidateLeaders = len(r.cands)
	r.st.DamagedSectors = len(r.damaged)
	return true
}

// sweepChunk is one read unit of the sweep's chunk table: the same
// (addr, n) sequence the original sequential loop produced, precomputed so
// a worker pool can pull chunks while the merger consumes them in order.
type sweepChunk struct {
	addr, n int
}

// sweepChunks lists the data-region chunks from the cursor on: transfers
// of up to MaxTransferSectors, clamped at the metadata range (which the
// sweep skips) and the end of the volume.
func (r *salvageRun) sweepChunks(from int) []sweepChunk {
	lay := r.lay
	metaLo, metaHi := lay.logBase, lay.vamBase+lay.vamSectors
	addr := from
	if addr < lay.dataLo {
		addr = lay.dataLo
	}
	var chunks []sweepChunk
	for addr < lay.total {
		if addr >= metaLo && addr < metaHi {
			addr = metaHi
			continue
		}
		n := MaxTransferSectors
		if addr < metaLo && addr+n > metaLo {
			n = metaLo - addr
		}
		if addr+n > lay.total {
			n = lay.total - addr
		}
		chunks = append(chunks, sweepChunk{addr, n})
		addr += n
	}
	return chunks
}

// sweepChunkResult is what one swept chunk contributes, in address order
// within the chunk: unreadable sectors and structurally valid candidate
// leaders. The merger folds results strictly in chunk order, so the
// manifest, the stats, and the checkpoint cursor are identical at every
// worker count.
type sweepChunkResult struct {
	damaged []int
	cands   []salvageCand
}

// readChunkData reads one sweep chunk, falling back to single sectors when
// damage aborts the bulk transfer so one bad sector costs one sector. The
// damaged list is returned rather than recorded: the caller may be a pool
// worker, and global state belongs to the merger.
func (r *salvageRun) readChunkData(addr, n int) (buf []byte, damaged []int, err error) {
	buf, err = r.read(addr, n)
	if err == nil {
		return buf, nil, nil
	}
	if errors.Is(err, disk.ErrHalted) {
		return nil, nil, err
	}
	buf = make([]byte, 0, n*disk.SectorSize)
	for i := 0; i < n; i++ {
		one, rerr := r.read(addr+i, 1)
		if rerr != nil {
			if errors.Is(rerr, disk.ErrHalted) {
				return nil, nil, rerr
			}
			damaged = append(damaged, addr+i)
			one = make([]byte, disk.SectorSize)
		}
		buf = append(buf, one...)
	}
	return buf, damaged, nil
}

// sweepChunkScan decodes one chunk's sectors into its result slot,
// charging the decode cost to the worker.
func (r *salvageRun) sweepChunkScan(w *parscan.Worker, ch sweepChunk, res *sweepChunkResult) error {
	buf, damaged, err := r.readChunkData(ch.addr, ch.n)
	if err != nil {
		return err
	}
	res.damaged = damaged
	cpu := time.Duration(ch.n) * sim.CostLabelInterpret
	for i := 0; i < ch.n; i++ {
		sec := buf[i*disk.SectorSize : (i+1)*disk.SectorSize]
		if binary.BigEndian.Uint32(sec) != leaderMagic {
			continue
		}
		cpu += csumCost
		e, total, ok := decodeLeaderEntry(sec)
		if !ok || len(e.Runs) == 0 || int(e.Runs[0].Start) != ch.addr+i {
			continue
		}
		res.cands = append(res.cands, salvageCand{e, total})
	}
	w.Charge(cpu)
	for range damaged {
		w.Fault()
	}
	return nil
}

// sweep is phase 1: one pass of the data region looking for leader pages.
// A candidate must decode, and its first run must start at its own
// address — a leader names itself as the file's first page, which rejects
// byte-for-byte copies of leaders living inside file data.
//
// The pass is parallel across Config.CheckWorkers: stealing workers read
// and decode chunks, while this goroutine — the merger — folds finished
// results strictly in chunk order. Everything order-dependent stays with
// the merger: the seen-address dedup, the append-only manifest, the stats,
// and the periodic flush. The checkpoint cursor therefore advances only
// past the fully-merged contiguous prefix, which preserves the PR 8
// resume contract exactly: a crash mid-sweep resumes from a cursor whose
// manifest prefix describes every sector before it, never a sector some
// straggler worker hadn't finished.
func (r *salvageRun) sweep(from int) error {
	lay, st, v := r.lay, r.st, r.v
	// The first checkpoint precedes any destructive write (the manifest
	// overwrites name-table copy B): once it lands, plain mounts refuse
	// the volume until salvage finishes.
	if err := r.flush(salvageSweep, from); err != nil {
		return err
	}
	sweepStart := v.clk.Now()
	chunks := r.sweepChunks(from)
	st.Workers = r.cfg.checkWorkers()

	results := make([]sweepChunkResult, len(chunks))
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	done := make([]bool, len(chunks))
	failedAt := len(chunks) // lowest chunk index that failed

	pool := parscan.Start(st.Workers, len(chunks), func(w *parscan.Worker, c int) error {
		err := r.sweepChunkScan(w, chunks[c], &results[c])
		mu.Lock()
		if err != nil && c < failedAt {
			failedAt = c
		}
		done[c] = true
		cond.Broadcast()
		mu.Unlock()
		return err
	})

	merged := 0
	for c := range chunks {
		mu.Lock()
		for !done[c] && failedAt > c {
			cond.Wait()
		}
		failed := failedAt <= c
		mu.Unlock()
		if failed {
			break
		}
		ch, res := chunks[c], &results[c]
		st.SectorsScanned += ch.n
		for _, bad := range res.damaged {
			st.DamagedSectors++
			r.damaged = append(r.damaged, bad)
			r.manifest = append(r.manifest, uint32(bad)|salvageDamagedBit)
		}
		for _, cand := range res.cands {
			addr := int(cand.e.Runs[0].Start)
			if r.seen[addr] {
				continue
			}
			r.seen[addr] = true
			st.CandidateLeaders++
			r.cands = append(r.cands, cand)
			r.manifest = append(r.manifest, uint32(addr))
		}
		if merged++; merged%32 == 0 {
			if err := r.flush(salvageSweep, ch.addr+ch.n); err != nil {
				pool.Cancel()
				pool.Wait()
				return err
			}
		}
	}

	stats, err := pool.Wait()
	// The merger, not the workers, charges the pool's CPU critical path —
	// the balanced share, which is deterministic and at one worker equals
	// the sequential total.
	v.cpu.Charge(stats.BalancedCPU())
	st.SweepCPU = stats.TotalCPU()
	st.Steals = stats.Steals()
	st.SweepElapsed = v.clk.Now() - sweepStart
	if err != nil {
		return err
	}
	return r.flush(salvageSweep, lay.total)
}

// resolve turns candidates into claimed entries. Highest UID wins a
// (name, version) collision — UIDs are allocation-ordered, so it is the
// latest incarnation. Then claim pages newest-first: a stale leader (of a
// deleted file whose pages were reallocated) overlaps the current owner and
// is dropped. Truncated leaders are rewritten clamped; re-running resolve
// after a crash re-derives the same winners (the UID order is total) and
// finds already-clamped leaders consistent, so the pass is idempotent.
func (r *salvageRun) resolve() error {
	lay, st := r.lay, r.st
	byKey := make(map[string]salvageCand)
	for _, c := range r.cands {
		k := string(entryKey(c.e.Name, c.e.Version))
		if prev, ok := byKey[k]; !ok || c.e.UID > prev.e.UID {
			byKey[k] = c
		}
	}
	resolved := make([]salvageCand, 0, len(byKey))
	for _, c := range byKey {
		resolved = append(resolved, c)
	}
	st.ConflictsDropped = len(r.cands) - len(resolved)
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].e.UID > resolved[j].e.UID })
	owned := make(map[uint32]bool)
claiming:
	for _, c := range resolved {
		pages := 0
		for _, run := range c.e.Runs {
			if run.Len == 0 || int(run.Start)+int(run.Len) > lay.total {
				st.ConflictsDropped++
				st.addProblem("%s!%d: run [%d,+%d) out of range", c.e.Name, c.e.Version, run.Start, run.Len)
				continue claiming
			}
			for p := run.Start; p < run.Start+run.Len; p++ {
				if lay.metaRange(int(p)) || owned[p] {
					st.ConflictsDropped++
					continue claiming
				}
				pages++
			}
		}
		for _, run := range c.e.Runs {
			for p := run.Start; p < run.Start+run.Len; p++ {
				owned[p] = true
			}
		}
		if c.total > len(c.e.Runs) {
			// Only the preamble survived: clamp the byte size to the
			// reachable pages and rewrite the leader so it describes the
			// truncated file exactly (runCRC over the trimmed table).
			st.FilesPartial++
			if max := uint64(pages-1) * disk.SectorSize; c.e.ByteSize > max {
				c.e.ByteSize = max
			}
			if err := r.v.writeSectors(int(c.e.Runs[0].Start), encodeLeader(c.e)); err != nil {
				return err
			}
			st.addProblem("%s!%d: truncated to %d runs (%d lost with the name table)",
				c.e.Name, c.e.Version, len(c.e.Runs), c.total-len(c.e.Runs))
		}
		r.entries = append(r.entries, c)
		if c.e.UID > r.maxUID {
			r.maxUID = c.e.UID
		}
	}
	st.FilesRecovered = len(r.entries)
	return nil
}

// rebuild is phase 2: the metadata is rebuilt from scratch — a fresh log,
// zeroed name-table copy A (stale non-virgin pages must not masquerade as
// valid after a crash mid-rebuild), and a new B-tree holding the recovered
// entries, inserted in key order for locality. While a manifest exists,
// copy B is left alone (it holds the manifest) and the cache runs
// single-copy; finalize mirrors the finished copy A over it.
func (r *salvageRun) rebuild() error {
	v, d, lay, cfg := r.v, r.d, r.lay, r.cfg
	// Record the phase before the first destructive write, so a crash
	// anywhere in the rebuild resumes here — from the manifest — instead
	// of trusting a half-built name table.
	if err := r.flush(salvageRebuild, lay.total); err != nil {
		return err
	}
	var err error
	v.log, err = wal.Format(d, lay.logBase, lay.logSize, v.clk, cfg.walConfig())
	if err != nil {
		return err
	}
	v.cache = newNTCache(v, cfg.cacheSize())
	if r.hasMan {
		v.cfg.SingleCopyNT = true
	}
	ntSectors := lay.ntPages * NTPageSectors
	zero := make([]byte, MaxTransferSectors*disk.SectorSize)
	zeroRegion := func(base int) error {
		for off := 0; off < ntSectors; off += MaxTransferSectors {
			n := MaxTransferSectors
			if off+n > ntSectors {
				n = ntSectors - off
			}
			if err := v.writeSectors(base+off, zero[:n*disk.SectorSize]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := zeroRegion(lay.ntA); err != nil {
		return err
	}

	metaLo, metaHi := lay.logBase, lay.vamBase+lay.vamSectors
	v.vm = vam.New(lay.total)
	v.vm.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	if metaHi > metaLo {
		v.vm.MarkAllocated(metaLo, metaHi-metaLo)
	}
	for _, c := range r.entries {
		for _, run := range c.e.Runs {
			v.vm.MarkAllocated(int(run.Start), int(run.Len))
		}
	}
	for _, bad := range r.damaged {
		// Unreadable data sectors become bad blocks: never allocated.
		v.vm.MarkAllocated(bad, 1)
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return err
	}
	v.hookLog()

	v.nt, err = btree.Create(v.cache)
	if err != nil {
		return err
	}
	sort.Slice(r.entries, func(i, j int) bool {
		return string(entryKey(r.entries[i].e.Name, r.entries[i].e.Version)) <
			string(entryKey(r.entries[j].e.Name, r.entries[j].e.Version))
	})
	for i, c := range r.entries {
		v.cpu.Charge(sim.CostBTreeOp)
		if err := v.nt.Put(entryKey(c.e.Name, c.e.Version), encodeEntry(c.e)); err != nil {
			return fmt.Errorf("core: salvage rebuild: %w", err)
		}
		if (i+1)%64 == 0 {
			// Bound the staged-image batch so no single force overruns
			// a log third.
			if err := v.log.Force(); err != nil {
				return err
			}
		}
	}
	if err := v.log.Force(); err != nil {
		return err
	}
	if err := v.cache.flushAll(); err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	// The tree is complete and home in copy A: everything finalize does is
	// re-derivable from it, so advance the checkpoint past the rebuild.
	return r.flush(salvageFinalize, lay.total)
}

// finalize is phase 3: root page, allocation-map save (or invalidation),
// mirroring the finished name table over the manifest, and — last of all —
// clearing the checkpoint. Every step can be redone from the tree in copy A,
// so a crash anywhere here resumes through resumeFinalize.
func (r *salvageRun) finalize() error {
	v, lay, cfg := r.v, r.lay, r.cfg
	uidChunk := r.uidChunk
	if chunk := (r.maxUID >> 32) + 1; chunk > uidChunk {
		uidChunk = chunk
	} else {
		uidChunk++
	}
	v.uidNext.Store(uidChunk << 32)
	if err := v.writeRoot(rootPage{layout: lay, clean: false, logVAM: cfg.LogVAM, uidChunk: uidChunk, formatted: r.formatted}); err != nil {
		return err
	}
	if cfg.LogVAM {
		if err := v.vm.SaveWith(v.writeSectors, lay.vamBase); err != nil {
			return err
		}
	} else if err := vam.InvalidateWith(v.writeSectors, lay.vamBase); err != nil {
		return err
	}
	if !cfg.SingleCopyNT && lay.ntB != lay.ntA {
		// Mirror copy A over the manifest so both name-table copies agree
		// again, then restore two-copy operation.
		v.cfg.SingleCopyNT = false
		ntSectors := lay.ntPages * NTPageSectors
		for off := 0; off < ntSectors; off += MaxTransferSectors {
			n := MaxTransferSectors
			if off+n > ntSectors {
				n = ntSectors - off
			}
			buf, err := r.read(lay.ntA+off, n)
			if err != nil {
				if errors.Is(err, disk.ErrHalted) {
					return err
				}
				// A damaged source sector mirrors as a virgin page; the
				// cache serves the surviving copy and the scrub pass
				// re-duplicates it.
				buf = make([]byte, 0, n*disk.SectorSize)
				for i := 0; i < n; i++ {
					one, rerr := r.read(lay.ntA+off+i, 1)
					if rerr != nil {
						if errors.Is(rerr, disk.ErrHalted) {
							return rerr
						}
						one = make([]byte, disk.SectorSize)
					}
					buf = append(buf, one...)
				}
			}
			if err := v.writeSectors(lay.ntB+off, buf); err != nil {
				return err
			}
		}
	}
	if err := r.d.Sync(); err != nil {
		return err
	}
	if err := clearSalvageCheckpoint(v.writeSectors, lay); err != nil {
		return err
	}
	if err := r.d.Sync(); err != nil {
		return err
	}
	if cfg.LogVAM {
		v.enableVAMLogging()
	}
	return nil
}

// resumeFinalize handles a crash after the rebuilt tree was complete in
// copy A but before the checkpoint was cleared: re-open the tree, rescan it
// for the allocation map and the UID horizon, and redo the idempotent
// finalize steps. The interrupted run's damaged-sector list is not
// recoverable here, so those sectors return to the free pool; reusing one
// is absorbed by the write path's retry/remap policy.
func (r *salvageRun) resumeFinalize() error {
	v, d, lay, cfg, st := r.v, r.d, r.lay, r.cfg, r.st
	var err error
	v.log, err = wal.Format(d, lay.logBase, lay.logSize, v.clk, cfg.walConfig())
	if err != nil {
		return err
	}
	v.cache = newNTCache(v, cfg.cacheSize())
	if lay.ntB != lay.ntA {
		// Copy B still holds the manifest (or a torn mirror); trust copy A
		// alone until finalize mirrors it.
		v.cfg.SingleCopyNT = true
	}
	v.hookLog()
	v.nt, err = btree.Open(v.cache)
	if err != nil {
		return fmt.Errorf("core: salvage resume: rebuilt name table unreadable: %w", err)
	}
	metaLo, metaHi := lay.logBase, lay.vamBase+lay.vamSectors
	v.vm = vam.New(lay.total)
	v.vm.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	if metaHi > metaLo {
		v.vm.MarkAllocated(metaLo, metaHi-metaLo)
	}
	err = v.nt.Scan(nil, func(k, val []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		e, derr := decodeEntry(name, ver, val)
		if derr != nil {
			return true
		}
		v.cpu.Charge(sim.CostBTreeOp / 4)
		for _, run := range e.Runs {
			v.vm.MarkAllocated(int(run.Start), int(run.Len))
		}
		if e.UID > r.maxUID {
			r.maxUID = e.UID
		}
		st.FilesRecovered++
		return true
	})
	if err != nil {
		return err
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return err
	}
	return r.finalize()
}

// Salvage rebuilds a volume whose name table is lost in both copies: it
// scans the whole data region for leader pages, reconstructs an entry from
// each (newest incarnation wins any page-ownership conflict), re-creates an
// empty log and name table, and inserts the recovered entries. Committed
// files reachable from an intact leader survive; files whose leader decayed,
// and the tail runs of files longer than the leader preamble, are lost —
// that is the report in SalvageStats. Deleted files whose leader page was
// never reallocated may resurrect, exactly as under the CFS scavenger.
//
// The previous log contents are abandoned: salvage runs only when replaying
// them already failed, and a rebuilt name table makes stale records
// meaningless. Layout comes from the volume root page when either replica
// survives; otherwise it is recomputed from the geometry and cfg, which must
// then match the format-time configuration.
//
// Salvage is resumable: if the volume carries a progress checkpoint from a
// salvage that crashed partway, the run continues from the recorded phase
// (see the package comment above salvagePhase) and SalvageStats.Resumed
// reports it.
func Salvage(d *disk.Disk, cfg Config) (*Volume, SalvageStats, error) {
	var st SalvageStats
	clk := d.Clock()
	start := clk.Now()

	var lay layout
	uidChunk := uint64(1)
	formatted := clk.Now()
	if root, err := readRoot(d); err == nil {
		lay = root.layout
		cfg.LogVAM = root.logVAM
		uidChunk = root.uidChunk
		formatted = root.formatted
	} else {
		lay, err = computeLayout(d.Geometry(), cfg)
		if err != nil {
			return nil, st, err
		}
	}
	v := newVolume(d, cfg, lay)
	r := &salvageRun{
		v: v, d: d, lay: lay, cfg: cfg, st: &st,
		seen:      make(map[int]bool),
		hasMan:    lay.ntB != lay.ntA,
		uidChunk:  uidChunk,
		formatted: formatted,
	}

	entry := salvageSweep
	sweepFrom := lay.dataLo
	if ck, ok := readSalvageCheckpoint(d, lay); ok {
		st.Resumed = true
		st.ResumedPhase = ck.phase.String()
		switch ck.phase {
		case salvageSweep, salvageRebuild:
			if r.loadManifest(ck) {
				entry = ck.phase
				if ck.phase == salvageSweep {
					sweepFrom = ck.cursor
				}
			} else {
				st.addProblem("checkpoint (phase %s) without a usable manifest: restarting the sweep", ck.phase)
			}
		case salvageFinalize:
			entry = salvageFinalize
		}
	}

	st.Workers = cfg.checkWorkers()
	if entry == salvageFinalize {
		if err := r.resumeFinalize(); err != nil {
			return nil, st, err
		}
		st.FinalizeElapsed = clk.Now() - start
	} else {
		if entry == salvageSweep {
			if err := r.sweep(sweepFrom); err != nil {
				return nil, st, err
			}
		}
		rebuildStart := clk.Now()
		if err := r.resolve(); err != nil {
			return nil, st, err
		}
		if err := r.rebuild(); err != nil {
			return nil, st, err
		}
		st.RebuildElapsed = clk.Now() - rebuildStart
		finalizeStart := clk.Now()
		if err := r.finalize(); err != nil {
			return nil, st, err
		}
		st.FinalizeElapsed = clk.Now() - finalizeStart
	}

	st.Elapsed = clk.Now() - start
	v.startTicker()
	v.finishMount()
	return v, st, nil
}

// MountOrSalvage mounts the volume, degrading to a read-only mount and then
// the destructive salvage sweep when normal recovery fails.
//
// Deprecated: use Mount(d, cfg, AllowSalvage()); the returned MountReport
// carries the SalvageStats pointer.
func MountOrSalvage(d *disk.Disk, cfg Config) (*Volume, MountStats, *SalvageStats, error) {
	v, rep, err := Mount(d, cfg, AllowSalvage())
	return v, rep.MountStats, rep.Salvage, err
}
