package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vam"
	"repro/internal/wal"
)

// Salvage mount: the last-ditch recovery path. Normal FSD recovery never
// needs it — the log plus the doubly-stored name table survive any crash and
// any single media fault. Salvage exists for the double fault the paper's
// design accepts as "very unlikely": both copies of a name-table page decay
// (or the log is damaged beyond the anchors' reach) and Mount fails. Because
// FSD leaders carry the file's name, version, size, and a run-table preamble
// (leader.go), the volume can still be rebuilt by scanning the data region
// for leader pages — the moral equivalent of the CFS scavenger, but driven
// by one sequential sweep instead of a label pass plus per-file header reads.

// SalvageStats reports what a salvage mount scanned and saved.
type SalvageStats struct {
	SectorsScanned   int
	DamagedSectors   int // unreadable sectors (retired from allocation)
	CandidateLeaders int // structurally valid leader pages found
	FilesRecovered   int // entries rebuilt into the fresh name table
	FilesPartial     int // recovered with a truncated run table (tail lost)
	ConflictsDropped int // stale leaders losing a page-ownership conflict
	Problems         []string
	Elapsed          time.Duration
}

func (st *SalvageStats) addProblem(format string, args ...interface{}) {
	st.Problems = append(st.Problems, fmt.Sprintf(format, args...))
}

// Salvage rebuilds a volume whose name table is lost in both copies: it
// scans the whole data region for leader pages, reconstructs an entry from
// each (newest incarnation wins any page-ownership conflict), re-creates an
// empty log and name table, and inserts the recovered entries. Committed
// files reachable from an intact leader survive; files whose leader decayed,
// and the tail runs of files longer than the leader preamble, are lost —
// that is the report in SalvageStats. Deleted files whose leader page was
// never reallocated may resurrect, exactly as under the CFS scavenger.
//
// The previous log contents are abandoned: salvage runs only when replaying
// them already failed, and a rebuilt name table makes stale records
// meaningless. Layout comes from the volume root page when either replica
// survives; otherwise it is recomputed from the geometry and cfg, which must
// then match the format-time configuration.
func Salvage(d *disk.Disk, cfg Config) (*Volume, SalvageStats, error) {
	var st SalvageStats
	clk := d.Clock()
	start := clk.Now()

	var lay layout
	uidChunk := uint64(1)
	formatted := clk.Now()
	if root, err := readRoot(d); err == nil {
		lay = root.layout
		cfg.LogVAM = root.logVAM
		uidChunk = root.uidChunk
		formatted = root.formatted
	} else {
		lay, err = computeLayout(d.Geometry(), cfg)
		if err != nil {
			return nil, st, err
		}
	}
	v := newVolume(d, cfg, lay)

	// Pass 1: one sequential sweep of the data region looking for leader
	// pages. A candidate must decode, and its first run must start at its
	// own address — a leader names itself as the file's first page, which
	// rejects byte-for-byte copies of leaders living inside file data.
	type cand struct {
		e     *Entry
		total int // full run count per the leader (may exceed preamble)
	}
	var cands []cand
	var damaged []int
	metaLo, metaHi := lay.logBase, lay.vamBase+lay.vamSectors
	readRetry := func(addr, n int) ([]byte, error) {
		buf, err := d.ReadSectors(addr, n)
		var de *disk.DamagedError
		for tries := 0; err != nil && errors.As(err, &de) && tries < cfg.readRetries(); tries++ {
			buf, err = d.ReadSectors(addr, n)
		}
		return buf, err
	}
	addr := lay.dataLo
	for addr < lay.total {
		if addr >= metaLo && addr < metaHi {
			addr = metaHi
			continue
		}
		n := MaxTransferSectors
		if addr < metaLo && addr+n > metaLo {
			n = metaLo - addr
		}
		if addr+n > lay.total {
			n = lay.total - addr
		}
		buf, err := readRetry(addr, n)
		if err != nil {
			// Damage aborts a multi-sector transfer; fall back to
			// singles so one bad sector costs one sector.
			buf = make([]byte, 0, n*disk.SectorSize)
			for i := 0; i < n; i++ {
				one, err := readRetry(addr+i, 1)
				if err != nil {
					st.DamagedSectors++
					damaged = append(damaged, addr+i)
					one = make([]byte, disk.SectorSize)
				}
				buf = append(buf, one...)
			}
		}
		st.SectorsScanned += n
		v.cpu.Charge(time.Duration(n) * sim.CostLabelInterpret)
		for i := 0; i < n; i++ {
			sec := buf[i*disk.SectorSize : (i+1)*disk.SectorSize]
			if binary.BigEndian.Uint32(sec) != leaderMagic {
				continue
			}
			v.cpu.Charge(csumCost)
			e, total, ok := decodeLeaderEntry(sec)
			if !ok || len(e.Runs) == 0 || int(e.Runs[0].Start) != addr+i {
				continue
			}
			st.CandidateLeaders++
			cands = append(cands, cand{e, total})
		}
		addr += n
	}

	// Resolve candidates. Highest UID wins a (name, version) collision —
	// UIDs are allocation-ordered, so it is the latest incarnation. Then
	// claim pages newest-first: a stale leader (of a deleted file whose
	// pages were reallocated) overlaps the current owner and is dropped.
	byKey := make(map[string]cand)
	for _, c := range cands {
		k := string(entryKey(c.e.Name, c.e.Version))
		if prev, ok := byKey[k]; !ok || c.e.UID > prev.e.UID {
			byKey[k] = c
		}
	}
	resolved := make([]cand, 0, len(byKey))
	for _, c := range byKey {
		resolved = append(resolved, c)
	}
	st.ConflictsDropped = len(cands) - len(resolved)
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].e.UID > resolved[j].e.UID })
	owned := make(map[uint32]bool)
	var entries []cand
	var maxUID uint64
claiming:
	for _, c := range resolved {
		pages := 0
		for _, r := range c.e.Runs {
			if r.Len == 0 || int(r.Start)+int(r.Len) > lay.total {
				st.ConflictsDropped++
				st.addProblem("%s!%d: run [%d,+%d) out of range", c.e.Name, c.e.Version, r.Start, r.Len)
				continue claiming
			}
			for p := r.Start; p < r.Start+r.Len; p++ {
				if lay.metaRange(int(p)) || owned[p] {
					st.ConflictsDropped++
					continue claiming
				}
				pages++
			}
		}
		for _, r := range c.e.Runs {
			for p := r.Start; p < r.Start+r.Len; p++ {
				owned[p] = true
			}
		}
		if c.total > len(c.e.Runs) {
			// Only the preamble survived: clamp the byte size to the
			// reachable pages and rewrite the leader so it describes the
			// truncated file exactly (runCRC over the trimmed table).
			st.FilesPartial++
			if max := uint64(pages-1) * disk.SectorSize; c.e.ByteSize > max {
				c.e.ByteSize = max
			}
			if _, _, err := disk.WriteSectorsRetry(d, int(c.e.Runs[0].Start), encodeLeader(c.e), cfg.writeRetries()); err != nil {
				return nil, st, err
			}
			st.addProblem("%s!%d: truncated to %d runs (%d lost with the name table)",
				c.e.Name, c.e.Version, len(c.e.Runs), c.total-len(c.e.Runs))
		}
		entries = append(entries, c)
		if c.e.UID > maxUID {
			maxUID = c.e.UID
		}
	}
	st.FilesRecovered = len(entries)

	// Pass 2: rebuild the metadata from scratch — a fresh log, zeroed
	// name-table regions (stale non-virgin pages must not masquerade as
	// valid after a crash mid-rebuild), and a new B-tree holding the
	// recovered entries, inserted in key order for locality.
	var err error
	v.log, err = wal.Format(d, lay.logBase, lay.logSize, v.clk, wal.Config{
		Interval: cfg.interval(),
		Thirds:   cfg.Thirds,
	})
	if err != nil {
		return nil, st, err
	}
	v.cache = newNTCache(v, cfg.cacheSize())
	ntSectors := lay.ntPages * NTPageSectors
	zero := make([]byte, MaxTransferSectors*disk.SectorSize)
	zeroRegion := func(base int) error {
		for off := 0; off < ntSectors; off += MaxTransferSectors {
			n := MaxTransferSectors
			if off+n > ntSectors {
				n = ntSectors - off
			}
			if _, _, err := disk.WriteSectorsRetry(d, base+off, zero[:n*disk.SectorSize], cfg.writeRetries()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := zeroRegion(lay.ntA); err != nil {
		return nil, st, err
	}
	if !cfg.SingleCopyNT {
		if err := zeroRegion(lay.ntB); err != nil {
			return nil, st, err
		}
	}

	v.vm = vam.New(lay.total)
	v.vm.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	if metaHi > metaLo {
		v.vm.MarkAllocated(metaLo, metaHi-metaLo)
	}
	for _, c := range entries {
		for _, r := range c.e.Runs {
			v.vm.MarkAllocated(int(r.Start), int(r.Len))
		}
	}
	for _, bad := range damaged {
		// Unreadable data sectors become bad blocks: never allocated.
		v.vm.MarkAllocated(bad, 1)
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return nil, st, err
	}
	v.hookLog()

	v.nt, err = btree.Create(v.cache)
	if err != nil {
		return nil, st, err
	}
	sort.Slice(entries, func(i, j int) bool {
		return string(entryKey(entries[i].e.Name, entries[i].e.Version)) <
			string(entryKey(entries[j].e.Name, entries[j].e.Version))
	})
	for i, c := range entries {
		v.cpu.Charge(sim.CostBTreeOp)
		if err := v.nt.Put(entryKey(c.e.Name, c.e.Version), encodeEntry(c.e)); err != nil {
			return nil, st, fmt.Errorf("core: salvage rebuild: %w", err)
		}
		if (i+1)%64 == 0 {
			// Bound the staged-image batch so no single force overruns
			// a log third.
			if err := v.log.Force(); err != nil {
				return nil, st, err
			}
		}
	}
	if err := v.log.Force(); err != nil {
		return nil, st, err
	}
	if err := v.cache.flushAll(); err != nil {
		return nil, st, err
	}

	if chunk := (maxUID >> 32) + 1; chunk > uidChunk {
		uidChunk = chunk
	} else {
		uidChunk++
	}
	v.uidNext.Store(uidChunk << 32)
	if err := v.writeRoot(rootPage{layout: lay, clean: false, logVAM: cfg.LogVAM, uidChunk: uidChunk, formatted: formatted}); err != nil {
		return nil, st, err
	}
	if cfg.LogVAM {
		if err := v.vm.SaveWith(v.writeSectors, lay.vamBase); err != nil {
			return nil, st, err
		}
		v.enableVAMLogging()
	} else if err := vam.InvalidateWith(v.writeSectors, lay.vamBase); err != nil {
		return nil, st, err
	}
	st.Elapsed = clk.Now() - start
	v.startTicker()
	return v, st, nil
}

// MountOrSalvage mounts the volume, degrading to a read-only mount and then
// the destructive salvage sweep when normal recovery fails.
//
// Deprecated: use Mount(d, cfg, AllowSalvage()); the returned MountReport
// carries the SalvageStats pointer.
func MountOrSalvage(d *disk.Disk, cfg Config) (*Volume, MountStats, *SalvageStats, error) {
	v, rep, err := Mount(d, cfg, AllowSalvage())
	return v, rep.MountStats, rep.Salvage, err
}
