package core

import (
	"errors"
	"fmt"

	"repro/internal/disk"
)

// MountOption configures Mount. The zero set of options is the normal
// writable mount with log replay.
type MountOption func(*mountOptions)

type mountOptions struct {
	readOnly     bool
	allowSalvage bool
}

// ReadOnly mounts the volume in the degraded read-only mode: the log is
// replayed entirely in memory, mutations fail with ErrReadOnly, and nothing
// is written anywhere — the platters stay exactly as found.
func ReadOnly() MountOption {
	return func(o *mountOptions) { o.readOnly = true }
}

// AllowSalvage lets Mount degrade when normal recovery fails (root pages
// intact but the name table or log damaged beyond the duplicates' reach):
// first to a read-only mount — which preserves the committed state without
// writing, the last rung before data loss — and then to the destructive
// salvage sweep. A salvage result carries its SalvageStats in the report;
// a read-only result is flagged in MountStats.ReadOnly.
func AllowSalvage() MountOption {
	return func(o *mountOptions) { o.allowSalvage = true }
}

// MountReport is everything a mount had to do. MountStats is embedded, so
// existing field accesses (report.CleanShutdown, report.Elapsed, ...) keep
// working; Salvage is non-nil only when AllowSalvage was given and the
// salvage rung ran.
type MountReport struct {
	MountStats
	Salvage *SalvageStats
}

// Mount attaches to a previously formatted volume. With no options it is
// the normal writable mount: the log is replayed, the allocation map
// loaded or reconstructed, and the volume root stamped in-use. Options
// select the degraded modes (ReadOnly, AllowSalvage); see MountReport for
// what the mount did. Behavioural Config fields (commit interval, cache
// size, mount workers) apply; layout fields come from the volume root page.
func Mount(d *disk.Disk, cfg Config, opts ...MountOption) (*Volume, MountReport, error) {
	var o mountOptions
	for _, opt := range opts {
		opt(&o)
	}
	var rep MountReport
	if o.readOnly {
		v, ms, err := mountReadOnly(d, cfg)
		rep.MountStats = ms
		return v, rep, err
	}
	v, ms, err := mountWritable(d, cfg)
	rep.MountStats = ms
	if err == nil || !o.allowSalvage {
		return v, rep, err
	}
	// A volume mid-salvage skips the read-only rung (which would refuse it
	// for the same reason) and resumes the salvage directly.
	if !errors.Is(err, ErrSalvageInProgress) {
		if rv, rms, rerr := mountReadOnly(d, cfg); rerr == nil {
			rep.MountStats = rms
			return rv, rep, nil
		}
	}
	sv, ss, serr := Salvage(d, cfg)
	rep.Salvage = &ss
	if serr != nil {
		return nil, rep, fmt.Errorf("core: mount failed (%v); salvage failed: %w", err, serr)
	}
	return sv, rep, nil
}
