package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/wal"
)

// MaxTransferSectors bounds a single disk request, as the real controller
// did; long reads and writes are issued in chunks of this many sectors.
const MaxTransferSectors = 64

// File is an open-file handle. Handles are invalidated by deleting the file;
// using a stale handle after the delete commits reads reallocated pages.
//
// A handle is safe for concurrent use: mu guards its entry snapshot and
// leader-verification flag, so operations on one handle serialize against
// each other while handles of different files (or even separate handles on
// the same file) proceed in parallel. Compound byte-level sequences
// (read-modify-write through ReadAt/WriteAt) are not transactional across
// concurrent users of the same handle.
type File struct {
	v *Volume

	mu             sync.Mutex
	e              Entry
	leaderVerified bool
}

// Entry returns a copy of the file's name-table entry as of open time.
func (f *File) Entry() Entry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e
}

// Size returns the file's byte size.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(f.e.ByteSize)
}

// Pages returns the number of data pages.
func (f *File) Pages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e.Pages()
}

// highestVersionLocked returns the newest version of name, 0 if none. The
// caller holds the monitor (either mode).
func (v *Volume) highestVersionLocked(name string) (uint32, error) {
	prefix := namePrefix(name)
	var highest uint32
	err := v.nt.Scan(prefix, func(k, _ []byte) bool {
		n, ver, ok := splitKey(k)
		if !ok || n != name {
			return false
		}
		highest = ver
		return true
	})
	v.cpu.Charge(sim.CostBTreeOp)
	return highest, err
}

// statLocked fetches an entry; version 0 means newest. The caller holds the
// monitor (either mode).
func (v *Volume) statLocked(name string, version uint32) (*Entry, error) {
	if version == 0 {
		var err error
		version, err = v.highestVersionLocked(name)
		if err != nil {
			return nil, err
		}
		if version == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	}
	val, err := v.nt.Get(entryKey(name, version))
	if errors.Is(err, btree.ErrNotFound) {
		return nil, fmt.Errorf("%w: %q!%d", ErrNotFound, name, version)
	}
	if err != nil {
		return nil, err
	}
	v.cpu.Charge(sim.CostBTreeOp)
	return decodeEntry(name, version, val)
}

// putEntryLocked writes an entry into the name table. The caller holds the
// monitor; the B-tree's own write lock serializes the update, so read-mode
// holders (a cached-file open refreshing LastUsed) may call it too.
func (v *Volume) putEntryLocked(e *Entry) error {
	v.cpu.Charge(sim.CostBTreeOp)
	return v.nt.Put(entryKey(e.Name, e.Version), encodeEntry(e))
}

// Create makes a new version of name holding data and returns an open
// handle. The create costs one synchronous I/O in the common case: the
// combined write of the leader page and the data ("a file create typically
// does one I/O synchronously"). The name-table update is buffered and
// logged asynchronously by group commit.
func (v *Volume) Create(name string, data []byte) (*File, error) {
	return v.createClass(name, data, Local, "")
}

// CreateCached makes a new version of name marked as a cached copy of a
// remote file.
func (v *Volume) CreateCached(name string, data []byte) (*File, error) {
	return v.createClass(name, data, Cached, "")
}

// CreateLink makes a new version of name that is a symbolic link to a
// remote file name. Links occupy no data pages.
func (v *Volume) CreateLink(name, target string) (*Entry, error) {
	f, err := v.createClass(name, nil, SymLink, target)
	if err != nil {
		return nil, err
	}
	return &f.e, nil
}

func (v *Volume) createClass(name string, data []byte, class Class, linkTarget string) (_ *File, err error) {
	defer v.span("create")(&err)
	if v.async() {
		return v.createClassAsync(name, data, class, linkTarget)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return nil, err
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	highest, err := v.highestVersionLocked(name)
	if err != nil {
		return nil, err
	}
	var keep uint16
	if highest > 0 {
		if prev, err := v.statLocked(name, highest); err == nil {
			keep = prev.Keep
		}
	}
	v.cpu.Charge(sim.CostFileCreate)
	e := &Entry{
		Name:       name,
		Version:    highest + 1,
		Class:      class,
		Keep:       keep,
		UID:        v.nextUID(),
		ByteSize:   uint64(len(data)),
		CreateTime: v.clk.Now(),
		LastUsed:   v.clk.Now(),
		LinkTarget: linkTarget,
	}
	if class != SymLink {
		pages := 1 + (len(data)+disk.SectorSize-1)/disk.SectorSize // leader + data
		v.vmMu.Lock()
		e.Runs, err = v.al.Alloc(pages)
		v.vmMu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	if err := v.putEntryLocked(e); err != nil {
		if e.Runs != nil {
			v.vmMu.Lock()
			v.al.FreeNow(e.Runs)
			v.vmMu.Unlock()
		}
		return nil, err
	}
	v.ops.creates.Add(1)
	if class != SymLink {
		leader := encodeLeader(e)
		if len(data) > 0 {
			if err := v.writeLeaderAndData(e, leader, data); err != nil {
				return nil, err
			}
		} else {
			// Empty file: the leader write is deferred — logged now,
			// written home by a later piggyback or third flush.
			addr, _ := e.LeaderAddr()
			v.lmu.Lock()
			v.pendingLeaders[addr] = leader
			v.lmu.Unlock()
			if _, err := v.log.Append(wal.PageImage{Kind: wal.KindLeader, Target: uint64(addr), Data: leader}); err != nil {
				return nil, err
			}
		}
	}
	if keep > 0 {
		if err := v.applyKeepLocked(name, e.Version, keep); err != nil {
			return nil, err
		}
	}
	return &File{v: v, e: *e, leaderVerified: true}, nil
}

// writeLeaderAndData writes the leader and the file contents. The leader and
// the first data chunk go out as one clustered transfer — the paper's "a
// file create typically does one I/O synchronously" — with the chunk no
// longer truncated at the leader boundary: a full MaxTransferSectors of data
// rides along with the leader, matching the WritePages joined write.
// Physically adjacent runs of a fragmented allocation are merged into single
// stretches, so the request count depends on the physical layout, not the
// run-table shape.
func (v *Volume) writeLeaderAndData(e *Entry, leader, data []byte) error {
	pages := (len(data) + disk.SectorSize - 1) / disk.SectorSize
	padded := make([]byte, pages*disk.SectorSize)
	copy(padded, data)
	v.cpu.Charge(time.Duration(pages+1) * sim.CostPerSectorCopy)
	type stretch struct{ start, n int }
	var stretches []stretch
	for _, r := range e.Runs {
		if k := len(stretches) - 1; k >= 0 && stretches[k].start+stretches[k].n == int(r.Start) {
			stretches[k].n += int(r.Len)
		} else {
			stretches = append(stretches, stretch{int(r.Start), int(r.Len)})
		}
	}
	written := 0 // data sectors written so far
	for si, s := range stretches {
		addr, n := s.start, s.n
		if si == 0 {
			// The stretch begins with the leader page; join it with the
			// first data chunk.
			addr++
			n--
			head := n
			if head > MaxTransferSectors {
				head = MaxTransferSectors
			}
			if head > pages-written {
				head = pages - written
			}
			joined := make([]byte, 0, (1+head)*disk.SectorSize)
			joined = append(joined, leader...)
			joined = append(joined, padded[written*disk.SectorSize:(written+head)*disk.SectorSize]...)
			if err := v.writeSectors(addr-1, joined); err != nil {
				return err
			}
			if v.dataCache != nil && head > 0 {
				v.dataCache.Update(addr, padded[written*disk.SectorSize:(written+head)*disk.SectorSize])
			}
			written += head
			addr += head
			n -= head
		}
		for n > 0 && written < pages {
			chunk := n
			if chunk > MaxTransferSectors {
				chunk = MaxTransferSectors
			}
			if chunk > pages-written {
				chunk = pages - written
			}
			buf := padded[written*disk.SectorSize : (written+chunk)*disk.SectorSize]
			if err := v.writeSectors(addr, buf); err != nil {
				return err
			}
			if v.dataCache != nil {
				v.dataCache.Update(addr, buf)
			}
			written += chunk
			addr += chunk
			n -= chunk
		}
		if written >= pages {
			break
		}
	}
	v.ops.writes.Add(1)
	return nil
}

// applyKeepLocked deletes versions older than newest-keep+1.
func (v *Volume) applyKeepLocked(name string, newest uint32, keep uint16) error {
	if uint32(keep) >= newest {
		return nil
	}
	cutoff := newest - uint32(keep) // delete versions <= cutoff
	var doomed []uint32
	prefix := namePrefix(name)
	err := v.nt.Scan(prefix, func(k, _ []byte) bool {
		n, ver, ok := splitKey(k)
		if !ok || n != name {
			return false
		}
		if ver <= cutoff {
			doomed = append(doomed, ver)
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, ver := range doomed {
		if err := v.deleteLocked(name, ver); err != nil {
			return err
		}
	}
	return nil
}

// Open returns a handle on a file; version 0 opens the newest. Opening a
// cached file updates its last-used time — the canonical group-commit
// hot-spot update. Open normally costs no I/O: all properties, including
// the run table, are in the (cached) name table.
func (v *Volume) Open(name string, version uint32) (_ *File, err error) {
	defer v.span("open")(&err)
	defer v.rlock()()
	if err := v.begin(); err != nil {
		return nil, err
	}
	// Read-your-writes through the intent queue: wait out any pending
	// intents on this name before consulting the tree.
	if err := v.waitName(name); err != nil {
		return nil, err
	}
	e, err := v.statLocked(name, version)
	if err != nil {
		return nil, err
	}
	if e.Class == SymLink {
		return nil, fmt.Errorf("%w: %q -> %q", ErrIsSymlink, name, e.LinkTarget)
	}
	v.ops.opens.Add(1)
	if e.Class == Cached {
		e.LastUsed = v.clk.Now()
		if v.async() {
			// The refresh rides the queue as a read-modify-write step, so
			// it can neither resurrect a concurrently deleted entry nor
			// clobber a newer queued update.
			it := &intent{op: "open-touch", steps: []intentStep{
				{op: stepTouch, key: entryKey(e.Name, e.Version), t: e.LastUsed},
			}}
			if _, err := v.enqueueIntent(it, e.Name); err != nil {
				return nil, err
			}
		} else if err := v.putEntryLocked(e); err != nil {
			return nil, err
		}
	}
	return &File{v: v, e: *e}, nil
}

// Stat returns a file's entry without opening it; version 0 = newest.
func (v *Volume) Stat(name string, version uint32) (_ *Entry, err error) {
	defer v.span("stat")(&err)
	defer v.rlock()()
	if err := v.begin(); err != nil {
		return nil, err
	}
	if err := v.waitName(name); err != nil {
		return nil, err
	}
	return v.statLocked(name, version)
}

// Touch updates a file's last-used time (the property update the paper uses
// as its one-page log record example).
func (v *Volume) Touch(name string, version uint32) (err error) {
	defer v.span("touch")(&err)
	if v.async() {
		return v.touchAsync(name, version)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	e, err := v.statLocked(name, version)
	if err != nil {
		return err
	}
	e.LastUsed = v.clk.Now()
	v.ops.touches.Add(1)
	return v.putEntryLocked(e)
}

// SetKeep sets the keep count on the newest version of name; it takes
// effect at the next create.
func (v *Volume) SetKeep(name string, keep uint16) (err error) {
	defer v.span("setkeep")(&err)
	if v.async() {
		return v.setKeepAsync(name, keep)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	e, err := v.statLocked(name, 0)
	if err != nil {
		return err
	}
	e.Keep = keep
	return v.putEntryLocked(e)
}

// Delete removes a file version (0 = newest). Its pages become allocatable
// when the deletion commits — at the next log force.
func (v *Volume) Delete(name string, version uint32) (err error) {
	defer v.span("delete")(&err)
	if v.async() {
		return v.deleteAsync(name, version)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	if version == 0 {
		var err error
		version, err = v.highestVersionLocked(name)
		if err != nil {
			return err
		}
		if version == 0 {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	}
	v.ops.deletes.Add(1)
	return v.deleteLocked(name, version)
}

func (v *Volume) deleteLocked(name string, version uint32) error {
	e, err := v.statLocked(name, version)
	if err != nil {
		return err
	}
	v.cpu.Charge(sim.CostBTreeOp)
	if err := v.nt.Delete(entryKey(name, version)); err != nil {
		return err
	}
	if len(e.Runs) > 0 {
		// Defer the free to the commit of the batch carrying this
		// deletion (freeOnCommit tags it after the Delete staged its
		// images above).
		v.freeOnCommit(e.Runs)
		// Drop cached data frames: the sectors may be reallocated to
		// another file after the commit, and a stale hit would serve the
		// deleted file's bytes.
		v.invalidateData(e.Runs)
		// Cancel any deferred leader write: the sectors may be
		// reallocated after the commit.
		addr, _ := e.LeaderAddr()
		v.lmu.Lock()
		delete(v.pendingLeaders, addr)
		delete(v.leaderThird, addr)
		v.lmu.Unlock()
	}
	return nil
}

// List calls fn for every entry whose name starts with prefix, in name then
// version order, until fn returns false. Properties need no extra I/O:
// "there is no need for a disk read for the properties since they are
// already available in the file name table."
func (v *Volume) List(prefix string, fn func(Entry) bool) (err error) {
	defer v.span("list")(&err)
	defer v.rlock()()
	if err := v.begin(); err != nil {
		return err
	}
	// A scan must see a consistent prefix of the mutation history: wait
	// out pending intents under the prefix's directory before walking.
	if err := v.waitPrefix(prefix); err != nil {
		return err
	}
	v.ops.lists.Add(1)
	stop := errors.New("stop")
	err = v.nt.Scan([]byte(prefix), func(k, val []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			return false
		}
		e, err := decodeEntry(name, ver, val)
		if err != nil {
			return true
		}
		v.cpu.Charge(sim.CostBTreeOp / 8)
		return fn(*e)
	})
	if errors.Is(err, stop) {
		return nil
	}
	return err
}

// ReadPages reads n data pages starting at logical page `page`. The first
// access to a file verifies the leader by piggybacking its read onto the
// data transfer: "the leader page is the previous physical page on the
// disk... it usually costs only the transfer time for a page".
func (f *File) ReadPages(page, n int) (_ []byte, err error) {
	v := f.v
	defer v.span("read")(&err)
	defer v.rlock()()
	if err := v.begin(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if page < 0 || n <= 0 || page+n > f.e.Pages() {
		return nil, fmt.Errorf("core: read [%d,%d) outside %q!%d (%d pages)", page, page+n, f.e.Name, f.e.Version, f.e.Pages())
	}
	v.ops.reads.Add(1)
	if v.dataCache != nil {
		return f.readPagesCached(page, n)
	}
	out := make([]byte, 0, n*disk.SectorSize)
	remaining := n
	cur := page
	for remaining > 0 {
		addr, cnt, err := f.e.ContiguousFrom(cur, remaining)
		if err != nil {
			return nil, err
		}
		if cnt > MaxTransferSectors {
			cnt = MaxTransferSectors
		}
		leaderAddr, _ := f.e.LeaderAddr()
		if !f.leaderVerified && cur == page && addr == leaderAddr+1 {
			// Piggyback the leader read on the first data access.
			buf, err := v.readSectorsRetry(addr-1, cnt+1)
			if err != nil {
				return nil, err
			}
			if lerr := f.verifyLeaderBuf(buf[:disk.SectorSize]); lerr != nil {
				return nil, lerr
			}
			out = append(out, buf[disk.SectorSize:]...)
		} else {
			buf, err := v.readSectorsRetry(addr, cnt)
			if err != nil {
				return nil, err
			}
			out = append(out, buf...)
		}
		v.cpu.Charge(time.Duration(cnt) * sim.CostPerSectorCopy)
		cur += cnt
		remaining -= cnt
	}
	return out, nil
}

// readPagesCached is the buffer-cache read path: each chunk is looked up in
// the data cache first; misses are filled by a single clustered transfer
// that merges physically adjacent runs (Entry.PhysContiguousFrom) and, when
// the miss continues a detected sequential stream, extends through the
// contiguous stretch by up to the read-ahead budget. Fills are write-through
// partners of WritePages' Update calls and are guarded against concurrent
// invalidation by the cache generation counter. The caller holds the monitor
// in read mode and f.mu, and has validated [page, page+n).
func (f *File) readPagesCached(page, n int) ([]byte, error) {
	v := f.v
	dc := v.dataCache
	pages := f.e.Pages()
	out := make([]byte, 0, n*disk.SectorSize)
	remaining := n
	cur := page
	for remaining > 0 {
		want := remaining
		if want > MaxTransferSectors {
			want = MaxTransferSectors
		}
		addr, cnt, merged, err := f.e.PhysContiguousFrom(cur, want)
		if err != nil {
			return nil, err
		}
		leaderAddr, _ := f.e.LeaderAddr()
		needLeader := !f.leaderVerified && cur == page && addr == leaderAddr+1
		if !needLeader {
			if buf, ok := dc.GetRange(addr, cnt); ok {
				v.traceData(true, addr, cnt)
				out = append(out, buf...)
				v.cpu.Charge(time.Duration(cnt) * sim.CostPerSectorCopy)
				cur += cnt
				remaining -= cnt
				continue
			}
			v.traceData(false, addr, cnt)
		}
		// Miss: cluster the fetch. If this miss continues a sequential
		// stream, extend it through the physically contiguous stretch by
		// up to the read-ahead budget — never past the transfer cap or
		// the end of the file.
		fetch := cnt
		if ra := v.cfg.readAhead(); ra > 0 && dc.Sequential(addr) {
			max := cnt + ra
			if max > MaxTransferSectors {
				max = MaxTransferSectors
			}
			if left := pages - cur; max > left {
				max = left
			}
			if max > cnt {
				if _, stretch, m, err := f.e.PhysContiguousFrom(cur, max); err == nil && stretch > fetch {
					fetch = stretch
					merged = m
				}
			}
		}
		gen := dc.Gen()
		var buf []byte
		if needLeader {
			// Piggyback the leader read on the first data access.
			raw, err := v.readSectorsRetry(addr-1, fetch+1)
			if err != nil {
				return nil, err
			}
			if lerr := f.verifyLeaderBuf(raw[:disk.SectorSize]); lerr != nil {
				return nil, lerr
			}
			buf = raw[disk.SectorSize:]
		} else {
			buf, err = v.readSectorsRetry(addr, fetch)
			if err != nil {
				return nil, err
			}
		}
		dc.PutRange(addr, buf, gen)
		dc.NoteFill(addr, fetch)
		if fetch > cnt {
			dc.NoteReadAhead(fetch - cnt)
			v.traceReadAhead(addr, fetch-cnt)
		}
		if merged > 0 {
			dc.NoteCoalescedRead()
			v.traceCoalesce("read", addr, fetch, merged)
		}
		out = append(out, buf[:cnt*disk.SectorSize]...)
		v.cpu.Charge(time.Duration(fetch) * sim.CostPerSectorCopy)
		cur += cnt
		remaining -= cnt
	}
	return out, nil
}

// verifyLeaderBuf checks a freshly read leader page; the caller holds the
// monitor (either mode) and f.mu. A pending (not yet home-written) leader
// is verified from memory instead.
func (f *File) verifyLeaderBuf(buf []byte) error {
	addr, _ := f.e.LeaderAddr()
	f.v.lmu.Lock()
	if pending, ok := f.v.pendingLeaders[addr]; ok {
		buf = pending
	}
	f.v.lmu.Unlock()
	if err := verifyLeader(buf, &f.e); err != nil {
		return err
	}
	f.leaderVerified = true
	return nil
}

// ReadAll returns the whole file contents, trimmed to its byte size.
func (f *File) ReadAll() ([]byte, error) {
	if f.Pages() == 0 {
		return nil, nil
	}
	buf, err := f.ReadPages(0, f.Pages())
	if err != nil {
		return nil, err
	}
	return buf[:f.Size()], nil
}

// WritePages overwrites n = len(data)/512 data pages starting at `page`.
// If the file's leader page is still pending, the write to page 0 carries
// it along for free. Data writes share the monitor: they touch no
// name-table state, and the deferred-leader maps are guarded by their own
// lock. (A delete of the same file takes the monitor exclusively, so a
// handle's pages cannot be freed mid-write.)
func (f *File) WritePages(page int, data []byte) (err error) {
	v := f.v
	defer v.span("write")(&err)
	defer v.rlock()()
	if err := v.beginMutate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(data)%disk.SectorSize != 0 {
		return fmt.Errorf("core: write of %d bytes not page-aligned", len(data))
	}
	n := len(data) / disk.SectorSize
	if page < 0 || n <= 0 || page+n > f.e.Pages() {
		return fmt.Errorf("core: write [%d,%d) outside %q!%d", page, page+n, f.e.Name, f.e.Version)
	}
	v.ops.writes.Add(1)
	written := 0
	cur := page
	for written < n {
		want := n - written
		if want > MaxTransferSectors {
			want = MaxTransferSectors
		}
		var addr, cnt, merged int
		var err error
		if v.dataCache != nil {
			// Cluster across physically adjacent runs, as the read path
			// does, so a fragmented file still writes in few transfers.
			addr, cnt, merged, err = f.e.PhysContiguousFrom(cur, want)
		} else {
			addr, cnt, err = f.e.ContiguousFrom(cur, want)
		}
		if err != nil {
			return err
		}
		chunk := data[written*disk.SectorSize : (written+cnt)*disk.SectorSize]
		leaderAddr, _ := f.e.LeaderAddr()
		v.lmu.Lock()
		pending, havePending := v.pendingLeaders[leaderAddr]
		v.lmu.Unlock()
		if havePending && cur == page && addr == leaderAddr+1 {
			joined := make([]byte, 0, len(chunk)+disk.SectorSize)
			joined = append(joined, pending...)
			joined = append(joined, chunk...)
			if err := v.writeSectors(addr-1, joined); err != nil {
				return err
			}
			// A concurrent third-crossing flush may have written the
			// same leader bytes home meanwhile — benign; deleting an
			// already-removed entry is a no-op.
			v.lmu.Lock()
			delete(v.pendingLeaders, leaderAddr)
			delete(v.leaderThird, leaderAddr)
			v.lmu.Unlock()
			f.leaderVerified = true
		} else {
			if err := v.writeSectors(addr, chunk); err != nil {
				return err
			}
		}
		if v.dataCache != nil {
			// Write-through: refresh any cached frames so later reads see
			// the new bytes. The disk write above already happened, so
			// durability does not depend on the cache at all.
			v.dataCache.Update(addr, chunk)
			if merged > 0 {
				v.dataCache.NoteCoalescedWrite()
				v.traceCoalesce("write", addr, cnt, merged)
			}
		}
		v.cpu.Charge(time.Duration(cnt) * sim.CostPerSectorCopy)
		cur += cnt
		written += cnt
	}
	return nil
}

// Extend grows the file by morePages data pages, allocating new runs and
// updating the name-table entry (a logged metadata operation, no
// synchronous I/O).
func (f *File) Extend(morePages int) (err error) {
	v := f.v
	defer v.span("extend")(&err)
	if v.async() {
		return f.extendAsync(morePages)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	v.vmMu.Lock()
	runs, err := v.al.Alloc(morePages)
	v.vmMu.Unlock()
	if err != nil {
		return err
	}
	e := f.e
	e.Runs = append(append([]alloc.Run(nil), e.Runs...), runs...)
	if err := v.putEntryLocked(&e); err != nil {
		v.vmMu.Lock()
		v.al.FreeNow(runs)
		v.vmMu.Unlock()
		return err
	}
	f.e = e
	return v.stageLeader(&e)
}

// Contract trims the file to newPages data pages; the freed tail becomes
// allocatable at the next commit.
func (f *File) Contract(newPages int) (err error) {
	v := f.v
	defer v.span("contract")(&err)
	if v.async() {
		return f.contractAsync(newPages)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if newPages < 0 || newPages > f.e.Pages() {
		return fmt.Errorf("core: contract to %d pages of %d", newPages, f.e.Pages())
	}
	keepSectors := newPages + 1 // leader stays
	e := f.e
	var kept []alloc.Run
	var freed []alloc.Run
	for _, r := range e.Runs {
		if keepSectors >= int(r.Len) {
			kept = append(kept, r)
			keepSectors -= int(r.Len)
		} else if keepSectors > 0 {
			kept = append(kept, alloc.Run{Start: r.Start, Len: uint32(keepSectors)})
			freed = append(freed, alloc.Run{Start: r.Start + uint32(keepSectors), Len: r.Len - uint32(keepSectors)})
			keepSectors = 0
		} else {
			freed = append(freed, r)
		}
	}
	e.Runs = kept
	if e.ByteSize > uint64(newPages*disk.SectorSize) {
		e.ByteSize = uint64(newPages * disk.SectorSize)
	}
	if err := v.putEntryLocked(&e); err != nil {
		return err
	}
	v.freeOnCommit(freed)
	v.invalidateData(freed)
	f.e = e
	return v.stageLeader(&e)
}

// SetByteSize records a new byte size (within the allocated pages).
func (f *File) SetByteSize(n uint64) (err error) {
	v := f.v
	defer v.span("setbytesize")(&err)
	if v.async() {
		return f.setByteSizeAsync(n)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > uint64(f.e.Pages())*disk.SectorSize {
		return fmt.Errorf("core: byte size %d exceeds %d allocated pages", n, f.e.Pages())
	}
	e := f.e
	e.ByteSize = n
	if err := v.putEntryLocked(&e); err != nil {
		return err
	}
	f.e = e
	return nil
}
