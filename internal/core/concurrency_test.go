package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// newTestVolumeCfg is newTestVolume with a config override.
func newTestVolumeCfg(t *testing.T, cfg Config) (*Volume, *disk.Disk, *sim.VirtualClock) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return v, d, clk
}

// TestConcurrentMixedOps runs the full operation mix — opens, reads, stats,
// lists, creates, writes, deletes, touches, forces, commit waits — from
// many goroutines, in both monitor modes, and then audits the volume. Under
// `go test -race ./internal/core` this is the main proof that the split
// monitor (shared read path, per-handle locks, lmu/vmMu side locks) has no
// data races.
func TestConcurrentMixedOps(t *testing.T) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"SplitMonitor", false}, {"SerialMonitor", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.SerialMonitor = mode.serial
			v, _, _ := newTestVolumeCfg(t, cfg)

			// Shared read-mostly population.
			const shared = 24
			sharedData := make([][]byte, shared)
			for i := 0; i < shared; i++ {
				sharedData[i] = payload(300+7*i, byte(i))
				if _, err := v.Create(fmt.Sprintf("shared/f%03d", i), sharedData[i]); err != nil {
					t.Fatalf("populate: %v", err)
				}
			}

			const workers = 8
			const iters = 60
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						k := (w*13 + i) % shared
						switch i % 6 {
						case 0: // open + read a shared file
							f, err := v.Open(fmt.Sprintf("shared/f%03d", k), 0)
							if err != nil {
								errs <- fmt.Errorf("w%d open: %w", w, err)
								return
							}
							got, err := f.ReadAll()
							if err != nil || !bytes.Equal(got, sharedData[k]) {
								errs <- fmt.Errorf("w%d read shared/f%03d: %v", w, k, err)
								return
							}
						case 1: // stat + list
							if _, err := v.Stat(fmt.Sprintf("shared/f%03d", k), 0); err != nil {
								errs <- fmt.Errorf("w%d stat: %w", w, err)
								return
							}
							n := 0
							if err := v.List("shared/", func(Entry) bool { n++; return n < 10 }); err != nil {
								errs <- fmt.Errorf("w%d list: %w", w, err)
								return
							}
						case 2: // private create + readback
							name := fmt.Sprintf("priv/w%d-%03d", w, i)
							data := payload(128+i, byte(w*16+i))
							f, err := v.Create(name, data)
							if err != nil {
								errs <- fmt.Errorf("w%d create: %w", w, err)
								return
							}
							got, err := f.ReadAll()
							if err != nil || !bytes.Equal(got, data) {
								errs <- fmt.Errorf("w%d readback: %v", w, err)
								return
							}
						case 3: // overwrite a private page
							name := fmt.Sprintf("priv/w%d-%03d", w, i-1)
							if f, err := v.Open(name, 0); err == nil && f.Pages() > 0 {
								buf := payload(disk.SectorSize, byte(i))
								if err := f.WritePages(0, buf); err != nil {
									errs <- fmt.Errorf("w%d write: %w", w, err)
									return
								}
							}
						case 4: // delete an older private file
							name := fmt.Sprintf("priv/w%d-%03d", w, i-2)
							if _, err := v.Stat(name, 0); err == nil {
								if err := v.Delete(name, 0); err != nil {
									errs <- fmt.Errorf("w%d delete: %w", w, err)
									return
								}
							}
						case 5: // touch + commit wait
							if err := v.Touch(fmt.Sprintf("shared/f%03d", k), 0); err != nil {
								errs <- fmt.Errorf("w%d touch: %w", w, err)
								return
							}
							if err := v.WaitCommitted(v.CommitSeq()); err != nil {
								errs <- fmt.Errorf("w%d wait: %w", w, err)
								return
							}
						}
					}
					errs <- nil
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			st, err := v.Verify()
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if len(st.Problems) != 0 {
				t.Fatalf("Verify problems: %v", st.Problems)
			}
			ops := v.Stats().Ops
			if ops.Opens == 0 || ops.Creates == 0 || ops.Deletes == 0 || ops.Reads == 0 {
				t.Fatalf("op counters incomplete: %+v", ops)
			}
			if err := v.Shutdown(); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
		})
	}
}

// TestWaitCommittedDurability is the pipelined commit's fsync contract:
// after WaitCommitted(CommitSeq()) returns, a crash must not lose the
// staged metadata, even though the create itself never forced the log.
func TestWaitCommittedDurability(t *testing.T) {
	v, d, _ := newTestVolume(t)
	data := payload(900, 3)
	if _, err := v.Create("durable/one", data); err != nil {
		t.Fatalf("Create: %v", err)
	}
	seq := v.CommitSeq()
	if committed := v.Log().Committed(); committed >= seq {
		t.Fatalf("create already durable (committed %d >= seq %d): nothing pipelined", committed, seq)
	}
	if err := v.WaitCommitted(seq); err != nil {
		t.Fatalf("WaitCommitted: %v", err)
	}
	if committed := v.Log().Committed(); committed < seq {
		t.Fatalf("WaitCommitted returned at committed %d < seq %d", committed, seq)
	}
	// Idempotent on an already-durable sequence.
	if err := v.WaitCommitted(seq); err != nil {
		t.Fatalf("second WaitCommitted: %v", err)
	}
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	f, err := v2.Open("durable/one", 0)
	if err != nil {
		t.Fatalf("file lost after crash despite WaitCommitted: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("content lost after crash: %v", err)
	}
}

// TestParallelMountEquivalence crashes a populated volume, clones the dead
// disk, and recovers one copy sequentially and one with an 8-way mount.
// The two recovered volumes must be indistinguishable — same entries, same
// contents, clean Verify — while the parallel mount's VAM scan finishes
// sooner on the virtual clock (same leaf reads, decode CPU divided).
func TestParallelMountEquivalence(t *testing.T) {
	v, d, _ := newTestVolume(t)
	var names []string
	for i := 0; i < 90; i++ {
		name := fmt.Sprintf("dir%d/file%03d", i%7, i)
		if _, err := v.Create(name, payload(200+13*i, byte(i))); err != nil {
			t.Fatalf("Create: %v", err)
		}
		names = append(names, name)
	}
	for i := 0; i < 30; i += 3 {
		if err := v.Delete(names[i], 0); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := v.Force(); err != nil {
		t.Fatalf("Force: %v", err)
	}
	v.Crash()
	d.Revive()

	img := filepath.Join(t.TempDir(), "crashed.img")
	if err := d.SaveImage(img); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	clk8 := sim.NewVirtualClock()
	d8, err := disk.LoadImage(img, disk.DefaultParams, clk8)
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}

	seqCfg := testConfig()
	v1, ms1, err := Mount(d, seqCfg)
	if err != nil {
		t.Fatalf("sequential Mount: %v", err)
	}
	parCfg := testConfig()
	parCfg.MountWorkers = 8
	v8, ms8, err := Mount(d8, parCfg)
	if err != nil {
		t.Fatalf("parallel Mount: %v", err)
	}
	if !ms1.VAMReconstructed || !ms8.VAMReconstructed {
		t.Fatalf("expected VAM reconstruction on both mounts: %+v %+v", ms1, ms8)
	}
	if ms8.VAMElapsed >= ms1.VAMElapsed {
		t.Fatalf("parallel VAM scan not faster: %v (8 workers) vs %v (sequential)", ms8.VAMElapsed, ms1.VAMElapsed)
	}

	collect := func(v *Volume) map[string]Entry {
		m := make(map[string]Entry)
		if err := v.List("", func(e Entry) bool {
			m[fmt.Sprintf("%s!%d", e.Name, e.Version)] = e
			return true
		}); err != nil {
			t.Fatalf("List: %v", err)
		}
		return m
	}
	e1, e8 := collect(v1), collect(v8)
	if len(e1) == 0 || len(e1) != len(e8) {
		t.Fatalf("entry sets differ: %d vs %d", len(e1), len(e8))
	}
	for k, a := range e1 {
		b, ok := e8[k]
		if !ok {
			t.Fatalf("entry %s missing from parallel mount", k)
		}
		if a.UID != b.UID || a.ByteSize != b.ByteSize || len(a.Runs) != len(b.Runs) {
			t.Fatalf("entry %s differs: %+v vs %+v", k, a, b)
		}
		f1, err1 := v1.Open(a.Name, a.Version)
		f8, err8 := v8.Open(b.Name, b.Version)
		if err1 != nil || err8 != nil {
			t.Fatalf("open %s: %v / %v", k, err1, err8)
		}
		c1, err1 := f1.ReadAll()
		c8, err8 := f8.ReadAll()
		if err1 != nil || err8 != nil || !bytes.Equal(c1, c8) {
			t.Fatalf("content of %s differs after recovery: %v / %v", k, err1, err8)
		}
	}
	for _, vv := range []*Volume{v1, v8} {
		st, err := vv.Verify()
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if len(st.Problems) != 0 {
			t.Fatalf("Verify problems: %v", st.Problems)
		}
	}
}
