package core

import (
	"sort"

	"repro/internal/disk"
	"repro/internal/vam"
	"repro/internal/wal"
)

// VAM logging — the extension the paper considered and rejected as "a
// complicated modification": log changes to the allocation map alongside
// the name-table images, so crash recovery can skip the ~20-second
// name-table scan and restart in about two seconds.
//
// Mechanics: a tracker on the VAM records which 512-byte sectors of the
// save-area bitmap have changed; at every log force, images of the dirty
// sectors join the batch (via the WAL's PreStage hook), so a commit's
// allocation deltas are exactly as durable as its name-table updates. The
// save area is written in full (with its validity stamp) at format and
// mount, and individual logged sectors are flushed home by the same
// thirds protocol as name-table pages. After a crash, recovery applies the
// logged sector images over the save-area base and loads the result — no
// scan.
//
// Asymmetry note: a delete's pages move from the shadow bitmap to the free
// bitmap in the commit callback, *after* its force, so their VAM delta
// rides the next force. A crash in between leaks those pages until the
// next full save or reconstruction — safe (the map is conservative),
// exactly the hint semantics the VAM always had.

// vamSector is the logging state of one save-area bitmap sector.
type vamSector struct {
	logged []byte // snapshot equal to the newest logged image
	third  int
}

// enableVAMLogging installs the tracker and WAL hooks. Call after the VAM
// and log exist and the initial full save has been written.
func (v *Volume) enableVAMLogging() {
	v.vamDirty = make(map[int]bool)
	v.vamSectors = make(map[int]*vamSector)
	// The tracker fires from inside VAM mutations, whose callers already
	// hold vmMu — it must not lock anything itself.
	v.vm.Tracker = func(p, count int) {
		lo := vam.BitmapSectorOfPage(p)
		hi := vam.BitmapSectorOfPage(p + count - 1)
		for s := lo; s <= hi; s++ {
			v.vamDirty[s] = true
		}
	}
	// PreStage runs on the force path under forceMu, concurrently with
	// staging operations that mutate the VAM, so it snapshots the dirty
	// set and sector contents under vmMu.
	v.log.PreStage = func() []wal.PageImage {
		v.vmMu.Lock()
		defer v.vmMu.Unlock()
		if len(v.vamDirty) == 0 {
			return nil
		}
		idxs := make([]int, 0, len(v.vamDirty))
		for s := range v.vamDirty {
			idxs = append(idxs, s)
		}
		sort.Ints(idxs)
		images := make([]wal.PageImage, 0, len(idxs))
		for _, s := range idxs {
			buf := make([]byte, disk.SectorSize)
			v.vm.EncodeBitmapSector(s, buf)
			images = append(images, wal.PageImage{Kind: wal.KindVAM, Target: uint64(s), Data: buf})
		}
		v.vamDirty = make(map[int]bool)
		return images
	}
}

// onVAMLogged records a logged bitmap sector (from the WAL's OnLogged,
// under forceMu — vamSectors is only ever touched on the force path). The
// snapshot copies the image bytes that were actually written to the log:
// with pipelined commit the live VAM may already be newer.
func (v *Volume) onVAMLogged(target uint64, third int, data []byte) {
	if v.vamSectors == nil {
		return
	}
	s, ok := v.vamSectors[int(target)]
	if !ok {
		s = &vamSector{}
		v.vamSectors[int(target)] = s
	}
	if s.logged == nil {
		s.logged = make([]byte, disk.SectorSize)
	}
	copy(s.logged, data)
	s.third = third
}

// flushVAMSectors writes home logged bitmap sectors whose third is being
// overwritten.
func (v *Volume) flushVAMSectors(third int) (int, error) {
	n := 0
	for idx, s := range v.vamSectors {
		if s.third != third {
			continue
		}
		if err := v.writeSectors(v.lay.vamBase+1+idx, s.logged); err != nil {
			return n, err
		}
		delete(v.vamSectors, idx)
		n++
	}
	return n, nil
}

// recoverVAMFromLog applies replayed bitmap-sector images over the save
// area and loads the result. It returns (vam, true) on success; on any
// damage the caller falls back to reconstruction.
func (v *Volume) recoverVAMFromLog(images map[int][]byte) (*vam.VAM, bool) {
	idxs := make([]int, 0, len(images))
	for s := range images {
		idxs = append(idxs, s)
	}
	sort.Ints(idxs)
	for _, s := range idxs {
		if err := v.writeSectors(v.lay.vamBase+1+s, images[s]); err != nil {
			return nil, false
		}
	}
	vm, err := vam.LoadLoose(v.d, v.lay.vamBase, v.lay.total)
	if err != nil {
		return nil, false
	}
	return vm, true
}
