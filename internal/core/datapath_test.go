package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// growFile builds an Extend-grown file: many short runs that are physically
// adjacent on disk (fresh volume, first-fit allocator), filled with data.
func growFile(t *testing.T, v *Volume, name string, pages int) *File {
	t.Helper()
	f, err := v.Create(name, payload(disk.SectorSize, 3))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for f.Pages() < pages {
		if err := f.Extend(8); err != nil {
			t.Fatalf("Extend: %v", err)
		}
	}
	if err := f.WritePages(0, payload(f.Pages()*disk.SectorSize, 5)); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	if err := v.Force(); err != nil {
		t.Fatalf("Force: %v", err)
	}
	return f
}

// seqReads reads the file sequentially in 8-page chunks and returns the disk
// read requests issued in the window.
func seqReads(t *testing.T, v *Volume, d *disk.Disk, f *File) int {
	t.Helper()
	// Verify the leader outside the window, then start from cold caches.
	if _, err := f.ReadPages(0, 1); err != nil {
		t.Fatalf("warm read: %v", err)
	}
	v.DropCaches()
	before := d.Stats()
	for p := 0; p < f.Pages(); p += 8 {
		n := 8
		if p+n > f.Pages() {
			n = f.Pages() - p
		}
		if _, err := f.ReadPages(p, n); err != nil {
			t.Fatalf("ReadPages(%d,%d): %v", p, n, err)
		}
	}
	return d.Stats().Sub(before).Reads
}

// TestSequentialReadCoalescing is the ISSUE's headline criterion: a
// sequential scan of a multi-run file must issue at least 4x fewer disk
// read requests with the cache than the raw per-run path.
func TestSequentialReadCoalescing(t *testing.T) {
	run := func(cachePages int) int {
		clk := sim.NewVirtualClock()
		d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig()
		cfg.DataCachePages = cachePages
		v, err := Format(d, cfg)
		if err != nil {
			t.Fatalf("Format: %v", err)
		}
		f := growFile(t, v, "seq/big", 200)
		if len(f.Entry().Runs) < 10 {
			t.Fatalf("file has only %d runs; want a fragmented run table", len(f.Entry().Runs))
		}
		return seqReads(t, v, d, f)
	}
	raw := run(-1)
	cached := run(0)
	t.Logf("sequential scan: %d raw read requests, %d cached", raw, cached)
	if cached == 0 || raw < 4*cached {
		t.Fatalf("cached path issued %d read requests vs %d raw; want >= 4x reduction", cached, raw)
	}
}

// TestRereadHitRate: after one warming pass, repeated whole-file reads must
// be served from the cache — >= 90% hit rate and zero disk reads in the
// measurement window.
func TestRereadHitRate(t *testing.T) {
	v, d, _ := newTestVolume(t)
	f, err := v.Create("hot", payload(64*disk.SectorSize, 9))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.ReadAll(); err != nil {
		t.Fatalf("warm ReadAll: %v", err)
	}
	before := v.Stats()
	for i := 0; i < 10; i++ {
		if _, err := f.ReadAll(); err != nil {
			t.Fatalf("ReadAll %d: %v", i, err)
		}
	}
	after := v.Stats()
	if reads := after.Disk.Sub(before.Disk).Reads; reads != 0 {
		t.Errorf("re-reads issued %d disk reads; want 0", reads)
	}
	hits := after.Cache.Data.Hits - before.Cache.Data.Hits
	misses := after.Cache.Data.Misses - before.Cache.Data.Misses
	if hits+misses == 0 {
		t.Fatal("no data-cache activity recorded")
	}
	rate := float64(hits) / float64(hits+misses)
	t.Logf("re-read window: %d hits, %d misses (%.0f%%)", hits, misses, rate*100)
	if rate < 0.9 {
		t.Fatalf("re-read hit rate %.0f%%; want >= 90%%", rate*100)
	}
	_ = d
}

// TestOverwriteVisibleThroughCache: a write must update (not stale-hit) any
// cached frames of the overwritten pages.
func TestOverwriteVisibleThroughCache(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("over", payload(16*disk.SectorSize, 1))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.ReadAll(); err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	next := payload(16*disk.SectorSize, 77)
	if err := f.WritePages(0, next); err != nil {
		t.Fatalf("WritePages: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, next) {
		t.Fatal("read after overwrite returned stale cached data")
	}
}

// TestDeleteInvalidatesDataCache: after a delete commits and the sectors are
// reallocated to a new file, reads of the new file must not see the old
// file's cached frames.
func TestDeleteInvalidatesDataCache(t *testing.T) {
	v, _, _ := newTestVolume(t)
	a, err := v.Create("reuse/a", payload(32*disk.SectorSize, 10))
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	aRuns := a.Entry().Runs
	if _, err := a.ReadAll(); err != nil {
		t.Fatalf("ReadAll a: %v", err)
	}
	if err := v.Delete("reuse/a", 0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := v.Force(); err != nil {
		t.Fatalf("Force: %v", err)
	}
	bData := payload(32*disk.SectorSize, 200)
	b, err := v.Create("reuse/b", bData)
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	// First-fit from the bottom: b must land on a's freed sectors, or the
	// test is not exercising reuse.
	if b.Entry().Runs[0].Start != aRuns[0].Start {
		t.Fatalf("b allocated at %d, want a's freed sectors at %d", b.Entry().Runs[0].Start, aRuns[0].Start)
	}
	got, err := b.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll b: %v", err)
	}
	if !bytes.Equal(got, bData) {
		t.Fatal("read of reallocated sectors returned the deleted file's cached data")
	}
}

// TestDamageInvalidatesDataCache: injected damage must evict cached frames
// so scrub-style reads see the disk, not a stale copy of lost bytes.
func TestDamageInvalidatesDataCache(t *testing.T) {
	v, d, _ := newTestVolume(t)
	f, err := v.Create("dmg", payload(8*disk.SectorSize, 4))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.ReadAll(); err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	e := f.Entry()
	addr, err := e.DataAddr(2)
	if err != nil {
		t.Fatal(err)
	}
	d.CorruptSectors(addr, 1)
	if _, err := f.ReadAll(); err == nil {
		t.Fatal("read of corrupted sector succeeded — served from stale cache")
	}
}

// TestDataCacheDisabled: a negative DataCachePages must run the raw path
// with no cache counters.
func TestDataCacheDisabled(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.DataCachePages = -1
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	data := payload(16*disk.SectorSize, 6)
	f, err := v.Create("nocache", data)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	dc := v.Stats().Cache.Data
	if dc.Capacity != 0 || dc.Hits != 0 || dc.Misses != 0 {
		t.Fatalf("disabled cache reported activity: %+v", dc)
	}
}

// TestCachedReadsRaceWrites hammers cached reads against concurrent
// overwrites and a delete/recreate of a sibling file. Run under -race this
// checks the per-frame locking; the final content check catches stale fills
// racing the write-through updates.
func TestCachedReadsRaceWrites(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("race/target", payload(64*disk.SectorSize, 1))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const iters = 150
	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := f.ReadPages((r*13+i*7)%56, 8); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := f.WritePages((i*11)%48, payload(16*disk.SectorSize, byte(i))); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
		errCh <- nil
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			name := fmt.Sprintf("race/churn%d", i%3)
			if _, err := v.Create(name, payload(8*disk.SectorSize, byte(i))); err != nil {
				errCh <- fmt.Errorf("churn create: %w", err)
				return
			}
			if err := v.Delete(name, 0); err != nil {
				errCh <- fmt.Errorf("churn delete: %w", err)
				return
			}
		}
		errCh <- nil
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	final := payload(64*disk.SectorSize, 123)
	if err := f.WritePages(0, final); err != nil {
		t.Fatalf("final write: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatalf("final ReadAll: %v", err)
	}
	if !bytes.Equal(got, final) {
		t.Fatal("final read disagrees with last write: stale cache frame survived the race")
	}
}
