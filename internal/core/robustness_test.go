package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestCrashPointSweep injects a device halt after every k-th disk write
// during a mixed metadata workload, recovers, and verifies the paper's
// central guarantee at every crash point: the name table is structurally
// intact (no scavenge ever needed) and every file committed by the last
// force before the crash is present with correct contents.
func TestCrashPointSweep(t *testing.T) {
	// First run the workload uncrashed to learn the total write count.
	totalWrites := func() int {
		clk := sim.NewVirtualClock()
		d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		v, err := Format(d, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		runMixedWorkload(t, v, nil)
		return d.Stats().Writes
	}()
	if totalWrites < 20 {
		t.Fatalf("workload too small: %d writes", totalWrites)
	}
	step := totalWrites / 25 // ~25 crash points
	if step == 0 {
		step = 1
	}
	for cut := 1; cut < totalWrites; cut += step {
		cut := cut
		t.Run(fmt.Sprintf("afterWrite%03d", cut), func(t *testing.T) {
			clk := sim.NewVirtualClock()
			d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
			v, err := Format(d, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			d.SetWriteFault(disk.FailAfterWrites(cut, 0))
			committed := runMixedWorkload(t, v, d)
			d.Revive()
			v2, _, err := Mount(d, testConfig())
			if err != nil {
				t.Fatalf("mount after crash at write %d: %v", cut, err)
			}
			if err := v2.nt.Check(); err != nil {
				t.Fatalf("name table corrupt after crash at write %d: %v", cut, err)
			}
			for name, data := range committed {
				f, err := v2.Open(name, 0)
				if err != nil {
					t.Fatalf("committed %s lost (crash at write %d): %v", name, cut, err)
				}
				got, err := f.ReadAll()
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("committed %s corrupted (crash at write %d): %v", name, cut, err)
				}
			}
			// The recovered volume is immediately usable.
			if _, err := v2.Create("post/crash", payload(100, 1)); err != nil {
				t.Fatalf("create after recovery: %v", err)
			}
		})
	}
}

// runMixedWorkload performs creates, versions, touches, and deletes,
// forcing periodically, and returns the contents that were durable at the
// last successful force. It stops silently at the first ErrHalted.
func runMixedWorkload(t *testing.T, v *Volume, d *disk.Disk) map[string][]byte {
	t.Helper()
	committed := map[string][]byte{}
	staged := map[string][]byte{}
	var stagedDeletes []string
	halt := func(err error) bool {
		return errors.Is(err, disk.ErrHalted)
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("mix/f%03d", i)
		data := payload(150+i*31, byte(i))
		if _, err := v.Create(name, data); err != nil {
			if halt(err) {
				return committed
			}
			t.Fatal(err)
		}
		staged[name] = data
		if i%3 == 0 {
			if err := v.Touch(name, 0); err != nil {
				if halt(err) {
					return committed
				}
				t.Fatal(err)
			}
		}
		if i%7 == 6 {
			victim := fmt.Sprintf("mix/f%03d", i-3)
			if err := v.Delete(victim, 0); err != nil {
				if halt(err) {
					return committed
				}
				t.Fatal(err)
			}
			delete(staged, victim)
			stagedDeletes = append(stagedDeletes, victim)
		}
		if i%5 == 4 {
			if err := v.Force(); err != nil {
				if halt(err) {
					return committed
				}
				t.Fatal(err)
			}
			for k, val := range staged {
				committed[k] = val
			}
			for _, k := range stagedDeletes {
				delete(committed, k)
			}
			staged = map[string][]byte{}
			stagedDeletes = nil
		}
	}
	return committed
}

// TestSingleSectorDamageCampaign damages each metadata sector class in turn
// (one or two consecutive sectors, per the failure model) and verifies the
// paper's first requirement: "an error on any sector on the disk should
// only affect the file that contains that sector" — and loss of any part of
// the file name table never results from a single sector failure.
func TestSingleSectorDamageCampaign(t *testing.T) {
	build := func() (*Volume, *disk.Disk, map[string][]byte) {
		clk := sim.NewVirtualClock()
		d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		v, err := Format(d, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("dmg/f%03d", i)
			data := payload(400+i*17, byte(i))
			if _, err := v.Create(name, data); err != nil {
				t.Fatal(err)
			}
			files[name] = data
		}
		if err := v.Shutdown(); err != nil {
			t.Fatal(err)
		}
		return v, d, files
	}

	verifyAll := func(t *testing.T, d *disk.Disk, files map[string][]byte) {
		v2, _, err := Mount(d, testConfig())
		if err != nil {
			t.Fatalf("mount with damage: %v", err)
		}
		for name, data := range files {
			f, err := v2.Open(name, 0)
			if err != nil {
				t.Fatalf("%s lost: %v", name, err)
			}
			got, err := f.ReadAll()
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("%s corrupted: %v", name, err)
			}
		}
	}

	t.Run("RootPagePrimary", func(t *testing.T) {
		v, d, files := build()
		_ = v
		d.CorruptSectors(0, 1)
		verifyAll(t, d, files)
	})
	t.Run("RootPageReplica", func(t *testing.T) {
		_, d, files := build()
		d.CorruptSectors(2, 1)
		verifyAll(t, d, files)
	})
	t.Run("LogAnchorPrimary", func(t *testing.T) {
		v, d, files := build()
		d.CorruptSectors(v.lay.logBase, 1)
		verifyAll(t, d, files)
	})
	t.Run("LogAnchorReplica", func(t *testing.T) {
		v, d, files := build()
		d.CorruptSectors(v.lay.logBase+2, 1)
		verifyAll(t, d, files)
	})
	t.Run("NameTableCopyA_TwoSectors", func(t *testing.T) {
		v, d, files := build()
		// Two consecutive sectors — the worst case of the failure model.
		d.CorruptSectors(v.lay.ntA+NTPageSectors, 2)
		verifyAll(t, d, files)
	})
	t.Run("NameTableCopyB_TwoSectors", func(t *testing.T) {
		v, d, files := build()
		d.CorruptSectors(v.lay.ntB+NTPageSectors, 2)
		verifyAll(t, d, files)
	})
	t.Run("VAMSaveArea", func(t *testing.T) {
		v, d, files := build()
		// Damaged VAM: "these are recovered by reconstructing the VAM."
		d.CorruptSectors(v.lay.vamBase, 2)
		verifyAll(t, d, files)
	})
	t.Run("DataSectorAffectsOnlyItsFile", func(t *testing.T) {
		_, d, files := build()
		// Damage one data sector of one known file: only that file fails.
		victim := "dmg/f010"
		v2, _, err := Mount(d, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		f, err := v2.Open(victim, 0)
		if err != nil {
			t.Fatal(err)
		}
		e := f.Entry()
		addr, err := e.DataAddr(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := v2.Shutdown(); err != nil {
			t.Fatal(err)
		}
		d.CorruptSectors(addr, 1)
		v3, _, err := Mount(d, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		for name, data := range files {
			g, err := v3.Open(name, 0)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			got, rerr := g.ReadAll()
			if name == victim {
				if rerr == nil {
					t.Fatal("read of damaged file succeeded")
				}
				continue
			}
			if rerr != nil || !bytes.Equal(got, data) {
				t.Fatalf("unrelated file %s affected: %v", name, rerr)
			}
		}
	})
	_ = fmt.Sprintf
}

// TestDamageDuringLogReplayWindow damages a name-table home sector while
// its newest content is still in the log: recovery must rewrite it.
func TestDamageDuringLogReplayWindow(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := v.Create(fmt.Sprintf("w/f%02d", i), payload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	// Both home copies of a hot name-table page damaged: recovery still
	// succeeds because the images are in the log.
	d.CorruptSectors(v.lay.ntA+4, 1)
	d.CorruptSectors(v.lay.ntB+4, 1)
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := v2.Open(fmt.Sprintf("w/f%02d", i), 0); err != nil {
			t.Fatalf("f%02d lost: %v", i, err)
		}
	}
}

// TestWildStoreDetectedByCRC smashes a name-table home sector silently (no
// damage flag — a wild write) and verifies the CRC check routes the read to
// the good copy.
func TestWildStoreDetectedByCRC(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := v.Create(fmt.Sprintf("ws/f%02d", i), payload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Silently smash a sector in the middle of a copy-A page.
	evil := payload(disk.SectorSize, 0xE0)
	d.SmashSector(v.lay.ntA+NTPageSectors+1, evil, nil)
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := v2.Open(fmt.Sprintf("ws/f%02d", i), 0); err != nil {
			t.Fatalf("file lost to silent smash: %v", err)
		}
	}
}

// TestTornLogForceSweep crashes mid-force with varying numbers of sectors of
// the interrupted write persisted (the torn-write arm of the fault model):
// the log record is left with a valid header but missing data, copies, or
// end flags. Recovery must truncate to the last intact record — every
// previously committed file survives, nothing half-written surfaces.
func TestTornLogForceSweep(t *testing.T) {
	totalWrites := func() int {
		clk := sim.NewVirtualClock()
		d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
		v, err := Format(d, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		runMixedWorkload(t, v, nil)
		return d.Stats().Writes
	}()
	step := totalWrites / 8
	if step == 0 {
		step = 1
	}
	for _, persist := range []int{1, 2, 3, 5} {
		for cut := 1; cut < totalWrites; cut += step {
			persist, cut := persist, cut
			t.Run(fmt.Sprintf("persist%d/afterWrite%03d", persist, cut), func(t *testing.T) {
				clk := sim.NewVirtualClock()
				d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
				v, err := Format(d, testConfig())
				if err != nil {
					t.Fatal(err)
				}
				d.SetWriteFault(disk.FailAfterWrites(cut, persist))
				committed := runMixedWorkload(t, v, d)
				d.Revive()
				v2, _, err := Mount(d, testConfig())
				if err != nil {
					t.Fatalf("mount after torn write (cut %d, persist %d): %v", cut, persist, err)
				}
				if err := v2.nt.Check(); err != nil {
					t.Fatalf("name table corrupt (cut %d, persist %d): %v", cut, persist, err)
				}
				for name, data := range committed {
					f, err := v2.Open(name, 0)
					if err != nil {
						t.Fatalf("committed %s lost (cut %d, persist %d): %v", name, cut, persist, err)
					}
					got, err := f.ReadAll()
					if err != nil || !bytes.Equal(got, data) {
						t.Fatalf("committed %s corrupted (cut %d, persist %d): %v", name, cut, persist, err)
					}
				}
				if _, err := v2.Create("post/torn", payload(100, 1)); err != nil {
					t.Fatalf("create after recovery: %v", err)
				}
			})
		}
	}
}
