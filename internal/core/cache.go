package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/disk"
	"repro/internal/wal"
)

// ntCRCOff is where the cache stamps a CRC32 into each name-table page; the
// B-tree reserves bytes 10..15 of its header for the storage layer.
const ntCRCOff = 12

// ntPage is one cached name-table page and its logging state.
type ntPage struct {
	id  uint32
	cur []byte // current contents (what the B-tree sees)
	// logged is the snapshot equal to what log replay would reproduce
	// for this page (its content at the last force); it is what a
	// third-crossing flush writes home, so home copies never get ahead
	// of the log (see DESIGN.md).
	logged     []byte
	dirty      bool // cur differs from the home copies
	pendingLog bool // images staged in the WAL but not yet forced
	// lastThird tracks, per 512-byte sector, the log division holding
	// that sector's newest image; -1 if none. Logging is sector-granular,
	// so different sectors of one page can live in different thirds.
	lastThird [NTPageSectors]int
	lruSeq    uint64
}

func newNTPage(id uint32, cur []byte) *ntPage {
	p := &ntPage{id: id, cur: cur}
	for j := range p.lastThird {
		p.lastThird[j] = -1
	}
	return p
}

// inLog reports whether any sector of the page has a live logged image.
func (p *ntPage) inLog() bool {
	for _, t := range p.lastThird {
		if t >= 0 {
			return true
		}
	}
	return false
}

// ntCache is the write-back cache for file-name-table pages. It implements
// btree.Pager: B-tree reads hit the cache, B-tree writes dirty cached pages
// and stage their sector images for the next group commit. Pages are kept
// logically read-only between updates by CRC-checking on every cache read
// ("this is to catch wild stores").
type ntCache struct {
	v     *Volume
	pages map[uint32]*ntPage
	cap   int
	seq   uint64

	// Counters for the benchmarks.
	Hits, Misses int
	HomeWrites   int
}

func newNTCache(v *Volume, capacity int) *ntCache {
	return &ntCache{v: v, pages: make(map[uint32]*ntPage), cap: capacity}
}

// PageSize implements btree.Pager.
func (c *ntCache) PageSize() int { return NTPageSize }

// NumPages implements btree.Pager.
func (c *ntCache) NumPages() int { return c.v.lay.ntPages }

func stampCRC(p []byte) {
	binary.BigEndian.PutUint32(p[ntCRCOff:], 0)
	binary.BigEndian.PutUint32(p[ntCRCOff:], pageCRC(p))
}

func pageCRC(p []byte) uint32 {
	var z [4]byte
	h := crc32.NewIEEE()
	h.Write(p[:ntCRCOff])
	h.Write(z[:])
	h.Write(p[ntCRCOff+4:])
	return h.Sum32()
}

func crcOK(p []byte) bool {
	return binary.BigEndian.Uint32(p[ntCRCOff:]) == pageCRC(p)
}

// Read implements btree.Pager. On a miss both home copies are read and
// checked, per the paper ("when a page is read, both copies are read and
// checked"), unless the volume is configured to read one.
func (c *ntCache) Read(id uint32) ([]byte, error) {
	if p, ok := c.pages[id]; ok {
		c.Hits++
		c.seq++
		p.lruSeq = c.seq
		c.v.cpu.Charge(0) // navigation cost charged by callers per op
		if !crcOK(p.cur) && !isVirgin(p.cur) {
			return nil, fmt.Errorf("core: wild store detected in cached name-table page %d", id)
		}
		return p.cur, nil
	}
	c.Misses++
	addrA, addrB := c.v.lay.ntPageAddrs(id)
	bufA, errA := c.v.d.ReadSectors(addrA, NTPageSectors)
	okA := errA == nil && (crcOK(bufA) || isVirgin(bufA))
	var bufB []byte
	okB := false
	if !c.v.cfg.ReadOneCopy && !c.v.cfg.SingleCopyNT {
		var errB error
		bufB, errB = c.v.d.ReadSectors(addrB, NTPageSectors)
		okB = errB == nil && (crcOK(bufB) || isVirgin(bufB))
		c.v.cpu.Charge(2 * csumCost)
	} else {
		c.v.cpu.Charge(csumCost)
	}
	var data []byte
	switch {
	case okA:
		data = bufA
	case okB:
		data = bufB
	case c.v.cfg.ReadOneCopy && !c.v.cfg.SingleCopyNT:
		// One-copy read mode falls back to the replica on damage.
		bufB, errB := c.v.d.ReadSectors(addrB, NTPageSectors)
		if errB == nil && (crcOK(bufB) || isVirgin(bufB)) {
			data = bufB
		}
	}
	if data == nil {
		return nil, fmt.Errorf("core: name-table page %d unreadable in all copies (A: %v)", id, errA)
	}
	p := newNTPage(id, data)
	c.insert(p)
	return p.cur, nil
}

// isVirgin reports an all-zero page (never written; CRC field legitimately
// absent).
func isVirgin(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Write implements btree.Pager: update the cached page and stage images of
// the changed sectors for the next group commit. Logging is sector-granular
// — the paper logs 512-byte "physical pages", so a small property update
// inside a 2 KB name-table page produces a one- or two-page log record, not
// four. Nothing touches the home copies here.
func (c *ntCache) Write(id uint32, data []byte) error {
	if len(data) != NTPageSize {
		return fmt.Errorf("core: name-table write of %d bytes", len(data))
	}
	p, ok := c.pages[id]
	if !ok {
		// Never read and never written: the diff base is the home
		// content, which for a fresh page is all zeroes. Reading it
		// would cost an I/O the real system does not do (it knows
		// fresh pages are virgin), so start from zeroes; for safety
		// this is only correct because the B-tree always reads
		// existing pages before rewriting them.
		p = newNTPage(id, make([]byte, NTPageSize))
		c.insert(p)
	}
	fresh := make([]byte, NTPageSize)
	copy(fresh, data)
	stampCRC(fresh)
	c.v.cpu.Charge(csumCost)
	var images []wal.PageImage
	for j := 0; j < NTPageSectors; j++ {
		lo, hi := j*disk.SectorSize, (j+1)*disk.SectorSize
		if bytes.Equal(fresh[lo:hi], p.cur[lo:hi]) {
			continue
		}
		images = append(images, wal.PageImage{
			Kind:   wal.KindNameTable,
			Target: uint64(id)*NTPageSectors + uint64(j),
			Data:   fresh[lo:hi],
		})
	}
	p.cur = fresh
	if len(images) == 0 {
		return nil
	}
	p.dirty = true
	p.pendingLog = true
	return c.v.log.Append(images...)
}

// insert adds a page, evicting a clean page if over capacity. Dirty or
// pending pages are never evicted ("the 'dirty but logged' pages are kept
// in the cache"); if everything is dirty the cache grows past cap.
func (c *ntCache) insert(p *ntPage) {
	c.seq++
	p.lruSeq = c.seq
	c.pages[p.id] = p
	if len(c.pages) <= c.cap {
		return
	}
	var victim *ntPage
	for _, q := range c.pages {
		if q.dirty || q.pendingLog || q.inLog() || q == p {
			continue
		}
		if victim == nil || q.lruSeq < victim.lruSeq {
			victim = q
		}
	}
	if victim != nil {
		delete(c.pages, victim.id)
	}
}

// onLogged records that page images made it into the log (called from the
// WAL once per sector image; the whole-page snapshot refresh is idempotent
// across the sectors of one page).
func (c *ntCache) onLogged(target uint64, third int) {
	id := uint32(target / NTPageSectors)
	p, ok := c.pages[id]
	if !ok {
		return
	}
	// Snapshot exactly the sector that was logged — and only it. During
	// a force cur is stable, but a multi-record force logs the batch in
	// pieces: a whole-page snapshot here could capture sectors whose
	// images ride a LATER record of the same force, and a third-crossing
	// flush between the records would then write content home that the
	// log does not yet (and, if the force tears, never will) contain.
	if p.logged == nil {
		p.logged = make([]byte, NTPageSize)
	}
	sub := int(target % NTPageSectors)
	copy(p.logged[sub*disk.SectorSize:(sub+1)*disk.SectorSize], p.cur[sub*disk.SectorSize:(sub+1)*disk.SectorSize])
	p.lastThird[sub] = third
	p.pendingLog = false
}

// flushThird writes home every sector whose newest logged image is in the
// division about to be overwritten. It writes from the logged snapshot, not
// the possibly newer cache contents, so the home copies never reflect
// updates the log has not yet committed.
func (c *ntCache) flushThird(third int) (int, error) {
	n := 0
	for _, p := range c.pages {
		for j := 0; j < NTPageSectors; j++ {
			if p.lastThird[j] != third {
				continue
			}
			if err := c.writeHomeSector(p.id, j, p.logged[j*disk.SectorSize:(j+1)*disk.SectorSize]); err != nil {
				return n, err
			}
			n++
			p.lastThird[j] = -1
		}
		if !p.pendingLog && !p.inLog() && p.logged != nil && bytes.Equal(p.logged, p.cur) {
			p.dirty = false
			p.logged = nil
		}
	}
	return n, nil
}

// writeHomeSector writes one sector of a page to both home copies.
func (c *ntCache) writeHomeSector(id uint32, sub int, data []byte) error {
	addrA, addrB := c.v.lay.ntPageAddrs(id)
	if err := c.v.d.WriteSectors(addrA+sub, data); err != nil {
		return err
	}
	c.HomeWrites++
	if c.v.cfg.SingleCopyNT {
		return nil
	}
	if err := c.v.d.WriteSectors(addrB+sub, data); err != nil {
		return err
	}
	c.HomeWrites++
	return nil
}

// writeHome writes a page image to both home copies (two operations with
// independent failure modes).
func (c *ntCache) writeHome(id uint32, data []byte) error {
	addrA, addrB := c.v.lay.ntPageAddrs(id)
	if err := c.v.d.WriteSectors(addrA, data); err != nil {
		return err
	}
	c.HomeWrites++
	if c.v.cfg.SingleCopyNT {
		return nil
	}
	if err := c.v.d.WriteSectors(addrB, data); err != nil {
		return err
	}
	c.HomeWrites++
	return nil
}

// flushAll writes home every dirty page; the caller must have forced the
// log first so cur is committed. Used by clean shutdown.
func (c *ntCache) flushAll() error {
	for _, p := range c.pages {
		if !p.dirty {
			continue
		}
		if err := c.writeHome(p.id, p.cur); err != nil {
			return err
		}
		p.dirty = false
		p.pendingLog = false
		for j := range p.lastThird {
			p.lastThird[j] = -1
		}
		p.logged = nil
	}
	return nil
}

// dropAll empties the cache (after crash recovery rewrites home pages).
func (c *ntCache) dropAll() {
	c.pages = make(map[uint32]*ntPage)
}
