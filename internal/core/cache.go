package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/wal"
)

// ntCRCOff is where the cache stamps a CRC32 into each name-table page; the
// B-tree reserves bytes 10..15 of its header for the storage layer.
const ntCRCOff = 12

// ntPage is one cached name-table page and its logging state.
type ntPage struct {
	id  uint32
	cur []byte // current contents (what the B-tree sees)
	// logged is the snapshot equal to what log replay would reproduce
	// for this page (its content at the last force); it is what a
	// third-crossing flush writes home, so home copies never get ahead
	// of the log (see DESIGN.md).
	logged []byte
	dirty  bool // cur differs from the home copies
	// pendingSeq is the newest log batch holding images staged from this
	// page; the page has undurable staged updates while pendingSeq
	// exceeds the log's committed sequence. (A boolean cannot express
	// this under the pipelined commit: images stage into a batch while
	// an older batch's force is still writing.)
	pendingSeq uint64
	// lastThird tracks, per 512-byte sector, the log division holding
	// that sector's newest image; -1 if none. Logging is sector-granular,
	// so different sectors of one page can live in different thirds.
	lastThird [NTPageSectors]int
	lruSeq    uint64
}

func newNTPage(id uint32, cur []byte) *ntPage {
	p := &ntPage{id: id, cur: cur}
	for j := range p.lastThird {
		p.lastThird[j] = -1
	}
	return p
}

// inLog reports whether any sector of the page has a live logged image.
func (p *ntPage) inLog() bool {
	for _, t := range p.lastThird {
		if t >= 0 {
			return true
		}
	}
	return false
}

// pendingLog reports whether the page has staged images not yet durable,
// given the log's current committed sequence.
func (p *ntPage) pendingLog(committed uint64) bool {
	return p.pendingSeq > committed
}

// ntCache is the write-back cache for file-name-table pages. It implements
// btree.Pager: B-tree reads hit the cache, B-tree writes dirty cached pages
// and stage their sector images for the next group commit. Pages are kept
// logically read-only between updates by CRC-checking on every cache read
// ("this is to catch wild stores").
//
// The cache locks internally: B-tree readers sharing the tree's read lock
// hit it concurrently, and the WAL's force callbacks (onLogged, flushThird)
// enter from the force path while operations run. Page contents stay safe
// without copying because cur is replaced copy-on-write (only under the
// tree's write lock) and never mutated in place.
type ntCache struct {
	v   *Volume
	cap int

	mu    sync.Mutex
	pages map[uint32]*ntPage
	seq   uint64

	// Counters for the benchmarks. Atomic because c.mu is held across the
	// home-write disk I/O (flushThird, flushAll): a Stats snapshot must
	// never block behind a flush in flight.
	hits, misses atomic.Int64
	homeWrites   atomic.Int64
}

func newNTCache(v *Volume, capacity int) *ntCache {
	return &ntCache{v: v, pages: make(map[uint32]*ntPage), cap: capacity}
}

// stats snapshots the cache counters without taking c.mu.
func (c *ntCache) stats() CacheStats {
	return CacheStats{
		Hits:       int(c.hits.Load()),
		Misses:     int(c.misses.Load()),
		HomeWrites: int(c.homeWrites.Load()),
	}
}

// PageSize implements btree.Pager.
func (c *ntCache) PageSize() int { return NTPageSize }

// NumPages implements btree.Pager.
func (c *ntCache) NumPages() int { return c.v.lay.ntPages }

func stampCRC(p []byte) {
	binary.BigEndian.PutUint32(p[ntCRCOff:], 0)
	binary.BigEndian.PutUint32(p[ntCRCOff:], pageCRC(p))
}

func pageCRC(p []byte) uint32 {
	var z [4]byte
	h := crc32.NewIEEE()
	h.Write(p[:ntCRCOff])
	h.Write(z[:])
	h.Write(p[ntCRCOff+4:])
	return h.Sum32()
}

func crcOK(p []byte) bool {
	return binary.BigEndian.Uint32(p[ntCRCOff:]) == pageCRC(p)
}

// Read implements btree.Pager. On a miss both home copies are read and
// checked, per the paper ("when a page is read, both copies are read and
// checked"), unless the volume is configured to read one.
func (c *ntCache) Read(id uint32) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pages[id]; ok {
		c.hits.Add(1)
		c.v.traceCache(true, id)
		c.seq++
		p.lruSeq = c.seq
		c.v.cpu.Charge(0) // navigation cost charged by callers per op
		if !crcOK(p.cur) && !isVirgin(p.cur) {
			return nil, fmt.Errorf("core: wild store detected in cached name-table page %d", id)
		}
		return p.cur, nil
	}
	c.misses.Add(1)
	c.v.traceCache(false, id)
	addrA, addrB := c.v.lay.ntPageAddrs(id)
	bufA, errA := c.v.readSectorsRetry(addrA, NTPageSectors)
	if errA != nil {
		bufA = nil
	}
	// A read-only mount overlays the log's replayed sector images (kept in
	// memory, never written home) before the CRC check: the mix of stale
	// home sectors and replayed sectors is exactly the page applyNTImages
	// would have produced on disk.
	bufA = c.v.overlayNT(id, bufA)
	okA := bufA != nil && (crcOK(bufA) || isVirgin(bufA))
	var bufB []byte
	okB := false
	if !c.v.cfg.ReadOneCopy && !c.v.cfg.SingleCopyNT {
		var errB error
		bufB, errB = c.v.readSectorsRetry(addrB, NTPageSectors)
		if errB != nil {
			bufB = nil
		}
		bufB = c.v.overlayNT(id, bufB)
		okB = bufB != nil && (crcOK(bufB) || isVirgin(bufB))
		c.v.cpu.Charge(2 * csumCost)
	} else {
		c.v.cpu.Charge(csumCost)
	}
	var data []byte
	switch {
	case okA:
		data = bufA
	case okB:
		data = bufB
	case c.v.cfg.ReadOneCopy && !c.v.cfg.SingleCopyNT:
		// One-copy read mode falls back to the replica on damage.
		bufB, errB := c.v.readSectorsRetry(addrB, NTPageSectors)
		if errB != nil {
			bufB = nil
		}
		bufB = c.v.overlayNT(id, bufB)
		if bufB != nil && (crcOK(bufB) || isVirgin(bufB)) {
			data = bufB
		}
	}
	if data == nil {
		return nil, fmt.Errorf("core: name-table page %d unreadable in all copies (A: %v)", id, errA)
	}
	p := newNTPage(id, data)
	c.insert(p)
	return p.cur, nil
}

// overlayNT applies the in-memory replayed sector images of page id (set
// only by MountReadOnly) over a home copy. buf may be nil for an unreadable
// home copy, in which case the page is reconstructed only when the overlay
// covers all of it. It returns buf unchanged when there is nothing to apply.
func (v *Volume) overlayNT(id uint32, buf []byte) []byte {
	if v.ntOverride == nil {
		return buf
	}
	var imgs [NTPageSectors][]byte
	n := 0
	for j := 0; j < NTPageSectors; j++ {
		if img, ok := v.ntOverride[uint64(id)*NTPageSectors+uint64(j)]; ok {
			imgs[j] = img
			n++
		}
	}
	if n == 0 || (buf == nil && n < NTPageSectors) {
		return buf
	}
	out := make([]byte, NTPageSize)
	if buf != nil {
		copy(out, buf)
	}
	for j, img := range imgs {
		if img != nil {
			copy(out[j*disk.SectorSize:(j+1)*disk.SectorSize], img)
		}
	}
	return out
}

// isVirgin reports an all-zero page (never written; CRC field legitimately
// absent).
func isVirgin(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Write implements btree.Pager: update the cached page and stage images of
// the changed sectors for the next group commit. Logging is sector-granular
// — the paper logs 512-byte "physical pages", so a small property update
// inside a 2 KB name-table page produces a one- or two-page log record, not
// four. Nothing touches the home copies here.
func (c *ntCache) Write(id uint32, data []byte) error {
	if len(data) != NTPageSize {
		return fmt.Errorf("core: name-table write of %d bytes", len(data))
	}
	if c.v.log == nil {
		// Read-only mount: mutations are refused far above this, so a
		// write reaching the pager is a bug, not a user error.
		return fmt.Errorf("core: name-table write on read-only volume")
	}
	c.mu.Lock()
	p, ok := c.pages[id]
	if !ok {
		// Cache miss on write: the diff base is unknown. The page may
		// be virgin (all zeroes at home) — or it may have been written
		// before and evicted, in which case its home content is
		// arbitrary. Diffing against zeroes in the latter case would
		// skip sectors that are zero in the new image but stale and
		// nonzero at home, leaving the home copy a mix of old and new
		// sectors under the new CRC — unreadable in both copies. So on
		// a miss every sector is staged unconditionally (ok==false
		// disables the equal-sector skip below).
		p = newNTPage(id, make([]byte, NTPageSize))
		c.insert(p)
	}
	fresh := make([]byte, NTPageSize)
	copy(fresh, data)
	stampCRC(fresh)
	c.v.cpu.Charge(csumCost)
	var images []wal.PageImage
	for j := 0; j < NTPageSectors; j++ {
		lo, hi := j*disk.SectorSize, (j+1)*disk.SectorSize
		if ok && bytes.Equal(fresh[lo:hi], p.cur[lo:hi]) {
			continue
		}
		images = append(images, wal.PageImage{
			Kind:   wal.KindNameTable,
			Target: uint64(id)*NTPageSectors + uint64(j),
			Data:   fresh[lo:hi],
		})
	}
	p.cur = fresh
	if len(images) == 0 {
		c.mu.Unlock()
		return nil
	}
	p.dirty = true
	c.mu.Unlock()
	// Append outside c.mu: in synchronous mode it forces immediately, and
	// the force's FlushHook re-enters the cache. Callers are serialized by
	// the B-tree's write lock, so releasing here admits no second writer.
	seq, err := c.v.log.Append(images...)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if seq > p.pendingSeq {
		p.pendingSeq = seq
	}
	c.mu.Unlock()
	return nil
}

// insert adds a page, evicting a clean page if over capacity. Dirty or
// pending pages are never evicted ("the 'dirty but logged' pages are kept
// in the cache"); if everything is dirty the cache grows past cap. The
// caller holds c.mu.
func (c *ntCache) insert(p *ntPage) {
	c.seq++
	p.lruSeq = c.seq
	c.pages[p.id] = p
	if len(c.pages) <= c.cap {
		return
	}
	committed := c.v.log.Committed()
	var victim *ntPage
	for _, q := range c.pages {
		if q.dirty || q.pendingLog(committed) || q.inLog() || q == p {
			continue
		}
		if victim == nil || q.lruSeq < victim.lruSeq {
			victim = q
		}
	}
	if victim != nil {
		delete(c.pages, victim.id)
	}
}

// onLogged records that a page image made it into the log (called from the
// WAL once per sector image, on the force path).
func (c *ntCache) onLogged(target uint64, third int, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := uint32(target / NTPageSectors)
	p, ok := c.pages[id]
	if !ok {
		return
	}
	// Snapshot the bytes the log actually wrote — not p.cur, which under
	// the pipelined commit may already hold newer updates staged while
	// this force was writing (and, within one force, sectors whose images
	// ride a later record of the same batch). The snapshot must track the
	// log exactly: it is what a third-crossing flush writes home.
	if p.logged == nil {
		p.logged = make([]byte, NTPageSize)
	}
	sub := int(target % NTPageSectors)
	copy(p.logged[sub*disk.SectorSize:(sub+1)*disk.SectorSize], data)
	p.lastThird[sub] = third
}

// flushThird writes home every sector whose newest logged image is in the
// division about to be overwritten. It writes from the logged snapshot, not
// the possibly newer cache contents, so the home copies never reflect
// updates the log has not yet committed.
func (c *ntCache) flushThird(third int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	committed := c.v.log.Committed()
	n := 0
	for _, p := range c.pages {
		for j := 0; j < NTPageSectors; j++ {
			if p.lastThird[j] != third {
				continue
			}
			if err := c.writeHomeSector(p.id, j, p.logged[j*disk.SectorSize:(j+1)*disk.SectorSize]); err != nil {
				return n, err
			}
			n++
			p.lastThird[j] = -1
		}
		if !p.pendingLog(committed) && !p.inLog() && p.logged != nil && bytes.Equal(p.logged, p.cur) {
			p.dirty = false
			p.logged = nil
		}
	}
	return n, nil
}

// writeHomeSector writes one sector of a page to both home copies. The
// caller holds c.mu.
func (c *ntCache) writeHomeSector(id uint32, sub int, data []byte) error {
	addrA, addrB := c.v.lay.ntPageAddrs(id)
	if err := c.v.writeSectors(addrA+sub, data); err != nil {
		return err
	}
	c.homeWrites.Add(1)
	if c.v.cfg.SingleCopyNT {
		return nil
	}
	if err := c.v.writeSectors(addrB+sub, data); err != nil {
		return err
	}
	c.homeWrites.Add(1)
	return nil
}

// writeHome writes a page image to both home copies (two operations with
// independent failure modes). The caller holds c.mu.
func (c *ntCache) writeHome(id uint32, data []byte) error {
	addrA, addrB := c.v.lay.ntPageAddrs(id)
	if err := c.v.writeSectors(addrA, data); err != nil {
		return err
	}
	c.homeWrites.Add(1)
	if c.v.cfg.SingleCopyNT {
		return nil
	}
	if err := c.v.writeSectors(addrB, data); err != nil {
		return err
	}
	c.homeWrites.Add(1)
	return nil
}

// flushAll writes home every dirty page; the caller must have forced the
// log first so cur is committed. Used by clean shutdown.
func (c *ntCache) flushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pages {
		if !p.dirty {
			continue
		}
		if err := c.writeHome(p.id, p.cur); err != nil {
			return err
		}
		p.dirty = false
		p.pendingSeq = 0
		for j := range p.lastThird {
			p.lastThird[j] = -1
		}
		p.logged = nil
	}
	return nil
}

// dropAll empties the cache (after crash recovery rewrites home pages).
func (c *ntCache) dropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages = make(map[uint32]*ntPage)
}
