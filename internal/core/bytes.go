package core

import (
	"fmt"
	"io"

	"repro/internal/disk"
)

// Byte-granular convenience I/O over the page operations, and rename —
// the remaining pieces of the FS-level interface Cedar clients used. The
// compound operations here (size check + page I/O, read-modify-write) take
// the handle lock per step, not across the whole call: concurrent writers
// to the same handle may interleave at page granularity.

// ReadAt reads len(p) bytes at byte offset off, implementing io.ReaderAt
// semantics: it returns io.EOF when the read reaches the file's byte size.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset")
	}
	size := f.Size()
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	if want == 0 {
		return 0, nil
	}
	firstPage := int(off / disk.SectorSize)
	lastPage := int((off + want - 1) / disk.SectorSize)
	buf, err := f.ReadPages(firstPage, lastPage-firstPage+1)
	if err != nil {
		return 0, err
	}
	n := copy(p, buf[off-int64(firstPage)*disk.SectorSize:][:want])
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p at byte offset off within the file's allocated pages,
// extending the recorded byte size if the write grows the file (but never
// past the allocation — use Extend first). Partial first/last pages are
// read-modify-written.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	end := off + int64(len(p))
	if end > int64(f.Pages())*disk.SectorSize {
		return 0, fmt.Errorf("core: write [%d,%d) beyond %d allocated pages (Extend first)", off, end, f.Pages())
	}
	firstPage := int(off / disk.SectorSize)
	lastPage := int((end - 1) / disk.SectorSize)
	span := lastPage - firstPage + 1
	buf := make([]byte, span*disk.SectorSize)
	// Read-modify-write only the partial edge pages that hold live data.
	headPartial := off%disk.SectorSize != 0
	tailPartial := end%disk.SectorSize != 0
	if headPartial || (tailPartial && int64(lastPage)*disk.SectorSize < f.Size()) {
		old, err := f.ReadPages(firstPage, span)
		if err == nil {
			copy(buf, old)
		}
	}
	copy(buf[off-int64(firstPage)*disk.SectorSize:], p)
	if err := f.WritePages(firstPage, buf); err != nil {
		return 0, err
	}
	if end > f.Size() {
		if err := f.SetByteSize(uint64(end)); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

// Rename moves every version of oldName to newName — a pure name-table
// operation, logged like any other metadata update; no data pages move.
// It fails if any version of newName already exists.
func (v *Volume) Rename(oldName, newName string) error {
	if v.async() {
		return v.renameAsync(oldName, newName)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.beginMutate(); err != nil {
		return err
	}
	if err := ValidateName(newName); err != nil {
		return err
	}
	if hi, err := v.highestVersionLocked(newName); err != nil {
		return err
	} else if hi != 0 {
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	var versions []uint32
	prefix := namePrefix(oldName)
	err := v.nt.Scan(prefix, func(k, _ []byte) bool {
		n, ver, ok := splitKey(k)
		if !ok || n != oldName {
			return false
		}
		versions = append(versions, ver)
		return true
	})
	if err != nil {
		return err
	}
	if len(versions) == 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	for _, ver := range versions {
		e, err := v.statLocked(oldName, ver)
		if err != nil {
			return err
		}
		e.Name = newName
		if err := v.putEntryLocked(e); err != nil {
			return err
		}
		if err := v.nt.Delete(entryKey(oldName, ver)); err != nil {
			return err
		}
		v.cpu.Charge(2 * csumCost)
	}
	return nil
}
