package core

import (
	"math/rand"

	"repro/internal/disk"
)

// Fault-experiment hooks: deliberate, seeded media damage for the
// robustness benchmark and the examples. Nothing in the normal operation
// path calls these; they exist so callers outside this package can stage
// the decay scenarios the scrubber and the salvager are built for without
// knowing the volume layout.

// InjectLatentDecay damages exactly one randomly chosen home copy of every
// allocated name-table page — alternating between hard latent errors (the
// read fails), silent bit rot (the read returns garbage), and the
// occasional stuck physical defect that only remapping can retire — plus
// the root replica and one log anchor copy. Every page keeps one good
// copy, so a single Scrub pass repairs all of it. Returns the number of
// sectors decayed and how many of those are stuck defects.
func (v *Volume) InjectLatentDecay(rng *rand.Rand) (decayed, stuck int) {
	for id := 0; id < v.lay.ntPages; id++ {
		addrA, addrB := v.lay.ntPageAddrs(uint32(id))
		buf, err := v.d.ReadSectors(addrA, NTPageSectors)
		if err != nil || isVirgin(buf) {
			continue
		}
		victim := addrA + rng.Intn(NTPageSectors)
		if rng.Intn(2) == 1 {
			victim = addrB + rng.Intn(NTPageSectors)
		}
		switch {
		case rng.Intn(2) == 0:
			rot := make([]byte, disk.SectorSize)
			rng.Read(rot)
			v.d.SmashSector(victim, rot, nil)
		case decayed%8 == 7:
			v.d.MarkStuck(victim, 1)
			stuck++
		default:
			v.d.CorruptSectors(victim, 1)
		}
		decayed++
	}
	v.d.CorruptSectors(v.lay.rootB, 1)
	v.d.CorruptSectors(v.lay.logBase+2, 1) // the log anchor's second copy
	return decayed + 2, stuck
}

// DestroyNameTable damages every sector of both name-table home copies —
// the double-loss catastrophe that defeats Mount and that Salvage exists
// for. The log region is destroyed too: a surviving log holds full-page
// name-table images (every cache-miss write stages the whole page) and
// replay would quietly rebuild the table, which is the behaviour Salvage
// is NOT for. Call it on a shut-down volume; the disk underneath keeps
// the damage.
func (v *Volume) DestroyNameTable() {
	ntSectors := v.lay.ntPages * NTPageSectors
	v.d.CorruptSectors(v.lay.ntA, ntSectors)
	if v.lay.ntB != v.lay.ntA {
		v.d.CorruptSectors(v.lay.ntB, ntSectors)
	}
	v.d.CorruptSectors(v.lay.logBase, v.lay.logSize)
}
