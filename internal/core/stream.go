package core

import (
	"fmt"
	"io"

	"repro/internal/disk"
)

// Stream adapters: Cedar clients consumed files as byte streams; these wrap
// the page operations in the standard io interfaces.

// Reader is a sequential io.Reader/io.Seeker over a file.
type Reader struct {
	f   *File
	off int64
}

var _ io.ReadSeeker = (*Reader)(nil)

// NewReader returns a reader positioned at the start of the file.
func (f *File) NewReader() *Reader { return &Reader{f: f} }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.f.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.off + offset
	case io.SeekEnd:
		abs = r.f.Size() + offset
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("core: negative seek position %d", abs)
	}
	r.off = abs
	return abs, nil
}

// Writer is a sequential io.Writer that appends from a starting offset,
// extending the file's allocation as needed.
type Writer struct {
	f   *File
	off int64
}

var _ io.Writer = (*Writer)(nil)

// NewWriter returns a writer positioned at offset off.
func (f *File) NewWriter(off int64) *Writer { return &Writer{f: f, off: off} }

// Write implements io.Writer, growing the allocation in whole pages when
// the stream runs past it.
func (w *Writer) Write(p []byte) (int, error) {
	end := w.off + int64(len(p))
	if have := int64(w.f.Pages()) * disk.SectorSize; end > have {
		needPages := int((end - have + disk.SectorSize - 1) / disk.SectorSize)
		if err := w.f.Extend(needPages); err != nil {
			return 0, err
		}
	}
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// WriteStream creates a new version of name from an io.Reader of unknown
// length — the general form of Create for producers that stream output
// (compilers writing object files page by page, in the paper's world).
func (v *Volume) WriteStream(name string, r io.Reader) (*File, error) {
	f, err := v.Create(name, nil)
	if err != nil {
		return nil, err
	}
	w := f.NewWriter(0)
	if _, err := io.Copy(w, r); err != nil {
		return nil, fmt.Errorf("core: streaming into %q: %w", name, err)
	}
	return f, nil
}
