package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestSalvageCheckpointRoundTrip pins the on-disk checkpoint format: encode
// and decode are inverses, corruption is detected, and clearing removes both
// copies.
func TestSalvageCheckpointRoundTrip(t *testing.T) {
	ck := salvageCheckpoint{phase: salvageRebuild, cursor: 12345, cands: 17, damaged: 3, manifestCRC: 0xDEADBEEF}
	buf := encodeSalvageCheckpoint(ck)
	got, ok := decodeSalvageCheckpoint(buf)
	if !ok || got != ck {
		t.Fatalf("round trip: %+v ok=%v, want %+v", got, ok, ck)
	}
	buf[8] ^= 1 // flip a cursor bit: CRC must catch it
	if _, ok := decodeSalvageCheckpoint(buf); ok {
		t.Fatal("corrupted checkpoint decoded successfully")
	}
	if _, ok := decodeSalvageCheckpoint(make([]byte, disk.SectorSize)); ok {
		t.Fatal("zero sector decoded as a checkpoint")
	}

	v, d, _ := newTestVolumeWith(t, testConfig())
	lay := v.lay
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSectors(lay.logBase+salvageCkA, encodeSalvageCheckpoint(ck)); err != nil {
		t.Fatal(err)
	}
	if got, ok := readSalvageCheckpoint(d, lay); !ok || got != ck {
		t.Fatalf("readSalvageCheckpoint = %+v ok=%v", got, ok)
	}
	// Copy A lost: copy B still serves the checkpoint.
	d.CorruptSectors(lay.logBase+salvageCkA, 1)
	if err := d.WriteSectors(lay.logBase+salvageCkB, encodeSalvageCheckpoint(ck)); err != nil {
		t.Fatal(err)
	}
	if got, ok := readSalvageCheckpoint(d, lay); !ok || got != ck {
		t.Fatalf("checkpoint lost with copy A damaged: %+v ok=%v", got, ok)
	}
	write := func(addr int, data []byte) error { return d.WriteSectors(addr, data) }
	if err := clearSalvageCheckpoint(write, lay); err != nil {
		t.Fatal(err)
	}
	if _, ok := readSalvageCheckpoint(d, lay); ok {
		t.Fatal("checkpoint survived clearSalvageCheckpoint")
	}
}

// TestSalvageCrashResume is the resumable-salvage acceptance scenario: a
// salvage run is crashed at every barrier epoch, and from each crash image
// (a) the normal mount refuses the half-salvaged volume with
// ErrSalvageInProgress once the checkpoint is durable, and (b) a salvaging
// mount resumes from the checkpoint and yields a mountable volume with every
// committed file intact.
func TestSalvageCrashResume(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	files := map[string][]byte{}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("sr/f%03d", i)
		data := payload(120+i*307, byte(i))
		if i%7 == 6 {
			data = nil
		}
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	destroyNameTable(d, v)

	// Run the full salvage under a write-back window: every write it makes is
	// journaled with its barrier epoch, the platter stays at the crash image.
	d.EnableWriteBack()
	v2, st, err := Salvage(d, testConfig())
	if err != nil {
		t.Fatalf("Salvage under write-back: %v", err)
	}
	if st.Checkpoints < 3 {
		t.Fatalf("Checkpoints = %d, want >= 3 (one per phase at least)", st.Checkpoints)
	}
	if st.Resumed {
		t.Fatalf("fresh salvage reported Resumed: %+v", st)
	}
	trace := d.Trace()
	v2.Crash()
	maxEpoch := 0
	for _, w := range trace {
		if w.Epoch > maxEpoch {
			maxEpoch = w.Epoch
		}
	}
	if maxEpoch < 8 {
		t.Fatalf("salvage produced only %d barrier epochs; write-back not engaged?", maxEpoch)
	}

	cut := func(cutEpoch int) *disk.Disk {
		dc := d.Clone(sim.NewVirtualClock())
		for _, w := range trace {
			if w.Epoch < cutEpoch {
				dc.ApplyJournaled(w)
			}
		}
		return dc
	}

	guarded, resumed := 0, 0
	phases := map[string]bool{}
	for e := 1; e <= maxEpoch+1; e++ {
		// Probe 1: the normal mount ladder must never serve a half-salvaged
		// volume. Either it fails (no checkpoint yet: the destroyed name
		// table; checkpoint durable: ErrSalvageInProgress), or — on the last
		// epochs, after the checkpoint was cleared — the volume is complete.
		dm := cut(e)
		vm, _, merr := Mount(dm, testConfig())
		if merr == nil {
			for name, want := range files {
				f, err := vm.Open(name, 0)
				if err != nil {
					t.Fatalf("epoch %d: plain mount served an incomplete volume: %s: %v", e, name, err)
				}
				if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
					t.Fatalf("epoch %d: plain mount served wrong content for %s: %v", e, name, err)
				}
			}
			vm.Crash()
		} else if errors.Is(merr, ErrSalvageInProgress) {
			guarded++
			// The read-only rung must refuse for the same reason.
			if _, _, roerr := Mount(dm, testConfig(), ReadOnly()); !errors.Is(roerr, ErrSalvageInProgress) {
				t.Fatalf("epoch %d: read-only mount of mid-salvage volume: %v", e, roerr)
			}
		}

		// Probe 2: the salvaging mount must always produce a full volume.
		ds := cut(e)
		vs, rep, serr := Mount(ds, testConfig(), AllowSalvage())
		if serr != nil {
			t.Fatalf("epoch %d: salvaging mount: %v", e, serr)
		}
		if rep.Salvage != nil && rep.Salvage.Resumed {
			resumed++
			phases[rep.Salvage.ResumedPhase] = true
		}
		for name, want := range files {
			f, err := vs.Open(name, 0)
			if err != nil {
				t.Fatalf("epoch %d: %s lost across salvage crash (resumed=%v): %v",
					e, name, rep.Salvage != nil && rep.Salvage.Resumed, err)
			}
			if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
				t.Fatalf("epoch %d: %s content wrong after resumed salvage: %v", e, name, err)
			}
		}
		if vrep, err := vs.Verify(); err != nil || len(vrep.Problems) != 0 {
			t.Fatalf("epoch %d: Verify after resumed salvage: %v %v", e, err, vrep.Problems)
		}
		// The resumed volume is a normal volume: it takes new work and
		// survives a clean remount.
		if _, err := vs.Create("sr/after", payload(64, 200)); err != nil {
			t.Fatalf("epoch %d: create on resumed volume: %v", e, err)
		}
		if err := vs.Shutdown(); err != nil {
			t.Fatalf("epoch %d: shutdown of resumed volume: %v", e, err)
		}
		vr, ms, err := Mount(ds, testConfig())
		if err != nil || !ms.CleanShutdown {
			t.Fatalf("epoch %d: remount after resumed salvage: %v (clean=%v)", e, err, ms.CleanShutdown)
		}
		vr.Crash()
	}
	t.Logf("epochs=%d guarded=%d resumed=%d phases=%v", maxEpoch, guarded, resumed, phases)
	if guarded == 0 {
		t.Error("no crash image was refused with ErrSalvageInProgress")
	}
	if resumed == 0 {
		t.Error("no crash image resumed from a checkpoint")
	}
	if len(phases) < 2 {
		t.Errorf("resume exercised only phases %v, want at least two distinct phases", phases)
	}
}

// TestSalvageResumeWithWriteFaults composes the resumable salvage with the
// write-fault injector: a salvage that limps through transient write errors
// and bad-on-write sectors still recovers every committed file, and the
// survived faults are charged to the volume's health budget.
func TestSalvageResumeWithWriteFaults(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	files := populate(t, v, 16)
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	destroyNameTable(d, v)

	cfg := testConfig()
	cfg.WriteRetries = 4
	cfg.ReadRetries = 3
	d.InjectFaults(disk.FaultConfig{Seed: 71, TransientWrite: 0.02, BadOnWrite: 0.002})
	v2, st, err := Salvage(d, cfg)
	if err != nil {
		t.Fatalf("Salvage under write faults: %v", err)
	}
	if st.FilesRecovered < len(files) {
		t.Fatalf("FilesRecovered = %d, want >= %d", st.FilesRecovered, len(files))
	}
	for name, want := range files {
		f, err := v2.Open(name, 0)
		if err != nil {
			t.Fatalf("%s lost in faulty salvage: %v", name, err)
		}
		if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s content wrong after faulty salvage: %v", name, err)
		}
	}
	fs := d.FaultStats()
	if fs.TransientWrites == 0 && fs.BadOnWrite == 0 {
		t.Fatalf("fault injector never fired: %+v", fs)
	}
	hs := v2.Stats()
	if fs.TransientWrites > 0 && hs.Faults.WriteRetries == 0 && hs.Faults.WriteRemaps == 0 {
		t.Errorf("survived write faults not charged to health: disk=%+v health=%+v", fs, hs.Faults)
	}
	d.ClearFaults()
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v3, _, err := Mount(d, cfg)
	if err != nil {
		t.Fatalf("remount after faulty salvage: %v", err)
	}
	v3.Crash()
}
