package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
)

// asyncConfig is testConfig with the asynchronous metadata pipeline and the
// adaptive commit controller on.
func asyncConfig() Config {
	cfg := testConfig()
	cfg.AsyncApply = true
	cfg.AdaptiveCommit = true
	return cfg
}

// TestAsyncBasicOps runs the whole operation surface on an async volume and
// checks that results are indistinguishable from the synchronous path,
// including across a clean shutdown and remount.
func TestAsyncBasicOps(t *testing.T) {
	v, d, _ := newTestVolumeCfg(t, asyncConfig())

	data := payload(1200, 7)
	if _, err := v.Create("proj/src/main.mesa", data); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Read-your-writes: the entry must be visible immediately.
	f, err := v.Open("proj/src/main.mesa", 0)
	if err != nil {
		t.Fatalf("open after create: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
	if err := v.Touch("proj/src/main.mesa", 0); err != nil {
		t.Fatalf("touch: %v", err)
	}
	if err := v.SetKeep("proj/src/main.mesa", 2); err != nil {
		t.Fatalf("setkeep: %v", err)
	}
	e, err := v.Stat("proj/src/main.mesa", 0)
	if err != nil || e.Keep != 2 {
		t.Fatalf("stat after setkeep: %+v, %v", e, err)
	}

	// Versions + keep: creating 4 versions with keep=2 leaves the last 2.
	for i := 0; i < 3; i++ {
		if _, err := v.Create("proj/src/main.mesa", payload(600+i, byte(i))); err != nil {
			t.Fatalf("create v%d: %v", i+2, err)
		}
	}
	n := 0
	if err := v.List("proj/src/main.mesa", func(Entry) bool { n++; return true }); err != nil {
		t.Fatalf("list: %v", err)
	}
	if n != 2 {
		t.Fatalf("keep=2 left %d versions, want 2", n)
	}

	// Extend/Write/Contract/SetByteSize on a handle.
	f2, err := v.Create("proj/big", payload(512, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Extend(4); err != nil {
		t.Fatalf("extend: %v", err)
	}
	grown := payload(4*disk.SectorSize, 9)
	if err := f2.WritePages(1, grown); err != nil {
		t.Fatalf("write new pages: %v", err)
	}
	if err := f2.SetByteSize(uint64(5 * disk.SectorSize)); err != nil {
		t.Fatalf("setbytesize: %v", err)
	}
	if err := f2.Contract(2); err != nil {
		t.Fatalf("contract: %v", err)
	}
	if f2.Pages() != 2 {
		t.Fatalf("pages after contract = %d, want 2", f2.Pages())
	}

	// Rename, delete.
	if err := v.Rename("proj/big", "proj/bigger"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := v.Stat("proj/big", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat old name after rename: %v", err)
	}
	if _, err := v.Stat("proj/bigger", 0); err != nil {
		t.Fatalf("stat new name after rename: %v", err)
	}
	if err := v.Delete("proj/bigger", 0); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := v.Stat("proj/bigger", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after delete: %v", err)
	}

	if st, err := v.Verify(); err != nil || len(st.Problems) != 0 {
		t.Fatalf("verify: %v problems=%v", err, st.Problems)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Everything acked must be there after a clean remount.
	v2, ms, err := Mount(d, asyncConfig())
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	if !ms.CleanShutdown {
		t.Fatal("shutdown was not clean")
	}
	e, err = v2.Stat("proj/src/main.mesa", 0)
	if err != nil || e.Version != 4 {
		t.Fatalf("newest version after remount: %+v, %v", e, err)
	}
	if _, err := v2.Stat("proj/bigger", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted file resurrected: %v", err)
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncReadYourWrites is the -race hammer: concurrent writers and
// readers on an async volume, every mutation followed by an immediate read
// that must observe it through (or past) the intent queue.
func TestAsyncReadYourWrites(t *testing.T) {
	v, _, _ := newTestVolumeCfg(t, asyncConfig())

	const shared = 12
	for i := 0; i < shared; i++ {
		if _, err := v.CreateCached(fmt.Sprintf("shared/f%03d", i), payload(256, byte(i))); err != nil {
			t.Fatalf("populate: %v", err)
		}
	}

	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("w%d/f%03d", w, i%10)
				data := payload(300+i, byte(w*16+i))
				if _, err := v.Create(name, data); err != nil {
					errs <- fmt.Errorf("w%d create: %w", w, err)
					return
				}
				// The create must be visible to this (and any) reader now.
				f, err := v.Open(name, 0)
				if err != nil {
					errs <- fmt.Errorf("w%d open-after-create %s: %w", w, name, err)
					return
				}
				got, err := f.ReadAll()
				if err != nil || !bytes.Equal(got, data) {
					errs <- fmt.Errorf("w%d read-your-write %s: %v", w, name, err)
					return
				}
				switch i % 5 {
				case 0: // delete, must be gone immediately
					if err := v.Delete(name, 0); err != nil {
						errs <- fmt.Errorf("w%d delete: %w", w, err)
						return
					}
					if _, err := v.Stat(name, 0); !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("w%d stat-after-delete %s: %v", w, name, err)
						return
					}
				case 1: // rename, both sides must flip immediately
					to := fmt.Sprintf("w%d/r%03d-%d", w, i%10, i)
					if err := v.Rename(name, to); err != nil {
						errs <- fmt.Errorf("w%d rename: %w", w, err)
						return
					}
					if _, err := v.Stat(to, 0); err != nil {
						errs <- fmt.Errorf("w%d stat-after-rename %s: %w", w, to, err)
						return
					}
					if err := v.Delete(to, 0); err != nil {
						errs <- fmt.Errorf("w%d delete renamed: %w", w, err)
						return
					}
				case 2: // hot-spot touch on a shared cached file
					k := (w*31 + i*7) % shared
					sn := fmt.Sprintf("shared/f%03d", k)
					if err := v.Touch(sn, 0); err != nil {
						errs <- fmt.Errorf("w%d touch shared: %w", w, err)
						return
					}
					if _, err := v.Open(sn, 0); err != nil {
						errs <- fmt.Errorf("w%d open shared: %w", w, err)
						return
					}
				case 3: // list own namespace; must include the new file
					seen := false
					if err := v.List(fmt.Sprintf("w%d/", w), func(e Entry) bool {
						if e.Name == name {
							seen = true
						}
						return true
					}); err != nil {
						errs <- fmt.Errorf("w%d list: %w", w, err)
						return
					}
					if !seen {
						errs <- fmt.Errorf("w%d list missed fresh %s", w, name)
						return
					}
				case 4: // group-commit-aware fsync
					if err := v.WaitCommitted(v.CommitSeq()); err != nil {
						errs <- fmt.Errorf("w%d waitcommitted: %w", w, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := v.DrainIntents(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := v.Stats()
	if !st.Intent.Enabled {
		t.Fatal("Intent.Enabled = false on async volume")
	}
	if st.Intent.Enqueued == 0 || st.Intent.Applied != st.Intent.Enqueued {
		t.Fatalf("intent seqs: enqueued=%d applied=%d", st.Intent.Enqueued, st.Intent.Applied)
	}
	if st.Intent.Depth != 0 {
		t.Fatalf("depth after drain = %d", st.Intent.Depth)
	}
	if vs, err := v.Verify(); err != nil || len(vs.Problems) != 0 {
		t.Fatalf("verify after hammer: %v problems=%v", err, vs.Problems)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncDeepQueueCrash freezes the applier, piles up a deep unapplied
// queue, and crashes: acknowledged (WaitCommitted) state must survive, none
// of the frozen intents may be half-applied, and the volume must verify
// clean after recovery.
func TestAsyncDeepQueueCrash(t *testing.T) {
	v, d, _ := newTestVolumeCfg(t, asyncConfig())

	// Acked population: durable by contract.
	ackedData := make(map[string][]byte)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("acked/f%03d", i)
		ackedData[name] = payload(400+i, byte(i))
		if _, err := v.Create(name, ackedData[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.WaitCommitted(v.CommitSeq()); err != nil {
		t.Fatal(err)
	}

	// Freeze the applier and build a deep unapplied queue: creates of new
	// names and deletes of acked files, none of them acked.
	v.q.Suspend()
	for i := 0; i < 40; i++ {
		if _, err := v.Create(fmt.Sprintf("frozen/f%03d", i), payload(128, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := v.Delete(fmt.Sprintf("acked/f%03d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if depth := v.IntentDepth(); depth < 44 {
		t.Fatalf("queue depth = %d, want >= 44", depth)
	}

	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, asyncConfig())
	if err != nil {
		t.Fatalf("mount after crash: %v", err)
	}
	// Every acked file must exist with its exact content — including the
	// four whose deletes were enqueued but never acked (mayExist would
	// also be acceptable for those had the applier been running; with the
	// queue frozen their deletes never staged, so they must survive).
	for name, want := range ackedData {
		f, err := v2.Open(name, 0)
		if err != nil {
			t.Fatalf("acked %s lost after crash: %v", name, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("acked %s content after crash: %v", name, err)
		}
	}
	// The frozen creates never applied, never staged: atomically absent.
	for i := 0; i < 40; i++ {
		if _, err := v2.Stat(fmt.Sprintf("frozen/f%03d", i), 0); !errors.Is(err, ErrNotFound) {
			t.Fatalf("frozen create f%03d leaked past crash: %v", i, err)
		}
	}
	if st, err := v2.Verify(); err != nil || len(st.Problems) != 0 {
		t.Fatalf("verify after crash recovery: %v problems=%v", err, st.Problems)
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncWaitCommittedDurable crashes immediately after a WaitCommitted
// ack with the applier running normally: the acked create must survive.
func TestAsyncWaitCommittedDurable(t *testing.T) {
	v, d, _ := newTestVolumeCfg(t, asyncConfig())
	data := payload(900, 5)
	if _, err := v.Create("must/survive", data); err != nil {
		t.Fatal(err)
	}
	if err := v.WaitCommitted(v.CommitSeq()); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := v2.Open("must/survive", 0)
	if err != nil {
		t.Fatalf("acked create lost: %v", err)
	}
	if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("acked content: %v", err)
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncStatsExposure checks the new Stats surface: intent queue gauges
// and the adaptive force deadline.
func TestAsyncStatsExposure(t *testing.T) {
	v, _, _ := newTestVolumeCfg(t, asyncConfig())
	st := v.Stats()
	if !st.Commit.Adaptive {
		t.Fatal("Commit.Adaptive = false with AdaptiveCommit set")
	}
	// Format-time staging already trained the controller; the deadline
	// must be inside [floor, ceiling].
	cfg := asyncConfig()
	if d := st.Commit.ForceDeadline; d < cfg.commitFloor() || d > 500*time.Millisecond {
		t.Fatalf("ForceDeadline = %v, want within [%v, 500ms]", d, cfg.commitFloor())
	}
	for i := 0; i < 20; i++ {
		if _, err := v.Create(fmt.Sprintf("s/f%02d", i), payload(64, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.DrainIntents(); err != nil {
		t.Fatal(err)
	}
	st = v.Stats()
	if st.Intent.Enqueued < 20 || st.Intent.Applied != st.Intent.Enqueued {
		t.Fatalf("intent counters: %+v", st.Intent)
	}
	if st.Intent.MaxDepth < 1 {
		t.Fatalf("MaxDepth = %d, want >= 1", st.Intent.MaxDepth)
	}
	if st.Intent.ApplyLag.Count < 20 {
		t.Fatalf("ApplyLag.Count = %d, want >= 20", st.Intent.ApplyLag.Count)
	}
	if st.Intent.ApplierBusy <= 0 {
		t.Fatalf("ApplierBusy = %v, want > 0", st.Intent.ApplierBusy)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// After shutdown the queue is closed; mutations fail cleanly.
	if _, err := v.Create("late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after shutdown: %v", err)
	}
}

// TestSyncVolumeUnaffected pins that a volume without AsyncApply has a nil
// queue and zero-valued IntentStats.
func TestSyncVolumeUnaffected(t *testing.T) {
	v, _, _ := newTestVolumeCfg(t, testConfig())
	if v.async() {
		t.Fatal("sync volume has an intent queue")
	}
	if _, err := v.Create("a/b", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Intent.Enabled || st.Intent.Enqueued != 0 {
		t.Fatalf("sync volume IntentStats = %+v", st.Intent)
	}
	if st.Commit.Adaptive {
		t.Fatal("sync volume reports adaptive commit")
	}
	if st.Commit.ForceDeadline != 500*time.Millisecond {
		t.Fatalf("fixed ForceDeadline = %v", st.Commit.ForceDeadline)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
