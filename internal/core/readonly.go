package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/wal"
)

// MountReadOnly mounts the volume read-only.
//
// Deprecated: use Mount(d, cfg, ReadOnly()).
func MountReadOnly(d *disk.Disk, cfg Config) (*Volume, MountStats, error) {
	return mountReadOnly(d, cfg)
}

// mountReadOnly is the degraded mount between a failed writable mount and the
// destructive Salvage sweep: it replays the log entirely in memory and
// refuses every mutation, so it works even when the log region or both
// anchor copies are unwritable — a writable Mount cannot finish recovery
// without resetting the log, and Salvage abandons the log's history. The
// volume serves the committed state (replayed name-table sectors overlay the
// stale home copies inside the cache; leader images go to the in-memory
// pending map; the allocation map is rebuilt but never saved) and writes
// nothing anywhere: a later writable mount finds the platters untouched.
//
// If the log itself cannot be opened or replayed, the mount degrades one
// step further and serves the last flushed home state — stale but internally
// consistent, because home flushes are barriered behind the log's anchor
// advance. MountStats.LogUnavailable reports that case.
func mountReadOnly(d *disk.Disk, cfg Config) (*Volume, MountStats, error) {
	var ms MountStats
	start := d.Clock().Now()
	root, err := readRoot(d)
	if err != nil {
		return nil, ms, err
	}
	lay := root.layout
	if ck, ok := readSalvageCheckpoint(d, lay); ok {
		// A half-salvaged name table is not safe to serve even read-only:
		// copy B may hold the salvage manifest and copy A a partial tree.
		return nil, ms, fmt.Errorf("core: interrupted salvage (phase %s): %w", ck.phase, ErrSalvageInProgress)
	}
	cfg.LogVAM = root.logVAM
	v := newVolume(d, cfg, lay)
	v.readOnly = true
	ms.CleanShutdown = root.clean
	ms.ReadOnly = true
	// The uid chunk is not advanced on disk (nothing is written); bump it
	// in memory only so any internal allocation stays unique this session.
	v.uidNext.Store((root.uidChunk + 1) << 32)

	leaderImages := make(map[int][]byte)
	ntImages := make(map[uint64][]byte)
	var recovered wal.RecoveryStats
	lg, lerr := wal.Open(d, lay.logBase, lay.logSize, v.clk, wal.Config{
		Interval:    cfg.interval(),
		Thirds:      cfg.Thirds,
		ReadRetries: cfg.ReadRetries,
	})
	if lerr == nil {
		// Replay reads feed the health budget even read-only, so a mount
		// that limps through decayed media reports Degraded in Stats().
		lg.OnReadFault = v.noteReadFault
		rs, rerr := lg.Replay(func(kind uint8, target uint64, data []byte) error {
			cp := make([]byte, len(data))
			copy(cp, data)
			switch kind {
			case wal.KindNameTable:
				ntImages[target] = cp
			case wal.KindLeader:
				leaderImages[int(target)] = cp
			}
			return nil
		})
		if rerr != nil {
			ms.LogUnavailable = true
			leaderImages = make(map[int][]byte)
			ntImages = make(map[uint64][]byte)
		} else {
			ms.LogRecords = rs.Records
			ms.LogImagesApplied = rs.Images
			ms.LogRepaired = rs.Repaired
			ms.LogTornRecords = rs.TornRecords
			ms.LogTailDiscarded = rs.TailDiscarded
			ms.LogGapBreaks = rs.GapBreaks
			recovered = rs
		}
	} else {
		ms.LogUnavailable = true
	}

	v.ntOverride = ntImages
	v.cache = newNTCache(v, cfg.cacheSize())
	v.nt, err = btree.Open(v.cache)
	if err != nil {
		return nil, ms, fmt.Errorf("core: name table unreadable in read-only mount: %w", err)
	}

	// Allocation map and leader ownership are rebuilt in memory; the map is
	// only consulted by Verify, never saved.
	ms.VAMReconstructed = true
	scanStart := v.clk.Now()
	owners, err := v.scanForRebuild(true)
	if err != nil {
		return nil, ms, err
	}
	ms.VAMElapsed = v.clk.Now() - scanStart

	// Replayed leader images whose file still owns the sector are served
	// from the pending map, exactly where the read path's leader
	// verification looks first.
	for addr, img := range leaderImages {
		uid, ok := leaderUID(img)
		if !ok {
			continue
		}
		if owner, present := owners[addr]; present && owner == uid {
			v.pendingLeaders[addr] = img
		}
	}
	ms.Elapsed = v.clk.Now() - start
	v.noteRecovery(recovered, ms)
	v.finishMount()
	return v, ms, nil
}
