package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestModelCheckRandomCrashes is a miniature model checker: it runs many
// seeded episodes, each performing a random operation sequence against both
// the volume and an in-memory reference model, crashing the device at a
// random write, recovering, and checking the recovered volume against the
// reference state as of the last commit. Durability (committed data
// survives), atomicity (no torn metadata), and the bounded-loss contract
// (only the uncommitted window disappears) are all checked at once.
func TestModelCheckRandomCrashes(t *testing.T) {
	const episodes = 60
	for ep := 0; ep < episodes; ep++ {
		ep := ep
		t.Run(fmt.Sprintf("seed%02d", ep), func(t *testing.T) {
			runModelCheckEpisode(t, int64(ep)*7919+13)
		})
	}
}

type refState struct {
	committed map[string][]byte // name!version -> content at last force
	staged    map[string][]byte // changes since the last force (nil = deleted)
}

func key(name string, ver uint32) string { return fmt.Sprintf("%s!%d", name, ver) }

func runModelCheckEpisode(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	// A huge commit interval pins commit points to the explicit Force
	// calls the reference model tracks; the timer-driven path is covered
	// elsewhere.
	cfg := testConfig()
	cfg.GroupCommitInterval = time.Hour
	// A third of the episodes exercise the VAM-logging extension.
	cfg.LogVAM = seed%3 == 0
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ref := refState{committed: map[string][]byte{}, staged: map[string][]byte{}}
	versions := map[string]uint32{} // live newest version per name
	names := []string{"a", "b/b", "c/c/c", "dd", "e!e"}

	// Arm the crash at a random upcoming write.
	crashAt := 5 + rng.Intn(120)
	d.SetWriteFault(disk.FailAfterWrites(crashAt, rng.Intn(3)))

	halted := false
	steps := 200
	for i := 0; i < steps && !halted; i++ {
		name := names[rng.Intn(len(names))]
		var err error
		switch op := rng.Intn(10); {
		case op < 5: // create a new version
			data := payload(1+rng.Intn(2500), byte(rng.Intn(256)))
			var f *File
			f, err = v.Create(name, data)
			if err == nil {
				versions[name] = f.Entry().Version
				ref.staged[key(name, f.Entry().Version)] = data
			}
		case op < 7: // delete the newest version
			ver := versions[name]
			if ver == 0 {
				continue
			}
			err = v.Delete(name, ver)
			if err == nil {
				ref.staged[key(name, ver)] = nil
				// Find the next-lower live version for bookkeeping.
				versions[name] = 0
				for vv := ver - 1; vv >= 1; vv-- {
					k := key(name, vv)
					if dat, ok := ref.staged[k]; ok {
						if dat != nil {
							versions[name] = vv
						}
						break
					}
					if ref.committed[k] != nil {
						versions[name] = vv
						break
					}
					if vv == 1 {
						break
					}
				}
			}
		case op < 8: // touch
			if versions[name] == 0 {
				continue
			}
			err = v.Touch(name, versions[name])
		case op < 9: // read back and verify against the model
			ver := versions[name]
			if ver == 0 {
				continue
			}
			var f *File
			f, err = v.Open(name, ver)
			if err == nil {
				var got []byte
				got, err = f.ReadAll()
				if err == nil {
					want := ref.staged[key(name, ver)]
					if want == nil {
						want = ref.committed[key(name, ver)]
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("seed %d: live read of %s!%d mismatch", seed, name, ver)
					}
				}
			}
		default: // force: staged becomes committed
			err = v.Force()
			if err == nil {
				for k, val := range ref.staged {
					if val == nil {
						delete(ref.committed, k)
					} else {
						ref.committed[k] = val
					}
				}
				ref.staged = map[string][]byte{}
			}
		}
		if err != nil {
			if errors.Is(err, disk.ErrHalted) {
				halted = true
				break
			}
			t.Fatalf("seed %d step %d: %v", seed, i, err)
		}
	}
	if !halted {
		// The crash point was beyond the workload; crash now.
		v.Crash()
	}
	d.Revive()

	v2, _, err := Mount(d, cfg)
	if err != nil {
		t.Fatalf("seed %d: mount after crash: %v", seed, err)
	}
	if err := v2.nt.Check(); err != nil {
		t.Fatalf("seed %d: name table corrupt: %v", seed, err)
	}
	// Durability: every committed version is present and intact.
	for k, want := range ref.committed {
		var name string
		var ver uint32
		if _, err := fmt.Sscanf(k, "%s", &name); err != nil {
			t.Fatal(err)
		}
		// key format name!ver where name may contain '!': split at last '!'.
		idx := len(k) - 1
		for k[idx] != '!' {
			idx--
		}
		name = k[:idx]
		fmt.Sscanf(k[idx+1:], "%d", &ver)
		f, err := v2.Open(name, ver)
		if err != nil {
			t.Fatalf("seed %d: committed %s lost: %v", seed, k, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("seed %d: committed %s corrupted: %v", seed, k, err)
		}
	}
	// The volume is immediately usable and fresh allocations never land
	// on pages belonging to surviving files.
	for i := 0; i < 10; i++ {
		if _, err := v2.Create(fmt.Sprintf("post/p%02d", i), payload(900, byte(i))); err != nil {
			t.Fatalf("seed %d: post-recovery create: %v", seed, err)
		}
	}
	for k, want := range ref.committed {
		idx := len(k) - 1
		for k[idx] != '!' {
			idx--
		}
		var ver uint32
		fmt.Sscanf(k[idx+1:], "%d", &ver)
		f, err := v2.Open(k[:idx], ver)
		if err != nil {
			t.Fatalf("seed %d: %s lost after post-recovery writes: %v", seed, k, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("seed %d: %s overwritten by post-recovery allocation", seed, k)
		}
	}
}
