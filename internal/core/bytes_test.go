package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/sim"
)

func TestReadAtBasics(t *testing.T) {
	v, _, _ := newTestVolume(t)
	data := payload(3000, 5)
	f, err := v.Create("ra", data)
	if err != nil {
		t.Fatal(err)
	}
	// Middle of the file, crossing a page boundary.
	p := make([]byte, 700)
	n, err := f.ReadAt(p, 400)
	if err != nil || n != 700 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(p, data[400:1100]) {
		t.Fatal("ReadAt content mismatch")
	}
	// Tail read hits EOF.
	n, err = f.ReadAt(p, 2900)
	if n != 100 || !errors.Is(err, io.EOF) {
		t.Fatalf("tail ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(p[:100], data[2900:]) {
		t.Fatal("tail content mismatch")
	}
	// Past EOF.
	if _, err := f.ReadAt(p, 5000); !errors.Is(err, io.EOF) {
		t.Fatalf("past-EOF ReadAt: %v", err)
	}
	if _, err := f.ReadAt(p, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestWriteAtReadModifyWrite(t *testing.T) {
	v, _, _ := newTestVolume(t)
	data := payload(2000, 1)
	f, err := v.Create("wa", data)
	if err != nil {
		t.Fatal(err)
	}
	patch := payload(300, 0x90)
	if _, err := f.WriteAt(patch, 700); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want[700:], patch)
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("WriteAt merge failed: %v", err)
	}
	// Size unchanged by an interior write.
	if f.Size() != 2000 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestWriteAtGrowsSizeWithinAllocation(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("grow", payload(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	// One data page allocated (512 bytes): grow within it.
	if _, err := f.WriteAt(payload(200, 2), 300); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 500 {
		t.Fatalf("size = %d, want 500", f.Size())
	}
	// Beyond the allocation fails with a helpful error.
	if _, err := f.WriteAt(payload(200, 3), 400); err == nil {
		t.Fatal("write past allocation accepted")
	}
	// After Extend it succeeds.
	if err := f.Extend(1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(payload(200, 3), 400); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 600 {
		t.Fatalf("size = %d, want 600", f.Size())
	}
}

func TestRename(t *testing.T) {
	v, _, _ := newTestVolume(t)
	for i := 1; i <= 3; i++ {
		if _, err := v.Create("old.name", payload(100*i, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Rename("old.name", "new.name"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Open("old.name", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old name still resolves: %v", err)
	}
	for i := 1; i <= 3; i++ {
		f, err := v.Open("new.name", uint32(i))
		if err != nil {
			t.Fatalf("version %d lost by rename: %v", i, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, payload(100*i, byte(i))) {
			t.Fatalf("version %d corrupted by rename", i)
		}
	}
	// Rename onto an existing name fails.
	if _, err := v.Create("occupied", nil); err != nil {
		t.Fatal(err)
	}
	if err := v.Rename("new.name", "occupied"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	if err := v.Rename("ghost", "anything"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename of missing: %v", err)
	}
}

func TestRenameSurvivesCrash(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if _, err := v.Create("before", payload(500, 7)); err != nil {
		t.Fatal(err)
	}
	if err := v.Rename("before", "after"); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Open("before", 0); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name survived crash")
	}
	f, err := v2.Open("after", 0)
	if err != nil {
		t.Fatalf("renamed file lost: %v", err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, payload(500, 7)) {
		t.Fatal("renamed file corrupted")
	}
}

// Property: WriteAt followed by ReadAt returns exactly what was written,
// for arbitrary offsets and lengths within the allocation.
func TestQuickWriteAtReadAt(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const pages = 16
	f, err := v.Create("q", payload(pages*disk.SectorSize, 0))
	if err != nil {
		t.Fatal(err)
	}
	mirror := payload(pages*disk.SectorSize, 0)
	i := 0
	fn := func(off uint16, length uint16, seed byte) bool {
		i++
		o := int64(off) % int64(pages*disk.SectorSize)
		l := int(length) % (pages*disk.SectorSize - int(o))
		if l == 0 {
			return true
		}
		p := payload(l, seed)
		if _, err := f.WriteAt(p, o); err != nil {
			return false
		}
		copy(mirror[o:], p)
		// Read back a window covering the write.
		back := make([]byte, l)
		if _, err := f.ReadAt(back, o); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(back, mirror[o:int(o)+l])
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
