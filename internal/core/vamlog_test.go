package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func vamLogConfig() Config {
	c := testConfig()
	c.LogVAM = true
	return c
}

func newVAMLogVolume(t *testing.T) (*Volume, *disk.Disk, *sim.VirtualClock) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, vamLogConfig())
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return v, d, clk
}

func TestVAMLogBasicOps(t *testing.T) {
	v, _, _ := newVAMLogVolume(t)
	data := payload(1500, 3)
	if _, err := v.Create("vl/a", data); err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("vl/a", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if err := v.Delete("vl/a", 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestVAMLogCrashRecoverySkipsScan(t *testing.T) {
	v, d, _ := newVAMLogVolume(t)
	for i := 0; i < 60; i++ {
		if _, err := v.Create(fmt.Sprintf("vl/f%03d", i), payload(300+i*11, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i += 4 {
		if err := v.Delete(fmt.Sprintf("vl/f%03d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	// The deletes' shadow merge happened in the commit callback; their
	// VAM deltas ride the next force.
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	want := v.VAM().FreeCount()
	v.Crash()
	d.Revive()
	v2, ms, err := Mount(d, testConfig()) // mode comes from the root page
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if ms.VAMReconstructed {
		t.Fatal("VAM logging did not skip reconstruction")
	}
	if got := v2.VAM().FreeCount(); got != want {
		t.Fatalf("recovered FreeCount %d != committed %d", got, want)
	}
	// All surviving files intact.
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("vl/f%03d", i)
		_, err := v2.Open(name, 0)
		if i%4 == 0 {
			if err == nil {
				t.Fatalf("deleted %s resurrected", name)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s lost: %v", name, err)
		}
	}
	// And the recovered map is safe: new creates don't collide.
	for i := 0; i < 20; i++ {
		if _, err := v2.Create(fmt.Sprintf("vl/new%02d", i), payload(400, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 60; i++ {
		if i%4 == 0 {
			continue
		}
		f, err := v2.Open(fmt.Sprintf("vl/f%03d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, payload(300+i*11, byte(i))) {
			t.Fatalf("old file overwritten by post-recovery allocation: %v", err)
		}
	}
}

func TestVAMLogRecoveryNeverUnderCounts(t *testing.T) {
	// Crash right after a force whose commit callback merged shadows but
	// before the deltas' own force: the recovered map may over-count
	// allocations (leak) but must never mark live pages free.
	v, d, _ := newVAMLogVolume(t)
	f, err := v.Create("vl/live", payload(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	if err := v.Delete("vl/live", 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Force(); err != nil { // commit merges shadow after the record
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The delete committed, so the file is gone; its pages may or may
	// not be reusable yet (the delta may have ridden the next force),
	// but no page of any OTHER file may be marked free.
	e := f.Entry()
	for _, r := range e.Runs {
		_ = r // leak allowed; nothing to assert per-page here
	}
	// Safety check by construction: fill the volume with creates and
	// verify nothing collides.
	seen := map[uint32]string{}
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("vl/fill%02d", i)
		g, err := v2.Create(name, payload(600, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		ge := g.Entry()
		for _, r := range ge.Runs {
			for p := r.Start; p < r.Start+r.Len; p++ {
				if prev, dup := seen[p]; dup {
					t.Fatalf("page %d allocated to both %s and %s", p, prev, name)
				}
				seen[p] = name
			}
		}
	}
}

func TestVAMLogFallsBackOnDamage(t *testing.T) {
	v, d, _ := newVAMLogVolume(t)
	for i := 0; i < 20; i++ {
		if _, err := v.Create(fmt.Sprintf("vl/f%02d", i), payload(200, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	v.Force()
	want := v.VAM().FreeCount()
	v.Crash()
	d.Revive()
	// Damage a save-area bitmap sector: the fast path must fall back to
	// reconstruction, not load garbage.
	d.CorruptSectors(v.lay.vamBase+1, 2)
	v2, ms, err := Mount(d, testConfig())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if !ms.VAMReconstructed {
		t.Fatal("damaged save area did not trigger reconstruction")
	}
	if got := v2.VAM().FreeCount(); got != want {
		t.Fatalf("fallback FreeCount %d != %d", got, want)
	}
}

func TestVAMLogSurvivesLogWrap(t *testing.T) {
	// Enough churn to wrap the log several times: the thirds protocol
	// must keep flushing VAM sectors home so replay reproduces the map.
	v, d, _ := newVAMLogVolume(t)
	for i := 0; i < 300; i++ {
		if _, err := v.Create(fmt.Sprintf("vl/w%04d", i), payload(500, byte(i))); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if err := v.Delete(fmt.Sprintf("vl/w%04d", i-1), 0); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 9 {
			if err := v.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	v.Force()
	v.Force() // carry the final shadow-merge deltas
	want := v.VAM().FreeCount()
	if v.Log().Stats().ThirdCrossings == 0 {
		t.Fatal("workload did not wrap the log; test is vacuous")
	}
	v.Crash()
	d.Revive()
	v2, ms, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ms.VAMReconstructed {
		t.Fatal("fast path not taken after wrap")
	}
	if got := v2.VAM().FreeCount(); got != want {
		t.Fatalf("FreeCount after wrapped recovery %d != %d", got, want)
	}
}

func TestVAMLogMountOfPlainVolumeIsSafe(t *testing.T) {
	// Asking for LogVAM on a volume formatted without it must not load a
	// stale save area: the root page records the true mode.
	clk := sim.NewVirtualClock()
	d, _ := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	v, err := Format(d, testConfig()) // plain volume
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("plain/f", payload(999, 1)); err != nil {
		t.Fatal(err)
	}
	v.Force()
	v.Crash()
	d.Revive()
	lvCfg := testConfig()
	lvCfg.LogVAM = true
	v2, ms, err := Mount(d, lvCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ms.VAMReconstructed {
		t.Fatal("plain volume mounted via the LogVAM fast path")
	}
	if _, err := v2.Open("plain/f", 0); err != nil {
		t.Fatal(err)
	}
}
