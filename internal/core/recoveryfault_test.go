package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
)

// crashWithDirtyLog builds a volume with committed files and crashes it with
// replayable log records outstanding (home pages stale), so the next mount
// has real replay work to do. Returns the disk and the committed files.
func crashWithDirtyLog(t *testing.T, cfg Config) (*disk.Disk, map[string][]byte) {
	t.Helper()
	v, d, _ := newTestVolumeWith(t, cfg)
	files := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("rf/f%02d", i)
		data := payload(200+i*151, byte(i))
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}
	if err := v.WaitCommitted(v.CommitSeq()); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	return d, files
}

// TestRecoveryStatsSurfaced pins the observability satellite: a mount that
// replays the log reports what it did through Stats().Recovery and records
// an EvRecovery trace event, and a clean mount says so too.
func TestRecoveryStatsSurfaced(t *testing.T) {
	d, files := crashWithDirtyLog(t, testConfig())
	v, ms, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := v.Stats().Recovery
	if !rs.Ran || rs.CleanShutdown {
		t.Fatalf("Recovery = %+v, want Ran && !CleanShutdown after a crash", rs)
	}
	if rs.Records == 0 || rs.Images == 0 {
		t.Fatalf("replay did nothing: %+v (mount %+v)", rs, ms.MountStats)
	}
	if rs.Records != ms.LogRecords || rs.Images != ms.LogImagesApplied {
		t.Fatalf("Stats().Recovery %+v disagrees with MountStats %+v", rs, ms.MountStats)
	}
	if rs.Elapsed <= 0 {
		t.Fatalf("recovery elapsed not recorded: %+v", rs)
	}
	found := false
	for _, ev := range v.TraceEvents() {
		if ev.Kind == obs.EvRecovery {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvRecovery event in the trace ring after a replaying mount")
	}
	_ = files
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}

	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Crash()
	rs2 := v2.Stats().Recovery
	if !rs2.Ran || !rs2.CleanShutdown {
		t.Fatalf("Recovery after clean shutdown = %+v, want Ran && CleanShutdown", rs2)
	}
}

// TestMountUnderComposedFaults is the fault-tolerant-replay satellite: a
// crashed volume is remounted over media with read decay AND write faults
// active at once. The mount must limp through — every committed file
// readable — and the faults recovery survived must show up in the health
// classification: Degraded (aggressive scrub scheduled) rather than a
// silently Healthy mount.
func TestMountUnderComposedFaults(t *testing.T) {
	cfg := testConfig()
	cfg.ReadRetries = 8
	cfg.WriteRetries = 8
	cfg.ErrorBudget = 1 // any survived fault must classify Degraded
	d, files := crashWithDirtyLog(t, cfg)

	// Hot enough that the handful of recovery I/Os reliably draw faults.
	d.InjectFaults(disk.FaultConfig{
		Seed:           faultSeed(t),
		TransientRead:  0.2,
		TransientWrite: 0.05,
	})
	v, _, err := Mount(d, cfg)
	if err != nil {
		t.Fatalf("mount under composed faults: %v", err)
	}
	d.ClearFaults()
	for name, want := range files {
		f, err := v.Open(name, 0)
		if err != nil {
			t.Fatalf("%s lost across faulty recovery: %v", name, err)
		}
		if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s content wrong after faulty recovery: %v", name, err)
		}
	}
	st := v.Stats()
	if st.Faults.ErrorBudget == 0 {
		t.Fatalf("recovery under hot decay charged nothing to health: %+v", st.Faults)
	}
	// The classification contract: a used budget at or past the limit may
	// not leave the volume silently Healthy.
	if st.Faults.ErrorBudget >= cfg.ErrorBudget && st.Health < HealthDegraded {
		t.Fatalf("health %v with %d budget used after faulty recovery, want >= Degraded",
			st.Health, st.Faults.ErrorBudget)
	}
	if st.Health >= HealthOffline {
		t.Fatalf("health %v after survivable faults", st.Health)
	}
	v.Crash()
}

// TestMountWhileScrubHammer mounts a Degraded volume (scrub auto-scheduled
// by finishMount) and immediately hammers it with concurrent reads and
// creates while the scrub pass runs — the -race line's mount/scrub
// composition check.
func TestMountWhileScrubHammer(t *testing.T) {
	cfg := testConfig()
	cfg.ReadRetries = 8
	d, files := crashWithDirtyLog(t, cfg)
	v, _, err := Mount(d, cfg)
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	// Degrade deterministically right after the mount (fault charges during
	// replay are count-nondeterministic with parallel mount workers): the
	// Degraded edge schedules the scrub exactly as a faulty recovery would.
	v.degradeTo(HealthDegraded, "test: forced after mount")
	if v.Health() != HealthDegraded {
		t.Fatalf("health %v, want Degraded", v.Health())
	}

	var wg sync.WaitGroup
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := names[(w*50+i)%len(names)]
				f, err := v.Open(name, 0)
				if err != nil {
					t.Errorf("open %s during scrub: %v", name, err)
					return
				}
				if _, err := f.ReadAll(); err != nil {
					t.Errorf("read %s during scrub: %v", name, err)
					return
				}
				if i%10 == 0 {
					if _, err := v.Create(fmt.Sprintf("hm/w%d-%d", w, i), payload(64, byte(i))); err != nil {
						t.Errorf("create during scrub: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for v.Stats().Faults.Scrubs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduled scrub never completed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
