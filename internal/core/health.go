package core

import (
	"errors"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
)

// The volume health state machine: the write-path fault model's answer to
// "what does the file system do when retries stop working". Every write
// site funnels through writeSectors (bounded retries + spare-sector remap,
// mirroring the WAL's own policy), and every absorbed fault charges a
// weighted error budget. The budget drives a monotonic four-state FSM:
//
//	Healthy  —— budget exceeded ——▶  Degraded   (scrub scheduled aggressively)
//	Degraded —— budget 4× / write fails outright / spares gone ——▶ ReadOnly
//	any      —— device halted ——▶  Offline
//
// Degraded volumes still serve everything — the state is a warning plus an
// immediate scrub pass to re-duplicate what the faults degraded. ReadOnly
// means durability can no longer be promised: mutations fail with
// ErrReadOnly while reads keep serving from whatever redundancy remains,
// the same contract as a MountReadOnly degraded mount. Offline means the
// device itself is gone and even reads cannot be served.
//
// Transitions are one-way (a volume never self-promotes back to Healthy;
// remount after repair for that), so the FSM is a simple monotonic
// max-exchange over an atomic — callable from the disk's op observer and
// the WAL's write-fault callback, both of which run under component locks.

// Health is the volume health state. States are ordered: transitions only
// ever increase, so Health() >= HealthReadOnly means "mutations refused".
type Health int32

const (
	// HealthHealthy is the normal state: no fault activity beyond the
	// error budget.
	HealthHealthy Health = iota
	// HealthDegraded means the error budget was exceeded: operations
	// still succeed, but the media is decaying faster than the background
	// scrub assumes, so a scrub pass has been scheduled immediately.
	HealthDegraded
	// HealthReadOnly means durability can no longer be promised (a write
	// failed past retries and remap, or the spare pool is exhausted):
	// mutations fail with ErrReadOnly, reads keep serving.
	HealthReadOnly
	// HealthOffline means the device has failed outright (halted);
	// nothing can be served.
	HealthOffline
)

// String names the state for stats lines and trace events.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthReadOnly:
		return "read-only"
	case HealthOffline:
		return "offline"
	default:
		return "unknown"
	}
}

// ErrOffline is returned by every operation once the volume is Offline.
var ErrOffline = errors.New("core: volume offline (device failed)")

// Error-budget weights: how much of the budget one absorbed fault burns.
// A retry is cheap and expected under transient faults; a remap consumed a
// finite spare; a hung op stalled the whole device past the deadline.
const (
	weightRetry = 1
	weightRemap = 4
	weightHung  = 8
)

// Health returns the current health state.
func (v *Volume) Health() Health {
	return Health(v.health.Load())
}

// HealthReason reports what caused the last downward transition; empty
// while the volume is healthy.
func (v *Volume) HealthReason() string {
	v.healthMu.Lock()
	defer v.healthMu.Unlock()
	return v.healthWhy
}

// degradeTo moves the FSM to at least h (monotonic: a lower target than the
// current state is a no-op). Safe under component locks — it touches only
// atomics, the reason string, and the trace ring, and runs repair work on a
// fresh goroutine. Returns whether this call made the transition.
func (v *Volume) degradeTo(h Health, why string) bool {
	for {
		cur := v.health.Load()
		if cur >= int32(h) {
			return false
		}
		if !v.health.CompareAndSwap(cur, int32(h)) {
			continue
		}
		v.healthMu.Lock()
		v.healthWhy = why
		v.healthMu.Unlock()
		if v.obs.tracer.Enabled() {
			v.obs.tracer.Emit(obs.Event{
				Time: v.clk.Now(), Kind: obs.EvHealth, Op: h.String(),
				OK: h < HealthReadOnly, A: v.faults.budget.Load(),
			})
		}
		if h == HealthDegraded && v.ready.Load() && !v.closed.Load() {
			// Aggressive scrub: the budget says the media is decaying
			// faster than the background cadence assumes, so restore
			// redundancy now. Errors surface through the pass's own
			// problem list; Scrub serializes behind scrubMu. The ready
			// gate defers the pass when the budget trips mid-mount — the
			// volume is still being wired (recovery itself charges the
			// budget now) — and mount schedules it at the end instead.
			go func() { _, _ = v.Scrub() }()
		}
		return true
	}
}

// chargeBudget burns weight units of the error budget and applies the
// threshold transitions: budget exceeded → Degraded, 4× exceeded →
// ReadOnly. Config.ErrorBudget < 0 disables budget-driven transitions
// (outright failures still transition via noteWriteFault).
func (v *Volume) chargeBudget(weight int64, why string) {
	total := v.faults.budget.Add(weight)
	budget := int64(v.cfg.errorBudget())
	if budget <= 0 {
		return
	}
	switch {
	case total >= 4*budget:
		v.degradeTo(HealthReadOnly, why+" (error budget exhausted)")
	case total >= budget:
		v.degradeTo(HealthDegraded, why+" (error budget exceeded)")
	}
}

// noteWriteFault records the outcome of one write site's retry/remap
// policy: absorbed faults charge the budget, unabsorbed errors transition
// the FSM directly. Shared by the volume's own writeSectors and the WAL's
// OnWriteFault callback.
func (v *Volume) noteWriteFault(retried, remapped int, err error) {
	if retried > 0 {
		v.faults.writeRetries.Add(int64(retried))
		v.chargeBudget(int64(retried)*weightRetry, "write retries")
	}
	if remapped > 0 {
		v.faults.writeRemaps.Add(int64(remapped))
		v.chargeBudget(int64(remapped)*weightRemap, "write remaps")
	}
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, disk.ErrHalted):
		v.degradeTo(HealthOffline, "device halted")
	case errors.Is(err, disk.ErrNoSpares):
		v.degradeTo(HealthReadOnly, "spare-sector pool exhausted")
	default:
		var de *disk.DamagedError
		if errors.As(err, &de) {
			v.degradeTo(HealthReadOnly,
				"write failed past retries and remap")
		}
	}
}

// noteReadFault records the outcome of one recovery read's bounded-retry
// policy (the WAL's OnReadFault callback): absorbed retries charge the
// budget like write retries do, so a mount whose replay limped through
// decayed media lands Degraded — with the aggressive scrub pass that
// implies — instead of silently Healthy. A read that stays failed is not
// escalated here: replay absorbs it through copy repair, and only the
// replay's own verdict (a failed mount) says whether the volume is lost.
func (v *Volume) noteReadFault(retried int, err error) {
	if retried > 0 {
		v.faults.retries.Add(int64(retried))
		if err == nil {
			v.faults.retriedOK.Add(int64(retried))
		}
		v.chargeBudget(int64(retried)*weightRetry, "recovery read retries")
	}
	if err != nil && errors.Is(err, disk.ErrHalted) {
		v.degradeTo(HealthOffline, "device halted")
	}
}

// noteHungOp classifies one disk operation that exceeded Config.OpTimeout:
// the op did complete (the simulated device never wedges forever), but a
// real stalled drive would have held the commit pipeline for this long, so
// it burns budget like a serious fault.
func (v *Volume) noteHungOp(elapsed time.Duration) {
	v.faults.hungOps.Add(1)
	v.chargeBudget(weightHung, "hung I/O")
}

// writeSectors is the volume's one write path to the device: bounded
// in-place retries absorb transient write faults, persistent bad-on-write
// sectors are retired to spares via Remap, and whatever happens is fed to
// the health FSM. Every metadata/data write site in core goes through it
// (the WAL applies the same policy internally and reports through
// OnWriteFault).
func (v *Volume) writeSectors(addr int, data []byte) error {
	retried, remapped, err := disk.WriteSectorsRetry(v.d, addr, data, v.cfg.writeRetries())
	if retried > 0 || remapped > 0 || err != nil {
		v.noteWriteFault(retried, remapped, err)
	}
	return err
}

// healthErr translates the current state into the error a mutation (or,
// for Offline, any operation) must return, or nil when operations may
// proceed. The mount-time readOnly flag is checked separately by callers:
// health-ReadOnly and mount-ReadOnly deliberately share ErrReadOnly.
func (v *Volume) healthErr() error {
	switch v.Health() {
	case HealthOffline:
		return ErrOffline
	case HealthReadOnly:
		return ErrReadOnly
	default:
		return nil
	}
}
