package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/parscan"
)

// The online scrubber: the active half of the paper's cheap-redundancy
// scheme. The passive half repairs a bad copy only when a read happens to
// hit it, so a latent sector error that develops between mounts silently
// halves the redundancy until the *other* copy decays too — at which point
// the page is lost. Scrub walks every duplicated structure (volume root
// pair, log anchor and record copies, both name-table copies) plus every
// leader page, CRC-verifies each side, rewrites a good image over a decayed
// or rotten one, and retires persistently bad sectors to the drive's spare
// pool after bounded rewrite attempts.

// ScrubStats reports one scrub pass.
type ScrubStats struct {
	NTPagesChecked  int
	NTRepaired      int // name-table home copies rewritten (per copy)
	NTLost          int // pages with no readable copy anywhere
	LeadersChecked  int
	LeadersRepaired int
	RootsRepaired   int
	LogRecords      int // valid log records audited
	LogRepaired     int // log sectors rewritten from their twin
	Retired         int // sectors remapped to spares
	SectorsChecked  int
	// SpareExhausted is set when a retirement failed because the drive's
	// spare-sector pool is empty (disk.ErrNoSpares): redundancy can no
	// longer be restored and the volume transitions to read-only.
	SpareExhausted bool
	Problems       []string
	Elapsed        time.Duration
}

// Repaired sums all copy rewrites of the pass.
func (st ScrubStats) Repaired() int {
	return st.NTRepaired + st.LeadersRepaired + st.RootsRepaired + st.LogRepaired
}

func (st *ScrubStats) addProblem(format string, args ...interface{}) {
	st.Problems = append(st.Problems, fmt.Sprintf(format, args...))
}

// merge folds a worker's private stats into st.
func (st *ScrubStats) merge(o ScrubStats) {
	st.NTPagesChecked += o.NTPagesChecked
	st.NTRepaired += o.NTRepaired
	st.NTLost += o.NTLost
	st.LeadersChecked += o.LeadersChecked
	st.LeadersRepaired += o.LeadersRepaired
	st.RootsRepaired += o.RootsRepaired
	st.LogRecords += o.LogRecords
	st.LogRepaired += o.LogRepaired
	st.Retired += o.Retired
	st.SectorsChecked += o.SectorsChecked
	st.SpareExhausted = st.SpareExhausted || o.SpareExhausted
	st.Problems = append(st.Problems, o.Problems...)
}

// FaultStats aggregates the volume's media-fault handling activity.
type FaultStats struct {
	ReadRetries  int // reads retried after a damaged-sector error
	RetriedOK    int // retries that then succeeded (transient faults absorbed)
	Scrubs       int // scrub passes completed
	Repaired     int // copies rewritten by scrubbing (cumulative)
	Retired      int // sectors remapped to spares (cumulative)
	WriteRetries int // writes retried after a damaged-sector error
	WriteRemaps  int // sectors the write path retired to spares
	HungOps      int // disk operations that exceeded Config.OpTimeout
	// ErrorBudget is the weighted fault total driving the health FSM
	// (retry=1, remap=4, hung op=8; see Config.ErrorBudget).
	ErrorBudget int
}

// faultCounters is the race-free internal form of FaultStats, plus the
// health FSM's weighted error-budget accumulator.
type faultCounters struct {
	retries, retriedOK, scrubs, repaired, retired atomic.Int64
	writeRetries, writeRemaps, hungOps            atomic.Int64
	budget                                        atomic.Int64
}

// faultStats gathers the volume-level fault counters for Stats.
func (v *Volume) faultStats() FaultStats {
	return FaultStats{
		ReadRetries:  int(v.faults.retries.Load()),
		RetriedOK:    int(v.faults.retriedOK.Load()),
		Scrubs:       int(v.faults.scrubs.Load()),
		Repaired:     int(v.faults.repaired.Load()),
		Retired:      int(v.faults.retired.Load()),
		WriteRetries: int(v.faults.writeRetries.Load()),
		WriteRemaps:  int(v.faults.writeRemaps.Load()),
		HungOps:      int(v.faults.hungOps.Load()),
		ErrorBudget:  int(v.faults.budget.Load()),
	}
}

// readSectorsRetry reads with bounded in-place retries: a transient fault
// clears on another revolution; a genuine latent error keeps failing and
// surfaces to the caller, who repairs from a duplicate or reports loss.
// During the mount recovery window the retries also charge the error
// budget — recovery limping through decayed media is a health event — but
// in steady state they only count: a scrub retrying damage it is about to
// repair must not demote the volume for doing its job.
func (v *Volume) readSectorsRetry(addr, n int) ([]byte, error) {
	buf, err := v.d.ReadSectors(addr, n)
	var de *disk.DamagedError
	retried := 0
	for tries := 0; err != nil && errors.As(err, &de) && tries < v.cfg.readRetries(); tries++ {
		v.faults.retries.Add(1)
		retried++
		buf, err = v.d.ReadSectors(addr, n)
		if err == nil {
			v.faults.retriedOK.Add(1)
		}
	}
	if retried > 0 && v.recovering.Load() {
		v.chargeBudget(int64(retried)*weightRetry, "recovery read retries")
	}
	return buf, err
}

// repairSectors rewrites sectors from a known-good image, retiring to a
// spare any sector the rewrite cannot clear (a stuck physical defect: the
// write reports success but the readback stays damaged).
func (v *Volume) repairSectors(addr int, data []byte, st *ScrubStats) error {
	if err := v.writeSectors(addr, data); err != nil {
		return err
	}
	n := len(data) / disk.SectorSize
	for i := 0; i < n; i++ {
		if !v.d.IsDamaged(addr + i) {
			continue
		}
		if err := v.d.Remap(addr + i); err != nil {
			if errors.Is(err, disk.ErrNoSpares) {
				st.SpareExhausted = true
				v.degradeTo(HealthReadOnly, "spare-sector pool exhausted")
			}
			st.addProblem("sector %d unrepairable: %v", addr+i, err)
			continue
		}
		if err := v.writeSectors(addr+i, data[i*disk.SectorSize:(i+1)*disk.SectorSize]); err != nil {
			return err
		}
		st.Retired++
		v.faults.retired.Add(1)
	}
	return nil
}

// Scrub runs one full scrub pass online: operations continue while it runs
// (the name-table pass serializes only against home writes of the page in
// hand, the leader pass shares the monitor). Concurrent Scrub calls
// serialize behind scrubMu.
func (v *Volume) Scrub() (_ ScrubStats, err error) {
	defer v.span("scrub")(&err)
	v.scrubMu.Lock()
	defer v.scrubMu.Unlock()
	var st ScrubStats
	if v.closed.Load() {
		return st, ErrClosed
	}
	if v.readOnly {
		return st, ErrReadOnly
	}
	start := v.clk.Now()
	v.scrubRoots(&st)
	ls, err := v.log.ScrubCopies(func(addr int, data []byte) error {
		return v.repairSectors(addr, data, &st)
	})
	if err != nil {
		return st, err
	}
	st.LogRecords = ls.Records
	st.LogRepaired = ls.Repaired
	st.SectorsChecked += ls.SectorsChecked
	st.Problems = append(st.Problems, ls.Problems...)
	if err := v.scrubNameTable(&st); err != nil {
		return st, err
	}
	if err := v.scrubLeaders(&st); err != nil {
		return st, err
	}
	v.faults.scrubs.Add(1)
	v.faults.repaired.Add(int64(st.Repaired()))
	v.traceScrub("pass", st.Repaired())
	st.Elapsed = v.clk.Now() - start
	return st, nil
}

// scrubRoots cross-checks the replicated volume root page.
func (v *Volume) scrubRoots(st *ScrubStats) {
	read := func(addr int) ([]byte, bool) {
		buf, err := v.readSectorsRetry(addr, 1)
		st.SectorsChecked++
		if err != nil {
			return nil, false
		}
		_, ok := decodeRoot(buf)
		return buf, ok
	}
	a, okA := read(v.lay.rootA)
	b, okB := read(v.lay.rootB)
	repair := func(addr int, good []byte) {
		if v.repairSectors(addr, good, st) == nil {
			st.RootsRepaired++
		}
	}
	switch {
	case okA && okB:
		if !bytes.Equal(a, b) {
			// Diverged (a crash between the two root writes): the primary
			// is written first, so it is the newer image.
			repair(v.lay.rootB, a)
		}
	case okA:
		repair(v.lay.rootB, a)
	case okB:
		repair(v.lay.rootA, b)
	default:
		st.addProblem("both volume root pages unreadable")
	}
}

// scrubNameTable cross-checks both home copies of every name-table page on
// the shared parscan pool (one chunk per page, ScrubWorkers wide, work
// stealing across pages whose repairs run long). Results merge per page in
// page order, so the problem report is deterministic at any worker count.
// Single-copy volumes have nothing to cross-check.
func (v *Volume) scrubNameTable(st *ScrubStats) error {
	if v.cfg.SingleCopyNT {
		return nil
	}
	ids := v.lay.ntPages
	parts := make([]ScrubStats, ids)
	if _, err := parscan.Run(v.cfg.scrubWorkers(), ids, func(_ *parscan.Worker, c int) error {
		v.scrubNTPage(uint32(c), &parts[c])
		return nil
	}); err != nil {
		return err
	}
	for i := range parts {
		st.merge(parts[i])
	}
	return nil
}

// ntCopyOK validates one home copy of a name-table page.
func ntCopyOK(buf []byte, err error) bool {
	return err == nil && (crcOK(buf) || isVirgin(buf))
}

// scrubNTPage audits one page: optimistic read of both copies outside the
// cache lock; on any anomaly, re-examine and repair under it, so no
// concurrent home write can interleave with the repair.
func (v *Volume) scrubNTPage(id uint32, st *ScrubStats) {
	st.NTPagesChecked++
	st.SectorsChecked += 2 * NTPageSectors
	addrA, addrB := v.lay.ntPageAddrs(id)
	bufA, errA := v.readSectorsRetry(addrA, NTPageSectors)
	bufB, errB := v.readSectorsRetry(addrB, NTPageSectors)
	v.cpu.Charge(2 * csumCost)
	if ntCopyOK(bufA, errA) && ntCopyOK(bufB, errB) && bytes.Equal(bufA, bufB) {
		return
	}
	c := v.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	bufA, errA = v.readSectorsRetry(addrA, NTPageSectors)
	bufB, errB = v.readSectorsRetry(addrB, NTPageSectors)
	okA, okB := ntCopyOK(bufA, errA), ntCopyOK(bufB, errB)
	repair := func(addr int, good []byte) {
		if v.repairSectors(addr, good, st) == nil {
			st.NTRepaired++
		}
	}
	switch {
	case okA && okB && bytes.Equal(bufA, bufB):
		// Raced with a home writer; consistent now.
	case okA && okB:
		// Both valid but different: a crash between the two copy writes
		// in a previous life. Copy A is always written first, so it is
		// the newer image.
		repair(addrB, bufA)
	case okA:
		repair(addrB, bufA)
	case okB:
		repair(addrA, bufB)
	default:
		// No readable home copy. If the cache holds the page with nothing
		// staged beyond the committed log, its content is exactly the
		// committed state and can rebuild both copies. (Writing it home
		// keeps the WAL discipline: every cached byte not yet committed
		// is excluded by the pendingLog check.)
		if p, ok := c.pages[id]; ok && !p.pendingLog(v.log.Committed()) {
			repair(addrA, p.cur)
			repair(addrB, p.cur)
		} else {
			st.NTLost++
			st.addProblem("name-table page %d: no readable copy (salvage required)", id)
		}
	}
}

// scrubLeaders verifies every file's leader page against its name-table
// entry and rebuilds decayed, rotten, or stale leaders from the entry (the
// name table is authoritative: doubly stored and logged). The snapshot pass
// shares the monitor; each leader is then checked and, if need be, repaired
// under a fresh shared hold, so Create/Delete (exclusive holders) never
// race a repair.
func (v *Volume) scrubLeaders(st *ScrubStats) error {
	type lref struct {
		name string
		ver  uint32
	}
	var refs []lref
	unlock := v.rlock()
	err := v.nt.Scan(nil, func(k, _ []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		refs = append(refs, lref{name, ver})
		return true
	})
	unlock()
	if err != nil {
		return err
	}
	// The leader walk joins the NT fanout on the same pool: chunks of
	// refs pulled by stealing workers, per-chunk stats merged in chunk
	// order so repairs and problems report deterministically.
	const chunkRefs = 32
	chunks := (len(refs) + chunkRefs - 1) / chunkRefs
	parts := make([]ScrubStats, chunks)
	_, perr := parscan.Run(v.cfg.scrubWorkers(), chunks, func(_ *parscan.Worker, c int) error {
		lo, hi := c*chunkRefs, (c+1)*chunkRefs
		if hi > len(refs) {
			hi = len(refs)
		}
		for _, ref := range refs[lo:hi] {
			if v.closed.Load() {
				return nil
			}
			if err := v.scrubLeader(ref.name, ref.ver, &parts[c]); err != nil {
				return err
			}
		}
		return nil
	})
	for i := range parts {
		st.merge(parts[i])
	}
	return perr
}

func (v *Volume) scrubLeader(name string, ver uint32, st *ScrubStats) error {
	unlock := v.rlock()
	defer unlock()
	e, err := v.statLocked(name, ver)
	if err != nil {
		return nil // deleted since the snapshot
	}
	addr, has := e.LeaderAddr()
	if !has {
		return nil
	}
	v.lmu.Lock()
	_, pending := v.pendingLeaders[addr]
	v.lmu.Unlock()
	if pending {
		return nil // not home yet; verified from memory on access
	}
	st.LeadersChecked++
	st.SectorsChecked++
	buf, rerr := v.readSectorsRetry(addr, 1)
	v.cpu.Charge(csumCost)
	if rerr == nil && verifyLeader(buf, e) == nil {
		return nil
	}
	if err := v.repairSectors(addr, encodeLeader(e), st); err != nil {
		return err
	}
	st.LeadersRepaired++
	return nil
}

// startScrubber launches the periodic background scrub on real-clock
// volumes when ScrubInterval is set. It shares the ticker's stop channel.
func (v *Volume) startScrubber(stop chan struct{}) {
	interval := v.cfg.ScrubInterval
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if v.closed.Load() {
					return
				}
				// Background pass: errors surface through FaultStats
				// problems on the next explicit Scrub; a closed volume
				// just ends the loop.
				if _, err := v.Scrub(); errors.Is(err, ErrClosed) {
					return
				}
			case <-stop:
				return
			}
		}
	}()
}
