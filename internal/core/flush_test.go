package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestColdPageFlushedAtThirdCrossing arranges for a name-table page to go
// cold (no further updates) while the log wraps past the third holding its
// newest images: the thirds protocol must write it home before the third is
// overwritten, or the entries on it would be lost at the next crash.
func TestColdPageFlushedAtThirdCrossing(t *testing.T) {
	v, d, _ := newTestVolume(t)
	// Grow the tree so different name ranges live on different leaves.
	for i := 0; i < 120; i++ {
		if _, err := v.Create(fmt.Sprintf("mmm/seed%03d", i), payload(40, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The cold range: created once, then never touched again.
	cold := map[string][]byte{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("aaa/cold%02d", i)
		data := payload(120+i, byte(i))
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		cold[name] = data
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	// Churn a distant range until the log wraps several times.
	for i := 0; i < 400; i++ {
		if _, err := v.Create(fmt.Sprintf("zzz/hot%04d", i), payload(60, byte(i))); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			if err := v.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	ls := v.Log().Stats()
	if ls.ThirdCrossings < 3 {
		t.Fatalf("only %d third crossings; test needs the log to wrap", ls.ThirdCrossings)
	}
	if ls.HomeFlushes == 0 {
		t.Fatal("no home flushes despite wrapping: cold pages were never written home")
	}
	// Crash: the cold entries' images are long gone from the log; they
	// must survive via their flushed home pages.
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range cold {
		f, err := v2.Open(name, 0)
		if err != nil {
			t.Fatalf("cold file %s lost after wrap: %v", name, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("cold file %s corrupted: %v", name, err)
		}
	}
}

func TestAccessorsAndDropCaches(t *testing.T) {
	v, d, _ := newTestVolume(t)
	if v.CPU() == nil || v.Disk() != d {
		t.Fatal("accessors wrong")
	}
	if _, err := v.Create("acc/a", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	cs := v.Stats().Cache
	if cs.Hits == 0 && cs.Misses == 0 {
		t.Fatal("cache stats all zero after activity")
	}
	nt, lg := v.ModelInfo()
	if nt < 0 || lg < 0 {
		t.Fatal("ModelInfo negative")
	}
	if err := v.DropCaches(); err != nil {
		t.Fatal(err)
	}
	// Everything still readable cold.
	f, err := v.Open("acc/a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Ops.Creates != 1 {
		t.Fatalf("ops: %+v", v.Stats().Ops)
	}
}

func TestClassString(t *testing.T) {
	if Local.String() != "local" || SymLink.String() != "symlink" || Cached.String() != "cached" {
		t.Fatal("Class strings wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class empty")
	}
}

func TestReadOneCopyConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ReadOneCopy = true
	v, d, _ := newTestVolumeWith(t, cfg)
	for i := 0; i < 30; i++ {
		if _, err := v.Create(fmt.Sprintf("oc/f%02d", i), payload(80, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	count := 0
	if err := v.List("oc/", func(Entry) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	oneCopyReads := d.Stats().Sub(before).Reads
	if count != 30 {
		t.Fatalf("listed %d", count)
	}
	// Compare against the both-copies default.
	v2, d2, _ := newTestVolume(t)
	for i := 0; i < 30; i++ {
		if _, err := v2.Create(fmt.Sprintf("oc/f%02d", i), payload(80, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	v2.DropCaches()
	before = d2.Stats()
	v2.List("oc/", func(Entry) bool { return true })
	bothReads := d2.Stats().Sub(before).Reads
	if oneCopyReads*2 != bothReads {
		t.Fatalf("one-copy list %d reads, both-copies %d; want exactly half", oneCopyReads, bothReads)
	}
	// One-copy mode still falls back to the replica on damage.
	v.Shutdown()
	d.CorruptSectors(v.lay.ntA, NTPageSectors) // smash the whole meta page copy A
	v3, _, err := Mount(d, cfg)
	if err != nil {
		t.Fatalf("mount with damaged copy A in one-copy mode: %v", err)
	}
	if _, err := v3.Open("oc/f05", 0); err != nil {
		t.Fatal(err)
	}
}

// newTestVolumeWith formats a small test volume with a custom config.
func newTestVolumeWith(t *testing.T, cfg Config) (*Volume, *disk.Disk, *sim.VirtualClock) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return v, d, clk
}
