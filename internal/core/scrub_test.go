package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
)

// populate creates n small files and forces them durable, returning the
// contents.
func populate(t *testing.T, v *Volume, n int) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("scrub/f%03d", i)
		data := payload(200+i*37, byte(i))
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	return files
}

// allocatedNTPages lists the ids of non-virgin name-table pages by reading
// the primary home copies directly.
func allocatedNTPages(t *testing.T, v *Volume, d *disk.Disk) []uint32 {
	t.Helper()
	var ids []uint32
	for id := 0; id < v.lay.ntPages; id++ {
		a, _ := v.lay.ntPageAddrs(uint32(id))
		buf, err := d.ReadSectors(a, NTPageSectors)
		if err != nil {
			t.Fatalf("NT page %d unreadable before corruption: %v", id, err)
		}
		if !isVirgin(buf) {
			ids = append(ids, uint32(id))
		}
	}
	if len(ids) == 0 {
		t.Fatal("no allocated name-table pages")
	}
	return ids
}

// checkNTCopies asserts every name-table page has two valid, identical home
// copies.
func checkNTCopies(t *testing.T, v *Volume, d *disk.Disk) {
	t.Helper()
	for id := 0; id < v.lay.ntPages; id++ {
		a, b := v.lay.ntPageAddrs(uint32(id))
		bufA, errA := d.ReadSectors(a, NTPageSectors)
		bufB, errB := d.ReadSectors(b, NTPageSectors)
		if !ntCopyOK(bufA, errA) || !ntCopyOK(bufB, errB) {
			t.Fatalf("NT page %d still decayed (A: %v, B: %v)", id, errA, errB)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("NT page %d copies diverge after scrub", id)
		}
	}
}

// TestScrubRepairsLatentDecay is the issue's acceptance scenario: decay one
// copy of every duplicated page — every allocated name-table page, the root
// replica, a log anchor copy, a log record header copy — plus one leader,
// and check a single scrub pass repairs everything.
func TestScrubRepairsLatentDecay(t *testing.T) {
	rng := faultRNG(t)
	v, d, _ := newTestVolumeWith(t, testConfig())
	files := populate(t, v, 30)
	if err := v.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ids := allocatedNTPages(t, v, d)
	for _, id := range ids {
		a, b := v.lay.ntPageAddrs(id)
		victim := a + rng.Intn(NTPageSectors)
		if rng.Intn(2) == 1 {
			victim = b + rng.Intn(NTPageSectors)
		}
		if rng.Intn(2) == 1 {
			// Hard latent error: the read fails.
			d.CorruptSectors(victim, 1)
		} else {
			// Silent bit rot: the read succeeds with garbage.
			d.SmashSector(victim, payload(disk.SectorSize, 0xA5), nil)
		}
	}
	d.CorruptSectors(v.lay.rootB, 1)     // root replica
	d.CorruptSectors(v.lay.logBase+2, 1) // log anchor copy
	d.CorruptSectors(v.lay.logBase+6, 1) // first log record's header copy
	var leaderAddr int
	for name := range files {
		f, err := v.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		ent := f.Entry()
		leaderAddr, _ = ent.LeaderAddr()
		break
	}
	d.CorruptSectors(leaderAddr, 1)

	st, err := v.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if st.NTLost != 0 || len(st.Problems) != 0 {
		t.Fatalf("scrub lost pages: NTLost=%d problems=%v", st.NTLost, st.Problems)
	}
	if st.NTRepaired < len(ids) {
		t.Fatalf("NTRepaired = %d, want >= %d", st.NTRepaired, len(ids))
	}
	if st.RootsRepaired != 1 {
		t.Fatalf("RootsRepaired = %d, want 1", st.RootsRepaired)
	}
	if st.LogRepaired < 2 {
		t.Fatalf("LogRepaired = %d, want >= 2 (anchor copy + header copy)", st.LogRepaired)
	}
	if st.LeadersRepaired < 1 {
		t.Fatalf("LeadersRepaired = %d, want >= 1", st.LeadersRepaired)
	}

	// A second pass finds a fully healthy volume.
	st2, err := v.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Repaired() != 0 || len(st2.Problems) != 0 {
		t.Fatalf("second scrub still repairing: %+v", st2)
	}
	checkNTCopies(t, v, d)
	vs, err := v.Verify()
	if err != nil || len(vs.Problems) != 0 {
		t.Fatalf("Verify after scrub: %v %v", err, vs.Problems)
	}
	for name, want := range files {
		f, err := v.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted after scrub: %v", name, err)
		}
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, ms, err := Mount(d, testConfig()); err != nil || !ms.CleanShutdown {
		t.Fatalf("remount after scrub: %v (clean=%v)", err, ms.CleanShutdown)
	}
}

// TestScrubRetiresStuckSectors drives the bounded-retry → remap path: a
// sector that stays damaged through rewrites is retired to the spare pool.
func TestScrubRetiresStuckSectors(t *testing.T) {
	v, d, _ := newTestVolumeWith(t, testConfig())
	populate(t, v, 10)
	if err := v.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ids := allocatedNTPages(t, v, d)
	_, b := v.lay.ntPageAddrs(ids[0])
	spares := d.SparesLeft()
	d.MarkStuck(b, 1)

	st, err := v.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired < 1 {
		t.Fatalf("Retired = %d, want >= 1", st.Retired)
	}
	if !d.IsRemapped(b) {
		t.Fatalf("sector %d not remapped", b)
	}
	if left := d.SparesLeft(); left != spares-st.Retired {
		t.Fatalf("SparesLeft = %d, want %d", left, spares-st.Retired)
	}
	if fs := v.Stats().Faults; fs.Retired < 1 || fs.Scrubs != 1 {
		t.Fatalf("FaultStats = %+v", fs)
	}
	checkNTCopies(t, v, d)
	st2, err := v.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Repaired() != 0 || st2.Retired != 0 {
		t.Fatalf("second scrub still repairing: %+v", st2)
	}
}

// TestReadRetryTransient injects a high rate of transient read faults and
// checks the bounded in-place retry absorbs all of them invisibly.
func TestReadRetryTransient(t *testing.T) {
	seed := faultSeed(t)
	cfg := testConfig()
	cfg.ReadRetries = 8
	v, d, _ := newTestVolumeWith(t, cfg)
	files := populate(t, v, 20)
	if err := v.DropCaches(); err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(disk.FaultConfig{Seed: seed, TransientRead: 0.1})
	for pass := 0; pass < 2; pass++ {
		for name, want := range files {
			f, err := v.Open(name, 0)
			if err != nil {
				t.Fatalf("Open %s under transient faults: %v", name, err)
			}
			got, err := f.ReadAll()
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("ReadAll %s under transient faults: %v", name, err)
			}
		}
		if err := v.DropCaches(); err != nil {
			t.Fatal(err)
		}
	}
	fs := v.Stats().Faults
	if fs.ReadRetries == 0 || fs.RetriedOK == 0 {
		t.Fatalf("no retries recorded under 10%% transient faults: %+v", fs)
	}
	d.ClearFaults()
	if vs, err := v.Verify(); err != nil || len(vs.Problems) != 0 {
		t.Fatalf("Verify: %v %v", err, vs.Problems)
	}
}

// TestScrubConcurrentWithReaders runs scrub passes, the shared-monitor read
// path, and an active corruptor concurrently (the -race stress for the
// scrub locking), then checks a final pass heals every remaining wound.
func TestScrubConcurrentWithReaders(t *testing.T) {
	seed := faultSeed(t)
	cfg := testConfig()
	cfg.ScrubWorkers = 4
	v, d, _ := newTestVolumeWith(t, cfg)
	files := populate(t, v, 30)
	if err := v.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ids := allocatedNTPages(t, v, d)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := names[rng.Intn(len(names))]
				f, err := v.Open(name, 0)
				if err != nil {
					errCh <- fmt.Errorf("Open %s: %v", name, err)
					return
				}
				if _, err := f.ReadAll(); err != nil {
					errCh <- fmt.Errorf("ReadAll %s: %v", name, err)
					return
				}
			}
		}(seed + int64(r))
	}
	wg.Add(1)
	go func() {
		// Corruptor: decays primary-copy sectors only, so readers always
		// have the replica to fall back on.
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 200; i++ {
			id := ids[rng.Intn(len(ids))]
			a, _ := v.lay.ntPageAddrs(id)
			d.CorruptSectors(a+rng.Intn(NTPageSectors), 1)
		}
	}()
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := v.Scrub(); err != nil {
					errCh <- fmt.Errorf("Scrub: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st, err := v.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.NTLost != 0 {
		t.Fatalf("pages lost during concurrent scrub: %+v", st)
	}
	checkNTCopies(t, v, d)
	if vs, err := v.Verify(); err != nil || len(vs.Problems) != 0 {
		t.Fatalf("Verify: %v %v", err, vs.Problems)
	}
	for name, want := range files {
		f, err := v.Open(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted: %v", name, err)
		}
	}
}
