package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestVerifyCleanVolume(t *testing.T) {
	v, _, _ := newTestVolume(t)
	for i := 0; i < 40; i++ {
		if _, err := v.Create(fmt.Sprintf("vf/f%02d", i), payload(300+i, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	v.CreateLink("vf/link", "[srv]<d>x!1")
	if _, err := v.Create("vf/empty", nil); err != nil {
		t.Fatal(err)
	}
	st, err := v.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(st.Problems) != 0 {
		t.Fatalf("problems on a clean volume: %v", st.Problems)
	}
	if st.Entries != 42 || st.Symlinks != 1 || st.Leaders != 41 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LeadersPending != 1 {
		t.Fatalf("deferred leader of the empty file not seen: %+v", st)
	}
}

func TestVerifyDetectsSmashedLeader(t *testing.T) {
	v, d, _ := newTestVolume(t)
	f, err := v.Create("vf/target", payload(800, 1))
	if err != nil {
		t.Fatal(err)
	}
	e := f.Entry()
	addr, _ := e.LeaderAddr()
	d.SmashSector(addr, payload(512, 0x66), nil)
	st, err := v.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Problems) != 1 || !strings.Contains(st.Problems[0], "leader") {
		t.Fatalf("problems: %v", st.Problems)
	}
}

func TestVerifyDetectsVAMDrift(t *testing.T) {
	v, _, _ := newTestVolume(t)
	f, err := v.Create("vf/drift", payload(800, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the hint map: mark the file's pages free while the entry
	// still owns them.
	e := f.Entry()
	v.VAM().MarkFree(int(e.Runs[0].Start), 1)
	st, err := v.Verify()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range st.Problems {
		if strings.Contains(p, "marked free") {
			found = true
		}
	}
	if !found {
		t.Fatalf("VAM drift not reported: %v", st.Problems)
	}
}

func TestVerifyAfterRecovery(t *testing.T) {
	v, d, _ := newTestVolume(t)
	for i := 0; i < 60; i++ {
		if _, err := v.Create(fmt.Sprintf("vf/r%02d", i), payload(200+i*3, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	v.Force()
	v.Crash()
	d.Revive()
	v2, _, err := Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := v2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Problems) != 0 {
		t.Fatalf("problems after recovery: %v", st.Problems)
	}
	if st.Entries != 60 {
		t.Fatalf("entries: %d", st.Entries)
	}
}
