package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/bufcache"
	"repro/internal/disk"
	"repro/internal/intentq"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vam"
	"repro/internal/wal"
)

const csumCost = sim.CostChecksumPage

// Errors returned by volume operations.
var (
	ErrNotFound  = errors.New("core: file not found")
	ErrExists    = errors.New("core: file version already exists")
	ErrClosed    = errors.New("core: volume is shut down")
	ErrRootLost  = errors.New("core: both volume root pages unreadable")
	ErrIsSymlink = errors.New("core: entry is a symbolic link")
	ErrReadOnly  = errors.New("core: volume mounted read-only")
)

// MountStats reports what mounting had to do.
type MountStats struct {
	CleanShutdown bool
	// ReadOnly marks a degraded MountReadOnly: the log was replayed in
	// memory (or skipped, see LogUnavailable) and nothing was written.
	ReadOnly bool
	// LogUnavailable is set by MountReadOnly when the log could not be
	// opened or replayed; the volume serves the last flushed home state.
	LogUnavailable   bool
	LogRecords       int
	LogImagesApplied int
	LogRepaired      int
	// LogTornRecords / LogTailDiscarded / LogGapBreaks surface the
	// recovery counters: records torn mid-write by the crash, images of an
	// incomplete force discarded for batch atomicity, and replay stops at
	// a missing record (the crash tail, or a write lost to reordering).
	LogTornRecords   int
	LogTailDiscarded int
	LogGapBreaks     int
	VAMReconstructed bool
	// VAMElapsed is the portion of Elapsed spent scanning the name table
	// to rebuild the allocation map (the paper's ~20 s on a Dorado).
	VAMElapsed time.Duration
	Elapsed    time.Duration
}

// OpStats counts logical file-system operations for the benchmark tables.
type OpStats struct {
	Creates, Opens, Deletes, Lists, Reads, Writes, Touches int
}

// opCounters is the race-free internal form of OpStats.
type opCounters struct {
	creates, opens, deletes, lists, reads, writes, touches atomic.Int64
}

// taggedFree is a deferred page free tagged with the log batch whose
// durability makes it safe: the runs belonged to a deleted (or contracted)
// file whose name-table images were staged into batch seq, so they may be
// reallocated only once Committed() >= seq — reallocating earlier would let
// new data land on pages a crash's replay would hand back to the old file.
type taggedFree struct {
	seq  uint64
	runs []alloc.Run
}

// Volume is a mounted FSD volume. All public methods are safe for concurrent
// use. Cedar serialized every operation behind a single monitor; here the
// monitor is split so the common read path scales (see DESIGN.md
// "Concurrency model"):
//
//   - mu, a readers-writer lock, is the monitor. Lookups (Open, Stat, List,
//     ReadPages, Verify) share it; name-space mutations (Create, Delete,
//     Touch, Rename, Extend, ...) and lifecycle ops take it exclusively.
//     With Config.SerialMonitor everything takes it exclusively — the
//     paper-faithful baseline.
//   - each File handle has its own lock for its entry snapshot.
//   - lmu guards the deferred-leader maps, which the read path (leader
//     verification) shares with the force path (third flushes).
//   - vmMu guards the allocation map, the allocator, and the deferred
//     frees, shared between operations and the commit callback.
//
// Lock order: mu → File.mu → (B-tree → cache) → lmu/vmMu. The log's force
// path (forceMu inside the WAL) acquires cache/lmu/vmMu through its
// callbacks and never mu, so a force in flight blocks neither readers nor
// staging writers.
type Volume struct {
	d   *disk.Disk
	clk sim.Clock
	cpu *sim.CPU
	cfg Config
	lay layout

	mu    sync.RWMutex
	log   *wal.Log
	cache *ntCache
	nt    *btree.Tree
	vm    *vam.VAM
	al    *alloc.Allocator

	// dataCache is the file-data buffer cache (nil when disabled by
	// Config.DataCachePages < 0). It is write-through and its locks are
	// leaves: sharded per-frame locking under the shared monitor, never a
	// cache-global mutex on the hit path. Invalidation runs on Delete,
	// Contract, DropCaches, and the disk's damage observer, so scrub and
	// salvage always see the platter, not the cache.
	dataCache *bufcache.Cache

	// readOnly marks a degraded MountReadOnly volume: mutations fail with
	// ErrReadOnly and nothing — log, name table, roots, VAM — is written.
	readOnly bool
	// ntOverride holds the log's replayed name-table sector images
	// (keyed like wal KindNameTable targets) when the volume is mounted
	// read-only; the cache overlays them on the stale home copies.
	ntOverride map[uint64][]byte

	uidNext atomic.Uint64

	// lmu guards pendingLeaders and leaderThird. pendingLeaders holds
	// leader pages created but not yet written to their home sector; the
	// write piggybacks on the file's next data write, or happens when the
	// leader's log third is overwritten.
	lmu            sync.Mutex
	pendingLeaders map[int][]byte
	leaderThird    map[int]int

	// vmMu guards vm, al, vamDirty, and pendingFrees. The VAM's Tracker
	// callback runs inside vm mutations, so it relies on the caller
	// already holding vmMu rather than locking itself.
	vmMu         sync.Mutex
	vamDirty     map[int]bool
	pendingFrees []taggedFree

	// vamSectors is touched only from the WAL's force-serialized
	// callbacks (OnLogged, FlushHook), so it needs no lock of its own.
	vamSectors map[int]*vamSector

	// q is the asynchronous metadata pipeline (Config.AsyncApply): the
	// per-volume ordered intent queue whose single applier performs the
	// deferred B-tree work. nil on synchronous and read-only volumes. The
	// applier never takes mu; lifecycle ops (Shutdown, Crash, DropCaches,
	// Verify) hold mu exclusively and drain or close the queue, so the
	// applier is quiescent whenever exclusive holders inspect the tree.
	// apCPU is the applier's detached CPU: its work accumulates in
	// Stats().Intent.ApplierBusy without advancing the simulated clock.
	q     *intentq.Queue
	apCPU *sim.CPU

	closed atomic.Bool
	// ready marks the volume fully wired (set at the end of Format, mount,
	// and Salvage). Health transitions consult it before spawning repair
	// goroutines: recovery itself now charges the error budget, and a scrub
	// racing a half-wired mount would dereference nil structure.
	ready atomic.Bool
	// recovering marks the writable mount's recovery window — from wiring
	// the volume to finishMount. Non-log reads that needed in-place retries
	// inside it (name-table cache fills, the VAM/leader rebuild scan)
	// charge the error budget like the WAL's own replay reads do, so a
	// mount that limped through decayed media lands Degraded instead of
	// silently Healthy. Outside the window readSectorsRetry only counts:
	// a scrub retrying latent decay it is about to repair is routine work,
	// not a health event.
	recovering atomic.Bool
	ops        opCounters

	// recovery snapshots what the mount-time replay had to absorb; filled
	// once before the volume is returned, surfaced as Stats().Recovery.
	recovery RecoveryStats

	// obs holds the tracing ring and the histograms behind Stats();
	// always non-nil (newVolume), so hot paths skip nil checks.
	obs *volObs

	// scrubMu serializes scrub passes (explicit and background).
	scrubMu sync.Mutex
	faults  faultCounters

	// health is the volume health FSM state (see health.go): a monotonic
	// Healthy → Degraded → ReadOnly → Offline ladder driven by the
	// write-path fault counters. healthMu guards only the reason string.
	health    atomic.Int32
	healthMu  sync.Mutex
	healthWhy string

	// stopTicker stops the real-time group-commit and background-scrub
	// goroutines, if any.
	stopTicker chan struct{}
}

// CPU returns the simulated CPU the volume charges.
func (v *Volume) CPU() *sim.CPU { return v.cpu }

// Disk returns the underlying device.
func (v *Volume) Disk() *disk.Disk { return v.d }

// Log exposes the redo log for stats and explicit forcing in benchmarks.
func (v *Volume) Log() *wal.Log { return v.log }

// VAM exposes the allocation map (read-only use).
func (v *Volume) VAM() *vam.VAM { return v.vm }

// opsSnapshot gathers the logical operation counters for Stats.
func (v *Volume) opsSnapshot() OpStats {
	return OpStats{
		Creates: int(v.ops.creates.Load()),
		Opens:   int(v.ops.opens.Load()),
		Deletes: int(v.ops.deletes.Load()),
		Lists:   int(v.ops.lists.Load()),
		Reads:   int(v.ops.reads.Load()),
		Writes:  int(v.ops.writes.Load()),
		Touches: int(v.ops.touches.Load()),
	}
}

// rlock acquires the monitor for a read-path operation and returns the
// matching unlock. Under Config.SerialMonitor reads take the monitor
// exclusively, reproducing the paper's fully serialized volume.
func (v *Volume) rlock() func() {
	if v.cfg.SerialMonitor {
		v.mu.Lock()
		return v.mu.Unlock
	}
	v.mu.RLock()
	return v.mu.RUnlock
}

// newVolume wires up the common structure.
func newVolume(d *disk.Disk, cfg Config, lay layout) *Volume {
	v := &Volume{
		d:              d,
		clk:            d.Clock(),
		cpu:            sim.NewCPU(d.Clock()),
		cfg:            cfg,
		lay:            lay,
		pendingLeaders: make(map[int][]byte),
		leaderThird:    make(map[int]int),
		obs:            newVolObs(),
	}
	d.SetClassifier(func(addr int) disk.Class {
		if lay.metaRange(addr) {
			return disk.ClassMeta
		}
		return disk.ClassData
	})
	d.SetOpObserver(v.observeDiskOp)
	if pages := cfg.dataCachePages(); pages > 0 {
		v.dataCache = bufcache.New(pages)
		// Fault-injected damage (corruption, wild writes) changes the
		// platter behind the file system's back: drop any cached copies so
		// reads surface the damage instead of serving stale frames. The
		// observer runs under the device mutex and only touches cache
		// atomics and shard maps — it never calls back into the disk.
		d.SetDamageObserver(func(addr, n int) {
			v.dataCache.Invalidate(addr, n)
		})
	}
	return v
}

// invalidateData drops cached frames for freed or rewritten runs. Callers
// either hold the monitor exclusively (synchronous Delete, Contract) or run
// on the intent applier; a shared-mode reader mid-fill on these sectors is
// fenced by the cache's generation-guarded fills.
func (v *Volume) invalidateData(runs []alloc.Run) {
	if v.dataCache == nil {
		return
	}
	for _, r := range runs {
		v.dataCache.Invalidate(int(r.Start), int(r.Len))
	}
}

// hookLog installs the WAL callbacks. Mount installs them before replay, so
// recovery-time faults — retried replay reads, anchor-reset write retries —
// reach the health FSM like any runtime fault.
func (v *Volume) hookLog() {
	v.log.OnForce = v.observeForce
	// The WAL runs the same bounded-retry + remap policy as core's own
	// write sites; its outcomes feed the same health FSM.
	v.log.OnWriteFault = v.noteWriteFault
	v.log.OnReadFault = v.noteReadFault
	v.log.OnAppend = func(n int, seq uint64) {
		if v.obs.tracer.Enabled() {
			v.obs.tracer.Emit(obs.Event{
				Time: v.clk.Now(), Kind: obs.EvWALAppend, OK: true,
				A: int64(n), B: int64(seq),
			})
		}
	}
	v.log.FlushHook = func(third int) (int, error) {
		n, err := v.cache.flushThird(third)
		if err != nil {
			return n, err
		}
		m, err := v.flushLeaders(third)
		if err != nil {
			return n + m, err
		}
		k, err := v.flushVAMSectors(third)
		return n + m + k, err
	}
	v.log.OnLogged = func(kind uint8, target uint64, third int, data []byte) {
		switch kind {
		case wal.KindNameTable:
			v.cache.onLogged(target, third, data)
		case wal.KindLeader:
			v.lmu.Lock()
			if _, ok := v.pendingLeaders[int(target)]; ok {
				v.leaderThird[int(target)] = third
			}
			v.lmu.Unlock()
		case wal.KindVAM:
			v.onVAMLogged(target, third, data)
		}
	}
	v.log.OnCommit = func(seq uint64) {
		// Pages of deleted files become allocatable once the batch
		// carrying the deletion is durable. With the pipelined commit,
		// frees staged into a batch newer than seq stay deferred.
		v.vmMu.Lock()
		kept := v.pendingFrees[:0]
		for _, pf := range v.pendingFrees {
			if pf.seq <= seq {
				v.al.FreeNow(pf.runs)
			} else {
				kept = append(kept, pf)
			}
		}
		v.pendingFrees = kept
		v.vmMu.Unlock()
	}
}

// freeOnCommit defers runs until the log batch holding the caller's staged
// name-table images is durable. The tag is read after staging, so it can
// only name the images' batch or a later one — conservative: a free is
// never applied before its deletion commits, at worst one force late.
func (v *Volume) freeOnCommit(runs []alloc.Run) {
	if len(runs) == 0 {
		return
	}
	seq := v.log.Seq()
	v.vmMu.Lock()
	v.pendingFrees = append(v.pendingFrees, taggedFree{seq: seq, runs: runs})
	v.vmMu.Unlock()
}

// flushLeaders writes home pending leader pages last logged in third.
func (v *Volume) flushLeaders(third int) (int, error) {
	v.lmu.Lock()
	defer v.lmu.Unlock()
	n := 0
	for addr, t := range v.leaderThird {
		if t != third {
			continue
		}
		data, ok := v.pendingLeaders[addr]
		if !ok {
			delete(v.leaderThird, addr)
			continue
		}
		if err := v.writeSectors(addr, data); err != nil {
			return n, err
		}
		delete(v.pendingLeaders, addr)
		delete(v.leaderThird, addr)
		n++
	}
	return n, nil
}

func (v *Volume) writeRoot(r rootPage) error {
	buf := encodeRoot(r)
	// Barriers on both sides: what the root attests (a clean-shutdown
	// stamp covers every flush before it) must be durable first, and the
	// stamp itself must land before anything that assumes it.
	if err := v.d.Sync(); err != nil {
		return err
	}
	if err := v.writeSectors(v.lay.rootA, buf); err != nil {
		return err
	}
	if err := v.writeSectors(v.lay.rootB, buf); err != nil {
		return err
	}
	return v.d.Sync()
}

func readRoot(d *disk.Disk) (rootPage, error) {
	for _, addr := range []int{0, 2} {
		buf, err := d.ReadSectors(addr, 1)
		if err != nil {
			continue
		}
		if r, ok := decodeRoot(buf); ok {
			return r, nil
		}
	}
	return rootPage{}, ErrRootLost
}

// Format initializes an FSD volume on d and returns it mounted. Everything
// on the device is considered garbage.
func Format(d *disk.Disk, cfg Config) (*Volume, error) {
	lay, err := computeLayout(d.Geometry(), cfg)
	if err != nil {
		return nil, err
	}
	v := newVolume(d, cfg, lay)
	v.log, err = wal.Format(d, lay.logBase, lay.logSize, v.clk, cfg.walConfig())
	if err != nil {
		return nil, err
	}
	// A format over a previously salvaged-then-interrupted volume must not
	// leave the stale salvage checkpoint blocking mounts.
	if err := clearSalvageCheckpoint(v.writeSectors, lay); err != nil {
		return nil, err
	}
	v.cache = newNTCache(v, cfg.cacheSize())

	// Free-page map: data region free, metadata allocated.
	v.vm = vam.New(lay.total)
	v.vm.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	metaLo, metaHi := lay.logBase, lay.vamBase+lay.vamSectors
	if metaHi > metaLo {
		v.vm.MarkAllocated(metaLo, metaHi-metaLo)
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return nil, err
	}
	v.hookLog()

	// Build the empty name table through the logged cache, then force
	// and flush so the home copies exist.
	v.nt, err = btree.Create(v.cache)
	if err != nil {
		return nil, err
	}
	if err := v.log.Force(); err != nil {
		return nil, err
	}
	if err := v.cache.flushAll(); err != nil {
		return nil, err
	}

	v.uidNext.Store(1 << 32)
	if err := v.writeRoot(rootPage{layout: lay, clean: false, logVAM: cfg.LogVAM, uidChunk: 1, formatted: v.clk.Now()}); err != nil {
		return nil, err
	}
	if cfg.LogVAM {
		// Write the full base image the logged deltas will apply over.
		if err := v.vm.SaveWith(v.writeSectors, lay.vamBase); err != nil {
			return nil, err
		}
		v.enableVAMLogging()
	}
	// Format-time activity should not pollute measurements.
	v.log.ResetStats()
	v.d.ResetStats()
	if cfg.AsyncApply {
		v.startIntentQueue()
	}
	v.startTicker()
	v.finishMount()
	return v, nil
}

// mountWritable attaches to a previously formatted volume read-write,
// replaying the log and reconstructing the allocation map as needed.
// Behavioural Config fields (commit interval, cache size, mount workers)
// apply; layout fields come from the volume root page. This is the default
// path of Mount.
func mountWritable(d *disk.Disk, cfg Config) (*Volume, MountStats, error) {
	var ms MountStats
	start := d.Clock().Now()
	root, err := readRoot(d)
	if err != nil {
		return nil, ms, err
	}
	lay := root.layout
	// A valid salvage checkpoint means a salvage pass was interrupted
	// mid-rebuild: the name-table regions are in an intermediate state no
	// ordinary replay can repair, and only resuming the salvage (Mount with
	// AllowSalvage, or Salvage directly) makes the volume whole.
	if ck, ok := readSalvageCheckpoint(d, lay); ok {
		return nil, ms, fmt.Errorf("core: interrupted salvage (phase %s): %w",
			ck.phase, ErrSalvageInProgress)
	}
	// The VAM-logging mode is a property of the volume, recorded at
	// format: honour it regardless of what the mount config says (a
	// non-LogVAM volume has no valid save-area base to apply deltas to).
	cfg.LogVAM = root.logVAM
	v := newVolume(d, cfg, lay)
	v.recovering.Store(true)
	wasClean := root.clean
	ms.CleanShutdown = wasClean

	// From this moment the volume is in use: a crash must recover.
	root.clean = false
	root.uidChunk++
	if err := v.writeRoot(root); err != nil {
		return nil, ms, err
	}
	v.uidNext.Store(root.uidChunk << 32)

	v.log, err = wal.Open(d, lay.logBase, lay.logSize, v.clk, cfg.walConfig())
	if err != nil {
		return nil, ms, err
	}
	v.cache = newNTCache(v, cfg.cacheSize())
	// Callbacks go in before replay: a retried replay read or a faulted
	// anchor write must charge the health budget like any runtime fault.
	v.hookLog()

	// Replay — without resetting the log. The reset (CompleteRecovery) is
	// deferred until every replayed image is durably home: the whole
	// sequence from here to the barrier below is pure redo, so a second
	// crash anywhere inside it leaves the log intact and the next mount
	// replays the very same images over whatever subset already landed.
	//
	// Images are buffered last-writer-wins and only the final image of
	// each page touches the disk, in ascending address order — the redo
	// pass is then a short sequential sweep over the hot name-table pages
	// rather than a write per logged image. Leader images are additionally
	// validated against the post-replay name table, so a leader image of a
	// since-deleted file can never stomp a reallocated page.
	leaderImages := make(map[int][]byte)
	ntImages := make(map[uint64][]byte)
	vamImages := make(map[int][]byte)
	rs, err := v.log.Replay(func(kind uint8, target uint64, data []byte) error {
		cp := make([]byte, len(data))
		copy(cp, data)
		switch kind {
		case wal.KindNameTable:
			ntImages[target] = cp
		case wal.KindLeader:
			leaderImages[int(target)] = cp
		case wal.KindVAM:
			vamImages[int(target)] = cp
		}
		return nil
	})
	if err != nil {
		return nil, ms, err
	}
	if err := v.applyNTImages(ntImages); err != nil {
		return nil, ms, err
	}
	ms.LogRecords = rs.Records
	ms.LogImagesApplied = rs.Images
	ms.LogRepaired = rs.Repaired
	ms.LogTornRecords = rs.TornRecords
	ms.LogTailDiscarded = rs.TailDiscarded
	ms.LogGapBreaks = rs.GapBreaks

	v.nt, err = btree.Open(v.cache)
	if err != nil {
		return nil, ms, fmt.Errorf("core: name table unreadable after replay: %w", err)
	}

	// Allocation map: load the saved copy after a clean shutdown,
	// otherwise reconstruct from the name table (~20 s on a full 300 MB
	// volume, per the paper) — unless VAM logging is on, in which case
	// the replayed sector images over the save-area base reproduce the
	// committed map directly ("about two seconds").
	needScan := len(leaderImages) > 0
	if wasClean {
		v.vm, err = vam.Load(d, lay.vamBase, lay.total)
		if err != nil {
			ms.VAMReconstructed = true
		}
	} else if cfg.LogVAM {
		if vm, ok := v.recoverVAMFromLog(vamImages); ok {
			v.vm = vm
		} else {
			ms.VAMReconstructed = true
		}
	} else {
		ms.VAMReconstructed = true
	}
	var leaderOwners map[int]uint64
	if ms.VAMReconstructed || needScan {
		scanStart := v.clk.Now()
		leaderOwners, err = v.scanForRebuild(ms.VAMReconstructed)
		if err != nil {
			return nil, ms, err
		}
		ms.VAMElapsed = v.clk.Now() - scanStart
	}
	if cfg.LogVAM {
		// Rebase: a fresh full save becomes the foundation for the next
		// run's logged deltas; the stamp stays valid because the log
		// keeps the area consistent from here on.
		if err := v.vm.SaveWith(v.writeSectors, lay.vamBase); err != nil {
			return nil, ms, err
		}
	} else if err := vam.InvalidateWith(v.writeSectors, lay.vamBase); err != nil {
		return nil, ms, err
	}

	// Apply surviving leader images whose file still owns the sector.
	for addr, img := range leaderImages {
		uid, ok := leaderUID(img)
		if !ok {
			continue
		}
		if owner, present := leaderOwners[addr]; present && owner == uid {
			if err := v.writeSectors(addr, img); err != nil {
				return nil, ms, err
			}
		}
	}

	// Point of no return: every replayed image (name-table pages, VAM
	// rebase, leaders) is written home — fence them, then reset the log.
	// A crash before the reset replays the same log again idempotently; a
	// crash after it finds the home state complete under an empty log.
	if err := v.d.Sync(); err != nil {
		return nil, ms, err
	}
	if err := v.log.CompleteRecovery(); err != nil {
		return nil, ms, err
	}

	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return nil, ms, err
	}
	if cfg.LogVAM {
		v.enableVAMLogging()
	}
	ms.Elapsed = v.clk.Now() - start
	v.noteRecovery(rs, ms)
	if cfg.AsyncApply {
		v.startIntentQueue()
	}
	v.recovering.Store(false)
	v.startTicker()
	v.finishMount()
	return v, ms, nil
}

// noteRecovery snapshots the replay outcome for Stats().Recovery and emits
// the EvRecovery trace event (recorded into the ring even while tracing is
// disabled, so post-mount inspection sees what recovery did).
func (v *Volume) noteRecovery(rs wal.RecoveryStats, ms MountStats) {
	v.recovery = RecoveryStats{
		Ran:           true,
		CleanShutdown: ms.CleanShutdown,
		Records:       rs.Records,
		Images:        rs.Images,
		Repaired:      rs.Repaired,
		TornRecords:   rs.TornRecords,
		TailDiscarded: rs.TailDiscarded,
		GapBreaks:     rs.GapBreaks,
		SectorsRead:   rs.SectorsRead,
		Elapsed:       rs.Elapsed,
	}
	v.obs.tracer.Record(obs.Event{
		Time: v.clk.Now(), Kind: obs.EvRecovery, Op: v.Health().String(),
		OK: v.Health() < HealthReadOnly,
		A:  int64(rs.Records), B: int64(rs.Images),
		C: int64(rs.TornRecords + rs.GapBreaks), D: int64(rs.Elapsed),
	})
}

// finishMount marks the volume fully wired and runs any repair work that was
// deferred while mounting: a volume whose recovery burned through the error
// budget comes up Degraded with its aggressive scrub pass starting now, not
// silently Healthy.
func (v *Volume) finishMount() {
	v.ready.Store(true)
	if v.Health() == HealthDegraded && !v.readOnly && !v.closed.Load() {
		go func() { _, _ = v.Scrub() }()
	}
}

// applyNTImages writes the surviving name-table images home. With
// MountWorkers > 1 the writes fan out over a worker pool, each worker
// sweeping a contiguous chunk of the sorted targets (pFSCK-style); the
// simulated device still serializes the transfers, so on the virtual clock
// the win is structural, but a real controller with command queuing would
// overlap them. Sequential mode preserves the exact single-sweep order.
func (v *Volume) applyNTImages(ntImages map[uint64][]byte) error {
	ntTargets := make([]uint64, 0, len(ntImages))
	for tgt := range ntImages {
		ntTargets = append(ntTargets, tgt)
	}
	sort.Slice(ntTargets, func(i, j int) bool { return ntTargets[i] < ntTargets[j] })
	writeOne := func(tgt uint64) error {
		id := uint32(tgt / NTPageSectors)
		sub := int(tgt % NTPageSectors)
		a, b := v.lay.ntPageAddrs(id)
		if err := v.writeSectors(a+sub, ntImages[tgt]); err != nil {
			return err
		}
		if !v.cfg.SingleCopyNT {
			if err := v.writeSectors(b+sub, ntImages[tgt]); err != nil {
				return err
			}
		}
		return nil
	}
	workers := v.cfg.mountWorkers()
	if workers <= 1 || len(ntTargets) < 2*workers {
		for _, tgt := range ntTargets {
			if err := writeOne(tgt); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := (len(ntTargets) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ntTargets) {
			hi = len(ntTargets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, tgt := range ntTargets[lo:hi] {
				if err := writeOne(tgt); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scanForRebuild walks the whole name table once, optionally rebuilding the
// VAM, and always returning the leader-sector ownership map. "Since the
// file name table is a compact structure with a great deal of locality, it
// can be processed quickly." With MountWorkers > 1 the walk is pipelined:
// one goroutine drives the leaf chain (so page reads keep their exact
// sequential disk order) while workers decode the entries, and the decode
// CPU — the bulk of the paper's ~20 s — is charged divided by the worker
// count.
func (v *Volume) scanForRebuild(rebuildVAM bool) (map[int]uint64, error) {
	if rebuildVAM {
		v.vm = vam.New(v.lay.total)
		v.vm.MarkFree(v.lay.dataLo, v.lay.total-v.lay.dataLo)
		metaLo, metaHi := v.lay.logBase, v.lay.vamBase+v.lay.vamSectors
		if metaHi > metaLo {
			v.vm.MarkAllocated(metaLo, metaHi-metaLo)
		}
	}
	if workers := v.cfg.mountWorkers(); workers > 1 {
		return v.scanForRebuildParallel(rebuildVAM, workers)
	}
	owners := make(map[int]uint64)
	err := v.nt.Scan(nil, func(k, val []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		e, err := decodeEntry(name, ver, val)
		if err != nil {
			return true
		}
		v.cpu.Charge(sim.CostBTreeOp / 4)
		if len(e.Runs) > 0 {
			owners[int(e.Runs[0].Start)] = e.UID
		}
		if rebuildVAM {
			for _, r := range e.Runs {
				v.vm.MarkAllocated(int(r.Start), int(r.Len))
			}
		}
		return true
	})
	return owners, err
}

// scanResult is one worker's share of a parallel rebuild scan.
type scanResult struct {
	owners map[int]uint64
	runs   []alloc.Run
	cpu    time.Duration
}

// scanForRebuildParallel is the pFSCK-style fan-out: the calling goroutine
// reads leaf pages in chain order (identical disk timing to the sequential
// scan) and hands each page to a decode worker. Workers accumulate results
// and CPU cost privately; the merge is order-independent (owner entries are
// keyed by unique leader addresses, the VAM is a bitmap), so the rebuilt
// state is byte-identical to the sequential scan's, while the decode CPU is
// charged as elapsed/workers.
func (v *Volume) scanForRebuildParallel(rebuildVAM bool, workers int) (map[int]uint64, error) {
	pageCh := make(chan []byte, workers*2)
	results := make([]scanResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(res *scanResult) {
			defer wg.Done()
			res.owners = make(map[int]uint64)
			for page := range pageCh {
				btree.LeafEntries(page, func(k, val []byte) bool {
					name, ver, ok := splitKey(k)
					if !ok {
						return true
					}
					e, err := decodeEntry(name, ver, val)
					if err != nil {
						return true
					}
					res.cpu += sim.CostBTreeOp / 4
					if len(e.Runs) > 0 {
						res.owners[int(e.Runs[0].Start)] = e.UID
					}
					if rebuildVAM {
						res.runs = append(res.runs, e.Runs...)
					}
					return true
				})
			}
		}(&results[w])
	}
	err := v.nt.ForEachLeaf(func(page []byte) bool {
		pageCh <- page
		return true
	})
	close(pageCh)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	owners := make(map[int]uint64)
	var cpuTotal time.Duration
	for _, res := range results {
		for addr, uid := range res.owners {
			owners[addr] = uid
		}
		if rebuildVAM {
			for _, r := range res.runs {
				v.vm.MarkAllocated(int(r.Start), int(r.Len))
			}
		}
		cpuTotal += res.cpu
	}
	v.cpu.Charge(cpuTotal / time.Duration(workers))
	return owners, nil
}

// startTicker launches the group-commit goroutine when running on a real
// clock, plus the background scrubber if configured. On a virtual clock
// forcing is driven by MaybeForce at operation boundaries, which observes
// the same half-second deadline, and scrubbing by explicit Scrub calls.
func (v *Volume) startTicker() {
	if _, ok := v.clk.(*sim.RealClock); !ok {
		return
	}
	interval := v.cfg.interval()
	if interval == 0 && v.cfg.ScrubInterval <= 0 {
		return
	}
	stop := make(chan struct{})
	v.stopTicker = stop
	v.startScrubber(stop)
	if interval == 0 {
		return
	}
	// With the adaptive controller the force deadline can shrink to the
	// floor, so the poll has to keep up with the floor, not the ceiling.
	period := interval
	if v.cfg.AdaptiveCommit {
		period = v.cfg.commitFloor()
	}
	tick := period / sim.RealTimeScale
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Shared mode: forcing runs concurrently with
				// operations; the read lock only fences Shutdown.
				v.mu.RLock()
				if !v.closed.Load() {
					v.log.MaybeForce()
				}
				v.mu.RUnlock()
			case <-stop:
				return
			}
		}
	}()
}

// Force makes all buffered metadata updates durable now ("clients may force
// the log"). The sim-time wait to acquire the monitor is recorded in the
// LockWait histogram — commit-path lock contention is the cost the split
// monitor is supposed to have removed, so it is worth watching.
func (v *Volume) Force() (err error) {
	defer v.span("force")(&err)
	before := v.clk.Now()
	unlock := v.rlock()
	defer unlock()
	wait := v.clk.Now() - before
	v.obs.lockWait.ObserveDuration(wait)
	if v.obs.tracer.Enabled() {
		v.obs.tracer.Emit(obs.Event{
			Time: v.clk.Now(), Kind: obs.EvLockWait, Op: "force",
			OK: true, A: int64(wait),
		})
	}
	if v.closed.Load() {
		return ErrClosed
	}
	if v.readOnly {
		return ErrReadOnly
	}
	if err := v.healthErr(); err != nil {
		return err
	}
	if v.q != nil {
		// Every acked intent must reach the log's pending batch before the
		// force, or Force would not cover it.
		if err := v.q.Drain(); err != nil {
			return err
		}
	}
	return v.log.Force()
}

// CommitSeq returns the commit sequence covering every update acknowledged
// so far: once WaitCommitted returns for it, all of them are durable. On a
// synchronous volume this is the log batch sequence; with the async pipeline
// it is the newest intent sequence. Pair with WaitCommitted for
// group-commit-aware fsync.
func (v *Volume) CommitSeq() uint64 {
	if v.q != nil {
		return v.q.Enqueued()
	}
	if v.log == nil {
		return 0
	}
	return v.log.Seq()
}

// WaitCommitted blocks until commit sequence seq is durable, forcing as
// needed. It intentionally takes no volume lock: waiting must not serialize
// other operations (that is the point of the pipelined commit). With the
// async pipeline it first waits for intent seq to be applied — which stages
// its log images — and then forces the batch holding them.
func (v *Volume) WaitCommitted(seq uint64) error {
	if v.closed.Load() {
		return ErrClosed
	}
	if v.readOnly {
		return ErrReadOnly
	}
	if err := v.healthErr(); err != nil {
		return err
	}
	if v.q != nil {
		if err := v.q.WaitApplied(seq); err != nil {
			return err
		}
		return v.log.WaitCommitted(v.log.Seq())
	}
	return v.log.WaitCommitted(seq)
}

// Tick gives the group-commit engine a chance to run; simulations call it
// when virtual time passes without file-system activity.
func (v *Volume) Tick() error {
	defer v.rlock()()
	if v.closed.Load() {
		return ErrClosed
	}
	if v.readOnly || v.Health() >= HealthReadOnly {
		return nil
	}
	return v.log.MaybeForce()
}

// Shutdown performs a controlled shutdown: force the log, write all dirty
// metadata home, save the allocation map, and stamp the volume clean.
func (v *Volume) Shutdown() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed.Load() {
		return ErrClosed
	}
	if v.stopTicker != nil {
		close(v.stopTicker)
	}
	if v.readOnly || v.Health() >= HealthReadOnly {
		// A degraded mount wrote nothing and must leave the volume
		// exactly as found — including the unclean root stamp, so the
		// next writable mount still runs recovery. A volume the health
		// FSM demoted must likewise stay stamped unclean: durability of
		// its recent mutations is exactly what is in doubt.
		v.stopIntentQueue(false)
		v.closed.Store(true)
		return nil
	}
	if err := v.stopIntentQueue(true); err != nil {
		return err
	}
	if err := v.log.Force(); err != nil {
		return err
	}
	if err := v.cache.flushAll(); err != nil {
		return err
	}
	v.lmu.Lock()
	for addr, data := range v.pendingLeaders {
		if err := v.writeSectors(addr, data); err != nil {
			v.lmu.Unlock()
			return err
		}
	}
	v.pendingLeaders = make(map[int][]byte)
	v.leaderThird = make(map[int]int)
	v.lmu.Unlock()
	if err := v.vm.SaveWith(v.writeSectors, v.lay.vamBase); err != nil {
		return err
	}
	root, err := readRoot(v.d)
	if err != nil {
		return err
	}
	root.clean = true
	if err := v.writeRoot(root); err != nil {
		return err
	}
	v.closed.Store(true)
	return nil
}

// Crash abandons the volume without any cleanup and halts the device,
// modelling a power failure. The device can be Revived and re-Mounted.
func (v *Volume) Crash() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopTicker != nil {
		close(v.stopTicker)
		v.stopTicker = nil
	}
	// A crash abandons unapplied intents: nothing they promised was acked
	// (acks come only from WaitCommitted), so dropping them wholesale is
	// exactly the atomicity the durability contract allows.
	v.stopIntentQueue(false)
	v.closed.Store(true)
	v.d.Halt()
}

// DropCaches forces pending metadata, writes everything home, and empties
// the name-table cache, so the next operations run cold. For measurement
// harnesses only.
func (v *Volume) DropCaches() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed.Load() {
		return ErrClosed
	}
	if v.readOnly {
		return ErrReadOnly
	}
	if err := v.healthErr(); err != nil {
		return err
	}
	if err := v.DrainIntents(); err != nil {
		return err
	}
	if err := v.log.Force(); err != nil {
		return err
	}
	if err := v.cache.flushAll(); err != nil {
		return err
	}
	v.lmu.Lock()
	for addr, data := range v.pendingLeaders {
		if err := v.writeSectors(addr, data); err != nil {
			v.lmu.Unlock()
			return err
		}
		delete(v.pendingLeaders, addr)
		delete(v.leaderThird, addr)
	}
	v.lmu.Unlock()
	v.cache.dropAll()
	if v.dataCache != nil {
		v.dataCache.DropAll()
	}
	return nil
}

// LogRegion reports the log's sector region for diagnostic tooling.
func (v *Volume) LogRegion() (base, size int) {
	return v.lay.logBase, v.lay.logSize
}

// LogRegionOf reads a volume's root page and returns its log region without
// mounting (cmd/logdump uses it on crashed images).
func LogRegionOf(d *disk.Disk) (base, size int, err error) {
	root, err := readRoot(d)
	if err != nil {
		return 0, 0, err
	}
	return root.layout.logBase, root.layout.logSize, nil
}

// ModelInfo reports the layout facts the analytical model's scripts need:
// the cylinder distances from the active data area to the name table and
// the log.
func (v *Volume) ModelInfo() (dataToNTCyl, dataToLogCyl int) {
	g := v.d.Geometry()
	dataCyl := g.Cylinder(v.lay.dataLo)
	nt := g.Cylinder(v.lay.ntA) - dataCyl
	if nt < 0 {
		nt = -nt
	}
	lg := g.Cylinder(v.lay.logBase) - dataCyl
	if lg < 0 {
		lg = -lg
	}
	return nt, lg
}

// nextUID allocates a volume-unique file identifier.
func (v *Volume) nextUID() uint64 {
	return v.uidNext.Add(1) - 1
}

// begin is the common entry for public operations; the caller holds the
// monitor in the mode matching the operation.
func (v *Volume) begin() error {
	if v.closed.Load() {
		return ErrClosed
	}
	if v.Health() == HealthOffline {
		return ErrOffline
	}
	v.cpu.Charge(sim.CostSyscall)
	if v.readOnly || v.Health() >= HealthReadOnly {
		// Read-only (by mount or by health) volumes never force: reads
		// keep serving, nothing new is written.
		return nil
	}
	return v.log.MaybeForce()
}

// beginMutate is begin for operations that modify the volume; a degraded
// read-only mount refuses them before they touch anything, and on an async
// volume whose applier hit a sticky error every further mutation reports it
// rather than enqueueing work that would be skipped.
func (v *Volume) beginMutate() error {
	if v.readOnly {
		return ErrReadOnly
	}
	if err := v.healthErr(); err != nil {
		return err
	}
	if v.q != nil {
		if err := v.q.Err(); err != nil {
			return fmt.Errorf("core: intent applier failed: %w", err)
		}
	}
	return v.begin()
}

// ReadOnly reports whether the volume was mounted by MountReadOnly.
func (v *Volume) ReadOnly() bool { return v.readOnly }
