package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vam"
	"repro/internal/wal"
)

const csumCost = sim.CostChecksumPage

// Errors returned by volume operations.
var (
	ErrNotFound  = errors.New("core: file not found")
	ErrExists    = errors.New("core: file version already exists")
	ErrClosed    = errors.New("core: volume is shut down")
	ErrRootLost  = errors.New("core: both volume root pages unreadable")
	ErrIsSymlink = errors.New("core: entry is a symbolic link")
)

// MountStats reports what mounting had to do.
type MountStats struct {
	CleanShutdown    bool
	LogRecords       int
	LogImagesApplied int
	LogRepaired      int
	VAMReconstructed bool
	// VAMElapsed is the portion of Elapsed spent scanning the name table
	// to rebuild the allocation map (the paper's ~20 s on a Dorado).
	VAMElapsed time.Duration
	Elapsed    time.Duration
}

// OpStats counts logical file-system operations for the benchmark tables.
type OpStats struct {
	Creates, Opens, Deletes, Lists, Reads, Writes, Touches int
}

// Volume is a mounted FSD volume. All public methods are safe for
// concurrent use; a single monitor serializes operations, as in Cedar.
type Volume struct {
	d   *disk.Disk
	clk sim.Clock
	cpu *sim.CPU
	cfg Config
	lay layout

	mu    sync.Mutex
	log   *wal.Log
	cache *ntCache
	nt    *btree.Tree
	vm    *vam.VAM
	al    *alloc.Allocator

	uidNext uint64
	// pendingLeaders holds leader pages created but not yet written to
	// their home sector; the write piggybacks on the file's next data
	// write, or happens when the leader's log third is overwritten.
	pendingLeaders map[int][]byte
	leaderThird    map[int]int

	// VAM-logging state (Config.LogVAM; see vamlog.go).
	vamDirty   map[int]bool
	vamSectors map[int]*vamSector

	closed bool
	ops    OpStats

	// stopTicker stops the real-time group-commit goroutine, if any.
	stopTicker chan struct{}
}

// CPU returns the simulated CPU the volume charges.
func (v *Volume) CPU() *sim.CPU { return v.cpu }

// Disk returns the underlying device.
func (v *Volume) Disk() *disk.Disk { return v.d }

// Log exposes the redo log for stats and explicit forcing in benchmarks.
func (v *Volume) Log() *wal.Log { return v.log }

// VAM exposes the allocation map (read-only use).
func (v *Volume) VAM() *vam.VAM { return v.vm }

// Ops returns the logical operation counters.
func (v *Volume) Ops() OpStats { return v.ops }

// CacheStats returns (hits, misses, homeWrites) of the name-table cache.
func (v *Volume) CacheStats() (int, int, int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cache.Hits, v.cache.Misses, v.cache.HomeWrites
}

// newVolume wires up the common structure.
func newVolume(d *disk.Disk, cfg Config, lay layout) *Volume {
	v := &Volume{
		d:              d,
		clk:            d.Clock(),
		cpu:            sim.NewCPU(d.Clock()),
		cfg:            cfg,
		lay:            lay,
		pendingLeaders: make(map[int][]byte),
		leaderThird:    make(map[int]int),
	}
	d.SetClassifier(func(addr int) disk.Class {
		if lay.metaRange(addr) {
			return disk.ClassMeta
		}
		return disk.ClassData
	})
	return v
}

// hookLog installs the WAL callbacks.
func (v *Volume) hookLog() {
	v.log.FlushHook = func(third int) (int, error) {
		n, err := v.cache.flushThird(third)
		if err != nil {
			return n, err
		}
		m, err := v.flushLeaders(third)
		if err != nil {
			return n + m, err
		}
		k, err := v.flushVAMSectors(third)
		return n + m + k, err
	}
	v.log.OnLogged = func(kind uint8, target uint64, third int) {
		switch kind {
		case wal.KindNameTable:
			v.cache.onLogged(target, third)
		case wal.KindLeader:
			if _, ok := v.pendingLeaders[int(target)]; ok {
				v.leaderThird[int(target)] = third
			}
		case wal.KindVAM:
			v.onVAMLogged(target, third)
		}
	}
	v.log.OnCommit = func() {
		// Pages of deleted files become allocatable once the delete
		// is durable.
		v.vm.Commit()
	}
}

// flushLeaders writes home pending leader pages last logged in third.
func (v *Volume) flushLeaders(third int) (int, error) {
	n := 0
	for addr, t := range v.leaderThird {
		if t != third {
			continue
		}
		data, ok := v.pendingLeaders[addr]
		if !ok {
			delete(v.leaderThird, addr)
			continue
		}
		if err := v.d.WriteSectors(addr, data); err != nil {
			return n, err
		}
		delete(v.pendingLeaders, addr)
		delete(v.leaderThird, addr)
		n++
	}
	return n, nil
}

func (v *Volume) writeRoot(r rootPage) error {
	buf := encodeRoot(r)
	if err := v.d.WriteSectors(v.lay.rootA, buf); err != nil {
		return err
	}
	return v.d.WriteSectors(v.lay.rootB, buf)
}

func readRoot(d *disk.Disk) (rootPage, error) {
	for _, addr := range []int{0, 2} {
		buf, err := d.ReadSectors(addr, 1)
		if err != nil {
			continue
		}
		if r, ok := decodeRoot(buf); ok {
			return r, nil
		}
	}
	return rootPage{}, ErrRootLost
}

// Format initializes an FSD volume on d and returns it mounted. Everything
// on the device is considered garbage.
func Format(d *disk.Disk, cfg Config) (*Volume, error) {
	lay, err := computeLayout(d.Geometry(), cfg)
	if err != nil {
		return nil, err
	}
	v := newVolume(d, cfg, lay)
	v.log, err = wal.Format(d, lay.logBase, lay.logSize, v.clk, wal.Config{
		Interval: cfg.interval(),
		Thirds:   cfg.Thirds,
	})
	if err != nil {
		return nil, err
	}
	v.cache = newNTCache(v, cfg.cacheSize())
	v.hookLog()

	// Free-page map: data region free, metadata allocated.
	v.vm = vam.New(lay.total)
	v.vm.MarkFree(lay.dataLo, lay.total-lay.dataLo)
	metaLo, metaHi := lay.logBase, lay.vamBase+lay.vamSectors
	if metaHi > metaLo {
		v.vm.MarkAllocated(metaLo, metaHi-metaLo)
	}
	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return nil, err
	}

	// Build the empty name table through the logged cache, then force
	// and flush so the home copies exist.
	v.nt, err = btree.Create(v.cache)
	if err != nil {
		return nil, err
	}
	if err := v.log.Force(); err != nil {
		return nil, err
	}
	if err := v.cache.flushAll(); err != nil {
		return nil, err
	}

	v.uidNext = 1 << 32
	if err := v.writeRoot(rootPage{layout: lay, clean: false, logVAM: cfg.LogVAM, uidChunk: 1, formatted: v.clk.Now()}); err != nil {
		return nil, err
	}
	if cfg.LogVAM {
		// Write the full base image the logged deltas will apply over.
		if err := v.vm.Save(v.d, lay.vamBase); err != nil {
			return nil, err
		}
		v.enableVAMLogging()
	}
	// Format-time activity should not pollute measurements.
	v.log.ResetStats()
	v.d.ResetStats()
	v.startTicker()
	return v, nil
}

// Mount attaches to a previously formatted volume, replaying the log and
// reconstructing the allocation map as needed. Behavioural Config fields
// (commit interval, cache size) apply; layout fields come from the volume
// root page.
func Mount(d *disk.Disk, cfg Config) (*Volume, MountStats, error) {
	var ms MountStats
	start := d.Clock().Now()
	root, err := readRoot(d)
	if err != nil {
		return nil, ms, err
	}
	lay := root.layout
	// The VAM-logging mode is a property of the volume, recorded at
	// format: honour it regardless of what the mount config says (a
	// non-LogVAM volume has no valid save-area base to apply deltas to).
	cfg.LogVAM = root.logVAM
	v := newVolume(d, cfg, lay)
	wasClean := root.clean
	ms.CleanShutdown = wasClean

	// From this moment the volume is in use: a crash must recover.
	root.clean = false
	root.uidChunk++
	if err := v.writeRoot(root); err != nil {
		return nil, ms, err
	}
	v.uidNext = root.uidChunk << 32

	v.log, err = wal.Open(d, lay.logBase, lay.logSize, v.clk, wal.Config{
		Interval: cfg.interval(),
		Thirds:   cfg.Thirds,
	})
	if err != nil {
		return nil, ms, err
	}
	v.cache = newNTCache(v, cfg.cacheSize())

	// Replay: images are buffered last-writer-wins and only the final
	// image of each page touches the disk, in ascending address order —
	// the redo pass is then a short sequential sweep over the hot
	// name-table pages rather than a write per logged image. Leader
	// images are additionally validated against the post-replay name
	// table, so a leader image of a since-deleted file can never stomp a
	// reallocated page.
	leaderImages := make(map[int][]byte)
	ntImages := make(map[uint64][]byte)
	vamImages := make(map[int][]byte)
	rs, err := v.log.Recover(func(kind uint8, target uint64, data []byte) error {
		cp := make([]byte, len(data))
		copy(cp, data)
		switch kind {
		case wal.KindNameTable:
			ntImages[target] = cp
		case wal.KindLeader:
			leaderImages[int(target)] = cp
		case wal.KindVAM:
			vamImages[int(target)] = cp
		}
		return nil
	})
	if err != nil {
		return nil, ms, err
	}
	ntTargets := make([]uint64, 0, len(ntImages))
	for tgt := range ntImages {
		ntTargets = append(ntTargets, tgt)
	}
	sort.Slice(ntTargets, func(i, j int) bool { return ntTargets[i] < ntTargets[j] })
	for _, tgt := range ntTargets {
		id := uint32(tgt / NTPageSectors)
		sub := int(tgt % NTPageSectors)
		a, b := lay.ntPageAddrs(id)
		if err := v.d.WriteSectors(a+sub, ntImages[tgt]); err != nil {
			return nil, ms, err
		}
		if !cfg.SingleCopyNT {
			if err := v.d.WriteSectors(b+sub, ntImages[tgt]); err != nil {
				return nil, ms, err
			}
		}
	}
	ms.LogRecords = rs.Records
	ms.LogImagesApplied = rs.Images
	ms.LogRepaired = rs.Repaired
	v.hookLog()

	v.nt, err = btree.Open(v.cache)
	if err != nil {
		return nil, ms, fmt.Errorf("core: name table unreadable after replay: %w", err)
	}

	// Allocation map: load the saved copy after a clean shutdown,
	// otherwise reconstruct from the name table (~20 s on a full 300 MB
	// volume, per the paper) — unless VAM logging is on, in which case
	// the replayed sector images over the save-area base reproduce the
	// committed map directly ("about two seconds").
	needScan := len(leaderImages) > 0
	if wasClean {
		v.vm, err = vam.Load(d, lay.vamBase, lay.total)
		if err != nil {
			ms.VAMReconstructed = true
		}
	} else if cfg.LogVAM {
		if vm, ok := v.recoverVAMFromLog(vamImages); ok {
			v.vm = vm
		} else {
			ms.VAMReconstructed = true
		}
	} else {
		ms.VAMReconstructed = true
	}
	var leaderOwners map[int]uint64
	if ms.VAMReconstructed || needScan {
		scanStart := v.clk.Now()
		leaderOwners, err = v.scanForRebuild(ms.VAMReconstructed)
		if err != nil {
			return nil, ms, err
		}
		ms.VAMElapsed = v.clk.Now() - scanStart
	}
	if cfg.LogVAM {
		// Rebase: a fresh full save becomes the foundation for the next
		// run's logged deltas; the stamp stays valid because the log
		// keeps the area consistent from here on.
		if err := v.vm.Save(d, lay.vamBase); err != nil {
			return nil, ms, err
		}
	} else if err := vam.Invalidate(d, lay.vamBase); err != nil {
		return nil, ms, err
	}

	// Apply surviving leader images whose file still owns the sector.
	for addr, img := range leaderImages {
		uid, ok := leaderUID(img)
		if !ok {
			continue
		}
		if owner, present := leaderOwners[addr]; present && owner == uid {
			if err := v.d.WriteSectors(addr, img); err != nil {
				return nil, ms, err
			}
		}
	}

	v.al, err = alloc.New(v.vm, alloc.Config{
		Lo:             lay.dataLo,
		Hi:             lay.dataHi,
		SmallThreshold: cfg.smallThreshold(),
		SmallFraction:  (lay.boundary - lay.dataLo) * 100 / (lay.dataHi - lay.dataLo),
	})
	if err != nil {
		return nil, ms, err
	}
	if cfg.LogVAM {
		v.enableVAMLogging()
	}
	ms.Elapsed = v.clk.Now() - start
	v.startTicker()
	return v, ms, nil
}

// scanForRebuild walks the whole name table once, optionally rebuilding the
// VAM, and always returning the leader-sector ownership map. "Since the
// file name table is a compact structure with a great deal of locality, it
// can be processed quickly."
func (v *Volume) scanForRebuild(rebuildVAM bool) (map[int]uint64, error) {
	owners := make(map[int]uint64)
	if rebuildVAM {
		v.vm = vam.New(v.lay.total)
		v.vm.MarkFree(v.lay.dataLo, v.lay.total-v.lay.dataLo)
		metaLo, metaHi := v.lay.logBase, v.lay.vamBase+v.lay.vamSectors
		if metaHi > metaLo {
			v.vm.MarkAllocated(metaLo, metaHi-metaLo)
		}
	}
	err := v.nt.Scan(nil, func(k, val []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			return true
		}
		e, err := decodeEntry(name, ver, val)
		if err != nil {
			return true
		}
		v.cpu.Charge(sim.CostBTreeOp / 4)
		if len(e.Runs) > 0 {
			owners[int(e.Runs[0].Start)] = e.UID
		}
		if rebuildVAM {
			for _, r := range e.Runs {
				v.vm.MarkAllocated(int(r.Start), int(r.Len))
			}
		}
		return true
	})
	return owners, err
}

// startTicker launches the group-commit goroutine when running on a real
// clock. On a virtual clock forcing is driven by MaybeForce at operation
// boundaries, which observes the same half-second deadline.
func (v *Volume) startTicker() {
	if _, ok := v.clk.(*sim.RealClock); !ok {
		return
	}
	interval := v.cfg.interval()
	if interval == 0 {
		return
	}
	stop := make(chan struct{})
	v.stopTicker = stop
	go func() {
		t := time.NewTicker(interval / sim.RealTimeScale)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				v.mu.Lock()
				if !v.closed {
					v.log.MaybeForce()
				}
				v.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
}

// Force makes all buffered metadata updates durable now ("clients may force
// the log").
func (v *Volume) Force() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	return v.log.Force()
}

// Tick gives the group-commit engine a chance to run; simulations call it
// when virtual time passes without file-system activity.
func (v *Volume) Tick() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	return v.log.MaybeForce()
}

// Shutdown performs a controlled shutdown: force the log, write all dirty
// metadata home, save the allocation map, and stamp the volume clean.
func (v *Volume) Shutdown() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if v.stopTicker != nil {
		close(v.stopTicker)
	}
	if err := v.log.Force(); err != nil {
		return err
	}
	if err := v.cache.flushAll(); err != nil {
		return err
	}
	for addr, data := range v.pendingLeaders {
		if err := v.d.WriteSectors(addr, data); err != nil {
			return err
		}
	}
	v.pendingLeaders = make(map[int][]byte)
	v.leaderThird = make(map[int]int)
	if err := v.vm.Save(v.d, v.lay.vamBase); err != nil {
		return err
	}
	root, err := readRoot(v.d)
	if err != nil {
		return err
	}
	root.clean = true
	if err := v.writeRoot(root); err != nil {
		return err
	}
	v.closed = true
	return nil
}

// Crash abandons the volume without any cleanup and halts the device,
// modelling a power failure. The device can be Revived and re-Mounted.
func (v *Volume) Crash() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopTicker != nil {
		close(v.stopTicker)
		v.stopTicker = nil
	}
	v.closed = true
	v.d.Halt()
}

// DropCaches forces pending metadata, writes everything home, and empties
// the name-table cache, so the next operations run cold. For measurement
// harnesses only.
func (v *Volume) DropCaches() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if err := v.log.Force(); err != nil {
		return err
	}
	if err := v.cache.flushAll(); err != nil {
		return err
	}
	for addr, data := range v.pendingLeaders {
		if err := v.d.WriteSectors(addr, data); err != nil {
			return err
		}
		delete(v.pendingLeaders, addr)
		delete(v.leaderThird, addr)
	}
	v.cache.dropAll()
	return nil
}

// LogRegion reports the log's sector region for diagnostic tooling.
func (v *Volume) LogRegion() (base, size int) {
	return v.lay.logBase, v.lay.logSize
}

// LogRegionOf reads a volume's root page and returns its log region without
// mounting (cmd/logdump uses it on crashed images).
func LogRegionOf(d *disk.Disk) (base, size int, err error) {
	root, err := readRoot(d)
	if err != nil {
		return 0, 0, err
	}
	return root.layout.logBase, root.layout.logSize, nil
}

// ModelInfo reports the layout facts the analytical model's scripts need:
// the cylinder distances from the active data area to the name table and
// the log.
func (v *Volume) ModelInfo() (dataToNTCyl, dataToLogCyl int) {
	g := v.d.Geometry()
	dataCyl := g.Cylinder(v.lay.dataLo)
	nt := g.Cylinder(v.lay.ntA) - dataCyl
	if nt < 0 {
		nt = -nt
	}
	lg := g.Cylinder(v.lay.logBase) - dataCyl
	if lg < 0 {
		lg = -lg
	}
	return nt, lg
}

// nextUID allocates a volume-unique file identifier.
func (v *Volume) nextUID() uint64 {
	u := v.uidNext
	v.uidNext++
	return u
}

// begin is the common entry for public operations. Callers must not hold
// v.mu.
func (v *Volume) begin() error {
	if v.closed {
		return ErrClosed
	}
	v.cpu.Charge(sim.CostSyscall)
	return v.log.MaybeForce()
}
