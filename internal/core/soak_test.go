package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestSoakMultiBootLifecycle runs the volume through several boot cycles —
// alternating clean shutdowns and crashes — with continued activity in
// between, verifying after every boot that all committed state survives,
// uids stay monotonic, and the log's boot-count machinery never confuses
// records from different lives of the volume.
func TestSoakMultiBootLifecycle(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Format(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	committed := map[string][]byte{}
	var lastUID uint64
	nextFile := 0

	phase := func(boot int, files int) {
		for i := 0; i < files; i++ {
			name := fmt.Sprintf("soak/f%05d", nextFile)
			nextFile++
			data := payload(100+rng.Intn(1500), byte(nextFile))
			f, err := v.Create(name, data)
			if err != nil {
				t.Fatalf("boot %d: create: %v", boot, err)
			}
			if f.Entry().UID <= lastUID {
				t.Fatalf("boot %d: uid regression %d <= %d", boot, f.Entry().UID, lastUID)
			}
			lastUID = f.Entry().UID
			committed[name] = data
			// Occasionally delete something old.
			if rng.Intn(4) == 0 && len(committed) > 10 {
				for victim := range committed {
					if err := v.Delete(victim, 0); err != nil {
						t.Fatalf("boot %d: delete: %v", boot, err)
					}
					delete(committed, victim)
					break
				}
			}
		}
		if err := v.Force(); err != nil {
			t.Fatalf("boot %d: force: %v", boot, err)
		}
	}

	verify := func(boot int) {
		for name, data := range committed {
			f, err := v.Open(name, 0)
			if err != nil {
				t.Fatalf("boot %d: %s lost: %v", boot, name, err)
			}
			got, err := f.ReadAll()
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("boot %d: %s corrupted: %v", boot, name, err)
			}
		}
	}

	const boots = 8
	for boot := 1; boot <= boots; boot++ {
		phase(boot, 25)
		verify(boot)
		if boot%2 == 0 {
			if err := v.Shutdown(); err != nil {
				t.Fatalf("boot %d: shutdown: %v", boot, err)
			}
		} else {
			v.Crash()
			d.Revive()
		}
		var ms MountReport
		v, ms, err = Mount(d, testConfig())
		if err != nil {
			t.Fatalf("boot %d: mount: %v", boot, err)
		}
		if boot%2 == 0 && !ms.CleanShutdown {
			t.Fatalf("boot %d: clean shutdown not recognized", boot)
		}
		if boot%2 == 1 && ms.CleanShutdown {
			t.Fatalf("boot %d: crash mistaken for clean shutdown", boot)
		}
		verify(boot)
	}
	if err := v.nt.Check(); err != nil {
		t.Fatalf("tree corrupt after %d boots: %v", boots, err)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClients hammers one volume from several goroutines; the
// volume's monitor must serialize everything without corruption. Run under
// -race for full value.
func TestConcurrentClients(t *testing.T) {
	v, _, _ := newTestVolume(t)
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("conc/w%d-f%03d", w, i)
				data := payload(200+i, byte(w*16+i))
				f, err := v.Create(name, data)
				if err != nil {
					errs <- fmt.Errorf("w%d create: %w", w, err)
					return
				}
				got, err := f.ReadAll()
				if err != nil || !bytes.Equal(got, data) {
					errs <- fmt.Errorf("w%d readback: %v", w, err)
					return
				}
				if i%5 == 4 {
					if err := v.Delete(name, 0); err != nil {
						errs <- fmt.Errorf("w%d delete: %w", w, err)
						return
					}
				}
				if i%9 == 8 {
					if err := v.Force(); err != nil {
						errs <- fmt.Errorf("w%d force: %w", w, err)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Final structural check and a count.
	v.mu.Lock()
	err := v.nt.Check()
	v.mu.Unlock()
	if err != nil {
		t.Fatalf("tree corrupt after concurrent load: %v", err)
	}
	n := 0
	if err := v.List("conc/", func(Entry) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	want := workers * perWorker * 4 / 5 // every 5th deleted
	if n != want {
		t.Fatalf("listed %d files, want %d", n, want)
	}
}
