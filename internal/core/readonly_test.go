package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
)

// newCrashedVolume formats a volume, runs a few committed and one
// uncommitted update, and crashes it.
func newCrashedVolume(t *testing.T) (*disk.Disk, Config, map[string][]byte) {
	t.Helper()
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.GroupCommitInterval = time.Hour
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{
		"ro/a":     payload(900, 1),
		"ro/b":     payload(2100, 2),
		"ro/empty": nil,
	}
	for name, data := range want {
		if _, err := v.Create(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Force(); err != nil {
		t.Fatal(err)
	}
	// One uncommitted create; it may or may not survive, so keep it out of
	// the expectation map.
	if _, err := v.Create("ro/uncommitted", payload(300, 3)); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	d.Revive()
	return d, cfg, want
}

func TestMountReadOnlyServesCommittedState(t *testing.T) {
	d, cfg, want := newCrashedVolume(t)
	before := d.Stats().SectorsWritten

	v, ms, err := MountReadOnly(d, cfg)
	if err != nil {
		t.Fatalf("MountReadOnly: %v", err)
	}
	if !ms.ReadOnly || !v.ReadOnly() {
		t.Fatal("read-only mount not flagged")
	}
	if ms.LogUnavailable {
		t.Fatal("log is intact, LogUnavailable set")
	}
	if ms.LogRecords == 0 {
		t.Fatal("no log records replayed in memory")
	}
	// The committed files are all there — served through the in-memory
	// replay overlay, because nothing was flushed home before the crash.
	for name, data := range want {
		f, err := v.Open(name, 1)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		got, err := f.ReadAll()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read %s: %v", name, err)
		}
	}
	// A read-only mount writes NOTHING, ever.
	if after := d.Stats().SectorsWritten; after != before {
		t.Fatalf("read-only mount wrote %d sectors", after-before)
	}

	// Every mutation is refused.
	if _, err := v.Create("x", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create on read-only volume: %v", err)
	}
	if err := v.Delete("ro/a", 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete: %v", err)
	}
	if err := v.Touch("ro/a", 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("touch: %v", err)
	}
	if err := v.Force(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("force: %v", err)
	}
	if err := v.WaitCommitted(1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("wait: %v", err)
	}
	if _, err := v.Scrub(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("scrub: %v", err)
	}
	if err := v.Tick(); err != nil {
		t.Fatalf("tick must be a harmless no-op: %v", err)
	}

	// Verify works and is clean.
	vs, err := v.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(vs.Problems) != 0 {
		t.Fatalf("verify problems on read-only mount: %v", vs.Problems)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if after := d.Stats().SectorsWritten; after != before {
		t.Fatalf("read-only shutdown wrote %d sectors", after-before)
	}

	// The platter is untouched, so a normal writable mount still performs
	// its own full recovery afterwards.
	v2, ms2, err := Mount(d, cfg)
	if err != nil {
		t.Fatalf("writable mount after read-only: %v", err)
	}
	if ms2.ReadOnly {
		t.Fatal("writable mount flagged read-only")
	}
	for name, data := range want {
		f, err := v2.Open(name, 1)
		if err != nil {
			t.Fatalf("reopen %s: %v", name, err)
		}
		if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("reread %s: %v", name, err)
		}
	}
}

func TestMountReadOnlyDegradesWhenLogLost(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("flushed", payload(700, 9)); err != nil {
		t.Fatal(err)
	}
	// Shutdown flushes everything home; the home state alone carries the
	// file.
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Now both log anchor copies rot. A writable mount cannot recover.
	lay, err := computeLayout(d.Geometry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.CorruptSectors(lay.logBase, 1)
	d.CorruptSectors(lay.logBase+2, 1)
	if _, _, err := Mount(d, cfg); err == nil {
		t.Fatal("writable mount with both anchors lost must fail")
	}

	rv, ms, err := MountReadOnly(d, cfg)
	if err != nil {
		t.Fatalf("read-only mount with dead log: %v", err)
	}
	if !ms.LogUnavailable {
		t.Fatal("LogUnavailable not reported")
	}
	f, err := rv.Open("flushed", 1)
	if err != nil {
		t.Fatalf("open from home state: %v", err)
	}
	if got, err := f.ReadAll(); err != nil || !bytes.Equal(got, payload(700, 9)) {
		t.Fatalf("stale home read: %v", err)
	}
}

func TestMountOrSalvageReadOnlyRung(t *testing.T) {
	clk := sim.NewVirtualClock()
	d, err := disk.New(disk.SmallGeometry, disk.DefaultParams, clk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	v, err := Format(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("keep", payload(500, 4)); err != nil {
		t.Fatal(err)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	lay, err := computeLayout(d.Geometry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.CorruptSectors(lay.logBase, 1)
	d.CorruptSectors(lay.logBase+2, 1)

	mv, ms, ss, err := MountOrSalvage(d, cfg)
	if err != nil {
		t.Fatalf("MountOrSalvage: %v", err)
	}
	if ss != nil {
		t.Fatal("salvage ran although the read-only rung suffices")
	}
	if !ms.ReadOnly {
		t.Fatal("read-only rung not reported")
	}
	if _, err := mv.Open("keep", 1); err != nil {
		t.Fatalf("file lost on the read-only rung: %v", err)
	}
}
