package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/disk"
	"repro/internal/vam"
	"repro/internal/wal"
)

// NTPageSectors is the number of disk sectors per name-table page. The
// paper's name table pages "spanned multiple disk pages"; FSD uses 2 KB
// B-tree pages over 512-byte sectors.
const NTPageSectors = 4

// NTPageSize is the name-table page size in bytes.
const NTPageSize = NTPageSectors * disk.SectorSize

// Config parameterizes a volume. The zero value selects the paper's design
// point everywhere.
type Config struct {
	// GroupCommitInterval is the log force deadline. Zero means the
	// paper's half second. With AdaptiveCommit it is the ceiling the
	// adaptive controller works under rather than a fixed period; use
	// Synchronous to force at every update instead.
	GroupCommitInterval time.Duration
	// Synchronous disables group commit: every metadata update forces
	// the log immediately (the ablation baseline). It overrides
	// AdaptiveCommit.
	Synchronous bool
	// AdaptiveCommit replaces the fixed force deadline with the WAL's
	// load-aware controller: the deadline tracks the observed staging
	// rate and force latency between CommitFloor and the
	// GroupCommitInterval ceiling. See wal.Config.Adaptive.
	AdaptiveCommit bool
	// CommitFloor is the shortest deadline the adaptive controller may
	// pick. Zero means 5ms. Ignored unless AdaptiveCommit.
	CommitFloor time.Duration
	// AsyncApply enables the asynchronous metadata pipeline: mutations
	// validate under the shared monitor, enqueue a typed intent into the
	// per-volume ordered queue (internal/intentq), and return; a
	// background applier performs the B-tree updates and WAL staging.
	// WaitCommitted remains the only durability promise. See DESIGN.md
	// §13.
	AsyncApply bool
	// IntentQueueDepth bounds the unapplied intents when AsyncApply is
	// on; mutations block (backpressure) at the cap. Zero means 512.
	IntentQueueDepth int
	// LogSectors is the size of the log region including its anchor
	// pages. Zero means 2404 sectors (three 800-sector thirds, ~1.2 MB).
	LogSectors int
	// Thirds is the number of log divisions (the paper uses 3).
	Thirds int
	// NTPages is the name-table capacity in 2 KB pages per copy. Zero
	// means 2048 (4 MB per copy, roughly 20k files).
	NTPages int
	// DoubleWriteNT controls whether the name table is stored twice
	// (the paper's design). Disable only for the ablation benchmark.
	SingleCopyNT bool
	// ReadOneCopy, when set, reads only the primary name-table copy on a
	// cache miss instead of reading and cross-checking both (ablation).
	ReadOneCopy bool
	// SmallThreshold is the small-file cutoff in pages for the split
	// allocator. Zero means 8 pages (4,000 bytes, the paper's statistic).
	SmallThreshold int
	// CacheSize is the name-table page cache capacity. Zero means 512
	// pages (1 MB).
	CacheSize int
	// CentrePlacement puts the log and name table at the centre
	// cylinders (the paper's choice). EdgePlacement is the ablation.
	EdgePlacement bool
	// LogVAM enables the extension the paper considered but rejected
	// (Section 5.3): allocation-map changes are logged alongside the
	// name-table images, cutting worst-case crash recovery "from about
	// twenty five seconds to about two seconds" by skipping the
	// name-table scan.
	LogVAM bool
	// SerialMonitor restores the paper's single-monitor discipline:
	// every operation, including reads, takes the volume lock
	// exclusively. It is the baseline the concurrent read path is
	// benchmarked against; see DESIGN.md "Concurrency model".
	SerialMonitor bool
	// MountWorkers sets the fan-out for the mount-time name-table scan
	// and log-replay image application. 0 or 1 runs them sequentially
	// (the legacy path); larger values divide the decode CPU across
	// that many workers while keeping disk reads in chain order.
	MountWorkers int
	// DataCachePages is the file-data buffer cache capacity in 512-byte
	// sectors. Zero means 2048 (1 MB); negative disables the data cache,
	// restoring the raw per-run read/write path the paper's FSD used (and
	// the paper-reproduction benches measure). See internal/bufcache.
	DataCachePages int
	// ReadAhead caps the sectors fetched beyond a sequential miss: when a
	// read continues a detected sequential stream, the fetch is extended
	// through the physically contiguous stretch by up to this many extra
	// sectors (never past MaxTransferSectors per request). Zero means the
	// full transfer cap; negative disables read-ahead while keeping the
	// cache.
	ReadAhead int
	// ReadRetries bounds the in-place retries after a damaged-sector read
	// error before the error surfaces (transient faults clear on retry;
	// latent errors do not and fall through to copy repair). Zero means 2;
	// negative disables retrying.
	ReadRetries int
	// WriteRetries bounds the in-place retries after a failed sector write
	// before the volume escalates. Independently of the budget, a sector
	// that stays damaged after a failed write is remapped to a spare and
	// the write repeated (the automatic counterpart of scrub's manual
	// retirement). Applies to every metadata, WAL, and data write site.
	// Zero means 2; negative disables retrying.
	WriteRetries int
	// OpTimeout is the per-operation I/O deadline: a disk operation that
	// consumes more simulated time than this (a hung-I/O latency spike) is
	// classified as a fault and charged to the health error budget, rather
	// than silently stalling the commit pipeline. The operation itself
	// still completes — the simulated device always returns — so nothing
	// blocks past the deadline; the classification is what drives the
	// health FSM. Zero means 1s; negative disables the deadline.
	OpTimeout time.Duration
	// ErrorBudget is the write-fault escalation budget of the health FSM:
	// retries, remaps, and hung ops accumulate weighted points, and at
	// ErrorBudget points the volume leaves Healthy for Degraded (scrub is
	// scheduled aggressively); at four times the budget — or on any write
	// that fails outright after retries and remapping — it drops to
	// ReadOnly, where mutations return ErrReadOnly but reads keep serving.
	// Zero means 64; negative disables automatic health transitions.
	ErrorBudget int
	// ScrubWorkers sets the fan-out of the name-table pass of Scrub.
	// 0 or 1 scrubs sequentially.
	ScrubWorkers int
	// ScrubInterval, when positive on a real-clock volume, starts a
	// background goroutine running a full Scrub pass at that period.
	// Virtual-clock volumes scrub via explicit Scrub() calls.
	ScrubInterval time.Duration
	// CheckWorkers sets the worker-pool width of the check-and-repair
	// scans: Verify's entry walk and leader cross-check, and Salvage's
	// whole-disk sweep. 0 or 1 runs them sequentially. The result of
	// every scan is identical at any width — parallelism changes only
	// elapsed time.
	CheckWorkers int
}

func (c Config) mountWorkers() int {
	if c.MountWorkers <= 1 {
		return 1
	}
	return c.MountWorkers
}

func (c Config) interval() time.Duration {
	if c.Synchronous {
		return 0
	}
	if c.GroupCommitInterval == 0 {
		return 500 * time.Millisecond
	}
	return c.GroupCommitInterval
}

func (c Config) commitFloor() time.Duration {
	if c.CommitFloor <= 0 {
		return 5 * time.Millisecond
	}
	return c.CommitFloor
}

func (c Config) intentQueueDepth() int {
	if c.IntentQueueDepth <= 0 {
		return 512
	}
	return c.IntentQueueDepth
}

// walConfig translates the volume config into the log's. Synchronous wins
// over AdaptiveCommit: a zero interval means force-per-append and leaves the
// controller off.
func (c Config) walConfig() wal.Config {
	return wal.Config{
		Interval:     c.interval(),
		Thirds:       c.Thirds,
		Adaptive:     c.AdaptiveCommit && !c.Synchronous,
		Floor:        c.commitFloor(),
		WriteRetries: c.WriteRetries,
		ReadRetries:  c.ReadRetries,
	}
}

func (c Config) logSectors() int {
	if c.LogSectors == 0 {
		return 4 + 3*800
	}
	return c.LogSectors
}

func (c Config) ntPages() int {
	if c.NTPages == 0 {
		return 2048
	}
	return c.NTPages
}

func (c Config) smallThreshold() int {
	if c.SmallThreshold == 0 {
		return 8
	}
	return c.SmallThreshold
}

func (c Config) cacheSize() int {
	if c.CacheSize == 0 {
		return 512
	}
	return c.CacheSize
}

func (c Config) dataCachePages() int {
	if c.DataCachePages < 0 {
		return 0
	}
	if c.DataCachePages == 0 {
		return 2048
	}
	return c.DataCachePages
}

func (c Config) readAhead() int {
	if c.ReadAhead < 0 {
		return 0
	}
	if c.ReadAhead == 0 {
		return MaxTransferSectors
	}
	return c.ReadAhead
}

func (c Config) readRetries() int {
	if c.ReadRetries < 0 {
		return 0
	}
	if c.ReadRetries == 0 {
		return 2
	}
	return c.ReadRetries
}

func (c Config) writeRetries() int {
	if c.WriteRetries < 0 {
		return 0
	}
	if c.WriteRetries == 0 {
		return 2
	}
	return c.WriteRetries
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout < 0 {
		return 0
	}
	if c.OpTimeout == 0 {
		return time.Second
	}
	return c.OpTimeout
}

func (c Config) errorBudget() int {
	if c.ErrorBudget < 0 {
		return 0
	}
	if c.ErrorBudget == 0 {
		return 64
	}
	return c.ErrorBudget
}

func (c Config) scrubWorkers() int {
	if c.ScrubWorkers <= 1 {
		return 1
	}
	return c.ScrubWorkers
}

func (c Config) checkWorkers() int {
	if c.CheckWorkers <= 1 {
		return 1
	}
	return c.CheckWorkers
}

// layout describes where everything lives on the volume. The boot pages sit
// at the front; the log and both name-table copies sit together near the
// centre cylinders ("the file name table is preallocated to sectors near the
// central cylinder... this reduces disk head motion"); the VAM save area
// follows them; the rest is data, with small files growing up toward the
// metadata from below and big files growing down from the top, so both
// converge on the centre.
type layout struct {
	rootA, rootB int // volume root page and its replica
	logBase      int
	logSize      int
	ntA, ntB     int // first sector of each name-table copy
	ntPages      int
	vamBase      int
	vamSectors   int
	dataLo       int
	dataHi       int
	boundary     int // small/big split point for the allocator
	total        int
}

func computeLayout(g disk.Geometry, cfg Config) (layout, error) {
	var l layout
	l.total = g.Sectors()
	l.rootA, l.rootB = 0, 2
	l.logSize = cfg.logSectors()
	l.ntPages = cfg.ntPages()
	ntSectors := l.ntPages * NTPageSectors
	copies := 2
	if cfg.SingleCopyNT {
		copies = 1
	}
	l.vamSectors = vam.SaveSectors(l.total)
	metaSectors := l.logSize + copies*ntSectors + l.vamSectors

	start := l.total / 2 // centre cylinders
	if cfg.EdgePlacement {
		start = 4 // right after the boot pages
	}
	if start+metaSectors > l.total {
		start = l.total - metaSectors
	}
	if start < 4 {
		return l, fmt.Errorf("core: volume of %d sectors too small for metadata (%d sectors)", l.total, metaSectors)
	}
	l.logBase = start
	l.ntA = l.logBase + l.logSize
	if cfg.SingleCopyNT {
		l.ntB = l.ntA
	} else {
		l.ntB = l.ntA + ntSectors
	}
	l.vamBase = l.ntA + copies*ntSectors
	metaEnd := l.vamBase + l.vamSectors

	l.dataLo = 4
	l.dataHi = l.total
	if cfg.EdgePlacement {
		l.dataLo = metaEnd
		l.boundary = l.dataLo + (l.dataHi-l.dataLo)/2
	} else {
		// Data surrounds the central metadata; the allocator boundary
		// sits at the metadata start so small files fill the low half
		// and big files the high half, both converging on the centre.
		l.boundary = l.logBase
	}
	if l.dataHi-l.dataLo <= metaSectors {
		return l, errors.New("core: no data space left")
	}
	return l, nil
}

// metaRange reports whether addr falls in any metadata region (for the I/O
// classifier).
func (l layout) metaRange(addr int) bool {
	if addr < 4 {
		return true
	}
	if addr >= l.logBase && addr < l.vamBase+l.vamSectors {
		return true
	}
	return false
}

// ntPageAddrs returns the home sector addresses of both copies of name-table
// page id (copies are equal when the volume runs single-copy).
func (l layout) ntPageAddrs(id uint32) (a, b int) {
	a = l.ntA + int(id)*NTPageSectors
	b = l.ntB + int(id)*NTPageSectors
	return a, b
}

// Volume root page: the replicated boot-time page holding the layout and
// the clean-shutdown flag.
const rootMagic = 0xF5D0CEDA

type rootPage struct {
	layout    layout
	clean     bool
	logVAM    bool   // volume operates with VAM logging (see vamlog.go)
	uidChunk  uint64 // high-order UID allocation chunk
	formatted time.Duration
}

func encodeRoot(r rootPage) []byte {
	buf := make([]byte, disk.SectorSize)
	be := binary.BigEndian
	be.PutUint32(buf[0:], rootMagic)
	be.PutUint32(buf[4:], uint32(r.layout.logBase))
	be.PutUint32(buf[8:], uint32(r.layout.logSize))
	be.PutUint32(buf[12:], uint32(r.layout.ntA))
	be.PutUint32(buf[16:], uint32(r.layout.ntB))
	be.PutUint32(buf[20:], uint32(r.layout.ntPages))
	be.PutUint32(buf[24:], uint32(r.layout.vamBase))
	be.PutUint32(buf[28:], uint32(r.layout.vamSectors))
	be.PutUint32(buf[32:], uint32(r.layout.dataLo))
	be.PutUint32(buf[36:], uint32(r.layout.dataHi))
	be.PutUint32(buf[40:], uint32(r.layout.boundary))
	be.PutUint32(buf[44:], uint32(r.layout.total))
	if r.clean {
		buf[48] = 1
	}
	be.PutUint64(buf[49:], r.uidChunk)
	be.PutUint64(buf[57:], uint64(r.formatted))
	if r.logVAM {
		buf[65] = 1
	}
	be.PutUint32(buf[censorOff:], crc32.ChecksumIEEE(buf[:censorOff]))
	return buf
}

const censorOff = 66 // offset of the root-page checksum

func decodeRoot(buf []byte) (rootPage, bool) {
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != rootMagic {
		return rootPage{}, false
	}
	if be.Uint32(buf[censorOff:]) != crc32.ChecksumIEEE(buf[:censorOff]) {
		return rootPage{}, false
	}
	var r rootPage
	r.layout.rootA, r.layout.rootB = 0, 2
	r.layout.logBase = int(be.Uint32(buf[4:]))
	r.layout.logSize = int(be.Uint32(buf[8:]))
	r.layout.ntA = int(be.Uint32(buf[12:]))
	r.layout.ntB = int(be.Uint32(buf[16:]))
	r.layout.ntPages = int(be.Uint32(buf[20:]))
	r.layout.vamBase = int(be.Uint32(buf[24:]))
	r.layout.vamSectors = int(be.Uint32(buf[28:]))
	r.layout.dataLo = int(be.Uint32(buf[32:]))
	r.layout.dataHi = int(be.Uint32(buf[36:]))
	r.layout.boundary = int(be.Uint32(buf[40:]))
	r.layout.total = int(be.Uint32(buf[44:]))
	r.clean = buf[48] == 1
	r.uidChunk = be.Uint64(buf[49:])
	r.formatted = time.Duration(be.Uint64(buf[57:]))
	r.logVAM = buf[65] == 1
	return r, true
}
