package core

import (
	"sort"
	"time"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/wal"
)

// CacheStats counts name-table cache activity.
type CacheStats struct {
	Hits       int
	Misses     int
	HomeWrites int // sectors/pages written home (third flushes, shutdown)
	// Data holds the file-data buffer cache counters (internal/bufcache).
	// All zero when the volume runs with the data cache disabled.
	Data DataCacheStats
}

// DataCacheStats counts file-data buffer cache activity: per-sector hits and
// misses, sectors fetched ahead of demand, clustered transfers that merged
// run boundaries, and frame turnover.
type DataCacheStats struct {
	Hits             int // sectors served from cache
	Misses           int // sectors that went to disk
	ReadAheadSectors int // sectors fetched beyond the demand read
	CoalescedReads   int // read transfers that crossed run boundaries
	CoalescedWrites  int // write transfers that crossed run boundaries
	Invalidated      int // frames dropped by delete/contract/damage
	Evicted          int // frames evicted by LRU pressure
	Size             int // frames currently resident
	Capacity         int // frame capacity
}

// CommitStats reports group-commit activity: the WAL counters plus the
// batching distributions measured by the observability layer. The paper's
// Table 3 ("reduction in file operations") is BatchingFactor on a metadata
// hot-spot workload.
type CommitStats struct {
	Forces           int
	Records          int
	ImagesStaged     int
	ImagesLogged     int
	ImagesElided     int
	SectorsWritten   int
	MinRecordSectors int
	MaxRecordSectors int
	ThirdCrossings   int
	HomeFlushes      int
	// BatchingFactor is ImagesStaged / ImagesLogged: how many staged page
	// images each written image absorbed.
	BatchingFactor float64
	// BatchImages, RecordsPerForce, and ForceInterval are distributions
	// over the forces that wrote records (images per batch, records per
	// force, simulated ns between force starts).
	BatchImages     obs.HistSnapshot
	RecordsPerForce obs.HistSnapshot
	ForceInterval   obs.HistSnapshot
	// Adaptive reports whether the load-adaptive force controller is on;
	// ForceDeadline is its current deadline (the fixed interval otherwise,
	// 0 in synchronous mode).
	Adaptive      bool
	ForceDeadline time.Duration
}

// IntentStats reports the asynchronous metadata pipeline. All zero (and
// Enabled false) on a synchronous volume.
type IntentStats struct {
	Enabled  bool
	Depth    int    // intents enqueued but not yet applied
	MaxDepth int    // queue-depth high-water mark
	Enqueued uint64 // intents accepted (== the async commit sequence)
	Applied  uint64 // intents applied
	// ReaderWaits counts Wait* calls that actually blocked on pending
	// intents (readers and conflicting writers).
	ReaderWaits int64
	// ApplyLag is the distribution of enqueue-to-apply sim time (ns).
	ApplyLag obs.HistSnapshot
	// ApplierBusy is the total CPU the applier charged to its detached
	// core (deferred B-tree and cache work).
	ApplierBusy time.Duration
}

// RecoveryStats snapshots what the mount-time log replay had to absorb: the
// wal.RecoveryStats counters captured once when the volume came up. Ran is
// false on volumes created by Format (nothing to replay) and on read-only
// mounts that skipped the log entirely (MountStats.LogUnavailable).
type RecoveryStats struct {
	Ran           bool
	CleanShutdown bool
	Records       int // records replayed
	Images        int // page images applied
	Repaired      int // images or headers recovered from their copy
	TornRecords   int // records torn mid-write by the crash
	TailDiscarded int // images of an incomplete final batch, discarded
	GapBreaks     int // replay stops at a missing record
	SectorsRead   int
	Elapsed       time.Duration // replay sim time
}
type SpanStats struct {
	Count   int64
	Errors  int64
	Latency obs.HistSnapshot
}

// Stats is the one-call snapshot of every volume counter: logical
// operations, cache, group commit, raw device activity, fault handling, and
// per-operation spans. All sources are atomics (or briefly-held stat locks
// never spanning I/O), so Stats never blocks behind disk activity and is
// safe to call concurrently with any operation.
type Stats struct {
	Ops    OpStats
	Cache  CacheStats
	Commit CommitStats
	Intent IntentStats
	Disk   disk.Stats
	Faults FaultStats
	// Health is the volume health state; HealthReason names the cause of
	// the last downward transition (empty while healthy).
	Health       Health
	HealthReason string
	// Recovery reports what the mount-time log replay did (torn records,
	// discarded tails, gap breaks); zero with Ran false on freshly
	// formatted volumes.
	Recovery RecoveryStats
	// Spans maps operation name ("open", "create", ...) to its span
	// summary. Only operations invoked at least once appear.
	Spans map[string]SpanStats
	// DiskOpTime is the distribution of whole-op device times (ns),
	// fed by the disk's per-op observer.
	DiskOpTime obs.HistSnapshot
	// LockWait is the distribution of sim-time waits to acquire the
	// volume monitor on the explicit-force path (ns).
	LockWait obs.HistSnapshot
}

// Span names, one per public Volume operation wrapped by v.span.
var spanNames = []string{
	"create", "open", "stat", "touch", "setkeep", "delete", "list",
	"read", "write", "extend", "contract", "setbytesize", "force",
	"scrub", "verify",
}

// latencyBuckets covers the sim-time range of one volume operation: a
// cache-hit open costs ~1 ms of CPU, a seek-heavy create ~100 ms, a forced
// commit a few hundred ms.
var latencyBuckets = obs.DurationBuckets(
	time.Millisecond, 2*time.Millisecond, 5*time.Millisecond,
	10*time.Millisecond, 20*time.Millisecond, 50*time.Millisecond,
	100*time.Millisecond, 200*time.Millisecond, 500*time.Millisecond,
	time.Second, 2*time.Second, 5*time.Second, 10*time.Second,
)

// spanMetrics is the per-operation accumulator behind SpanStats.
type spanMetrics struct {
	count obs.Counter
	errs  obs.Counter
	lat   *obs.Histogram
}

// volObs bundles the volume's observability state: the trace ring and the
// histograms the commit and disk observers feed. The spans map is built
// once in newVolObs and read-only afterwards, so span() needs no lock.
type volObs struct {
	tracer *obs.Tracer
	spans  map[string]*spanMetrics

	batchImages     *obs.Histogram
	recordsPerForce *obs.Histogram
	forceInterval   *obs.Histogram
	diskOpTime      *obs.Histogram
	lockWait        *obs.Histogram

	// applyLag and queueDepth observe the async metadata pipeline: the
	// enqueue-to-apply latency distribution and the live unapplied-intent
	// count. Present on every volume (zero on synchronous ones) so the
	// hooks need no nil checks.
	applyLag   *obs.Histogram
	queueDepth obs.Gauge
}

func newVolObs() *volObs {
	o := &volObs{
		tracer: obs.NewTracer(4096),
		spans:  make(map[string]*spanMetrics, len(spanNames)),
		batchImages: obs.NewHistogram(
			1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
		recordsPerForce: obs.NewHistogram(1, 2, 3, 5, 8, 13),
		// Sub-10 ms buckets resolve the adaptive controller's short
		// deadlines; the coarse tail still covers the fixed half-second
		// regime and idle stretches.
		forceInterval: obs.NewHistogram(obs.DurationBuckets(
			time.Millisecond, 2*time.Millisecond, 5*time.Millisecond,
			10*time.Millisecond, 25*time.Millisecond, 50*time.Millisecond,
			100*time.Millisecond, 250*time.Millisecond,
			500*time.Millisecond, time.Second, 2*time.Second,
			5*time.Second)...),
		diskOpTime: obs.NewHistogram(obs.DurationBuckets(
			5*time.Millisecond, 10*time.Millisecond, 20*time.Millisecond,
			50*time.Millisecond, 100*time.Millisecond,
			200*time.Millisecond)...),
		lockWait: obs.NewHistogram(latencyBuckets...),
		applyLag: obs.NewHistogram(obs.DurationBuckets(
			time.Millisecond, 2*time.Millisecond, 5*time.Millisecond,
			10*time.Millisecond, 25*time.Millisecond, 50*time.Millisecond,
			100*time.Millisecond, 250*time.Millisecond,
			500*time.Millisecond, time.Second)...),
	}
	for _, name := range spanNames {
		o.spans[name] = &spanMetrics{lat: obs.NewHistogram(latencyBuckets...)}
	}
	return o
}

// span wraps one public Volume operation: it captures the sim-time start
// immediately and returns the closure to defer with the operation's error.
// Usage, with named error returns:
//
//	func (v *Volume) Open(...) (f *File, err error) {
//		defer v.span("open")(&err)
//
// The closure only reads atomics and the virtual clock — it never charges
// CPU or advances time, so wrapped and unwrapped operations take identical
// simulated time.
func (v *Volume) span(name string) func(*error) {
	sm := v.obs.spans[name]
	start := v.clk.Now()
	return func(errp *error) {
		d := v.clk.Now() - start
		sm.count.Inc()
		ok := *errp == nil
		if !ok {
			sm.errs.Inc()
		}
		sm.lat.ObserveDuration(d)
		if v.obs.tracer.Enabled() {
			v.obs.tracer.Emit(obs.Event{
				Time: v.clk.Now(), Kind: obs.EvOpSpan,
				Op: name, OK: ok, A: int64(d),
			})
		}
	}
}

// traceCache emits a cache hit/miss event. Called under the cache lock, so
// it must stay allocation-free when tracing is off (one atomic load).
func (v *Volume) traceCache(hit bool, id uint32) {
	if v.obs == nil || !v.obs.tracer.Enabled() {
		return
	}
	kind := obs.EvCacheMiss
	if hit {
		kind = obs.EvCacheHit
	}
	v.obs.tracer.Emit(obs.Event{
		Time: v.clk.Now(), Kind: kind, OK: true, A: int64(id),
	})
}

// traceData emits a data-cache hit/miss event (A = first sector, B = count).
func (v *Volume) traceData(hit bool, addr, n int) {
	if v.obs == nil || !v.obs.tracer.Enabled() {
		return
	}
	kind := obs.EvDataMiss
	if hit {
		kind = obs.EvDataHit
	}
	v.obs.tracer.Emit(obs.Event{
		Time: v.clk.Now(), Kind: kind, OK: true, A: int64(addr), B: int64(n),
	})
}

// traceReadAhead emits a read-ahead event (A = first sector, B = extra
// sectors fetched beyond the demand read).
func (v *Volume) traceReadAhead(addr, extra int) {
	if v.obs == nil || !v.obs.tracer.Enabled() {
		return
	}
	v.obs.tracer.Emit(obs.Event{
		Time: v.clk.Now(), Kind: obs.EvReadAhead, OK: true,
		A: int64(addr), B: int64(extra),
	})
}

// traceCoalesce emits a clustered-transfer event (Op = "read"/"write",
// A = first sector, B = sectors, C = run boundaries crossed).
func (v *Volume) traceCoalesce(op string, addr, n, merged int) {
	if v.obs == nil || !v.obs.tracer.Enabled() {
		return
	}
	v.obs.tracer.Emit(obs.Event{
		Time: v.clk.Now(), Kind: obs.EvCoalesce, Op: op, OK: true,
		A: int64(addr), B: int64(n), C: int64(merged),
	})
}

// traceScrub emits a scrub/repair action event.
func (v *Volume) traceScrub(action string, n int) {
	if v.obs == nil || !v.obs.tracer.Enabled() {
		return
	}
	v.obs.tracer.Emit(obs.Event{
		Time: v.clk.Now(), Kind: obs.EvScrub, Op: action, OK: true,
		A: int64(n),
	})
}

// observeDiskOp is the disk's per-op observer. It runs under the device
// mutex, so it touches only the histogram atomics, the trace ring, and —
// for ops past the deadline — the health FSM's lock-free paths.
func (v *Volume) observeDiskOp(e disk.OpEvent) {
	total := e.Elapsed()
	v.obs.diskOpTime.ObserveDuration(total)
	// The per-op I/O deadline: an operation that held the device this
	// long (a hung-I/O stall, on this simulated drive) is classified as a
	// fault instead of silently delaying the commit pipeline. A
	// legitimate op is bounded by MaxTransferSectors and never comes
	// close to the default 1 s deadline.
	if t := v.cfg.opTimeout(); t > 0 && total >= t {
		v.noteHungOp(total)
	}
	if v.obs.tracer.Enabled() {
		op := e.Class.String() + "-read"
		if e.Write {
			op = e.Class.String() + "-write"
		}
		v.obs.tracer.Emit(obs.Event{
			Time: v.clk.Now(), Kind: obs.EvDiskOp, Op: op, OK: e.OK,
			A: int64(e.Sectors), B: int64(e.Seek), C: int64(e.Rot),
			D: int64(e.Transfer),
		})
	}
}

// observeForce is the WAL's group-commit observer.
func (v *Volume) observeForce(e wal.ForceEvent) {
	v.obs.batchImages.Observe(int64(e.Images))
	v.obs.recordsPerForce.Observe(int64(e.Records))
	v.obs.forceInterval.ObserveDuration(e.Interval)
	if v.obs.tracer.Enabled() {
		v.obs.tracer.Emit(obs.Event{
			Time: v.clk.Now(), Kind: obs.EvWALForce, OK: true,
			A: int64(e.Images), B: int64(e.Records),
			C: int64(e.Sectors), D: int64(e.Interval),
		})
	}
}

// Stats returns the full counter snapshot. This is the one way to read
// volume counters; the legacy Ops, CacheStats, and FaultStats accessors
// were removed in favour of it.
func (v *Volume) Stats() Stats {
	s := Stats{
		Ops:          v.opsSnapshot(),
		Cache:        v.cacheStats(),
		Disk:         v.d.Stats(),
		Faults:       v.faultStats(),
		Health:       v.Health(),
		HealthReason: v.HealthReason(),
		Recovery:     v.recovery,
		DiskOpTime:   v.obs.diskOpTime.Snapshot(),
		LockWait:     v.obs.lockWait.Snapshot(),
		Spans:        make(map[string]SpanStats),
	}
	if v.log != nil {
		ws := v.log.Stats() // takes the WAL stat lock, never held across I/O
		s.Commit = CommitStats{
			Forces:           ws.Forces,
			Records:          ws.Records,
			ImagesStaged:     ws.ImagesStaged,
			ImagesLogged:     ws.ImagesLogged,
			ImagesElided:     ws.ImagesElided,
			SectorsWritten:   ws.SectorsWritten,
			MinRecordSectors: ws.MinRecordSectors,
			MaxRecordSectors: ws.MaxRecordSectors,
			ThirdCrossings:   ws.ThirdCrossings,
			HomeFlushes:      ws.HomeFlushes,
			BatchImages:      v.obs.batchImages.Snapshot(),
			RecordsPerForce:  v.obs.recordsPerForce.Snapshot(),
			ForceInterval:    v.obs.forceInterval.Snapshot(),
		}
		if ws.ImagesLogged > 0 {
			s.Commit.BatchingFactor = float64(ws.ImagesStaged) / float64(ws.ImagesLogged)
		}
		s.Commit.Adaptive = v.cfg.AdaptiveCommit && !v.cfg.Synchronous
		s.Commit.ForceDeadline = v.log.Deadline()
	}
	if v.q != nil {
		s.Intent = IntentStats{
			Enabled:     true,
			Depth:       v.q.Depth(),
			MaxDepth:    v.q.MaxDepthSeen(),
			Enqueued:    v.q.Enqueued(),
			Applied:     v.q.Applied(),
			ReaderWaits: v.q.ReaderWaits(),
			ApplyLag:    v.obs.applyLag.Snapshot(),
			ApplierBusy: v.apCPU.Busy(),
		}
	}
	for name, sm := range v.obs.spans {
		if c := sm.count.Load(); c > 0 {
			s.Spans[name] = SpanStats{
				Count:   c,
				Errors:  sm.errs.Load(),
				Latency: sm.lat.Snapshot(),
			}
		}
	}
	return s
}

// cacheStats assembles the combined name-table + data cache counters.
func (v *Volume) cacheStats() CacheStats {
	cs := v.cache.stats()
	if v.dataCache != nil {
		bs := v.dataCache.Stats()
		cs.Data = DataCacheStats{
			Hits:             int(bs.Hits),
			Misses:           int(bs.Misses),
			ReadAheadSectors: int(bs.ReadAheadSectors),
			CoalescedReads:   int(bs.CoalescedReads),
			CoalescedWrites:  int(bs.CoalescedWrites),
			Invalidated:      int(bs.Invalidated),
			Evicted:          int(bs.Evicted),
			Size:             bs.Size,
			Capacity:         bs.Capacity,
		}
	}
	return cs
}

// SpanNames returns the instrumented operation names in a stable order.
func SpanNames() []string {
	out := append([]string(nil), spanNames...)
	sort.Strings(out)
	return out
}

// TraceTo enables event tracing and streams every event to sink as it is
// emitted (in addition to the in-memory ring). A nil sink disables tracing.
// The sink runs on the emitting goroutine, often under internal locks: it
// must be fast and must never call back into the volume.
func (v *Volume) TraceTo(sink obs.Sink) {
	if sink == nil {
		v.obs.tracer.Disable()
		v.obs.tracer.SetSink(nil)
		return
	}
	v.obs.tracer.SetSink(sink)
	v.obs.tracer.Enable()
}

// TraceEvents returns the buffered trace events, oldest first. Tracing must
// have been enabled via TraceTo (or EnableTrace) for events to accumulate.
func (v *Volume) TraceEvents() []obs.Event {
	return v.obs.tracer.Events()
}

// EnableTrace turns on event recording into the in-memory ring without a
// streaming sink.
func (v *Volume) EnableTrace() { v.obs.tracer.Enable() }
