// Package core implements FSD — the paper's reimplemented Cedar file system
// with log-based metadata recovery and group commit.
//
// All information about a file (name, version, properties, and the run table
// that CFS kept in separate header sectors) lives in the file name table, a
// B+tree of 2 KB pages stored twice near the volume's centre cylinders.
// Updates go to cached pages and are captured by the redo log
// (internal/wal); the group-commit daemon forces the log when its deadline
// expires — the paper's fixed half second by default, a load-adaptive
// deadline between Config.CommitFloor and that ceiling with
// Config.AdaptiveCommit, or at every update with Config.Synchronous.
// Each file also has a leader page used only for software checking.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/alloc"
)

// Class distinguishes the three kinds of file name table entries the paper
// lists: local files, symbolic links to remote files, and cached copies of
// remote files.
type Class uint8

// Entry classes.
const (
	Local Class = iota
	SymLink
	Cached
)

func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case SymLink:
		return "symlink"
	case Cached:
		return "cached"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Entry is one file name table record: everything FSD knows about a file.
// CFS split this information between the name table, header sectors, and
// labels; FSD keeps it all here (Table 1 of the paper).
type Entry struct {
	Name       string
	Version    uint32
	Class      Class
	Keep       uint16 // versions to retain; 0 = keep all
	UID        uint64
	ByteSize   uint64
	CreateTime time.Duration // simulated time of creation
	LastUsed   time.Duration // last-used time (hot property for cached files)
	Runs       []alloc.Run   // leader page first, then data pages
	LinkTarget string        // SymLink only
}

// Pages returns the number of data pages (excluding the leader).
func (e *Entry) Pages() int {
	n := alloc.Pages(e.Runs)
	if n == 0 {
		return 0
	}
	return n - 1
}

// LeaderAddr returns the disk sector of the entry's leader page.
func (e *Entry) LeaderAddr() (int, bool) {
	if len(e.Runs) == 0 {
		return 0, false
	}
	return int(e.Runs[0].Start), true
}

// DataAddr maps a logical data page number to its disk sector. Logical page
// 0 is the sector after the leader.
func (e *Entry) DataAddr(page int) (int, error) {
	off := page + 1 // skip the leader
	for _, r := range e.Runs {
		if off < int(r.Len) {
			return int(r.Start) + off, nil
		}
		off -= int(r.Len)
	}
	return 0, fmt.Errorf("core: page %d beyond %q!%d", page, e.Name, e.Version)
}

// ContiguousFrom returns the disk sector of logical page `page` and the
// number of pages contiguous on disk starting there, capped at want.
func (e *Entry) ContiguousFrom(page, want int) (addr, n int, err error) {
	off := page + 1
	for _, r := range e.Runs {
		if off < int(r.Len) {
			n = int(r.Len) - off
			if n > want {
				n = want
			}
			return int(r.Start) + off, n, nil
		}
		off -= int(r.Len)
	}
	return 0, 0, fmt.Errorf("core: page %d beyond %q!%d", page, e.Name, e.Version)
}

// PhysContiguousFrom is ContiguousFrom with cross-run clustering: runs that
// are merely separate entries in the run table but physically adjacent on
// disk (one run ends exactly where the next begins — the common result of
// growing a file with successive Extends) are merged into one stretch, so
// the caller can issue a single clustered transfer where the per-run walk
// would issue one request per run. merged counts the run boundaries crossed
// within the returned stretch; n is capped at want.
func (e *Entry) PhysContiguousFrom(page, want int) (addr, n, merged int, err error) {
	off := page + 1
	for i, r := range e.Runs {
		if off >= int(r.Len) {
			off -= int(r.Len)
			continue
		}
		addr = int(r.Start) + off
		n = int(r.Len) - off
		end := int(r.Start) + int(r.Len)
		for j := i + 1; n < want && j < len(e.Runs); j++ {
			next := e.Runs[j]
			if int(next.Start) != end {
				break
			}
			n += int(next.Len)
			end += int(next.Len)
			merged++
		}
		if n > want {
			n = want
			// Recount boundaries actually inside the capped stretch.
			merged = 0
			covered := int(r.Len) - off
			for j := i + 1; covered < n; j++ {
				merged++
				covered += int(e.Runs[j].Len)
			}
		}
		return addr, n, merged, nil
	}
	return 0, 0, 0, fmt.Errorf("core: page %d beyond %q!%d", page, e.Name, e.Version)
}

// ErrBadName reports a file name that cannot be encoded as a name-table
// key: empty, containing a NUL byte, or longer than 255 bytes.
var ErrBadName = errors.New("core: file names must be non-empty, free of NUL bytes, and at most 255 bytes")

// ValidateName checks a file name for key-encoding safety.
func ValidateName(name string) error {
	if name == "" || strings.ContainsRune(name, 0) {
		return ErrBadName
	}
	if len(name) > 255 {
		return fmt.Errorf("%w: %d bytes", ErrBadName, len(name))
	}
	return nil
}

// entryKey encodes (name, version) so that versions of the same name sort
// adjacently and ascending.
func entryKey(name string, version uint32) []byte {
	k := make([]byte, 0, len(name)+5)
	k = append(k, name...)
	k = append(k, 0)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], version)
	return append(k, v[:]...)
}

// namePrefix returns the scan prefix covering all versions of name.
func namePrefix(name string) []byte {
	return append([]byte(name), 0)
}

// splitKey decodes an entryKey.
func splitKey(k []byte) (name string, version uint32, ok bool) {
	if len(k) < 5 || k[len(k)-5] != 0 {
		return "", 0, false
	}
	return string(k[:len(k)-5]), binary.BigEndian.Uint32(k[len(k)-4:]), true
}

// Entry wire format (values in the name table):
//
//	u8  class | u16 keep | u64 uid | u64 byteSize
//	u64 createTime | u64 lastUsed
//	u16 nruns | nruns * (u32 start, u32 len)
//	u16 linkLen | linkTarget bytes
//
// Name and version live in the key, not the value.
func encodeEntry(e *Entry) []byte {
	buf := make([]byte, 0, 37+8*len(e.Runs)+len(e.LinkTarget))
	var tmp [8]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	buf = append(buf, byte(e.Class))
	put16(e.Keep)
	put64(e.UID)
	put64(e.ByteSize)
	put64(uint64(e.CreateTime))
	put64(uint64(e.LastUsed))
	put16(uint16(len(e.Runs)))
	for _, r := range e.Runs {
		put32(r.Start)
		put32(r.Len)
	}
	put16(uint16(len(e.LinkTarget)))
	buf = append(buf, e.LinkTarget...)
	return buf
}

func decodeEntry(name string, version uint32, buf []byte) (*Entry, error) {
	fail := func() (*Entry, error) {
		return nil, fmt.Errorf("core: corrupt name table value for %q!%d", name, version)
	}
	if len(buf) < 37 {
		return fail()
	}
	e := &Entry{Name: name, Version: version}
	e.Class = Class(buf[0])
	e.Keep = binary.BigEndian.Uint16(buf[1:])
	e.UID = binary.BigEndian.Uint64(buf[3:])
	e.ByteSize = binary.BigEndian.Uint64(buf[11:])
	e.CreateTime = time.Duration(binary.BigEndian.Uint64(buf[19:]))
	e.LastUsed = time.Duration(binary.BigEndian.Uint64(buf[27:]))
	n := int(binary.BigEndian.Uint16(buf[35:]))
	off := 37
	if len(buf) < off+8*n+2 {
		return fail()
	}
	for i := 0; i < n; i++ {
		e.Runs = append(e.Runs, alloc.Run{
			Start: binary.BigEndian.Uint32(buf[off:]),
			Len:   binary.BigEndian.Uint32(buf[off+4:]),
		})
		off += 8
	}
	ll := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) < off+ll {
		return fail()
	}
	e.LinkTarget = string(buf[off : off+ll])
	return e, nil
}
