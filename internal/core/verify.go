package core

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// VerifyStats reports what a full-volume verification examined.
type VerifyStats struct {
	Entries        int
	Leaders        int
	LeadersPending int // deferred leaders verified from memory
	Symlinks       int
	Problems       []string
	Elapsed        time.Duration
}

// Verify walks the entire volume checking every invariant the mutually
// checking data structures provide (Section 5.8): B+tree structure, entry
// decodability, run-table sanity (no overlaps, no metadata overlap), and
// the leader page of every file against its name-table entry. It is the
// FSD analogue of fsck — but unlike fsck it is advisory: FSD never needs it
// for recovery.
func (v *Volume) Verify() (_ VerifyStats, err error) {
	defer v.span("verify")(&err)
	// Exclusive: a whole-volume audit wants a quiescent name table. Log
	// forces (WaitCommitted, the ticker's in-flight tick) can still run,
	// so the shared maps they touch are locked at their use sites below.
	v.mu.Lock()
	defer v.mu.Unlock()
	var st VerifyStats
	if v.closed.Load() {
		return st, ErrClosed
	}
	// With the async pipeline, quiescent also means applied: drain the
	// intent queue so the audit sees every acknowledged mutation.
	if err := v.DrainIntents(); err != nil {
		return st, err
	}
	start := v.clk.Now()
	if err := v.nt.Check(); err != nil {
		return st, fmt.Errorf("core: name table structure: %w", err)
	}
	owned := make(map[uint32]string)
	addProblem := func(format string, args ...interface{}) {
		st.Problems = append(st.Problems, fmt.Sprintf(format, args...))
	}
	err = v.nt.Scan(nil, func(k, val []byte) bool {
		name, ver, ok := splitKey(k)
		if !ok {
			addProblem("undecodable key % x", k)
			return true
		}
		e, err := decodeEntry(name, ver, val)
		if err != nil {
			addProblem("%s!%d: %v", name, ver, err)
			return true
		}
		st.Entries++
		v.cpu.Charge(sim.CostBTreeOp / 4)
		if e.Class == SymLink {
			st.Symlinks++
			if len(e.Runs) != 0 {
				addProblem("%s!%d: symlink with data pages", name, ver)
			}
			return true
		}
		// Run-table sanity: in range, not in metadata, no overlaps.
		for _, r := range e.Runs {
			if int(r.Start)+int(r.Len) > v.lay.total || r.Len == 0 {
				addProblem("%s!%d: run [%d,+%d) out of range", name, ver, r.Start, r.Len)
				continue
			}
			for p := r.Start; p < r.Start+r.Len; p++ {
				if v.lay.metaRange(int(p)) {
					addProblem("%s!%d: page %d inside metadata", name, ver, p)
					break
				}
				if prev, dup := owned[p]; dup {
					addProblem("%s!%d: page %d also owned by %s", name, ver, p, prev)
					break
				}
				owned[p] = fmt.Sprintf("%s!%d", name, ver)
				v.vmMu.Lock()
				free := v.vm.IsFree(int(p))
				v.vmMu.Unlock()
				if free {
					addProblem("%s!%d: page %d owned but marked free", name, ver, p)
					break
				}
			}
		}
		if e.ByteSize > uint64(e.Pages())*512 {
			addProblem("%s!%d: byte size %d exceeds %d pages", name, ver, e.ByteSize, e.Pages())
		}
		// Leader cross-check.
		addr, has := e.LeaderAddr()
		if !has {
			return true
		}
		st.Leaders++
		v.lmu.Lock()
		pending, okp := v.pendingLeaders[addr]
		v.lmu.Unlock()
		if okp {
			st.LeadersPending++
			if err := verifyLeader(pending, e); err != nil {
				addProblem("%v", err)
			}
			return true
		}
		buf, err := v.readSectorsRetry(addr, 1)
		if err != nil {
			addProblem("%s!%d: leader unreadable: %v", name, ver, err)
			return true
		}
		v.cpu.Charge(sim.CostChecksumPage)
		if err := verifyLeader(buf, e); err != nil {
			addProblem("%v", err)
		}
		return true
	})
	if err != nil {
		return st, err
	}
	st.Elapsed = v.clk.Now() - start
	return st, nil
}
